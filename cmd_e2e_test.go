package energyroofline

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// buildCmd compiles one command into dir and returns the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = mustModuleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func mustModuleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func runBin(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestExperimentsBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "experiments")

	// -list names every canonical experiment.
	list := runBin(t, bin, "-list")
	for _, id := range []string{"tableII", "fig4a", "fmmu", "racetohalt", "dvfs", "algs"} {
		if !strings.Contains(list, id) {
			t.Errorf("-list missing %q", id)
		}
	}

	// A model-only experiment runs and declares success.
	out := runBin(t, bin, "-run", "tableII,fig2b", "-fast")
	if !strings.Contains(out, "all tolerance-checked comparisons matched the paper") {
		t.Errorf("success line missing:\n%s", out)
	}
	if !strings.Contains(out, "Bτ (flop/byte)") {
		t.Error("tableII comparisons missing")
	}

	// Unknown IDs are rejected with a usable message.
	cmd := exec.Command(bin, "-run", "nonsense")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	} else if !strings.Contains(string(out), "unknown experiment") {
		t.Errorf("unhelpful error: %s", out)
	}

	// SVG emission.
	svgDir := filepath.Join(dir, "figs")
	runBin(t, bin, "-run", "fig2a", "-svg", svgDir)
	if _, err := os.Stat(filepath.Join(svgDir, "fig2a.svg")); err != nil {
		t.Errorf("fig2a.svg not written: %v", err)
	}

	// JSON artifact + parallel mode together.
	jsonPath := filepath.Join(dir, "cmp.json")
	runBin(t, bin, "-run", "tableII,fig2b,racetohalt", "-fast", "-parallel", "3", "-json", jsonPath)
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "tableII"`, `"deviations": 0`, `"ok": true`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON artifact missing %q", want)
		}
	}
}

func TestRooflineBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "roofline")

	out := runBin(t, bin, "-machine", "gtx580", "-prec", "double")
	for _, want := range []string{"NVIDIA GTX 580", "Bτ = 1.03", "race-to-halt effective: true", "GFLOP/J"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Detailed single-intensity analysis, in the capped region.
	out = runBin(t, bin, "-machine", "gtx580", "-prec", "single", "-intensity", "8")
	for _, want := range []string{"compute-bound", "average power", "power cap", "ACTIVE"} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis missing %q:\n%s", want, out)
		}
	}

	// Chart mode.
	out = runBin(t, bin, "-machine", "fermi", "-chart")
	if !strings.Contains(out, "arch line (energy)") {
		t.Error("chart legend missing")
	}

	// Compare mode.
	out = runBin(t, bin, "-compare")
	for _, want := range []string{"catalog comparison", "gtx580", "future", "greenest"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q", want)
		}
	}

	// Chart file emission.
	svgPath := filepath.Join(dir, "chart.svg")
	pngPath := filepath.Join(dir, "chart.png")
	runBin(t, bin, "-machine", "fermi", "-svgfile", svgPath, "-pngfile", pngPath)
	if data, err := os.ReadFile(svgPath); err != nil || !strings.Contains(string(data), "<svg") {
		t.Errorf("svg file bad: %v", err)
	}
	if data, err := os.ReadFile(pngPath); err != nil || len(data) < 8 || string(data[1:4]) != "PNG" {
		t.Errorf("png file bad: %v", err)
	}

	// JSON round trip: dump a machine, load it back.
	m := GTX580()
	data, err := m.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out = runBin(t, bin, "-json", path)
	if !strings.Contains(out, "NVIDIA GTX 580") {
		t.Error("JSON-loaded machine not used")
	}

	// Bad flags exit non-zero.
	if out, err := exec.Command(bin, "-machine", "cray1").CombinedOutput(); err == nil {
		t.Errorf("unknown machine accepted:\n%s", out)
	}
	if out, err := exec.Command(bin, "-prec", "half").CombinedOutput(); err == nil {
		t.Errorf("unknown precision accepted:\n%s", out)
	}
}

func TestFitenergyBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "fitenergy")
	out := runBin(t, bin, "-machine", "i7-950", "-reps", "10", "-points", "9")
	for _, want := range []string{"Table IV reproduction", "εs (pJ/flop)", "ground truth", "R²"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The fitted εmem should print near 795 — check the ground-truth
	// column rendered the right value.
	if !strings.Contains(out, "795.0") {
		t.Errorf("ground truth column wrong:\n%s", out)
	}
	if out, err := exec.Command(bin, "-machine", "fermi").CombinedOutput(); err == nil {
		t.Errorf("fermi (unmeasured) accepted:\n%s", out)
	}

	// Session recording: traces land on disk with a manifest.
	sessDir := filepath.Join(dir, "session")
	out = runBin(t, bin, "-machine", "gtx580", "-reps", "5", "-points", "7", "-session", sessDir)
	if !strings.Contains(out, "recorded power-trace session") {
		t.Errorf("session line missing:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(sessDir, "manifest.json")); err != nil {
		t.Errorf("manifest missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sessDir, "run-000.csv")); err != nil {
		t.Errorf("trace CSV missing: %v", err)
	}
}

func TestFmmuBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	bin := buildCmd(t, t.TempDir(), "fmmu")
	out := runBin(t, bin, "-n", "1024", "-leaf", "128", "-cacheonly", "-top", "3")
	for _, want := range []string{"FMM U-list study", "187", "median relative error", "variant"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCyclesimBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	bin := buildCmd(t, t.TempDir(), "cyclesim")
	out := runBin(t, bin, "-core", "fermi", "-fmas", "32", "-sweep")
	for _, want := range []string{"rooflines", "latency", "issue", "window"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
	out = runBin(t, bin, "-core", "nehalem", "-fmas", "1", "-loads", "8", "-prec", "double")
	if !strings.Contains(out, "bandwidth-bound") {
		t.Errorf("load-heavy DP kernel should be bandwidth-bound:\n%s", out)
	}
	if out, err := exec.Command(bin, "-core", "cray").CombinedOutput(); err == nil {
		t.Errorf("unknown core accepted:\n%s", out)
	}
	if out, err := exec.Command(bin, "-prec", "half").CombinedOutput(); err == nil {
		t.Errorf("unknown precision accepted:\n%s", out)
	}
}

func TestCampaignBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "campaign")

	// Custom config + fitted-machine output, small sizes.
	cfgPath := filepath.Join(dir, "cfg.json")
	cfg := `{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,
		"points":7,"reps":10,"volume_bytes":67108864,"seed":5}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "out")
	out := runBin(t, bin, "-config", cfgPath, "-out", outDir)
	for _, want := range []string{"NVIDIA GTX 580", "εmem", "race-to-halt", "wrote"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The fitted machine JSON loads back through the roofline tool.
	fitted := filepath.Join(outDir, "gtx580-fitted.json")
	if _, err := os.Stat(fitted); err != nil {
		t.Fatal(err)
	}
	roofBin := buildCmd(t, dir, "roofline")
	out = runBin(t, roofBin, "-json", fitted)
	if !strings.Contains(out, "(fitted)") {
		t.Errorf("fitted machine not loadable:\n%s", out)
	}

	// Bad config rejected.
	if err := os.WriteFile(cfgPath, []byte(`{"machines":["nope"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "-config", cfgPath).CombinedOutput(); err == nil {
		t.Errorf("bad config accepted:\n%s", out)
	}
}

// TestCampaignBinaryWorkerInvariance is the end-to-end acceptance test
// for the parallel campaign engine: the binary's stdout (render plus
// fitted machine files) must be byte-identical at -workers=1, 2 and 8.
func TestCampaignBinaryWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "campaign")

	cfgPath := filepath.Join(dir, "cfg.json")
	cfg := `{"machines":["gtx580","i7-950"],"lo_intensity":0.25,"hi_intensity":16,
		"points":6,"reps":6,"volume_bytes":67108864,"seed":99}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	type artifact struct {
		stdout string
		fitted map[string]string
	}
	run := func(workers string) artifact {
		outDir := filepath.Join(dir, "out-w"+workers)
		stdout := runBin(t, bin, "-config", cfgPath, "-workers", workers, "-out", outDir)
		fitted := map[string]string{}
		for _, key := range []string{"gtx580", "i7-950"} {
			data, err := os.ReadFile(filepath.Join(outDir, key+"-fitted.json"))
			if err != nil {
				t.Fatalf("-workers=%s: %v", workers, err)
			}
			fitted[key] = string(data)
		}
		// The render itself is identical; only the trailing "wrote ..."
		// lines name the per-worker-count output directory.
		stdout = strings.Join(func() []string {
			var kept []string
			for _, line := range strings.Split(stdout, "\n") {
				if !strings.HasPrefix(line, "wrote ") {
					kept = append(kept, line)
				}
			}
			return kept
		}(), "\n")
		return artifact{stdout: stdout, fitted: fitted}
	}

	want := run("1")
	for _, workers := range []string{"2", "8"} {
		got := run(workers)
		if got.stdout != want.stdout {
			t.Errorf("-workers=%s stdout differs from -workers=1", workers)
		}
		for key := range want.fitted {
			if got.fitted[key] != want.fitted[key] {
				t.Errorf("-workers=%s fitted %s JSON differs from -workers=1", workers, key)
			}
		}
	}
}

// TestRooflinedBinary drives the HTTP service end to end: start on an
// ephemeral port, discover the address from stdout, exercise every
// endpoint including the cache-hit path, then shut down gracefully via
// SIGTERM and require a clean exit.
func TestRooflinedBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "rooflined")

	tracePath := filepath.Join(dir, "server-trace.json")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain", "10s", "-debug", "-trace", tracePath)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no announce line: %v", sc.Err())
	}
	announce := sc.Text()
	const prefix = "rooflined listening on "
	if !strings.HasPrefix(announce, prefix) {
		t.Fatalf("unexpected announce line %q", announce)
	}
	base := strings.TrimPrefix(announce, prefix)
	// Drain the rest of stdout in the background so shutdown messages
	// don't block the process.
	tail := make(chan string, 1)
	go func() {
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		tail <- strings.Join(lines, "\n")
	}()

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(data), resp.Header
	}
	post := func(path, body string) (int, string, http.Header) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(data), resp.Header
	}

	if code, body, _ := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", code, body)
	}
	if code, body, _ := get("/v1/machines"); code != 200 || !strings.Contains(body, "gtx580") {
		t.Errorf("machines: %d %q", code, body)
	}
	if code, body, _ := post("/v1/eval",
		`{"machine":"gtx580","precision":"double","intensity":4}`); code != 200 ||
		!strings.Contains(body, "energy_joules") {
		t.Errorf("eval: %d %q", code, body)
	}

	// An identical campaign posted twice: second response must be a
	// byte-identical cache hit.
	const campaignBody = `{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,"points":5,"reps":3,"volume_bytes":1048576,"seed":11}`
	code1, body1, hdr1 := post("/v1/campaign", campaignBody)
	code2, body2, hdr2 := post("/v1/campaign", campaignBody)
	if code1 != 200 || code2 != 200 {
		t.Fatalf("campaign codes: %d, %d", code1, code2)
	}
	if body1 != body2 {
		t.Error("repeated campaign bodies differ")
	}
	if hdr1.Get("X-Cache") != "miss" || hdr2.Get("X-Cache") != "hit" {
		t.Errorf("X-Cache = %q then %q, want miss then hit", hdr1.Get("X-Cache"), hdr2.Get("X-Cache"))
	}

	if code, body, _ := get("/metrics"); code != 200 ||
		!strings.Contains(body, "engine_runs_total 1") ||
		!strings.Contains(body, "cache_hits_total 1") ||
		!strings.Contains(body, "span_http_campaign") {
		t.Errorf("metrics: %d\n%s", code, body)
	}

	// -debug serves the span buffer as Chrome trace JSON and the pprof
	// index.
	if code, body, _ := get("/debug/trace"); code != 200 ||
		!strings.Contains(body, "traceEvents") ||
		!strings.Contains(body, "http.campaign") {
		t.Errorf("debug/trace: %d\n%s", code, body)
	}
	if code, _, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("debug/pprof/: %d", code)
	}

	// Graceful shutdown: SIGTERM → drain messages on stdout, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain stdout to EOF before Wait: Wait closes the pipe and would
	// race with the reader goroutine.
	out := <-tail
	if err := cmd.Wait(); err != nil {
		t.Errorf("exit status: %v", err)
	}
	for _, want := range []string{"draining in-flight requests", "shutdown complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("shutdown log missing %q:\n%s", want, out)
		}
	}
	// -trace dumped the span buffer at shutdown.
	if data, err := os.ReadFile(tracePath); err != nil {
		t.Errorf("shutdown trace dump: %v", err)
	} else if !strings.Contains(string(data), "traceEvents") {
		t.Error("shutdown trace dump is not a Chrome trace")
	}
}

// TestFleetsimBinary drives the fleet simulator CLI end to end: the
// scenario catalog, the JSON report schema, worker-count determinism of
// the report bytes, the Chrome trace artifact, the bench -check gate,
// and the error exits.
func TestFleetsimBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "fleetsim")

	// -scenario list names the full catalog.
	list := runBin(t, bin, "-scenario", "list")
	for _, name := range []string{"smoke", "cluster_1m", "burst_1m", "closed_1m", "hetero_1m"} {
		if !strings.Contains(list, name) {
			t.Errorf("-scenario list missing %q:\n%s", name, list)
		}
	}

	// One shrunken scenario with JSON report and Chrome trace artifacts.
	jsonPath := filepath.Join(dir, "fleet.json")
	tracePath := filepath.Join(dir, "fleet-trace.json")
	out := runBin(t, bin, "-scenario", "smoke", "-requests", "2000",
		"-json", jsonPath, "-trace", tracePath)
	for _, want := range []string{"scenario smoke", "round_robin", "least_loaded", "cache_affinity", "energy_aware", "J/req"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	// The JSON report parses and carries the documented schema.
	var report struct {
		Scenario string `json:"scenario"`
		Requests int    `json:"requests"`
		Policies []struct {
			Policy        string  `json:"policy"`
			Requests      int     `json:"requests"`
			ThroughputRPS float64 `json:"throughput_rps"`
			P99ms         float64 `json:"p99_ms"`
			CacheHitRate  float64 `json:"cache_hit_rate"`
			EnergyJoules  float64 `json:"energy_joules"`
			Replicas      []struct {
				Machine    string `json:"machine"`
				EngineRuns int    `json:"engine_runs"`
			} `json:"replicas"`
		} `json:"policies"`
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if report.Scenario != "smoke" || report.Requests != 2000 || len(report.Policies) != 4 {
		t.Fatalf("report shape wrong: %+v", report)
	}
	for _, p := range report.Policies {
		if p.Requests != 2000 || p.ThroughputRPS <= 0 || p.EnergyJoules <= 0 || len(p.Replicas) != 4 {
			t.Errorf("policy %s cell degenerate: %+v", p.Policy, p)
		}
	}

	// The -trace artifact is a loadable Chrome trace_event file with
	// virtual replica.serve spans.
	var chrome struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	data, err = os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &chrome); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Name != "replica.serve" || ev.Phase != "X" || ev.Dur <= 0 {
			t.Fatalf("bad trace event: %+v", ev)
		}
	}

	// Worker-count determinism at the binary level: the JSON report is
	// byte-identical at -workers 1 and 8.
	p1 := filepath.Join(dir, "w1.json")
	p8 := filepath.Join(dir, "w8.json")
	runBin(t, bin, "-scenario", "smoke", "-requests", "2000", "-workers", "1", "-json", p1)
	runBin(t, bin, "-scenario", "smoke", "-requests", "2000", "-workers", "8", "-json", p8)
	d1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := os.ReadFile(p8)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d8) {
		t.Error("-workers 8 report differs from -workers 1")
	}

	// Bench mode checks against the committed BENCH_cluster.json (the
	// shrunken run is far faster than the recorded 1M entry, so -check
	// passes without writing anything).
	out = runBin(t, bin, "-bench", "-scenario", "cluster_1m", "-requests", "20000", "-check")
	if !strings.Contains(out, "within thresholds") {
		t.Errorf("bench -check did not pass:\n%s", out)
	}

	// Error exits: unknown scenario, unreadable replay file.
	if out, err := exec.Command(bin, "-scenario", "warp9").CombinedOutput(); err == nil {
		t.Errorf("unknown scenario accepted:\n%s", out)
	} else if !strings.Contains(string(out), "unknown scenario") {
		t.Errorf("unhelpful error: %s", out)
	}
	if out, err := exec.Command(bin, "-replay", "/dev/null").CombinedOutput(); err == nil {
		t.Errorf("empty replay file accepted:\n%s", out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e runs examples")
	}
	root := mustModuleRoot(t)
	examples, err := filepath.Glob(filepath.Join(root, "examples", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) < 3 {
		t.Fatalf("only %d examples found", len(examples))
	}
	for _, dir := range examples {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+filepath.Base(dir))
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if len(out) < 100 {
				t.Errorf("example output suspiciously short:\n%s", out)
			}
		})
	}
}
