package exp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// Detail assertions on the extension experiments, beyond the generic
// comparison runner: specific derived numbers that must stay pinned.

func mustRun(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	rep, err := e.Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func comparisonByName(t *testing.T, rep *Report, substr string) Comparison {
	t.Helper()
	for _, c := range rep.Comparisons {
		if strings.Contains(c.Name, substr) {
			return c
		}
	}
	t.Fatalf("%s: no comparison matching %q", rep.ID, substr)
	return Comparison{}
}

func TestDVFSThresholdValue(t *testing.T) {
	rep := mustRun(t, "dvfs")
	c := comparisonByName(t, rep, "2·πflop threshold")
	// 2 × 212 pJ × 197.63e9 flop/s = 83.8 W.
	want := 2 * 212e-12 * 197.63e9
	if math.Abs(c.Measured-want) > 0.1 {
		t.Errorf("threshold = %v, want %v", c.Measured, want)
	}
	// The measured π0 of 122 W sits above it — that's the whole point.
	if want >= 122 {
		t.Error("threshold must sit below the measured constant power")
	}
}

func TestConcurrencyRequirementValue(t *testing.T) {
	rep := mustRun(t, "concurrency")
	c := comparisonByName(t, rep, "required concurrency")
	// 192.4 GB/s × 600 ns / 128 B ≈ 902 outstanding lines.
	if math.Abs(c.Measured-902) > 1 {
		t.Errorf("required concurrency = %v, want ≈902", c.Measured)
	}
}

func TestPi0FlipBelowMeasured(t *testing.T) {
	rep := mustRun(t, "ablation-pi0")
	// The text reports the bisected flip point; it must lie strictly
	// between 0 and 122 and match the closed-form crossover where
	// B̂ε(y=½) = Bτ.
	if !strings.Contains(rep.Text, "race-to-halt becomes effective at π0 ≈") {
		t.Fatalf("flip line missing from text:\n%s", rep.Text)
	}
	// Closed form: find the π0 where HalfEfficiencyIntensity == Bτ.
	base := core.FromMachine(machine.GTX580(), machine.Double)
	lo, hi := 0.0, 122.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		p := base
		p.Pi0 = mid
		if p.RaceToHaltEffective() {
			hi = mid
		} else {
			lo = mid
		}
	}
	flip := (lo + hi) / 2
	if flip <= 0 || flip >= 122 {
		t.Errorf("flip = %v out of range", flip)
	}
	// Verify the fixed point: at the flip, B̂ε(y=½) ≈ Bτ.
	p := base
	p.Pi0 = flip
	if math.Abs(p.HalfEfficiencyIntensity()-p.BalanceTime()) > 1e-6 {
		t.Errorf("flip point is not the balance crossover: %v vs %v",
			p.HalfEfficiencyIntensity(), p.BalanceTime())
	}
}

func TestFutureRegimeZoneWidth(t *testing.T) {
	rep := mustRun(t, "future")
	for _, c := range rep.Comparisons {
		if !c.Ok() {
			t.Errorf("future: %q deviates", c.Name)
		}
	}
	// The Bτ < I < Bε zone must be wide (gap 5 by construction).
	p := core.FromMachine(machine.FutureBalanceGap(), machine.Double)
	if p.BalanceGap() < 2 {
		t.Errorf("future gap = %v, want a decisive regime", p.BalanceGap())
	}
}

func TestOverlapAblationPenaltyProfile(t *testing.T) {
	rep := mustRun(t, "ablation-overlap")
	// The exact penalty at I = Bτ is 2 (checked as a comparison, since
	// the log grid does not sample Bτ itself).
	c := comparisonByName(t, rep, "worst-case no-overlap penalty")
	if math.Abs(c.Measured-2) > 1e-9 {
		t.Errorf("penalty at Bτ = %v, want exactly 2", c.Measured)
	}
	// The table's extremes tend to 1: last row's ratio below 1.1.
	lines := strings.Split(strings.TrimSpace(rep.Text), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "1.0") {
		t.Errorf("extreme penalty should approach 1: %q", last)
	}
}

func TestMetricsExperimentIndices(t *testing.T) {
	rep := mustRun(t, "metrics")
	c := comparisonByName(t, rep, "speed index")
	if !c.Ok() {
		t.Errorf("speed index deviates: %+v", c)
	}
	g := comparisonByName(t, rep, "green index")
	if !g.Ok() {
		t.Errorf("green index deviates: %+v", g)
	}
}

func TestPipelineExperimentLatencyFraction(t *testing.T) {
	rep := mustRun(t, "pipeline")
	c := comparisonByName(t, rep, "latency-starved")
	// 2 flops per 5-cycle chain step on a 3-wide, 2-flop/slot core:
	// fraction = (2/5)/(2·3) = 1/15 ≈ 0.067.
	if math.Abs(c.Paper-1.0/15) > 1e-9 {
		t.Errorf("expected paper value 1/15, got %v", c.Paper)
	}
	if !c.Ok() {
		t.Errorf("latency fraction deviates: %+v", c)
	}
}
