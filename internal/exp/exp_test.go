package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fastCfg() Config { return Config{Seed: 42, Fast: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"tableI", "tableII", "tableIII", "tableIV",
		"fig2a", "fig2b", "fig4a", "fig4b", "fig5a", "fig5b",
		"peaks", "fmmu", "greenup", "racetohalt",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(ids) {
		t.Error("All() and IDs() disagree")
	}
	if _, ok := ByID("fig4a"); !ok {
		t.Error("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a ghost")
	}
}

// Every experiment runs clean in fast mode and passes all its
// tolerance-checked comparisons — the repository's headline check.
func TestAllExperimentsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are expensive")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(fastCfg())
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != e.ID {
				t.Errorf("report ID %q != experiment ID %q", rep.ID, e.ID)
			}
			for _, f := range rep.Failures() {
				t.Errorf("comparison %q: paper %v vs reproduced %v", f.Name, f.Paper, f.Measured)
			}
			if out := rep.Render(); !strings.Contains(out, rep.ID) {
				t.Error("render missing experiment ID")
			}
		})
	}
}

func TestComparisonOk(t *testing.T) {
	if !(Comparison{Paper: 100, Measured: 104, Tol: 0.05}).Ok() {
		t.Error("4% deviation within 5% should be ok")
	}
	if (Comparison{Paper: 100, Measured: 110, Tol: 0.05}).Ok() {
		t.Error("10% deviation above 5% should fail")
	}
	if !(Comparison{Paper: 5, Measured: 123}).Ok() {
		t.Error("informational comparison should be ok")
	}
	if !(Comparison{Paper: 0, Measured: 1e-20, Tol: 1e-14}).Ok() {
		t.Error("zero-paper absolute comparison")
	}
	if (Comparison{Paper: 0, Measured: 1, Tol: 1e-14}).Ok() {
		t.Error("zero-paper absolute comparison should fail at 1")
	}
}

func TestReportRenderFlags(t *testing.T) {
	r := &Report{
		ID: "x", Title: "t",
		Comparisons: []Comparison{
			{Name: "good", Paper: 1, Measured: 1, Tol: 0.01},
			{Name: "bad", Paper: 1, Measured: 2, Tol: 0.01},
			{Name: "informational", Paper: 1, Measured: 2, Note: "context"},
		},
		Text: "body",
	}
	out := r.Render()
	for _, want := range []string{"DEVIATES", "info", "(context)", "body"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if len(r.Failures()) != 1 {
		t.Errorf("failures = %d, want 1", len(r.Failures()))
	}
}

func TestFig2aSVGOutput(t *testing.T) {
	dir := t.TempDir()
	e, _ := ByID("fig2a")
	if _, err := e.Run(Config{Seed: 1, Fast: true, SVGDir: dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2a.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("SVG file malformed")
	}
}

func TestTableIGlossaryMentionsAllMachines(t *testing.T) {
	e, _ := ByID("tableI")
	rep, err := e.Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fermi", "gtx580", "i7-950", "single", "double"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("glossary missing %q", want)
		}
	}
}

func TestDeterministicReports(t *testing.T) {
	e, _ := ByID("tableII")
	a, err := e.Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("model-only experiment must be deterministic")
	}
}

func TestFig2aPNGOutput(t *testing.T) {
	dir := t.TempDir()
	e, _ := ByID("fig2a")
	if _, err := e.Run(Config{Seed: 1, Fast: true, PNGDir: dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2a.png"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 8 || string(data[1:4]) != "PNG" {
		t.Error("PNG magic missing")
	}
}
