package exp

import (
	"fmt"
	"strings"

	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "fig2a", Title: "Roofline vs arch line for the Table II Fermi (Fig. 2a)", Run: runFig2a})
	register(Experiment{ID: "fig2b", Title: "Power-line chart for the Table II Fermi (Fig. 2b)", Run: runFig2b})
	register(Experiment{ID: "fig4a", Title: "Measured vs model, double precision (Fig. 4a)", Run: figure4(machine.Double, "fig4a")})
	register(Experiment{ID: "fig4b", Title: "Measured vs model, single precision (Fig. 4b)", Run: figure4(machine.Single, "fig4b")})
	register(Experiment{ID: "fig5a", Title: "Power lines, double precision (Fig. 5a)", Run: figure5(machine.Double, "fig5a")})
	register(Experiment{ID: "fig5b", Title: "Power lines, single precision with power cap (Fig. 5b)", Run: figure5(machine.Single, "fig5b")})
}

func runFig2a(cfg Config) (*Report, error) {
	p := core.FromMachine(machine.FermiTableII(), machine.Double)
	grid := core.LogGrid(0.5, 512, 61)
	roof := make([]float64, len(grid))
	arch := make([]float64, len(grid))
	p.RooflineTimeInto(roof, grid)
	p.ArchlineEnergyInto(arch, grid)
	c := &chart.Chart{
		Title:  "Fig 2a: roofline (time) vs arch line (energy), Fermi Table II, π0=0",
		XLabel: "Intensity (flop:byte)",
		YLabel: "Relative performance (515 GFLOP/s or 40 GFLOP/J)",
		LogX:   true, LogY: true,
		Series: []chart.Series{
			{Name: "Roofline (GFLOP/s)", X: grid, Y: roof, Marker: 'r', Line: true},
			{Name: "Arch line (GFLOP/J)", X: grid, Y: arch, Marker: 'e', Line: true},
		},
		VLines: []chart.VLine{
			{X: p.BalanceTime(), Label: "Bτ"},
			{X: p.BalanceEnergy(), Label: "Bε"},
		},
	}
	text, err := c.RenderASCII()
	if err != nil {
		return nil, err
	}
	if err := writeSVG(cfg, "fig2a", c); err != nil {
		return nil, err
	}
	return &Report{
		ID: "fig2a", Title: "Roofline vs arch line",
		Comparisons: []Comparison{
			{Name: "time-balance point Bτ (flop/byte)", Paper: 3.6, Measured: p.BalanceTime(), Tol: 0.01},
			{Name: "energy-balance point Bε (flop/byte)", Paper: 14.4, Measured: p.BalanceEnergy(), Tol: 0.001},
			{Name: "arch line at Bε (half efficiency)", Paper: 0.5, Measured: p.ArchlineEnergy(p.BalanceEnergy()), Tol: 1e-9},
			{Name: "roofline at Bτ (saturation)", Paper: 1, Measured: p.RooflineTime(p.BalanceTime()), Tol: 1e-9},
			{Name: "peak efficiency (GFLOP/J)", Paper: 40, Measured: p.PeakEfficiency() / 1e9, Tol: 0.01},
		},
		Text: text,
	}, nil
}

func runFig2b(cfg Config) (*Report, error) {
	p := core.FromMachine(machine.FermiTableII(), machine.Double)
	grid := core.LogGrid(0.5, 512, 61)
	line := make([]float64, len(grid))
	p.PowerLineInto(line, grid)
	pf := p.PiFlop()
	for i := range line {
		line[i] /= pf
	}
	c := &chart.Chart{
		Title:  "Fig 2b: power line, Fermi Table II, π0=0",
		XLabel: "Intensity (flop:byte)",
		YLabel: "Power, relative to flop-power",
		LogX:   true, LogY: true,
		Series: []chart.Series{{Name: "P(I)/πflop", X: grid, Y: line, Marker: 'p', Line: true}},
		VLines: []chart.VLine{
			{X: p.BalanceTime(), Label: "Bτ"},
			{X: p.BalanceEnergy(), Label: "Bε"},
		},
		HLines: []chart.HLine{
			{Y: 1, Label: "flop power"},
			{Y: p.BalanceGap(), Label: "memory-bound limit"},
			{Y: 1 + p.BalanceGap(), Label: "max power"},
		},
	}
	text, err := c.RenderASCII()
	if err != nil {
		return nil, err
	}
	if err := writeSVG(cfg, "fig2b", c); err != nil {
		return nil, err
	}
	return &Report{
		ID: "fig2b", Title: "Power line",
		Comparisons: []Comparison{
			{Name: "compute-bound limit P/πflop", Paper: 1, Measured: p.PowerLine(1e9) / pf, Tol: 1e-6},
			{Name: "memory-bound limit P/πflop (Bε/Bτ)", Paper: 4.0, Measured: p.BalanceGap(), Tol: 0.01},
			{Name: "max power P/πflop (1+Bε/Bτ)", Paper: 5.0, Measured: p.MaxPower() / pf, Tol: 0.01},
			{Name: "argmax of power line (= Bτ)", Paper: 3.6, Measured: argmaxPower(p), Tol: 0.05},
		},
		Text: text,
	}, nil
}

func argmaxPower(p core.Params) float64 {
	grid := core.LogGrid(0.25, 1024, 241)
	vals := make([]float64, len(grid))
	p.PowerLineInto(vals, grid)
	best, bestP := grid[0], 0.0
	for i, v := range vals {
		if v > bestP {
			best, bestP = grid[i], v
		}
	}
	return best
}

// fig4Case is one subplot of Fig. 4: a platform at one precision with
// the paper's annotated balance points and peaks.
type fig4Case struct {
	key      string
	m        *machine.Machine
	bt       float64 // annotated Bτ
	beConst0 float64 // annotated Bε with π0=0
	beHalf   float64 // annotated B̂ε at y=1/2
	peakGFs  float64 // annotated peak GFLOP/s
	peakGFJ  float64 // annotated peak GFLOP/J
	hiI      float64 // sweep upper intensity
}

func fig4Cases(prec machine.Precision) []fig4Case {
	if prec == machine.Double {
		return []fig4Case{
			{key: "GTX 580", m: machine.GTX580(), bt: 1.0, beConst0: 2.4, beHalf: 0.79, peakGFs: 200, peakGFJ: 1.2, hiI: 16},
			{key: "i7-950", m: machine.CoreI7950(), bt: 2.1, beConst0: 1.2, beHalf: 1.1, peakGFs: 53, peakGFJ: 0.34, hiI: 16},
		}
	}
	return []fig4Case{
		{key: "GTX 580", m: machine.GTX580(), bt: 8.2, beConst0: 5.1, beHalf: 4.5, peakGFs: 1600, peakGFJ: 5.7, hiI: 64},
		{key: "i7-950", m: machine.CoreI7950(), bt: 4.2, beConst0: 2.1, beHalf: 2.1, peakGFs: 110, peakGFJ: 0.66, hiI: 64},
	}
}

func figure4(prec machine.Precision, id string) func(Config) (*Report, error) {
	return func(cfg Config) (*Report, error) {
		rep := &Report{ID: id, Title: fmt.Sprintf("Measured time/energy vs intensity (%v precision)", prec)}
		var text strings.Builder
		for ci, fc := range fig4Cases(prec) {
			p := core.FromMachine(fc.m, prec)
			// Model annotations.
			tolPct := 0.06
			p0 := p
			p0.Pi0 = 0
			rep.Comparisons = append(rep.Comparisons,
				Comparison{Name: fc.key + " Bτ (flop/byte)", Paper: fc.bt, Measured: p.BalanceTime(), Tol: tolPct},
				Comparison{Name: fc.key + " Bε const=0 (flop/byte)", Paper: fc.beConst0, Measured: p0.BalanceEnergy(), Tol: tolPct},
				Comparison{Name: fc.key + " B̂ε at y=1/2 (flop/byte)", Paper: fc.beHalf, Measured: p.HalfEfficiencyIntensity(), Tol: tolPct},
				Comparison{Name: fc.key + " peak (GFLOP/s)", Paper: fc.peakGFs, Measured: p.PeakFlopsRate() / 1e9, Tol: tolPct},
				Comparison{Name: fc.key + " peak (GFLOP/J)", Paper: fc.peakGFJ, Measured: p.PeakEfficiency() / 1e9, Tol: tolPct},
			)

			// Measured sweep.
			eng, err := sim.New(fc.m, sim.DefaultConfig(cfg.Seed+int64(ci)*7))
			if err != nil {
				return nil, err
			}
			tuning, _, err := microbench.AutoTune(eng, prec)
			if err != nil {
				return nil, err
			}
			reps := 100
			n := 11
			if cfg.Fast {
				reps, n = 5, 9
			}
			pts, err := microbench.Sweep(cfg.ctx(), eng, prec, microbench.SweepConfig{
				Intensities: core.LogGrid(0.25, fc.hiI, n),
				VolumeBytes: 1 << 28,
				Reps:        reps,
				Tuning:      tuning,
			})
			if err != nil {
				return nil, err
			}

			grid := core.LogGrid(0.25, fc.hiI, 49)
			modelT := make([]float64, len(grid))
			modelE := make([]float64, len(grid))
			p.RooflineTimeInto(modelT, grid)
			p.ArchlineEnergyInto(modelE, grid)
			var mx, mt, me []float64
			var maxDevT, maxDevE float64
			for _, pt := range pts {
				perfT := (pt.W / p.PeakFlopsRate()) / float64(pt.Time)
				perfE := pt.W * p.EpsFlopHat() / float64(pt.Energy)
				mx = append(mx, pt.Intensity)
				mt = append(mt, perfT)
				me = append(me, perfE)
				devT := 1 - perfT/p.RooflineTime(pt.Intensity)
				devE := 1 - perfE/p.ArchlineEnergy(pt.Intensity)
				if !pt.Throttled {
					if devT > maxDevT {
						maxDevT = devT
					}
					if devE > maxDevE {
						maxDevE = devE
					}
				}
			}
			rep.Comparisons = append(rep.Comparisons,
				Comparison{Name: fc.key + " worst untrottled time shortfall vs roofline", Paper: 0.27, Measured: maxDevT, Tol: 0,
					Note: "paper's worst achieved fraction is 73% of peak (CPU bandwidth)"},
				Comparison{Name: fc.key + " worst unthrottled energy shortfall vs arch", Paper: 0.27, Measured: maxDevE, Tol: 0,
					Note: "informational"},
			)

			cTime := &chart.Chart{
				Title:  fmt.Sprintf("%s: %s (%v) — Time", id, fc.m.Name, prec),
				XLabel: "Intensity (flop:byte)",
				YLabel: "Normalized performance (time)",
				LogX:   true, LogY: true,
				Series: []chart.Series{
					{Name: "roofline model", X: grid, Y: modelT, Marker: '.', Line: true},
					{Name: "measured", X: mx, Y: mt, Marker: 'o'},
				},
				VLines: []chart.VLine{{X: p.BalanceTime(), Label: "Bτ"}},
			}
			cEnergy := &chart.Chart{
				Title:  fmt.Sprintf("%s: %s (%v) — Energy", id, fc.m.Name, prec),
				XLabel: "Intensity (flop:byte)",
				YLabel: "Normalized performance (energy)",
				LogX:   true, LogY: true,
				Series: []chart.Series{
					{Name: "arch line model", X: grid, Y: modelE, Marker: '.', Line: true},
					{Name: "measured", X: mx, Y: me, Marker: 'o'},
				},
				VLines: []chart.VLine{
					{X: p.HalfEfficiencyIntensity(), Label: "B̂ε(y=1/2)"},
					{X: p0.BalanceEnergy(), Label: "Bε const=0"},
				},
			}
			// Side-by-side time/energy panels, matching the paper's
			// subplot layout.
			cTime.Width, cTime.Height = 48, 16
			cEnergy.Width, cEnergy.Height = 48, 16
			tTxt, err := cTime.RenderASCII()
			if err != nil {
				return nil, err
			}
			eTxt, err := cEnergy.RenderASCII()
			if err != nil {
				return nil, err
			}
			text.WriteString(chart.ComposeGrid([][]string{{tTxt, eTxt}}, 4))
			text.WriteString("\n")
			for suffix, c := range map[string]*chart.Chart{"time": cTime, "energy": cEnergy} {
				if err := writeSVG(cfg, fmt.Sprintf("%s-%s-%s", id, sanitize(fc.key), suffix), c); err != nil {
					return nil, err
				}
			}
		}
		rep.Text = text.String()
		return rep, nil
	}
}

func figure5(prec machine.Precision, id string) func(Config) (*Report, error) {
	return func(cfg Config) (*Report, error) {
		rep := &Report{ID: id, Title: fmt.Sprintf("Measured power vs power-line model (%v precision)", prec)}
		var text strings.Builder
		for ci, fc := range fig4Cases(prec) {
			p := core.FromMachine(fc.m, prec)
			eng, err := sim.New(fc.m, sim.DefaultConfig(cfg.Seed+100+int64(ci)*7))
			if err != nil {
				return nil, err
			}
			tuning, _, err := microbench.AutoTune(eng, prec)
			if err != nil {
				return nil, err
			}
			reps := 100
			n := 11
			if cfg.Fast {
				reps, n = 5, 9
			}
			pts, err := microbench.Sweep(cfg.ctx(), eng, prec, microbench.SweepConfig{
				Intensities: core.LogGrid(0.25, fc.hiI, n),
				VolumeBytes: 1 << 28,
				Reps:        reps,
				Tuning:      tuning,
			})
			if err != nil {
				return nil, err
			}
			grid := core.LogGrid(0.25, fc.hiI, 49)
			model := make([]float64, len(grid))
			capped := make([]float64, len(grid))
			p.PowerLineInto(model, grid)
			p.CappedPowerLineInto(capped, grid)
			var mx, mp []float64
			maxMeasured := 0.0
			for _, pt := range pts {
				mx = append(mx, pt.Intensity)
				mp = append(mp, float64(pt.Power))
				if float64(pt.Power) > maxMeasured {
					maxMeasured = float64(pt.Power)
				}
			}
			c := &chart.Chart{
				Title:  fmt.Sprintf("%s: %s (%v) — Power", id, fc.m.Name, prec),
				XLabel: "Intensity (flop:byte)",
				YLabel: "Average power (W)",
				LogX:   true,
				Series: []chart.Series{
					{Name: "power-line model", X: grid, Y: model, Marker: '.', Line: true},
					{Name: "measured", X: mx, Y: mp, Marker: 'o'},
				},
				VLines: []chart.VLine{{X: p.BalanceTime(), Label: "Bτ"}},
			}
			if p.PowerCap > 0 {
				c.Series = append(c.Series, chart.Series{Name: "capped model", X: grid, Y: capped, Marker: 'c', Line: true})
			}
			if fc.m.RatedPower > 0 {
				c.HLines = append(c.HLines, chart.HLine{Y: float64(fc.m.RatedPower), Label: "rated"})
			}
			// The paper's Fig. 5 wattage contour annotations.
			for _, contour := range fig5Contours(fc.key, prec) {
				c.HLines = append(c.HLines, chart.HLine{Y: contour, Label: fmt.Sprintf("%.0f W", contour)})
			}
			txt, err := c.RenderASCII()
			if err != nil {
				return nil, err
			}
			text.WriteString(txt)
			text.WriteString("\n")
			if err := writeSVG(cfg, fmt.Sprintf("%s-%s", id, sanitize(fc.key)), c); err != nil {
				return nil, err
			}

			rep.Comparisons = append(rep.Comparisons,
				Comparison{Name: fc.key + " model max power (W)", Paper: paperMaxPower(fc.key, prec), Measured: p.MaxPower(), Tol: 0.10},
			)
			if fc.m.Name == "NVIDIA GTX 580" && prec == machine.Single {
				rep.Comparisons = append(rep.Comparisons,
					Comparison{Name: "GTX 580 SP: measured max power exceeds 244 W rating", Paper: 1,
						Measured: boolTo01(maxMeasured > 244), Tol: 1e-9,
						Note: "the paper's benchmark 'already begins to exceed' the rating"},
					Comparison{Name: "GTX 580 SP: measured max stays below model peak 387 W", Paper: 1,
						Measured: boolTo01(maxMeasured < 387), Tol: 1e-9,
						Note: "hard cap bends the measured curve below the model near Bτ"},
				)
			}
		}
		rep.Text = text.String()
		return rep, nil
	}
}

// fig5Contours returns the wattage contour lines the paper draws on
// each Fig. 5 subplot (120/160/220/260 W for the GPU double panel,
// 120–180 W for the CPU panels, 120–380 W for the GPU single panel).
func fig5Contours(key string, prec machine.Precision) []float64 {
	switch {
	case key == "GTX 580" && prec == machine.Double:
		return []float64{120, 160, 220, 260}
	case key == "GTX 580" && prec == machine.Single:
		return []float64{120, 220, 280, 380}
	default:
		return []float64{120, 140, 160, 180}
	}
}

// paperMaxPower reads the approximate peak wattages visible in Fig. 5's
// contour annotations: ~260 W (GPU DP), ~180 W (CPU DP), ~387 W
// (GPU SP, quoted in the text), ~180 W (CPU SP).
func paperMaxPower(key string, prec machine.Precision) float64 {
	switch {
	case key == "GTX 580" && prec == machine.Single:
		return 387
	case key == "GTX 580" && prec == machine.Double:
		return 260
	default:
		return 180
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}
