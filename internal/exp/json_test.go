package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	reports := []*Report{
		{
			ID: "a", Title: "A",
			Comparisons: []Comparison{
				{Name: "good", Paper: 1, Measured: 1, Tol: 0.01},
				{Name: "bad", Paper: 1, Measured: 5, Tol: 0.01, Note: "why"},
			},
		},
		{ID: "b", Title: "B"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, reports); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"id": "a"`, `"ok": false`, `"note": "why"`, `"deviations": 1`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
	dev, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dev["a"] != 1 || dev["b"] != 0 {
		t.Errorf("deviations = %v", dev)
	}
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestJSONFromLiveExperiment(t *testing.T) {
	e, _ := ByID("tableII")
	rep, err := e.Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Report{rep}); err != nil {
		t.Fatal(err)
	}
	dev, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dev["tableII"] != 0 {
		t.Errorf("tableII deviations = %d", dev["tableII"])
	}
}
