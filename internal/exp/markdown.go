package exp

import (
	"fmt"
	"io"
	"strings"
)

// WriteMarkdown renders a set of reports as the EXPERIMENTS.md document:
// a summary preamble, one section per experiment with a
// paper-vs-reproduced table, and the rendered artifact in a fenced
// block.
func WriteMarkdown(w io.Writer, reports []*Report, preamble string) error {
	if _, err := fmt.Fprintf(w, "# EXPERIMENTS — paper vs reproduced\n\n"); err != nil {
		return err
	}
	if preamble != "" {
		if _, err := fmt.Fprintf(w, "%s\n\n", strings.TrimSpace(preamble)); err != nil {
			return err
		}
	}

	// Summary table.
	total, deviating := 0, 0
	for _, r := range reports {
		for _, c := range r.Comparisons {
			if c.Tol == 0 {
				continue
			}
			total++
			if !c.Ok() {
				deviating++
			}
		}
	}
	fmt.Fprintf(w, "**%d tolerance-checked comparisons across %d experiments; %d deviate.**\n\n",
		total, len(reports), deviating)
	fmt.Fprintf(w, "| id | experiment | checks | deviations |\n|---|---|---|---|\n")
	for _, r := range reports {
		checks := 0
		for _, c := range r.Comparisons {
			if c.Tol != 0 {
				checks++
			}
		}
		fmt.Fprintf(w, "| [%s](#%s) | %s | %d | %d |\n", r.ID, anchor(r.ID), r.Title, checks, len(r.Failures()))
	}
	fmt.Fprintln(w)

	for _, r := range reports {
		fmt.Fprintf(w, "## %s — %s\n\n", r.ID, r.Title)
		if len(r.Comparisons) > 0 {
			fmt.Fprintf(w, "| quantity | paper | reproduced | status |\n|---|---|---|---|\n")
			for _, c := range r.Comparisons {
				status := "ok"
				switch {
				case c.Tol == 0:
					status = "info"
				case !c.Ok():
					status = "**DEVIATES**"
				}
				note := ""
				if c.Note != "" {
					note = " — " + c.Note
				}
				fmt.Fprintf(w, "| %s | %.6g | %.6g | %s%s |\n",
					escapeMD(c.Name), c.Paper, c.Measured, status, escapeMD(note))
			}
			fmt.Fprintln(w)
		}
		if r.Text != "" {
			fmt.Fprintf(w, "```\n%s```\n\n", ensureNL(r.Text))
		}
	}
	return nil
}

func anchor(id string) string { return strings.ToLower(id) }

func escapeMD(s string) string {
	return strings.NewReplacer("|", "\\|", "\n", " ").Replace(s)
}

func ensureNL(s string) string {
	if strings.HasSuffix(s, "\n") {
		return s
	}
	return s + "\n"
}
