package exp

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/model/scorecard"
)

func init() {
	register(Experiment{
		ID:    "scorecard",
		Title: "Model scorecard: analytic vs blackbox accuracy per (machine, precision)",
		Run:   runScorecard,
	})
}

// runScorecard runs the dual-model accuracy scorecard over the whole
// catalog (internal/model/scorecard) and reports its structural
// guarantees: worker-count invariance of the artifact, blackbox fit
// quality, and the Hofmann-style observation the dual-model design
// exists for — there are pairs where the fitted blackbox beats the
// paper's closed forms, and pairs where the closed forms win.
func runScorecard(cfg Config) (*Report, error) {
	sconf := scorecard.Config{Seed: cfg.Seed}
	if cfg.Fast {
		sconf.FitPoints = 5
		sconf.FitReps = 3
		sconf.EvalPoints = 9
		sconf.EvalReps = 2
	}
	ctx := cfg.ctx()
	sc, err := scorecard.Run(ctx, sconf)
	if err != nil {
		return nil, err
	}
	// Re-run sequentially and compare bytes: the determinism contract
	// (fixed config → byte-identical JSON at any worker count) checked
	// live, not just in the golden test.
	seq := sconf
	seq.Workers = 1
	sc1, err := scorecard.Run(ctx, seq)
	if err != nil {
		return nil, err
	}
	j0, err := sc.ToJSON()
	if err != nil {
		return nil, err
	}
	j1, err := sc1.ToJSON()
	if err != nil {
		return nil, err
	}
	workerInvariant := bytes.Equal(j0, j1)

	minEnergyR2 := 1.0
	blackboxWins, analyticWins := 0, 0
	var selected []string
	for i := range sc.Cards {
		c := &sc.Cards[i]
		if c.EnergyR2 < minEnergyR2 {
			minEnergyR2 = c.EnergyR2
		}
		switch c.Selected {
		case model.BlackboxName:
			blackboxWins++
		case model.AnalyticName:
			analyticWins++
		}
		selected = append(selected, fmt.Sprintf("%s/%s→%s", c.Machine, c.Precision, c.Selected))
	}

	var sb strings.Builder
	sb.WriteString(sc.Render())
	fmt.Fprintf(&sb, "\nauto-selection: %s\n", strings.Join(selected, ", "))
	fmt.Fprintf(&sb, "artifact: %d bytes of JSON, byte-identical at any -workers: %v\n", len(j0), workerInvariant)

	// The figure: the energy error CDF for the pair where the blackbox
	// margin is the question — gtx580 single precision, the measured
	// platform whose closed forms drift most at narrow width.
	for i := range sc.Cards {
		c := &sc.Cards[i]
		if c.Machine == "gtx580" && c.Precision == "single" {
			if err := writeSVG(cfg, "scorecard_energy_cdf", scorecard.CDFChart(c, "energy")); err != nil {
				return nil, err
			}
		}
	}

	return &Report{
		ID:    "scorecard",
		Title: "Model scorecard: analytic vs blackbox accuracy per (machine, precision)",
		Comparisons: []Comparison{
			{Name: "scorecard artifact byte-identical at any worker count", Paper: 1,
				Measured: boolTo01(workerInvariant), Tol: 1e-9},
			{Name: "blackbox energy fit R² > 0.95 on every pair", Paper: 1,
				Measured: boolTo01(minEnergyR2 > 0.95), Tol: 1e-9,
				Note: fmt.Sprintf("worst pair R² = %.4f", minEnergyR2)},
			{Name: "pairs where the fitted blackbox beats the closed forms", Paper: 1,
				Measured: boolTo01(blackboxWins > 0), Tol: 1e-9,
				Note: "the Hofmann et al. (arXiv:1803.01618) critique, reproduced against our own simulator"},
			{Name: "pairs where the closed forms win", Paper: 1,
				Measured: boolTo01(analyticWins > 0), Tol: 1e-9,
				Note: "the analytic model stays the default: it wins wherever eqs. 3-4 describe the machine"},
			{Name: "(machine, precision) pairs scored", Paper: 0,
				Measured: float64(len(sc.Cards))},
			{Name: "pairs auto-selecting blackbox", Paper: 0,
				Measured: float64(blackboxWins)},
		},
		Text: sb.String(),
	}, nil
}
