package exp

import (
	"encoding/json"
	"io"
)

// jsonReport is the machine-readable form of a Report (Text omitted:
// the artifact is for dashboards and regression tracking, not humans).
type jsonReport struct {
	// ID and Title identify the experiment.
	ID    string `json:"id"`
	Title string `json:"title"`
	// Comparisons are the paper-vs-reproduced rows.
	Comparisons []jsonComparison `json:"comparisons"`
	// Deviations counts failed tolerance checks.
	Deviations int `json:"deviations"`
}

// jsonComparison mirrors Comparison with an explicit ok field.
type jsonComparison struct {
	// Name describes the quantity.
	Name string `json:"name"`
	// Paper and Measured are the compared values.
	Paper    float64 `json:"paper"`
	Measured float64 `json:"measured"`
	// Tol is the relative tolerance (0 = informational).
	Tol float64 `json:"tol,omitempty"`
	// Ok reports whether the check passed (informational rows are ok).
	Ok bool `json:"ok"`
	// Note carries caveats.
	Note string `json:"note,omitempty"`
}

// WriteJSON emits the reports as a JSON array for dashboards and
// regression tracking.
func WriteJSON(w io.Writer, reports []*Report) error {
	out := make([]jsonReport, 0, len(reports))
	for _, r := range reports {
		jr := jsonReport{ID: r.ID, Title: r.Title, Deviations: len(r.Failures())}
		for _, c := range r.Comparisons {
			jr.Comparisons = append(jr.Comparisons, jsonComparison{
				Name: c.Name, Paper: c.Paper, Measured: c.Measured,
				Tol: c.Tol, Ok: c.Ok(), Note: c.Note,
			})
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a report artifact written by WriteJSON, returning
// per-experiment deviation counts keyed by experiment ID — what a
// regression tracker needs.
func ReadJSON(r io.Reader) (map[string]int, error) {
	var in []jsonReport
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	out := make(map[string]int, len(in))
	for _, jr := range in {
		out[jr.ID] = jr.Deviations
	}
	return out, nil
}
