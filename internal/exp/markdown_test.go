package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteMarkdown(t *testing.T) {
	reports := []*Report{
		{
			ID: "tableX", Title: "A table",
			Comparisons: []Comparison{
				{Name: "good|pipe", Paper: 1, Measured: 1.001, Tol: 0.01},
				{Name: "bad", Paper: 1, Measured: 3, Tol: 0.01},
				{Name: "informational", Paper: 5, Measured: 6, Note: "context"},
			},
			Text: "body text",
		},
		{ID: "figY", Title: "A figure"},
	}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, reports, "preamble here"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# EXPERIMENTS — paper vs reproduced",
		"preamble here",
		"**2 tolerance-checked comparisons across 2 experiments; 1 deviate.**",
		"## tableX — A table",
		"| good\\|pipe | 1 | 1.001 | ok |",
		"**DEVIATES**",
		"| informational | 5 | 6 | info — context |",
		"```\nbody text\n```",
		"[figY](#figy)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestWriteMarkdownEmptyPreamble(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 tolerance-checked comparisons across 0 experiments") {
		t.Error("empty summary wrong")
	}
}
