// Package exp is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation, each returning a report
// with paper-reported versus reproduced values and a rendered text
// (and optional SVG) artifact.
//
// The registry:
//
//	tableI     — model parameter glossary (Table I)
//	tableII    — Fermi sample parameters and balances (Table II)
//	fig2a      — roofline vs arch line (Fig. 2a)
//	fig2b      — power-line chart (Fig. 2b)
//	tableIII   — platform peaks (Table III)
//	tableIV    — fitted energy coefficients via eq. 9 (Table IV)
//	fig4a      — measured vs model, double precision (Fig. 4a)
//	fig4b      — measured vs model, single precision (Fig. 4b)
//	fig5a      — power lines, double precision (Fig. 5a)
//	fig5b      — power lines, single precision + cap (Fig. 5b)
//	peaks      — §IV-B achieved fractions of peak
//	fmmu       — §V-C FMM U-list energy estimation study
//	greenup    — §VII work–communication trade-off analysis (eq. 10)
//	racetohalt — §II-D/§V-B race-to-halt balance-gap analysis
package exp

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/chart"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Config controls experiment execution.
type Config struct {
	// Seed drives all simulated measurement noise.
	Seed int64
	// Fast trades statistical weight for speed (fewer reps, smaller
	// instances); used by the test suite. The experiments binary runs
	// full size by default.
	Fast bool
	// SVGDir, when set, receives one SVG per figure experiment.
	SVGDir string
	// PNGDir, when set, receives one PNG per figure experiment.
	PNGDir string
	// Trace, when non-nil, records spans for the sweeps inside each
	// experiment. Tracing never touches the noise streams, so reports
	// are identical with or without it.
	Trace *trace.Tracer
}

// ctx returns a context carrying cfg.Trace, the handle experiments use
// to hand the tracer down to Sweep and the worker pool.
func (c Config) ctx() context.Context {
	return trace.WithTracer(context.Background(), c.Trace)
}

// Comparison pairs a paper-reported value with its reproduced value.
type Comparison struct {
	// Name describes the quantity (with units).
	Name string
	// Paper is the value the paper reports.
	Paper float64
	// Measured is the reproduction's value.
	Measured float64
	// Tol is the acceptable relative deviation for Ok; 0 means the
	// comparison is informational only.
	Tol float64
	// Note carries caveats (e.g. known simulator/testbed differences).
	Note string
}

// Ok reports whether the reproduced value is within tolerance of the
// paper's. Informational comparisons (Tol = 0) are always Ok.
func (c Comparison) Ok() bool {
	if c.Tol == 0 {
		return true
	}
	if c.Paper == 0 {
		return math.Abs(c.Measured) <= c.Tol
	}
	return math.Abs(c.Measured-c.Paper)/math.Abs(c.Paper) <= c.Tol
}

// Report is one experiment's outcome.
type Report struct {
	// ID and Title identify the experiment.
	ID, Title string
	// Comparisons hold paper-vs-reproduced values.
	Comparisons []Comparison
	// Text is the rendered artifact (tables, ASCII charts).
	Text string
}

// Failures returns the comparisons that exceeded tolerance.
func (r *Report) Failures() []Comparison {
	var out []Comparison
	for _, c := range r.Comparisons {
		if !c.Ok() {
			out = append(out, c)
		}
	}
	return out
}

// Render formats the report for terminal output.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	if len(r.Comparisons) > 0 {
		fmt.Fprintf(&sb, "%-44s %14s %14s  %s\n", "quantity", "paper", "reproduced", "ok")
		for _, c := range r.Comparisons {
			status := "ok"
			if !c.Ok() {
				status = "DEVIATES"
			}
			if c.Tol == 0 {
				status = "info"
			}
			fmt.Fprintf(&sb, "%-44s %14.4g %14.4g  %s", c.Name, c.Paper, c.Measured, status)
			if c.Note != "" {
				fmt.Fprintf(&sb, "  (%s)", c.Note)
			}
			sb.WriteString("\n")
		}
	}
	if r.Text != "" {
		sb.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the registry key (e.g. "fig4a").
	ID string
	// Title is a human-readable summary.
	Title string
	// Run executes the experiment.
	Run func(Config) (*Report, error)
}

var registry = map[string]Experiment{}

// canonicalOrder lists experiments in the order the paper presents
// them; experiments not in this list (extensions) sort after, by ID.
var canonicalOrder = []string{
	"tableI", "tableII", "fig2a", "fig2b", "tableIII",
	"fig4a", "fig4b", "tableIV", "peaks",
	"fig5a", "fig5b", "fmmu", "greenup", "racetohalt",
}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

func rank(id string) int {
	for i, v := range canonicalOrder {
		if v == id {
			return i
		}
	}
	return len(canonicalOrder)
}

// All returns every experiment in paper order (extensions last, by ID).
func All() []Experiment {
	ids := IDs()
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		out = append(out, registry[id])
	}
	return out
}

// RunAll executes the given experiments on a bounded worker pool
// (parallel.Workers semantics: workers < 1 means GOMAXPROCS) and
// returns their reports in input order. Experiments are independent —
// each seeds its own simulators from cfg.Seed — so concurrency changes
// wall time, never report content; the first failure cancels the
// remaining experiments and is returned annotated with its experiment
// ID. When ctx or cfg carries a tracer, each experiment runs under an
// "exp.<id>" span.
func RunAll(ctx context.Context, selected []Experiment, cfg Config, workers int) ([]*Report, error) {
	if cfg.Trace == nil {
		cfg.Trace = trace.FromContext(ctx)
	}
	return parallel.Map(ctx, len(selected), workers,
		func(_ context.Context, i int) (*Report, error) {
			_, sp := cfg.Trace.StartRoot(context.Background(), "exp."+selected[i].ID)
			rep, err := selected[i].Run(cfg)
			sp.End()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", selected[i].ID, err)
			}
			return rep, nil
		})
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns the registered experiment IDs in paper order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ri, rj := rank(ids[i]), rank(ids[j])
		if ri != rj {
			return ri < rj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// writeSVG renders the chart into cfg.SVGDir (and, when configured,
// cfg.PNGDir) — the figure-emission hook every chart experiment calls.
func writeSVG(cfg Config, name string, c *chart.Chart) error {
	if cfg.SVGDir != "" {
		svg, err := c.RenderSVG()
		if err != nil {
			return err
		}
		if err := os.MkdirAll(cfg.SVGDir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(cfg.SVGDir, name+".svg"), []byte(svg), 0o644); err != nil {
			return err
		}
	}
	if cfg.PNGDir != "" {
		if err := os.MkdirAll(cfg.PNGDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(cfg.PNGDir, name+".png"))
		if err != nil {
			return err
		}
		if err := c.RenderPNG(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
