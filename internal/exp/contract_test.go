package exp

import (
	"strings"
	"testing"
)

// The reproduction contract: each canonical experiment must keep
// reporting these paper-vs-reproduced quantities. Renaming or dropping
// one is an API break for downstream dashboards (exp.WriteJSON), so the
// expected key set is pinned here.
var contract = map[string][]string{
	"tableII": {
		"τflop (ps/flop)", "τmem (ps/byte)", "Bτ (flop/byte)",
		"εflop (pJ/flop)", "εmem (pJ/byte)", "Bε (flop/byte)",
	},
	"fig2a": {
		"time-balance point Bτ", "energy-balance point Bε",
		"arch line at Bε", "roofline at Bτ", "peak efficiency",
	},
	"fig2b": {
		"compute-bound limit", "memory-bound limit", "max power", "argmax",
	},
	"tableIII": {
		"i7-950 SP peak", "i7-950 DP peak", "i7-950 bandwidth", "i7-950 TDP",
		"GTX 580 SP peak", "GTX 580 DP peak", "GTX 580 bandwidth", "GTX 580 max rating",
	},
	"tableIV": {
		"NVIDIA GTX 580 εs", "NVIDIA GTX 580 εd", "NVIDIA GTX 580 εmem", "NVIDIA GTX 580 π0",
		"Intel Core i7-950 εs", "Intel Core i7-950 εd", "Intel Core i7-950 εmem", "Intel Core i7-950 π0",
	},
	"fig4a": {
		"GTX 580 Bτ", "GTX 580 Bε const=0", "GTX 580 B̂ε at y=1/2",
		"GTX 580 peak (GFLOP/s)", "GTX 580 peak (GFLOP/J)",
		"i7-950 Bτ", "i7-950 Bε const=0", "i7-950 B̂ε at y=1/2",
		"i7-950 peak (GFLOP/s)", "i7-950 peak (GFLOP/J)",
	},
	"fig4b": {
		"GTX 580 Bτ", "GTX 580 B̂ε at y=1/2", "i7-950 Bτ", "i7-950 B̂ε at y=1/2",
	},
	"fig5a": {"GTX 580 model max power", "i7-950 model max power"},
	"fig5b": {
		"GTX 580 model max power", "i7-950 model max power",
		"measured max power exceeds 244 W", "below model peak 387 W",
	},
	"peaks": {
		"NVIDIA GTX 580 double achieved GFLOP/s", "NVIDIA GTX 580 double achieved GB/s",
		"NVIDIA GTX 580 single achieved GFLOP/s", "NVIDIA GTX 580 single achieved GB/s",
		"Intel Core i7-950 single achieved GFLOP/s", "Intel Core i7-950 single achieved GB/s",
		"Intel Core i7-950 double achieved GFLOP/s", "Intel Core i7-950 double achieved GB/s",
	},
	"fmmu": {
		"fitted cache energy", "mean underestimate", "refined median relative error",
	},
	"greenup": {
		"eq.(10) agreement", "hard f limit",
	},
	"racetohalt": {
		"race-to-halt effective on all measured cases",
		"GTX 580 double reverses when π0=0",
		"i7-950 double does NOT reverse when π0=0",
	},
}

func TestReproductionContract(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every canonical experiment")
	}
	for id, wantNames := range contract {
		id, wantNames := id, wantNames
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q missing from registry", id)
			}
			rep, err := e.Run(fastCfg())
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range wantNames {
				found := false
				for _, c := range rep.Comparisons {
					if strings.Contains(c.Name, want) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("comparison %q missing from %s", want, id)
				}
			}
		})
	}
}
