package exp

import (
	"fmt"
	"strings"

	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/fmm"
	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "peaks", Title: "Achieved fractions of peak (§IV-B)", Run: runPeaks})
	register(Experiment{ID: "fmmu", Title: "FMM U-list energy estimation study (§V-C)", Run: runFMMU})
	register(Experiment{ID: "greenup", Title: "Work–communication trade-off / greenup analysis (§VII, eq. 10)", Run: runGreenup})
	register(Experiment{ID: "racetohalt", Title: "Race-to-halt balance-gap analysis (§II-D, §V-B)", Run: runRaceToHalt})
}

func runPeaks(cfg Config) (*Report, error) {
	rep := &Report{ID: "peaks", Title: "Achieved peak fractions"}
	cases := []struct {
		m            *machine.Machine
		prec         machine.Precision
		gflops, gbps float64 // §IV-B reported achieved values
	}{
		{machine.GTX580(), machine.Double, 196, 170},
		{machine.GTX580(), machine.Single, 1398, 168},
		{machine.CoreI7950(), machine.Single, 99.4, 18.7},
		{machine.CoreI7950(), machine.Double, 49.7, 18.9},
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %-8s %14s %14s %12s %12s\n", "device", "prec", "GFLOP/s", "% of peak", "GB/s", "% of peak")
	for i, c := range cases {
		eng, err := sim.New(c.m, sim.DefaultConfig(cfg.Seed+200+int64(i)))
		if err != nil {
			return nil, err
		}
		tuning, _, err := microbench.AutoTune(eng, c.prec)
		if err != nil {
			return nil, err
		}
		gf, gb, err := microbench.Peaks(eng, c.prec, tuning)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "%-20s %-8v %14.1f %13.1f%% %12.1f %11.1f%%\n",
			c.m.Name, c.prec, gf, gf/(c.m.Params(c.prec).PeakFlops/1e9)*100,
			gb, gb/(c.m.Bandwidth/1e9)*100)
		label := fmt.Sprintf("%s %v", c.m.Name, c.prec)
		rep.Comparisons = append(rep.Comparisons,
			Comparison{Name: label + " achieved GFLOP/s", Paper: c.gflops, Measured: gf, Tol: 0.05},
			Comparison{Name: label + " achieved GB/s", Paper: c.gbps, Measured: gb, Tol: 0.05},
		)
	}
	rep.Text = sb.String()
	return rep, nil
}

func runFMMU(cfg Config) (*Report, error) {
	sc := fmm.StudyConfig{Seed: cfg.Seed}
	if cfg.Fast {
		sc.N = 2048
		sc.LeafSize = 192
		var subset []fmm.Variant
		for _, v := range fmm.GenerateVariants() {
			if v.Unroll == 1 && v.VectorWidth == 1 {
				subset = append(subset, v)
			}
		}
		sc.Variants = subset
	}
	res, err := fmm.RunStudy(sc)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine: %s; variants: %d (%d L1/L2-only); pairs: %d; W: %.3g flops\n",
		res.MachineName, len(res.Results), res.CacheOnlyCount, res.Pairs, res.W)
	fmt.Fprintf(&sb, "fitted cache energy: %.1f pJ/B (planted %.1f)\n", res.FittedCachePJ, res.TrueCachePJ)
	fmt.Fprintf(&sb, "eq.(2) mean underestimate over L1/L2-only class: %.1f%%\n", res.MeanUnderestimate*100)
	fmt.Fprintf(&sb, "refined-estimate median error: %.2f%%\n", res.MedianRefinedErr*100)
	// The five worst-underestimated variants, for flavour.
	rs := append([]fmm.VariantResult(nil), res.Results...)
	fmm.SortByEq2Error(rs)
	fmt.Fprintf(&sb, "%-28s %10s %12s %12s\n", "variant", "eq2 err", "refined err", "I (fl/B)")
	for i := 0; i < len(rs) && i < 5; i++ {
		fmt.Fprintf(&sb, "%-28s %9.1f%% %11.2f%% %12.0f\n",
			rs[i].Variant.Name(), rs[i].Eq2RelError()*100, rs[i].RefinedRelError()*100, rs[i].IntensityOf())
	}
	return &Report{
		ID: "fmmu", Title: "FMM U-list energy estimation",
		Comparisons: []Comparison{
			{Name: "fitted cache energy (pJ/B)", Paper: 187, Measured: res.FittedCachePJ, Tol: 0.10},
			{Name: "eq.(2) mean underestimate", Paper: 0.33, Measured: res.MeanUnderestimate, Tol: 0,
				Note: "paper: 'lower by 33% on average'; magnitude depends on the variant mix"},
			{Name: "refined median relative error", Paper: 0.041, Measured: res.MedianRefinedErr, Tol: 0,
				Note: "paper: 4.1% median error; ours reflects simulated measurement noise"},
			{Name: "refined median error below 6%", Paper: 1, Measured: boolTo01(res.MedianRefinedErr < 0.06), Tol: 1e-9},
			{Name: "eq.(2) underestimates substantially (>15%)", Paper: 1, Measured: boolTo01(res.MeanUnderestimate > 0.15), Tol: 1e-9},
		},
		Text: sb.String(),
	}, nil
}

func runGreenup(Config) (*Report, error) {
	// The paper's analysis uses the π0 = 0 model on a machine with a
	// balance gap; use the Table II Fermi.
	p := core.FromMachine(machine.FermiTableII(), machine.Double)
	rep := &Report{ID: "greenup", Title: "Greenup conditions (eq. 10)"}

	// Agreement between eq. (10) and the exact energy model over a
	// dense (f, m, I) grid.
	total, agree := 0, 0
	for _, i := range core.LogGrid(0.25, 64, 9) {
		k := core.KernelAt(1e9, i)
		for _, m := range []float64{1.25, 2, 4, 16, 256} {
			for _, f := range []float64{1.01, 1.5, 2, 3, 5, 9, 17} {
				tr := core.Tradeoff{F: f, M: m}
				exact := p.Greenup(k, tr) > 1
				pred := p.GreenupPredicted(i, tr)
				total++
				if exact == pred {
					agree++
				}
			}
		}
	}
	rep.Comparisons = append(rep.Comparisons,
		Comparison{Name: "eq.(10) agreement with exact model (π0=0)", Paper: 1, Measured: float64(agree) / float64(total), Tol: 1e-9},
		Comparison{Name: "hard f limit at I=Bτ: 1 + Bε/Bτ", Paper: 1 + 14.4/3.6, Measured: p.MaxExtraWorkComputeBound(), Tol: 0.01},
	)

	// A quadrant table at I = 2 (memory-bound in time, below Bε).
	var sb strings.Builder
	k := core.KernelAt(1e9, 2)
	fmt.Fprintf(&sb, "baseline I=2 flop/byte on Table II Fermi (π0=0): Bτ=%.2f Bε=%.1f\n", p.BalanceTime(), p.BalanceEnergy())
	fmt.Fprintf(&sb, "%-8s %-8s %10s %10s  %s\n", "f", "m", "speedup", "greenup", "outcome")
	for _, tc := range []core.Tradeoff{
		{F: 1.1, M: 4}, {F: 2, M: 4}, {F: 4, M: 4}, {F: 8, M: 4},
		{F: 2, M: 64}, {F: 8, M: 64}, {F: 1.1, M: 1.2},
	} {
		fmt.Fprintf(&sb, "%-8.2f %-8.2f %10.3f %10.3f  %s\n",
			tc.F, tc.M, p.Speedup(k, tc), p.Greenup(k, tc), p.Classify(k, tc))
	}

	// The whole (f, m) plane as a heatmap of outcomes.
	fs := core.LogGrid(1.05, 32, 21)
	ms := core.LogGrid(1.1, 1024, 25)
	z := make([][]float64, len(fs))
	for i, f := range fs {
		z[i] = make([]float64, len(ms))
		for j, m := range ms {
			z[i][j] = float64(p.Classify(k, core.Tradeoff{F: f, M: m}))
		}
	}
	hm := &chart.Heatmap{
		Title:  "trade-off outcome over the (m, f) plane at baseline I=2",
		XLabel: "m (traffic reduction, log)",
		YLabel: "f (extra work, log)",
		X:      ms,
		Y:      fs,
		Z:      z,
		Cell: func(v float64) rune {
			switch core.TradeoffOutcome(int(v)) {
			case core.Both:
				return 'B'
			case core.GreenupOnly:
				return 'g'
			case core.SpeedupOnly:
				return 's'
			default:
				return '.'
			}
		},
		Legend: []string{
			"B = speedup and greenup, g = greenup only, s = speedup only, . = neither",
		},
	}
	hmText, err := hm.RenderASCII()
	if err != nil {
		return nil, err
	}
	rep.Text = sb.String() + "\n" + hmText
	return rep, nil
}

func runRaceToHalt(Config) (*Report, error) {
	rep := &Report{ID: "racetohalt", Title: "Race-to-halt analysis"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %-8s %8s %10s %12s %14s\n", "machine", "prec", "Bτ", "B̂ε(y=½)", "gap adverse?", "race-to-halt?")
	cases := []struct {
		m    *machine.Machine
		prec machine.Precision
	}{
		{machine.GTX580(), machine.Single},
		{machine.GTX580(), machine.Double},
		{machine.CoreI7950(), machine.Single},
		{machine.CoreI7950(), machine.Double},
	}
	allHold := true
	for _, c := range cases {
		p := core.FromMachine(c.m, c.prec)
		rth := p.RaceToHaltEffective()
		if !rth {
			allHold = false
		}
		fmt.Fprintf(&sb, "%-20s %-8v %8.2f %10.2f %12v %14v\n",
			c.m.Name, c.prec, p.BalanceTime(), p.HalfEfficiencyIntensity(),
			p.HalfEfficiencyIntensity() > p.BalanceTime(), rth)
	}
	// π0 → 0 reversal cases (§V-B).
	gpu := core.FromMachine(machine.GTX580(), machine.Double)
	gpu.Pi0 = 0
	cpu := core.FromMachine(machine.CoreI7950(), machine.Double)
	cpu.Pi0 = 0
	fmt.Fprintf(&sb, "with π0→0: GTX 580 double race-to-halt=%v (reverses), i7-950 double race-to-halt=%v (does not)\n",
		gpu.RaceToHaltEffective(), cpu.RaceToHaltEffective())
	rep.Comparisons = []Comparison{
		{Name: "race-to-halt effective on all measured cases", Paper: 1, Measured: boolTo01(allHold), Tol: 1e-9},
		{Name: "GTX 580 double reverses when π0=0", Paper: 1, Measured: boolTo01(!gpu.RaceToHaltEffective()), Tol: 1e-9},
		{Name: "i7-950 double does NOT reverse when π0=0", Paper: 1, Measured: boolTo01(cpu.RaceToHaltEffective()), Tol: 1e-9},
	}
	rep.Text = sb.String()
	return rep, nil
}
