package exp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/sim"
	"repro/internal/units"
)

func init() {
	register(Experiment{ID: "tableI", Title: "Model parameter glossary instantiated per platform (Table I)", Run: runTableI})
	register(Experiment{ID: "tableII", Title: "Sample Fermi model parameters (Table II)", Run: runTableII})
	register(Experiment{ID: "tableIII", Title: "Platform peak capabilities (Table III)", Run: runTableIII})
	register(Experiment{ID: "tableIV", Title: "Fitted energy coefficients via eq. 9 (Table IV)", Run: runTableIV})
}

func runTableI(cfg Config) (*Report, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-9s %12s %12s %12s %12s %10s %8s %8s %8s\n",
		"machine", "precision", "τflop", "τmem", "εflop", "εmem", "π0", "Bτ", "Bε", "η")
	for _, key := range []string{"fermi", "gtx580", "i7-950"} {
		m := machine.Catalog()[key]
		for _, prec := range []machine.Precision{machine.Single, machine.Double} {
			p := core.FromMachine(m, prec)
			fmt.Fprintf(&sb, "%-10s %-9s %12s %12s %12s %12s %10s %8.3g %8.3g %8.3g\n",
				key, prec,
				units.FormatSI(p.TauFlop, "s", 3),
				units.FormatSI(p.TauMem, "s", 3),
				units.FormatSI(p.EpsFlop, "J", 3),
				units.FormatSI(p.EpsMem, "J", 3),
				units.FormatSI(p.Pi0, "W", 3),
				p.BalanceTime(), p.BalanceEnergy(), p.EtaFlop())
		}
	}
	return &Report{ID: "tableI", Title: "Model parameters per platform", Text: sb.String()}, nil
}

func runTableII(Config) (*Report, error) {
	m := machine.FermiTableII()
	p := core.FromMachine(m, machine.Double)
	return &Report{
		ID:    "tableII",
		Title: "Fermi-class GPU sample parameters",
		Comparisons: []Comparison{
			{Name: "τflop (ps/flop)", Paper: 1.9, Measured: p.TauFlop * 1e12, Tol: 0.03},
			{Name: "τmem (ps/byte)", Paper: 6.9, Measured: p.TauMem * 1e12, Tol: 0.01},
			{Name: "Bτ (flop/byte)", Paper: 3.6, Measured: p.BalanceTime(), Tol: 0.01},
			{Name: "εflop (pJ/flop)", Paper: 25, Measured: p.EpsFlop * 1e12, Tol: 1e-9},
			{Name: "εmem (pJ/byte)", Paper: 360, Measured: p.EpsMem * 1e12, Tol: 1e-9},
			{Name: "Bε (flop/byte)", Paper: 14.4, Measured: p.BalanceEnergy(), Tol: 0.001},
		},
	}, nil
}

func runTableIII(Config) (*Report, error) {
	gpu := machine.GTX580()
	cpu := machine.CoreI7950()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %14s %14s %12s %10s\n", "device", "SP GFLOP/s", "DP GFLOP/s", "GB/s", "rated W")
	for _, m := range []*machine.Machine{cpu, gpu} {
		fmt.Fprintf(&sb, "%-20s %14.2f %14.2f %12.1f %10.0f\n",
			m.Name, m.SP.PeakFlops/1e9, m.DP.PeakFlops/1e9, m.Bandwidth/1e9, float64(m.RatedPower))
	}
	return &Report{
		ID:    "tableIII",
		Title: "Experimental platforms",
		Comparisons: []Comparison{
			{Name: "i7-950 SP peak (GFLOP/s)", Paper: 106.56, Measured: cpu.SP.PeakFlops / 1e9, Tol: 1e-9},
			{Name: "i7-950 DP peak (GFLOP/s)", Paper: 53.28, Measured: cpu.DP.PeakFlops / 1e9, Tol: 1e-9},
			{Name: "i7-950 bandwidth (GB/s)", Paper: 25.6, Measured: cpu.Bandwidth / 1e9, Tol: 1e-9},
			{Name: "i7-950 TDP (W)", Paper: 130, Measured: float64(cpu.RatedPower), Tol: 1e-9},
			{Name: "GTX 580 SP peak (GFLOP/s)", Paper: 1581.06, Measured: gpu.SP.PeakFlops / 1e9, Tol: 1e-9},
			{Name: "GTX 580 DP peak (GFLOP/s)", Paper: 197.63, Measured: gpu.DP.PeakFlops / 1e9, Tol: 1e-9},
			{Name: "GTX 580 bandwidth (GB/s)", Paper: 192.4, Measured: gpu.Bandwidth / 1e9, Tol: 1e-9},
			{Name: "GTX 580 max rating (W)", Paper: 244, Measured: float64(gpu.RatedPower), Tol: 1e-9},
		},
		Text: sb.String(),
	}, nil
}

// sweepBoth runs the intensity microbenchmark for both precisions on a
// machine and returns the pooled points.
func sweepBoth(cfg Config, m *machine.Machine, seed int64) ([]microbench.Point, error) {
	eng, err := sim.New(m, sim.DefaultConfig(seed))
	if err != nil {
		return nil, err
	}
	tuning, _, err := microbench.AutoTune(eng, machine.Single)
	if err != nil {
		return nil, err
	}
	reps := 100
	points := 13
	if cfg.Fast {
		reps = 10
		points = 9
	}
	var out []microbench.Point
	for _, prec := range []machine.Precision{machine.Single, machine.Double} {
		hi := 64.0
		if prec == machine.Double {
			hi = 16
		}
		pts, err := microbench.Sweep(cfg.ctx(), eng, prec, microbench.SweepConfig{
			Intensities: core.LogGrid(0.25, hi, points),
			VolumeBytes: 1 << 28,
			Reps:        reps,
			Tuning:      tuning,
			KeepReps:    true, // the paper regresses on every run
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

func runTableIV(cfg Config) (*Report, error) {
	rep := &Report{ID: "tableIV", Title: "Fitted energy coefficients (eq. 9)"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %12s %12s %14s %10s %10s\n", "device", "εs (pJ)", "εd (pJ)", "εmem (pJ/B)", "π0 (W)", "R²")
	paper := map[string][4]float64{
		"NVIDIA GTX 580":    {99.7, 212, 513, 122},
		"Intel Core i7-950": {371, 670, 795, 122},
	}
	// With the full 100-rep sweep the fit sees thousands of
	// observations and the p-values land far below the paper's 1e-14;
	// the fast test-mode sweep has ~200 observations, so the check is
	// correspondingly looser there.
	pTol := 1e-14
	if cfg.Fast {
		pTol = 1e-3
	}
	for i, m := range []*machine.Machine{machine.GTX580(), machine.CoreI7950()} {
		pts, err := sweepBoth(cfg, m, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		coef, _, err := microbench.FitEq9(pts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "%-20s %12.1f %12.1f %14.1f %10.1f %10.6f\n",
			m.Name, coef.EpsSingle*1e12, coef.EpsDouble*1e12, coef.EpsMem*1e12, coef.Pi0, coef.R2)
		want := paper[m.Name]
		tol := 0.08
		rep.Comparisons = append(rep.Comparisons,
			Comparison{Name: m.Name + " εs (pJ/flop)", Paper: want[0], Measured: coef.EpsSingle * 1e12, Tol: tol},
			Comparison{Name: m.Name + " εd (pJ/flop)", Paper: want[1], Measured: coef.EpsDouble * 1e12, Tol: tol},
			Comparison{Name: m.Name + " εmem (pJ/byte)", Paper: want[2], Measured: coef.EpsMem * 1e12, Tol: tol},
			Comparison{Name: m.Name + " π0 (W)", Paper: want[3], Measured: coef.Pi0, Tol: tol},
			Comparison{Name: m.Name + " max p-value", Paper: 0, Measured: coef.MaxPValue, Tol: pTol,
				Note: "paper reports p-values below 1e-14 (full sweep reproduces this)"},
		)
	}
	rep.Text = sb.String()
	return rep, nil
}
