package exp

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/fmm"
	"repro/internal/machine"
)

func init() {
	register(Experiment{ID: "ablation-prefetch", Title: "Next-line prefetcher ablation: streaming vs reuse-heavy traffic", Run: runAblationPrefetch})
}

func runAblationPrefetch(Config) (*Report, error) {
	m := machine.GTX580()
	var sb strings.Builder

	// Streaming workload: a linear sweep. The prefetcher roughly halves
	// outer-level demand misses without reducing total traffic —
	// compulsory fetches can be reordered, never removed.
	stream := func(pf bool) (demand, dram uint64, err error) {
		h, err := cache.FromMachine(m)
		if err != nil {
			return 0, 0, err
		}
		h.EnablePrefetch(pf)
		const lines = 8192
		for i := 0; i < lines; i++ {
			h.Read(uint64(i)*uint64(h.LineSize()), h.LineSize())
		}
		st := h.Stats()
		return st[len(st)-1].DemandMisses, h.DRAMReadBytes(), nil
	}
	sOffD, sOffT, err := stream(false)
	if err != nil {
		return nil, err
	}
	sOnD, sOnT, err := stream(true)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "streaming sweep: demand misses %d → %d with prefetch; DRAM bytes %d → %d\n",
		sOffD, sOnD, sOffT, sOnT)

	// Reuse-heavy workload: the FMM U-list reference variant. Source
	// blocks are revisited constantly, so the prefetcher has little
	// useful left to fetch; its speculative lines must not blow up the
	// traffic either.
	fmmTraffic := func(pf bool) (float64, error) {
		pts := fmm.UniformPoints(1024, 9)
		tr, err := fmm.Build(pts, 128, 8)
		if err != nil {
			return 0, err
		}
		u := tr.BuildULists()
		h, err := cache.FromMachine(m)
		if err != nil {
			return 0, err
		}
		h.EnablePrefetch(pf)
		ref := fmm.Variant{Layout: fmm.SoA, Staging: fmm.CacheOnly, TargetTile: 1, Unroll: 1, VectorWidth: 1}
		tf, err := tr.SimulateTraffic(u, ref, h)
		if err != nil {
			return 0, err
		}
		return tf.DRAMReadBytes, nil
	}
	fOff, err := fmmTraffic(false)
	if err != nil {
		return nil, err
	}
	fOn, err := fmmTraffic(true)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "FMM U-list reference: DRAM read bytes %.3g → %.3g with prefetch (×%.2f)\n",
		fOff, fOn, fOn/fOff)

	return &Report{
		ID: "ablation-prefetch", Title: "Prefetcher ablation",
		Comparisons: []Comparison{
			{Name: "streaming demand misses at least halved", Paper: 1,
				Measured: boolTo01(sOnD <= sOffD/2+64), Tol: 1e-9},
			{Name: "streaming DRAM traffic unchanged (compulsory)", Paper: 1,
				Measured: float64(sOnT) / float64(sOffT), Tol: 0.01,
				Note: "prefetching reorders compulsory fetches, it cannot remove them"},
			{Name: "FMM traffic inflation stays below 2×", Paper: 1,
				Measured: boolTo01(fOn < 2*fOff), Tol: 1e-9,
				Note: "reuse-heavy access gives the prefetcher little to help with"},
		},
		Text: sb.String(),
	}, nil
}
