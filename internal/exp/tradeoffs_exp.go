package exp

import (
	"fmt"
	"strings"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/machine"
)

func init() {
	register(Experiment{ID: "tradeoffs", Title: "Cataloged work–communication trade-offs on today's and tomorrow's machines (§VII)", Run: runTradeoffs})
}

func runTradeoffs(Config) (*Report, error) {
	var sb strings.Builder
	rep := &Report{ID: "tradeoffs", Title: "Trade-off catalog"}

	type machineCase struct {
		label string
		p     core.Params
	}
	fermi := core.FromMachine(machine.FermiTableII(), machine.Double)
	fermi.Pi0 = 0
	future := core.FromMachine(machine.FutureBalanceGap(), machine.Double)
	cases := []machineCase{
		{"Fermi Table II (π0=0)", fermi},
		{"future balance-gap machine", future},
	}
	base := core.KernelAt(1e9, 0.5) // memory-bound stencil-like baseline
	knobs := []float64{1, 2, 4, 8, 16, 32, 64, 128}

	for _, mc := range cases {
		fmt.Fprintf(&sb, "%s (Bτ=%.2f, Bε=%.2f), baseline I=0.5:\n", mc.label, mc.p.BalanceTime(), mc.p.BalanceEnergy())
		for _, tr := range algs.TradeoffCatalog() {
			sweep, err := algs.SweepTradeoff(mc.p, base, tr, knobs)
			if err != nil {
				return nil, err
			}
			best, err := algs.BestKnob(mc.p, base, tr, knobs)
			if err != nil {
				return nil, err
			}
			lastGood := 0.0
			for _, s := range sweep {
				if s.Greenup > 1 {
					lastGood = s.Knob
				}
			}
			fmt.Fprintf(&sb, "  %-26s greenup region up to knob %g; energy-optimal knob %g\n",
				tr.Name, lastGood, best)
		}
		fmt.Fprintln(&sb)
	}

	// Checks: 2.5D replication is always a greenup on a memory-bound
	// baseline; time-tiling's optimum is interior on Fermi; the future
	// machine tolerates deeper recomputation (bigger Bε/I budget).
	bestTT, err := algs.BestKnob(fermi, base, algs.TimeTiling(0.04), knobs)
	if err != nil {
		return nil, err
	}
	rcFermi, err := algs.SweepTradeoff(fermi, base, algs.Recomputation(), []float64{64})
	if err != nil {
		return nil, err
	}
	rcFuture, err := algs.SweepTradeoff(future, base, algs.Recomputation(), []float64{64})
	if err != nil {
		return nil, err
	}
	r25, err := algs.SweepTradeoff(fermi, base, algs.Replication25D(), []float64{16})
	if err != nil {
		return nil, err
	}
	rep.Comparisons = []Comparison{
		{Name: "2.5D replication is speedup+greenup (memory-bound)", Paper: float64(core.Both),
			Measured: float64(r25[0].Outcome), Tol: 1e-9},
		{Name: "time-tiling optimum is interior (1 < t < 128)", Paper: 1,
			Measured: boolTo01(bestTT > 1 && bestTT < 128), Tol: 1e-9},
		{Name: "deep recomputation greener on the future machine", Paper: 1,
			Measured: boolTo01(rcFuture[0].Greenup > rcFermi[0].Greenup), Tol: 1e-9,
			Note: "the §VII thesis: a wider balance gap buys a bigger extra-work budget"},
	}
	rep.Text = sb.String()
	return rep, nil
}
