package exp

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dvfs"
)

// DVFS study experiments: the frequency-scaling dimension the
// operating-point catalog adds, in the three scenarios internal/dvfs
// evaluates. They share one study run per experiment invocation.
func init() {
	register(Experiment{ID: "dvfs-optfreq", Title: "Energy-optimal frequency vs intensity over the operating-point catalog", Run: runDVFSOptFreq})
	register(Experiment{ID: "dvfs-raceidle", Title: "Race-to-idle vs pace-to-fill: closed-form crossover + powermon validation", Run: runDVFSRaceIdle})
	register(Experiment{ID: "dvfs-dispatch", Title: "Heterogeneous CPU/GPU dispatch via eq. 10 greenup/speedup ratios", Run: runDVFSDispatch})
}

// dvfsStudy runs the study at the experiment harness's seed, fast-mode
// aware, and checks the worker-invariance contract live.
func dvfsStudy(cfg Config) (*dvfs.Study, bool, error) {
	dconf := dvfs.Config{Seed: cfg.Seed, Fast: cfg.Fast}
	ctx := cfg.ctx()
	st, err := dvfs.Run(ctx, dconf)
	if err != nil {
		return nil, false, err
	}
	seq := dconf
	seq.Workers = 1
	st1, err := dvfs.Run(ctx, seq)
	if err != nil {
		return nil, false, err
	}
	j0, err := st.ToJSON()
	if err != nil {
		return nil, false, err
	}
	j1, err := st1.ToJSON()
	if err != nil {
		return nil, false, err
	}
	return st, bytes.Equal(j0, j1), nil
}

// optFreqFor returns the study's curve for one (machine, precision).
func optFreqFor(st *dvfs.Study, mkey, prec string) *dvfs.OptFreqCurve {
	for i := range st.OptFreq {
		if st.OptFreq[i].Machine == mkey && st.OptFreq[i].Precision == prec {
			return &st.OptFreq[i]
		}
	}
	return nil
}

func runDVFSOptFreq(cfg Config) (*Report, error) {
	st, invariant, err := dvfsStudy(cfg)
	if err != nil {
		return nil, err
	}
	allMonotone := true
	allStartSlow, allSavePower := true, true
	for i := range st.OptFreq {
		c := &st.OptFreq[i]
		allMonotone = allMonotone && c.Monotone
		first := c.Points[0]
		allStartSlow = allStartSlow && first.FreqScale < 1
		allSavePower = allSavePower && first.SavingsFrac > 0
	}
	gdp := optFreqFor(st, "gtx580", "double")
	gsp := optFreqFor(st, "gtx580", "single")
	if gdp == nil || gsp == nil {
		return nil, fmt.Errorf("dvfs-optfreq: study lost the gtx580 curves")
	}
	lastDP := gdp.Points[len(gdp.Points)-1]
	lastSP := gsp.Points[len(gsp.Points)-1]

	var sb strings.Builder
	sb.WriteString(st.Render())
	if err := writeSVG(cfg, "dvfs_optfreq", dvfs.OptFreqChart(gdp)); err != nil {
		return nil, err
	}

	return &Report{
		ID:    "dvfs-optfreq",
		Title: "Energy-optimal frequency vs intensity over the operating-point catalog",
		Comparisons: []Comparison{
			{Name: "study artifact byte-identical at any worker count", Paper: 1,
				Measured: boolTo01(invariant), Tol: 1e-9},
			{Name: "optimal clock monotone non-decreasing in I on every curve", Paper: 1,
				Measured: boolTo01(allMonotone), Tol: 1e-9,
				Note: "theory: π0(s)/s and V(s)² both increase in s under a validated law"},
			{Name: "memory-bound end picks a downclocked point on every curve", Paper: 1,
				Measured: boolTo01(allStartSlow), Tol: 1e-9},
			{Name: "downclocking saves energy at the memory-bound end everywhere", Paper: 1,
				Measured: boolTo01(allSavePower), Tol: 1e-9},
			{Name: "gtx580 double compute-bound optimum is full clock (s*)", Paper: 1,
				Measured: lastDP.FreqScale, Tol: 1e-9,
				Note: "ε0 ≥ 2·εflop at double width: race-to-halt in frequency"},
			{Name: "gtx580 single compute-bound optimum stays below full clock (s*)", Paper: 0.70,
				Measured: lastSP.FreqScale, Tol: 1e-9,
				Note: "the narrow-width reversal: cheap flops make π0 relatively weak"},
			{Name: "gtx580 double memory-bound energy saving at I=1/16 (fraction)", Paper: 0,
				Measured: gdp.Points[0].SavingsFrac},
		},
		Text: sb.String(),
	}, nil
}

func runDVFSRaceIdle(cfg Config) (*Report, error) {
	st, _, err := dvfsStudy(cfg)
	if err != nil {
		return nil, err
	}
	allConsistent, allExact := true, true
	deepWins, shallowPaces := true, true
	worstRelErr := 0.0
	var gtxShallow *dvfs.RaceIdleCase
	for i := range st.RaceIdle {
		r := &st.RaceIdle[i]
		allExact = allExact && r.CrossoverOk
		allConsistent = allConsistent && (r.RaceWins == (r.Pi0W >= r.CrossoverW))
		if r.Scenario == "deep-idle" {
			deepWins = deepWins && r.RaceWins
		} else {
			shallowPaces = shallowPaces && !r.RaceWins
		}
		if r.MeasuredRelErr > worstRelErr {
			worstRelErr = r.MeasuredRelErr
		}
		if r.Machine == "gtx580" && r.Scenario == "shallow-idle" {
			gtxShallow = r
		}
	}
	if gtxShallow == nil {
		return nil, fmt.Errorf("dvfs-raceidle: study lost the gtx580 shallow-idle case")
	}

	var sb strings.Builder
	sb.WriteString(st.Render())
	if err := writeSVG(cfg, "dvfs_raceidle", dvfs.RaceIdleChart(st)); err != nil {
		return nil, err
	}

	return &Report{
		ID:    "dvfs-raceidle",
		Title: "Race-to-idle vs pace-to-fill: closed-form crossover + powermon validation",
		Comparisons: []Comparison{
			{Name: "crossover closed form exact on every case", Paper: 1,
				Measured: boolTo01(allExact), Tol: 1e-9},
			{Name: "race wins exactly when π0 ≥ crossover, every case", Paper: 1,
				Measured: boolTo01(allConsistent), Tol: 1e-9},
			{Name: "deep idle: racing wins on every machine", Paper: 1,
				Measured: boolTo01(deepWins), Tol: 1e-9,
				Note: "free waiting makes the constant-power term decisive"},
			{Name: "shallow idle: pacing wins on every machine", Paper: 1,
				Measured: boolTo01(shallowPaces), Tol: 1e-9,
				Note: "idle draw taxes the race's long wait; stretching the work wins"},
			{Name: "worst powermon deviation from the closed form (rel err)", Paper: 0,
				Measured: worstRelErr, Tol: 0.02,
				Note: "simulated 1024 Hz trace of the race step profile"},
			{Name: "gtx580 shallow-idle crossover π0* (W)", Paper: 0,
				Measured: gtxShallow.CrossoverW},
		},
		Text: sb.String(),
	}, nil
}

func runDVFSDispatch(cfg Config) (*Report, error) {
	st, _, err := dvfsStudy(cfg)
	if err != nil {
		return nil, err
	}
	plats, err := dvfs.DefaultPlatforms()
	if err != nil {
		return nil, err
	}
	// Scalar/columnar differential: replay every grid choice through
	// the scalar Dispatch scan.
	agree := true
	for j, c := range st.Dispatch.Choices {
		k := core.KernelAt(st.Work, st.Intensities[j])
		if plats[dvfs.Dispatch(plats, k)].Label != c.Platform {
			agree = false
		}
	}
	first := st.Dispatch.Choices[0]
	last := st.Dispatch.Choices[len(st.Dispatch.Choices)-1]
	allGreen := true
	for _, c := range st.Dispatch.Choices {
		allGreen = allGreen && c.Greenup >= 1
	}

	var sb strings.Builder
	sb.WriteString(st.MarkdownTable())
	if err := writeSVG(cfg, "dvfs_dispatch", dvfs.DispatchChart(st)); err != nil {
		return nil, err
	}

	return &Report{
		ID:    "dvfs-dispatch",
		Title: "Heterogeneous CPU/GPU dispatch via eq. 10 greenup/speedup ratios",
		Comparisons: []Comparison{
			{Name: "scalar dispatch agrees with the columnar table everywhere", Paper: 1,
				Measured: boolTo01(agree), Tol: 1e-9},
			{Name: "every dispatch choice is at least as green as the CPU baseline", Paper: 1,
				Measured: boolTo01(allGreen), Tol: 1e-9},
			{Name: "memory-bound end dispatches to a downclocked multi-SM GPU", Paper: 1,
				Measured: boolTo01(first.Platform == "gtx580-4sm@0.55x"), Tol: 1e-9,
				Note: "shared memory interface: fewer SMs at low clock, same bandwidth"},
			{Name: "compute-bound end dispatches to the full-clock GPU", Paper: 1,
				Measured: boolTo01(last.Platform == "gtx580@1.00x"), Tol: 1e-9},
			{Name: "greenup of the winner at the compute-bound end (×)", Paper: 0,
				Measured: last.Greenup},
			{Name: "speedup of the winner at the compute-bound end (×)", Paper: 0,
				Measured: last.Speedup},
		},
		Text: sb.String(),
	}, nil
}

