package exp

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/pipeline"
)

func init() {
	register(Experiment{ID: "pipeline", Title: "Cycle-level grounding of achieved fractions and the concurrency assumption", Run: runPipeline})
}

func runPipeline(Config) (*Report, error) {
	cfg := pipeline.NehalemLike()
	var sb strings.Builder
	fmt.Fprintf(&sb, "core model: %d-wide issue, FMA latency %d, %d outstanding loads, %.0f B/cycle @ %.2f GHz\n",
		cfg.IssueWidth, cfg.FMALatency, cfg.MaxOutstanding, cfg.BytesPerCycle, cfg.ClockHz/1e9)
	fmt.Fprintf(&sb, "issue roofline %.1f GFLOP/s, bus roofline %.1f GB/s\n\n",
		cfg.PeakFlopRate()/1e9, cfg.PeakBandwidth()/1e9)

	// The window sweep: the paper's "sufficient concurrency" assumption
	// (footnote 2) made visible at cycle level.
	fmt.Fprintf(&sb, "%8s %14s %16s %12s\n", "window", "GFLOP/s", "frac of issue", "bound")
	prog, err := microbench.GeneratePolynomial(32, 4096, machine.Single)
	if err != nil {
		return nil, err
	}
	var atOne, atFull float64
	for _, w := range []int{1, 2, 4, 8, 16, 64} {
		c := cfg
		c.Window = w
		r, err := pipeline.Simulate(prog, c)
		if err != nil {
			return nil, err
		}
		frac := r.FlopRate / cfg.PeakFlopRate()
		if w == 1 {
			atOne = frac
		}
		atFull = frac
		fmt.Fprintf(&sb, "%8d %14.2f %15.1f%% %12s\n", w, r.FlopRate/1e9, frac*100, r.Bound)
	}

	// Intensity crossover through generated kernels.
	fmt.Fprintf(&sb, "\n%12s %14s %12s %12s\n", "fma:load", "GFLOP/s", "GB/s", "bound")
	for _, fmas := range []int{1, 4, 16, 64} {
		m, err := microbench.GenerateFMAMix(fmas, 4, 2048, machine.Double)
		if err != nil {
			return nil, err
		}
		r, err := pipeline.Simulate(m, cfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "%11d:4 %14.2f %12.2f %12s\n", fmas, r.FlopRate/1e9, r.Bandwidth/1e9, r.Bound)
	}

	ff, bf, err := pipeline.AchievedFractions(cfg, machine.Double)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "\nachieved fractions (double): compute %.2f of issue roofline, bandwidth %.2f of bus roofline\n", ff, bf)

	return &Report{
		ID: "pipeline", Title: "Cycle-level grounding",
		Comparisons: []Comparison{
			{Name: "latency-starved fraction at window 1", Paper: 2.0 / 5 / 6, Measured: atOne, Tol: 0.10,
				Note: "chain arithmetic: 2 flops per 5-cycle FMA on a 3-wide core"},
			{Name: "full window reaches the issue roofline (>90%)", Paper: 1, Measured: boolTo01(atFull > 0.9), Tol: 1e-9},
			{Name: "double-precision compute fraction", Paper: 0.97, Measured: ff, Tol: 0.08},
			{Name: "double-precision bandwidth fraction", Paper: 1, Measured: bf, Tol: 0.08},
		},
		Text: sb.String(),
	}, nil
}
