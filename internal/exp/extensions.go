package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/microbench"
	"repro/internal/powermon"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/validate"
)

// Extension experiments: the ablations DESIGN.md calls out plus the
// §II-A algorithm-intensity analysis and the DVFS/race-to-halt
// threshold study. These go beyond the paper's printed artifacts but
// exercise exactly the design choices the paper discusses.
func init() {
	register(Experiment{ID: "ablation-overlap", Title: "Overlap vs no-overlap time model (why the roof is sharp and the arch is smooth)", Run: runAblationOverlap})
	register(Experiment{ID: "ablation-pi0", Title: "Constant-power sweep: the balance gap and race-to-halt flip (§V-B)", Run: runAblationPi0})
	register(Experiment{ID: "ablation-cap", Title: "Power cap on/off: the Fig. 4b departure near the balance point", Run: runAblationCap})
	register(Experiment{ID: "ablation-sampling", Title: "Power-monitor sampling-rate sweep: energy integration error", Run: runAblationSampling})
	register(Experiment{ID: "dvfs", Title: "DVFS frequency scaling: the analytic race-to-halt threshold", Run: runDVFS})
	register(Experiment{ID: "algs", Title: "Algorithmic intensity laws (§II-A): matmul √Z vs reduction O(1)", Run: runAlgs})
	register(Experiment{ID: "concurrency", Title: "Latency/concurrency refinement (§VII limitation, footnote 2)", Run: runConcurrency})
	register(Experiment{ID: "future", Title: "The §VII future regime: a real balance gap (Bε > Bτ, π0 = 0)", Run: runFuture})
	register(Experiment{ID: "modelfit", Title: "Model-vs-measurement bound validation (§VII: upper bound on power, lower bound on time)", Run: runModelFit})
	register(Experiment{ID: "metrics", Title: "Composite time–energy metrics (§VI): EDP family, Green500-style indices", Run: runMetrics})
}

func runMetrics(Config) (*Report, error) {
	p := core.FromMachine(machine.GTX580(), machine.Double)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10s %12s %12s %12s %12s %12s\n",
		"I (fl/B)", "GFLOP/s", "GFLOP/J", "EDP (J·s)", "speed idx", "green idx")
	for _, i := range core.LogGrid(0.25, 16, 7) {
		s, err := metrics.Evaluate(p, core.KernelAt(1e9, i))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "%10.3g %12.4g %12.4g %12.3g %12.3f %12.3f\n",
			i, s.FlopsPerSecond/1e9, s.FlopsPerJoule/1e9, s.EDP, s.SpeedIndex, s.GreenIndex)
	}
	// The indices are the roofline heights by construction; check at an
	// arbitrary intensity.
	s4, err := metrics.Evaluate(p, core.KernelAt(1e9, 4))
	if err != nil {
		return nil, err
	}
	// EDP flatness locates the practical stopping point for intensity
	// optimisation.
	flatLow, err := metrics.Flatness(p, 1e9, p.BalanceTime()/8, 1)
	if err != nil {
		return nil, err
	}
	flatHigh, err := metrics.Flatness(p, 1e9, 32*p.BalanceTime(), 1)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "EDP flatness (I→2I): %.3f deep in memory-bound, %.3f far past the balance points\n",
		flatLow, flatHigh)
	return &Report{
		ID: "metrics", Title: "Composite metrics",
		Comparisons: []Comparison{
			{Name: "speed index equals roofline height at I=4", Paper: p.RooflineTime(4), Measured: s4.SpeedIndex, Tol: 1e-9},
			{Name: "green index equals arch-line height at I=4", Paper: p.ArchlineEnergy(4), Measured: s4.GreenIndex, Tol: 1e-9},
			{Name: "EDP still improving deep in memory-bound (ratio < 0.5)", Paper: 1, Measured: boolTo01(flatLow < 0.5), Tol: 1e-9},
			{Name: "EDP flat past the balance points (ratio > 0.95)", Paper: 1, Measured: boolTo01(flatHigh > 0.95), Tol: 1e-9},
		},
		Text: sb.String(),
	}, nil
}

func runModelFit(cfg Config) (*Report, error) {
	reps := 10
	if cfg.Fast {
		reps = 3
	}
	s, err := validate.Run(validate.Config{Seed: cfg.Seed + 500, Reps: reps})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID: "modelfit", Title: "Bound validation across the lattice",
		Comparisons: []Comparison{
			{Name: "time lower-bound violations", Paper: 0, Measured: float64(s.TimeBoundViolations), Tol: 1e-9},
			{Name: "power upper-bound violations", Paper: 0, Measured: float64(s.PowerBoundViolations), Tol: 1e-9},
			{Name: "lattice points validated", Paper: 36, Measured: float64(len(s.Cases)), Tol: 1e-9},
			{Name: "worst measured/model time ratio", Paper: 1, Measured: s.WorstTimeRatio, Tol: 0,
				Note: "≥ 1 means the model is a strict lower bound on time"},
			{Name: "worst measured/model power ratio", Paper: 1, Measured: s.WorstPowerRatio, Tol: 0,
				Note: "≤ 1 means the model is a strict upper bound on power"},
		},
		Text: s.Render(),
	}, nil
}

func runFuture(Config) (*Report, error) {
	m := machine.FutureBalanceGap()
	p := core.FromMachine(m, machine.Double)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (double precision)\n", m.Name)
	fmt.Fprintf(&sb, "Bτ = %.2f, Bε = %.2f flop/byte, gap = %.2f, π0 = 0\n",
		p.BalanceTime(), p.BalanceEnergy(), p.BalanceGap())
	// The §II-D zone: compute-bound in time, memory-bound in energy.
	mid := (p.BalanceTime() + p.BalanceEnergy()) / 2
	k := core.KernelAt(1e9, mid)
	fmt.Fprintf(&sb, "a kernel at I = %.2f is %v in time but %v in energy\n",
		mid, p.TimeBound(k), p.EnergyBound(k))
	// Greenup budget for compute-bound baselines.
	fmt.Fprintf(&sb, "work–communication budget for compute-bound code: f < 1 + Bε/Bτ = %.2f\n",
		p.MaxExtraWorkComputeBound())
	// DVFS: with π0 = 0, racing is never energy-optimal.
	kc := core.KernelAt(1e9, 1e6)
	s, _, err := p.OptimalFreqScale(kc, 0.25)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "DVFS optimum for compute-bound work: s = %.2f (race-to-halt loses)\n", s)
	return &Report{
		ID: "future", Title: "Future balance-gap regime",
		Comparisons: []Comparison{
			{Name: "balance gap Bε/Bτ exceeds 1", Paper: 1, Measured: boolTo01(p.BalanceGap() > 1), Tol: 1e-9},
			{Name: "race-to-halt effective?", Paper: 0, Measured: boolTo01(p.RaceToHaltEffective()), Tol: 1e-9,
				Note: "the §II-D prediction: the strategy breaks when the gap opens"},
			{Name: "zone Bτ < I < Bε exists (compute-bound-in-time, memory-bound-in-energy)", Paper: 1,
				Measured: boolTo01(p.TimeBound(k) == core.ComputeBound && p.EnergyBound(k) == core.MemoryBound), Tol: 1e-9},
			{Name: "DVFS optimum below full clock", Paper: 1, Measured: boolTo01(s < 1), Tol: 1e-9},
			{Name: "energy-efficiency implies time-efficiency (I > Bε ⇒ I > Bτ)", Paper: 1,
				Measured: boolTo01(p.BalanceEnergy() > p.BalanceTime()), Tol: 1e-9,
				Note: "the paper's 'energy is the nobler goal' corollary"},
		},
		Text: sb.String(),
	}, nil
}

func runConcurrency(Config) (*Report, error) {
	p := core.FromMachine(machine.GTX580(), machine.Single)
	cc := core.Concurrency{Latency: 600e-9, Granularity: 128}
	need := p.RequiredConcurrency(cc)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Little's law: %.0f outstanding %g-byte requests sustain the 192.4 GB/s peak\n", need, cc.Granularity)
	fmt.Fprintf(&sb, "%14s %14s %10s %14s\n", "inflight", "GB/s", "Bτ(c)", "arch(I=8.2)")
	monotone := true
	prev := 0.0
	for _, frac := range []float64{0.05, 0.125, 0.25, 0.5, 1, 2} {
		q, err := p.WithConcurrency(cc, need*frac)
		if err != nil {
			return nil, err
		}
		bw := 1 / q.TauMem / 1e9
		if bw < prev {
			monotone = false
		}
		prev = bw
		fmt.Fprintf(&sb, "%14.0f %14.1f %10.2f %14.3f\n",
			need*frac, bw, q.BalanceTime(), q.ArchlineEnergy(8.2))
	}
	half, err := p.WithConcurrency(cc, need/2)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID: "concurrency", Title: "Latency/concurrency refinement",
		Comparisons: []Comparison{
			{Name: "required concurrency (outstanding lines)", Paper: 192.4e9 * 600e-9 / 128, Measured: need, Tol: 1e-9,
				Note: "bandwidth × latency / granularity"},
			{Name: "bandwidth monotone in concurrency", Paper: 1, Measured: boolTo01(monotone), Tol: 1e-9},
			{Name: "half concurrency doubles the balance point", Paper: 2 * p.BalanceTime(), Measured: half.BalanceTime(), Tol: 1e-9},
		},
		Text: sb.String(),
	}, nil
}

func runAblationOverlap(Config) (*Report, error) {
	p := core.FromMachine(machine.FermiTableII(), machine.Double)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10s %14s %14s %10s\n", "I (fl/B)", "T overlap", "T no-overlap", "ratio")
	worst := 0.0
	worstAt := 0.0
	for _, i := range core.LogGrid(0.25, 256, 11) {
		k := core.KernelAt(1e9, i)
		to := p.Time(k)
		tn := p.TimeNoOverlap(k)
		fmt.Fprintf(&sb, "%10.3g %14s %14s %10.3f\n", i,
			units.FormatSI(to, "s", 4), units.FormatSI(tn, "s", 4), tn/to)
		if tn/to > worst {
			worst, worstAt = tn/to, i
		}
	}
	kb := core.KernelAt(1e9, p.BalanceTime())
	return &Report{
		ID: "ablation-overlap", Title: "Overlap vs no-overlap time",
		Comparisons: []Comparison{
			{Name: "worst-case no-overlap penalty (at I = Bτ)", Paper: 2, Measured: p.TimeNoOverlap(kb) / p.Time(kb), Tol: 1e-9,
				Note: "overlap saves exactly 2× at the balance point, nothing in the limits"},
			{Name: "sweep's worst penalty located at Bτ", Paper: p.BalanceTime(), Measured: worstAt, Tol: 0.5,
				Note: "grid granularity"},
			{Name: "energy is overlap-independent (ratio)", Paper: 1,
				Measured: (kb.W*p.EpsFlop + kb.Q*p.EpsMem) / (kb.W*p.EpsFlop + kb.Q*p.EpsMem), Tol: 1e-12,
				Note: "energy adds where time overlaps — the structural reason for the arch"},
		},
		Text: sb.String(),
	}, nil
}

func runAblationPi0(Config) (*Report, error) {
	base := core.FromMachine(machine.GTX580(), machine.Double)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10s %10s %12s %10s %16s\n", "π0 (W)", "η", "B̂ε(y=½)", "Bτ", "race-to-halt?")
	prev := math.Inf(1)
	monotone := true
	for _, pi0 := range []float64{0, 20, 40, 60, 80, 100, 122, 200} {
		p := base
		p.Pi0 = pi0
		h := p.HalfEfficiencyIntensity()
		if h > prev+1e-12 {
			monotone = false
		}
		prev = h
		fmt.Fprintf(&sb, "%10.0f %10.3f %12.3f %10.3f %16v\n",
			pi0, p.EtaFlop(), h, p.BalanceTime(), p.RaceToHaltEffective())
	}
	// Bisect the π0 where the verdict flips (B̂ε(y=½) = Bτ).
	lo, hi := 0.0, 122.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		p := base
		p.Pi0 = mid
		if p.RaceToHaltEffective() {
			hi = mid
		} else {
			lo = mid
		}
	}
	flip := (lo + hi) / 2
	fmt.Fprintf(&sb, "race-to-halt becomes effective at π0 ≈ %.1f W on the GTX 580 (double)\n", flip)
	return &Report{
		ID: "ablation-pi0", Title: "Constant-power sweep",
		Comparisons: []Comparison{
			{Name: "B̂ε(y=½) monotone non-increasing in π0", Paper: 1, Measured: boolTo01(monotone), Tol: 1e-9},
			{Name: "verdict flips below the measured π0 = 122 W", Paper: 1, Measured: boolTo01(flip < 122), Tol: 1e-9,
				Note: fmt.Sprintf("flip at ≈%.0f W", flip)},
			{Name: "π0 = 0 reproduces Bε = 2.42 balance", Paper: 2.42, Measured: zeroPi(base).HalfEfficiencyIntensity(), Tol: 0.01},
		},
		Text: sb.String(),
	}, nil
}

func zeroPi(p core.Params) core.Params {
	p.Pi0 = 0
	return p
}

func runAblationCap(cfg Config) (*Report, error) {
	m := machine.GTX580()
	p := core.FromMachine(m, machine.Single)
	reps := 20
	if cfg.Fast {
		reps = 5
	}
	grid := []float64{2, 4, p.BalanceTime(), 16, 32}
	run := func(enforce bool, seed int64) ([]microbench.Point, error) {
		eng, err := sim.New(m, sim.Config{Seed: seed, TimeNoiseSD: 0.005, PowerNoiseSD: 0.005, EnforceCap: enforce, LaunchOverhead: 5e-6})
		if err != nil {
			return nil, err
		}
		return microbench.Sweep(cfg.ctx(), eng, machine.Single, microbench.SweepConfig{
			Intensities: grid,
			VolumeBytes: 1 << 27,
			Reps:        reps,
			Tuning:      eng.OptimalTuning(),
		})
	}
	capped, err := run(true, cfg.Seed+31)
	if err != nil {
		return nil, err
	}
	uncapped, err := run(false, cfg.Seed+31)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10s %16s %16s %14s %14s\n", "I (fl/B)", "capped GFLOP/s", "uncapped GFLOP/s", "capped W", "uncapped W")
	var devCapAtBal, devFreeAtBal float64
	for i := range grid {
		gc := capped[i].W / float64(capped[i].Time) / 1e9
		gu := uncapped[i].W / float64(uncapped[i].Time) / 1e9
		fmt.Fprintf(&sb, "%10.3g %16.1f %16.1f %14.1f %14.1f\n",
			grid[i], gc, gu, float64(capped[i].Power), float64(uncapped[i].Power))
		if i == 2 { // the balance point row
			roof := p.RooflineTime(capped[i].Intensity) * p.PeakFlopsRate() / 1e9
			devCapAtBal = 1 - gc/roof
			devFreeAtBal = 1 - gu/roof
		}
	}
	return &Report{
		ID: "ablation-cap", Title: "Power cap on/off",
		Comparisons: []Comparison{
			{Name: "balance-point shortfall with cap enforced", Paper: 0.3, Measured: devCapAtBal, Tol: 0,
				Note: "informational: the Fig. 4b departure"},
			{Name: "cap-induced departure exceeds uncapped departure", Paper: 1,
				Measured: boolTo01(devCapAtBal > devFreeAtBal+0.05), Tol: 1e-9},
			{Name: "capped power stays below the hard limit", Paper: 1,
				Measured: boolTo01(float64(capped[2].Power) <= float64(m.PowerCap)*1.01), Tol: 1e-9},
			{Name: "uncapped balance-point power exceeds the hard cap", Paper: 1,
				Measured: boolTo01(float64(uncapped[2].Power) > float64(m.PowerCap)), Tol: 1e-9},
			{Name: "uncapped balance-point power vs model 387 W", Paper: 387,
				Measured: float64(uncapped[2].Power), Tol: 0,
				Note: "informational: measured power sits below the powerline because achieved throughput is below peak, as in Fig. 5"},
		},
		Text: sb.String(),
	}, nil
}

func runAblationSampling(cfg Config) (*Report, error) {
	// A linear power ramp whose exact energy is known; measure it at
	// several sampling rates and record the integration error.
	const peak, dur = 300.0, 0.311
	want := peak / 2 * dur
	var sb strings.Builder
	fmt.Fprintf(&sb, "exact energy of a %gW-peak ramp over %gs: %.4f J\n", peak, dur, want)
	fmt.Fprintf(&sb, "%10s %14s %12s\n", "rate (Hz)", "energy (J)", "rel err")
	var errs []float64
	for _, rate := range []float64{8, 32, 128, 1024} {
		mon, err := powermon.New(powermon.GPUChannels(), powermon.Config{
			RateHz: rate, Seed: cfg.Seed, VoltNoiseSD: 1e-12, CurrNoiseSD: 1e-12,
		})
		if err != nil {
			return nil, err
		}
		tr, err := mon.Measure(rampSource{peak: peak, dur: dur}, units.Seconds(dur))
		if err != nil {
			return nil, err
		}
		got := float64(tr.Energy())
		re := math.Abs(got-want) / want
		errs = append(errs, re)
		fmt.Fprintf(&sb, "%10.0f %14.4f %12.3g\n", rate, got, re)
	}
	return &Report{
		ID: "ablation-sampling", Title: "Sampling-rate sweep",
		Comparisons: []Comparison{
			// The floor on a 0.31 s run is the un-sampled tail after the
			// last whole period, not the midpoint-rule error.
			{Name: "1024 Hz error below 0.5%", Paper: 1, Measured: boolTo01(errs[3] < 5e-3), Tol: 1e-9},
			{Name: "paper's 128 Hz error below 5%", Paper: 1, Measured: boolTo01(errs[2] < 5e-2), Tol: 1e-9,
				Note: "on second-scale runs (the paper's) the 128 Hz tail error is negligible"},
			{Name: "error at 1024 Hz below error at 8 Hz", Paper: 1, Measured: boolTo01(errs[3] < errs[0]), Tol: 1e-9},
		},
		Text: sb.String(),
	}, nil
}

// rampSource duplicates the test helper: linear 0→peak over dur.
type rampSource struct{ peak, dur float64 }

// PowerAt implements powermon.Source.
func (r rampSource) PowerAt(t units.Seconds) units.Watts {
	return units.Watts(r.peak * float64(t) / r.dur)
}

func runDVFS(Config) (*Report, error) {
	p := core.FromMachine(machine.GTX580(), machine.Double)
	k := core.KernelAt(1e10, 1e6) // compute-bound
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10s %10s %14s %14s\n", "π0 (W)", "s*", "optimal s", "E(s)/E(1)")
	for _, pi0 := range []float64{0, 20, 40, 60, 83.8, 100, 122} {
		q := p
		q.Pi0 = pi0
		s, e, err := q.OptimalFreqScale(k, 0.2)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "%10.1f %10.3f %14.3f %14.3f\n",
			pi0, q.CriticalFreqScale(), s, e/q.EnergyAtFreq(k, 1))
	}
	// The analytic threshold: race-to-halt optimal iff ε0 ≥ 2εflop,
	// i.e. π0 ≥ 2·εflop/τflop = 2·πflop.
	threshold := 2 * p.PiFlop()
	above := p
	above.Pi0 = threshold * 1.01
	below := p
	below.Pi0 = threshold * 0.99
	sAbove, _, err := above.OptimalFreqScale(k, 0.2)
	if err != nil {
		return nil, err
	}
	sBelow, _, err := below.OptimalFreqScale(k, 0.2)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "analytic threshold: race-to-halt optimal iff π0 ≥ 2·πflop = %.1f W\n", threshold)
	return &Report{
		ID: "dvfs", Title: "DVFS race-to-halt threshold",
		Comparisons: []Comparison{
			{Name: "GTX 580 double 2·πflop threshold (W)", Paper: 83.8, Measured: threshold, Tol: 0.01,
				Note: "2·212 pJ · 197.63 GHz-equivalent"},
			{Name: "full clock optimal just above threshold", Paper: 1, Measured: sAbove, Tol: 1e-9},
			{Name: "downclock optimal just below threshold", Paper: 1, Measured: boolTo01(sBelow < 1), Tol: 1e-9},
			{Name: "measured π0 = 122 W sits above the threshold", Paper: 1, Measured: boolTo01(122 > threshold), Tol: 1e-9,
				Note: "hence race-to-halt works on the real card (§V-B)"},
		},
		Text: sb.String(),
	}, nil
}

func runAlgs(Config) (*Report, error) {
	m := machine.GTX580()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %14s %16s %16s (on %s, single, Z = %s)\n",
		"algorithm", "I (flop/B)", "time verdict", "energy verdict", m.Name, m.FastMemory)
	for _, a := range algs.All() {
		v, err := algs.Evaluate(a, 4096, m, machine.Single)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "%-12s %14.3g %16v %16v\n", v.Algorithm, v.Intensity, v.TimeBound, v.EnergyBound)
	}
	growthMM, err := algs.IntensityGrowth(algs.MatMul{}, 1e5, 1<<16)
	if err != nil {
		return nil, err
	}
	growthRed, err := algs.IntensityGrowth(algs.Reduction{}, 1e7, 1<<16)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "doubling Z: matmul intensity ×%.4f (√2 = %.4f), reduction ×%.4f\n",
		growthMM, math.Sqrt2, growthRed)
	return &Report{
		ID: "algs", Title: "Algorithmic intensity laws",
		Comparisons: []Comparison{
			{Name: "matmul intensity growth on 2×Z (→√2)", Paper: math.Sqrt2, Measured: growthMM, Tol: 0.02},
			{Name: "reduction intensity growth on 2×Z (→1)", Paper: 1, Measured: growthRed, Tol: 1e-9},
		},
		Text: sb.String(),
	}, nil
}
