package sim

import (
	"context"
	"testing"

	"repro/internal/machine"
	"repro/internal/stats"
)

// The pooled Run storage, the memoized tuning quality, and the
// fold-state seed derivation replaced per-repetition allocations in the
// hot loop. These tests pin the optimized paths bit-identical to the
// pre-optimization behaviour: same noise streams, same records.

func noisyEngine(t *testing.T, seed int64) *Engine {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.OutlierProb = 0.05
	e, err := New(machine.GTX580(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func specForTest() KernelSpec {
	return KernelSpec{W: 1e9, Q: 2.5e8, Precision: machine.Single}
}

func runsEqual(t *testing.T, got, want []*Run, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d runs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if *got[i] != *want[i] {
			t.Errorf("%s: run %d = %+v, want %+v (bit-exact)", label, i, *got[i], *want[i])
		}
	}
}

func TestRunRepeatedMatchesSequentialRun(t *testing.T) {
	// RunRepeated writes into one pooled block; a plain Run loop on an
	// identically seeded engine is the pre-optimization behaviour.
	spec := specForTest()
	got, err := noisyEngine(t, 42).RunRepeated(spec, 64)
	if err != nil {
		t.Fatal(err)
	}
	ref := noisyEngine(t, 42)
	want := make([]*Run, 64)
	for i := range want {
		r, err := ref.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	runsEqual(t, got, want, "RunRepeated")
}

func TestRunRepeatedParallelMatchesDerivedRunWith(t *testing.T) {
	// RunRepeatedParallel borrows pooled sources seeded by fold-state
	// extension; the pre-optimization path derived each stream with
	// DeriveRand(repStream, labels..., i) and allocated every Run.
	spec := specForTest()
	e := noisyEngine(t, 7)
	labels := []uint64{3, 11}
	want := make([]*Run, 32)
	for i := range want {
		rng := e.DeriveRand(append([]uint64{repStream, 3, 11}, uint64(i))...)
		r, err := e.RunWith(rng, spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, workers := range []int{1, 4} {
		got, err := e.RunRepeatedParallel(context.Background(), spec, 32, workers, labels...)
		if err != nil {
			t.Fatal(err)
		}
		runsEqual(t, got, want, "RunRepeatedParallel")
	}
}

func TestTuningQualityMemoTransparent(t *testing.T) {
	e := noisyEngine(t, 1)
	fresh := noisyEngine(t, 1)
	tunings := []Tuning{
		{},
		e.OptimalTuning(),
		{Threads: 64, BlockSize: 32, Unroll: 2, RequestsPerThread: 2},
		{Threads: 8192, BlockSize: 512, Unroll: 16, RequestsPerThread: 8},
	}
	// Interleave repeatedly so every lookup pattern (miss, hit, evict,
	// re-miss) occurs; each answer must equal a never-memoized engine's.
	for round := 0; round < 3; round++ {
		for _, tn := range tunings {
			got := e.TuningQuality(tn)
			want := fresh.TuningQuality(tn)
			// fresh memoizes too; recompute it cold to be sure.
			cold := noisyEngine(t, 1).TuningQuality(tn)
			if got != want || got != cold {
				t.Errorf("TuningQuality(%+v) = %v, want %v (cold %v)", tn, got, want, cold)
			}
		}
	}
}

func TestBorrowedStreamMatchesDerived(t *testing.T) {
	// The pooled source must replay exactly the stream a fresh
	// DeriveRand yields for the same labels.
	a := stats.DeriveRand(99, 1, 2, 3)
	b := stats.BorrowDerived(99, 1, 2, 3)
	defer b.Release()
	for i := 0; i < 1000; i++ {
		if av, bv := a.NormFloat64(), b.NormFloat64(); av != bv {
			t.Fatalf("draw %d: borrowed stream %v != derived stream %v", i, bv, av)
		}
	}
}

func TestExtendStateMatchesDeriveSeed(t *testing.T) {
	for i := uint64(0); i < 50; i++ {
		want := stats.DeriveSeed(7, repStream, 5, i)
		state := stats.DeriveState(7, repStream)
		state = stats.ExtendState(state, 5)
		if got := int64(stats.ExtendState(state, i)); got != want {
			t.Fatalf("fold-state seed %d != DeriveSeed %d", got, want)
		}
	}
}

func TestRunWithSteadyStateAllocs(t *testing.T) {
	e := noisyEngine(t, 5)
	spec := specForTest()
	rng := stats.NewRand(1)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.RunWith(rng, spec); err != nil {
			t.Fatal(err)
		}
	})
	// One Run record per call; everything else is stack or memoized.
	if allocs > 1 {
		t.Errorf("RunWith allocates %.1f objects per run, want <= 1", allocs)
	}
}

func TestRunRepeatedAllocs(t *testing.T) {
	e := noisyEngine(t, 5)
	spec := specForTest()
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.RunRepeated(spec, 64); err != nil {
			t.Fatal(err)
		}
	})
	// One Run block and one pointer slice per call, however many reps.
	if allocs > 2 {
		t.Errorf("RunRepeated(64) allocates %.1f objects per call, want <= 2", allocs)
	}
}

func TestRunRepeatedParallelAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool intentionally drops entries under the race detector")
	}
	e := noisyEngine(t, 5)
	spec := specForTest()
	ctx := context.Background()
	if _, err := e.RunRepeatedParallel(ctx, spec, 64, 1); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.RunRepeatedParallel(ctx, spec, 64, 1); err != nil {
			t.Fatal(err)
		}
	})
	// Run block + pointer slice + the inline worker's bookkeeping; the
	// point is the absence of the former per-rep rand state (~5 KB each).
	if allocs > 8 {
		t.Errorf("RunRepeatedParallel(64) allocates %.1f objects per call, want <= 8", allocs)
	}
}
