package sim

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/units"
)

func idealEngine(t *testing.T, m *machine.Machine) *Engine {
	t.Helper()
	e, err := New(m, Config{Seed: 1, Ideal: true, EnforceCap: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestIdealRunMatchesModel(t *testing.T) {
	// With Ideal config and no cap pressure, the simulator must realise
	// the analytic model exactly.
	m := machine.GTX580()
	e := idealEngine(t, m)
	p := core.FromMachine(m, machine.Double)
	for _, i := range []float64{0.25, 1, 4, 16} {
		k := core.KernelAt(1e9, i)
		r, err := e.Run(KernelSpec{W: k.W, Q: k.Q, Precision: machine.Double})
		if err != nil {
			t.Fatal(err)
		}
		if r.Throttled {
			continue // near-balance DP points may throttle; cap tests cover it
		}
		if stats.RelErr(float64(r.Duration), p.Time(k)) > 1e-12 {
			t.Errorf("I=%v: T = %v, model %v", i, r.Duration, p.Time(k))
		}
		if stats.RelErr(float64(r.Energy), p.Energy(k)) > 1e-12 {
			t.Errorf("I=%v: E = %v, model %v", i, r.Energy, p.Energy(k))
		}
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	e := idealEngine(t, machine.GTX580())
	bad := []KernelSpec{
		{W: -1, Q: 1},
		{W: 1, Q: -1},
		{W: 0, Q: 0},
		{W: 1, Q: 1, FreqScale: -0.5},
		{W: 1, Q: 1, FreqScale: 1.5},
	}
	for i, s := range bad {
		if _, err := e.Run(s); err == nil {
			t.Errorf("spec %d should be rejected", i)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(machine.GTX580(), Config{TimeNoiseSD: -1}); err == nil {
		t.Error("negative noise accepted")
	}
	bad := machine.GTX580()
	bad.Bandwidth = 0
	if _, err := New(bad, DefaultConfig(1)); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestAchievedFractionsShapeRealRuns(t *testing.T) {
	// A perfectly tuned non-ideal run reaches the §IV-B achieved
	// fractions, not the raw peaks.
	m := machine.GTX580()
	e, err := New(m, Config{Seed: 3, TimeNoiseSD: 1e-9, PowerNoiseSD: 1e-9, EnforceCap: false})
	if err != nil {
		t.Fatal(err)
	}
	// Strongly compute-bound double-precision kernel.
	spec := KernelSpec{W: 1e11, Q: 1e6, Precision: machine.Double, Tuning: e.OptimalTuning()}
	r, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	gflops := spec.W / float64(r.Duration) / 1e9
	// §IV-B: 196 GFLOP/s achieved on the GTX 580 in double precision.
	if math.Abs(gflops-196) > 2 {
		t.Errorf("achieved DP rate = %v GFLOP/s, want ≈196", gflops)
	}
	// Strongly memory-bound kernel: 170 GB/s.
	spec = KernelSpec{W: 1e3, Q: 1e10, Precision: machine.Double, Tuning: e.OptimalTuning()}
	r, err = e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	gbs := spec.Q / float64(r.Duration) / 1e9
	if math.Abs(gbs-170) > 2 {
		t.Errorf("achieved bandwidth = %v GB/s, want ≈170", gbs)
	}
}

func TestTuningQualityPeaksAtOptimum(t *testing.T) {
	e := idealEngine(t, machine.GTX580())
	opt := e.OptimalTuning()
	if q := e.TuningQuality(opt); math.Abs(q-1) > 1e-12 {
		t.Errorf("optimal tuning quality = %v", q)
	}
	// Any perturbation strictly reduces quality.
	perturbs := []Tuning{
		{Threads: opt.Threads * 4, BlockSize: opt.BlockSize, Unroll: opt.Unroll, RequestsPerThread: opt.RequestsPerThread},
		{Threads: opt.Threads, BlockSize: opt.BlockSize * 2, Unroll: opt.Unroll, RequestsPerThread: opt.RequestsPerThread},
		{Threads: opt.Threads, BlockSize: opt.BlockSize, Unroll: opt.Unroll * 8, RequestsPerThread: opt.RequestsPerThread},
		{Threads: opt.Threads, BlockSize: opt.BlockSize, Unroll: opt.Unroll, RequestsPerThread: opt.RequestsPerThread * 4},
	}
	for i, tn := range perturbs {
		if q := e.TuningQuality(tn); q >= 1 {
			t.Errorf("perturbation %d: quality %v should be < 1", i, q)
		}
	}
	// Zero fields take defaults (the optimum).
	if q := e.TuningQuality(Tuning{}); math.Abs(q-1) > 1e-12 {
		t.Errorf("default tuning quality = %v", q)
	}
}

func TestDifferentMachinesHaveDifferentOptima(t *testing.T) {
	eg := idealEngine(t, machine.GTX580())
	ec := idealEngine(t, machine.CoreI7950())
	if eg.OptimalTuning() == ec.OptimalTuning() {
		t.Error("machines should have distinct tuning optima")
	}
}

func TestPowerCapThrottling(t *testing.T) {
	// GTX 580 single precision near the balance point demands ~387 W
	// from the model; the 244 W cap must throttle the run.
	m := machine.GTX580()
	e := idealEngine(t, m)
	p := core.FromMachine(m, machine.Single)
	k := core.KernelAt(1e10, p.BalanceTime())
	r, err := e.Run(KernelSpec{W: k.W, Q: k.Q, Precision: machine.Single})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Throttled {
		t.Fatal("expected throttling at the balance point")
	}
	if got := float64(r.AvgPower); got > float64(m.PowerCap)+1e-6 {
		t.Errorf("throttled power %v exceeds cap %v", got, m.PowerCap)
	}
	if float64(r.Duration) <= p.Time(k) {
		t.Error("throttled run should be slower than the uncapped model")
	}

	// Same kernel with cap enforcement off: full model power.
	e2, err := New(m, Config{Seed: 1, Ideal: true, EnforceCap: false})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Run(KernelSpec{W: k.W, Q: k.Q, Precision: machine.Single})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Throttled {
		t.Error("cap disabled but run throttled")
	}
	if float64(r2.AvgPower) < 300 {
		t.Errorf("uncapped power = %v, expected ≈387 W", r2.AvgPower)
	}
}

func TestNoiseIsDeterministicPerSeed(t *testing.T) {
	m := machine.CoreI7950()
	spec := KernelSpec{W: 1e9, Q: 1e9, Precision: machine.Single}
	run := func(seed int64) (float64, float64) {
		e, err := New(m, DefaultConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.Duration), float64(r.Energy)
	}
	t1, e1 := run(42)
	t2, e2 := run(42)
	if t1 != t2 || e1 != e2 {
		t.Error("same seed must reproduce identical measurements")
	}
	t3, _ := run(43)
	if t1 == t3 {
		t.Error("different seeds should differ")
	}
}

func TestNoiseMagnitude(t *testing.T) {
	m := machine.CoreI7950()
	e, err := New(m, DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	spec := KernelSpec{W: 1e9, Q: 1e8, Precision: machine.Double, Tuning: e.OptimalTuning()}
	runs, err := e.RunRepeated(spec, 200)
	if err != nil {
		t.Fatal(err)
	}
	var ts []float64
	for _, r := range runs {
		ts = append(ts, float64(r.Duration)/float64(r.TrueDuration))
	}
	mean, _ := stats.Mean(ts)
	sd, _ := stats.StdDev(ts)
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("time noise not centred: %v", mean)
	}
	if sd < 0.003 || sd > 0.03 {
		t.Errorf("time noise sd = %v, want ≈0.01", sd)
	}
}

func TestPowerWaveIntegratesToEnergy(t *testing.T) {
	m := machine.GTX580()
	e := idealEngine(t, m)
	r, err := e.Run(KernelSpec{W: 1e10, Q: 1e9, Precision: machine.Double})
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid-integrate PowerAt over the duration.
	const n = 20000
	dt := float64(r.Duration) / n
	sum := 0.0
	for i := 0; i <= n; i++ {
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * float64(r.PowerAt(units.Seconds(float64(i)*dt)))
	}
	integ := sum * dt
	if stats.RelErr(integ, float64(r.Energy)) > 1e-4 {
		t.Errorf("∫P dt = %v, energy = %v", integ, r.Energy)
	}
	// Out-of-range queries return 0.
	if r.PowerAt(-1) != 0 || r.PowerAt(r.Duration+1) != 0 {
		t.Error("out-of-range power should be 0")
	}
}

func TestFreqScalingTradeoff(t *testing.T) {
	// Scaling the clock down: slower, lower dynamic energy, but more
	// constant energy. On a compute-bound kernel with large π0,
	// race-to-halt (s=1) should win on energy.
	m := machine.GTX580()
	e := idealEngine(t, m)
	spec := KernelSpec{W: 1e11, Q: 1e7, Precision: machine.Double}
	full, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.FreqScale = 0.5
	half, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if float64(half.Duration) <= float64(full.Duration) {
		t.Error("downclocked run must be slower")
	}
	if float64(half.Energy) <= float64(full.Energy) {
		t.Error("with π0 = 122 W, race-to-halt should use less energy")
	}
	// With π0 = 0 the verdict flips: downclocking saves energy.
	m0 := machine.GTX580()
	m0.ConstantPower = 0
	e0 := idealEngine(t, m0)
	spec.FreqScale = 0
	f0, err := e0.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.FreqScale = 0.5
	h0, err := e0.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if float64(h0.Energy) >= float64(f0.Energy) {
		t.Error("with π0 = 0, downclocking should save energy")
	}
}

func TestRunRepeatedAndAggregate(t *testing.T) {
	e, err := New(machine.CoreI7950(), DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	spec := KernelSpec{W: 1e8, Q: 1e8, Precision: machine.Single}
	runs, err := e.RunRepeated(spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 100 {
		t.Fatalf("got %d runs", len(runs))
	}
	mt, me, mp, err := Aggregate(runs)
	if err != nil {
		t.Fatal(err)
	}
	if mt <= 0 || me <= 0 || mp <= 0 {
		t.Errorf("aggregate = %v %v %v", mt, me, mp)
	}
	if stats.RelErr(float64(mp), float64(me)/float64(mt)) > 1e-12 {
		t.Error("mean power inconsistent with mean energy/time")
	}
	if _, err := e.RunRepeated(spec, 0); err == nil {
		t.Error("reps=0 should fail")
	}
	if _, _, _, err := Aggregate(nil); err == nil {
		t.Error("empty aggregate should fail")
	}
}

func TestPropSimObservablesPositiveAndConsistent(t *testing.T) {
	e, err := New(machine.GTX580(), DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	f := func(rw, ri float64, dp bool) bool {
		w := 1e6 * (1 + math.Abs(math.Mod(rw, 1e4)))
		i := math.Exp2(math.Mod(ri, 8)) // intensity 2^-8 .. 2^8
		prec := machine.Single
		if dp {
			prec = machine.Double
		}
		r, err := e.Run(KernelSpec{W: w, Q: w / i, Precision: prec})
		if err != nil {
			return false
		}
		if r.Duration <= 0 || r.Energy <= 0 || r.AvgPower <= 0 {
			return false
		}
		// Observed power equals E/T by construction.
		return stats.RelErr(float64(r.AvgPower), float64(r.Energy)/float64(r.Duration)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropSimRespectsRooflineUpperBounds(t *testing.T) {
	// Simulated measurements never beat the model's roofline/arch line:
	// normalized performance <= the curves (within noise slack).
	m := machine.CoreI7950() // uncapped keeps this clean
	e, err := New(m, DefaultConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	p := core.FromMachine(m, machine.Single)
	f := func(ri float64) bool {
		i := math.Exp2(math.Mod(ri, 7))
		k := core.KernelAt(1e9, i)
		r, err := e.Run(KernelSpec{W: k.W, Q: k.Q, Precision: machine.Single, Tuning: e.OptimalTuning()})
		if err != nil {
			return false
		}
		perfT := (k.W / p.PeakFlopsRate()) / float64(r.Duration)
		perfE := k.W * p.EpsFlopHat() / float64(r.Energy)
		return perfT <= p.RooflineTime(i)*1.05 && perfE <= p.ArchlineEnergy(i)*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestOutlierInjectionAndRobustAggregation(t *testing.T) {
	m := machine.CoreI7950()
	e, err := New(m, Config{Seed: 21, TimeNoiseSD: 0.01, PowerNoiseSD: 0.01,
		OutlierProb: 0.1, OutlierFactor: 4, LaunchOverhead: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	spec := KernelSpec{W: 1e9, Q: 1e8, Precision: machine.Double, Tuning: e.OptimalTuning()}
	runs, err := e.RunRepeated(spec, 300)
	if err != nil {
		t.Fatal(err)
	}
	outliers := 0
	for _, r := range runs {
		if r.Outlier {
			outliers++
			if float64(r.Duration) < 3*float64(r.TrueDuration) {
				t.Error("outlier run not stretched")
			}
			if float64(r.Energy) <= float64(r.TrueEnergy) {
				t.Error("outlier run should burn extra constant energy")
			}
		}
	}
	if outliers < 10 || outliers > 60 {
		t.Fatalf("outliers = %d of 300, expected ≈30", outliers)
	}
	// The trimmed mean shrugs the outliers off; the plain mean cannot.
	clean := runs[0].TrueDuration
	_, _, _, err = Aggregate(nil)
	if err == nil {
		t.Error("empty aggregate accepted")
	}
	mt, _, _, err := Aggregate(runs)
	if err != nil {
		t.Fatal(err)
	}
	rt, re, rp, err := AggregateRobust(runs, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	plainErr := stats.RelErr(float64(mt), float64(clean))
	robustErr := stats.RelErr(float64(rt), float64(clean))
	if robustErr >= plainErr {
		t.Errorf("robust error %v should beat plain %v", robustErr, plainErr)
	}
	if robustErr > 0.02 {
		t.Errorf("robust aggregation error %v too large", robustErr)
	}
	if re <= 0 || rp <= 0 {
		t.Error("robust aggregates must be positive")
	}
	if _, _, _, err := AggregateRobust(runs, 0.6); err == nil {
		t.Error("bad trim accepted")
	}
	if _, _, _, err := AggregateRobust(nil, 0.1); err == nil {
		t.Error("empty robust aggregate accepted")
	}
}

func TestOutlierConfigValidation(t *testing.T) {
	if _, err := New(machine.GTX580(), Config{OutlierProb: -0.1}); err == nil {
		t.Error("negative outlier prob accepted")
	}
	if _, err := New(machine.GTX580(), Config{OutlierProb: 1}); err == nil {
		t.Error("certain outlier accepted")
	}
	if _, err := New(machine.GTX580(), Config{OutlierProb: 0.1, OutlierFactor: 0.5}); err == nil {
		t.Error("outlier factor <= 1 accepted")
	}
}

func TestEnergyBreakdownSums(t *testing.T) {
	e := idealEngine(t, machine.GTX580())
	r, err := e.Run(KernelSpec{W: 1e10, Q: 1e9, Precision: machine.Double})
	if err != nil {
		t.Fatal(err)
	}
	sum := float64(r.EnergyFlops + r.EnergyMem + r.EnergyConst)
	if stats.RelErr(sum, float64(r.TrueEnergy)) > 1e-12 {
		t.Errorf("breakdown %v != true energy %v", sum, r.TrueEnergy)
	}
	if r.EnergyFlops <= 0 || r.EnergyMem <= 0 || r.EnergyConst <= 0 {
		t.Error("all components should be positive here")
	}
	// Throttling adds only constant energy: flop and memory parts are
	// unchanged while EnergyConst grows.
	p := core.FromMachine(machine.GTX580(), machine.Single)
	k := core.KernelAt(1e10, p.BalanceTime())
	rt, err := e.Run(KernelSpec{W: k.W, Q: k.Q, Precision: machine.Single})
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Throttled {
		t.Fatal("setup: expected throttled run")
	}
	wantFlops := k.W * float64(machine.GTX580().SP.EnergyPerFlop)
	if stats.RelErr(float64(rt.EnergyFlops), wantFlops) > 1e-9 {
		t.Errorf("throttling changed flop energy: %v vs %v", rt.EnergyFlops, wantFlops)
	}
}

func TestPropFreqScaleMonotone(t *testing.T) {
	// Slower clocks never make a run faster, and on a compute-bound
	// kernel the time scales exactly as 1/s.
	e := idealEngine(t, machine.CoreI7950())
	f := func(rs float64) bool {
		s := 0.1 + 0.9*math.Abs(math.Mod(rs, 1))
		full, err := e.Run(KernelSpec{W: 1e10, Q: 1e3, Precision: machine.Double, FreqScale: 1})
		if err != nil {
			return false
		}
		slow, err := e.Run(KernelSpec{W: 1e10, Q: 1e3, Precision: machine.Double, FreqScale: s})
		if err != nil {
			return false
		}
		ratio := float64(slow.Duration) / float64(full.Duration)
		return ratio >= 1 && math.Abs(ratio-1/s) < 1e-6/s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunWithDerivedStreamReproducible(t *testing.T) {
	m := machine.GTX580()
	e, err := New(m, DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	spec := KernelSpec{W: 1e9, Q: 1e9, Precision: machine.Single}
	a, err := e.RunWith(e.DeriveRand(1, 2, 3), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunWith(e.DeriveRand(1, 2, 3), spec)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Error("equal derivation labels must reproduce the run exactly")
	}
	c, err := e.RunWith(e.DeriveRand(3, 2, 1), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration == c.Duration {
		t.Error("different labels should give a different noise draw")
	}
	if e.Seed() != 42 {
		t.Errorf("Seed() = %d", e.Seed())
	}
}

func TestRunWithDoesNotTouchEngineStream(t *testing.T) {
	// Two engines with the same seed: one interleaves derived-stream
	// runs between its sequential runs, the other does not. The
	// sequential streams must stay in lockstep — parallel derivation is
	// invisible to sequential callers.
	m := machine.GTX580()
	spec := KernelSpec{W: 1e9, Q: 1e9, Precision: machine.Single}
	mk := func() *Engine {
		e, err := New(m, DefaultConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(), mk()
	for i := 0; i < 5; i++ {
		ra, err := a.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.RunWith(b.DeriveRand(uint64(i)), spec); err != nil {
			t.Fatal(err)
		}
		rb, err := b.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if *ra != *rb {
			t.Fatalf("iteration %d: derived runs perturbed the sequential stream", i)
		}
	}
}

func TestRunRepeatedParallelWorkerInvariance(t *testing.T) {
	m := machine.CoreI7950()
	spec := KernelSpec{W: 2e9, Q: 1e9, Precision: machine.Double}
	var baseline []*Run
	for _, workers := range []int{1, 2, 8} {
		e, err := New(m, DefaultConfig(11))
		if err != nil {
			t.Fatal(err)
		}
		runs, err := e.RunRepeatedParallel(context.Background(), spec, 64, workers, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 64 {
			t.Fatalf("workers=%d: %d runs", workers, len(runs))
		}
		if baseline == nil {
			baseline = runs
			continue
		}
		for i := range runs {
			if *runs[i] != *baseline[i] {
				t.Fatalf("workers=%d: run %d differs from workers=1 baseline", workers, i)
			}
		}
	}
	// Distinct extra labels must shift every repetition's stream.
	e, err := New(m, DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	other, err := e.RunRepeatedParallel(context.Background(), spec, 64, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range other {
		if other[i].Duration == baseline[i].Duration {
			same++
		}
	}
	if same == len(other) {
		t.Error("different labels reproduced the same repetitions")
	}
}

func TestRunRepeatedParallelErrors(t *testing.T) {
	e, err := New(machine.GTX580(), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunRepeatedParallel(context.Background(), KernelSpec{W: 1, Q: 1}, 0, 4); err == nil {
		t.Error("reps=0 accepted")
	}
	// An invalid spec must surface the simulator's error through the pool.
	if _, err := e.RunRepeatedParallel(context.Background(), KernelSpec{W: -1, Q: 1}, 8, 4); err == nil {
		t.Error("invalid spec accepted")
	}
}
