// Package sim is the execution substrate: it "runs" kernels against a
// machine description and produces the observables the paper measures —
// wall-clock time and an instantaneous power waveform that the
// PowerMon-2 analogue (internal/powermon) samples.
//
// The simulator realises the machine's ground-truth cost model (time
// from throughputs, energy from per-op coefficients plus constant
// power) together with the imperfections that make measured data look
// like Fig. 4 rather than like the ideal curves: a tuning-dependent
// achieved fraction of peak, kernel launch overhead, run-to-run noise,
// power-cap throttling (the §V-B effect), and optional frequency
// scaling for race-to-halt studies.
package sim

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// Tuning holds the launch parameters the paper's auto-tuner searches
// (§IV-B: "number of threads, thread block size, and number of memory
// requests per thread"), plus the unroll depth of the CPU kernel.
type Tuning struct {
	// Threads is the total thread count (GPU) or OpenMP threads (CPU).
	Threads int
	// BlockSize is the thread-block size (GPU) / chunk size (CPU).
	BlockSize int
	// Unroll is the inner-loop unroll depth.
	Unroll int
	// RequestsPerThread is the number of outstanding memory requests
	// each thread issues.
	RequestsPerThread int
}

// KernelSpec describes one benchmark execution request.
type KernelSpec struct {
	// W is the number of useful flops.
	W float64
	// Q is the number of bytes moved to/from slow memory.
	Q float64
	// Precision selects single or double precision.
	Precision machine.Precision
	// Tuning are the launch parameters; zero values get defaults.
	Tuning Tuning
	// FreqScale optionally scales the clock: 1 (default) is nominal.
	// Time per op scales as 1/s, dynamic energy per op as s² (DVFS
	// voltage-frequency coupling); constant power is unaffected.
	FreqScale float64
}

// Config controls simulator behaviour.
type Config struct {
	// Seed makes all noise deterministic.
	Seed int64
	// TimeNoiseSD is the relative run-to-run wall-time noise (default 0.01).
	TimeNoiseSD float64
	// PowerNoiseSD is the relative noise on observed average power
	// (default 0.015).
	PowerNoiseSD float64
	// LaunchOverhead is the fixed per-run dispatch latency (default 5 µs).
	LaunchOverhead units.Seconds
	// EnforceCap applies the machine's power cap via throttling
	// (default true; disable for the no-cap ablation).
	EnforceCap bool
	// Ideal disables noise, overhead, and tuning imperfection, making
	// the simulator realise the analytic model exactly.
	Ideal bool
	// OutlierProb is the per-run probability of an interference event
	// (OS jitter, thermal hiccup) that stretches the run by
	// OutlierFactor while constant power keeps burning. Default 0.
	OutlierProb float64
	// OutlierFactor is the slowdown of an interference event
	// (default 3 when OutlierProb > 0).
	OutlierFactor float64
}

// DefaultConfig returns the standard measurement configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		TimeNoiseSD:    0.01,
		PowerNoiseSD:   0.015,
		LaunchOverhead: 5e-6,
		EnforceCap:     true,
	}
}

// Engine executes kernels against one machine.
type Engine struct {
	m    *machine.Machine
	cfg  Config
	rng  *stats.Rand
	resp tuningResponse
	// qual memoizes the last TuningQuality lookup. Sweeps and repeated
	// runs evaluate the same tuning thousands of times; one atomic
	// entry captures that locality without a map or a lock.
	qual atomic.Pointer[qualEntry]
}

// qualEntry is one memoized (tuning, quality) pair.
type qualEntry struct {
	t Tuning
	q float64
}

// New builds an engine for machine m. The machine must validate.
func New(m *machine.Machine, cfg Config) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if cfg.TimeNoiseSD < 0 || cfg.PowerNoiseSD < 0 || cfg.LaunchOverhead < 0 {
		return nil, errors.New("sim: negative noise or overhead")
	}
	if cfg.OutlierProb < 0 || cfg.OutlierProb >= 1 {
		return nil, errors.New("sim: outlier probability must be in [0, 1)")
	}
	if cfg.OutlierProb > 0 && cfg.OutlierFactor == 0 {
		cfg.OutlierFactor = 3
	}
	if cfg.OutlierProb > 0 && cfg.OutlierFactor <= 1 {
		return nil, errors.New("sim: outlier factor must exceed 1")
	}
	if cfg.TimeNoiseSD == 0 && !cfg.Ideal {
		cfg.TimeNoiseSD = 0.01
	}
	if cfg.PowerNoiseSD == 0 && !cfg.Ideal {
		cfg.PowerNoiseSD = 0.015
	}
	return &Engine{
		m:    m,
		cfg:  cfg,
		rng:  stats.NewRand(cfg.Seed),
		resp: responseFor(m),
	}, nil
}

// Machine returns the engine's machine description.
func (e *Engine) Machine() *machine.Machine { return e.m }

// tuningResponse holds the machine-specific optimum of the tuning
// space. It is derived deterministically from the machine name so each
// platform has a distinct optimum for the auto-tuner to find.
type tuningResponse struct {
	optThreads, optBlock, optUnroll, optReqs int
}

func responseFor(m *machine.Machine) tuningResponse {
	h := fnv.New32a()
	h.Write([]byte(m.Name))
	v := h.Sum32()
	// Optima on power-of-two lattices in realistic ranges.
	return tuningResponse{
		optThreads: 1 << (7 + v%6),      // 128 .. 4096
		optBlock:   1 << (5 + (v>>3)%4), // 32 .. 256
		optUnroll:  1 << (1 + (v>>6)%4), // 2 .. 16
		optReqs:    1 << (1 + (v>>9)%3), // 2 .. 8
	}
}

// TuningQuality returns a value in (0, 1]: the fraction of the
// machine's best achievable throughput this tuning reaches. Quality is
// 1 exactly at the machine's optimum and decays smoothly (per-parameter
// Gaussian in log2 distance), so a grid search or hill climb converges.
// The most recent result is memoized on the engine (quality is a pure
// function of the tuning), so repeated runs at one tuning skip the
// eight Log2/Exp evaluations; the memo is safe under concurrent RunWith.
func (e *Engine) TuningQuality(t Tuning) float64 {
	if c := e.qual.Load(); c != nil && c.t == t {
		return c.q
	}
	d := withDefaults(t, e.resp)
	q := logDistQuality(d.Threads, e.resp.optThreads, 0.08)
	q *= logDistQuality(d.BlockSize, e.resp.optBlock, 0.05)
	q *= logDistQuality(d.Unroll, e.resp.optUnroll, 0.03)
	q *= logDistQuality(d.RequestsPerThread, e.resp.optReqs, 0.03)
	e.qual.Store(&qualEntry{t: t, q: q})
	return q
}

func logDistQuality(got, opt int, width float64) float64 {
	d := math.Log2(float64(got)) - math.Log2(float64(opt))
	return math.Exp(-width * d * d)
}

func withDefaults(t Tuning, r tuningResponse) Tuning {
	if t.Threads <= 0 {
		t.Threads = r.optThreads
	}
	if t.BlockSize <= 0 {
		t.BlockSize = r.optBlock
	}
	if t.Unroll <= 0 {
		t.Unroll = r.optUnroll
	}
	if t.RequestsPerThread <= 0 {
		t.RequestsPerThread = r.optReqs
	}
	return t
}

// OptimalTuning returns the tuning with quality exactly 1 for this
// engine's machine (what a perfect auto-tuner would find).
func (e *Engine) OptimalTuning() Tuning {
	return Tuning{
		Threads:           e.resp.optThreads,
		BlockSize:         e.resp.optBlock,
		Unroll:            e.resp.optUnroll,
		RequestsPerThread: e.resp.optReqs,
	}
}

// Run is one executed kernel: the simulated measurement record.
type Run struct {
	// Spec is the executed kernel.
	Spec KernelSpec
	// Duration is the observed wall time (noise included).
	Duration units.Seconds
	// Energy is the observed total energy (noise included).
	Energy units.Joules
	// AvgPower is Energy/Duration.
	AvgPower units.Watts
	// TrueDuration is the noise-free wall time, retained so tests can
	// separate model error from measurement error.
	TrueDuration units.Seconds
	// TrueEnergy is the noise-free total energy.
	TrueEnergy units.Joules
	// EnergyFlops is the eq. (2) flop component of TrueEnergy.
	EnergyFlops units.Joules
	// EnergyMem is the transfer component.
	EnergyMem units.Joules
	// EnergyConst is the constant-power component over TrueDuration.
	EnergyConst units.Joules
	// Throttled reports whether the power cap forced a slowdown.
	Throttled bool
	// Outlier reports that an injected interference event stretched
	// this run.
	Outlier bool
	// ripplePeriods is the number of power-waveform ripple cycles.
	ripplePeriods int
}

// PowerAt returns the noise-free instantaneous power at time t within
// the run (0 <= t <= Duration): the steady average plus a small ripple
// that integrates to zero over the whole run, so that integrating
// PowerAt over the duration recovers Energy.
func (r *Run) PowerAt(t units.Seconds) units.Watts {
	if t < 0 || t > r.Duration || r.Duration <= 0 {
		return 0
	}
	avg := float64(r.Energy) / float64(r.Duration)
	phase := 2 * math.Pi * float64(r.ripplePeriods) * float64(t) / float64(r.Duration)
	return units.Watts(avg * (1 + 0.02*math.Sin(phase)))
}

// Run executes the kernel once and returns the measurement record,
// drawing noise from the engine's own sequential stream. Run is NOT
// safe for concurrent use — the stream is shared mutable state; parallel
// callers must use RunWith with a per-task source from DeriveRand.
func (e *Engine) Run(spec KernelSpec) (*Run, error) {
	return e.RunWith(e.rng, spec)
}

// Seed returns the engine's base noise seed — the root every derived
// per-task stream hangs off.
func (e *Engine) Seed() int64 { return e.cfg.Seed }

// DeriveRand returns an independent noise stream for one unit of work,
// derived from the engine's seed and the given labels (stream tag,
// precision, grid index, repetition, ...). Two calls with equal labels
// return identical streams; calls with different labels return
// unrelated ones. Derivation does not consume the engine's sequential
// stream, so sequential callers are unaffected by parallel ones.
func (e *Engine) DeriveRand(labels ...uint64) *stats.Rand {
	return stats.DeriveRand(e.cfg.Seed, labels...)
}

// RunWith is Run with an explicit noise source. It reads only immutable
// engine state (plus the lock-free tuning-quality memo), so it is safe
// for concurrent use as long as each goroutine brings its own rng (see
// DeriveRand).
func (e *Engine) RunWith(rng *stats.Rand, spec KernelSpec) (*Run, error) {
	r := new(Run)
	if err := e.runInto(rng, spec, r); err != nil {
		return nil, err
	}
	return r, nil
}

// runInto is RunWith writing the record into caller-provided storage,
// letting RunRepeated/RunRepeatedParallel allocate one Run block per
// call instead of one Run per repetition. The noise draws and
// arithmetic are exactly RunWith's.
func (e *Engine) runInto(rng *stats.Rand, spec KernelSpec, out *Run) error {
	if spec.W < 0 || spec.Q < 0 || spec.W+spec.Q == 0 {
		return fmt.Errorf("sim: kernel must have non-negative W, Q with W+Q > 0 (got W=%g Q=%g)", spec.W, spec.Q)
	}
	s := spec.FreqScale
	if s == 0 {
		s = 1
	}
	if s <= 0 || s > 1 {
		return fmt.Errorf("sim: frequency scale %g outside (0, 1]", s)
	}

	pp := e.m.Params(spec.Precision)
	quality := 1.0
	fracFlop, fracBW := 1.0, 1.0
	overhead := float64(e.cfg.LaunchOverhead)
	if !e.cfg.Ideal {
		quality = e.TuningQuality(spec.Tuning)
		fracFlop = pp.AchievedFlopFrac
		fracBW = pp.AchievedBWFrac
	} else {
		overhead = 0
	}

	// Achieved throughputs under tuning and frequency scaling.
	flopRate := pp.PeakFlops * fracFlop * quality * s
	bwRate := e.m.Bandwidth * fracBW * quality // memory clock not scaled
	tFlops := spec.W / flopRate
	tMem := spec.Q / bwRate
	trueT := math.Max(tFlops, tMem) + overhead

	// Dynamic energy with DVFS scaling on the compute side.
	eFlops := spec.W * float64(pp.EnergyPerFlop) * s * s
	eMem := spec.Q * float64(e.m.EnergyPerByte)
	dynE := eFlops + eMem
	trueE := dynE + float64(e.m.ConstantPower)*trueT

	throttled := false
	cap := float64(e.m.PowerCap)
	if e.cfg.EnforceCap && cap > 0 && trueT > 0 && trueE/trueT > cap {
		// Throttle: dynamic energy is fixed, time stretches until the
		// average power meets the cap (same closed form as the model's
		// power-cap extension).
		trueT = dynE / (cap - float64(e.m.ConstantPower))
		trueE = cap * trueT
		throttled = true
	}

	obsT := trueT
	obsE := trueE
	outlier := false
	if !e.cfg.Ideal {
		obsT = trueT * rng.RelNoise(e.cfg.TimeNoiseSD)
		obsP := trueE / trueT * rng.RelNoise(e.cfg.PowerNoiseSD)
		obsE = obsP * obsT
		if e.cfg.OutlierProb > 0 && rng.Float64() < e.cfg.OutlierProb {
			// Interference stretches the run; the stall burns constant
			// power but no extra dynamic energy.
			outlier = true
			stretched := obsT * e.cfg.OutlierFactor
			obsE += float64(e.m.ConstantPower) * (stretched - obsT)
			obsT = stretched
		}
	}
	*out = Run{
		Spec:          spec,
		Duration:      units.Seconds(obsT),
		Energy:        units.Joules(obsE),
		AvgPower:      units.Watts(obsE / obsT),
		TrueDuration:  units.Seconds(trueT),
		TrueEnergy:    units.Joules(trueE),
		EnergyFlops:   units.Joules(eFlops),
		EnergyMem:     units.Joules(eMem),
		EnergyConst:   units.Joules(trueE - eFlops - eMem),
		Throttled:     throttled,
		Outlier:       outlier,
		ripplePeriods: 8,
	}
	return nil
}

// RunBatch executes specs in order, writing record i into out[i]. The
// noise draws and arithmetic are exactly a sequential loop of RunWith
// calls on the same source, so the records are bit-identical to that
// loop; out provides the storage, so steady-state reuse allocates
// nothing. A nil rng uses the engine's own sequential stream (like Run),
// in which case RunBatch is not safe for concurrent use.
func (e *Engine) RunBatch(rng *stats.Rand, specs []KernelSpec, out []Run) error {
	if len(out) != len(specs) {
		return fmt.Errorf("sim: RunBatch needs len(out) == len(specs) (got %d != %d)", len(out), len(specs))
	}
	if rng == nil {
		rng = e.rng
	}
	for i := range specs {
		if err := e.runInto(rng, specs[i], &out[i]); err != nil {
			return err
		}
	}
	return nil
}

// RunWithCtx is RunWith under a context: when ctx carries a
// trace.Tracer the kernel execution is recorded as a "sim.run" span
// tagged with the precision and whether the power cap throttled the
// run — the per-kernel simulate phase in an execution trace. The
// simulation itself is identical to RunWith; tracing never touches the
// noise stream, so traced and untraced runs produce the same record.
func (e *Engine) RunWithCtx(ctx context.Context, rng *stats.Rand, spec KernelSpec) (*Run, error) {
	if trace.FromContext(ctx) == nil {
		// Fast path: no tracer installed. One context lookup, then the
		// plain run — no span start/end or tag bookkeeping.
		return e.RunWith(rng, spec)
	}
	_, sp := trace.Start(ctx, "sim.run")
	r, err := e.RunWith(rng, spec)
	if sp != nil && err == nil {
		sp.Tag("precision", spec.Precision.String()).Tag("throttled", r.Throttled)
	}
	sp.End()
	return r, err
}

// RunRepeated executes the kernel reps times (the paper runs each
// benchmark 100 times) and returns all records. The records share one
// preallocated block, so a repeated run costs two allocations however
// large reps is; each returned *Run is still independently valid for
// the block's lifetime.
func (e *Engine) RunRepeated(spec KernelSpec, reps int) ([]*Run, error) {
	if reps < 1 {
		return nil, errors.New("sim: reps must be >= 1")
	}
	runs := make([]Run, reps)
	out := make([]*Run, reps)
	for i := range runs {
		if err := e.runInto(e.rng, spec, &runs[i]); err != nil {
			return nil, err
		}
		out[i] = &runs[i]
	}
	return out, nil
}

// repStream tags the derived-seed namespace RunRepeatedParallel uses,
// keeping its streams disjoint from any other consumer of DeriveRand.
const repStream uint64 = 0x73657065 // "reps"

// RunRepeatedParallel executes the kernel reps times across at most
// workers goroutines (workers < 1 means GOMAXPROCS, 1 runs inline).
// Unlike RunRepeated, every repetition draws from its own noise stream
// derived from (engine seed, rep index), so the returned records are
// byte-identical at any worker count — including workers = 1 — and
// independent of scheduling. The extra labels extend the derivation,
// letting callers keep several concurrent rep loops (different grid
// points, precisions) on disjoint streams.
func (e *Engine) RunRepeatedParallel(ctx context.Context, spec KernelSpec, reps, workers int, labels ...uint64) ([]*Run, error) {
	if reps < 1 {
		return nil, errors.New("sim: reps must be >= 1")
	}
	// Fold the shared label prefix once; each repetition extends the
	// fold with its index and borrows a pooled source seeded from the
	// result — the same seed DeriveRand(repStream, labels..., i) yields,
	// without a label slice or a ~5 KB rand state per rep. Records land
	// in one shared block at their rep index, so the output is identical
	// at any worker count.
	state := stats.DeriveState(e.cfg.Seed, repStream)
	for _, l := range labels {
		state = stats.ExtendState(state, l)
	}
	runs := make([]Run, reps)
	out := make([]*Run, reps)
	err := parallel.ForEach(ctx, reps, workers, func(_ context.Context, i int) error {
		rng := stats.BorrowRand(int64(stats.ExtendState(state, uint64(i))))
		defer rng.Release()
		if err := e.runInto(rng, spec, &runs[i]); err != nil {
			return err
		}
		out[i] = &runs[i]
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Aggregate summarises repeated runs into mean observed time, energy
// and power.
func Aggregate(runs []*Run) (meanT units.Seconds, meanE units.Joules, meanP units.Watts, err error) {
	if len(runs) == 0 {
		return 0, 0, 0, errors.New("sim: no runs to aggregate")
	}
	var st, se float64
	for _, r := range runs {
		st += float64(r.Duration)
		se += float64(r.Energy)
	}
	n := float64(len(runs))
	meanT = units.Seconds(st / n)
	meanE = units.Joules(se / n)
	meanP = units.Watts(float64(meanE) / float64(meanT))
	return meanT, meanE, meanP, nil
}

// AggregateRobust is Aggregate with a trimmed mean (trim fraction per
// tail), the defence against interference outliers in repeated runs.
func AggregateRobust(runs []*Run, trim float64) (meanT units.Seconds, meanE units.Joules, meanP units.Watts, err error) {
	if len(runs) == 0 {
		return 0, 0, 0, errors.New("sim: no runs to aggregate")
	}
	ts := make([]float64, len(runs))
	es := make([]float64, len(runs))
	for i, r := range runs {
		ts[i] = float64(r.Duration)
		es[i] = float64(r.Energy)
	}
	mt, err := stats.TrimmedMean(ts, trim)
	if err != nil {
		return 0, 0, 0, err
	}
	me, err := stats.TrimmedMean(es, trim)
	if err != nil {
		return 0, 0, 0, err
	}
	return units.Seconds(mt), units.Joules(me), units.Watts(me / mt), nil
}
