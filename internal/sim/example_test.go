package sim_test

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Repeating a kernel to average out measurement noise. RunRepeated
// reuses one storage block for all repetitions; the returned pointers
// stay valid after later calls, and the records are bit-identical to
// calling Run in a loop on an identically seeded engine.
func ExampleEngine_RunRepeated() {
	e, err := sim.New(machine.GTX580(), sim.DefaultConfig(42))
	if err != nil {
		panic(err)
	}
	spec := sim.KernelSpec{W: 1e9, Q: 2.5e8, Precision: machine.Single}
	runs, err := e.RunRepeated(spec, 4)
	if err != nil {
		panic(err)
	}
	var mean float64
	for _, r := range runs {
		mean += float64(r.Energy)
	}
	mean /= float64(len(runs))
	fmt.Printf("reps: %d\n", len(runs))
	fmt.Printf("mean energy: %.3f J\n", mean)
	fmt.Printf("true energy: %.3f J\n", float64(runs[0].TrueEnergy))
	// Output:
	// reps: 4
	// mean energy: 0.416 J
	// true energy: 0.410 J
}
