// Package regress implements ordinary least squares linear regression
// via Householder QR factorization, with the inference statistics the
// paper reports for its energy-coefficient fit (eq. 9): R² near unity
// and p-values below 1e-14.
//
// The implementation is self-contained: the QR solver, the covariance
// computation, and the Student-t tail probabilities (via the regularized
// incomplete beta function) use only the standard library.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Result holds a fitted linear model y ≈ X·β.
type Result struct {
	// Coef are the fitted coefficients β, one per design-matrix column.
	Coef []float64
	// StdErr are the coefficient standard errors.
	StdErr []float64
	// TStat are the t statistics Coef[i]/StdErr[i].
	TStat []float64
	// PValue are two-sided p-values for the null hypothesis β_i = 0.
	PValue []float64
	// R2 is the coefficient of determination.
	R2 float64
	// AdjR2 is R² adjusted for the number of predictors.
	AdjR2 float64
	// RSS is the residual sum of squares.
	RSS float64
	// Sigma2 is the residual variance estimate RSS/(n-p).
	Sigma2 float64
	// DOF is the residual degrees of freedom n-p.
	DOF int
	// Residuals are y - X·β.
	Residuals []float64
}

// Fit performs an ordinary least squares fit of y on the rows of X.
// Each row of X is one observation; all rows must have the same number
// of columns p, and len(X) == len(y) must exceed p. An intercept, if
// wanted, must be supplied as a column of ones.
func Fit(X [][]float64, y []float64) (*Result, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, errors.New("regress: empty design matrix or length mismatch")
	}
	p := len(X[0])
	if p == 0 {
		return nil, errors.New("regress: no predictors")
	}
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("regress: row %d has %d columns, want %d", i, len(row), p)
		}
	}
	if n <= p {
		return nil, fmt.Errorf("regress: need more than %d observations for %d predictors, have %d", p, p, n)
	}

	// Copy X into a working matrix A (n x p) and y into b.
	a := make([][]float64, n)
	for i := range a {
		a[i] = append([]float64(nil), X[i]...)
	}
	b := append([]float64(nil), y...)

	// Original column norms set the scale for rank-deficiency detection:
	// after elimination, a column whose remaining norm is a roundoff-sized
	// fraction of its original norm is linearly dependent on its
	// predecessors.
	colNorm := make([]float64, p)
	for j := 0; j < p; j++ {
		for i := 0; i < n; i++ {
			colNorm[j] = math.Hypot(colNorm[j], a[i][j])
		}
	}

	// Householder QR: reduce A to upper-triangular R in place, applying
	// the same reflections to b. After the loop, the least-squares
	// solution solves R β = b[:p].
	for k := 0; k < p; k++ {
		// Norm of column k below the diagonal.
		norm := 0.0
		for i := k; i < n; i++ {
			norm = math.Hypot(norm, a[i][k])
		}
		if norm <= 1e-12*colNorm[k] {
			return nil, fmt.Errorf("regress: design matrix is rank deficient at column %d", k)
		}
		// Choose the sign that avoids cancellation: norm takes the sign
		// of the diagonal element, so v = x/norm + e_k has v_k >= 1.
		if a[k][k] < 0 {
			norm = -norm
		}
		// Householder vector v stored in a[k:][k]; v_k normalised to 1.
		for i := k; i < n; i++ {
			a[i][k] /= norm
		}
		a[k][k] += 1
		// Apply reflection to remaining columns.
		for j := k + 1; j < p; j++ {
			s := 0.0
			for i := k; i < n; i++ {
				s += a[i][k] * a[i][j]
			}
			s = -s / a[k][k]
			for i := k; i < n; i++ {
				a[i][j] += s * a[i][k]
			}
		}
		// Apply reflection to b.
		s := 0.0
		for i := k; i < n; i++ {
			s += a[i][k] * b[i]
		}
		s = -s / a[k][k]
		for i := k; i < n; i++ {
			b[i] += s * a[i][k]
		}
		a[k][k] = -norm // diagonal of R (LINPACK convention R_kk = -norm)
	}

	// Back substitution: R β = b[:p]. R's diagonal sits in a[k][k]
	// (negated norm convention), upper triangle in a[k][j], j>k.
	beta := make([]float64, p)
	for k := p - 1; k >= 0; k-- {
		s := b[k]
		for j := k + 1; j < p; j++ {
			s -= a[k][j] * beta[j]
		}
		if a[k][k] == 0 {
			return nil, errors.New("regress: singular R in back substitution")
		}
		beta[k] = s / a[k][k]
	}

	// Residuals and goodness of fit against the original data.
	res := &Result{Coef: beta, DOF: n - p}
	res.Residuals = make([]float64, n)
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	tss := 0.0
	for i := 0; i < n; i++ {
		pred := 0.0
		for j := 0; j < p; j++ {
			pred += X[i][j] * beta[j]
		}
		r := y[i] - pred
		res.Residuals[i] = r
		res.RSS += r * r
		d := y[i] - meanY
		tss += d * d
	}
	if tss > 0 {
		res.R2 = 1 - res.RSS/tss
		res.AdjR2 = 1 - (res.RSS/float64(n-p))/(tss/float64(n-1))
	} else {
		res.R2 = 1
		res.AdjR2 = 1
	}
	res.Sigma2 = res.RSS / float64(res.DOF)

	// Coefficient covariance: σ² (R'R)^{-1} = σ² R^{-1} R^{-T}.
	// Compute Rinv (p x p upper triangular inverse).
	rinv := make([][]float64, p)
	for i := range rinv {
		rinv[i] = make([]float64, p)
	}
	for j := 0; j < p; j++ {
		rinv[j][j] = 1 / a[j][j]
		for i := j - 1; i >= 0; i-- {
			s := 0.0
			for k := i + 1; k <= j; k++ {
				s += a[i][k] * rinv[k][j]
			}
			rinv[i][j] = -s / a[i][i]
		}
	}
	res.StdErr = make([]float64, p)
	res.TStat = make([]float64, p)
	res.PValue = make([]float64, p)
	for i := 0; i < p; i++ {
		v := 0.0
		for j := i; j < p; j++ {
			v += rinv[i][j] * rinv[i][j]
		}
		se := math.Sqrt(res.Sigma2 * v)
		res.StdErr[i] = se
		if se > 0 {
			res.TStat[i] = beta[i] / se
			res.PValue[i] = TwoSidedTPValue(res.TStat[i], res.DOF)
		} else {
			res.TStat[i] = math.Inf(sign(beta[i]))
			res.PValue[i] = 0
		}
	}
	return res, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// Predict evaluates the fitted model on a single observation row.
func (r *Result) Predict(row []float64) (float64, error) {
	if len(row) != len(r.Coef) {
		return 0, fmt.Errorf("regress: row has %d columns, model has %d", len(row), len(r.Coef))
	}
	s := 0.0
	for i, x := range row {
		s += x * r.Coef[i]
	}
	return s, nil
}

// TwoSidedTPValue returns the two-sided p-value of a Student-t statistic
// with dof degrees of freedom: P(|T| >= |t|).
func TwoSidedTPValue(t float64, dof int) float64 {
	if dof <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 0) {
		return 0
	}
	// P(|T| >= t) = I_{ν/(ν+t²)}(ν/2, 1/2) — regularized incomplete beta.
	nu := float64(dof)
	x := nu / (nu + t*t)
	return RegIncBeta(nu/2, 0.5, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued fraction expansion (Numerical Recipes style,
// modified Lentz algorithm).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta
// function via the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
