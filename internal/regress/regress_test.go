package regress

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestExactLineFit(t *testing.T) {
	// y = 3 + 2x, noiseless.
	var X [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		x := float64(i)
		X = append(X, []float64{1, x})
		y = append(y, 3+2*x)
	}
	r, err := Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Coef[0]-3) > 1e-9 || math.Abs(r.Coef[1]-2) > 1e-9 {
		t.Errorf("coefs = %v, want [3 2]", r.Coef)
	}
	if r.R2 < 1-1e-12 {
		t.Errorf("R2 = %v, want 1", r.R2)
	}
	if r.RSS > 1e-18 {
		t.Errorf("RSS = %v, want ~0", r.RSS)
	}
	if r.DOF != 18 {
		t.Errorf("DOF = %d, want 18", r.DOF)
	}
}

func TestMultivariateRecovery(t *testing.T) {
	// The shape of the paper's eq. (9): E/W = es + emem*(Q/W) + p0*(T/W) + ded*R.
	truth := []float64{99.7, 513, 122, 112.3}
	rng := stats.NewRand(11)
	var X [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		qw := rng.Float64() * 4         // bytes per flop
		tw := 1e-3 + rng.Float64()*5e-3 // time per flop (arbitrary scale)
		rr := float64(i % 2)            // precision indicator
		row := []float64{1, qw, tw, rr}
		X = append(X, row)
		v := truth[0] + truth[1]*qw + truth[2]*tw + truth[3]*rr
		y = append(y, v*rng.RelNoise(0.01))
	}
	r, err := Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range truth {
		if i == 2 {
			// The T/W regressor has tiny magnitude, so its coefficient is
			// weakly identified under relative noise; allow a loose check.
			continue
		}
		if stats.RelErr(r.Coef[i], want) > 0.05 {
			t.Errorf("coef[%d] = %v, want %v", i, r.Coef[i], want)
		}
	}
	if r.R2 < 0.99 {
		t.Errorf("R2 = %v, want near 1", r.R2)
	}
	// All strong coefficients should be significant.
	for _, i := range []int{0, 1, 3} {
		if r.PValue[i] > 1e-10 {
			t.Errorf("p-value[%d] = %v, want tiny", i, r.PValue[i])
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Fit([][]float64{{}, {}}, []float64{1, 2}); err == nil {
		t.Error("no predictors should fail")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := Fit([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}); err == nil {
		t.Error("n <= p should fail")
	}
	// Rank-deficient: column 2 = 2 * column 1.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	if _, err := Fit(X, []float64{1, 2, 3, 4}); err == nil {
		t.Error("rank-deficient fit should fail")
	}
}

func TestPredict(t *testing.T) {
	X := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	r, err := Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Predict([]float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-21) > 1e-9 {
		t.Errorf("Predict = %v, want 21", p)
	}
	if _, err := r.Predict([]float64{1}); err == nil {
		t.Error("wrong-width predict should fail")
	}
}

func TestResidualsOrthogonalToDesign(t *testing.T) {
	// OLS invariant: residuals are orthogonal to every design column.
	rng := stats.NewRand(5)
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		row := []float64{1, rng.Float64(), rng.Float64() * 10}
		X = append(X, row)
		y = append(y, 2+3*row[1]-0.5*row[2]+rng.Gaussian(0, 0.3))
	}
	r, err := Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		dot := 0.0
		for i := range X {
			dot += X[i][j] * r.Residuals[i]
		}
		if math.Abs(dot) > 1e-8 {
			t.Errorf("residuals not orthogonal to column %d: %v", j, dot)
		}
	}
}

func TestRegIncBeta(t *testing.T) {
	cases := []struct{ a, b, x, want float64 }{
		{0.5, 0.5, 0.5, 0.5},   // symmetric arcsine distribution median
		{1, 1, 0.3, 0.3},       // uniform: I_x(1,1) = x
		{2, 2, 0.5, 0.5},       // symmetric beta median
		{2, 3, 1, 1},           // boundary
		{2, 3, 0, 0},           // boundary
		{5, 2, 0.8, 0.6553600}, // known value: I_0.8(5,2)
	}
	for _, c := range cases {
		got := RegIncBeta(c.a, c.b, c.x)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("RegIncBeta(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
	if !math.IsNaN(RegIncBeta(-1, 1, 0.5)) {
		t.Error("negative shape should be NaN")
	}
}

func TestRegIncBetaComplementProperty(t *testing.T) {
	f := func(ra, rb, rx float64) bool {
		a := math.Abs(math.Mod(ra, 10)) + 0.1
		b := math.Abs(math.Mod(rb, 10)) + 0.1
		x := math.Abs(math.Mod(rx, 1))
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return math.Abs(lhs-rhs) < 1e-9 && lhs >= -1e-12 && lhs <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoSidedTPValue(t *testing.T) {
	// Known t-distribution tails.
	cases := []struct {
		t    float64
		dof  int
		want float64
		tol  float64
	}{
		{0, 10, 1, 1e-12},
		{2.228, 10, 0.05, 1e-3}, // 97.5th percentile of t(10)
		{1.96, 1000, 0.05, 2e-3},
		{12.706, 1, 0.05, 1e-3},
	}
	for _, c := range cases {
		got := TwoSidedTPValue(c.t, c.dof)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("p(t=%v, dof=%d) = %v, want %v", c.t, c.dof, got, c.want)
		}
	}
	if got := TwoSidedTPValue(math.Inf(1), 5); got != 0 {
		t.Errorf("p(inf) = %v", got)
	}
	if !math.IsNaN(TwoSidedTPValue(1, 0)) {
		t.Error("dof=0 should be NaN")
	}
	// Symmetry in t.
	if TwoSidedTPValue(2.5, 7) != TwoSidedTPValue(-2.5, 7) {
		t.Error("p-value must be symmetric in t")
	}
}

func TestR2Boundaries(t *testing.T) {
	// Constant response: TSS = 0 -> define R2 = 1.
	X := [][]float64{{1}, {1}, {1}, {1}}
	y := []float64{5, 5, 5, 5}
	r, err := Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.R2 != 1 {
		t.Errorf("R2 for perfect constant fit = %v", r.R2)
	}
}

func BenchmarkFitEq9Shape(b *testing.B) {
	rng := stats.NewRand(2)
	var X [][]float64
	var y []float64
	for i := 0; i < 2200; i++ { // ~ the paper's 100 reps x 22 intensities
		row := []float64{1, rng.Float64() * 4, rng.Float64() * 1e-2, float64(i % 2)}
		X = append(X, row)
		y = append(y, 100+500*row[1]+120*row[2]+110*row[3]+rng.Gaussian(0, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
