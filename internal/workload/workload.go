// Package workload generates the synthetic request traffic the cluster
// simulator (internal/cluster) drives through a fleet of rooflined
// replicas: arrival processes (Poisson, bursty/MMPP, closed-loop) over
// a Zipf-skewed content-key universe, plus byte-exact trace replay.
//
// Every stream is seeded through stats.DeriveSeed, so a Spec is a
// complete, reproducible description of a traffic pattern: the same
// spec yields the same []Request — byte for byte — on any machine, at
// any worker count, on every run. That is the property the fleet
// golden tests and the replay fuzz target pin.
//
// A Request's content identity (Key) determines its kernel shape
// (Work, Intensity) deterministically, mirroring content-addressed
// serving: two requests with the same key describe the same
// computation, so replica caches and coalescing treat them as
// duplicates exactly like the production server would.
package workload

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Arrival-process kinds accepted by Spec.Kind.
const (
	// Poisson is an open-loop memoryless arrival process at Spec.Rate
	// requests per second.
	Poisson = "poisson"
	// MMPP is an open-loop two-state Markov-modulated Poisson process:
	// calm periods at Spec.Rate, bursts at Spec.BurstRate, with
	// exponentially distributed state dwell times.
	MMPP = "mmpp"
	// Closed is a closed-loop workload: Spec.Clients clients each issue
	// one request, wait for its completion, think for an exponential
	// delay, and issue the next. Request.Time holds the think delay.
	Closed = "closed"
)

// Request is one unit of synthetic traffic.
type Request struct {
	// ID is the request's global sequence number in generation order.
	ID int `json:"id"`
	// Time is the absolute arrival time in seconds for open-loop kinds
	// (non-decreasing across the trace); for closed-loop traces it is
	// the issuing client's think delay before this request, counted
	// from the completion of the client's previous request (or from
	// t = 0 for the client's first request).
	Time float64 `json:"time"`
	// Key is the request's content identity: requests with equal keys
	// describe the identical computation and are cacheable/coalescible
	// duplicates of each other.
	Key uint64 `json:"key"`
	// Work is the kernel's arithmetic work W in flops, derived from Key.
	Work float64 `json:"work"`
	// Intensity is the kernel's operational intensity I in flops/byte,
	// derived from Key.
	Intensity float64 `json:"intensity"`
	// Client is the issuing client for closed-loop traces (0 otherwise).
	Client int `json:"client,omitempty"`
}

// Spec describes one reproducible traffic pattern. The zero value is
// invalid; construct via DefaultSpec or JSON and check with Validate.
type Spec struct {
	// Kind selects the arrival process: Poisson, MMPP, or Closed.
	Kind string `json:"kind"`
	// Rate is the mean arrival rate in requests/second (Poisson, and
	// the calm-state rate for MMPP).
	Rate float64 `json:"rate,omitempty"`
	// BurstRate is the MMPP burst-state arrival rate.
	BurstRate float64 `json:"burst_rate,omitempty"`
	// CalmDwell is the MMPP mean dwell time in the calm state, seconds.
	CalmDwell float64 `json:"calm_dwell_seconds,omitempty"`
	// BurstDwell is the MMPP mean dwell time in the burst state, seconds.
	BurstDwell float64 `json:"burst_dwell_seconds,omitempty"`
	// Clients is the closed-loop client population.
	Clients int `json:"clients,omitempty"`
	// ThinkSeconds is the closed-loop mean think time between a
	// client's completion and its next request.
	ThinkSeconds float64 `json:"think_seconds,omitempty"`
	// Requests is the total request count to generate.
	Requests int `json:"requests"`
	// Keys is the content-key universe size popularity is drawn over.
	Keys int `json:"keys"`
	// ZipfS is the Zipf popularity exponent (0 = uniform; real content
	// skews are typically 0.6–1.3).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// WorkFlops is the base kernel work W; per-key work varies in
	// [0.5, 1.5] × WorkFlops.
	WorkFlops float64 `json:"work_flops,omitempty"`
	// LoIntensity and HiIntensity bound the log-uniform per-key
	// operational intensity.
	LoIntensity float64 `json:"lo_intensity,omitempty"`
	// HiIntensity is the upper intensity bound.
	HiIntensity float64 `json:"hi_intensity,omitempty"`
	// Seed is the base seed every derived stream descends from.
	Seed int64 `json:"seed"`
}

// DefaultSpec returns a small, valid Poisson spec to build on.
func DefaultSpec() Spec {
	return Spec{
		Kind:        Poisson,
		Rate:        100,
		Requests:    10000,
		Keys:        1000,
		ZipfS:       1.1,
		WorkFlops:   1e9,
		LoIntensity: 0.5,
		HiIntensity: 8,
		Seed:        42,
	}
}

// MaxRequests bounds Spec.Requests: an allocation guard (a trace entry
// is ~56 bytes, so the bound caps a trace at ~235 MB), not a semantic
// limit.
const MaxRequests = 4 << 20

// MaxKeys bounds the content universe (the Zipf CDF is O(Keys) floats).
const MaxKeys = 1 << 22

// finitePos reports a usable positive float.
func finitePos(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// Validate reports whether the spec describes a generatable workload.
// It rejects NaN/Inf fields, non-positive rates and populations, and
// allocation-scale request counts.
func (s Spec) Validate() error {
	switch s.Kind {
	case Poisson:
		if !finitePos(s.Rate) {
			return errors.New("workload: poisson needs a positive finite rate")
		}
	case MMPP:
		if !finitePos(s.Rate) || !finitePos(s.BurstRate) {
			return errors.New("workload: mmpp needs positive finite rate and burst_rate")
		}
		if !finitePos(s.CalmDwell) || !finitePos(s.BurstDwell) {
			return errors.New("workload: mmpp needs positive finite dwell times")
		}
	case Closed:
		if s.Clients < 1 {
			return errors.New("workload: closed loop needs at least one client")
		}
		if s.Clients > s.Requests {
			return errors.New("workload: closed loop has more clients than requests")
		}
		if math.IsNaN(s.ThinkSeconds) || math.IsInf(s.ThinkSeconds, 0) || s.ThinkSeconds < 0 {
			return errors.New("workload: think time must be finite and non-negative")
		}
	default:
		return fmt.Errorf("workload: unknown kind %q (want %q, %q, or %q)", s.Kind, Poisson, MMPP, Closed)
	}
	if s.Requests < 1 || s.Requests > MaxRequests {
		return fmt.Errorf("workload: requests must be in [1, %d]", MaxRequests)
	}
	if s.Keys < 1 || s.Keys > MaxKeys {
		return fmt.Errorf("workload: keys must be in [1, %d]", MaxKeys)
	}
	if math.IsNaN(s.ZipfS) || math.IsInf(s.ZipfS, 0) || s.ZipfS < 0 {
		return errors.New("workload: zipf_s must be finite and non-negative")
	}
	if !finitePos(s.WorkFlops) {
		return errors.New("workload: work_flops must be positive and finite")
	}
	if !finitePos(s.LoIntensity) || !finitePos(s.HiIntensity) || s.HiIntensity < s.LoIntensity {
		return errors.New("workload: intensity bounds must be positive, finite, and ordered")
	}
	return nil
}

// ParseSpec strictly decodes a Spec from JSON (unknown fields and
// trailing garbage rejected) and validates it.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := strictUnmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("workload: bad spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Trace is a generated (or replayed) request stream plus its
// provenance. Requests are in ID order; for open-loop kinds arrival
// times are non-decreasing.
type Trace struct {
	// Spec is the generating spec (zero for hand-built traces).
	Spec Spec `json:"spec"`
	// Closed marks a closed-loop trace (Request.Time is a think delay).
	Closed bool `json:"closed,omitempty"`
	// Clients is the closed-loop client population (0 for open loop).
	Clients int `json:"clients,omitempty"`
	// Requests is the stream itself.
	Requests []Request `json:"requests"`
}

// Derivation labels for the independent random streams; folding a
// distinct label per stream keeps arrivals, popularity, and state
// switching uncorrelated while still descending from one seed.
const (
	labelArrivals = 0x41525256 // "ARRV"
	labelKeys     = 0x4b455953 // "KEYS"
	labelPhase    = 0x50484153 // "PHAS"
	labelKernel   = 0x4b524e4c // "KRNL"
)

// keyFor derives the stable content identity of popularity rank r.
// Identity depends only on (seed, rank): every request for rank r —
// in any trace generated from the same seed — carries the same key.
func keyFor(seed int64, rank int) uint64 {
	return stats.DeriveState(seed, labelKeys, uint64(rank))
}

// kernelFor derives the kernel shape bound to a content key. Work
// varies in [0.5, 1.5]× base, intensity log-uniformly in [lo, hi]; both
// are pure functions of the key so duplicate keys mean duplicate
// computations.
func kernelFor(key uint64, base, lo, hi float64) (work, intensity float64) {
	u1 := float64(stats.ExtendState(key, labelKernel)>>11) / (1 << 53)
	u2 := float64(stats.ExtendState(key, labelKernel+1)>>11) / (1 << 53)
	work = base * (0.5 + u1)
	l0, l1 := math.Log2(lo), math.Log2(hi)
	intensity = math.Exp2(l0 + u2*(l1-l0))
	return work, intensity
}

// Generate produces the full request trace for spec. Generation is a
// pure function of the spec: same spec, same bytes.
func Generate(spec Spec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	zipf, err := stats.NewZipf(spec.Keys, spec.ZipfS)
	if err != nil {
		return nil, fmt.Errorf("workload: %v", err)
	}
	arrivals := stats.DeriveRand(spec.Seed, labelArrivals)
	popularity := stats.DeriveRand(spec.Seed, labelKeys)
	phase := stats.DeriveRand(spec.Seed, labelPhase)

	tr := &Trace{
		Spec:     spec,
		Closed:   spec.Kind == Closed,
		Clients:  spec.Clients,
		Requests: make([]Request, spec.Requests),
	}
	if !tr.Closed {
		tr.Clients = 0
	}

	// Arrival (or think) times per kind.
	switch spec.Kind {
	case Poisson:
		t := 0.0
		for i := range tr.Requests {
			t += arrivals.Exp(spec.Rate)
			tr.Requests[i].Time = t
		}
	case MMPP:
		// Two-state MMPP: alternate exponential dwell periods between
		// the calm and burst rates; within a state arrivals are Poisson.
		// Memorylessness lets each dwell boundary simply redraw the next
		// inter-arrival at the new state's rate.
		t := 0.0
		burst := false
		dwellEnd := phase.Exp(1 / spec.CalmDwell)
		for i := range tr.Requests {
			rate := spec.Rate
			if burst {
				rate = spec.BurstRate
			}
			next := t + arrivals.Exp(rate)
			for next > dwellEnd {
				// State switch before the candidate arrival: advance to
				// the boundary, flip state, redraw from the boundary.
				t = dwellEnd
				burst = !burst
				mean := spec.CalmDwell
				rate = spec.Rate
				if burst {
					mean = spec.BurstDwell
					rate = spec.BurstRate
				}
				dwellEnd = t + phase.Exp(1/mean)
				next = t + arrivals.Exp(rate)
			}
			t = next
			tr.Requests[i].Time = t
		}
	case Closed:
		mean := spec.ThinkSeconds
		for i := range tr.Requests {
			think := 0.0
			if mean > 0 {
				think = arrivals.Exp(1 / mean)
			}
			tr.Requests[i].Time = think
			tr.Requests[i].Client = i % spec.Clients
		}
	}

	// Content identity and kernel shape, identical across kinds.
	for i := range tr.Requests {
		r := &tr.Requests[i]
		r.ID = i
		rank := zipf.Sample(popularity)
		r.Key = keyFor(spec.Seed, rank)
		r.Work, r.Intensity = kernelFor(r.Key, spec.WorkFlops, spec.LoIntensity, spec.HiIntensity)
	}
	return tr, nil
}

// Marshal renders the trace as deterministic JSON — the on-disk replay
// format. ParseTrace(Marshal(t)) reproduces t exactly.
func (t *Trace) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseTrace strictly decodes a recorded trace and validates the
// stream invariants every generator guarantees: IDs sequential,
// times finite and non-negative, open-loop arrivals non-decreasing,
// closed-loop clients in range, kernels positive and finite.
func ParseTrace(data []byte) (*Trace, error) {
	var t Trace
	if err := strictUnmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("workload: bad trace: %v", err)
	}
	if len(t.Requests) == 0 {
		return nil, errors.New("workload: trace has no requests")
	}
	if len(t.Requests) > MaxRequests {
		return nil, fmt.Errorf("workload: trace exceeds %d requests", MaxRequests)
	}
	if t.Closed && t.Clients < 1 {
		return nil, errors.New("workload: closed trace needs a client count")
	}
	prev := 0.0
	for i := range t.Requests {
		r := &t.Requests[i]
		if r.ID != i {
			return nil, fmt.Errorf("workload: request %d carries ID %d", i, r.ID)
		}
		if math.IsNaN(r.Time) || math.IsInf(r.Time, 0) || r.Time < 0 {
			return nil, fmt.Errorf("workload: request %d has invalid time %v", i, r.Time)
		}
		if !t.Closed {
			if r.Time < prev {
				return nil, fmt.Errorf("workload: arrival times decrease at request %d", i)
			}
			prev = r.Time
			if r.Client != 0 {
				return nil, fmt.Errorf("workload: open-loop request %d names client %d", i, r.Client)
			}
		} else if r.Client < 0 || r.Client >= t.Clients {
			return nil, fmt.Errorf("workload: request %d client %d out of range", i, r.Client)
		}
		if !finitePos(r.Work) || !finitePos(r.Intensity) {
			return nil, fmt.Errorf("workload: request %d has invalid kernel (W=%v, I=%v)", i, r.Work, r.Intensity)
		}
	}
	return &t, nil
}

// strictUnmarshal decodes one JSON value rejecting unknown fields and
// trailing garbage.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}
