package workload

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// TestGenerateDeterminism pins the package's core contract: a Spec is a
// complete description of its traffic, so generating twice yields
// byte-identical traces, and a different seed yields a different one.
func TestGenerateDeterminism(t *testing.T) {
	spec := DefaultSpec()
	spec.Requests = 5000
	a, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ab, _ := a.Marshal()
	bb, _ := b.Marshal()
	if !bytes.Equal(ab, bb) {
		t.Fatal("same spec generated different traces")
	}
	spec.Seed++
	c, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cb, _ := c.Marshal()
	if bytes.Equal(ab, cb) {
		t.Fatal("different seeds generated identical traces")
	}
}

// TestPoissonArrivals checks open-loop stream invariants and that the
// empirical rate matches the spec.
func TestPoissonArrivals(t *testing.T) {
	spec := DefaultSpec()
	spec.Requests = 20000
	spec.Rate = 100
	tr, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	prev := 0.0
	for i, r := range tr.Requests {
		if r.Time < prev {
			t.Fatalf("arrival %d decreases: %v < %v", i, r.Time, prev)
		}
		prev = r.Time
		if r.Client != 0 {
			t.Fatalf("open-loop request %d names client %d", i, r.Client)
		}
	}
	last := tr.Requests[len(tr.Requests)-1].Time
	want := float64(spec.Requests) / spec.Rate
	if math.Abs(last-want) > 0.05*want {
		t.Fatalf("empirical duration %.2fs, want ~%.2fs", last, want)
	}
}

// TestMMPPArrivals checks the bursty process keeps the open-loop
// invariants and actually modulates: the burst state must compress
// inter-arrivals relative to the calm rate.
func TestMMPPArrivals(t *testing.T) {
	spec := DefaultSpec()
	spec.Kind = MMPP
	spec.Requests = 30000
	spec.Rate = 50
	spec.BurstRate = 1000
	spec.CalmDwell = 5
	spec.BurstDwell = 1
	tr, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	prev, minGap := 0.0, math.Inf(1)
	for i, r := range tr.Requests {
		if r.Time < prev {
			t.Fatalf("arrival %d decreases", i)
		}
		if gap := r.Time - prev; i > 0 && gap < minGap {
			minGap = gap
		}
		prev = r.Time
	}
	// At 1000 rps bursts the tightest gap should be far below the calm
	// mean of 20ms; a pure 50 rps process would essentially never get
	// 30k samples with a sub-0.1ms minimum gap alongside this makespan.
	if minGap > 1.0/spec.Rate {
		t.Fatalf("min inter-arrival %.4fs shows no burst modulation", minGap)
	}
}

// TestClosedLoop checks think-time semantics: clients cycle round-robin,
// delays are non-negative, and the empirical mean matches the spec.
func TestClosedLoop(t *testing.T) {
	spec := DefaultSpec()
	spec.Kind = Closed
	spec.Clients = 16
	spec.ThinkSeconds = 0.5
	spec.Requests = 20000
	tr, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !tr.Closed || tr.Clients != 16 {
		t.Fatalf("trace metadata: Closed=%v Clients=%d", tr.Closed, tr.Clients)
	}
	sum := 0.0
	for i, r := range tr.Requests {
		if r.Client != i%spec.Clients {
			t.Fatalf("request %d on client %d, want %d", i, r.Client, i%spec.Clients)
		}
		if r.Time < 0 {
			t.Fatalf("request %d has negative think %v", i, r.Time)
		}
		sum += r.Time
	}
	mean := sum / float64(spec.Requests)
	if math.Abs(mean-spec.ThinkSeconds) > 0.05*spec.ThinkSeconds {
		t.Fatalf("mean think %.4fs, want ~%.2fs", mean, spec.ThinkSeconds)
	}
}

// TestKeyKernelBinding pins content addressing: equal keys always carry
// equal kernels, and Zipf skew actually produces duplicate keys for the
// caches to exploit.
func TestKeyKernelBinding(t *testing.T) {
	spec := DefaultSpec()
	spec.Requests = 10000
	spec.Keys = 500
	spec.ZipfS = 1.2
	tr, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	type kernel struct{ w, i float64 }
	seen := map[uint64]kernel{}
	dups := 0
	for _, r := range tr.Requests {
		if !finitePos(r.Work) || !finitePos(r.Intensity) {
			t.Fatalf("invalid kernel W=%v I=%v", r.Work, r.Intensity)
		}
		if r.Intensity < spec.LoIntensity/1.0001 || r.Intensity > spec.HiIntensity*1.0001 {
			t.Fatalf("intensity %v outside [%v, %v]", r.Intensity, spec.LoIntensity, spec.HiIntensity)
		}
		if k, ok := seen[r.Key]; ok {
			dups++
			if k.w != r.Work || k.i != r.Intensity {
				t.Fatalf("key %#x bound to two kernels", r.Key)
			}
		} else {
			seen[r.Key] = kernel{r.Work, r.Intensity}
		}
	}
	if dups == 0 {
		t.Fatal("Zipf traffic produced zero duplicate keys")
	}
	if len(seen) > spec.Keys {
		t.Fatalf("saw %d distinct keys from a %d-key universe", len(seen), spec.Keys)
	}
}

// TestTraceRoundTrip pins the replay format: ParseTrace(Marshal(t))
// reproduces the trace exactly, and re-marshalling is byte-stable.
func TestTraceRoundTrip(t *testing.T) {
	for _, kind := range []string{Poisson, MMPP, Closed} {
		spec := DefaultSpec()
		spec.Kind = kind
		spec.Requests = 2000
		if kind == MMPP {
			spec.BurstRate = 800
			spec.CalmDwell = 3
			spec.BurstDwell = 0.5
		}
		if kind == Closed {
			spec.Clients = 8
			spec.ThinkSeconds = 0.2
		}
		tr, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: Generate: %v", kind, err)
		}
		data, err := tr.Marshal()
		if err != nil {
			t.Fatalf("%s: Marshal: %v", kind, err)
		}
		back, err := ParseTrace(data)
		if err != nil {
			t.Fatalf("%s: ParseTrace: %v", kind, err)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatalf("%s: round trip changed the trace", kind)
		}
		again, err := back.Marshal()
		if err != nil {
			t.Fatalf("%s: re-Marshal: %v", kind, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("%s: re-marshal not byte-stable", kind)
		}
	}
}

// TestValidateRejects walks the rejection table.
func TestValidateRejects(t *testing.T) {
	base := DefaultSpec()
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"unknown kind", func(s *Spec) { s.Kind = "storm" }},
		{"zero rate", func(s *Spec) { s.Rate = 0 }},
		{"nan rate", func(s *Spec) { s.Rate = math.NaN() }},
		{"inf rate", func(s *Spec) { s.Rate = math.Inf(1) }},
		{"negative rate", func(s *Spec) { s.Rate = -5 }},
		{"zero requests", func(s *Spec) { s.Requests = 0 }},
		{"huge requests", func(s *Spec) { s.Requests = MaxRequests + 1 }},
		{"zero keys", func(s *Spec) { s.Keys = 0 }},
		{"huge keys", func(s *Spec) { s.Keys = MaxKeys + 1 }},
		{"negative zipf", func(s *Spec) { s.ZipfS = -1 }},
		{"nan zipf", func(s *Spec) { s.ZipfS = math.NaN() }},
		{"zero work", func(s *Spec) { s.WorkFlops = 0 }},
		{"inverted intensity", func(s *Spec) { s.LoIntensity, s.HiIntensity = 8, 0.5 }},
		{"mmpp no burst", func(s *Spec) { s.Kind = MMPP; s.BurstRate = 0 }},
		{"mmpp nan dwell", func(s *Spec) {
			s.Kind = MMPP
			s.BurstRate = 500
			s.CalmDwell = math.NaN()
			s.BurstDwell = 1
		}},
		{"closed no clients", func(s *Spec) { s.Kind = Closed; s.Clients = 0 }},
		{"closed too many clients", func(s *Spec) { s.Kind = Closed; s.Clients = s.Requests + 1 }},
		{"closed negative think", func(s *Spec) { s.Kind = Closed; s.Clients = 4; s.ThinkSeconds = -1 }},
	}
	for _, tc := range cases {
		s := base
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

// TestParseSpecStrict checks parsing accepts the canonical form and
// rejects unknown fields and trailing bytes.
func TestParseSpecStrict(t *testing.T) {
	good := []byte(`{"kind":"poisson","rate":100,"requests":10,"keys":5,"zipf_s":1.1,"work_flops":1e9,"lo_intensity":0.5,"hi_intensity":8,"seed":7}`)
	if _, err := ParseSpec(good); err != nil {
		t.Fatalf("ParseSpec rejected valid spec: %v", err)
	}
	if _, err := ParseSpec([]byte(`{"kind":"poisson","rate":1,"requests":1,"keys":1,"work_flops":1,"lo_intensity":1,"hi_intensity":1,"seed":0,"bogus":true}`)); err == nil {
		t.Fatal("ParseSpec accepted an unknown field")
	}
	if _, err := ParseSpec(append(append([]byte{}, good...), []byte("garbage")...)); err == nil {
		t.Fatal("ParseSpec accepted trailing garbage")
	}
}

// TestParseTraceRejects checks the stream-invariant validation.
func TestParseTraceRejects(t *testing.T) {
	spec := DefaultSpec()
	spec.Requests = 50
	tr, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	corrupt := func(name string, mut func(*Trace)) {
		cp := *tr
		cp.Requests = append([]Request(nil), tr.Requests...)
		mut(&cp)
		data, err := cp.Marshal()
		if err != nil {
			t.Fatalf("%s: Marshal: %v", name, err)
		}
		if _, err := ParseTrace(data); err == nil {
			t.Errorf("%s: ParseTrace accepted a corrupt trace", name)
		}
	}
	corrupt("bad id", func(c *Trace) { c.Requests[3].ID = 99 })
	corrupt("decreasing time", func(c *Trace) { c.Requests[10].Time = c.Requests[9].Time - 1 })
	corrupt("negative time", func(c *Trace) { c.Requests[0].Time = -0.5 })
	corrupt("zero work", func(c *Trace) { c.Requests[7].Work = 0 })
	corrupt("client on open loop", func(c *Trace) { c.Requests[5].Client = 2 })
	corrupt("no requests", func(c *Trace) { c.Requests = nil })
	if _, err := ParseTrace([]byte(`{"spec":{},"requests":[]}`)); err == nil {
		t.Fatal("ParseTrace accepted an empty stream")
	}
}
