package workload

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// clampForFuzz bounds a parsed spec's population sizes so a fuzz
// iteration stays fast, then re-validates (clamping can break the
// clients <= requests relation). It returns false when the clamped
// spec is not generatable.
func clampForFuzz(s *Spec) bool {
	const cap = 2048
	if s.Requests > cap {
		s.Requests = cap
	}
	if s.Keys > cap {
		s.Keys = cap
	}
	if s.Clients > s.Requests {
		s.Clients = s.Requests
	}
	return s.Validate() == nil
}

// checkStream asserts the invariants every generated trace must hold:
// finite non-negative times, open-loop arrivals non-decreasing, kernels
// positive and finite, and duplicate keys bound to identical kernels.
func checkStream(t *testing.T, tr *Trace) {
	t.Helper()
	prev := 0.0
	type kernel struct{ w, i float64 }
	seen := map[uint64]kernel{}
	for i, r := range tr.Requests {
		if math.IsNaN(r.Time) || math.IsInf(r.Time, 0) || r.Time < 0 {
			t.Fatalf("request %d has invalid time %v", i, r.Time)
		}
		if !tr.Closed {
			if r.Time < prev {
				t.Fatalf("arrival %d decreases (inter-arrival %v)", i, r.Time-prev)
			}
			prev = r.Time
		}
		if !finitePos(r.Work) || !finitePos(r.Intensity) {
			t.Fatalf("request %d has invalid kernel W=%v I=%v", i, r.Work, r.Intensity)
		}
		if k, ok := seen[r.Key]; ok {
			if k.w != r.Work || k.i != r.Intensity {
				t.Fatalf("key %#x bound to two kernels", r.Key)
			}
		} else {
			seen[r.Key] = kernel{r.Work, r.Intensity}
		}
	}
}

// FuzzWorkloadConfig feeds arbitrary bytes through the strict spec
// parser and, when a spec survives, generates its (clamped) trace and
// asserts the stream invariants — no negative or NaN inter-arrival can
// escape any spec the parser accepts.
func FuzzWorkloadConfig(f *testing.F) {
	def := DefaultSpec()
	for _, s := range []Spec{def,
		{Kind: MMPP, Rate: 50, BurstRate: 900, CalmDwell: 20, BurstDwell: 4,
			Requests: 500, Keys: 64, ZipfS: 1.1, WorkFlops: 1e9,
			LoIntensity: 0.5, HiIntensity: 8, Seed: 7},
		{Kind: Closed, Clients: 16, ThinkSeconds: 0.5, Requests: 400, Keys: 32,
			WorkFlops: 5e8, LoIntensity: 1, HiIntensity: 4, Seed: 99},
	} {
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatalf("seed spec: %v", err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"kind":"poisson","rate":-1,"requests":10,"keys":5,"seed":0}`))
	f.Add([]byte(`{"kind":"mmpp","rate":1e308,"burst_rate":1e308,"requests":1,"keys":1,"seed":0}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		if !clampForFuzz(&spec) {
			return
		}
		tr, err := Generate(spec)
		if err != nil {
			t.Fatalf("validated spec failed to generate: %v", err)
		}
		checkStream(t, tr)
	})
}

// FuzzArrivalStream builds specs from primitive fuzz inputs and pins
// reproducibility both ways: generating twice from the same seed yields
// the identical stream, and a trace replayed through Marshal/ParseTrace
// equals the generated original byte for byte.
func FuzzArrivalStream(f *testing.F) {
	f.Add(int64(42), uint8(0), 100.0, 900.0, 1.0, 1.1, 300, 64, 8)
	f.Add(int64(7), uint8(1), 50.0, 1200.0, 0.25, 0.8, 500, 128, 4)
	f.Add(int64(-3), uint8(2), 10.0, 10.0, 0.5, 0.0, 200, 16, 16)
	f.Add(int64(0), uint8(2), 1.0, 1.0, 0.0, 2.5, 64, 1, 1)
	f.Fuzz(func(t *testing.T, seed int64, kind uint8, rate, burstRate, extra, zipfS float64, requests, keys, clients int) {
		spec := Spec{
			Kind:         []string{Poisson, MMPP, Closed}[int(kind)%3],
			Rate:         rate,
			BurstRate:    burstRate,
			CalmDwell:    extra * 10,
			BurstDwell:   extra,
			Clients:      clients,
			ThinkSeconds: extra,
			Requests:     requests,
			Keys:         keys,
			ZipfS:        zipfS,
			WorkFlops:    1e9,
			LoIntensity:  0.5,
			HiIntensity:  8,
			Seed:         seed,
		}
		if spec.Validate() != nil || !clampForFuzz(&spec) {
			return
		}
		a, err := Generate(spec)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		checkStream(t, a)
		b, err := Generate(spec)
		if err != nil {
			t.Fatalf("re-Generate: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("same spec generated different streams")
		}
		data, err := a.Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		replayed, err := ParseTrace(data)
		if err != nil {
			t.Fatalf("ParseTrace rejected a generated trace: %v", err)
		}
		if !reflect.DeepEqual(a, replayed) {
			t.Fatal("replayed stream differs from generated stream")
		}
		again, err := replayed.Marshal()
		if err != nil {
			t.Fatalf("re-Marshal: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatal("replay round trip not byte-stable")
		}
	})
}
