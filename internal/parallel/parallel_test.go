package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		out, err := Map(context.Background(), 500, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 500 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		counts := make([]atomic.Int32, 300)
		err := ForEach(context.Background(), 300, workers, func(_ context.Context, i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if n := counts[i].Load(); n != 1 {
				t.Errorf("workers=%d: task %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestEmptyAndNegativeTaskCounts(t *testing.T) {
	ran := false
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(context.Background(), -5, 4, func(context.Context, int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("tasks ran for n <= 0")
	}
	out, err := Map(context.Background(), 0, 4, func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("Map on empty input: %v, %v", out, err)
	}
}

func TestNilContextDefaults(t *testing.T) {
	//lint:ignore SA1012 the nil default is part of the contract under test
	var nilCtx context.Context
	if err := ForEach(nilCtx, 10, 4, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := ForEach(context.Background(), 10, 1, func(_ context.Context, i int) error {
		ran = append(ran, i)
		if i == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 5 || ran[4] != 4 {
		t.Errorf("ran = %v, want [0 1 2 3 4]", ran)
	}
}

func TestParallelErrorPropagationAndSkipping(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	err := ForEach(context.Background(), 10_000, 8, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Cancellation must prevent the vast majority of the 10k tasks from
	// ever starting (some in-flight overshoot is inherent).
	if n := started.Load(); n > 5000 {
		t.Errorf("%d tasks started after early error; cancellation not effective", n)
	}
}

func TestLowestIndexedObservedErrorWins(t *testing.T) {
	// Every task fails with an index-tagged error. Sequentially the
	// report must be task 0's error exactly; in parallel it must be one
	// of the injected errors (the lowest-indexed failure that actually
	// ran — which one ran is scheduling-dependent).
	err := ForEach(context.Background(), 100, 1, func(_ context.Context, i int) error {
		return fmt.Errorf("task %03d failed", i)
	})
	if err == nil || !strings.Contains(err.Error(), "task 000") {
		t.Errorf("workers=1: got %v, want task 000's failure", err)
	}
	for _, workers := range []int{2, 8} {
		err := ForEach(context.Background(), 100, workers, func(_ context.Context, i int) error {
			return fmt.Errorf("task %03d failed", i)
		})
		if err == nil || !strings.Contains(err.Error(), "failed") {
			t.Errorf("workers=%d: got %v, want an injected failure", workers, err)
		}
	}
}

func TestPanicBecomesPanicError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 50, workers, func(_ context.Context, i int) error {
			if i == 13 {
				panic("kernel exploded")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 13 || pe.Value != "kernel exploded" {
			t.Errorf("workers=%d: PanicError = {Index: %d, Value: %v}", workers, pe.Index, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "kernel exploded") {
			t.Errorf("workers=%d: panic error lacks stack or message: %v", workers, err)
		}
	}
}

func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 1000, 4, func(ctx context.Context, i int) error {
			started.Add(1)
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()
	// Let a few tasks block, then cancel the sweep out from under them.
	for started.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-done
	close(release)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("all %d tasks started despite cancellation", n)
	}
}

func TestPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	for _, workers := range []int{1, 4} {
		err := ForEach(ctx, 100, workers, func(context.Context, int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran under a cancelled context", ran.Load())
	}
}

// TestStressManyTasksManyWorkers hammers the pool with far more workers
// than tasks and vice versa, plus injected errors and panics on random
// indices, to give the race detector surface area.
func TestStressManyTasksManyWorkers(t *testing.T) {
	for round := 0; round < 20; round++ {
		n := 1 + (round*37)%400
		workers := 1 + (round*13)%32
		failAt := -1
		if round%3 == 0 {
			failAt = (round * 7) % n
		}
		var sum atomic.Int64
		err := ForEach(context.Background(), n, workers, func(_ context.Context, i int) error {
			sum.Add(int64(i))
			switch {
			case i == failAt && round%6 == 0:
				panic("stress panic")
			case i == failAt:
				return errors.New("stress error")
			}
			return nil
		})
		if failAt == -1 {
			if err != nil {
				t.Fatalf("round %d: unexpected error %v", round, err)
			}
			if want := int64(n*(n-1)) / 2; sum.Load() != want {
				t.Fatalf("round %d: sum = %d, want %d", round, sum.Load(), want)
			}
		} else if err == nil {
			t.Fatalf("round %d: injected failure not reported", round)
		}
	}
}

// TestMapDiscardsPartialResultsOnError pins the contract that a failed
// Map returns no results rather than a half-filled slice.
func TestMapDiscardsPartialResultsOnError(t *testing.T) {
	out, err := Map(context.Background(), 100, 4, func(_ context.Context, i int) (int, error) {
		if i == 50 {
			return 0, errors.New("mid-sweep failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	if out != nil {
		t.Errorf("partial results returned: %v", out[:5])
	}
}

func TestBudgetGreedyAcquire(t *testing.T) {
	b := NewBudget(8)
	if b.Cap() != 8 || b.InUse() != 0 {
		t.Fatalf("fresh budget: cap %d, in use %d", b.Cap(), b.InUse())
	}
	got, release, err := b.Acquire(context.Background(), 5)
	if err != nil || got != 5 {
		t.Fatalf("Acquire(5) = %d, %v", got, err)
	}
	if b.InUse() != 5 {
		t.Errorf("in use = %d, want 5", b.InUse())
	}
	// Only 3 tokens remain; a request for 6 gets them all.
	got2, release2, err := b.Acquire(context.Background(), 6)
	if err != nil || got2 != 3 {
		t.Fatalf("Acquire(6) under load = %d, %v, want 3", got2, err)
	}
	release()
	release()
	release2()
	if b.InUse() != 0 {
		t.Errorf("after idempotent releases: in use = %d, want 0", b.InUse())
	}
}

func TestBudgetFullRequestAndCancellation(t *testing.T) {
	b := NewBudget(4)
	// want < 1 claims the whole budget.
	got, release, err := b.Acquire(context.Background(), 0)
	if err != nil || got != 4 {
		t.Fatalf("Acquire(0) = %d, %v, want full budget", got, err)
	}
	// A second caller blocks until cancelled: no token is free.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := b.Acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Acquire on empty budget: err = %v, want deadline exceeded", err)
	}
	release()
	// After release the budget is whole again.
	if got, rel, err := b.Acquire(context.Background(), 4); err != nil || got != 4 {
		t.Errorf("post-release Acquire = %d, %v", got, err)
	} else {
		rel()
	}
}

// TestBudgetConcurrentHolders hammers one budget from many goroutines
// and checks the token invariant: grants are in [1, want] and the
// budget refills exactly.
func TestBudgetConcurrentHolders(t *testing.T) {
	b := NewBudget(6)
	var peak atomic.Int64
	const holders = 64
	done := make(chan struct{}, holders)
	for g := 0; g < holders; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			got, release, err := b.Acquire(context.Background(), 3)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			if got < 1 || got > 3 {
				t.Errorf("granted %d, want 1..3", got)
			}
			if u := int64(b.InUse()); u > peak.Load() {
				peak.Store(u)
			}
			time.Sleep(time.Millisecond)
			release()
		}()
	}
	for g := 0; g < holders; g++ {
		<-done
	}
	if b.InUse() != 0 {
		t.Errorf("tokens leaked: %d still in use", b.InUse())
	}
	if peak.Load() > 6 {
		t.Errorf("budget oversubscribed: peak %d > 6", peak.Load())
	}
}
