// Package parallel is the deterministic execution engine behind every
// sweep in the repository: a bounded worker pool with context
// cancellation, first-error propagation, panic containment, and ordered
// result collection.
//
// The pool makes one promise the measurement pipeline depends on: for a
// task function whose per-index behaviour does not depend on execution
// order (each task derives its own random stream from its index — see
// stats.DeriveSeed), the collected results are identical at any worker
// count. Workers change wall-clock time, never bytes. Running with
// workers = 1 executes tasks in index order on the calling goroutine,
// reproducing a plain loop exactly.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Workers resolves a worker-count request: values below 1 mean "one
// worker per available CPU" (GOMAXPROCS), anything else is returned
// unchanged. Flags pass their value straight through this so 0 can be
// the documented "use all cores" default.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError wraps a panic recovered from a pool task so that one
// misbehaving task fails the batch like an error instead of killing the
// process with goroutine stacks from unrelated workers.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (Workers semantics: < 1 means GOMAXPROCS) and waits for
// completion. The first failure — lowest task index among the errors
// actually observed — cancels the context handed to the remaining
// tasks, and tasks not yet started are skipped. A task panic is
// recovered into a *PanicError and treated as a failure. With
// workers = 1 tasks run in index order on the calling goroutine and
// execution stops at the first error, exactly like a hand-written loop.
//
// When ctx carries a trace.Tracer, every task is wrapped in a
// "parallel.task" span whose duration is the task's run time and whose
// queue_wait_us tag is the time the task spent waiting for a worker
// (measured from batch submission) — the queue-wait versus run-time
// attribution the observability runbook builds on. Without a tracer
// the wrapping costs one context lookup for the whole batch.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if tr := trace.FromContext(ctx); tr != nil {
		submit := tr.Now()
		inner := fn
		fn = func(ctx context.Context, i int) error {
			wait := tr.Now() - submit
			ctx, sp := trace.Start(ctx, "parallel.task")
			sp.Tag("index", i).Tag("queue_wait_us", wait.Microseconds())
			defer sp.End()
			return inner(ctx, i)
		}
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(ctx, i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				if err := runTask(cctx, i, fn); err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return ctx.Err()
}

// runTask invokes one task with panic containment.
func runTask(ctx context.Context, i int, fn func(context.Context, int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Index: i, Value: r, Stack: buf}
		}
	}()
	return fn(ctx, i)
}

// Budget is a global worker budget shared by independent callers of the
// pool: a counting semaphore over worker tokens. A long-lived service
// that fans out one RunParallel per request uses a Budget so that N
// concurrent requests share one machine-wide worker count instead of
// oversubscribing N×GOMAXPROCS goroutines.
//
// Acquire hands out between 1 and the requested number of tokens, so a
// caller always makes progress even under full load; because the
// pipeline's outputs are worker-count invariant (see the package
// comment), a smaller grant changes latency, never bytes.
type Budget struct {
	capacity int
	tokens   chan struct{}
}

// NewBudget returns a budget of n worker tokens. n follows Workers
// semantics: values below 1 mean one token per available CPU.
func NewBudget(n int) *Budget {
	n = Workers(n)
	b := &Budget{capacity: n, tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Cap returns the budget's total token count.
func (b *Budget) Cap() int { return b.capacity }

// InUse returns the number of tokens currently held by callers.
func (b *Budget) InUse() int { return b.capacity - len(b.tokens) }

// Acquire blocks until at least one worker token is free (or ctx is
// done), then greedily claims up to want tokens without further
// blocking. want < 1 or want > Cap() requests the full budget. It
// returns the number of tokens granted (>= 1) and a release function
// that must be called exactly once when the work is finished; calling
// it more than once is a no-op.
func (b *Budget) Acquire(ctx context.Context, want int) (int, func(), error) {
	if want < 1 || want > b.capacity {
		want = b.capacity
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	case <-b.tokens:
	}
	granted := 1
	for granted < want {
		select {
		case <-b.tokens:
			granted++
		default:
			want = granted // budget exhausted; take what we have
		}
	}
	var once sync.Once
	release := func() {
		once.Do(func() {
			for i := 0; i < granted; i++ {
				b.tokens <- struct{}{}
			}
		})
	}
	return granted, release, nil
}

// Map runs fn for every index in [0, n) under ForEach's scheduling
// rules and collects the results in index order, so the output slice is
// independent of worker count and interleaving. On error the partial
// results are discarded and the first failure is returned.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
