package microbench

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// autoTuneEveryVisit is the pre-memoization search, preserved verbatim:
// every grid cell and every hill-climb proposal is probed, even when
// the tuning was already scored.
func autoTuneEveryVisit(eng *sim.Engine, prec machine.Precision) (sim.Tuning, float64, error) {
	best := sim.Tuning{Threads: 256, BlockSize: 64, Unroll: 4, RequestsPerThread: 2}
	bestScore, err := probeScore(eng, prec, best)
	if err != nil {
		return sim.Tuning{}, 0, err
	}
	for _, th := range []int{64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		for _, bs := range []int{32, 64, 128, 256, 512} {
			t := sim.Tuning{Threads: th, BlockSize: bs, Unroll: best.Unroll, RequestsPerThread: best.RequestsPerThread}
			s, err := probeScore(eng, prec, t)
			if err != nil {
				return sim.Tuning{}, 0, err
			}
			if s > bestScore {
				best, bestScore = t, s
			}
		}
	}
	improved := true
	for iter := 0; improved && iter < 16; iter++ {
		improved = false
		for _, cand := range neighbours(best) {
			s, err := probeScore(eng, prec, cand)
			if err != nil {
				return sim.Tuning{}, 0, err
			}
			if s > bestScore*(1+1e-9) {
				best, bestScore = cand, s
				improved = true
			}
		}
	}
	return best, eng.TuningQuality(best), nil
}

// TestAutoTuneMemoEquivalence pins the memoization satellite: for every
// catalog machine and several seeds, the memoized AutoTune picks the
// same tuning with the same quality as the probe-every-visit search.
// (Skipped re-probes do shift the engine's shared noise stream for
// later probes, so this equivalence is empirical — which is exactly why
// it is pinned here and by the campaign goldens.)
func TestAutoTuneMemoEquivalence(t *testing.T) {
	for name, m := range machine.Catalog() {
		for seed := int64(1); seed <= 4; seed++ {
			e1, err := sim.New(m, sim.DefaultConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			e2, err := sim.New(m, sim.DefaultConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			gotT, gotQ, err := AutoTune(e1, machine.Single)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			wantT, wantQ, err := autoTuneEveryVisit(e2, machine.Single)
			if err != nil {
				t.Fatalf("%s seed %d: reference: %v", name, seed, err)
			}
			if gotT != wantT || gotQ != wantQ {
				t.Errorf("%s seed %d: memoized AutoTune = (%+v, %v), every-visit = (%+v, %v)",
					name, seed, gotT, gotQ, wantT, wantQ)
			}
		}
	}
}
