package microbench

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestPolynomialCounts(t *testing.T) {
	p, err := GeneratePolynomial(10, 1000, machine.Single)
	if err != nil {
		t.Fatal(err)
	}
	w, q := p.Counts()
	if w != 2*10*1000 {
		t.Errorf("W = %v, want 20000", w)
	}
	if q != 4*1000 {
		t.Errorf("Q = %v, want 4000", q)
	}
	// I = 2d/wordsize = 20/4 = 5 flop/byte.
	if got := p.Intensity(); math.Abs(got-5) > 1e-12 {
		t.Errorf("intensity = %v, want 5", got)
	}
	// Double precision halves the intensity.
	pd, _ := GeneratePolynomial(10, 1000, machine.Double)
	if got := pd.Intensity(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("double intensity = %v, want 2.5", got)
	}
}

func TestPolynomialDegreeForRoundTrip(t *testing.T) {
	for _, prec := range []machine.Precision{machine.Single, machine.Double} {
		for _, target := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
			d := PolynomialDegreeFor(target, prec)
			p, err := GeneratePolynomial(d, 10, prec)
			if err != nil {
				t.Fatal(err)
			}
			got := p.Intensity()
			// Degree granularity bounds the error to half a step.
			step := 2.0 / float64(prec.WordSize())
			if math.Abs(got-target) > step/2+1e-12 {
				t.Errorf("%v target %v: degree %d gives %v", prec, target, d, got)
			}
		}
	}
	if PolynomialDegreeFor(0.001, machine.Single) != 1 {
		t.Error("degree must floor at 1")
	}
}

func TestFMAMixCounts(t *testing.T) {
	p, err := GenerateFMAMix(8, 2, 100, machine.Single)
	if err != nil {
		t.Fatal(err)
	}
	w, q := p.Counts()
	if w != 2*8*100 || q != 2*4*100 {
		t.Errorf("W, Q = %v, %v", w, q)
	}
	// I = 2·8/(2·4) = 2.
	if got := p.Intensity(); math.Abs(got-2) > 1e-12 {
		t.Errorf("intensity = %v, want 2", got)
	}
	// Loads are interleaved, not clumped: the first op is a load and
	// FMAs appear between loads.
	if p.Body[0] != OpLoad {
		t.Error("body must start with a load")
	}
	var nl, nf int
	for _, op := range p.Body {
		switch op {
		case OpLoad:
			nl++
		case OpFMA:
			nf++
		}
	}
	if nl != 2 || nf != 8 {
		t.Errorf("body has %d loads, %d fmas", nl, nf)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := GeneratePolynomial(0, 10, machine.Single); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := GeneratePolynomial(1, 0, machine.Single); err == nil {
		t.Error("0 elements accepted")
	}
	if _, err := GenerateFMAMix(0, 1, 1, machine.Single); err == nil {
		t.Error("0 fmas accepted")
	}
	if _, err := GenerateFMAMix(1, 0, 1, machine.Single); err == nil {
		t.Error("0 loads accepted")
	}
	if _, err := GenerateFMAMix(1, 1, 0, machine.Single); err == nil {
		t.Error("0 elements accepted")
	}
}

func TestMixForTargets(t *testing.T) {
	for _, prec := range []machine.Precision{machine.Single, machine.Double} {
		ws := float64(prec.WordSize())
		for _, target := range []float64{1.0 / 16, 1.0 / 4, 0.5, 1, 2, 8, 64} {
			fmas, loads := MixFor(target, prec)
			got := 2 * float64(fmas) / (float64(loads) * ws)
			// Rounding to integer op counts bounds the relative error.
			if got < target/2 || got > target*2 {
				t.Errorf("%v target %v: mix (%d,%d) gives %v", prec, target, fmas, loads, got)
			}
		}
	}
}

func TestExecuteMatchesReferencePolynomial(t *testing.T) {
	// The paper verifies its tuned GPU kernel against an equivalent CPU
	// kernel; here the interpreted instruction stream must match the
	// direct Horner evaluation.
	const degree = 7
	const c = 0.5
	p, err := GeneratePolynomial(degree, 5, machine.Double)
	if err != nil {
		t.Fatal(err)
	}
	input := []float64{1, -2, 3.5, 0.25, 10}
	out, err := p.Execute(input, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d outputs", len(out))
	}
	for i, x := range input {
		want := ReferencePolynomial(x, c, degree)
		if math.Abs(out[i]-want) > 1e-12*math.Abs(want) {
			t.Errorf("element %d: %v, want %v", i, out[i], want)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	p, _ := GeneratePolynomial(2, 3, machine.Single)
	if _, err := p.Execute(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	bad := Program{Body: []Op{OpLoad}, Elements: 0}
	if _, err := bad.Execute([]float64{1}, 1); err == nil {
		t.Error("0 elements accepted")
	}
}

func TestExecuteWithExplicitStore(t *testing.T) {
	p := Program{
		Body:      []Op{OpLoad, OpFMA, OpStore},
		Elements:  2,
		Precision: machine.Single,
	}
	out, err := p.Execute([]float64{3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// acc = 0*2 + x = x.
	if out[0] != 3 || out[1] != 4 {
		t.Errorf("out = %v", out)
	}
	// Store contributes to Q.
	_, q := p.Counts()
	if q != 2*2*4 {
		t.Errorf("Q with store = %v, want 16", q)
	}
}

func TestOpString(t *testing.T) {
	if OpLoad.String() != "load" || OpFMA.String() != "fma" || OpStore.String() != "store" {
		t.Error("op strings")
	}
	if Op(9).String() != "Op(9)" {
		t.Error("unknown op string")
	}
}

func TestZeroTrafficProgramIntensity(t *testing.T) {
	p := Program{Body: []Op{OpFMA}, Elements: 1, Precision: machine.Single}
	if !math.IsInf(p.Intensity(), 1) {
		t.Error("flops-only program should have infinite intensity")
	}
}

func TestPropMixIntensityPositive(t *testing.T) {
	f := func(raw float64, dp bool) bool {
		target := math.Exp2(math.Mod(raw, 10)) // 2^-10 .. 2^10
		prec := machine.Single
		if dp {
			prec = machine.Double
		}
		fmas, loads := MixFor(target, prec)
		if fmas < 1 || loads < 1 {
			return false
		}
		p, err := GenerateFMAMix(fmas, loads, 3, prec)
		if err != nil {
			return false
		}
		w, q := p.Counts()
		return w > 0 && q > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDisassemble(t *testing.T) {
	p, err := GeneratePolynomial(64, 100, machine.Single)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Disassemble()
	for _, want := range []string{"100 elements (single)", "load", "fma×64", "I=32"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q: %s", want, d)
		}
	}
	if (Program{}).Disassemble() != "(empty)" {
		t.Error("empty program disassembly")
	}
	// Interleaved mixes run-length encode per run.
	m, err := GenerateFMAMix(4, 2, 10, machine.Double)
	if err != nil {
		t.Fatal(err)
	}
	dm := m.Disassemble()
	if !strings.Contains(dm, "load") || !strings.Contains(dm, "fma") {
		t.Errorf("mix disassembly wrong: %s", dm)
	}
}
