package microbench

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/powermon"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// AutoTune searches the launch-parameter space for the tuning that
// maximises measured throughput of a compute-bound probe kernel — the
// paper's "auto-tuned ... by tuning kernel parameters such as number of
// threads, thread block size, and number of memory requests per
// thread". A coarse power-of-two grid search is followed by coordinate
// hill climbing. Returns the best tuning found and its quality.
//
// Each distinct tuning is probed at most once per call: the grid
// revisits the seed point and the hill climb re-proposes neighbours it
// has already scored (every climb ends with a full ring of re-proposals
// that shows no improvement), so scores are memoized per tuning.
// TestAutoTuneMemoEquivalence pins that the chosen tuning and quality
// are identical to the probe-every-visit search.
func AutoTune(eng *sim.Engine, prec machine.Precision) (sim.Tuning, float64, error) {
	scores := make(map[sim.Tuning]float64, 64)
	var fresh []sim.Tuning
	var specs []sim.KernelSpec
	var runs []sim.Run
	// batchScore probes every distinct not-yet-scored tuning in cands —
	// in first-visit order, two probe kernels each — with one RunBatch
	// call, and memoizes the scores. The engine's sequential noise
	// stream sees exactly the draws one-at-a-time probeScore calls would
	// make for the same fresh tunings, so the memo contents are
	// bit-identical to sequential probing.
	batchScore := func(cands []sim.Tuning) error {
		fresh = fresh[:0]
	next:
		for _, c := range cands {
			if _, ok := scores[c]; ok {
				continue
			}
			for _, f := range fresh {
				if f == c {
					continue next
				}
			}
			fresh = append(fresh, c)
		}
		if len(fresh) == 0 {
			return nil
		}
		specs = specs[:0]
		for _, c := range fresh {
			compute, memory := probeSpecs(prec, c)
			specs = append(specs, compute, memory)
		}
		if cap(runs) < len(specs) {
			runs = make([]sim.Run, len(specs))
		}
		runs = runs[:len(specs)]
		if err := eng.RunBatch(nil, specs, runs); err != nil {
			return err
		}
		for i, c := range fresh {
			fl := specs[2*i].W / float64(runs[2*i].Duration)
			bw := specs[2*i+1].Q / float64(runs[2*i+1].Duration)
			scores[c] = math.Sqrt(fl * bw)
		}
		return nil
	}
	score := func(t sim.Tuning) (float64, error) {
		if s, ok := scores[t]; ok {
			return s, nil
		}
		s, err := probeScore(eng, prec, t)
		if err != nil {
			return 0, err
		}
		scores[t] = s
		return s, nil
	}

	// Coarse grid over powers of two, opened by the seed point. Every
	// grid candidate carries the seed's Unroll and RequestsPerThread
	// (those knobs only move in the hill climb), so the whole candidate
	// list is known up front and probed as one batch.
	seed := sim.Tuning{Threads: 256, BlockSize: 64, Unroll: 4, RequestsPerThread: 2}
	grid := make([]sim.Tuning, 0, 1+8*5)
	grid = append(grid, seed)
	for _, th := range []int{64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		for _, bs := range []int{32, 64, 128, 256, 512} {
			grid = append(grid, sim.Tuning{Threads: th, BlockSize: bs, Unroll: seed.Unroll, RequestsPerThread: seed.RequestsPerThread})
		}
	}
	if err := batchScore(grid); err != nil {
		return sim.Tuning{}, 0, err
	}
	best := seed
	bestScore, err := score(best)
	if err != nil {
		return sim.Tuning{}, 0, err
	}
	for _, t := range grid[1:] {
		s, err := score(t)
		if err != nil {
			return sim.Tuning{}, 0, err
		}
		if s > bestScore {
			best, bestScore = t, s
		}
	}
	// Coordinate descent on the remaining knobs (and refinement of all):
	// each iteration's neighbour ring is known before the scan, so its
	// fresh members are probed as one batch per iteration.
	improved := true
	for iter := 0; improved && iter < 16; iter++ {
		improved = false
		ring := neighbours(best)
		if err := batchScore(ring); err != nil {
			return sim.Tuning{}, 0, err
		}
		for _, cand := range ring {
			s, err := score(cand)
			if err != nil {
				return sim.Tuning{}, 0, err
			}
			if s > bestScore*(1+1e-9) {
				best, bestScore = cand, s
				improved = true
			}
		}
	}
	return best, eng.TuningQuality(best), nil
}

func neighbours(t sim.Tuning) []sim.Tuning {
	var out []sim.Tuning
	mul := func(v, f int) int {
		if v*f < 1 {
			return 1
		}
		return v * f
	}
	div := func(v, f int) int {
		if v/f < 1 {
			return 1
		}
		return v / f
	}
	for _, d := range []struct{ f func(int, int) int }{{mul}, {div}} {
		c := t
		c.Threads = d.f(t.Threads, 2)
		out = append(out, c)
		c = t
		c.BlockSize = d.f(t.BlockSize, 2)
		out = append(out, c)
		c = t
		c.Unroll = d.f(t.Unroll, 2)
		out = append(out, c)
		c = t
		c.RequestsPerThread = d.f(t.RequestsPerThread, 2)
		out = append(out, c)
	}
	return out
}

// probeSpecs returns the two probe kernels a tuning is scored with: one
// compute-bound, one memory-bound. Two probes keep the search landscape
// informative even when one regime is power-throttled: a throttled
// probe's duration stops responding to tuning quality, but the other
// probe's duration still does.
func probeSpecs(prec machine.Precision, t sim.Tuning) (compute, memory sim.KernelSpec) {
	compute = sim.KernelSpec{W: 1e9, Q: 1e5, Precision: prec, Tuning: t}
	memory = sim.KernelSpec{W: 1e4, Q: 1e9, Precision: prec, Tuning: t}
	return compute, memory
}

// probeScore measures a tuning's two probes as one batch on the
// engine's sequential stream and combines their throughputs
// geometrically.
func probeScore(eng *sim.Engine, prec machine.Precision, t sim.Tuning) (float64, error) {
	var specs [2]sim.KernelSpec
	specs[0], specs[1] = probeSpecs(prec, t)
	var runs [2]sim.Run
	if err := eng.RunBatch(nil, specs[:], runs[:]); err != nil {
		return 0, err
	}
	fl := specs[0].W / float64(runs[0].Duration)
	bw := specs[1].Q / float64(runs[1].Duration)
	return math.Sqrt(fl * bw), nil
}

// Point is one measured intensity point: the paper's (W, Q, T, R)
// tuple plus its measured energy and power.
type Point struct {
	// Intensity is the kernel's W/Q in flop per byte.
	Intensity float64
	// W and Q are the executed flops and bytes.
	W, Q float64
	// Precision is the paper's R regressor (0 single, 1 double).
	Precision machine.Precision
	// Time is the per-run mean wall time over the repetitions.
	Time units.Seconds
	// Energy is the per-run mean energy.
	Energy units.Joules
	// Power is Energy/Time.
	Power units.Watts
	// Throttled reports whether any repetition hit the power cap.
	Throttled bool
	// Reps is the number of repetitions aggregated.
	Reps int
}

// SweepConfig controls a microbenchmark sweep.
type SweepConfig struct {
	// Intensities are the flop:byte targets, e.g. core.LogGrid(0.25, 16, 13).
	Intensities []float64
	// VolumeBytes is the per-run DRAM traffic (default 1 GiB).
	VolumeBytes float64
	// Reps is runs per point (the paper uses 100; default 100).
	Reps int
	// Tuning are the launch parameters (defaults to AutoTune's result
	// if zero and UseAutoTune is set, else the engine optimum shape).
	Tuning sim.Tuning
	// Monitor, if non-nil, measures energy via the sampled power trace
	// (the full §IV-A pipeline). If nil, the run's direct observables
	// are used.
	Monitor *powermon.Monitor
	// KeepReps, when set, emits one Point per repetition instead of one
	// aggregated Point per intensity. The paper's regression uses every
	// individual run as an observation (100 per configuration), which
	// is what drives its p-values below 1e-14.
	KeepReps bool
	// Workers bounds how many (intensity, rep) measurements run
	// concurrently: < 1 means one worker per CPU (GOMAXPROCS), 1 runs
	// the sweep inline. Every repetition draws simulator and monitor
	// noise from a stream derived from (engine seed, precision, grid
	// index, rep), so the returned points are byte-identical at any
	// worker count.
	Workers int
}

// Derivation stream tags: the namespaces keeping a sweep's kernel noise
// and its monitor noise on disjoint derived streams (see
// stats.DeriveSeed).
const (
	// sweepStream namespaces the per-repetition simulator noise.
	sweepStream uint64 = 0x53574550 // "SWEP"
	// monitorStream namespaces the per-repetition power-monitor noise.
	monitorStream uint64 = 0x504d4f4e // "PMON"
)

// repMeasurement is one repetition's contribution to a sweep point.
type repMeasurement struct {
	t, e      float64
	throttled bool
}

// Sweep runs the microbenchmark at each intensity for one precision.
// Kernels are generated as explicit instruction streams (GPU-style
// FMA/load mix), so the W and Q handed to the simulator are the counted
// ops of a real program body, not free parameters.
//
// Repetitions execute on a bounded worker pool (cfg.Workers). Each
// (grid index, rep) task derives its own simulator — and, when a
// monitor is configured, monitor — noise stream from the engine seed,
// so the emitted points do not depend on worker count or scheduling:
// the parallel sweep is byte-identical to the workers = 1 sweep.
//
// ctx cancels the sweep between kernel executions and carries the
// optional trace.Tracer: when tracing is enabled the sweep records a
// "microbench.sweep" span plus one "sweep.rep" span per (grid index,
// repetition) task, with "sim.run" and "powermon.integrate" child
// phases. Tracing reads only the clock — the emitted points are
// byte-identical with tracing on, off, or absent.
func Sweep(ctx context.Context, eng *sim.Engine, prec machine.Precision, cfg SweepConfig) ([]Point, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(cfg.Intensities) == 0 {
		return nil, errors.New("microbench: no intensities")
	}
	if cfg.VolumeBytes == 0 {
		cfg.VolumeBytes = 1 << 30
	}
	if cfg.VolumeBytes <= 0 {
		return nil, errors.New("microbench: volume must be positive")
	}
	if cfg.Reps == 0 {
		cfg.Reps = 100
	}
	if cfg.Reps < 1 {
		return nil, errors.New("microbench: reps must be >= 1")
	}

	// Generate every kernel up front, sequentially: program generation
	// is cheap, deterministic, and shared by all of a grid point's reps.
	type gridKernel struct {
		w, q float64
		spec sim.KernelSpec
	}
	grid := make([]gridKernel, len(cfg.Intensities))
	for gi, target := range cfg.Intensities {
		if target <= 0 {
			return nil, fmt.Errorf("microbench: non-positive intensity %g", target)
		}
		fmas, loads := MixFor(target, prec)
		elems := int(cfg.VolumeBytes / float64(loads*prec.WordSize()))
		if elems < 1 {
			elems = 1
		}
		prog, err := GenerateFMAMix(fmas, loads, elems, prec)
		if err != nil {
			return nil, err
		}
		w, q := prog.Counts()
		grid[gi] = gridKernel{w: w, q: q, spec: sim.KernelSpec{W: w, Q: q, Precision: prec, Tuning: cfg.Tuning}}
	}

	ctx, sweepSpan := trace.Start(ctx, "microbench.sweep")
	sweepSpan.Tag("precision", prec.String()).
		Tag("points", len(grid)).
		Tag("reps", cfg.Reps)
	defer sweepSpan.End()

	// One task per (grid point, repetition); results land at their task
	// index, so collection order is independent of execution order.
	reps, err := parallel.Map(ctx, len(grid)*cfg.Reps, cfg.Workers,
		func(ctx context.Context, ti int) (repMeasurement, error) {
			gi, rep := ti/cfg.Reps, ti%cfg.Reps
			ctx, repSpan := trace.Start(ctx, "sweep.rep")
			repSpan.Tag("precision", prec.String()).Tag("grid", gi).Tag("rep", rep)
			defer repSpan.End()
			labels := []uint64{0, uint64(prec), uint64(gi), uint64(rep)}
			labels[0] = sweepStream
			// Borrow the per-rep simulator stream from the pool: the seed
			// (and so the stream) is exactly eng.DeriveRand(labels...)'s,
			// without allocating a fresh ~5 KB rand state per repetition.
			rng := stats.BorrowDerived(eng.Seed(), labels...)
			r, err := eng.RunWithCtx(ctx, rng, grid[gi].spec)
			rng.Release()
			if err != nil {
				return repMeasurement{}, err
			}
			m := repMeasurement{t: float64(r.Duration), e: float64(r.Energy), throttled: r.Throttled}
			if cfg.Monitor != nil {
				labels[0] = monitorStream
				_, monSpan := trace.Start(ctx, "powermon.integrate")
				// EnergyDerived is bit-identical to
				// Fork(labels...).Measure(r, r.Duration).Energy() but
				// integrates on the fly instead of materialising a trace.
				e, err := cfg.Monitor.EnergyDerived(labels, r, r.Duration)
				monSpan.End()
				if err != nil {
					return repMeasurement{}, err
				}
				m.e = float64(e)
			}
			return m, nil
		})
	if err != nil {
		return nil, err
	}

	points := make([]Point, 0, len(grid))
	for gi, g := range grid {
		var sumT, sumE float64
		throttled := false
		for rep := 0; rep < cfg.Reps; rep++ {
			m := reps[gi*cfg.Reps+rep]
			throttled = throttled || m.throttled
			if cfg.KeepReps {
				points = append(points, Point{
					Intensity: g.w / g.q,
					W:         g.w,
					Q:         g.q,
					Precision: prec,
					Time:      units.Seconds(m.t),
					Energy:    units.Joules(m.e),
					Power:     units.Watts(m.e / m.t),
					Throttled: m.throttled,
					Reps:      1,
				})
			}
			sumT += m.t
			sumE += m.e
		}
		if cfg.KeepReps {
			continue
		}
		n := float64(cfg.Reps)
		points = append(points, Point{
			Intensity: g.w / g.q,
			W:         g.w,
			Q:         g.q,
			Precision: prec,
			Time:      units.Seconds(sumT / n),
			Energy:    units.Joules(sumE / n),
			Power:     units.Watts(sumE / sumT),
			Throttled: throttled,
			Reps:      cfg.Reps,
		})
	}
	return points, nil
}

// Coefficients are the fitted energy parameters of eq. (9) / Table IV.
type Coefficients struct {
	// EpsSingle is ε_s, energy per single-precision flop (J).
	EpsSingle float64
	// EpsDouble is ε_d = ε_s + Δε_d (J).
	EpsDouble float64
	// EpsMem is ε_mem, energy per byte (J).
	EpsMem float64
	// Pi0 is the constant power (W).
	Pi0 float64
	// R2 is the regression's coefficient of determination.
	R2 float64
	// MaxPValue is the largest coefficient p-value (the paper reports
	// all below 1e-14).
	MaxPValue float64
}

// FitEq9 estimates the Table IV coefficients from measured points of
// both precisions using the paper's regression
//
//	E/W = ε_s + ε_mem·(Q/W) + π0·(T/W) + Δε_d·R.
//
// Points from both precisions must be present, otherwise Δε_d is not
// identifiable.
func FitEq9(points []Point) (*Coefficients, *regress.Result, error) {
	if len(points) < 5 {
		return nil, nil, errors.New("microbench: need at least 5 points to fit eq. 9")
	}
	var haveS, haveD bool
	X := make([][]float64, 0, len(points))
	y := make([]float64, 0, len(points))
	// One flat block backs every design-matrix row: the capacity is
	// exact, so the appends below never reallocate and the row slices
	// stay valid — len(points)+2 allocations become 3.
	cols := make([]float64, 0, 4*len(points))
	for _, p := range points {
		if p.W <= 0 {
			return nil, nil, errors.New("microbench: point with non-positive W")
		}
		r := p.Precision.Indicator()
		if r == 0 {
			haveS = true
		} else {
			haveD = true
		}
		cols = append(cols, 1, p.Q/p.W, float64(p.Time)/p.W, r)
		X = append(X, cols[len(cols)-4:len(cols):len(cols)])
		y = append(y, float64(p.Energy)/p.W)
	}
	if !haveS || !haveD {
		return nil, nil, errors.New("microbench: need points from both precisions")
	}
	res, err := regress.Fit(X, y)
	if err != nil {
		return nil, nil, err
	}
	maxP := 0.0
	for _, pv := range res.PValue {
		maxP = math.Max(maxP, pv)
	}
	return &Coefficients{
		EpsSingle: res.Coef[0],
		EpsDouble: res.Coef[0] + res.Coef[3],
		EpsMem:    res.Coef[1],
		Pi0:       res.Coef[2],
		R2:        res.R2,
		MaxPValue: maxP,
	}, res, nil
}

// RunProgram executes a generated instruction-stream kernel on the
// engine: the program's counted ops become the executed W and Q, so
// what runs is exactly what the stream encodes (the simulation analogue
// of executing the inspected PTX).
func RunProgram(eng *sim.Engine, prog Program, tuning sim.Tuning) (*sim.Run, error) {
	w, q := prog.Counts()
	if w <= 0 && q <= 0 {
		return nil, errors.New("microbench: program performs no work and moves no data")
	}
	return eng.Run(sim.KernelSpec{W: w, Q: q, Precision: prog.Precision, Tuning: tuning})
}

// Peaks reports the best achieved compute and bandwidth rates for one
// precision — the §IV-B "88.3% of system peak"-style numbers. It runs a
// strongly compute-bound and a strongly memory-bound kernel at the
// given tuning.
func Peaks(eng *sim.Engine, prec machine.Precision, tuning sim.Tuning) (gflops, gbytes float64, err error) {
	cb := sim.KernelSpec{W: 1e11, Q: 1e6, Precision: prec, Tuning: tuning}
	r, err := eng.Run(cb)
	if err != nil {
		return 0, 0, err
	}
	gflops = cb.W / float64(r.Duration) / 1e9
	mb := sim.KernelSpec{W: 1e5, Q: 2e10, Precision: prec, Tuning: tuning}
	r, err = eng.Run(mb)
	if err != nil {
		return 0, 0, err
	}
	gbytes = mb.Q / float64(r.Duration) / 1e9
	return gflops, gbytes, nil
}
