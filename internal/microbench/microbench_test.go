package microbench

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/powermon"
	"repro/internal/sim"
	"repro/internal/stats"
)

func engine(t *testing.T, m *machine.Machine, seed int64) *sim.Engine {
	t.Helper()
	e, err := sim.New(m, sim.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAutoTuneFindsOptimum(t *testing.T) {
	for _, m := range []*machine.Machine{machine.GTX580(), machine.CoreI7950()} {
		e := engine(t, m, 17)
		tuning, quality, err := AutoTune(e, machine.Single)
		if err != nil {
			t.Fatal(err)
		}
		if quality < 0.99 {
			t.Errorf("%s: auto-tuned quality %v (tuning %+v, optimum %+v)",
				m.Name, quality, tuning, e.OptimalTuning())
		}
	}
}

func TestSweepProducesRequestedIntensities(t *testing.T) {
	e := engine(t, machine.CoreI7950(), 5)
	grid := core.LogGrid(0.25, 16, 7)
	pts, err := Sweep(context.Background(), e, machine.Double, SweepConfig{
		Intensities: grid,
		VolumeBytes: 1 << 26,
		Reps:        3,
		Tuning:      e.OptimalTuning(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(grid) {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		// Op-count granularity keeps the achieved intensity near target.
		if p.Intensity < grid[i]/2 || p.Intensity > grid[i]*2 {
			t.Errorf("point %d: intensity %v, target %v", i, p.Intensity, grid[i])
		}
		if p.Time <= 0 || p.Energy <= 0 || p.Power <= 0 {
			t.Errorf("point %d: non-positive observables %+v", i, p)
		}
		if p.Reps != 3 {
			t.Errorf("point %d: reps = %d", i, p.Reps)
		}
		if stats.RelErr(float64(p.Power), float64(p.Energy)/float64(p.Time)) > 0.1 {
			t.Errorf("point %d: power inconsistent", i)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	e := engine(t, machine.CoreI7950(), 5)
	if _, err := Sweep(context.Background(), e, machine.Single, SweepConfig{}); err == nil {
		t.Error("no intensities accepted")
	}
	if _, err := Sweep(context.Background(), e, machine.Single, SweepConfig{Intensities: []float64{-1}, Reps: 1}); err == nil {
		t.Error("negative intensity accepted")
	}
	if _, err := Sweep(context.Background(), e, machine.Single, SweepConfig{Intensities: []float64{1}, Reps: -1}); err == nil {
		t.Error("negative reps accepted")
	}
	if _, err := Sweep(context.Background(), e, machine.Single, SweepConfig{Intensities: []float64{1}, VolumeBytes: -1}); err == nil {
		t.Error("negative volume accepted")
	}
}

// The headline integration test: sweep both precisions on the GTX 580,
// fit eq. (9), and recover the Table IV ground truth.
func TestFitEq9RecoversTableIV(t *testing.T) {
	m := machine.GTX580()
	e := engine(t, m, 99)
	tuning := e.OptimalTuning()
	var pts []Point
	for _, prec := range []machine.Precision{machine.Single, machine.Double} {
		grid := core.LogGrid(0.25, 64, 11)
		p, err := Sweep(context.Background(), e, prec, SweepConfig{
			Intensities: grid,
			VolumeBytes: 1 << 28,
			Reps:        25,
			Tuning:      tuning,
		})
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p...)
	}
	coef, res, err := FitEq9(pts)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"ε_s (pJ)", coef.EpsSingle * 1e12, 99.7, 0.06},
		{"ε_d (pJ)", coef.EpsDouble * 1e12, 212, 0.06},
		{"ε_mem (pJ/B)", coef.EpsMem * 1e12, 513, 0.06},
		{"π0 (W)", coef.Pi0, 122, 0.06},
	}
	for _, c := range checks {
		if stats.RelErr(c.got, c.want) > c.tol {
			t.Errorf("%s = %v, want %v (±%v%%)", c.name, c.got, c.want, c.tol*100)
		}
	}
	// The paper: R² near unity, p-values below 1e-14.
	if coef.R2 < 0.999 {
		t.Errorf("R² = %v, want near 1", coef.R2)
	}
	if coef.MaxPValue > 1e-14 {
		t.Errorf("max p-value = %v, want < 1e-14", coef.MaxPValue)
	}
	if res.DOF != len(pts)-4 {
		t.Errorf("DOF = %d", res.DOF)
	}
}

func TestFitEq9ThroughPowermonPipeline(t *testing.T) {
	// Same fit but with energy measured by the sampled power monitor —
	// the complete §IV-A apparatus.
	m := machine.CoreI7950()
	e := engine(t, m, 7)
	// 1024 Hz (PowerMon 2's per-channel maximum) and 1 GiB of traffic
	// per run keep every run long enough for tens of samples; at the
	// paper's 128 Hz these sub-second runs would be under-sampled.
	mon, err := powermon.New(powermon.CPUChannels(), powermon.Config{Seed: 8, RateHz: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var pts []Point
	for _, prec := range []machine.Precision{machine.Single, machine.Double} {
		p, err := Sweep(context.Background(), e, prec, SweepConfig{
			Intensities: core.LogGrid(0.25, 16, 7),
			VolumeBytes: 1 << 30,
			Reps:        10,
			Tuning:      e.OptimalTuning(),
			Monitor:     mon,
			// Regress on every individual run, as the paper does; the
			// aggregated 14-point fit has too few observations for the
			// εmem estimator to stay reliably within the 10% checks.
			KeepReps: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p...)
	}
	coef, _, err := FitEq9(pts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(coef.EpsMem*1e12, 795) > 0.10 {
		t.Errorf("ε_mem = %v pJ/B, want ≈795", coef.EpsMem*1e12)
	}
	if stats.RelErr(coef.Pi0, 122) > 0.10 {
		t.Errorf("π0 = %v W, want ≈122", coef.Pi0)
	}
	if stats.RelErr(coef.EpsSingle*1e12, 371) > 0.10 {
		t.Errorf("ε_s = %v pJ, want ≈371", coef.EpsSingle*1e12)
	}
	if stats.RelErr(coef.EpsDouble*1e12, 670) > 0.10 {
		t.Errorf("ε_d = %v pJ, want ≈670", coef.EpsDouble*1e12)
	}
}

func TestFitEq9Errors(t *testing.T) {
	if _, _, err := FitEq9(nil); err == nil {
		t.Error("empty fit accepted")
	}
	// Single-precision-only points: Δεd unidentifiable.
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = Point{W: 1e9, Q: 1e9 / float64(i+1), Time: 1, Energy: 100, Precision: machine.Single}
	}
	if _, _, err := FitEq9(pts); err == nil {
		t.Error("single-precision-only fit accepted")
	}
	pts[0].Precision = machine.Double
	pts[1].W = 0
	if _, _, err := FitEq9(pts); err == nil {
		t.Error("non-positive W accepted")
	}
}

func TestPeaksMatchSectionIVB(t *testing.T) {
	cases := []struct {
		m            *machine.Machine
		prec         machine.Precision
		gflops, gbps float64
	}{
		{machine.GTX580(), machine.Double, 196, 170},
		{machine.GTX580(), machine.Single, 1398, 168},
		{machine.CoreI7950(), machine.Single, 99.4, 18.7},
		{machine.CoreI7950(), machine.Double, 49.7, 18.9},
	}
	for _, c := range cases {
		e := engine(t, c.m, 33)
		gf, gb, err := Peaks(e, c.prec, e.OptimalTuning())
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelErr(gf, c.gflops) > 0.05 {
			t.Errorf("%s/%v: %v GFLOP/s, want ≈%v", c.m.Name, c.prec, gf, c.gflops)
		}
		if stats.RelErr(gb, c.gbps) > 0.05 {
			t.Errorf("%s/%v: %v GB/s, want ≈%v", c.m.Name, c.prec, gb, c.gbps)
		}
	}
}

func TestSweepThrottlesNearBalanceOnGTX580Single(t *testing.T) {
	// Fig. 4b/5b: the GTX 580 single-precision benchmark exceeds the
	// 244 W rating near the balance point, so those sweep points are
	// throttled while very-low-intensity points are not.
	m := machine.GTX580()
	e := engine(t, m, 3)
	p := core.FromMachine(m, machine.Single)
	pts, err := Sweep(context.Background(), e, machine.Single, SweepConfig{
		Intensities: []float64{0.25, p.BalanceTime(), 64},
		VolumeBytes: 1 << 26,
		Reps:        3,
		Tuning:      e.OptimalTuning(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Throttled {
		t.Error("I=0.25 should not throttle")
	}
	if !pts[1].Throttled {
		t.Error("balance-point single precision should throttle")
	}
	if float64(pts[1].Power) > float64(m.PowerCap)*1.01 {
		t.Errorf("throttled power = %v, cap %v", pts[1].Power, m.PowerCap)
	}
	// The compute-bound end exceeds the 244 W *rating* without
	// throttling — the §V-B observation that the benchmark "already
	// begins to exceed" the rating at high intensities.
	if pts[2].Throttled {
		t.Error("I=64 should not hit the hard cap")
	}
	if float64(pts[2].Power) <= float64(m.RatedPower) {
		t.Errorf("I=64 power %v should exceed the 244 W rating", pts[2].Power)
	}
}

// Closing the loop: coefficients fitted on one sweep predict the
// energies of a held-out sweep at different intensities within a few
// percent — the fit is a usable model, not just a curve fit.
func TestFittedCoefficientsPredictHeldOutPoints(t *testing.T) {
	m := machine.GTX580()
	e := engine(t, m, 55)
	tuning := e.OptimalTuning()
	sweep := func(grid []float64) []Point {
		var pts []Point
		for _, prec := range []machine.Precision{machine.Single, machine.Double} {
			p, err := Sweep(context.Background(), e, prec, SweepConfig{
				Intensities: grid,
				VolumeBytes: 1 << 28,
				Reps:        20,
				Tuning:      tuning,
			})
			if err != nil {
				t.Fatal(err)
			}
			pts = append(pts, p...)
		}
		return pts
	}
	train := sweep(core.LogGrid(0.25, 64, 9))
	test := sweep([]float64{0.7, 3, 11, 47})
	coef, _, err := FitEq9(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range test {
		eps := coef.EpsSingle
		if pt.Precision == machine.Double {
			eps = coef.EpsDouble
		}
		pred := pt.W*eps + pt.Q*coef.EpsMem + coef.Pi0*float64(pt.Time)
		if re := stats.RelErr(pred, float64(pt.Energy)); re > 0.05 {
			t.Errorf("I=%.3g %v: predicted %.4g J vs measured %.4g J (%.1f%% off)",
				pt.Intensity, pt.Precision, pred, float64(pt.Energy), re*100)
		}
	}
}

func TestRunProgramExecutesCountedOps(t *testing.T) {
	m := machine.CoreI7950()
	e := engine(t, m, 77)
	prog, err := GeneratePolynomial(64, 1<<20, machine.Single)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunProgram(e, prog, e.OptimalTuning())
	if err != nil {
		t.Fatal(err)
	}
	w, q := prog.Counts()
	// The run's achieved rate reflects exactly the counted stream.
	gflops := w / float64(r.Duration) / 1e9
	if gflops <= 0 || gflops > m.SP.PeakFlops/1e9 {
		t.Errorf("program rate %v GFLOP/s out of range", gflops)
	}
	if r.Spec.W != w || r.Spec.Q != q {
		t.Error("run spec does not match program counts")
	}
	// Degenerate program rejected.
	if _, err := RunProgram(e, Program{}, e.OptimalTuning()); err == nil {
		t.Error("empty program accepted")
	}
}

// TestSweepWorkerInvariance pins the determinism contract of the
// parallel sweep: because every (grid point, rep) task derives its
// noise stream from its identity rather than from scheduling order,
// the points must be deep-equal at any worker count, with and without
// the power-monitor measurement path.
func TestSweepWorkerInvariance(t *testing.T) {
	run := func(t *testing.T, workers int, monitored bool) []Point {
		t.Helper()
		e := engine(t, machine.GTX580(), 21)
		cfg := SweepConfig{
			Intensities: core.LogGrid(0.25, 16, 5),
			VolumeBytes: 1 << 28,
			Reps:        6,
			Tuning:      e.OptimalTuning(),
			Workers:     workers,
		}
		if monitored {
			mon, err := powermon.New(powermon.GPUChannels(), powermon.Config{Seed: 13, RateHz: 1024})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Monitor = mon
		}
		pts, err := Sweep(context.Background(), e, machine.Single, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	for _, monitored := range []bool{false, true} {
		want := run(t, 1, monitored)
		for _, workers := range []int{2, 8} {
			got := run(t, workers, monitored)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("monitored=%v: workers=%d sweep differs from sequential", monitored, workers)
			}
		}
	}
	// Reusing one engine across back-to-back sweeps must also be
	// order-independent: the sweep draws only from derived streams.
	e := engine(t, machine.GTX580(), 21)
	cfg := SweepConfig{
		Intensities: core.LogGrid(0.25, 16, 5),
		VolumeBytes: 1 << 28,
		Reps:        6,
		Tuning:      e.OptimalTuning(),
	}
	first, err := Sweep(context.Background(), e, machine.Single, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Sweep(context.Background(), e, machine.Single, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("repeated sweeps on one engine diverge; sweep is consuming the engine's sequential stream")
	}
}

// TestSweepKeepRepsWorkerInvariance covers the per-rep observation
// path used by the campaign fits.
func TestSweepKeepRepsWorkerInvariance(t *testing.T) {
	run := func(workers int) []Point {
		e := engine(t, machine.CoreI7950(), 33)
		pts, err := Sweep(context.Background(), e, machine.Double, SweepConfig{
			Intensities: core.LogGrid(0.5, 8, 4),
			VolumeBytes: 1 << 27,
			Reps:        5,
			Tuning:      e.OptimalTuning(),
			KeepReps:    true,
			Workers:     workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	want := run(1)
	if len(want) != 4*5 {
		t.Fatalf("KeepReps returned %d points, want %d", len(want), 4*5)
	}
	for _, workers := range []int{3, 16} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d KeepReps sweep differs from sequential", workers)
		}
	}
}
