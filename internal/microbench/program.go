// Package microbench reconstructs the paper's intensity microbenchmarks
// (§IV-B): kernels with controllable flop:byte ratio, tuned to run as
// close to the roofline as the platform allows, swept over intensity to
// produce the (W, Q, T, R) tuples that instantiate the energy model via
// linear regression (eq. 9).
//
// Two kernel generators mirror the paper's: an FMA/load mix (the GPU
// benchmark) and a polynomial evaluation whose degree sets the intensity
// (the CPU benchmark). Kernels are generated as explicit, fully unrolled
// instruction streams; the op counts of the stream are what gets
// executed, which is the reproduction's analogue of verifying the
// emitted PTX. A small interpreter executes the streams so generated
// kernels can also be checked for numerical correctness against a
// direct reference implementation, as the paper checks its GPU kernel
// against an equivalent CPU kernel.
package microbench

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/machine"
)

// Op is one instruction in a generated kernel.
type Op uint8

const (
	// OpLoad reads the next element from the input stream into the
	// working register.
	OpLoad Op = iota
	// OpFMA performs acc = acc*coeff + reg, counted as two flops
	// (the paper counts FMAs as two flops each).
	OpFMA
	// OpStore writes acc to the output stream.
	OpStore
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpLoad:
		return "load"
	case OpFMA:
		return "fma"
	case OpStore:
		return "store"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Program is a fully unrolled kernel body: the per-element instruction
// stream plus how many elements it processes.
type Program struct {
	// Body is the instruction sequence applied to each element.
	Body []Op
	// Elements is the number of input elements the kernel processes.
	Elements int
	// Precision fixes the word size.
	Precision machine.Precision
}

// Counts returns the kernel's total work W (flops) and memory traffic Q
// (bytes), derived purely from the instruction stream — the analogue of
// inspecting the generated PTX.
func (p Program) Counts() (w, q float64) {
	var flops, words float64
	for _, op := range p.Body {
		switch op {
		case OpFMA:
			flops += 2
		case OpLoad, OpStore:
			words++
		}
	}
	n := float64(p.Elements)
	return flops * n, words * n * float64(p.Precision.WordSize())
}

// Intensity returns W/Q of the generated kernel.
func (p Program) Intensity() float64 {
	w, q := p.Counts()
	if q == 0 {
		return math.Inf(1)
	}
	return w / q
}

// Execute interprets the program over the input, returning one output
// value per element. Each element's evaluation starts with acc = 0;
// OpLoad pulls the element (inputs are reused cyclically for bodies
// with several loads), OpFMA folds it in Horner style. The outputs give
// generated kernels something to be checked against, mirroring the
// paper's correctness verification of the tuned GPU kernel.
func (p Program) Execute(input []float64, coeff float64) ([]float64, error) {
	if p.Elements <= 0 {
		return nil, errors.New("microbench: program has no elements")
	}
	if len(input) == 0 {
		return nil, errors.New("microbench: empty input")
	}
	out := make([]float64, 0, p.Elements)
	for e := 0; e < p.Elements; e++ {
		acc := 0.0
		reg := 0.0
		li := 0
		stored := false
		for _, op := range p.Body {
			switch op {
			case OpLoad:
				reg = input[(e+li)%len(input)]
				li++
			case OpFMA:
				acc = acc*coeff + reg
			case OpStore:
				out = append(out, acc)
				stored = true
			}
		}
		if !stored {
			out = append(out, acc)
		}
	}
	return out, nil
}

// PolynomialDegreeFor returns the polynomial degree whose Horner
// evaluation yields the closest achievable intensity at the given
// precision: one load of x plus d FMAs per element gives
// I = 2d/wordsize flops per byte. Degree is at least 1.
func PolynomialDegreeFor(intensity float64, prec machine.Precision) int {
	d := int(math.Round(intensity * float64(prec.WordSize()) / 2))
	if d < 1 {
		d = 1
	}
	return d
}

// GeneratePolynomial builds the CPU-style kernel: for each of n
// elements, load x then evaluate a degree-d polynomial by d FMAs,
// accumulating the result (no store, so traffic is one word per
// element and I = 2d/wordsize exactly as PolynomialDegreeFor assumes).
func GeneratePolynomial(degree, n int, prec machine.Precision) (Program, error) {
	if degree < 1 || n < 1 {
		return Program{}, errors.New("microbench: degree and element count must be >= 1")
	}
	body := make([]Op, 0, degree+1)
	body = append(body, OpLoad)
	for i := 0; i < degree; i++ {
		body = append(body, OpFMA)
	}
	return Program{Body: body, Elements: n, Precision: prec}, nil
}

// GenerateFMAMix builds the GPU-style kernel: per element, `loads`
// memory loads and `fmas` independent FMA operations, fully unrolled.
// Intensity = 2·fmas / (loads·wordsize).
func GenerateFMAMix(fmas, loads, n int, prec machine.Precision) (Program, error) {
	if fmas < 1 || loads < 1 || n < 1 {
		return Program{}, errors.New("microbench: fma, load and element counts must be >= 1")
	}
	body := make([]Op, 0, fmas+loads)
	// Interleave loads through the FMA stream the way an unrolled
	// latency-hiding kernel would.
	ratio := float64(fmas) / float64(loads)
	fi := 0.0
	for l := 0; l < loads; l++ {
		body = append(body, OpLoad)
		for fi < ratio*float64(l+1) {
			body = append(body, OpFMA)
			fi++
		}
	}
	for fi < float64(fmas) {
		body = append(body, OpFMA)
		fi++
	}
	return Program{Body: body, Elements: n, Precision: prec}, nil
}

// MixFor returns (fmas, loads) per element approximating the target
// intensity at the given precision, preferring small counts: with one
// load per element, fmas = I·wordsize/2, rounded, floored at 1. For
// intensities below 2/wordsize it increases the load count instead.
func MixFor(intensity float64, prec machine.Precision) (fmas, loads int) {
	ws := float64(prec.WordSize())
	if intensity >= 2/ws {
		f := int(math.Round(intensity * ws / 2))
		if f < 1 {
			f = 1
		}
		return f, 1
	}
	l := int(math.Round(2 / (intensity * ws)))
	if l < 1 {
		l = 1
	}
	return 1, l
}

// Disassemble renders the per-element body compactly, run-length
// encoded — the reproduction's analogue of inspecting the emitted PTX
// to verify what actually executes ("fma×64 load×1 …").
func (p Program) Disassemble() string {
	if len(p.Body) == 0 {
		return "(empty)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d elements (%v): ", p.Elements, p.Precision)
	run := p.Body[0]
	count := 1
	flush := func() {
		if count == 1 {
			fmt.Fprintf(&sb, "%v ", run)
		} else {
			fmt.Fprintf(&sb, "%v×%d ", run, count)
		}
	}
	for _, op := range p.Body[1:] {
		if op == run {
			count++
			continue
		}
		flush()
		run, count = op, 1
	}
	flush()
	w, q := p.Counts()
	fmt.Fprintf(&sb, "→ W=%g Q=%g I=%.4g", w, q, w/q)
	return strings.TrimSpace(sb.String())
}

// ReferencePolynomial evaluates the degree-d Horner polynomial with all
// coefficients equal to x's loaded value semantics used by Execute:
// acc_{k+1} = acc_k·c + x, acc_0 = 0. Used to validate generated
// polynomial kernels.
func ReferencePolynomial(x, c float64, degree int) float64 {
	acc := 0.0
	for i := 0; i < degree; i++ {
		acc = acc*c + x
	}
	return acc
}
