package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"repro/internal/machine"
	"repro/internal/model"
)

// Hand-rolled request decoders for the hot POST bodies (/v1/eval,
// /v1/evalbatch). The request shapes are tiny fixed structs; a strict
// recursive-descent parser over a pooled body buffer replaces
// json.Decoder and its per-request allocations. Semantics match the
// stdlib path the handlers used before (json.Decoder with
// DisallowUnknownFields):
//
//   - unknown fields are rejected with a `json: unknown field "x"`
//     error (the contract the bad-request tests pin);
//   - field names match exactly first, then case-insensitively with
//     the stdlib's fold (bytes.EqualFold semantics);
//   - a duplicated field keeps the last value; a null value leaves the
//     field untouched; a top-level null leaves the whole struct zero;
//   - numbers are validated against the JSON grammar before
//     strconv.ParseFloat sees them;
//   - anything after the top-level value is "trailing data after JSON
//     value".
//
// String values are interned against the fixed vocabulary the requests
// draw from (machine keys, precision names, model names), so a warm
// request decodes without copying any string. /v1/campaign keeps the
// stdlib decoder: campaign.Config is a deep struct and that endpoint's
// cost is the engine run, not the parse.

// bodyBufPool recycles request-body read buffers.
var bodyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

// readBody drains r's body into a pooled buffer, enforcing maxBytes
// like http.MaxBytesReader (a body of exactly maxBytes is fine, one
// byte more is "http: request body too large"). On success the caller
// owns *bp until it calls releaseBody.
func readBody(r *http.Request, maxBytes int64) (*[]byte, error) {
	bp := bodyBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if int64(len(buf)) > maxBytes {
			*bp = buf[:0]
			bodyBufPool.Put(bp)
			return nil, errors.New("http: request body too large")
		}
		if err == io.EOF {
			*bp = buf
			return bp, nil
		}
		if err != nil {
			*bp = buf[:0]
			bodyBufPool.Put(bp)
			return nil, err
		}
	}
}

// releaseBody returns a readBody buffer to the pool. Nothing parsed
// from the body may be retained past this call except interned or
// copied strings and parsed numbers.
func releaseBody(bp *[]byte) {
	*bp = (*bp)[:0]
	bodyBufPool.Put(bp)
}

// internTable maps every string a valid request can carry — machine
// keys, precision names, model names — to a canonical copy, so the
// decoder resolves []byte field values to strings without allocating.
// Unknown strings (doomed to fail validation) fall back to a copy.
var (
	internOnce  sync.Once
	internTable map[string]string
)

// intern returns the canonical string for b.
func intern(b []byte) string {
	internOnce.Do(func() {
		internTable = map[string]string{"": "", "single": "single", "double": "double"}
		for k := range catalog() {
			internTable[k] = k
		}
		for _, n := range model.Names() {
			internTable[n] = n
		}
	})
	if s, ok := internTable[string(b)]; ok {
		return s
	}
	return string(b)
}

// serverCatalog is the server's one shared machine catalog.
// machine.Catalog() deep-copies every machine per call so callers can
// mutate; the request path only reads, so it resolves machines against
// this single copy and never rebuilds it.
var (
	catalogOnce sync.Once
	catalogMap  map[string]*machine.Machine
)

// catalog returns the shared read-only machine catalog.
func catalog() map[string]*machine.Machine {
	catalogOnce.Do(func() { catalogMap = machine.Catalog() })
	return catalogMap
}

// errUnexpectedEnd is the truncated-input parse error.
var errUnexpectedEnd = errors.New("unexpected end of JSON input")

// emptyFloatColumn is the canonical empty-but-non-nil column "[]"
// decodes to, mirroring the stdlib decoder.
var emptyFloatColumn = []float64{}

// jsonReader is a strict single-value JSON parser over one request
// body. scratch backs unescaped strings; a returned string view is
// valid only until the next string parse.
type jsonReader struct {
	data    []byte
	pos     int
	scratch []byte
}

// skipWS advances past insignificant whitespace.
func (p *jsonReader) skipWS() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// syntaxError reports the unexpected byte at the cursor.
func (p *jsonReader) syntaxError(context string) error {
	if p.pos >= len(p.data) {
		return errUnexpectedEnd
	}
	return fmt.Errorf("invalid character %q %s", p.data[p.pos], context)
}

// consumeNull consumes a "null" literal if one starts at the cursor.
func (p *jsonReader) consumeNull() bool {
	if p.pos+4 <= len(p.data) && string(p.data[p.pos:p.pos+4]) == "null" {
		p.pos += 4
		return true
	}
	return false
}

// str parses a string literal, returning its unescaped bytes (a view
// into the body, or into scratch when escapes are present).
func (p *jsonReader) str() ([]byte, error) {
	if p.pos >= len(p.data) || p.data[p.pos] != '"' {
		return nil, p.syntaxError("looking for beginning of string")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.data) {
		switch c := p.data[p.pos]; {
		case c == '"':
			s := p.data[start:p.pos]
			p.pos++
			return s, nil
		case c == '\\':
			return p.strSlow(start)
		case c < 0x20:
			return nil, fmt.Errorf("invalid character %q in string literal", c)
		default:
			p.pos++
		}
	}
	return nil, errUnexpectedEnd
}

// strSlow finishes parsing a string that contains escapes, unescaping
// into scratch. start is the opening-quote-exclusive offset; the cursor
// sits on the first backslash.
func (p *jsonReader) strSlow(start int) ([]byte, error) {
	p.scratch = append(p.scratch[:0], p.data[start:p.pos]...)
	for p.pos < len(p.data) {
		switch c := p.data[p.pos]; {
		case c == '"':
			p.pos++
			return p.scratch, nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return nil, errUnexpectedEnd
			}
			esc := p.data[p.pos]
			p.pos++
			switch esc {
			case '"', '\\', '/':
				p.scratch = append(p.scratch, esc)
			case 'b':
				p.scratch = append(p.scratch, '\b')
			case 'f':
				p.scratch = append(p.scratch, '\f')
			case 'n':
				p.scratch = append(p.scratch, '\n')
			case 'r':
				p.scratch = append(p.scratch, '\r')
			case 't':
				p.scratch = append(p.scratch, '\t')
			case 'u':
				r, err := p.hex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					// A high surrogate pairs with an immediately
					// following \uXXXX low surrogate; anything else
					// decodes to U+FFFD like the stdlib decoder.
					if p.pos+1 < len(p.data) && p.data[p.pos] == '\\' && p.data[p.pos+1] == 'u' {
						save := p.pos
						p.pos += 2
						r2, err := p.hex4()
						if err != nil {
							return nil, err
						}
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							r = dec
						} else {
							r = utf8.RuneError
							p.pos = save
						}
					} else {
						r = utf8.RuneError
					}
				}
				p.scratch = utf8.AppendRune(p.scratch, r)
			default:
				return nil, fmt.Errorf("invalid character %q in string escape code", esc)
			}
		case c < 0x20:
			return nil, fmt.Errorf("invalid character %q in string literal", c)
		default:
			p.scratch = append(p.scratch, c)
			p.pos++
		}
	}
	return nil, errUnexpectedEnd
}

// hex4 parses four hex digits at the cursor into a rune.
func (p *jsonReader) hex4() (rune, error) {
	if p.pos+4 > len(p.data) {
		return 0, errUnexpectedEnd
	}
	var r rune
	for _, c := range p.data[p.pos : p.pos+4] {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("invalid character %q in \\u hexadecimal character escape", c)
		}
	}
	p.pos += 4
	return r, nil
}

// numberToken consumes one number per the JSON grammar (leading zeros,
// bare dots, and bare signs are all syntax errors) and returns its raw
// bytes for strconv.
func (p *jsonReader) numberToken() ([]byte, error) {
	start := p.pos
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		p.pos++
	}
	switch {
	case p.pos >= len(p.data):
		return nil, errUnexpectedEnd
	case p.data[p.pos] == '0':
		p.pos++
	case p.data[p.pos] >= '1' && p.data[p.pos] <= '9':
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	default:
		return nil, p.syntaxError("looking for beginning of number")
	}
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		p.pos++
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return nil, p.syntaxError("after decimal point in numeric literal")
		}
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return nil, p.syntaxError("in exponent of numeric literal")
		}
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	}
	return p.data[start:p.pos], nil
}

// stringValue parses a string (or null) into dst, interned.
func (p *jsonReader) stringValue(dst *string, field string) error {
	p.skipWS()
	if p.consumeNull() {
		return nil
	}
	if p.pos < len(p.data) && p.data[p.pos] != '"' {
		return fmt.Errorf("json: cannot unmarshal value into Go struct field %s of type string", field)
	}
	b, err := p.str()
	if err != nil {
		return err
	}
	*dst = intern(b)
	return nil
}

// floatValue parses a number (or null) into dst.
func (p *jsonReader) floatValue(dst *float64, field string) error {
	p.skipWS()
	if p.consumeNull() {
		return nil
	}
	if p.pos < len(p.data) {
		if c := p.data[p.pos]; c != '-' && (c < '0' || c > '9') {
			return fmt.Errorf("json: cannot unmarshal value into Go struct field %s of type float64", field)
		}
	}
	tok, err := p.numberToken()
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return fmt.Errorf("json: cannot unmarshal number %s into Go struct field %s of type float64", tok, field)
	}
	*dst = v
	return nil
}

// floatsValue parses an array of numbers (or null) appending into
// dst[:0], so pooled column capacity is reused across requests. It
// returns the parsed slice — empty non-nil for "[]" — and isNull true
// (dst untouched) for a null value, which the caller must treat as
// "leave the field as it was", never assigning the stale scratch.
func (p *jsonReader) floatsValue(dst []float64, field string) (out []float64, isNull bool, err error) {
	p.skipWS()
	if p.consumeNull() {
		return dst, true, nil
	}
	if p.pos >= len(p.data) || p.data[p.pos] != '[' {
		return dst, false, fmt.Errorf("json: cannot unmarshal value into Go struct field %s of type []float64", field)
	}
	p.pos++
	out = dst[:0]
	p.skipWS()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		p.pos++
		if out == nil {
			// "[]" into a never-used scratch column: match the stdlib's
			// empty-but-non-nil slice without allocating. Appends to a
			// zero-capacity slice reallocate, so sharing is safe.
			out = emptyFloatColumn
		}
		return out, false, nil
	}
	for {
		var v float64
		if err := p.floatValue(&v, field); err != nil {
			return dst, false, err
		}
		out = append(out, v)
		p.skipWS()
		if p.pos >= len(p.data) {
			return dst, false, errUnexpectedEnd
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return out, false, nil
		default:
			return dst, false, p.syntaxError("after array element")
		}
	}
}

// object drives a top-level object parse, invoking field for each
// member with the unescaped key (the callback must match the key
// before parsing its value — scratch is shared). A top-level null is
// accepted as a no-op, matching the stdlib decoder.
func (p *jsonReader) object(field func(key []byte) error) error {
	p.skipWS()
	if p.consumeNull() {
		return nil
	}
	if p.pos >= len(p.data) || p.data[p.pos] != '{' {
		return p.syntaxError("looking for beginning of value")
	}
	p.pos++
	p.skipWS()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		return nil
	}
	for {
		p.skipWS()
		key, err := p.str()
		if err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			return p.syntaxError("after object key")
		}
		p.pos++
		if err := field(key); err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.data) {
			return errUnexpectedEnd
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return nil
		default:
			return p.syntaxError("after object key:value pair")
		}
	}
}

// trailing rejects any non-whitespace after the top-level value.
func (p *jsonReader) trailing() error {
	p.skipWS()
	if p.pos < len(p.data) {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// fieldEq reports whether key matches name case-insensitively — the
// stdlib decoder's fallback after an exact match fails, which folds
// with bytes.EqualFold semantics (simple Unicode folding, so even a
// Kelvin-sign "K" matches a "k"). The []byte conversion of the
// constant name does not escape and does not allocate.
func fieldEq(key []byte, name string) bool {
	return bytes.EqualFold(key, []byte(name))
}

// decodeEvalRequest parses one /v1/eval body into q.
func decodeEvalRequest(data []byte, q *evalRequest) error {
	p := jsonReader{data: data}
	err := p.object(func(key []byte) error {
		switch {
		case string(key) == "machine" || fieldEq(key, "machine"):
			return p.stringValue(&q.Machine, "machine")
		case string(key) == "precision" || fieldEq(key, "precision"):
			return p.stringValue(&q.Precision, "precision")
		case string(key) == "work" || fieldEq(key, "work"):
			return p.floatValue(&q.Work, "work")
		case string(key) == "intensity" || fieldEq(key, "intensity"):
			return p.floatValue(&q.Intensity, "intensity")
		case string(key) == "model" || fieldEq(key, "model"):
			return p.stringValue(&q.Model, "model")
		default:
			return fmt.Errorf("json: unknown field %q", key)
		}
	})
	if err != nil {
		return err
	}
	return p.trailing()
}

// batchScratch is the pooled column storage one /v1/evalbatch decode
// borrows; the request's Work/Intensities slices alias it, so the
// handler returns it to the pool only after the request completes.
type batchScratch struct {
	work        []float64
	intensities []float64
}

// batchScratchPool recycles batch decode columns.
var batchScratchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// decodeEvalBatchRequest parses one /v1/evalbatch body into q, with
// its float columns borrowed from sc.
func decodeEvalBatchRequest(data []byte, q *evalBatchRequest, sc *batchScratch) error {
	p := jsonReader{data: data}
	err := p.object(func(key []byte) error {
		switch {
		case string(key) == "machine" || fieldEq(key, "machine"):
			return p.stringValue(&q.Machine, "machine")
		case string(key) == "precision" || fieldEq(key, "precision"):
			return p.stringValue(&q.Precision, "precision")
		case string(key) == "work" || fieldEq(key, "work"):
			cols, isNull, err := p.floatsValue(sc.work, "work")
			if err != nil || isNull {
				return err
			}
			sc.work = cols
			q.Work = cols
			return nil
		case string(key) == "intensities" || fieldEq(key, "intensities"):
			cols, isNull, err := p.floatsValue(sc.intensities, "intensities")
			if err != nil || isNull {
				return err
			}
			sc.intensities = cols
			q.Intensities = cols
			return nil
		case string(key) == "model" || fieldEq(key, "model"):
			return p.stringValue(&q.Model, "model")
		default:
			return fmt.Errorf("json: unknown field %q", key)
		}
	})
	if err != nil {
		return err
	}
	return p.trailing()
}
