package server

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// now returns the current fake time.
func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// advance moves the fake clock forward.
func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := newResultCache(3, 1<<20, 0, nil)
	c.put(1, []byte("one"))
	c.put(2, []byte("two"))
	c.put(3, []byte("three"))
	// Touch 1 so it is most recently used; inserting 4 must evict 2.
	if _, ok := c.get(1); !ok {
		t.Fatal("entry 1 missing")
	}
	c.put(4, []byte("four"))
	if _, ok := c.get(2); ok {
		t.Error("LRU entry 2 survived eviction")
	}
	for _, k := range []uint64{1, 3, 4} {
		if _, ok := c.get(k); !ok {
			t.Errorf("entry %d evicted unexpectedly", k)
		}
	}
	if c.len() != 3 {
		t.Errorf("len = %d, want 3", c.len())
	}
	if s := c.snapshot(); s.evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.evictions)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := newResultCache(100, 10, 0, nil)
	c.put(1, []byte("aaaa")) // 4 bytes
	c.put(2, []byte("bbbb")) // 8 total
	c.put(3, []byte("cccc")) // 12 total -> evict key 1
	if _, ok := c.get(1); ok {
		t.Error("byte bound not enforced")
	}
	if c.sizeBytes() != 8 {
		t.Errorf("bytes = %d, want 8", c.sizeBytes())
	}
	// A body larger than the whole bound is not cached at all.
	c.put(4, []byte("0123456789ab"))
	if _, ok := c.get(4); ok {
		t.Error("oversized body was cached")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := newResultCache(10, 1<<20, time.Minute, clk.now)
	c.put(1, []byte("body"))
	if _, ok := c.get(1); !ok {
		t.Fatal("fresh entry missing")
	}
	clk.advance(59 * time.Second)
	if _, ok := c.get(1); !ok {
		t.Error("entry expired before its TTL")
	}
	clk.advance(2 * time.Second) // 61s > 60s TTL
	if _, ok := c.get(1); ok {
		t.Error("entry survived past its TTL")
	}
	s := c.snapshot()
	if s.expirations != 1 {
		t.Errorf("expirations = %d, want 1", s.expirations)
	}
	if c.len() != 0 || c.sizeBytes() != 0 {
		t.Errorf("expired entry not removed: len %d, bytes %d", c.len(), c.sizeBytes())
	}
	// Re-putting the same key refreshes the expiry.
	c.put(1, []byte("body"))
	clk.advance(30 * time.Second)
	c.put(1, []byte("body"))
	clk.advance(45 * time.Second) // 75s after first put, 45s after refresh
	if _, ok := c.get(1); !ok {
		t.Error("refreshed entry expired on the stale deadline")
	}
}

func TestCacheStatsAndDuplicatePut(t *testing.T) {
	c := newResultCache(10, 1<<20, 0, nil)
	if _, ok := c.get(7); ok {
		t.Fatal("empty cache hit")
	}
	c.put(7, []byte("abc"))
	c.put(7, []byte("abcdef")) // same key: replace, not duplicate
	if c.len() != 1 {
		t.Errorf("duplicate put created %d entries", c.len())
	}
	if c.sizeBytes() != 6 {
		t.Errorf("bytes = %d, want 6 after replacement", c.sizeBytes())
	}
	body, ok := c.get(7)
	if !ok || string(body) != "abcdef" {
		t.Errorf("got %q", body)
	}
	s := c.snapshot()
	if s.hits != 1 || s.misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

// TestCacheConcurrentAccess exercises the cache under the race
// detector.
func TestCacheConcurrentAccess(t *testing.T) {
	c := newResultCache(16, 1<<20, time.Hour, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := uint64(i % 32)
				c.put(k, []byte{byte(k)})
				if body, ok := c.get(k); ok && body[0] != byte(k) {
					t.Errorf("corrupt body for key %d", k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 16 {
		t.Errorf("entry bound violated: %d", c.len())
	}
}
