package server

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// now returns the current fake time.
func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// advance moves the fake clock forward.
func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewResultCache(3, 1<<20, 0, nil)
	c.Put(1, []byte("one"))
	c.Put(2, []byte("two"))
	c.Put(3, []byte("three"))
	// Touch 1 so it is most recently used; inserting 4 must evict 2.
	if _, ok := c.Get(1); !ok {
		t.Fatal("entry 1 missing")
	}
	c.Put(4, []byte("four"))
	if _, ok := c.Get(2); ok {
		t.Error("LRU entry 2 survived eviction")
	}
	for _, k := range []uint64{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %d evicted unexpectedly", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
	if s := c.Snapshot(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewResultCache(100, 10, 0, nil)
	c.Put(1, []byte("aaaa")) // 4 bytes
	c.Put(2, []byte("bbbb")) // 8 total
	c.Put(3, []byte("cccc")) // 12 total -> evict key 1
	if _, ok := c.Get(1); ok {
		t.Error("byte bound not enforced")
	}
	if c.SizeBytes() != 8 {
		t.Errorf("bytes = %d, want 8", c.SizeBytes())
	}
	// A body larger than the whole bound is not cached at all.
	c.Put(4, []byte("0123456789ab"))
	if _, ok := c.Get(4); ok {
		t.Error("oversized body was cached")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewResultCache(10, 1<<20, time.Minute, clk.now)
	c.Put(1, []byte("body"))
	if _, ok := c.Get(1); !ok {
		t.Fatal("fresh entry missing")
	}
	clk.advance(59 * time.Second)
	if _, ok := c.Get(1); !ok {
		t.Error("entry expired before its TTL")
	}
	clk.advance(2 * time.Second) // 61s > 60s TTL
	if _, ok := c.Get(1); ok {
		t.Error("entry survived past its TTL")
	}
	s := c.Snapshot()
	if s.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", s.Expirations)
	}
	if c.Len() != 0 || c.SizeBytes() != 0 {
		t.Errorf("expired entry not removed: len %d, bytes %d", c.Len(), c.SizeBytes())
	}
	// Re-putting the same key refreshes the expiry.
	c.Put(1, []byte("body"))
	clk.advance(30 * time.Second)
	c.Put(1, []byte("body"))
	clk.advance(45 * time.Second) // 75s after first put, 45s after refresh
	if _, ok := c.Get(1); !ok {
		t.Error("refreshed entry expired on the stale deadline")
	}
}

func TestCacheStatsAndDuplicatePut(t *testing.T) {
	c := NewResultCache(10, 1<<20, 0, nil)
	if _, ok := c.Get(7); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(7, []byte("abc"))
	c.Put(7, []byte("abcdef")) // same key: replace, not duplicate
	if c.Len() != 1 {
		t.Errorf("duplicate put created %d entries", c.Len())
	}
	if c.SizeBytes() != 6 {
		t.Errorf("bytes = %d, want 6 after replacement", c.SizeBytes())
	}
	body, ok := c.Get(7)
	if !ok || string(body) != "abcdef" {
		t.Errorf("got %q", body)
	}
	s := c.Snapshot()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

// TestCacheConcurrentAccess exercises the cache under the race
// detector.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewResultCache(16, 1<<20, time.Hour, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := uint64(i % 32)
				c.Put(k, []byte{byte(k)})
				if body, ok := c.Get(k); ok && body[0] != byte(k) {
					t.Errorf("corrupt body for key %d", k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("entry bound violated: %d", c.Len())
	}
}

// TestCachePeek pins Peek's contract: no recency bump, no counter
// movement, TTL respected — the router-side "would this hit?" probe.
func TestCachePeek(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewResultCache(2, 1<<20, time.Minute, clk.now)
	if c.Peek(1) {
		t.Error("Peek hit on an empty cache")
	}
	c.Put(1, []byte("one"))
	c.Put(2, []byte("two"))
	if !c.Peek(1) || !c.Peek(2) {
		t.Fatal("Peek missed live entries")
	}
	// Peek must not refresh recency: after peeking 1, inserting 3 still
	// evicts 1 (the least recently *used* entry).
	c.Peek(1)
	c.Put(3, []byte("three"))
	if c.Peek(1) {
		t.Error("Peek refreshed recency; key 1 should have been evicted")
	}
	// Peek must not move the counters.
	before := c.Snapshot()
	c.Peek(2)
	c.Peek(99)
	if after := c.Snapshot(); after != before {
		t.Errorf("Peek moved counters: %+v -> %+v", before, after)
	}
	// Peek respects the TTL.
	clk.advance(2 * time.Minute)
	if c.Peek(2) {
		t.Error("Peek hit an expired entry")
	}
}

// TestFlightTableBookkeeping pins the shared singleflight bookkeeping
// layer both the HTTP server and the cluster simulator build on.
func TestFlightTableBookkeeping(t *testing.T) {
	tbl := NewFlightTable[int]()
	if _, ok := tbl.Lookup(5); ok || tbl.Len() != 0 {
		t.Fatal("fresh table not empty")
	}
	if got, joined := tbl.Begin(5, 100); joined || got != 100 {
		t.Fatalf("first Begin = (%d, %v), want leader with 100", got, joined)
	}
	if got, joined := tbl.Begin(5, 200); !joined || got != 100 {
		t.Fatalf("second Begin = (%d, %v), want join of 100", got, joined)
	}
	if got, ok := tbl.Lookup(5); !ok || got != 100 {
		t.Fatalf("Lookup = (%d, %v)", got, ok)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
	tbl.Finish(5)
	if _, ok := tbl.Lookup(5); ok || tbl.Len() != 0 {
		t.Fatal("Finish did not clear the flight")
	}
	if _, joined := tbl.Begin(5, 300); joined {
		t.Fatal("post-Finish Begin should lead a new flight")
	}
}
