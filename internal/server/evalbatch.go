package server

import (
	"math"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
)

// POST /v1/evalbatch: the columnar counterpart of /v1/eval. One request
// carries whole (work, intensity) columns for a single (machine,
// precision); the response carries one evalResponse per point, computed
// through the internal/core batch path (bit-identical to the scalar
// path /v1/eval uses — a batch of one returns exactly the /v1/eval
// result object). The whole batch is content-addressed by one canonical
// hash, so identical batches cache as one entry and concurrent
// identical batches coalesce into one evaluation like /v1/campaign.

// evalBatchRequest is the POST /v1/evalbatch body. Work is optional:
// omit it for the /v1/eval default of 1e9 flops per point, or provide
// exactly one entry per intensity (zero entries take the default).
type evalBatchRequest struct {
	Machine     string    `json:"machine"`
	Precision   string    `json:"precision"`
	Work        []float64 `json:"work,omitempty"`
	Intensities []float64 `json:"intensities"`
	// Model selects the EnergyModel for the whole batch (see GET
	// /v1/models); empty means the default analytic model.
	Model string `json:"model,omitempty"`
}

// evalBatchResponse is the POST /v1/evalbatch reply: one /v1/eval
// result object per requested point, in request order.
type evalBatchResponse struct {
	Machine   string         `json:"machine"`
	Precision string         `json:"precision"`
	Count     int            `json:"count"`
	Results   []evalResponse `json:"results"`
}

// checkEvalBatch validates a batch request, filling defaults in place —
// before hashing, so a request with omitted work keys identically to
// one spelling the 1e9 defaults out.
func (s *Server) checkEvalBatch(q *evalBatchRequest) error {
	if _, ok := catalog()[q.Machine]; !ok {
		return badRequest("unknown machine %q", q.Machine)
	}
	if _, err := parsePrecision(q.Precision); err != nil {
		return err
	}
	if !model.Known(q.Model) {
		return badRequest("unknown model %q (see GET /v1/models)", q.Model)
	}
	n := len(q.Intensities)
	if n == 0 {
		return badRequest("evalbatch: need at least one intensity")
	}
	if n > s.cfg.MaxBatchPoints {
		return badRequest("evalbatch: %d points exceed this server's limit of %d", n, s.cfg.MaxBatchPoints)
	}
	switch len(q.Work) {
	case 0:
		q.Work = make([]float64, n)
	case n:
	default:
		return badRequest("evalbatch: work has %d entries but intensities has %d (one per point, or omit for the default)",
			len(q.Work), n)
	}
	for i := range q.Work {
		if q.Work[i] == 0 {
			q.Work[i] = 1e9
		}
	}
	for i, col := range [2][]float64{q.Work, q.Intensities} {
		name := [2]string{"work", "intensities"}[i]
		for j, v := range col {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return badRequest("%s[%d] must be finite", name, j)
			}
			if v <= 0 {
				return badRequest("%s[%d] must be positive", name, j)
			}
		}
	}
	return nil
}

// evaluateBatch computes the batch response body on the columnar model
// path. Every per-point number matches what evaluate() returns for the
// same (machine, precision, model, work, intensity) — the requested
// EnergyModel's batch kernels are bit-identical to its scalar methods,
// and the curve columns are taken over the raw request intensities
// exactly as /v1/eval does (they are machine geometry, always
// analytic).
func evaluateBatch(q evalBatchRequest) ([]byte, error) {
	prec, err := parsePrecision(q.Precision)
	if err != nil {
		return nil, err
	}
	m := catalog()[q.Machine]
	p := core.FromMachine(m, prec)
	em, err := model.For(q.Model, q.Machine, prec)
	if err != nil {
		return nil, badRequest("evalbatch: %v", err)
	}
	n := len(q.Intensities)

	qcol := make([]float64, n)
	core.QAtInto(qcol, q.Work, q.Intensities)
	var sc metrics.ScoreColumns
	var b core.Batch
	if err := metrics.EvaluateBatchModel(em, p, &sc, &b, q.Work, qcol); err != nil {
		return nil, badRequest("evalbatch: %v", err)
	}
	tb := make([]core.BoundState, n)
	eb := make([]core.BoundState, n)
	p.TimeBoundInto(tb, q.Work, qcol)
	p.EnergyBoundInto(eb, q.Work, qcol)
	roof := make([]float64, n)
	arch := make([]float64, n)
	pl := make([]float64, n)
	p.RooflineTimeInto(roof, q.Intensities)
	p.ArchlineEnergyInto(arch, q.Intensities)
	p.PowerLineInto(pl, q.Intensities)

	precName := prec.String()
	bt, be, he := p.BalanceTime(), p.BalanceEnergy(), p.HalfEfficiencyIntensity()
	rth := p.RaceToHaltEffective()
	results := make([]evalResponse, n)
	for i := range results {
		results[i] = evalResponse{
			Machine:        q.Machine,
			Precision:      precName,
			Model:          q.Model,
			Work:           q.Work[i],
			Intensity:      q.Intensities[i],
			Time:           sc.Time[i],
			Energy:         sc.Energy[i],
			AvgPower:       b.Power[i],
			CappedTime:     b.CappedTime[i],
			CappedEnergy:   b.CappedEnergy[i],
			CappedPower:    b.CappedPower[i],
			TimeBound:      tb[i].String(),
			EnergyBound:    eb[i].String(),
			BalanceTime:    bt,
			BalanceEnergy:  be,
			HalfEfficiency: he,
			RooflineTime:   roof[i],
			ArchlineEnergy: arch[i],
			PowerLine:      pl[i],
			RaceToHalt:     rth,
			EDP:            sc.EDP[i],
			FlopsPerJoule:  sc.FlopsPerJoule[i],
			FlopsPerSecond: sc.FlopsPerSecond[i],
			GreenIndex:     sc.GreenIndex[i],
			SpeedIndex:     sc.SpeedIndex[i],
		}
	}
	resp := evalBatchResponse{Machine: q.Machine, Precision: precName, Count: n, Results: results}
	return encodeEvalBatchResponse(&resp)
}

// handleEvalBatch implements POST /v1/evalbatch: cache lookup by one
// canonical batch hash, then singleflight evaluation — a batch can be
// thousands of points, so unlike /v1/eval concurrent identical batches
// coalesce into one computation like campaigns do.
func (s *Server) handleEvalBatch(w http.ResponseWriter, r *http.Request) {
	s.mRequestsEvalbatch.Inc()
	start := time.Now()
	defer func() { s.mLatEvalbatch.Observe(time.Since(start)) }()
	_, sp := s.tracer.StartRoot(r.Context(), "http.evalbatch")
	defer sp.End()

	var q evalBatchRequest
	sc := batchScratchPool.Get().(*batchScratch)
	// The request's float columns alias sc until the handler returns —
	// the flight leader runs its evaluation synchronously inside do(),
	// so nothing retains them past this defer.
	defer batchScratchPool.Put(sc)
	bp, err := readBody(r, s.cfg.MaxBodyBytes)
	if err == nil {
		err = decodeEvalBatchRequest(*bp, &q, sc)
		releaseBody(bp)
	}
	if err != nil {
		sp.Tag("error", "bad_body")
		s.writeError(w, badRequest("bad request body: %v", err))
		return
	}
	if err := s.checkEvalBatch(&q); err != nil {
		sp.Tag("error", "invalid")
		s.writeError(w, err)
		return
	}
	key := hashEvalBatch(q)
	if body, ok := s.cache.Get(key); ok {
		s.mCacheHits.Inc()
		sp.Tag("cache", "hit")
		writeCached(w, key, "hit", body)
		return
	}
	s.mCacheMisses.Inc()

	body, leader, err := s.flights.do(r.Context(), key, func() ([]byte, error) {
		s.mEvalbatchComputes.Inc()
		data, err := s.batchEval(q)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, data)
		return data, nil
	})
	if err != nil {
		sp.Tag("error", "eval")
		s.writeError(w, err)
		return
	}
	source := "miss"
	if !leader {
		source = "coalesced"
		s.mCoalesced.Inc()
	}
	sp.Tag("cache", source)
	writeCached(w, key, source, body)
}
