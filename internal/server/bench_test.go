package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// The server benchmarks measure two different things and say so in
// their names:
//
//   - The plain benchmarks drive Server.Handler().ServeHTTP directly
//     with a reused request and a discarding ResponseWriter. That is
//     the request path this package owns — decode, validate, hash,
//     cache, encode, headers — with no TCP, no net/http client, and no
//     connection bookkeeping, so the numbers (and the allocs/op gate)
//     reflect the code being optimized rather than the test harness.
//   - The *HTTP variants and BenchmarkCampaignCoalesced go through a
//     real httptest server and http.Post, round trip included, for
//     continuity with the PR 2 baseline entries in BENCH_server.json.

// benchServer builds a real-engine server plus httptest front end for
// benchmarks (no *testing.T available).
func benchServer(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	b.Cleanup(s.Close)
	return s, ts
}

func benchPost(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// discardWriter is a ResponseWriter that counts the body and nothing
// else, so direct-path benchmarks measure the server, not a recorder.
type discardWriter struct {
	header http.Header
	status int
	n      int
}

func newDiscardWriter() *discardWriter {
	return &discardWriter{header: http.Header{}, status: http.StatusOK}
}

func (w *discardWriter) Header() http.Header { return w.header }

func (w *discardWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

func (w *discardWriter) WriteHeader(status int) { w.status = status }

// reusableBody is a resettable no-op-Close request body, so the posted
// request allocates nothing per iteration.
type reusableBody struct{ bytes.Reader }

func (*reusableBody) Close() error { return nil }

// directPoster drives one handler with a reused request and writer: the
// zero-overhead harness for request-path benchmarks.
type directPoster struct {
	h    http.Handler
	req  *http.Request
	rdr  *reusableBody
	body []byte
	w    *discardWriter
}

func newDirectPoster(h http.Handler, path, body string) *directPoster {
	p := &directPoster{h: h, body: []byte(body), w: newDiscardWriter(), rdr: &reusableBody{}}
	p.req = httptest.NewRequest(http.MethodPost, path, nil)
	p.req.Body = p.rdr
	return p
}

// setBody swaps the posted body (cold benchmarks vary it per
// iteration).
func (p *directPoster) setBody(body string) {
	p.body = append(p.body[:0], body...)
}

// post serves one request, reporting a non-200 status to tb.
func (p *directPoster) post(tb testing.TB) {
	p.rdr.Reset(p.body)
	p.req.ContentLength = int64(len(p.body))
	p.w.status = http.StatusOK
	p.h.ServeHTTP(p.w, p.req)
	if p.w.status != http.StatusOK {
		tb.Fatalf("status %d", p.w.status)
	}
}

const benchEvalBody = `{"machine":"gtx580","precision":"double","work":1e9,"intensity":4}`

const benchEvalBatchBody = `{"machine":"gtx580","precision":"double","intensities":[0.25,0.5,1,2,4,8,16,32]}`

// BenchmarkServerEvalCold measures the direct request path with a cache
// miss on every iteration: decode, validate, hash, model evaluation,
// encode.
func BenchmarkServerEvalCold(b *testing.B) {
	s := New(Config{})
	b.Cleanup(s.Close)
	p := newDirectPoster(s.Handler(), "/v1/eval", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.setBody(fmt.Sprintf(`{"machine":"gtx580","precision":"double","work":1e9,"intensity":%g}`,
			1+float64(i)*1e-6))
		p.post(b)
	}
}

// BenchmarkServerEvalWarm measures the direct cache-hit path: identical
// request every iteration, so after the first the model is never
// re-evaluated. This is the allocs/op-gated benchmark: the warm path
// must stay lock-free and near-zero-allocation.
func BenchmarkServerEvalWarm(b *testing.B) {
	s := New(Config{})
	b.Cleanup(s.Close)
	p := newDirectPoster(s.Handler(), "/v1/eval", benchEvalBody)
	p.post(b) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.post(b)
	}
}

// BenchmarkServerEvalWarmParallel hammers the warm path from all procs
// at once: the contention benchmark for the sharded cache, atomic
// metrics, and lock-free hit path (one hot key, the worst case for a
// lock-guarded cache).
func BenchmarkServerEvalWarmParallel(b *testing.B) {
	s := New(Config{})
	b.Cleanup(s.Close)
	prime := newDirectPoster(s.Handler(), "/v1/eval", benchEvalBody)
	prime.post(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := newDirectPoster(s.Handler(), "/v1/eval", benchEvalBody)
		for pb.Next() {
			p.post(b)
		}
	})
}

// BenchmarkServerEvalBatchCold measures the direct batch path with a
// miss per iteration: decode with pooled columns, columnar evaluation,
// batch encode.
func BenchmarkServerEvalBatchCold(b *testing.B) {
	s := New(Config{})
	b.Cleanup(s.Close)
	p := newDirectPoster(s.Handler(), "/v1/evalbatch", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.setBody(fmt.Sprintf(`{"machine":"gtx580","precision":"double","intensities":[0.25,0.5,1,2,4,8,16,%g]}`,
			32+float64(i)*1e-6))
		p.post(b)
	}
}

// BenchmarkServerEvalBatchWarm measures the direct batch cache-hit
// path: one canonical hash over the whole batch, one cached body.
func BenchmarkServerEvalBatchWarm(b *testing.B) {
	s := New(Config{})
	b.Cleanup(s.Close)
	p := newDirectPoster(s.Handler(), "/v1/evalbatch", benchEvalBatchBody)
	p.post(b) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.post(b)
	}
}

// BenchmarkServerEvalWarmHTTP measures the warm hit through a real
// httptest server and http.Post — client, TCP, and net/http connection
// bookkeeping included — for continuity with the PR 2 baseline.
func BenchmarkServerEvalWarmHTTP(b *testing.B) {
	_, ts := benchServer(b, Config{})
	benchPost(b, ts.URL+"/v1/eval", benchEvalBody) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/eval", benchEvalBody)
	}
}

// BenchmarkCampaignCoalesced measures 8 concurrent identical campaign
// requests per iteration. The per-iteration seed defeats the cache so
// every iteration exercises coalescing around one real engine run.
func BenchmarkCampaignCoalesced(b *testing.B) {
	_, ts := benchServer(b, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(
			`{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,"points":5,"reps":2,"volume_bytes":1048576,"seed":%d}`,
			i+1)
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				benchPost(b, ts.URL+"/v1/campaign", body)
			}()
		}
		wg.Wait()
	}
}
