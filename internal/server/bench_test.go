package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// benchServer builds a real-engine server plus httptest front end for
// benchmarks (no *testing.T available).
func benchServer(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	b.Cleanup(s.Close)
	return s, ts
}

func benchPost(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServerEvalCold measures the full request path with a cache
// miss on every iteration: decode, validate, hash, model evaluation,
// encode.
func BenchmarkServerEvalCold(b *testing.B) {
	_, ts := benchServer(b, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"machine":"gtx580","precision":"double","work":1e9,"intensity":%g}`,
			1+float64(i)*1e-6)
		benchPost(b, ts.URL+"/v1/eval", body)
	}
}

// BenchmarkServerEvalWarm measures the cache-hit path: identical
// request every iteration, so after the first the model is never
// re-evaluated.
func BenchmarkServerEvalWarm(b *testing.B) {
	_, ts := benchServer(b, Config{})
	const body = `{"machine":"gtx580","precision":"double","work":1e9,"intensity":4}`
	benchPost(b, ts.URL+"/v1/eval", body) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/eval", body)
	}
}

// BenchmarkCampaignCoalesced measures 8 concurrent identical campaign
// requests per iteration. The per-iteration seed defeats the cache so
// every iteration exercises coalescing around one real engine run.
func BenchmarkCampaignCoalesced(b *testing.B) {
	_, ts := benchServer(b, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(
			`{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,"points":5,"reps":2,"volume_bytes":1048576,"seed":%d}`,
			i+1)
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				benchPost(b, ts.URL+"/v1/campaign", body)
			}()
		}
		wg.Wait()
	}
}
