package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestModelsListing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models status = %d", resp.StatusCode)
	}
	var out struct {
		Models []modelSummary `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Models) != len(model.Names()) {
		t.Fatalf("got %d models, want %d", len(out.Models), len(model.Names()))
	}
	defaults := 0
	for i, ms := range out.Models {
		if i > 0 && out.Models[i-1].Name >= ms.Name {
			t.Error("models not sorted by name")
		}
		if !model.Known(ms.Name) {
			t.Errorf("listed model %q not registered", ms.Name)
		}
		if ms.Description == "" {
			t.Errorf("model %q has no description", ms.Name)
		}
		if ms.Default {
			defaults++
			if ms.Name != model.DefaultName() {
				t.Errorf("default flag on %q, want %q", ms.Name, model.DefaultName())
			}
		}
	}
	if defaults != 1 {
		t.Errorf("got %d default models, want exactly 1", defaults)
	}
}

// TestEvalModelParameter pins the model-selection surface of /v1/eval:
// the default and an explicit "analytic" agree on every number (the
// explicit body only adds the echoed model field), "blackbox" answers
// with different cost numbers, and an unknown name is a 400.
func TestEvalModelParameter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/eval"

	resp, def := post(t, url, `{"machine": "gtx580", "intensity": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default eval status = %d: %s", resp.StatusCode, def)
	}
	resp, explicit := post(t, url, `{"machine": "gtx580", "intensity": 2, "model": "analytic"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit analytic status = %d: %s", resp.StatusCode, explicit)
	}
	var defR, expR evalResponse
	if err := json.Unmarshal([]byte(def), &defR); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(explicit), &expR); err != nil {
		t.Fatal(err)
	}
	if defR.Model != "" || expR.Model != "analytic" {
		t.Errorf("model echo: default %q, explicit %q", defR.Model, expR.Model)
	}
	expR.Model = ""
	if defR != expR {
		t.Errorf("explicit analytic differs from default beyond the model field:\n%+v\n%+v", defR, expR)
	}

	resp, bb := post(t, url, `{"machine": "gtx580", "intensity": 2, "model": "blackbox"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blackbox eval status = %d: %s", resp.StatusCode, bb)
	}
	var bbR evalResponse
	if err := json.Unmarshal([]byte(bb), &bbR); err != nil {
		t.Fatal(err)
	}
	if bbR.Model != "blackbox" {
		t.Errorf("blackbox model echo = %q", bbR.Model)
	}
	if bbR.Time == defR.Time && bbR.Energy == defR.Energy {
		t.Error("blackbox predictions identical to analytic — fit not plugged in")
	}
	// Machine geometry never changes with the model.
	if bbR.BalanceTime != defR.BalanceTime || bbR.RooflineTime != defR.RooflineTime || bbR.PowerLine != defR.PowerLine {
		t.Error("machine-geometry fields changed with the model")
	}

	resp, body := post(t, url, `{"machine": "gtx580", "intensity": 2, "model": "psychic"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model status = %d: %s", resp.StatusCode, body)
	}
}

// TestModelHashDistinct pins the cache-keying rule: no model folds
// nothing (pre-model keys unchanged), every registered selector keys
// distinctly from the default and from each other.
func TestModelHashDistinct(t *testing.T) {
	base := evalRequest{Machine: "gtx580", Precision: "double", Work: 1e9, Intensity: 2}
	seen := map[uint64]string{hashEval(base): "<default>"}
	for _, name := range model.Names() {
		q := base
		q.Model = name
		h := hashEval(q)
		if prev, dup := seen[h]; dup {
			t.Errorf("model %q hash collides with %s", name, prev)
		}
		seen[h] = name
	}
	// The default key is exactly the historical (pre-model-field) key,
	// which EvalKey still exposes.
	if got, want := hashEval(base), EvalKey("gtx580", "double", 1e9, 2); got != want {
		t.Errorf("default eval hash %#x != EvalKey %#x", got, want)
	}
}

// TestEvalBatchModelMatchesScalar extends the batch-of-one equivalence
// to the model parameter: a blackbox batch of one body-matches the
// blackbox /v1/eval result object.
func TestEvalBatchModelMatchesScalar(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, scalar := post(t, ts.URL+"/v1/eval", `{"machine": "i7-950", "intensity": 7, "model": "blackbox"}`)
	resp, batch := post(t, ts.URL+"/v1/evalbatch", `{"machine": "i7-950", "intensities": [7], "model": "blackbox"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, batch)
	}
	var br evalBatchResponse
	if err := json.Unmarshal([]byte(batch), &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 1 {
		t.Fatalf("batch count = %d", br.Count)
	}
	var sr evalResponse
	if err := json.Unmarshal([]byte(scalar), &sr); err != nil {
		t.Fatal(err)
	}
	if br.Results[0] != sr {
		t.Errorf("batch-of-one result differs from scalar eval:\n%+v\n%+v", br.Results[0], sr)
	}
}

// TestCampaignModelCheck drives POST /v1/campaign with a model selector
// and verifies the per-machine ModelCheck block arrives, while the
// default body stays free of it.
func TestCampaignModelCheck(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	small := `"machines": ["gtx580"], "lo_intensity": 0.25, "hi_intensity": 16, "points": 4, "reps": 2, "volume_bytes": 1048576, "seed": 5`
	resp, def := post(t, ts.URL+"/v1/campaign", "{"+small+"}")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default campaign status = %d: %s", resp.StatusCode, def)
	}
	if strings.Contains(def, `"ModelCheck"`) {
		t.Error("default campaign body contains a ModelCheck block")
	}
	resp, checked := post(t, ts.URL+"/v1/campaign", "{"+small+`, "model": "analytic"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model campaign status = %d: %s", resp.StatusCode, checked)
	}
	var out struct {
		Machines []struct {
			ModelCheck *struct {
				Model  string
				Points int
			}
		}
	}
	if err := json.Unmarshal([]byte(checked), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Machines) != 1 || out.Machines[0].ModelCheck == nil {
		t.Fatalf("campaign with model lacks ModelCheck: %s", checked)
	}
	if mc := out.Machines[0].ModelCheck; mc.Model != "analytic" || mc.Points == 0 {
		t.Errorf("ModelCheck = %+v", mc)
	}
}
