package server

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Hand-rolled response encoders for the hot GET/POST surfaces. The
// response shapes are fixed structs, so reflection buys nothing but
// allocations; these append-based encoders write into pooled scratch
// and are pinned byte-identical to json.MarshalIndent(v, "", "  ") by
// differential tests (TestEncodersMatchStdlib) and a differential fuzz
// target (FuzzResponseEncoding). Every formatting quirk of
// encoding/json is reproduced deliberately:
//
//   - floats use strconv 'f' shortest form unless |v| < 1e-6 or
//     |v| >= 1e21, which switch to 'e' with the stdlib's "e-09"→"e-9"
//     exponent cleanup;
//   - strings are escaped with HTML escaping on ('<', '>', '&' become
//     \u003c, \u003e, \u0026), control characters become \u00XX except
//     the short escapes \b, \f, \n, \r, \t, U+2028/U+2029 are escaped,
//     and invalid UTF-8 becomes the \ufffd escape;
//   - NaN and ±Inf are errors, matching json.UnsupportedValueError
//     text;
//   - indentation is two spaces per level with MarshalIndent's
//     newline placement (empty arrays stay "[]" on one line).

// encBufPool recycles encoder scratch buffers across requests. Encoded
// bodies that outlive the request (they enter the result cache) are
// copied out to exact-size slices; the scratch always returns to the
// pool.
var encBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 8<<10)
	return &b
}}

// hexDigits is the nibble alphabet shared by the string escaper and
// the request-hash header formatter.
const hexDigits = "0123456789abcdef"

// appendHash appends key as 16 lowercase hex digits (the
// X-Request-Hash wire format, fmt "%016x").
func appendHash(b []byte, key uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, hexDigits[(key>>uint(shift))&0xf])
	}
	return b
}

// unsupportedValueError mirrors json.UnsupportedValueError for the
// non-finite floats JSON cannot carry.
type unsupportedValueError struct{ v float64 }

// Error implements the error interface with encoding/json's text.
func (e *unsupportedValueError) Error() string {
	return fmt.Sprintf("json: unsupported value: %s", strconv.FormatFloat(e.v, 'g', -1, 64))
}

// appendJSONFloat appends f exactly as encoding/json renders a float64,
// or returns an error for NaN/±Inf.
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, &unsupportedValueError{v: f}
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims the padded single-digit exponent:
		// "1e-09" renders as "1e-9" (positive exponents keep "e+21").
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// appendJSONString appends s as a quoted JSON string with
// encoding/json's default (HTML-escaping) rules.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[c&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	b = append(b, '"')
	return b
}

// jsonEnc builds MarshalIndent(…, "", "  ")-shaped JSON into buf.
// Containers nest via open/close; elem/field place commas, newlines,
// and indentation exactly where the stdlib indenter does. The first
// float error sticks and the finished buffer is discarded.
type jsonEnc struct {
	buf   []byte
	depth int
	first bool // next elem is its container's first (no comma)
	err   error
}

// nl starts a new line at the current indentation.
func (e *jsonEnc) nl() {
	e.buf = append(e.buf, '\n')
	for i := 0; i < e.depth; i++ {
		e.buf = append(e.buf, ' ', ' ')
	}
}

// open begins a container ('{' or '[').
func (e *jsonEnc) open(c byte) {
	e.buf = append(e.buf, c)
	e.depth++
	e.first = true
}

// close ends a container ('}' or ']'); empty containers close on the
// same line, as the stdlib indenter leaves them.
func (e *jsonEnc) close(c byte) {
	e.depth--
	if !e.first {
		e.nl()
	}
	e.buf = append(e.buf, c)
	e.first = false
}

// elem starts the next array element or object member: comma unless
// first, then newline plus indent.
func (e *jsonEnc) elem() {
	if e.first {
		e.first = false
	} else {
		e.buf = append(e.buf, ',')
	}
	e.nl()
}

// field starts the named object member. Field names are trusted ASCII
// literals, so they skip the escaper.
func (e *jsonEnc) field(name string) {
	e.elem()
	e.buf = append(e.buf, '"')
	e.buf = append(e.buf, name...)
	e.buf = append(e.buf, '"', ':', ' ')
}

// str appends a string value.
func (e *jsonEnc) str(s string) { e.buf = appendJSONString(e.buf, s) }

// num appends a float value, latching the first NaN/Inf error.
func (e *jsonEnc) num(f float64) {
	b, err := appendJSONFloat(e.buf, f)
	e.buf = b
	if err != nil && e.err == nil {
		e.err = err
	}
}

// integer appends an int value.
func (e *jsonEnc) integer(n int) { e.buf = strconv.AppendInt(e.buf, int64(n), 10) }

// boolean appends a bool value.
func (e *jsonEnc) boolean(v bool) {
	if v {
		e.buf = append(e.buf, "true"...)
	} else {
		e.buf = append(e.buf, "false"...)
	}
}

// evalResponse appends one /v1/eval result object, fields in the
// evalResponse struct order (model omitted when empty, matching its
// omitempty tag).
func (e *jsonEnc) evalResponse(r *evalResponse) {
	e.open('{')
	e.field("machine")
	e.str(r.Machine)
	e.field("precision")
	e.str(r.Precision)
	if r.Model != "" {
		e.field("model")
		e.str(r.Model)
	}
	e.field("work")
	e.num(r.Work)
	e.field("intensity")
	e.num(r.Intensity)
	e.field("time_seconds")
	e.num(r.Time)
	e.field("energy_joules")
	e.num(r.Energy)
	e.field("avg_power_watts")
	e.num(r.AvgPower)
	e.field("capped_time_seconds")
	e.num(r.CappedTime)
	e.field("capped_energy_joules")
	e.num(r.CappedEnergy)
	e.field("capped_power_watts")
	e.num(r.CappedPower)
	e.field("time_bound")
	e.str(r.TimeBound)
	e.field("energy_bound")
	e.str(r.EnergyBound)
	e.field("balance_time")
	e.num(r.BalanceTime)
	e.field("balance_energy")
	e.num(r.BalanceEnergy)
	e.field("half_efficiency_intensity")
	e.num(r.HalfEfficiency)
	e.field("roofline_time")
	e.num(r.RooflineTime)
	e.field("archline_energy")
	e.num(r.ArchlineEnergy)
	e.field("power_line_watts")
	e.num(r.PowerLine)
	e.field("race_to_halt_effective")
	e.boolean(r.RaceToHalt)
	e.field("edp_joule_seconds")
	e.num(r.EDP)
	e.field("flops_per_joule")
	e.num(r.FlopsPerJoule)
	e.field("flops_per_second")
	e.num(r.FlopsPerSecond)
	e.field("green_index")
	e.num(r.GreenIndex)
	e.field("speed_index")
	e.num(r.SpeedIndex)
	e.close('}')
}

// evalBatchResponse appends one /v1/evalbatch reply object.
func (e *jsonEnc) evalBatchResponse(r *evalBatchResponse) {
	e.open('{')
	e.field("machine")
	e.str(r.Machine)
	e.field("precision")
	e.str(r.Precision)
	e.field("count")
	e.integer(r.Count)
	e.field("results")
	if r.Results == nil {
		e.buf = append(e.buf, "null"...)
	} else {
		e.open('[')
		for i := range r.Results {
			e.elem()
			e.evalResponse(&r.Results[i])
		}
		e.close(']')
	}
	e.close('}')
}

// machineSummary appends one GET /v1/machines catalog row.
func (e *jsonEnc) machineSummary(m *machineSummary) {
	e.open('{')
	e.field("key")
	e.str(m.Key)
	e.field("name")
	e.str(m.Name)
	e.field("bandwidth_bytes_per_s")
	e.num(m.Bandwidth)
	e.field("peak_flops_single")
	e.num(m.PeakFlopsSingle)
	e.field("peak_flops_double")
	e.num(m.PeakFlopsDouble)
	e.field("balance_time_double")
	e.num(m.BalanceTime)
	e.field("balance_energy_double")
	e.num(m.BalanceEnergy)
	e.field("half_efficiency_intensity_double")
	e.num(m.HalfEfficiency)
	e.field("race_to_halt_effective_double")
	e.boolean(m.RaceToHalt)
	e.close('}')
}

// modelSummary appends one GET /v1/models registry row.
func (e *jsonEnc) modelSummary(m *modelSummary) {
	e.open('{')
	e.field("name")
	e.str(m.Name)
	e.field("default")
	e.boolean(m.Default)
	e.field("description")
	e.str(m.Description)
	e.close('}')
}

// finish seals the encoded body (trailing newline, like every response
// writer here appends after MarshalIndent) and copies it out of the
// pooled scratch into an exact-size slice safe to cache indefinitely.
func (e *jsonEnc) finish() ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	e.buf = append(e.buf, '\n')
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out, nil
}

// encodeWith runs build inside a pooled encoder and returns the sealed
// body.
func encodeWith(build func(e *jsonEnc)) ([]byte, error) {
	bp := encBufPool.Get().(*[]byte)
	e := jsonEnc{buf: (*bp)[:0]}
	build(&e)
	out, err := e.finish()
	*bp = e.buf[:0]
	encBufPool.Put(bp)
	return out, err
}

// encodeEvalResponse renders the /v1/eval body for r.
func encodeEvalResponse(r *evalResponse) ([]byte, error) {
	return encodeWith(func(e *jsonEnc) { e.evalResponse(r) })
}

// encodeEvalBatchResponse renders the /v1/evalbatch body for r.
func encodeEvalBatchResponse(r *evalBatchResponse) ([]byte, error) {
	return encodeWith(func(e *jsonEnc) { e.evalBatchResponse(r) })
}

// encodeMachines renders the GET /v1/machines body: {"machines": [...]}.
func encodeMachines(rows []machineSummary) ([]byte, error) {
	return encodeWith(func(e *jsonEnc) {
		e.open('{')
		e.field("machines")
		e.open('[')
		for i := range rows {
			e.elem()
			e.machineSummary(&rows[i])
		}
		e.close(']')
		e.close('}')
	})
}

// encodeModels renders the GET /v1/models body: {"models": [...]}.
func encodeModels(rows []modelSummary) ([]byte, error) {
	return encodeWith(func(e *jsonEnc) {
		e.open('{')
		e.field("models")
		e.open('[')
		for i := range rows {
			e.elem()
			e.modelSummary(&rows[i])
		}
		e.close(']')
		e.close('}')
	})
}
