package server

import (
	"container/list"
	"sync"
	"time"
)

// ResultCache is the content-addressed LRU result cache: marshalled
// response bodies keyed by canonical request hash, bounded by entry
// count and total body bytes, with an optional TTL. Determinism makes
// this safe: a cached body is bit-for-bit the body a fresh engine run
// would produce, so the TTL exists only to bound memory residency,
// never to bound staleness.
//
// The type is exported because it is shared infrastructure: the live
// HTTP server uses one per process, and the cluster simulator
// (internal/cluster) instantiates one per simulated replica — with an
// injected virtual clock — so fleet-level cache behaviour is measured
// on the production eviction/recency/TTL code path, not on a model of
// it.
type ResultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ttl        time.Duration
	now        func() time.Time
	ll         *list.List // front = most recently used
	index      map[uint64]*list.Element
	bytes      int64
	stats      CacheStats
}

// CacheStats are a cache's lifetime counters.
type CacheStats struct {
	// Hits counts Get calls that returned a live body.
	Hits uint64
	// Misses counts Get calls that found nothing (or an expired entry).
	Misses uint64
	// Evictions counts entries dropped to satisfy the size bounds.
	Evictions uint64
	// Expirations counts entries dropped because their TTL passed.
	Expirations uint64
}

// cacheEntry is one cached response body.
type cacheEntry struct {
	key     uint64
	body    []byte
	expires time.Time // zero when the cache has no TTL
}

// NewResultCache builds a cache holding at most maxEntries bodies and
// maxBytes total body bytes; entries older than ttl are dropped on
// access (ttl <= 0 disables expiry). now is injectable for tests and
// for the cluster simulator's virtual clock; nil means time.Now.
func NewResultCache(maxEntries int, maxBytes int64, ttl time.Duration, now func() time.Time) *ResultCache {
	if now == nil {
		now = time.Now
	}
	return &ResultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ttl:        ttl,
		now:        now,
		ll:         list.New(),
		index:      map[uint64]*list.Element{},
	}
}

// Get returns the cached body for key and marks it most recently used.
// Expired entries are removed and reported as misses.
func (c *ResultCache) Get(key uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.stats.Expirations++
		c.stats.Misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return e.body, true
}

// Peek reports whether key holds a live (non-expired) entry without
// touching recency order or the hit/miss counters — the read routers
// use to ask "would this replica hit?" before committing a request.
func (c *ResultCache) Peek(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return false
	}
	e := el.Value.(*cacheEntry)
	return e.expires.IsZero() || !c.now().After(e.expires)
}

// Put stores body under key, evicting least-recently-used entries until
// both bounds hold. A body larger than the byte bound is not cached.
func (c *ResultCache) Put(key uint64, body []byte) {
	if c.maxEntries <= 0 || int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		// Deterministic engine: same key means same body. Refresh
		// recency and expiry rather than storing a duplicate.
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		e.expires = c.expiry()
		c.ll.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, body: body, expires: c.expiry()}
	c.index[key] = c.ll.PushFront(e)
	c.bytes += int64(len(body))
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.stats.Evictions++
	}
}

// expiry returns the deadline for an entry stored now.
func (c *ResultCache) expiry() time.Time {
	if c.ttl <= 0 {
		return time.Time{}
	}
	return c.now().Add(c.ttl)
}

// removeLocked unlinks one entry. Callers hold c.mu.
func (c *ResultCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= int64(len(e.body))
}

// Len returns the number of live entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// SizeBytes returns the total cached body bytes.
func (c *ResultCache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Snapshot returns the lifetime counters.
func (c *ResultCache) Snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
