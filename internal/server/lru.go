package server

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// ResultCache is the content-addressed LRU result cache: marshalled
// response bodies keyed by canonical request hash, bounded by entry
// count and total body bytes, with an optional TTL. Determinism makes
// this safe: a cached body is bit-for-bit the body a fresh engine run
// would produce, so the TTL exists only to bound memory residency,
// never to bound staleness.
//
// The type is exported because it is shared infrastructure: the live
// HTTP server shards its cache over many ResultCaches (see
// ShardedCache), and the cluster simulator (internal/cluster)
// instantiates one per simulated replica — with an injected virtual
// clock — so fleet-level cache behaviour is measured on the production
// eviction/recency/TTL code path, not on a model of it.
//
// Concurrency: all operations are safe for concurrent use. Lifetime
// counters are atomics, and a Get for the most-recently-used key — the
// dominant pattern when one hot request is hammered — is resolved
// lock-free: entries are immutable once published, so the front-of-list
// hint can be validated and its body returned without touching the
// mutex (the entry is already most recently used, making the recency
// bump a no-op). Every other operation takes the per-cache mutex.
type ResultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ttl        time.Duration
	now        func() time.Time
	ll         *list.List // front = most recently used
	index      map[uint64]*list.Element
	bytes      int64

	// front mirrors the list front under mu; the lock-free Get fast
	// path validates it by key and expiry. Entries are immutable, so a
	// momentarily stale hint can only serve a body that was live when
	// the hint was read — and bodies are pure functions of their key.
	front atomic.Pointer[cacheEntry]

	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	expirations atomic.Uint64
}

// CacheStats are a cache's lifetime counters.
type CacheStats struct {
	// Hits counts Get calls that returned a live body.
	Hits uint64
	// Misses counts Get calls that found nothing (or an expired entry).
	Misses uint64
	// Evictions counts entries dropped to satisfy the size bounds.
	Evictions uint64
	// Expirations counts entries dropped because their TTL passed.
	Expirations uint64
}

// add accumulates other into s (the ShardedCache aggregation).
func (s *CacheStats) add(other CacheStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Expirations += other.Expirations
}

// cacheEntry is one cached response body. Entries are immutable after
// publication — a Put that refreshes an existing key installs a fresh
// entry rather than mutating the old one — so the lock-free Get fast
// path may read any entry it can reach without synchronisation.
type cacheEntry struct {
	key     uint64
	body    []byte
	expires time.Time // zero when the cache has no TTL
}

// NewResultCache builds a cache holding at most maxEntries bodies and
// maxBytes total body bytes; entries older than ttl are dropped on
// access (ttl <= 0 disables expiry). now is injectable for tests and
// for the cluster simulator's virtual clock; nil means time.Now.
func NewResultCache(maxEntries int, maxBytes int64, ttl time.Duration, now func() time.Time) *ResultCache {
	if now == nil {
		now = time.Now
	}
	return &ResultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ttl:        ttl,
		now:        now,
		ll:         list.New(),
		index:      map[uint64]*list.Element{},
	}
}

// live reports whether e has not expired at the injected clock's now.
func (c *ResultCache) live(e *cacheEntry) bool {
	return e.expires.IsZero() || !c.now().After(e.expires)
}

// Get returns the cached body for key and marks it most recently used.
// Expired entries are removed and reported as misses.
func (c *ResultCache) Get(key uint64) ([]byte, bool) {
	// Fast path: the key is already most recently used, so the recency
	// bump is a no-op and nothing needs the lock. Expired or stale
	// hints fall through to the locked path, which settles them.
	if e := c.front.Load(); e != nil && e.key == key && c.live(e) {
		c.hits.Add(1)
		return e.body, true
	}
	c.mu.Lock()
	el, ok := c.index[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !c.live(e) {
		c.removeLocked(el)
		c.syncFrontLocked()
		c.mu.Unlock()
		c.expirations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.syncFrontLocked()
	c.mu.Unlock()
	c.hits.Add(1)
	return e.body, true
}

// Peek reports whether key holds a live (non-expired) entry without
// touching recency order or the hit/miss counters — the read routers
// use to ask "would this replica hit?" before committing a request.
func (c *ResultCache) Peek(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return false
	}
	return c.live(el.Value.(*cacheEntry))
}

// Put stores body under key, evicting least-recently-used entries until
// both bounds hold. A body larger than the byte bound is not cached.
func (c *ResultCache) Put(key uint64, body []byte) {
	if c.maxEntries <= 0 || int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		// Deterministic engine: same key means same body. Refresh
		// recency and expiry rather than storing a duplicate — with a
		// fresh immutable entry, never by mutating the published one.
		old := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(old.body))
		el.Value = &cacheEntry{key: key, body: body, expires: c.expiry()}
		c.ll.MoveToFront(el)
		c.syncFrontLocked()
		c.mu.Unlock()
		return
	}
	e := &cacheEntry{key: key, body: body, expires: c.expiry()}
	c.index[key] = c.ll.PushFront(e)
	c.bytes += int64(len(body))
	var evicted uint64
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		evicted++
	}
	c.syncFrontLocked()
	c.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// expiry returns the deadline for an entry stored now.
func (c *ResultCache) expiry() time.Time {
	if c.ttl <= 0 {
		return time.Time{}
	}
	return c.now().Add(c.ttl)
}

// removeLocked unlinks one entry. Callers hold c.mu.
func (c *ResultCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= int64(len(e.body))
}

// syncFrontLocked republishes the front-of-list hint after a mutation.
// Callers hold c.mu.
func (c *ResultCache) syncFrontLocked() {
	if el := c.ll.Front(); el != nil {
		c.front.Store(el.Value.(*cacheEntry))
	} else {
		c.front.Store(nil)
	}
}

// Len returns the number of live entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// SizeBytes returns the total cached body bytes.
func (c *ResultCache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Snapshot returns the lifetime counters.
func (c *ResultCache) Snapshot() CacheStats {
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
	}
}
