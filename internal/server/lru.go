package server

import (
	"container/list"
	"sync"
	"time"
)

// resultCache is the in-memory LRU result cache: marshalled response
// bodies keyed by canonical request hash, bounded by entry count and
// total body bytes, with an optional TTL. Determinism makes this safe:
// a cached body is bit-for-bit the body a fresh engine run would
// produce, so the TTL exists only to bound memory residency, never to
// bound staleness.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ttl        time.Duration
	now        func() time.Time
	ll         *list.List // front = most recently used
	index      map[uint64]*list.Element
	bytes      int64
	stats      cacheStats
}

// cacheStats are the cache's lifetime counters.
type cacheStats struct {
	hits, misses, evictions, expirations uint64
}

// cacheEntry is one cached response body.
type cacheEntry struct {
	key     uint64
	body    []byte
	expires time.Time // zero when the cache has no TTL
}

// newResultCache builds a cache holding at most maxEntries bodies and
// maxBytes total body bytes; entries older than ttl are dropped on
// access (ttl <= 0 disables expiry). now is injectable for tests.
func newResultCache(maxEntries int, maxBytes int64, ttl time.Duration, now func() time.Time) *resultCache {
	if now == nil {
		now = time.Now
	}
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ttl:        ttl,
		now:        now,
		ll:         list.New(),
		index:      map[uint64]*list.Element{},
	}
}

// get returns the cached body for key and marks it most recently used.
// Expired entries are removed and reported as misses.
func (c *resultCache) get(key uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.stats.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.stats.expirations++
		c.stats.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.hits++
	return e.body, true
}

// put stores body under key, evicting least-recently-used entries until
// both bounds hold. A body larger than the byte bound is not cached.
func (c *resultCache) put(key uint64, body []byte) {
	if c.maxEntries <= 0 || int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		// Deterministic engine: same key means same body. Refresh
		// recency and expiry rather than storing a duplicate.
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		e.expires = c.expiry()
		c.ll.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, body: body, expires: c.expiry()}
	c.index[key] = c.ll.PushFront(e)
	c.bytes += int64(len(body))
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.stats.evictions++
	}
}

// expiry returns the deadline for an entry stored now.
func (c *resultCache) expiry() time.Time {
	if c.ttl <= 0 {
		return time.Time{}
	}
	return c.now().Add(c.ttl)
}

// removeLocked unlinks one entry. Callers hold c.mu.
func (c *resultCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= int64(len(e.body))
}

// len returns the number of live entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// sizeBytes returns the total cached body bytes.
func (c *resultCache) sizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// snapshot returns the lifetime counters.
func (c *resultCache) snapshot() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
