package server

import (
	"math"

	"repro/internal/campaign"
	"repro/internal/stats"
)

// Request hashing. Because the engine is deterministic (fixed config →
// byte-identical output at any worker count, see internal/campaign),
// responses are content-addressable: a canonical 64-bit hash of the
// request doubles as the cache key and the coalescing key. The hash
// folds every semantically significant field — in a fixed order —
// through stats.SplitMix64, with strings condensed by stats.HashLabel,
// so two requests collide only if they describe the same computation.

// hashVersion is folded first; bump it whenever the request semantics
// or the folding order changes, which invalidates every cached entry.
const hashVersion = 1

// fold mixes one 64-bit label into the running hash.
func fold(h, v uint64) uint64 { return stats.SplitMix64(h ^ v) }

// foldString mixes a string label into the running hash.
func foldString(h uint64, s string) uint64 { return fold(h, stats.HashLabel(s)) }

// foldFloat mixes a float64 by bit pattern, so -0 vs 0 and every NaN
// payload hash distinctly (such requests are rejected before hashing
// anyway).
func foldFloat(h uint64, f float64) uint64 { return fold(h, math.Float64bits(f)) }

// foldBool mixes a bool as 0/1.
func foldBool(h uint64, b bool) uint64 {
	if b {
		return fold(h, 1)
	}
	return fold(h, 0)
}

// hashCampaign returns the canonical key of a campaign request.
// Machine order matters: per-machine engines are seeded by index, so
// ["a","b"] and ["b","a"] are different computations.
func hashCampaign(c campaign.Config) uint64 {
	h := foldString(fold(0, hashVersion), "campaign")
	h = fold(h, uint64(len(c.Machines)))
	for _, m := range c.Machines {
		h = foldString(h, m)
	}
	h = foldFloat(h, c.LoIntensity)
	h = foldFloat(h, c.HiIntensity)
	h = fold(h, uint64(c.Points))
	h = fold(h, uint64(c.Reps))
	h = foldFloat(h, c.VolumeBytes)
	h = foldBool(h, c.UsePowerMon)
	h = fold(h, uint64(c.Seed))
	h = foldModel(h, c.Model)
	return h
}

// foldModel mixes a model selector into the running hash — only when
// one is named. An empty selector folds nothing, so every default
// request keys exactly as it did before the model field existed (no
// invalidation of pre-model cache entries, no hashVersion bump), while
// an explicit selector — including an explicit "analytic", whose
// response body differs by its echoed model field — keys distinctly.
func foldModel(h uint64, name string) uint64 {
	if name == "" {
		return h
	}
	return foldString(h, name)
}

// EvalKey returns the canonical content hash of one eval-shaped
// computation — the exact key POST /v1/eval uses for caching. It is
// exported for the cluster simulator: a simulated replica addresses its
// result cache with the very hash the production server would compute
// for the same (machine, precision, work, intensity) request, so
// fleet-level hit rates come from the production keying scheme.
func EvalKey(machineKey, precision string, work, intensity float64) uint64 {
	return hashEval(evalRequest{Machine: machineKey, Precision: precision, Work: work, Intensity: intensity})
}

// hashEval returns the canonical key of an eval request. The "eval"
// domain label keeps eval and campaign keys from ever colliding.
func hashEval(q evalRequest) uint64 {
	h := foldString(fold(0, hashVersion), "eval")
	h = foldString(h, q.Machine)
	h = foldString(h, q.Precision)
	h = foldFloat(h, q.Work)
	h = foldFloat(h, q.Intensity)
	h = foldModel(h, q.Model)
	return h
}

// hashEvalBatch returns the canonical key of a batch eval request:
// one hash for the whole batch, folding every point in order after
// checkEvalBatch has filled the work defaults (so an omitted work
// column keys identically to an explicit all-default one).
func hashEvalBatch(q evalBatchRequest) uint64 {
	h := foldString(fold(0, hashVersion), "evalbatch")
	h = foldString(h, q.Machine)
	h = foldString(h, q.Precision)
	h = fold(h, uint64(len(q.Intensities)))
	for i := range q.Intensities {
		h = foldFloat(h, q.Work[i])
		h = foldFloat(h, q.Intensities[i])
	}
	h = foldModel(h, q.Model)
	return h
}
