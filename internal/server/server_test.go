package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
)

// newTestServer returns a Server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// post sends a JSON body and returns the response with its body read.
func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

func TestMachinesCatalog(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/machines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Machines []machineSummary `json:"machines"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Machines) != len(machine.Catalog()) {
		t.Fatalf("got %d machines, want %d", len(out.Machines), len(machine.Catalog()))
	}
	for i := 1; i < len(out.Machines); i++ {
		if out.Machines[i-1].Key >= out.Machines[i].Key {
			t.Error("machines not sorted by key")
		}
	}
	var gtx *machineSummary
	for i := range out.Machines {
		if out.Machines[i].Key == "gtx580" {
			gtx = &out.Machines[i]
		}
	}
	if gtx == nil {
		t.Fatal("gtx580 missing from catalog response")
	}
	if gtx.Bandwidth != 192.4e9 || !gtx.RaceToHalt {
		t.Errorf("gtx580 summary wrong: %+v", gtx)
	}
}

func TestEvalMatchesModel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/eval",
		`{"machine":"gtx580","precision":"double","work":1e9,"intensity":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out evalResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	p := core.FromMachine(machine.GTX580(), machine.Double)
	k := core.KernelAt(1e9, 4)
	for name, pair := range map[string][2]float64{
		"time":    {out.Time, p.Time(k)},
		"energy":  {out.Energy, p.Energy(k)},
		"power":   {out.AvgPower, p.AveragePower(k)},
		"Bτ":      {out.BalanceTime, p.BalanceTime()},
		"B̂ε(y½)": {out.HalfEfficiency, p.HalfEfficiencyIntensity()},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s = %v, want %v", name, pair[0], pair[1])
		}
	}
	if out.TimeBound != "compute-bound" {
		t.Errorf("I=4 > Bτ=1.03 should be compute-bound, got %q", out.TimeBound)
	}

	// Warm path: identical request served from cache, byte-identical.
	resp2, body2 := post(t, ts.URL+"/v1/eval",
		`{"machine":"gtx580","precision":"double","work":1e9,"intensity":4}`)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("second eval X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if body2 != body {
		t.Error("cached eval body differs from computed body")
	}
	if resp.Header.Get("X-Request-Hash") != resp2.Header.Get("X-Request-Hash") {
		t.Error("request hash unstable across identical requests")
	}
}

func TestEvalRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed JSON", `{machine:`, "bad request body"},
		{"unknown field", `{"machina":"gtx580"}`, "unknown field"},
		{"unknown machine", `{"machine":"cray1","intensity":1}`, "unknown machine"},
		{"unknown precision", `{"machine":"gtx580","precision":"half","intensity":1}`, "unknown precision"},
		{"zero intensity", `{"machine":"gtx580","intensity":0}`, "intensity must be positive"},
		{"negative work", `{"machine":"gtx580","work":-1,"intensity":2}`, "work must be positive"},
		{"overflowing number", `{"machine":"gtx580","intensity":1e999}`, "bad request body"},
		{"NaN literal", `{"machine":"gtx580","intensity":NaN}`, "bad request body"},
		{"trailing garbage", `{"machine":"gtx580","intensity":1} extra`, "bad request body"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/eval", c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (%s)", resp.StatusCode, body)
			}
			if !strings.Contains(body, c.wantErr) {
				t.Errorf("error body %q missing %q", body, c.wantErr)
			}
		})
	}
}

// TestEvalRejectsNonFinite covers the programmatic path JSON cannot
// express: NaN/Inf fields must fail validation, not poison the cache.
func TestEvalRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		q := evalRequest{Machine: "gtx580", Intensity: v}
		if err := checkEval(&q); err == nil {
			t.Errorf("intensity %v accepted", v)
		}
		q = evalRequest{Machine: "gtx580", Work: v, Intensity: 1}
		if err := checkEval(&q); err == nil {
			t.Errorf("work %v accepted", v)
		}
	}
}

func TestCampaignRejectsBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed JSON", `{"machines":`, "bad request body"},
		{"no machines", `{}`, "no machines"},
		{"unknown machine", `{"machines":["nope"],"lo_intensity":0.25,"hi_intensity":16,"points":5,"reps":1,"volume_bytes":1048576}`, "unknown machine"},
		{"inverted range", `{"machines":["gtx580"],"lo_intensity":16,"hi_intensity":0.25,"points":5,"reps":1,"volume_bytes":1048576}`, "bad intensity range"},
		{"oversized grid (engine cap)", `{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,"points":100000,"reps":1,"volume_bytes":1048576}`, "exceed"},
		{"oversized grid (server cap)", `{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,"points":8192,"reps":1,"volume_bytes":1048576}`, "server's limit"},
		{"oversized reps (server cap)", `{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,"points":5,"reps":999999,"volume_bytes":1048576}`, "exceed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/campaign", c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (%s)", resp.StatusCode, body)
			}
			if !strings.Contains(body, c.wantErr) {
				t.Errorf("error body %q missing %q", body, c.wantErr)
			}
		})
	}
	// NaN/Inf cannot ride in over JSON, but the validation layer the
	// handler uses must reject them for programmatic callers too —
	// through campaign.Validate's non-finite guard.
	for _, v := range []float64{math.NaN(), math.Inf(1)} {
		cfg := campaign.Default()
		cfg.LoIntensity = v
		if err := s.checkCampaign(cfg); err == nil || !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("LoIntensity=%v: err = %v, want non-finite rejection", v, err)
		}
		cfg = campaign.Default()
		cfg.VolumeBytes = v
		if err := s.checkCampaign(cfg); err == nil || !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("VolumeBytes=%v: err = %v, want non-finite rejection", v, err)
		}
	}
}

// stubEngine counts executions and returns a deterministic result
// without the real engine's cost. gate, when non-nil, delays completion
// so concurrent requests pile onto the flight.
type stubEngine struct {
	runs atomic.Int64
	gate chan struct{}
}

// fn returns the engineFunc for the stub.
func (e *stubEngine) fn(ctx context.Context, cfg campaign.Config, workers int) (*campaign.Result, error) {
	e.runs.Add(1)
	if e.gate != nil {
		select {
		case <-e.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &campaign.Result{Config: cfg, Machines: []campaign.MachineResult{{
		Key: cfg.Machines[0], Name: "stub", Points: cfg.Points,
	}}}, nil
}

const smallCampaign = `{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,"points":5,"reps":2,"volume_bytes":1048576,"seed":7}`

// TestCampaignCoalescing64 is the tentpole acceptance test: 64
// concurrent identical campaign requests trigger exactly one engine
// execution and every response body is byte-identical. A 65th request
// after completion is served from the cache, still without touching the
// engine.
func TestCampaignCoalescing64(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	eng := &stubEngine{gate: make(chan struct{})}
	s.engine = eng.fn

	const n = 64
	bodies := make([]string, n)
	sources := make([]string, n)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	started.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			resp, err := http.Post(ts.URL+"/v1/campaign", "application/json",
				strings.NewReader(smallCampaign))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			bodies[i] = string(data)
			sources[i] = resp.Header.Get("X-Cache")
		}(i)
	}
	// Release the engine only after every client goroutine is launched,
	// so the flight is guaranteed to still be open when most requests
	// arrive; any straggler that misses the flight hits the cache —
	// either way the engine must run exactly once.
	started.Wait()
	time.Sleep(50 * time.Millisecond)
	close(eng.gate)
	wg.Wait()

	if got := eng.runs.Load(); got != 1 {
		t.Fatalf("engine ran %d times for 64 identical requests, want exactly 1", got)
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	var miss, coalesced, hit int
	for _, src := range sources {
		switch src {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		case "hit":
			hit++
		default:
			t.Errorf("unexpected X-Cache %q", src)
		}
	}
	if miss != 1 {
		t.Errorf("flight leaders = %d, want exactly 1 (coalesced %d, hit %d)", miss, coalesced, hit)
	}

	// Cache-hit path: one more identical request, engine untouched.
	resp, body := post(t, ts.URL+"/v1/campaign", smallCampaign)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("post-flight X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	if body != bodies[0] {
		t.Error("cached body differs from flight body")
	}
	if got := eng.runs.Load(); got != 1 {
		t.Errorf("cache hit invoked the engine (runs = %d)", got)
	}
	// Telemetry agrees: 65 requests, 1 engine run.
	if got := s.reg.Counter("engine_runs_total").Value(); got != 1 {
		t.Errorf("engine_runs_total = %d, want 1", got)
	}
	if got := s.reg.Counter("requests_campaign_total").Value(); got != n+1 {
		t.Errorf("requests_campaign_total = %d, want %d", got, n+1)
	}
}

// TestCampaignDistinctRequestsDoNotCoalesce guards the inverse: two
// configs differing only in seed run the engine twice.
func TestCampaignDistinctRequestsDoNotCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	eng := &stubEngine{}
	s.engine = eng.fn
	post(t, ts.URL+"/v1/campaign", smallCampaign)
	post(t, ts.URL+"/v1/campaign", strings.Replace(smallCampaign, `"seed":7`, `"seed":8`, 1))
	if got := eng.runs.Load(); got != 2 {
		t.Errorf("engine ran %d times for 2 distinct configs, want 2", got)
	}
}

// TestCampaignRealEngineMatchesDirectRun drives the real engine through
// HTTP once and checks the body equals a direct campaign.RunParallel
// call — the determinism guarantee that makes caching sound.
func TestCampaignRealEngineMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real campaign engine")
	}
	_, ts := newTestServer(t, Config{})
	cfgJSON := `{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,"points":4,"reps":1,"volume_bytes":1048576,"seed":11}`
	resp, body := post(t, ts.URL+"/v1/campaign", cfgJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	cfg, err := campaign.ParseConfig([]byte(cfgJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.RunParallel(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if body != string(want)+"\n" {
		t.Error("served campaign body differs from direct engine run")
	}
}

// TestCampaignRequestTimeout: an engine that outlives the request
// timeout is cancelled and reported as 504.
func TestCampaignRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 30 * time.Millisecond})
	eng := &stubEngine{gate: make(chan struct{})} // never released
	s.engine = eng.fn
	resp, body := post(t, ts.URL+"/v1/campaign", smallCampaign)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504 (%s)", resp.StatusCode, body)
	}
	// The failure was not cached: a retry re-runs the engine.
	close(eng.gate)
	resp, _ = post(t, ts.URL+"/v1/campaign", smallCampaign)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("retry after timeout: status = %d", resp.StatusCode)
	}
	if got := eng.runs.Load(); got != 2 {
		t.Errorf("engine runs = %d, want 2 (failed run must not be cached)", got)
	}
}

func TestMetricsPage(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/eval", `{"machine":"fermi","intensity":2}`)
	post(t, ts.URL+"/v1/eval", `{"machine":"fermi","intensity":2}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(data)
	for _, want := range []string{
		"requests_eval_total 2",
		"cache_hits_total 1",
		"cache_misses_total 1",
		"cache_entries 1",
		"workers_budget",
		"latency_eval_count 2",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q:\n%s", want, page)
		}
	}
}

// TestMethodNotAllowed: the route table rejects wrong verbs.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/campaign")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/campaign status = %d, want 405", resp.StatusCode)
	}
}

// TestServerSharedWorkerBudget: the worker budget bounds the TOTAL
// engine workers across concurrent distinct campaigns. The first
// campaign takes the whole budget; a second distinct campaign queues
// (its engine must not start) until the first releases, then runs with
// the full budget — bounded concurrency, no starvation, never
// oversubscription.
func TestServerSharedWorkerBudget(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 4})
	grants := make(chan int, 2)
	var running atomic.Int64
	var peak atomic.Int64
	release := make(chan struct{})
	s.engine = func(ctx context.Context, cfg campaign.Config, workers int) (*campaign.Result, error) {
		if r := running.Add(int64(workers)); r > peak.Load() {
			peak.Store(r)
		}
		defer running.Add(int64(-workers))
		grants <- workers
		if cfg.Seed == 1 { // only the first campaign is gated
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &campaign.Result{Config: cfg}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for _, seed := range []int{1, 2} {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			body := strings.Replace(smallCampaign, `"seed":7`, fmt.Sprintf(`"seed":%d`, seed), 1)
			resp, err := http.Post(ts.URL+"/v1/campaign", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(seed)
		if seed == 1 {
			<-grants // campaign 1 is running and holds the budget
		}
	}
	// Campaign 2 must be queued on the budget, not running.
	time.Sleep(50 * time.Millisecond)
	if got := running.Load(); got != 4 {
		t.Errorf("workers in use while campaign 1 holds the budget = %d, want 4", got)
	}
	select {
	case g := <-grants:
		t.Fatalf("campaign 2 started with %d workers while the budget was exhausted", g)
	default:
	}
	close(release)
	g2 := <-grants
	wg.Wait()
	if g2 != 4 {
		t.Errorf("campaign 2 granted %d workers after release, want the full budget of 4", g2)
	}
	if peak.Load() > 4 {
		t.Errorf("peak concurrent workers = %d, exceeding the budget of 4", peak.Load())
	}
	if s.budget.InUse() != 0 {
		t.Errorf("budget tokens leaked: %d in use", s.budget.InUse())
	}
}

// TestMetricsRegistryExposed: the accessor exists for embedding callers.
func TestMetricsRegistryExposed(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if s.Metrics() == nil {
		t.Fatal("nil registry")
	}
	var _ *metrics.Registry = s.Metrics()
}
