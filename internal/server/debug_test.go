package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// traceDump is the subset of the Chrome trace envelope the tests read.
type traceDump struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func getTrace(t *testing.T, url string) traceDump {
	t.Helper()
	resp, err := http.Get(url + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var dump traceDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	return dump
}

// spanArgs returns the args of the first span with the given name and
// whether one was found.
func (d traceDump) spanArgs(name string) (map[string]any, bool) {
	for _, ev := range d.TraceEvents {
		if ev.Name == name {
			return ev.Args, true
		}
	}
	return nil, false
}

func (d traceDump) count(name string) int {
	n := 0
	for _, ev := range d.TraceEvents {
		if ev.Name == name {
			n++
		}
	}
	return n
}

// TestDebugSurfaceOffByDefault: without Config.Debug the debug
// endpoints don't exist and no tracer is allocated.
func TestDebugSurfaceOffByDefault(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if s.Tracer() != nil {
		t.Error("Tracer() non-nil without Debug")
	}
	for _, path := range []string{"/debug/trace", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestDebugTraceRecordsEvalSpans: with Debug on, each eval request
// leaves an http.eval span tagged with its cache provenance, the spans
// feed span_* latency histograms on /metrics, and ?reset=1 clears the
// buffer.
func TestDebugTraceRecordsEvalSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{Debug: true})
	body := `{"machine":"gtx580","intensity":4}`
	post(t, ts.URL+"/v1/eval", body) // miss
	post(t, ts.URL+"/v1/eval", body) // hit

	dump := getTrace(t, ts.URL)
	if got := dump.count("http.eval"); got != 2 {
		t.Fatalf("http.eval spans = %d, want 2", got)
	}
	seen := map[string]bool{}
	for _, ev := range dump.TraceEvents {
		if ev.Name != "http.eval" {
			continue
		}
		if ev.Ph != "X" {
			t.Errorf("span phase = %q, want X", ev.Ph)
		}
		cache, _ := ev.Args["cache"].(string)
		seen[cache] = true
	}
	if !seen["miss"] || !seen["hit"] {
		t.Errorf("cache tags = %v, want both miss and hit", seen)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "span_http_eval") {
		t.Error("/metrics is missing the span_http_eval latency histogram")
	}

	// Dump-and-reset leaves an empty buffer for the next capture.
	resp, err = http.Get(ts.URL + "/debug/trace?reset=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dump = getTrace(t, ts.URL); len(dump.TraceEvents) != 0 {
		t.Errorf("buffer holds %d spans after reset", len(dump.TraceEvents))
	}
}

// TestDebugTraceRecordsCampaignSpans: a campaign request's shared
// engine execution lands in the same trace as the request span, which
// is tagged with engine_run/cache provenance.
func TestDebugTraceRecordsCampaignSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real campaign engine")
	}
	_, ts := newTestServer(t, Config{Debug: true})
	cfgJSON := `{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,"points":4,"reps":2,"volume_bytes":1048576,"seed":7}`
	resp, body := post(t, ts.URL+"/v1/campaign", cfgJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign status = %d: %s", resp.StatusCode, body)
	}

	dump := getTrace(t, ts.URL)
	args, ok := dump.spanArgs("http.campaign")
	if !ok {
		t.Fatal("no http.campaign span recorded")
	}
	if args["cache"] != "miss" || args["engine_run"] != true {
		t.Errorf("http.campaign args = %v, want cache=miss engine_run=true", args)
	}
	if _, ok := dump.spanArgs("campaign"); !ok {
		t.Error("engine execution left no campaign span")
	}
	// machines × precisions × points × reps = 1 × 2 × 4 × 2.
	if got := dump.count("sweep.rep"); got != 16 {
		t.Errorf("sweep.rep spans = %d, want 16", got)
	}
}

// TestDebugTracedResponseMatchesUntraced: tracing must not perturb the
// engine — a Debug server serves byte-identical campaign results.
func TestDebugTracedResponseMatchesUntraced(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real campaign engine")
	}
	_, ts := newTestServer(t, Config{Debug: true})
	cfgJSON := `{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":16,"points":4,"reps":1,"volume_bytes":1048576,"seed":11}`
	_, body := post(t, ts.URL+"/v1/campaign", cfgJSON)
	cfg, err := campaign.ParseConfig([]byte(cfgJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.RunParallel(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if body != string(want)+"\n" {
		t.Error("traced campaign body differs from untraced direct run")
	}
}

// TestDebugPprofIndex: the pprof index is mounted under Debug.
func TestDebugPprofIndex(t *testing.T) {
	_, ts := newTestServer(t, Config{Debug: true})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}
