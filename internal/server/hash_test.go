package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
)

func TestHashCampaignCanonical(t *testing.T) {
	base := campaign.Default()
	h := hashCampaign(base)
	if h != hashCampaign(campaign.Default()) {
		t.Error("identical configs hash differently")
	}
	// Every semantic field must reach the hash.
	mutations := map[string]func(*campaign.Config){
		"machines":     func(c *campaign.Config) { c.Machines = []string{"gtx580"} },
		"machineOrder": func(c *campaign.Config) { c.Machines = []string{"i7-950", "gtx580"} },
		"lo":           func(c *campaign.Config) { c.LoIntensity = 0.5 },
		"hi":           func(c *campaign.Config) { c.HiIntensity = 32 },
		"points":       func(c *campaign.Config) { c.Points = 12 },
		"reps":         func(c *campaign.Config) { c.Reps = 51 },
		"volume":       func(c *campaign.Config) { c.VolumeBytes = 1 << 27 },
		"powermon":     func(c *campaign.Config) { c.UsePowerMon = true },
		"seed":         func(c *campaign.Config) { c.Seed = 43 },
	}
	for name, mutate := range mutations {
		c := campaign.Default()
		mutate(&c)
		if hashCampaign(c) == h {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
	// Machine-list length is folded, so a boundary shift cannot alias:
	// ["ab"] vs ["a","b"]-style confusions differ by the length label.
	a := campaign.Default()
	a.Machines = []string{"gtx580"}
	b := campaign.Default()
	b.Machines = []string{"gtx580", "gtx580"}
	if hashCampaign(a) == hashCampaign(b) {
		t.Error("list length not folded")
	}
}

func TestHashEvalDomainSeparation(t *testing.T) {
	q := evalRequest{Machine: "gtx580", Precision: "double", Work: 1e9, Intensity: 4}
	if hashEval(q) == hashEval(evalRequest{Machine: "gtx580", Precision: "double", Work: 1e9, Intensity: 8}) {
		t.Error("intensity not hashed")
	}
	if hashEval(q) == hashEval(evalRequest{Machine: "gtx580", Precision: "single", Work: 1e9, Intensity: 4}) {
		t.Error("precision not hashed")
	}
	// Eval and campaign keys live in disjoint domains even for the
	// degenerate empty values.
	if hashEval(evalRequest{}) == hashCampaign(campaign.Config{}) {
		t.Error("eval/campaign hash domains collide")
	}
}

func TestHashEvalBatchCanonical(t *testing.T) {
	base := evalBatchRequest{Machine: "gtx580", Precision: "double",
		Work: []float64{1e9, 2e9}, Intensities: []float64{1, 4}}
	h := hashEvalBatch(base)
	same := evalBatchRequest{Machine: "gtx580", Precision: "double",
		Work: []float64{1e9, 2e9}, Intensities: []float64{1, 4}}
	if hashEvalBatch(same) != h {
		t.Error("identical batches hash differently")
	}
	mutations := map[string]evalBatchRequest{
		"machine":   {Machine: "fermi", Precision: "double", Work: []float64{1e9, 2e9}, Intensities: []float64{1, 4}},
		"precision": {Machine: "gtx580", Precision: "single", Work: []float64{1e9, 2e9}, Intensities: []float64{1, 4}},
		"work":      {Machine: "gtx580", Precision: "double", Work: []float64{1e9, 3e9}, Intensities: []float64{1, 4}},
		"intensity": {Machine: "gtx580", Precision: "double", Work: []float64{1e9, 2e9}, Intensities: []float64{1, 8}},
		"order":     {Machine: "gtx580", Precision: "double", Work: []float64{2e9, 1e9}, Intensities: []float64{4, 1}},
		"length":    {Machine: "gtx580", Precision: "double", Work: []float64{1e9}, Intensities: []float64{1}},
	}
	for name, q := range mutations {
		if hashEvalBatch(q) == h {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
	// A batch of one never collides with the equivalent single eval key:
	// the domain labels differ.
	one := evalBatchRequest{Machine: "gtx580", Precision: "double",
		Work: []float64{1e9}, Intensities: []float64{4}}
	if hashEvalBatch(one) == hashEval(evalRequest{Machine: "gtx580", Precision: "double", Work: 1e9, Intensity: 4}) {
		t.Error("evalbatch/eval hash domains collide")
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var runs atomic.Int64
	gate := make(chan struct{})
	const n = 32
	var wg sync.WaitGroup
	leaders := make([]bool, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, leader, err := g.do(context.Background(), 99, func() ([]byte, error) {
				runs.Add(1)
				<-gate
				return []byte("shared"), nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			leaders[i] = leader
			bodies[i] = body
		}(i)
	}
	// Wait until the leader is inside fn, then release.
	for g.inFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times", runs.Load())
	}
	var nLeaders int
	for i := range leaders {
		if leaders[i] {
			nLeaders++
		}
		if string(bodies[i]) != "shared" {
			t.Errorf("waiter %d got %q", i, bodies[i])
		}
	}
	if nLeaders != 1 {
		t.Errorf("%d leaders, want 1", nLeaders)
	}
	if g.inFlight() != 0 {
		t.Errorf("flight leaked: %d in flight", g.inFlight())
	}
}

// TestFlightGroupWaiterCancellation: a waiter abandoning the flight
// gets its own context error; the flight keeps running and later
// waiters still get the result.
func TestFlightGroupWaiterCancellation(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	started := make(chan struct{})
	var leaderBody []byte
	var leaderErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		leaderBody, _, leaderErr = g.do(context.Background(), 1, func() ([]byte, error) {
			close(started)
			<-gate
			return []byte("late"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.do(ctx, 1, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter err = %v", err)
	}
	close(gate)
	<-done
	if leaderErr != nil || string(leaderBody) != "late" {
		t.Errorf("leader outcome corrupted by waiter cancellation: %q, %v", leaderBody, leaderErr)
	}
}

// TestFlightGroupSequentialReruns: after a flight completes, the next
// request with the same key runs fn again (caching is a separate
// layer).
func TestFlightGroupSequentialReruns(t *testing.T) {
	g := newFlightGroup()
	var runs int
	for i := 0; i < 3; i++ {
		body, leader, err := g.do(context.Background(), 5, func() ([]byte, error) {
			runs++
			return []byte("x"), nil
		})
		if err != nil || !leader || string(body) != "x" {
			t.Fatalf("iteration %d: %q %v %v", i, body, leader, err)
		}
	}
	if runs != 3 {
		t.Errorf("runs = %d, want 3", runs)
	}
}

// TestFlightGroupErrorPropagation: a failing flight hands the same
// error to every waiter and is not retained.
func TestFlightGroupErrorPropagation(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("boom")
	_, _, err := g.do(context.Background(), 2, func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if g.inFlight() != 0 {
		t.Error("failed flight leaked")
	}
}
