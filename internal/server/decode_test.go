package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// The hand-rolled request decoders replace json.Decoder with
// DisallowUnknownFields on the hot POST endpoints. These tests enforce
// the replacement differentially: for every body — valid, hostile, or
// truncated — the custom decoder must agree with the stdlib pipeline it
// replaced on (a) whether the body is accepted and (b) the exact
// decoded struct when it is. The stdlib stays the executable
// specification, exactly like the encoder tests in encode_test.go.

// stdlibDecode is the reference pipeline the handlers used before
// PR 10: json.Decoder + DisallowUnknownFields + a trailing-data check.
func stdlibDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// decodeCases is the shared body corpus: every syntactic and semantic
// edge the parser handles, exercised against both request shapes where
// the shape allows.
var decodeCases = []struct {
	name string
	body string
}{
	{"valid", `{"machine":"gtx580","precision":"double","work":1e9,"intensity":4}`},
	{"valid with model", `{"machine":"gtx580","precision":"single","work":2.5e8,"intensity":0.25,"model":"blackbox"}`},
	{"whitespace everywhere", " \t\r\n{ \"machine\" : \"gtx580\" ,\n\"intensity\" :\t4 }\n\t "},
	{"empty object", `{}`},
	{"top-level null", `null`},
	{"case-insensitive keys", `{"MACHINE":"gtx580","Precision":"double","WoRk":1,"INTENSITY":2}`},
	{"kelvin-sign folded key", `{"\u212aachine":"gtx580","intensity":4}`},
	{"escaped exact key", `{"\u006dachine":"gtx580","intensity":4}`},
	{"duplicate key last wins", `{"machine":"i7-950","machine":"gtx580","intensity":1,"intensity":2}`},
	{"null values ignored", `{"machine":null,"precision":null,"work":null,"intensity":3}`},
	{"string escapes", `{"machine":"\u0067tx58\u0030","precision":"a\"b\\c\/d\b\f\n\r\te"}`},
	{"surrogate pair", `{"machine":"\ud83d\ude00"}`},
	{"lone high surrogate", `{"machine":"\ud83dx"}`},
	{"lone low surrogate", `{"machine":"\ude00"}`},
	{"number forms", `{"work":0,"intensity":-0.5}`},
	{"exponent forms", `{"work":1E+9,"intensity":25e-1}`},
	{"huge number overflows", `{"work":1e400}`},
	{"tiny number underflows", `{"work":1e-400}`},
	{"unknown field", `{"machine":"gtx580","bogus":1}`},
	{"unknown escaped field", `{"\u0062ogus":1}`},
	{"wrong type string", `{"machine":42}`},
	{"wrong type number", `{"work":"1e9"}`},
	{"wrong type object", `{"work":{}}`},
	{"top-level array", `[1,2,3]`},
	{"top-level number", `42`},
	{"leading zero", `{"work":01}`},
	{"bare dot", `{"work":1.}`},
	{"dot first", `{"work":.5}`},
	{"bare exponent", `{"work":1e}`},
	{"plus sign", `{"work":+1}`},
	{"bare minus", `{"work":-}`},
	{"trailing garbage", `{"machine":"gtx580"} extra`},
	{"second value", `{"machine":"gtx580"}{}`},
	{"trailing comma", `{"machine":"gtx580",}`},
	{"missing colon", `{"machine" "gtx580"}`},
	{"missing comma", `{"machine":"gtx580" "intensity":4}`},
	{"unterminated object", `{"machine":"gtx580"`},
	{"unterminated string", `{"machine":"gtx`},
	{"unterminated escape", `{"machine":"\`},
	{"bad escape", `{"machine":"\q"}`},
	{"bad unicode escape", `{"machine":"\u00zz"}`},
	{"short unicode escape", `{"machine":"\u00`},
	{"control char in string", "{\"machine\":\"a\x01b\"}"},
	{"empty body", ``},
	{"whitespace body", `   `},
	{"truncated null", `nul`},
}

func TestDecodeEvalMatchesStdlib(t *testing.T) {
	for _, tc := range decodeCases {
		t.Run(tc.name, func(t *testing.T) {
			var want, got evalRequest
			wantErr := stdlibDecode([]byte(tc.body), &want)
			gotErr := decodeEvalRequest([]byte(tc.body), &got)
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("accept/reject mismatch for %q:\n  stdlib: %v\n  custom: %v", tc.body, wantErr, gotErr)
			}
			if wantErr != nil {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("decode mismatch for %q:\n  stdlib: %+v\n  custom: %+v", tc.body, want, got)
			}
		})
	}
}

func TestDecodeEvalBatchMatchesStdlib(t *testing.T) {
	batchOnly := []struct {
		name string
		body string
	}{
		{"valid columns", `{"machine":"gtx580","precision":"double","work":[1e9,2e9],"intensities":[0.25,4]}`},
		{"empty arrays", `{"work":[],"intensities":[]}`},
		{"null columns", `{"work":null,"intensities":null}`},
		{"array whitespace", `{"intensities":[ 1 , 2.5 ,3e0 ]}`},
		{"nested array", `{"intensities":[[1]]}`},
		{"string in array", `{"intensities":[1,"2"]}`},
		{"null in array", `{"intensities":[1,null]}`},
		{"unterminated array", `{"intensities":[1,2`},
		{"missing array comma", `{"intensities":[1 2]}`},
		{"trailing array comma", `{"intensities":[1,]}`},
		{"scalar for column", `{"work":3}`},
	}
	cases := decodeCases
	for _, tc := range batchOnly {
		cases = append(cases, struct {
			name string
			body string
		}{tc.name, tc.body})
	}
	for _, tc := range cases {
		// The eval-shape corpus reuses scalar work/intensity members the
		// batch shape does not have; map them onto the column fields.
		body := strings.ReplaceAll(tc.body, `"work":1e9`, `"work":[1e9]`)
		body = strings.ReplaceAll(body, `"intensity"`, `"intensities"`)
		if strings.Contains(body, `"WoRk"`) || strings.Contains(body, `"work":0`) ||
			strings.Contains(body, `"work":1`) || strings.Contains(body, `"work":+1`) ||
			strings.Contains(body, `"work":.5`) || strings.Contains(body, `"work":-}`) ||
			strings.Contains(body, `"work":"1e9"`) || strings.Contains(body, `"work":{}`) ||
			strings.Contains(body, `"work":01`) {
			// Scalar-typed work bodies exercise column type errors below
			// instead; both decoders must still agree, so keep them.
			body = tc.body
		}
		t.Run(tc.name, func(t *testing.T) {
			var want, got evalBatchRequest
			sc := &batchScratch{}
			wantErr := stdlibDecode([]byte(body), &want)
			gotErr := decodeEvalBatchRequest([]byte(body), &got, sc)
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("accept/reject mismatch for %q:\n  stdlib: %v\n  custom: %v", body, wantErr, gotErr)
			}
			if wantErr != nil {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("decode mismatch for %q:\n  stdlib: %+v\n  custom: %+v", body, want, got)
			}
		})
	}
}

// TestDecodeUnknownFieldWording pins the error contract the handler
// tests rely on: unknown fields surface the stdlib's `json: unknown
// field "x"` wording so bad-request bodies read identically.
func TestDecodeUnknownFieldWording(t *testing.T) {
	var q evalRequest
	err := decodeEvalRequest([]byte(`{"bogus":1}`), &q)
	if err == nil || !strings.Contains(err.Error(), `json: unknown field "bogus"`) {
		t.Fatalf("unknown-field error = %v, want the stdlib wording", err)
	}
	var bq evalBatchRequest
	err = decodeEvalBatchRequest([]byte(`{"intensity":[1]}`), &bq, &batchScratch{})
	if err == nil || !strings.Contains(err.Error(), `json: unknown field "intensity"`) {
		t.Fatalf("batch unknown-field error = %v, want the stdlib wording", err)
	}
}

// TestDecodeBatchNullDoesNotAliasScratch is the regression test for the
// pooled-column hazard: a null column must leave the request field
// untouched rather than exposing a stale slice from a previous request
// that used the same pooled scratch.
func TestDecodeBatchNullDoesNotAliasScratch(t *testing.T) {
	sc := &batchScratch{
		work:        []float64{7, 7, 7},
		intensities: []float64{9, 9},
	}
	var q evalBatchRequest
	body := `{"machine":"gtx580","work":null,"intensities":null}`
	if err := decodeEvalBatchRequest([]byte(body), &q, sc); err != nil {
		t.Fatal(err)
	}
	if q.Work != nil || q.Intensities != nil {
		t.Fatalf("null columns leaked pooled scratch: work=%v intensities=%v", q.Work, q.Intensities)
	}
}

// TestDecodeBatchReusesScratchCapacity pins the whole point of the
// pooled columns: a second decode through the same scratch parses into
// the same backing arrays instead of allocating new ones.
func TestDecodeBatchReusesScratchCapacity(t *testing.T) {
	sc := &batchScratch{}
	var q evalBatchRequest
	body := []byte(`{"work":[1,2,3,4],"intensities":[5,6,7,8]}`)
	if err := decodeEvalBatchRequest(body, &q, sc); err != nil {
		t.Fatal(err)
	}
	first := &sc.work[0]
	q = evalBatchRequest{}
	if err := decodeEvalBatchRequest(body, &q, sc); err != nil {
		t.Fatal(err)
	}
	if &sc.work[0] != first {
		t.Fatal("second decode reallocated the pooled work column")
	}
	if !reflect.DeepEqual(q.Work, []float64{1, 2, 3, 4}) || !reflect.DeepEqual(q.Intensities, []float64{5, 6, 7, 8}) {
		t.Fatalf("second decode parsed %v / %v", q.Work, q.Intensities)
	}
}

// TestDecodeInternsVocabulary verifies warm-path strings resolve to the
// canonical interned copies so decoding a valid request performs no
// string allocation.
func TestDecodeInternsVocabulary(t *testing.T) {
	body := []byte(`{"machine":"gtx580","precision":"double","model":"blackbox"}`)
	var q evalRequest
	if err := decodeEvalRequest(body, &q); err != nil {
		t.Fatal(err)
	}
	if got := intern([]byte("gtx580")); q.Machine != got {
		t.Fatalf("machine %q not interned", q.Machine)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var q evalRequest
		if err := decodeEvalRequest(body, &q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm decode allocates %.1f times per request, want 0", allocs)
	}
}

// TestReadBodyLimit pins readBody's MaxBytesReader-compatible contract:
// exactly maxBytes is accepted, one more byte is "http: request body
// too large", and the pooled buffer round-trips.
func TestReadBodyLimit(t *testing.T) {
	body := strings.Repeat("x", 64)
	r := httptest.NewRequest("POST", "/v1/eval", strings.NewReader(body))
	bp, err := readBody(r, 64)
	if err != nil {
		t.Fatalf("body of exactly maxBytes rejected: %v", err)
	}
	if string(*bp) != body {
		t.Fatalf("readBody returned %d bytes, want %d", len(*bp), len(body))
	}
	releaseBody(bp)

	r = httptest.NewRequest("POST", "/v1/eval", strings.NewReader(body+"y"))
	if _, err := readBody(r, 64); err == nil || !strings.Contains(err.Error(), "request body too large") {
		t.Fatalf("oversized body error = %v", err)
	}

	r = httptest.NewRequest("POST", "/v1/eval", io.MultiReader(
		strings.NewReader(body[:32]), strings.NewReader(body[32:])))
	bp, err = readBody(r, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if string(*bp) != body {
		t.Fatalf("chunked read returned %q", *bp)
	}
	releaseBody(bp)
}
