package server

import (
	"net/http"

	"repro/internal/model"
)

// GET /v1/models: the EnergyModel registry — which model names the
// POST endpoints' "model" field accepts, which one is the default, and
// what each is. The selection surface is documented in docs/MODELS.md;
// per-machine accuracy comes from the scorecard (cmd/scorecard), not
// from this listing.

// modelSummary is one registered model in the GET /v1/models reply.
type modelSummary struct {
	// Name is the registry name the "model" request field accepts.
	Name string `json:"name"`
	// Default marks the model an empty/omitted "model" field selects.
	Default bool `json:"default"`
	// Description is the one-line registry description.
	Description string `json:"description"`
}

// handleModels implements GET /v1/models, sorted by name for stable
// output.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("requests_models_total").Inc()
	names := model.Names()
	out := make([]modelSummary, 0, len(names))
	for _, name := range names {
		out = append(out, modelSummary{
			Name:        name,
			Default:     name == model.DefaultName(),
			Description: model.Describe(name),
		})
	}
	body, err := encodeModels(out)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
