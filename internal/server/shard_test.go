package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// The sharded cache has one correctness story: a single-shard
// ShardedCache IS a ResultCache (byte-exact, counter-exact), and a
// multi-shard one is the same cache partitioned by hash bits with the
// global bounds divided per shard. These tests pin both halves
// differentially, then hammer a real Server under -race with exact
// counter assertions to prove the sharded accounting adds up the way
// the single-lock cache's did.

// shardTestClock is a hand-advanced clock for TTL differential tests.
type shardTestClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *shardTestClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *shardTestClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// splitmixNext is a tiny deterministic PRNG for op sequences (the repo
// convention: no math/rand in differential tests, the sequence is part
// of the spec).
func splitmixNext(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4490d649bb0e1
	return z ^ (z >> 31)
}

// TestShardedCacheSingleShardMatchesFlat drives an identical randomized
// op sequence — puts, gets, peeks, refreshes, TTL expiry via a shared
// fake clock — through a one-shard ShardedCache and a flat ResultCache
// and requires byte-exact results and identical lifetime counters at
// every step.
func TestShardedCacheSingleShardMatchesFlat(t *testing.T) {
	clk := &shardTestClock{t: time.Unix(1700000000, 0)}
	const maxEntries, maxBytes = 8, 256
	ttl := 10 * time.Second
	flat := NewResultCache(maxEntries, maxBytes, ttl, clk.now)
	sharded := NewShardedCache(1, maxEntries, maxBytes, ttl, clk.now)
	if got := sharded.Shards(); got != 1 {
		t.Fatalf("Shards() = %d, want 1", got)
	}

	seed := uint64(42)
	for step := 0; step < 4000; step++ {
		r := splitmixNext(&seed)
		key := r % 16
		switch (r >> 32) % 5 {
		case 0, 1: // Put (duplicates refresh)
			body := []byte(fmt.Sprintf("body-%d-%d", key, r%3))
			flat.Put(key, body)
			sharded.Put(key, body)
		case 2: // Get
			fb, fok := flat.Get(key)
			sb, sok := sharded.Get(key)
			if fok != sok || string(fb) != string(sb) {
				t.Fatalf("step %d: Get(%d) = (%q,%v) flat vs (%q,%v) sharded", step, key, fb, fok, sb, sok)
			}
		case 3: // Peek
			if fp, sp := flat.Peek(key), sharded.Peek(key); fp != sp {
				t.Fatalf("step %d: Peek(%d) = %v flat vs %v sharded", step, key, fp, sp)
			}
		case 4: // advance the clock, occasionally past the TTL
			d := time.Duration(r%4) * 3 * time.Second
			clk.advance(d)
		}
		if flat.Len() != sharded.Len() || flat.SizeBytes() != sharded.SizeBytes() {
			t.Fatalf("step %d: len/bytes diverge: flat (%d,%d) vs sharded (%d,%d)",
				step, flat.Len(), flat.SizeBytes(), sharded.Len(), sharded.SizeBytes())
		}
		if fs, ss := flat.Snapshot(), sharded.Snapshot(); fs != ss {
			t.Fatalf("step %d: stats diverge: flat %+v vs sharded %+v", step, fs, ss)
		}
	}
	if s := flat.Snapshot(); s.Hits == 0 || s.Misses == 0 || s.Evictions == 0 || s.Expirations == 0 {
		t.Fatalf("op sequence failed to exercise all counters: %+v", s)
	}
}

// TestShardedCacheShardRounding pins the shard-count normalization:
// powers of two pass through, everything else rounds up, and degenerate
// requests get one shard.
func TestShardedCacheShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := NewShardedCache(tc.in, 64, 1<<20, 0, nil).Shards(); got != tc.want {
			t.Errorf("NewShardedCache(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestShardedCacheAggregateBounds fills a multi-shard cache far past
// its bounds and checks the aggregate accounting: entries and bytes
// never exceed the configured global bounds, every reported byte
// belongs to a retrievable entry, and evictions are counted.
func TestShardedCacheAggregateBounds(t *testing.T) {
	const shards, maxEntries, maxBytes = 8, 64, int64(4096)
	sc := NewShardedCache(shards, maxEntries, maxBytes, 0, nil)
	body := make([]byte, 32)
	var keys []uint64
	seed := uint64(7)
	for i := 0; i < 1000; i++ {
		key := splitmixNext(&seed)
		keys = append(keys, key)
		sc.Put(key, body)
		if n := sc.Len(); n > maxEntries {
			t.Fatalf("after %d puts: %d entries exceed the global bound %d", i+1, n, maxEntries)
		}
		if b := sc.SizeBytes(); b > maxBytes {
			t.Fatalf("after %d puts: %d bytes exceed the global bound %d", i+1, b, maxBytes)
		}
	}
	live := 0
	for _, key := range keys {
		if sc.Peek(key) {
			live++
		}
	}
	if live != sc.Len() {
		t.Fatalf("Peek finds %d live entries but Len() reports %d", live, sc.Len())
	}
	if got, want := sc.SizeBytes(), int64(live*len(body)); got != want {
		t.Fatalf("SizeBytes() = %d, want %d (%d live entries × %d bytes)", got, want, live, len(body))
	}
	if s := sc.Snapshot(); s.Evictions != uint64(len(keys)-live) {
		t.Fatalf("evictions = %d, want %d (stored %d keys, %d live)", s.Evictions, len(keys)-live, len(keys), live)
	}
}

// shardStressBodies builds the no-eviction request universe for the
// accounting tests: distinct /v1/eval points and /v1/evalbatch columns,
// plus the stub campaign. Distinct intensities hash to distinct keys.
func shardStressBodies(evalKeys, batchKeys int) (evals, batches []string) {
	for i := 0; i < evalKeys; i++ {
		evals = append(evals,
			fmt.Sprintf(`{"machine":"gtx580","precision":"double","work":1e9,"intensity":%d.5}`, i+1))
	}
	for i := 0; i < batchKeys; i++ {
		batches = append(batches,
			fmt.Sprintf(`{"machine":"i7-950","precision":"single","intensities":[%d,%d.25]}`, i+1, i+1))
	}
	return evals, batches
}

// serveOK posts body to path on h and returns the response body,
// failing tb on a non-200.
func serveOK(tb testing.TB, h http.Handler, path, body string) string {
	tb.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		tb.Fatalf("%s: status %d: %s", path, w.Code, w.Body.String())
	}
	return w.Body.String()
}

// TestShardedServerMatchesSingleLockServer runs identical deterministic
// traffic against a 1-shard server (the pre-PR-10 single-lock
// configuration) and a 16-shard server, and requires byte-identical
// response bodies and identical end-state counters. Sharding must be
// invisible to everything but lock contention.
func TestShardedServerMatchesSingleLockServer(t *testing.T) {
	single := New(Config{CacheShards: 1})
	sharded := New(Config{CacheShards: 16})
	t.Cleanup(single.Close)
	t.Cleanup(sharded.Close)
	single.engine = (&stubEngine{}).fn
	sharded.engine = (&stubEngine{}).fn

	evals, batches := shardStressBodies(6, 4)
	paths := make([]string, 0, len(evals)+len(batches)+1)
	bodies := make([]string, 0, cap(paths))
	for _, b := range evals {
		paths, bodies = append(paths, "/v1/eval"), append(bodies, b)
	}
	for _, b := range batches {
		paths, bodies = append(paths, "/v1/evalbatch"), append(bodies, b)
	}
	paths, bodies = append(paths, "/v1/campaign"), append(bodies, smallCampaign)

	for round := 0; round < 3; round++ { // round 0 misses, rounds 1-2 hit
		for i := range paths {
			got := serveOK(t, sharded.Handler(), paths[i], bodies[i])
			want := serveOK(t, single.Handler(), paths[i], bodies[i])
			if got != want {
				t.Fatalf("round %d %s: sharded body differs from single-lock body:\n got: %q\nwant: %q",
					round, paths[i], got, want)
			}
		}
	}
	if s1, s16 := single.cache.Snapshot(), sharded.cache.Snapshot(); s1 != s16 {
		t.Fatalf("cache stats diverge: single %+v vs sharded %+v", s1, s16)
	}
	if l1, l16 := single.cache.Len(), sharded.cache.Len(); l1 != l16 {
		t.Fatalf("cache entries diverge: single %d vs sharded %d", l1, l16)
	}
	for _, name := range []string{
		"requests_eval_total", "requests_evalbatch_total", "requests_campaign_total",
		"cache_hits_total", "cache_misses_total", "eval_computes_total",
		"evalbatch_computes_total", "engine_runs_total", "coalesced_total",
	} {
		if v1, v16 := single.reg.Counter(name).Value(), sharded.reg.Counter(name).Value(); v1 != v16 {
			t.Fatalf("%s diverges: single %d vs sharded %d", name, v1, v16)
		}
	}
}

// TestShardedServerContentionExactCounters is the -race stress test:
// many goroutines hammer mixed endpoints over a no-eviction key
// universe, and afterwards the counters must balance EXACTLY — sharded
// per-shard accounting sums to the same invariants the single-lock
// cache guaranteed:
//
//	hits + misses          == successful requests      (one Get each)
//	misses                 == eval computes + batch computes
//	                          + engine runs + coalesced flights
//	cache.Snapshot()       == the handler-side hit/miss counters
//	entries                == distinct request keys; no evictions
func TestShardedServerContentionExactCounters(t *testing.T) {
	s := New(Config{CacheShards: 16})
	t.Cleanup(s.Close)
	s.engine = (&stubEngine{}).fn

	const goroutines = 16
	const rounds = 60
	evals, batches := shardStressBodies(5, 3)
	uniqueKeys := len(evals) + len(batches) + 1 // + the stub campaign

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (g + r) % 3 {
				case 0:
					serveOK(t, s.Handler(), "/v1/eval", evals[(g*rounds+r)%len(evals)])
				case 1:
					serveOK(t, s.Handler(), "/v1/evalbatch", batches[(g*rounds+r)%len(batches)])
				case 2:
					serveOK(t, s.Handler(), "/v1/campaign", smallCampaign)
				}
			}
		}(g)
	}
	wg.Wait()

	requests := s.reg.Counter("requests_eval_total").Value() +
		s.reg.Counter("requests_evalbatch_total").Value() +
		s.reg.Counter("requests_campaign_total").Value()
	if want := uint64(goroutines * rounds); requests != want {
		t.Fatalf("requests = %d, want %d", requests, want)
	}
	hits := s.reg.Counter("cache_hits_total").Value()
	misses := s.reg.Counter("cache_misses_total").Value()
	if hits+misses != requests {
		t.Fatalf("hits %d + misses %d != requests %d: a request skipped or double-counted its cache Get", hits, misses, requests)
	}
	computes := s.reg.Counter("eval_computes_total").Value() +
		s.reg.Counter("evalbatch_computes_total").Value() +
		s.reg.Counter("engine_runs_total").Value() +
		s.reg.Counter("coalesced_total").Value()
	if misses != computes {
		t.Fatalf("misses %d != computes+coalesced %d: a miss vanished or a compute ran without a miss", misses, computes)
	}
	cs := s.cache.Snapshot()
	if cs.Hits != hits || cs.Misses != misses {
		t.Fatalf("cache-internal counters %+v disagree with handler counters (hits %d, misses %d)", cs, hits, misses)
	}
	if cs.Evictions != 0 || cs.Expirations != 0 {
		t.Fatalf("no-eviction universe evicted or expired: %+v", cs)
	}
	if got := s.cache.Len(); got != uniqueKeys {
		t.Fatalf("cache holds %d entries, want exactly %d distinct request keys", got, uniqueKeys)
	}
}

// TestWarmEvalAllocations pins the warm /v1/eval direct path to the
// allocation budget the PR 10 acceptance criteria demand (≤10; the
// measured path is 4 — three header []string values and the request
// hash — so the pin leaves headroom for net/http drift, not for
// regressions in this package).
func TestWarmEvalAllocations(t *testing.T) {
	s := New(Config{})
	t.Cleanup(s.Close)
	p := newDirectPoster(s.Handler(), "/v1/eval", benchEvalBody)
	p.post(t) // warm: fill the cache
	allocs := testing.AllocsPerRun(500, func() { p.post(t) })
	if allocs > 8 {
		t.Fatalf("warm /v1/eval allocates %.1f per request, want ≤ 8", allocs)
	}
}
