package server_test

import (
	"fmt"

	"repro/internal/server"
)

// ExampleShardedCache shows the sharded result cache standing alone:
// shard count rounds up to a power of two, global bounds divide across
// shards, and the Get/Put/Snapshot surface is the flat ResultCache's.
func ExampleShardedCache() {
	// 6 shards round up to 8; the 64-entry / 1 MiB global bounds split
	// into 8 entries / 128 KiB per shard. No TTL, wall-clock time.
	cache := server.NewShardedCache(6, 64, 1<<20, 0, nil)
	fmt.Println("shards:", cache.Shards())

	// Keys are canonical request hashes (see EvalKey); the low bits
	// pick the shard, so any uint64 from SplitMix64 spreads uniformly.
	key := server.EvalKey("gtx580", "double", 1e9, 4)
	if _, ok := cache.Get(key); !ok {
		cache.Put(key, []byte(`{"time":3.01e-05}`+"\n"))
	}
	body, ok := cache.Get(key)
	fmt.Printf("hit=%v body=%q\n", ok, body)

	stats := cache.Snapshot()
	fmt.Printf("entries=%d hits=%d misses=%d\n", cache.Len(), stats.Hits, stats.Misses)
	// Output:
	// shards: 8
	// hit=true body="{\"time\":3.01e-05}\n"
	// entries=1 hits=1 misses=1
}
