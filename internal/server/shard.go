package server

import "time"

// ShardedCache spreads a ResultCache over a power-of-two number of
// independently locked shards, selected by the low bits of the
// canonical request hash. SplitMix64 is a full-avalanche finalizer, so
// the low bits are uniformly distributed and shard occupancy is
// balanced without rehashing.
//
// Semantics relative to one big ResultCache:
//
//   - Lookup, storage, TTL, and stats are byte-exact per shard — each
//     shard IS a ResultCache, so a single-shard ShardedCache behaves
//     identically to the flat cache (the differential tests pin this).
//   - The global bounds divide across shards (per-shard bound =
//     global/shards, clamped to at least one entry), so the aggregate
//     entry and byte accounting stays within the configured bounds.
//     Eviction order is approximate-global-LRU: each shard evicts its
//     own least-recently-used entry, which is the standard sharded-LRU
//     trade — exactness of *which* cold entry dies is traded for
//     lock-free scaling of the hit path across cores.
//
// Len, SizeBytes, and Snapshot sum across shards. All methods are safe
// for concurrent use.
type ShardedCache struct {
	shards []*ResultCache
	mask   uint64
}

// NewShardedCache builds a cache of `shards` ResultCache shards
// (rounded up to a power of two, minimum 1) that together hold at most
// maxEntries bodies and maxBytes body bytes. ttl and now behave as in
// NewResultCache. Global bounds are divided evenly across shards; each
// shard keeps at least one entry of capacity, so tiny bounds with many
// shards degrade to per-shard bounds of one rather than zero.
func NewShardedCache(shards, maxEntries int, maxBytes int64, ttl time.Duration, now func() time.Time) *ShardedCache {
	n := 1
	for n < shards {
		n <<= 1
	}
	perEntries := maxEntries / n
	if perEntries < 1 {
		perEntries = 1
	}
	perBytes := maxBytes / int64(n)
	if perBytes < 1 {
		perBytes = 1
	}
	sc := &ShardedCache{shards: make([]*ResultCache, n), mask: uint64(n - 1)}
	for i := range sc.shards {
		sc.shards[i] = NewResultCache(perEntries, perBytes, ttl, now)
	}
	return sc
}

// shard returns the ResultCache responsible for key.
func (sc *ShardedCache) shard(key uint64) *ResultCache {
	return sc.shards[key&sc.mask]
}

// Get returns the cached body for key and marks it most recently used
// within its shard.
func (sc *ShardedCache) Get(key uint64) ([]byte, bool) {
	return sc.shard(key).Get(key)
}

// Peek reports whether key holds a live entry without touching recency
// or the hit/miss counters.
func (sc *ShardedCache) Peek(key uint64) bool {
	return sc.shard(key).Peek(key)
}

// Put stores body under key in its shard, evicting that shard's
// least-recently-used entries until the per-shard bounds hold.
func (sc *ShardedCache) Put(key uint64, body []byte) {
	sc.shard(key).Put(key, body)
}

// Shards returns the number of shards (always a power of two).
func (sc *ShardedCache) Shards() int { return len(sc.shards) }

// Len returns the number of live entries summed across shards.
func (sc *ShardedCache) Len() int {
	n := 0
	for _, s := range sc.shards {
		n += s.Len()
	}
	return n
}

// SizeBytes returns the total cached body bytes summed across shards.
func (sc *ShardedCache) SizeBytes() int64 {
	var n int64
	for _, s := range sc.shards {
		n += s.SizeBytes()
	}
	return n
}

// Snapshot returns the lifetime counters summed across shards.
func (sc *ShardedCache) Snapshot() CacheStats {
	var cs CacheStats
	for _, s := range sc.shards {
		cs.add(s.Snapshot())
	}
	return cs
}
