package server

import (
	"math"
	"testing"
)

// FuzzResponseEncoding differentially fuzzes the hand-rolled response
// encoders against encoding/json: for every generated response —
// arbitrary strings in the string fields, arbitrary bit patterns in the
// float fields (NaN payloads, ±0, denormals, infinities included) —
// either both encoders error (non-finite floats) or both produce the
// identical byte sequence. The seed corpus in
// testdata/fuzz/FuzzResponseEncoding pins the historically interesting
// regions: the 1e-6/1e21 format switches, negative zero, subnormals,
// exponent-cleanup boundaries, HTML-escaped and invalid-UTF-8 strings.
func FuzzResponseEncoding(f *testing.F) {
	f.Add("gtx580", "double", "", "memory", "flop", 1e9, 4.0, 3.0107e-05, 122.4, true, int64(2))
	f.Add("m<&>", "\"\\\n", "blackbox", "\x80\xff", "  ", -0.0, 1e-7, 9.999999999999999e-7, 1e21, false, int64(0))
	f.Add("", "", "", "", "", math.SmallestNonzeroFloat64, -math.MaxFloat64, 2.2250738585072014e-308, 0.9999999999999999e21, true, int64(1))
	f.Add("nan", "inf", "x", "y", "z", math.NaN(), math.Inf(1), math.Inf(-1), 1.0000000000000001e21, false, int64(3))
	f.Fuzz(func(t *testing.T, machine, precision, model, timeBound, energyBound string,
		a, b, c, d float64, flag bool, count int64) {
		// Spread the fuzzed scalars over every float field so each one
		// crosses the format-switch thresholds as the fuzzer mutates.
		r := evalResponse{
			Machine: machine, Precision: precision, Model: model,
			TimeBound: timeBound, EnergyBound: energyBound, RaceToHalt: flag,
			Work: a, Intensity: b, Time: c, Energy: d,
			AvgPower: a * b, CappedTime: b + c, CappedEnergy: c - d, CappedPower: d * 2,
			BalanceTime: -a, BalanceEnergy: -b, HalfEfficiency: a / 2, RooflineTime: b * 1e-7,
			ArchlineEnergy: c * 1e21, PowerLine: math.Float64frombits(math.Float64bits(a) ^ math.Float64bits(d)),
			EDP: a + 1, FlopsPerJoule: b - 1, FlopsPerSecond: c * 3, GreenIndex: d / 3, SpeedIndex: a - b,
		}
		checkEncodersAgree(t, r)

		// The batch encoder wraps the same row; exercise its container
		// formatting (count field, nested indent, empty vs nil arrays).
		n := int(count % 3)
		if n < 0 {
			n = -n
		}
		rows := make([]evalResponse, n)
		for i := range rows {
			rows[i] = r
		}
		br := evalBatchResponse{Machine: machine, Precision: precision, Count: n, Results: rows}
		wantB, wantErrB := stdlibBody(t, br)
		gotB, gotErrB := encodeEvalBatchResponse(&br)
		if (wantErrB != nil) != (gotErrB != nil) {
			t.Fatalf("batch error mismatch: stdlib=%v encoder=%v", wantErrB, gotErrB)
		}
		if wantErrB == nil {
			diffBytes(t, gotB, wantB)
		}
	})
}

// checkEncodersAgree asserts one evalResponse round: both encoders
// error together or emit identical bytes.
func checkEncodersAgree(t *testing.T, r evalResponse) {
	t.Helper()
	want, wantErr := stdlibBody(t, r)
	got, gotErr := encodeEvalResponse(&r)
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("error mismatch: stdlib=%v encoder=%v", wantErr, gotErr)
	}
	if wantErr != nil {
		return
	}
	diffBytes(t, got, want)
}
