package server

import (
	"context"
	"sync"
)

// Request coalescing (singleflight): N concurrent requests with the
// same canonical hash cost one engine execution. The first arrival
// becomes the flight's leader and runs the work; later arrivals block
// on the flight and share the leader's bytes. Determinism is what makes
// sharing sound — every waiter would have produced exactly these bytes.

// flight is one in-progress execution and its eventual outcome.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// flightGroup deduplicates concurrent executions by key.
type flightGroup struct {
	mu sync.Mutex
	m  map[uint64]*flight
}

// newFlightGroup returns an empty group.
func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[uint64]*flight{}}
}

// do returns fn's outcome for key, executing fn at most once across all
// concurrent callers with that key. The boolean reports whether this
// caller led the flight (ran fn) or joined an existing one. A joining
// caller stops waiting when its own ctx ends — the flight itself keeps
// running for the remaining waiters, so one impatient client cannot
// cancel work others still want.
func (g *flightGroup) do(ctx context.Context, key uint64, fn func() ([]byte, error)) (body []byte, leader bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.body, false, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.body, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.body, true, f.err
}

// inFlight returns the number of distinct executions currently running.
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
