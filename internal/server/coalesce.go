package server

import (
	"context"
	"sync"
)

// Request coalescing (singleflight): N concurrent requests with the
// same canonical hash cost one engine execution. The first arrival
// becomes the flight's leader and runs the work; later arrivals block
// on the flight and share the leader's bytes. Determinism is what makes
// sharing sound — every waiter would have produced exactly these bytes.
//
// The mechanism is split in two layers so it can be reused outside a
// live process. FlightTable is the pure bookkeeping — at most one
// in-progress execution per key, later arrivals join it — shared by the
// HTTP server's flightGroup (which adds goroutine blocking on top) and
// by the cluster simulator's replicas (which resolve flights with
// virtual-time completion events instead of channels).

// FlightTable tracks at most one in-progress execution per canonical
// key. F is whatever per-flight state the embedding layer needs: the
// live server stores a channel-bearing *flight, the simulator stores
// its waiter list. A FlightTable is not synchronised; callers that
// share one across goroutines hold their own lock (see flightGroup).
type FlightTable[F any] struct {
	m map[uint64]F
}

// NewFlightTable returns an empty table.
func NewFlightTable[F any]() *FlightTable[F] {
	return &FlightTable[F]{m: map[uint64]F{}}
}

// Begin either joins key's in-progress flight — returning the existing
// state and joined = true — or registers fresh as the new flight for
// key, returning fresh and joined = false (the caller is the leader).
func (t *FlightTable[F]) Begin(key uint64, fresh F) (f F, joined bool) {
	if existing, ok := t.m[key]; ok {
		return existing, true
	}
	t.m[key] = fresh
	return fresh, false
}

// Lookup returns key's in-flight state without registering anything.
func (t *FlightTable[F]) Lookup(key uint64) (F, bool) {
	f, ok := t.m[key]
	return f, ok
}

// Finish removes key's flight; later arrivals for key lead a new one.
func (t *FlightTable[F]) Finish(key uint64) {
	delete(t.m, key)
}

// Len returns the number of distinct in-progress flights.
func (t *FlightTable[F]) Len() int { return len(t.m) }

// flight is one in-progress execution and its eventual outcome.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// flightShards is the number of independently locked FlightTables a
// flightGroup stripes keys over (power of two). Flights for distinct
// hashes then register and finish without contending on one mutex; the
// canonical hash's low bits pick the shard, mirroring ShardedCache.
const flightShards = 16

// flightShard is one lock-plus-table stripe of a flightGroup. The pad
// keeps adjacent shards' mutexes on distinct cache lines.
type flightShard struct {
	mu sync.Mutex
	m  *FlightTable[*flight]
	_  [40]byte // pad: no false sharing with the next shard's mutex
}

// flightGroup deduplicates concurrent executions by key: sharded
// FlightTable bookkeeping plus goroutine blocking for the waiters.
type flightGroup struct {
	shards [flightShards]flightShard
}

// newFlightGroup returns an empty group.
func newFlightGroup() *flightGroup {
	g := &flightGroup{}
	for i := range g.shards {
		g.shards[i].m = NewFlightTable[*flight]()
	}
	return g
}

// do returns fn's outcome for key, executing fn at most once across all
// concurrent callers with that key. The boolean reports whether this
// caller led the flight (ran fn) or joined an existing one. A joining
// caller stops waiting when its own ctx ends — the flight itself keeps
// running for the remaining waiters, so one impatient client cannot
// cancel work others still want.
func (g *flightGroup) do(ctx context.Context, key uint64, fn func() ([]byte, error)) (body []byte, leader bool, err error) {
	sh := &g.shards[key&(flightShards-1)]
	sh.mu.Lock()
	f, joined := sh.m.Begin(key, &flight{done: make(chan struct{})})
	sh.mu.Unlock()
	if joined {
		select {
		case <-f.done:
			return f.body, false, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}

	f.body, f.err = fn()

	sh.mu.Lock()
	sh.m.Finish(key)
	sh.mu.Unlock()
	close(f.done)
	return f.body, true, f.err
}

// inFlight returns the number of distinct executions currently running,
// summed across shards.
func (g *flightGroup) inFlight() int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		n += sh.m.Len()
		sh.mu.Unlock()
	}
	return n
}
