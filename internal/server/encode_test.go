package server

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
)

// The hand-rolled encoders exist on one condition: their output is
// byte-identical to json.MarshalIndent(v, "", "  ") plus a trailing
// newline, including every stdlib formatting quirk (float shortest
// form, exponent cleanup, HTML escaping, omitempty, indentation of
// empty and nested containers). These tests — and FuzzResponseEncoding
// in fuzz_encode_test.go — enforce that condition differentially, so
// the stdlib encoder remains the executable specification.

// stdlibBody is the reference rendering: MarshalIndent + newline,
// exactly what writeJSON and the pre-PR-10 handlers produced.
func stdlibBody(t testing.TB, v any) ([]byte, error) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// diffBytes fails the test with a pinpointed first difference.
func diffBytes(t testing.TB, got, want []byte) {
	t.Helper()
	if string(got) == string(want) {
		return
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	at := n
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			at = i
			break
		}
	}
	lo := at - 40
	if lo < 0 {
		lo = 0
	}
	t.Fatalf("encoding differs at byte %d:\n got: %q\nwant: %q", at,
		got[lo:min(len(got), at+40)], want[lo:min(len(want), at+40)])
}

// sampleEvalResponse exercises every field with awkward values:
// subnormal, negative zero, huge, tiny, and boundary floats around the
// stdlib's 'f'/'e' format switch.
func sampleEvalResponse() evalResponse {
	return evalResponse{
		Machine:        "gtx580",
		Precision:      "double",
		Model:          "",
		Work:           1e9,
		Intensity:      4,
		Time:           3.0107e-05,
		Energy:         math.SmallestNonzeroFloat64,
		AvgPower:       math.Copysign(0, -1),
		CappedTime:     1e-6,
		CappedEnergy:   9.999999999999999e-7,
		CappedPower:    1e21,
		TimeBound:      "memory",
		EnergyBound:    "flop",
		BalanceTime:    0.9999999999999999e21,
		BalanceEnergy:  -1e-7,
		HalfEfficiency: 6.02214076e23,
		RooflineTime:   math.MaxFloat64,
		ArchlineEnergy: -math.MaxFloat64,
		PowerLine:      244,
		RaceToHalt:     true,
		EDP:            1.5,
		FlopsPerJoule:  0,
		FlopsPerSecond: 123456789.123456789,
		GreenIndex:     2.2250738585072014e-308,
		SpeedIndex:     -42.5,
	}
}

func TestEncodersMatchStdlib(t *testing.T) {
	t.Run("evalResponse", func(t *testing.T) {
		for _, r := range []evalResponse{
			sampleEvalResponse(),
			{}, // all zero values, Model omitted
			{Machine: "m<&>\"\\\n\t\u2028\u2029\x01", Model: "blackbox", Precision: "\xff\xfe"},
		} {
			want, err := stdlibBody(t, r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := encodeEvalResponse(&r)
			if err != nil {
				t.Fatal(err)
			}
			diffBytes(t, got, want)
		}
	})
	t.Run("evalBatchResponse", func(t *testing.T) {
		for _, r := range []evalBatchResponse{
			{Machine: "fermi", Precision: "single", Count: 2,
				Results: []evalResponse{sampleEvalResponse(), {}}},
			{Machine: "x", Count: 0, Results: []evalResponse{}}, // empty array
			{Machine: "x", Count: 0, Results: nil},              // null array
		} {
			want, err := stdlibBody(t, r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := encodeEvalBatchResponse(&r)
			if err != nil {
				t.Fatal(err)
			}
			diffBytes(t, got, want)
		}
	})
	t.Run("machines", func(t *testing.T) {
		rows := []machineSummary{
			{Key: "gtx580", Name: "NVIDIA GTX 580", Bandwidth: 192.4e9,
				PeakFlopsSingle: 1581.06e9, PeakFlopsDouble: 197.63e9,
				BalanceTime: 1.027, BalanceEnergy: 0.4, HalfEfficiency: 5.1, RaceToHalt: true},
			{},
		}
		for _, rs := range [][]machineSummary{rows, {}} {
			want, err := stdlibBody(t, map[string]any{"machines": rs})
			if err != nil {
				t.Fatal(err)
			}
			got, err := encodeMachines(rs)
			if err != nil {
				t.Fatal(err)
			}
			diffBytes(t, got, want)
		}
	})
	t.Run("models", func(t *testing.T) {
		rows := []modelSummary{
			{Name: "analytic", Default: true, Description: "closed-form <paper> eqs & more"},
			{Name: "blackbox", Default: false, Description: ""},
		}
		for _, rs := range [][]modelSummary{rows, {}} {
			want, err := stdlibBody(t, map[string]any{"models": rs})
			if err != nil {
				t.Fatal(err)
			}
			got, err := encodeModels(rs)
			if err != nil {
				t.Fatal(err)
			}
			diffBytes(t, got, want)
		}
	})
}

// TestEncodeRejectsNonFinite pins the error contract: NaN/±Inf anywhere
// in a response is an encode error exactly where the stdlib errors, and
// nothing half-encoded escapes.
func TestEncodeRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		r := sampleEvalResponse()
		r.EDP = bad
		if _, err := stdlibBody(t, r); err == nil {
			t.Fatalf("stdlib accepted %v", bad)
		}
		body, err := encodeEvalResponse(&r)
		if err == nil {
			t.Fatalf("encoder accepted %v", bad)
		}
		if body != nil {
			t.Fatalf("encoder returned partial body alongside error: %q", body)
		}
		if !strings.Contains(err.Error(), "json: unsupported value") {
			t.Fatalf("error %q does not match the stdlib wording", err)
		}
	}
}

// TestAppendJSONFloatFormats spot-checks the exact format-switch
// boundaries the fuzzer found historically interesting.
func TestAppendJSONFloatFormats(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 1e-6, 1e-7, 9.999999999999999e-7,
		1e20, 1e21, -1e21, 1.0000000000000001e21, 3.0107e-05, 1e9,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 0.1, 2.0 / 3.0,
	}
	for _, v := range cases {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := appendJSONFloat(nil, v)
		if err != nil {
			t.Fatalf("appendJSONFloat(%g): %v", v, err)
		}
		if string(got) != string(want) {
			t.Fatalf("appendJSONFloat(%g) = %q, stdlib renders %q", v, got, want)
		}
	}
}

// TestAppendHash pins the X-Request-Hash wire format against the
// fmt.Sprintf("%016x", key) it replaced.
func TestAppendHash(t *testing.T) {
	for _, key := range []uint64{0, 1, 0xdeadbeef, ^uint64(0), 1 << 63} {
		got := string(appendHash(nil, key))
		want := fmt.Sprintf("%016x", key)
		if got != want {
			t.Fatalf("appendHash(%#x) = %q, want %q", key, got, want)
		}
	}
	if got := string(appendHash(nil, 0xab)); got != "00000000000000ab" {
		t.Fatalf("appendHash zero-padding broken: %q", got)
	}
}
