package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEvalBatchMatchesEval is the endpoint's ground-truth check: every
// row of a batch response must equal — field for field — the body
// /v1/eval returns for the same (machine, precision, work, intensity)
// point, and a batch of one is exactly the /v1/eval result object.
func TestEvalBatchMatchesEval(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/evalbatch",
		`{"machine":"gtx580","precision":"double","work":[1e9,2e9,1e9],"intensities":[0.5,4,1000]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out evalBatchResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Machine != "gtx580" || out.Precision != "double" || out.Count != 3 || len(out.Results) != 3 {
		t.Fatalf("batch envelope wrong: machine=%q precision=%q count=%d len=%d",
			out.Machine, out.Precision, out.Count, len(out.Results))
	}
	for i, point := range []struct{ work, intensity float64 }{
		{1e9, 0.5}, {2e9, 4}, {1e9, 1000},
	} {
		_, single := post(t, ts.URL+"/v1/eval",
			fmt.Sprintf(`{"machine":"gtx580","precision":"double","work":%g,"intensity":%g}`,
				point.work, point.intensity))
		var want evalResponse
		if err := json.Unmarshal([]byte(single), &want); err != nil {
			t.Fatal(err)
		}
		if out.Results[i] != want {
			t.Errorf("batch row %d differs from /v1/eval:\n batch: %+v\n eval:  %+v",
				i, out.Results[i], want)
		}
	}
}

// TestEvalBatchOfOneBodyMatchesEval: a single-point batch's result
// object, re-marshalled alone, is byte-identical to the /v1/eval body —
// the two endpoints share one response schema, not merely similar ones.
func TestEvalBatchOfOneBodyMatchesEval(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, single := post(t, ts.URL+"/v1/eval",
		`{"machine":"fermi","precision":"single","work":1e9,"intensity":2}`)
	_, batch := post(t, ts.URL+"/v1/evalbatch",
		`{"machine":"fermi","precision":"single","intensities":[2]}`)
	var out evalBatchResponse
	if err := json.Unmarshal([]byte(batch), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(out.Results))
	}
	data, err := json.MarshalIndent(out.Results[0], "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(data)+"\n" != single {
		t.Errorf("batch-of-1 row re-marshalled differs from /v1/eval body:\n%s\nvs\n%s", data, single)
	}
}

// TestEvalBatchGolden pins the exact serialized shape of a small batch
// response, so accidental schema drift (field renames, ordering, the
// count envelope) fails loudly rather than surfacing in clients.
func TestEvalBatchGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/evalbatch",
		`{"machine":"gtx580","intensities":[0.001]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	for _, want := range []string{
		"\"machine\": \"gtx580\"",
		"\"precision\": \"double\"",
		"\"count\": 1",
		"\"results\": [",
		"\"work\": 1000000000,",
		"\"intensity\": 0.001,",
		"\"time_bound\": \"memory-bound\"",
		"\"energy_bound\": \"memory-bound\"",
		"\"capped_power_watts\"",
		"\"edp_joule_seconds\"",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("batch body missing %q:\n%s", want, body)
		}
	}
	if !strings.HasSuffix(body, "\n") {
		t.Error("batch body missing trailing newline")
	}
}

// TestEvalBatchCacheHit: re-POSTing an identical batch serves the
// cached bytes under the same request hash, and a batch omitting the
// work column hits the cache entry of one spelling the defaults out.
func TestEvalBatchCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"machine":"gtx580","work":[1e9,1e9],"intensities":[1,8]}`
	resp1, body1 := post(t, ts.URL+"/v1/evalbatch", req)
	if resp1.Header.Get("X-Cache") != "miss" {
		t.Errorf("first batch X-Cache = %q, want miss", resp1.Header.Get("X-Cache"))
	}
	resp2, body2 := post(t, ts.URL+"/v1/evalbatch", req)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("second batch X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if body2 != body1 {
		t.Error("cached batch body differs from computed body")
	}
	if resp1.Header.Get("X-Request-Hash") != resp2.Header.Get("X-Request-Hash") {
		t.Error("batch request hash unstable across identical requests")
	}
	// Omitted work column → same canonical hash as explicit defaults.
	resp3, body3 := post(t, ts.URL+"/v1/evalbatch", `{"machine":"gtx580","intensities":[1,8]}`)
	if resp3.Header.Get("X-Cache") != "hit" {
		t.Errorf("default-work batch X-Cache = %q, want hit (canonical hashing)", resp3.Header.Get("X-Cache"))
	}
	if body3 != body1 {
		t.Error("default-work batch body differs from explicit-work body")
	}
	if got := s.reg.Counter("evalbatch_computes_total").Value(); got != 1 {
		t.Errorf("evalbatch_computes_total = %d, want 1", got)
	}
}

// TestEvalBatchCoalescing64: 64 concurrent identical batches trigger
// exactly one evaluation — a gated stub holds the flight open until all
// requests are in — and every response is byte-identical. Mirrors
// TestCampaignCoalescing64 for the batch endpoint.
func TestEvalBatchCoalescing64(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var runs atomic.Int64
	gate := make(chan struct{})
	real := s.batchEval
	s.batchEval = func(q evalBatchRequest) ([]byte, error) {
		runs.Add(1)
		<-gate
		return real(q)
	}

	const req = `{"machine":"gtx580","intensities":[0.25,1,4,16]}`
	const n = 64
	bodies := make([]string, n)
	sources := make([]string, n)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	started.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			resp, err := http.Post(ts.URL+"/v1/evalbatch", "application/json", strings.NewReader(req))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			bodies[i] = string(data)
			sources[i] = resp.Header.Get("X-Cache")
		}(i)
	}
	started.Wait()
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("batch evaluated %d times for 64 identical requests, want exactly 1", got)
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	var miss, coalesced, hit int
	for _, src := range sources {
		switch src {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		case "hit":
			hit++
		default:
			t.Errorf("unexpected X-Cache %q", src)
		}
	}
	if miss != 1 {
		t.Errorf("flight leaders = %d, want exactly 1 (coalesced %d, hit %d)", miss, coalesced, hit)
	}
	if got := s.reg.Counter("requests_evalbatch_total").Value(); got != n {
		t.Errorf("requests_evalbatch_total = %d, want %d", got, n)
	}
}

// TestEvalBatchRejectsBadRequests covers the 4xx surface: malformed
// bodies, unknown machines/precisions, empty and oversized batches,
// ragged columns, and non-positive points.
func TestEvalBatchRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchPoints: 8})
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed JSON", `{machine:`, "bad request body"},
		{"unknown field", `{"machina":"gtx580","intensities":[1]}`, "unknown field"},
		{"trailing garbage", `{"machine":"gtx580","intensities":[1]} extra`, "bad request body"},
		{"unknown machine", `{"machine":"cray1","intensities":[1]}`, "unknown machine"},
		{"unknown precision", `{"machine":"gtx580","precision":"half","intensities":[1]}`, "unknown precision"},
		{"empty batch", `{"machine":"gtx580","intensities":[]}`, "at least one intensity"},
		{"missing intensities", `{"machine":"gtx580"}`, "at least one intensity"},
		{"oversized batch", `{"machine":"gtx580","intensities":[1,2,3,4,5,6,7,8,9]}`, "server's limit"},
		{"ragged work column", `{"machine":"gtx580","work":[1e9],"intensities":[1,2]}`, "work has 1 entries but intensities has 2"},
		{"zero intensity", `{"machine":"gtx580","intensities":[1,0]}`, "intensities[1] must be positive"},
		{"negative work", `{"machine":"gtx580","work":[1e9,-1],"intensities":[1,2]}`, "work[1] must be positive"},
		{"overflowing number", `{"machine":"gtx580","intensities":[1e999]}`, "bad request body"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/evalbatch", c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (%s)", resp.StatusCode, body)
			}
			if !strings.Contains(body, c.wantErr) {
				t.Errorf("error body %q missing %q", body, c.wantErr)
			}
		})
	}
}

// TestEvalBatchRejectsNonFinite covers the programmatic path JSON
// cannot express: NaN/Inf entries must fail validation, not poison
// the cache or the hash.
func TestEvalBatchRejectsNonFinite(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		q := evalBatchRequest{Machine: "gtx580", Intensities: []float64{1, v}}
		if err := s.checkEvalBatch(&q); err == nil {
			t.Errorf("intensity %v accepted", v)
		}
		q = evalBatchRequest{Machine: "gtx580", Work: []float64{1e9, v}, Intensities: []float64{1, 2}}
		if err := s.checkEvalBatch(&q); err == nil {
			t.Errorf("work %v accepted", v)
		}
	}
}
