// Package server implements rooflined, a long-lived HTTP/JSON service
// over the energy-roofline model and the measurement-campaign engine.
// It turns the one-shot CLIs into the form the model is actually
// consumed in — repeated what-if queries over fixed machine
// coefficients — and exploits the engine's determinism (fixed config →
// byte-identical output at any worker count, see internal/campaign) in
// two ways:
//
//   - Responses are content-addressable. A canonical request hash
//     (stats.SplitMix64 folding) keys an in-memory LRU cache with TTL
//     and size bounds; a cache hit serves the exact bytes a fresh
//     engine run would produce.
//   - Concurrent identical requests coalesce. A singleflight group
//     runs one engine execution per distinct in-flight hash and shares
//     the bytes with every waiter.
//
// Engine executions draw workers from one global parallel.Budget shared
// across requests, so the machine is never oversubscribed: identical
// concurrent campaigns share one execution, and distinct ones queue for
// the budget. Request/latency/cache counters are exposed on
// GET /metrics through internal/metrics.
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /v1/machines  the platform catalog with derived balance points
//	GET  /v1/models    the registered EnergyModels (see docs/MODELS.md)
//	POST /v1/eval      single roofline/energy model query
//	POST /v1/evalbatch columnar batch model query (cached, coalesced)
//	POST /v1/campaign  full tune→sweep→fit campaign (cached, coalesced)
//	GET  /metrics      plain-text operational counters
//
// The three POST endpoints accept an optional "model" field selecting
// the EnergyModel ("analytic" or "blackbox"); omitted means analytic
// and the response bytes are identical to the pre-model surface.
//
// With Config.Debug set, the server additionally records every request
// (and the campaign engine's internal phases) in an internal/trace ring
// buffer and serves:
//
//	GET  /debug/trace   the span buffer as Chrome trace_event JSON
//	GET  /debug/pprof/  the standard net/http/pprof profile handlers
//
// Span durations also feed per-phase latency histograms on GET /metrics
// (metric names span_<name> with dots mapped to underscores). See
// docs/OBSERVABILITY.md for the runbook.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Config tunes one Server. The zero value of any field falls back to
// the DefaultConfig value for that field.
type Config struct {
	// Workers is the global engine worker budget shared across all
	// concurrent campaign requests (parallel.Workers semantics: < 1
	// means one worker per CPU).
	Workers int
	// CacheEntries bounds the result cache by entry count.
	CacheEntries int
	// CacheBytes bounds the result cache by total body bytes.
	CacheBytes int64
	// CacheShards spreads the result cache over this many independently
	// locked shards (rounded up to a power of two), selected by the low
	// bits of the canonical request hash. More shards mean less lock
	// contention on the hit path; the global entry/byte bounds divide
	// across shards. <= 0 keeps the default.
	CacheShards int
	// CacheTTL bounds how long a cached body stays resident. The cache
	// is never stale — the engine is deterministic — so the TTL only
	// bounds memory residency. <= 0 keeps the default.
	CacheTTL time.Duration
	// RequestTimeout bounds one engine execution; the run is cancelled
	// between kernel executions when it expires.
	RequestTimeout time.Duration
	// MaxPoints caps a campaign request's intensity grid, rejecting
	// oversized requests up front (service-level, stricter than the
	// campaign.Validate allocation guard).
	MaxPoints int
	// MaxReps caps a campaign request's repetitions per point.
	MaxReps int
	// MaxBatchPoints caps the number of points in one /v1/evalbatch
	// request.
	MaxBatchPoints int
	// MaxBodyBytes caps a request body.
	MaxBodyBytes int64
	// Debug enables the observability surface: per-request span tracing
	// into a bounded ring buffer, GET /debug/trace, the net/http/pprof
	// handlers under /debug/pprof/, and span_* latency histograms on
	// GET /metrics. Off by default; when off, tracing costs nothing.
	Debug bool
	// TraceCapacity bounds the span ring buffer when Debug is set
	// (<= 0 means trace.DefaultCapacity). Oldest spans are dropped
	// first; the drop count is reported in the export.
	TraceCapacity int
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		Workers:        0, // one per CPU
		CacheEntries:   256,
		CacheBytes:     64 << 20,
		CacheShards:    16,
		CacheTTL:       15 * time.Minute,
		RequestTimeout: 2 * time.Minute,
		MaxPoints:      4096,
		MaxReps:        4096,
		MaxBatchPoints: 4096,
		MaxBodyBytes:   1 << 20,
	}
}

// engineFunc is the campaign engine the server drives; tests substitute
// a counting stub to assert coalescing and cache behaviour.
type engineFunc func(ctx context.Context, cfg campaign.Config, workers int) (*campaign.Result, error)

// Server is the rooflined service state. Create with New; it is safe
// for concurrent use by the HTTP stack.
type Server struct {
	cfg     Config
	budget  *parallel.Budget
	cache   *ShardedCache
	flights *flightGroup
	reg     *metrics.Registry
	engine  engineFunc
	// batchEval computes one /v1/evalbatch body; tests substitute a
	// counting stub to assert coalescing, like engine for campaigns.
	batchEval func(q evalBatchRequest) ([]byte, error)
	mux       *http.ServeMux
	tracer    *trace.Tracer // nil unless cfg.Debug

	// Hot-path metric handles, hoisted out of the registry once at
	// construction so per-request bookkeeping is a direct atomic
	// increment — no name lookup of any kind on the request path.
	mRequestsEval      *metrics.Counter
	mRequestsEvalbatch *metrics.Counter
	mRequestsCampaign  *metrics.Counter
	mCacheHits         *metrics.Counter
	mCacheMisses       *metrics.Counter
	mEvalComputes      *metrics.Counter
	mEvalbatchComputes *metrics.Counter
	mEngineRuns        *metrics.Counter
	mCoalesced         *metrics.Counter
	mLatEval           *metrics.Latency
	mLatEvalbatch      *metrics.Latency
	mLatCampaign       *metrics.Latency

	baseCtx context.Context
	cancel  context.CancelFunc
}

// New builds a Server from cfg (zero fields take defaults).
func New(cfg Config) *Server {
	def := DefaultConfig()
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = def.CacheEntries
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = def.CacheBytes
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = def.CacheTTL
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = def.CacheShards
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = def.RequestTimeout
	}
	if cfg.MaxPoints == 0 {
		cfg.MaxPoints = def.MaxPoints
	}
	if cfg.MaxReps == 0 {
		cfg.MaxReps = def.MaxReps
	}
	if cfg.MaxBatchPoints == 0 {
		cfg.MaxBatchPoints = def.MaxBatchPoints
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = def.MaxBodyBytes
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		budget:  parallel.NewBudget(cfg.Workers),
		cache:   NewShardedCache(cfg.CacheShards, cfg.CacheEntries, cfg.CacheBytes, cfg.CacheTTL, nil),
		flights: newFlightGroup(),
		reg:     metrics.NewRegistry(),
		engine:  campaign.RunParallel,
		baseCtx: ctx,
		cancel:  cancel,
	}
	s.batchEval = evaluateBatch
	s.mRequestsEval = s.reg.Counter("requests_eval_total")
	s.mRequestsEvalbatch = s.reg.Counter("requests_evalbatch_total")
	s.mRequestsCampaign = s.reg.Counter("requests_campaign_total")
	s.mCacheHits = s.reg.Counter("cache_hits_total")
	s.mCacheMisses = s.reg.Counter("cache_misses_total")
	s.mEvalComputes = s.reg.Counter("eval_computes_total")
	s.mEvalbatchComputes = s.reg.Counter("evalbatch_computes_total")
	s.mEngineRuns = s.reg.Counter("engine_runs_total")
	s.mCoalesced = s.reg.Counter("coalesced_total")
	s.mLatEval = s.reg.Latency("latency_eval")
	s.mLatEvalbatch = s.reg.Latency("latency_evalbatch")
	s.mLatCampaign = s.reg.Latency("latency_campaign")
	if cfg.Debug {
		s.tracer = trace.New(trace.Config{
			Capacity: cfg.TraceCapacity,
			Observer: func(name string, d time.Duration) {
				s.reg.Latency("span_" + strings.ReplaceAll(name, ".", "_")).Observe(d)
			},
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/machines", s.handleMachines)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/eval", s.handleEval)
	mux.HandleFunc("POST /v1/evalbatch", s.handleEvalBatch)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Debug {
		mux.HandleFunc("GET /debug/trace", s.handleTrace)
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// Tracer returns the server's span tracer, nil unless Config.Debug was
// set. The rooflined binary uses it to dump a Chrome trace at shutdown.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close aborts in-flight engine executions. Graceful shutdown first
// drains the HTTP server (handlers block until their campaigns finish),
// then calls Close to release anything still running.
func (s *Server) Close() { s.cancel() }

// Metrics returns the server's telemetry registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// httpError is a handler failure with a status code.
type httpError struct {
	status int
	msg    string
}

// Error implements the error interface.
func (e *httpError) Error() string { return e.msg }

// badRequest builds a 400 error.
func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// writeJSON marshals v with a trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError reports err as a JSON error body, mapping *httpError
// status through and defaulting anything else to 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	} else if errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout
	}
	s.reg.Counter("http_errors_total").Inc()
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeCached serves a response body produced by the cache/coalescing
// layer, labelling its provenance in X-Cache (hit, miss, or coalesced).
func writeCached(w http.ResponseWriter, key uint64, source string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Cache", source)
	var hexBuf [16]byte
	h.Set("X-Request-Hash", string(appendHash(hexBuf[:0], key)))
	w.Write(body)
}

// handleHealth implements GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("requests_healthz_total").Inc()
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// machineSummary is one GET /v1/machines catalog row.
type machineSummary struct {
	Key             string  `json:"key"`
	Name            string  `json:"name"`
	Bandwidth       float64 `json:"bandwidth_bytes_per_s"`
	PeakFlopsSingle float64 `json:"peak_flops_single"`
	PeakFlopsDouble float64 `json:"peak_flops_double"`
	BalanceTime     float64 `json:"balance_time_double"`
	BalanceEnergy   float64 `json:"balance_energy_double"`
	HalfEfficiency  float64 `json:"half_efficiency_intensity_double"`
	RaceToHalt      bool    `json:"race_to_halt_effective_double"`
}

// handleMachines implements GET /v1/machines: the catalog with derived
// double-precision balance points, sorted by key for stable output.
func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("requests_machines_total").Inc()
	catalog := machine.Catalog()
	keys := make([]string, 0, len(catalog))
	for k := range catalog {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]machineSummary, 0, len(keys))
	for _, k := range keys {
		m := catalog[k]
		p := core.FromMachine(m, machine.Double)
		out = append(out, machineSummary{
			Key:             k,
			Name:            m.Name,
			Bandwidth:       m.Bandwidth,
			PeakFlopsSingle: m.SP.PeakFlops,
			PeakFlopsDouble: m.DP.PeakFlops,
			BalanceTime:     p.BalanceTime(),
			BalanceEnergy:   p.BalanceEnergy(),
			HalfEfficiency:  p.HalfEfficiencyIntensity(),
			RaceToHalt:      p.RaceToHaltEffective(),
		})
	}
	body, err := encodeMachines(out)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// evalRequest is the POST /v1/eval body: one (machine, precision,
// kernel) model query.
type evalRequest struct {
	Machine   string  `json:"machine"`
	Precision string  `json:"precision"`
	Work      float64 `json:"work,omitempty"`
	Intensity float64 `json:"intensity"`
	// Model selects the EnergyModel predicting the cost fields (see
	// GET /v1/models); empty means the default analytic model and
	// keeps the response byte-identical to the pre-model surface.
	Model string `json:"model,omitempty"`
}

// evalResponse is the POST /v1/eval reply: the model's time, energy,
// and power answers plus the §VI composite metrics.
type evalResponse struct {
	Machine        string  `json:"machine"`
	Precision      string  `json:"precision"`
	Model          string  `json:"model,omitempty"`
	Work           float64 `json:"work"`
	Intensity      float64 `json:"intensity"`
	Time           float64 `json:"time_seconds"`
	Energy         float64 `json:"energy_joules"`
	AvgPower       float64 `json:"avg_power_watts"`
	CappedTime     float64 `json:"capped_time_seconds"`
	CappedEnergy   float64 `json:"capped_energy_joules"`
	CappedPower    float64 `json:"capped_power_watts"`
	TimeBound      string  `json:"time_bound"`
	EnergyBound    string  `json:"energy_bound"`
	BalanceTime    float64 `json:"balance_time"`
	BalanceEnergy  float64 `json:"balance_energy"`
	HalfEfficiency float64 `json:"half_efficiency_intensity"`
	RooflineTime   float64 `json:"roofline_time"`
	ArchlineEnergy float64 `json:"archline_energy"`
	PowerLine      float64 `json:"power_line_watts"`
	RaceToHalt     bool    `json:"race_to_halt_effective"`
	EDP            float64 `json:"edp_joule_seconds"`
	FlopsPerJoule  float64 `json:"flops_per_joule"`
	FlopsPerSecond float64 `json:"flops_per_second"`
	GreenIndex     float64 `json:"green_index"`
	SpeedIndex     float64 `json:"speed_index"`
}

// parsePrecision maps the wire precision names.
func parsePrecision(s string) (machine.Precision, error) {
	switch s {
	case "single":
		return machine.Single, nil
	case "double", "":
		return machine.Double, nil
	}
	return 0, badRequest("unknown precision %q (want \"single\" or \"double\")", s)
}

// checkEval validates an eval request, filling defaults in place.
func checkEval(q *evalRequest) error {
	if _, ok := catalog()[q.Machine]; !ok {
		return badRequest("unknown machine %q", q.Machine)
	}
	if _, err := parsePrecision(q.Precision); err != nil {
		return err
	}
	if !model.Known(q.Model) {
		return badRequest("unknown model %q (see GET /v1/models)", q.Model)
	}
	if q.Work == 0 {
		q.Work = 1e9
	}
	for name, v := range map[string]float64{"work": q.Work, "intensity": q.Intensity} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return badRequest("%s must be finite", name)
		}
		if v <= 0 {
			return badRequest("%s must be positive", name)
		}
	}
	return nil
}

// evaluate computes the eval response body. The cost fields (time,
// energy, power, capped variants, composite metrics) come from the
// requested EnergyModel; the machine-geometry fields (bounds, balance
// points, curves) are always the analytic closed forms — they describe
// the machine, not a prediction. The default analytic model goes
// through the same interface and delegates to the identical core
// methods, so default responses are byte-identical to the pre-model
// surface.
func evaluate(q evalRequest) ([]byte, error) {
	prec, err := parsePrecision(q.Precision)
	if err != nil {
		return nil, err
	}
	m := catalog()[q.Machine]
	p := core.FromMachine(m, prec)
	em, err := model.For(q.Model, q.Machine, prec)
	if err != nil {
		return nil, badRequest("eval: %v", err)
	}
	k := core.KernelAt(q.Work, q.Intensity)
	score, err := metrics.EvaluateModel(em, p, k)
	if err != nil {
		return nil, badRequest("eval: %v", err)
	}
	resp := evalResponse{
		Machine:        q.Machine,
		Precision:      prec.String(),
		Model:          q.Model,
		Work:           q.Work,
		Intensity:      q.Intensity,
		Time:           score.Time,
		Energy:         score.Energy,
		AvgPower:       em.Power(k),
		CappedTime:     em.CappedTime(k),
		CappedEnergy:   em.CappedEnergy(k),
		CappedPower:    em.CappedPower(k),
		TimeBound:      p.TimeBound(k).String(),
		EnergyBound:    p.EnergyBound(k).String(),
		BalanceTime:    p.BalanceTime(),
		BalanceEnergy:  p.BalanceEnergy(),
		HalfEfficiency: p.HalfEfficiencyIntensity(),
		RooflineTime:   p.RooflineTime(q.Intensity),
		ArchlineEnergy: p.ArchlineEnergy(q.Intensity),
		PowerLine:      p.PowerLine(q.Intensity),
		RaceToHalt:     p.RaceToHaltEffective(),
		EDP:            score.EDP,
		FlopsPerJoule:  score.FlopsPerJoule,
		FlopsPerSecond: score.FlopsPerSecond,
		GreenIndex:     score.GreenIndex,
		SpeedIndex:     score.SpeedIndex,
	}
	return encodeEvalResponse(&resp)
}

// handleEval implements POST /v1/eval. Eval queries are cheap (pure
// closed-form model evaluation), so they are cached by canonical hash
// but not coalesced. The warm path — pooled body read, hand-rolled
// decode, canonical hash, lock-free cache hit — runs without taking
// any lock and with near-zero allocations.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.mRequestsEval.Inc()
	start := time.Now()
	defer func() { s.mLatEval.Observe(time.Since(start)) }()
	_, sp := s.tracer.StartRoot(r.Context(), "http.eval")
	defer sp.End()

	var q evalRequest
	bp, err := readBody(r, s.cfg.MaxBodyBytes)
	if err == nil {
		err = decodeEvalRequest(*bp, &q)
		releaseBody(bp)
	}
	if err != nil {
		sp.Tag("error", "bad_body")
		s.writeError(w, badRequest("bad request body: %v", err))
		return
	}
	if err := checkEval(&q); err != nil {
		sp.Tag("error", "invalid")
		s.writeError(w, err)
		return
	}
	key := hashEval(q)
	if body, ok := s.cache.Get(key); ok {
		s.mCacheHits.Inc()
		sp.Tag("cache", "hit")
		writeCached(w, key, "hit", body)
		return
	}
	s.mCacheMisses.Inc()
	body, err := evaluate(q)
	if err != nil {
		sp.Tag("error", "eval")
		s.writeError(w, err)
		return
	}
	s.mEvalComputes.Inc()
	s.cache.Put(key, body)
	sp.Tag("cache", "miss")
	writeCached(w, key, "miss", body)
}

// checkCampaign validates a campaign request against the engine's own
// rules (campaign.Validate: unknown machines, NaN/Inf fields, inverted
// ranges, allocation-scale grids) and the service-level cost caps.
func (s *Server) checkCampaign(cfg campaign.Config) error {
	if err := cfg.Validate(); err != nil {
		return badRequest("%v", err)
	}
	if cfg.Points > s.cfg.MaxPoints {
		return badRequest("campaign: %d grid points exceed this server's limit of %d", cfg.Points, s.cfg.MaxPoints)
	}
	if cfg.Reps > s.cfg.MaxReps {
		return badRequest("campaign: %d reps exceed this server's limit of %d", cfg.Reps, s.cfg.MaxReps)
	}
	return nil
}

// handleCampaign implements POST /v1/campaign: cache lookup by
// canonical hash, then singleflight execution on a budget-bounded
// worker pool. The response body is the campaign Result JSON —
// byte-identical whether it came from the engine, the cache, or a
// coalesced flight.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	s.mRequestsCampaign.Inc()
	start := time.Now()
	defer func() { s.mLatCampaign.Observe(time.Since(start)) }()
	_, sp := s.tracer.StartRoot(r.Context(), "http.campaign")
	defer sp.End()

	var cfg campaign.Config
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &cfg); err != nil {
		sp.Tag("error", "bad_body")
		s.writeError(w, err)
		return
	}
	if err := s.checkCampaign(cfg); err != nil {
		sp.Tag("error", "invalid")
		s.writeError(w, err)
		return
	}
	key := hashCampaign(cfg)
	if body, ok := s.cache.Get(key); ok {
		s.mCacheHits.Inc()
		sp.Tag("cache", "hit")
		writeCached(w, key, "hit", body)
		return
	}
	s.mCacheMisses.Inc()

	// The flight leader runs the engine under the server's base context
	// (plus the request timeout), not the leader's request context: the
	// execution is shared, so one client disconnecting must not cancel
	// the run for its co-waiters. Waiters stop waiting — without
	// cancelling the flight — when their own request context ends.
	body, leader, err := s.flights.do(r.Context(), key, func() ([]byte, error) {
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
		defer cancel()
		// The engine context carries the server tracer so campaign,
		// sweep, and pool spans from the shared execution land in the
		// same ring buffer as the request spans.
		ctx = trace.WithTracer(ctx, s.tracer)
		granted, release, err := s.budget.Acquire(ctx, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
		defer release()
		s.mEngineRuns.Inc()
		sp.Tag("engine_run", true).Tag("workers", granted)
		res, err := s.engine(ctx, cfg, granted)
		if err != nil {
			return nil, err
		}
		data, err := res.ToJSON()
		if err != nil {
			return nil, err
		}
		data = append(data, '\n')
		s.cache.Put(key, data)
		return data, nil
	})
	if err != nil {
		sp.Tag("error", "engine")
		s.writeError(w, err)
		return
	}
	source := "miss"
	if !leader {
		source = "coalesced"
		s.mCoalesced.Inc()
	}
	sp.Tag("cache", source)
	writeCached(w, key, source, body)
}

// handleMetrics implements GET /metrics. Cache and budget levels are
// copied into gauges at scrape time so the page reflects the instant it
// was rendered.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("requests_metrics_total").Inc()
	cs := s.cache.Snapshot()
	s.reg.Gauge("cache_entries").Set(int64(s.cache.Len()))
	s.reg.Gauge("cache_bytes").Set(s.cache.SizeBytes())
	s.reg.Gauge("cache_evictions").Set(int64(cs.Evictions))
	s.reg.Gauge("cache_expirations").Set(int64(cs.Expirations))
	s.reg.Gauge("workers_budget").Set(int64(s.budget.Cap()))
	s.reg.Gauge("workers_in_use").Set(int64(s.budget.InUse()))
	s.reg.Gauge("flights_in_flight").Set(int64(s.flights.inFlight()))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.reg.Render())
}

// handleTrace implements GET /debug/trace (Debug only): the current
// span ring buffer as Chrome trace_event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev. ?reset=1 clears the
// buffer after the dump, so successive captures don't overlap.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("requests_debug_trace_total").Inc()
	w.Header().Set("Content-Type", "application/json")
	if err := s.tracer.WriteChrome(w); err != nil {
		s.writeError(w, err)
		return
	}
	if r.URL.Query().Get("reset") == "1" {
		s.tracer.Reset()
	}
}

// decodeBody strictly decodes one JSON value from the request body,
// rejecting unknown fields, trailing garbage, and bodies over maxBytes.
func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("bad request body: trailing data after JSON value")
	}
	return nil
}
