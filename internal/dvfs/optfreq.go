package dvfs

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/model"
)

// OptFreqPoint is the energy-minimal operating point at one intensity.
type OptFreqPoint struct {
	// Intensity is the grid intensity in flop/byte.
	Intensity float64 `json:"intensity"`
	// Point names the energy-minimal operating point (slowest wins
	// ties).
	Point string `json:"point"`
	// FreqScale is that point's clock fraction.
	FreqScale float64 `json:"freq_scale"`
	// EnergyJ is the kernel energy at the optimal point.
	EnergyJ float64 `json:"energy_j"`
	// BaseEnergyJ is the kernel energy at full clock.
	BaseEnergyJ float64 `json:"base_energy_j"`
	// SavingsFrac is 1 − EnergyJ/BaseEnergyJ, the DVFS saving.
	SavingsFrac float64 `json:"savings_frac"`
}

// OptFreqCurve is one (machine, precision) pair's optimal-frequency
// sweep.
type OptFreqCurve struct {
	// Machine is the studied catalog key.
	Machine string `json:"machine"`
	// Precision is the studied precision name.
	Precision string `json:"precision"`
	// Points are the per-intensity optima, grid order.
	Points []OptFreqPoint `json:"points"`
	// Monotone reports whether the optimal clock fraction never
	// decreases as intensity grows — the theory's prediction for every
	// synthesized curve.
	Monotone bool `json:"monotone"`
}

// optFreqCurve sweeps every operating point of m through the batch
// model evaluator and records the per-intensity energy argmin. The
// per-point energies come from model.EnergyModel.EvalInto — the same
// fused columnar path everything else uses; there is no scalar sweep.
func optFreqCurve(m *machine.Machine, key string, prec machine.Precision, work float64, grid []float64) OptFreqCurve {
	curve := m.OperatingPoints
	n := len(grid)
	w := make([]float64, n)
	for j := range w {
		w[j] = work
	}
	q := make([]float64, n)
	core.QAtInto(q, w, grid)

	energies := make([][]float64, len(curve))
	var b core.Batch
	for pi, op := range curve {
		var em model.EnergyModel = model.NewAnalytic(core.FromMachineAt(m, prec, op))
		em.EvalInto(&b, w, q)
		energies[pi] = append([]float64(nil), b.Energy...)
	}
	base := energies[len(curve)-1]

	out := OptFreqCurve{Machine: key, Precision: prec.String(), Monotone: true}
	prev := -1
	for j := range grid {
		// Scan slowest → fastest with a strict improvement test: ties go
		// to the slowest clock, which preserves monotonicity.
		best := 0
		for pi := 1; pi < len(curve); pi++ {
			if energies[pi][j] < energies[best][j] {
				best = pi
			}
		}
		if best < prev {
			out.Monotone = false
		}
		prev = best
		op := curve[best]
		e := energies[best][j]
		out.Points = append(out.Points, OptFreqPoint{
			Intensity:   grid[j],
			Point:       op.Name,
			FreqScale:   op.FreqScale,
			EnergyJ:     e,
			BaseEnergyJ: base[j],
			SavingsFrac: 1 - e/base[j],
		})
	}
	return out
}
