package dvfs

import (
	"fmt"

	"repro/internal/chart"
)

// OptFreqChart builds the optimal-frequency step figure for one
// (machine, precision) curve: the energy-minimal clock fraction
// against operational intensity.
func OptFreqChart(c *OptFreqCurve) *chart.Chart {
	xs := make([]float64, len(c.Points))
	ys := make([]float64, len(c.Points))
	for i, p := range c.Points {
		xs[i] = p.Intensity
		ys[i] = p.FreqScale
	}
	return &chart.Chart{
		Title:  fmt.Sprintf("energy-optimal clock vs intensity — %s (%s)", c.Machine, c.Precision),
		XLabel: "operational intensity (flops/byte)",
		YLabel: "optimal clock fraction s*",
		LogX:   true,
		Series: []chart.Series{
			{Name: "s*(I)", X: xs, Y: ys, Line: true, Marker: '*'},
		},
	}
}

// RaceIdleChart builds the policy-energy figure: each machine's total
// energy over the deadline as a function of the pinned clock fraction,
// with the fastest point being race-to-idle.
func RaceIdleChart(s *Study) *chart.Chart {
	ch := &chart.Chart{
		Title:  "race-to-idle vs pace-to-fill — policy energy by pinned clock",
		XLabel: "pinned clock fraction s",
		YLabel: "energy over deadline (J)",
		LogY:   true,
	}
	markers := []rune{'g', '8', '4', 'i', '*', '+'}
	for i := range s.RaceIdle {
		r := &s.RaceIdle[i]
		xs := make([]float64, len(r.Policies))
		ys := make([]float64, len(r.Policies))
		for j, p := range r.Policies {
			xs[j] = p.FreqScale
			ys[j] = p.EnergyJ
		}
		ch.Series = append(ch.Series, chart.Series{
			Name: r.Machine, X: xs, Y: ys, Line: true, Marker: markers[i%len(markers)],
		})
	}
	return ch
}

// DispatchChart builds the dispatch figure: the winning platform's
// greenup and speedup over the CPU baseline against intensity.
func DispatchChart(s *Study) *chart.Chart {
	n := len(s.Dispatch.Choices)
	xs := make([]float64, n)
	gs := make([]float64, n)
	sp := make([]float64, n)
	for i := range s.Dispatch.Choices {
		c := &s.Dispatch.Choices[i]
		xs[i] = c.Intensity
		gs[i] = c.Greenup
		sp[i] = c.Speedup
	}
	return &chart.Chart{
		Title:  "heterogeneous dispatch — winner vs " + s.Dispatch.Baseline,
		XLabel: "operational intensity (flops/byte)",
		YLabel: "ratio vs baseline",
		LogX:   true,
		LogY:   true,
		Series: []chart.Series{
			{Name: "greenup", X: xs, Y: gs, Line: true, Marker: 'g'},
			{Name: "speedup", X: xs, Y: sp, Line: true, Marker: 's'},
		},
	}
}
