package dvfs

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/powermon"
	"repro/internal/stats"
	"repro/internal/units"
)

// PolicyEnergy returns the energy of completing kernel k on machine
// parameters p pinned at operating point op, then idling at idleW
// watts until the deadline: the pace-to-fill family, with the base
// point giving race-to-idle. It errors if the point cannot meet the
// deadline.
func PolicyEnergy(p core.Params, op machine.OperatingPoint, k core.Kernel, idleW, deadline float64) (float64, error) {
	pp := p.AtOperatingPoint(op)
	t := pp.Time(k)
	if t > deadline*(1+1e-9) {
		return 0, fmt.Errorf("dvfs: point %s needs %g s, deadline %g s", op.Name, t, deadline)
	}
	idle := deadline - t
	if idle < 0 {
		idle = 0
	}
	return pp.Energy(k) + idleW*idle, nil
}

// Crossover returns the constant-power threshold π0* above which
// race-to-idle (finish at full clock, idle until the deadline) beats
// pacing at every slower point of the curve, for kernel k with idle
// draw idleW. p supplies τ and ε; its own Pi0 is NOT consulted — the
// threshold is the value to compare it against.
//
// Derivation: both policies idle until the same deadline, and racing
// idles longer — so racing pays more idle energy, and a cheap idle
// state is what favors it. Per non-base point s,
//
//	E_race − E_pace(s) = A(s) − π0·B(s) + idleW·C(s)
//	A(s) = dyn(1) − dyn(s)          (dynamic-energy saving of pacing)
//	B(s) = p(s)·T(s) − T(1)         (extra constant energy of pacing)
//	C(s) = T(s) − T(1)              (extra idle time racing pays for)
//
// With every B(s) > 0 (guaranteed for compute-bound kernels under a
// validated scaling law) race wins exactly when π0 ≥ max_s
// (A(s) + idleW·C(s))/B(s), and ok is true. An all-memory-bound curve
// has B(s) < 0 with positive pacing savings, so racing never wins:
// the threshold is +Inf, ok still true. Degenerate regimes where some
// B(s) < 0 yet pacing saves nothing are not expressible as a π0 floor;
// then ok is false.
func Crossover(p core.Params, curve []machine.OperatingPoint, k core.Kernel, idleW float64) (float64, bool) {
	t1 := p.Time(k)
	dyn1 := k.W*p.EpsFlop + k.Q*p.EpsMem
	thr := 0.0
	for _, op := range curve {
		if op.IsBase() {
			continue
		}
		ts := math.Max(k.W*p.TauFlop*op.TauFlopScale, k.Q*p.TauMem*op.TauMemScale)
		dyns := k.W*p.EpsFlop*op.EpsFlopScale + k.Q*p.EpsMem*op.EpsMemScale
		a := dyn1 - dyns
		b := op.Pi0Scale*ts - t1
		c := ts - t1
		num := a + idleW*c
		switch {
		case b > 0:
			if v := num / b; v > thr {
				thr = v
			}
		case num > 0:
			// Pacing at s saves dynamic energy at no constant-energy or
			// idle cost: it beats racing at any π0.
			return math.Inf(1), true
		case b < 0:
			// Race wins only below a π0 ceiling — not a floor.
			return 0, false
		}
	}
	return thr, true
}

// PacePolicy is one policy's energy in a race-to-idle case.
type PacePolicy struct {
	// Point names the operating point the policy pins.
	Point string `json:"point"`
	// FreqScale is the point's clock fraction.
	FreqScale float64 `json:"freq_scale"`
	// EnergyJ is the policy's total energy over the deadline.
	EnergyJ float64 `json:"energy_j"`
}

// RaceIdleCase is one machine's race-to-idle vs pace-to-fill analysis
// under one idle-state assumption.
type RaceIdleCase struct {
	// Machine is the studied catalog key.
	Machine string `json:"machine"`
	// Scenario names the idle-state assumption: "deep-idle" (waiting is
	// free — the race-to-idle limit) or "shallow-idle" (waiting draws
	// the machine's measured idle power).
	Scenario string `json:"scenario"`
	// Precision is the studied precision name.
	Precision string `json:"precision"`
	// WorkFlops is the fixed work budget.
	WorkFlops float64 `json:"work_flops"`
	// Intensity is the kernel intensity (4·Bτ: compute-bound at every
	// point).
	Intensity float64 `json:"intensity"`
	// DeadlineS is the shared deadline — the slowest point's runtime.
	DeadlineS float64 `json:"deadline_s"`
	// IdleW is the idle draw both policies pay while waiting.
	IdleW float64 `json:"idle_w"`
	// Pi0W is the machine's constant power.
	Pi0W float64 `json:"pi0_w"`
	// CrossoverW is the closed-form π0 threshold above which racing
	// wins.
	CrossoverW float64 `json:"crossover_w"`
	// CrossoverOk reports whether the threshold form is exact here.
	CrossoverOk bool `json:"crossover_ok"`
	// RaceWins reports whether racing's energy is at most every pacing
	// policy's.
	RaceWins bool `json:"race_wins"`
	// RaceEnergyJ is race-to-idle's closed-form energy.
	RaceEnergyJ float64 `json:"race_energy_j"`
	// BestPacePoint names the best pacing point.
	BestPacePoint string `json:"best_pace_point"`
	// BestPaceEnergyJ is the best pacing policy's energy.
	BestPaceEnergyJ float64 `json:"best_pace_energy_j"`
	// Policies lists every policy's energy, slowest point first.
	Policies []PacePolicy `json:"policies"`
	// MeasuredRaceJ is the simulated powermon measurement of the race
	// power profile over the deadline.
	MeasuredRaceJ float64 `json:"measured_race_j"`
	// MeasuredRelErr is |MeasuredRaceJ/RaceEnergyJ − 1|.
	MeasuredRelErr float64 `json:"measured_rel_err"`
}

// stepSource is the race-to-idle power profile: active draw until the
// work completes, idle draw afterwards.
type stepSource struct {
	activeW, idleW float64
	tActive        float64
}

// PowerAt implements powermon.Source.
func (s stepSource) PowerAt(t units.Seconds) units.Watts {
	if float64(t) < s.tActive {
		return units.Watts(s.activeW)
	}
	return units.Watts(s.idleW)
}

// raceMonitorRateHz oversamples the paper's 128 Hz so the step edge of
// the race profile lands within one sample period even in fast runs.
const raceMonitorRateHz = 1024

// raceIdleCases builds one machine's race-vs-pace analysis under both
// idle-state assumptions (deep idle first): closed-form policy energies
// over the curve, the π0 crossover, and a powermon validation of each
// race profile.
func raceIdleCases(m *machine.Machine, key string, cfg Config, seed int64) ([]RaceIdleCase, error) {
	out := make([]RaceIdleCase, 0, 2)
	for sub, sc := range []struct {
		name  string
		idleW float64
	}{
		{"deep-idle", 0},
		{"shallow-idle", float64(m.IdlePower)},
	} {
		c, err := raceIdleCase(m, key, sc.name, sc.idleW, cfg,
			stats.DeriveSeed(seed, uint64(sub)))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// raceIdleCase builds one (machine, idle-state) race-vs-pace case.
func raceIdleCase(m *machine.Machine, key, scenario string, idleW float64, cfg Config, seed int64) (RaceIdleCase, error) {
	p := core.FromMachine(m, machine.Double)
	intensity := 4 * p.BalanceTime()
	k := core.KernelAt(cfg.RaceWork, intensity)
	curve := m.OperatingPoints
	deadline := p.AtOperatingPoint(curve[0]).Time(k)

	out := RaceIdleCase{
		Machine:   key,
		Scenario:  scenario,
		Precision: machine.Double.String(),
		WorkFlops: cfg.RaceWork,
		Intensity: intensity,
		DeadlineS: deadline,
		IdleW:     idleW,
		Pi0W:      p.Pi0,
	}
	bestPace := math.Inf(1)
	for _, op := range curve {
		e, err := PolicyEnergy(p, op, k, idleW, deadline)
		if err != nil {
			return RaceIdleCase{}, err
		}
		out.Policies = append(out.Policies, PacePolicy{Point: op.Name, FreqScale: op.FreqScale, EnergyJ: e})
		if op.IsBase() {
			out.RaceEnergyJ = e
		} else if e < bestPace {
			bestPace = e
			out.BestPacePoint = op.Name
		}
	}
	out.BestPaceEnergyJ = bestPace
	out.RaceWins = out.RaceEnergyJ <= bestPace
	out.CrossoverW, out.CrossoverOk = Crossover(p, curve, k, idleW)

	// Validate the race closed form against a simulated powermon trace
	// of its step power profile: active average power until T(1), idle
	// draw until the deadline.
	channels := powermon.GPUChannels()
	if strings.HasPrefix(key, "i7") {
		channels = powermon.CPUChannels()
	}
	mon, err := powermon.New(channels, powermon.Config{RateHz: raceMonitorRateHz, Seed: seed})
	if err != nil {
		return RaceIdleCase{}, err
	}
	src := stepSource{activeW: p.AveragePower(k), idleW: idleW, tActive: p.Time(k)}
	tr, err := mon.Measure(src, units.Seconds(deadline))
	if err != nil {
		return RaceIdleCase{}, err
	}
	out.MeasuredRaceJ = float64(tr.Energy())
	out.MeasuredRelErr = stats.RelErr(out.MeasuredRaceJ, out.RaceEnergyJ)
	return out, nil
}
