package dvfs

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden study:
//
//	go test ./internal/dvfs/ -run TestStudyGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenPath is the pinned fast-config study artifact.
const goldenPath = "testdata/dvfs_golden.json"

// TestStudyGolden pins the study's determinism contract: the fast
// study's JSON must be byte-identical at workers 1 and 8 AND across
// commits — any change to the catalog curves, the scaling law, the
// batch evaluator, the crossover closed form, the powermon noise
// streams, or the report encoding shows up as a golden diff that has
// to be re-pinned deliberately.
func TestStudyGolden(t *testing.T) {
	var reports [][]byte
	for _, workers := range []int{1, 8} {
		st, err := Run(context.Background(), Config{Fast: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := st.ToJSON()
		if err != nil {
			t.Fatalf("workers=%d: ToJSON: %v", workers, err)
		}
		reports = append(reports, data)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Fatal("study at workers=8 differs from workers=1")
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, reports[0], 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(reports[0]))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(reports[0], want) {
		t.Fatalf("study drifted from %s (%d vs %d bytes); review and re-pin with -update",
			goldenPath, len(reports[0]), len(want))
	}
}
