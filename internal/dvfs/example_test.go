package dvfs_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dvfs"
)

// Heterogeneous dispatch: the eq. 10 incumbent scan picks a
// platform-and-frequency per kernel. Memory-bound work goes to a
// downclocked GPU variant (same bandwidth, less constant power);
// compute-bound work races on the full-clock GPU.
func ExampleDispatch() {
	plats, err := dvfs.DefaultPlatforms()
	if err != nil {
		panic(err)
	}
	for _, intensity := range []float64{0.125, 0.5, 32} {
		k := core.KernelAt(1e9, intensity)
		best := plats[dvfs.Dispatch(plats, k)]
		fmt.Printf("I=%-6g -> %s\n", intensity, best.Label)
	}
	// Output:
	// I=0.125  -> gtx580-4sm@0.55x
	// I=0.5    -> gtx580@0.70x
	// I=32     -> gtx580@1.00x
}
