package dvfs

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/units"
)

// randMachine builds a synthetic but valid machine from random model
// parameters, with the given curve attached.
func randMachine(rng *rand.Rand, curve []machine.OperatingPoint) *machine.Machine {
	peak := 20e9 * math.Exp2(4*rng.Float64())      // 20–320 Gflop/s
	bw := 10e9 * math.Exp2(4*rng.Float64())        // 10–160 GB/s
	epsF := 50e-12 * math.Exp2(4*rng.Float64())    // 50–800 pJ/flop
	epsM := 100e-12 * math.Exp2(4*rng.Float64())   // 0.1–1.6 nJ/byte
	pi0 := 5 + 295*rng.Float64()                   // 5–300 W
	idle := pi0 * rng.Float64()                    // below π0
	pp := machine.PrecisionParams{PeakFlops: peak, EnergyPerFlop: units.Joules(epsF), AchievedFlopFrac: 1, AchievedBWFrac: 1}
	return &machine.Machine{
		Name:            "prop",
		Bandwidth:       bw,
		EnergyPerByte:   units.Joules(epsM),
		ConstantPower:   units.Watts(pi0),
		IdlePower:       units.Watts(idle),
		RatedPower:      units.Watts(pi0 * 2),
		FastMemory:      1 << 20,
		SP:              pp,
		DP:              pp,
		OperatingPoints: curve,
	}
}

// randLaw samples a valid scaling law: the floor is drawn at or above
// the convexity bound κ ≥ 1 − 1/(1+2(1−VMin)).
func randLaw(rng *rand.Rand) machine.ScalingLaw {
	vmin := 0.6 + 0.39*rng.Float64()
	kmin := 1 - 1/(1+2*(1-vmin))
	return machine.ScalingLaw{VMin: vmin, Pi0Floor: kmin + (1-kmin)*rng.Float64()}
}

// randScales samples 3–8 strictly increasing clock fractions ending at 1.
func randScales(rng *rand.Rand) []float64 {
	n := 3 + rng.Intn(6)
	set := map[float64]bool{1: true}
	for len(set) < n {
		// Snap to 0.01 so the synthesized "%.2fx" names stay unique.
		set[math.Round(100*(0.2+0.75*rng.Float64()))/100] = true
	}
	out := make([]float64, 0, n)
	for s := range set {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestPropertyOptFreqMonotoneAndCrossoverExact is the 300-trial
// property test: on every synthesized curve (1) the energy-optimal
// frequency is monotone non-decreasing in intensity, and (2)
// race-to-idle wins exactly when π0 is at or above the closed-form
// crossover.
func TestPropertyOptFreqMonotoneAndCrossoverExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	grid := core.LogGrid(1.0/32, 128, 33)
	for trial := 0; trial < 300; trial++ {
		law := randLaw(rng)
		if err := law.Validate(); err != nil {
			t.Fatalf("trial %d: sampled law invalid: %v", trial, err)
		}
		curve, err := law.Curve(randScales(rng))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m := randMachine(rng, curve)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: synthetic machine invalid: %v", trial, err)
		}

		// (1) Monotonicity of the optimal clock in intensity.
		oc := optFreqCurve(m, "prop", machine.Double, 1e9, grid)
		if !oc.Monotone {
			t.Fatalf("trial %d: optimal frequency not monotone: %+v", trial, oc.Points)
		}
		prev := 0.0
		for _, p := range oc.Points {
			if p.FreqScale < prev {
				t.Fatalf("trial %d: monotone flag true but freq scale decreases", trial)
			}
			prev = p.FreqScale
		}

		// (2) Exactness of the race-to-idle crossover on a compute-bound
		// kernel, checked on both sides of the threshold.
		p := core.FromMachine(m, machine.Double)
		k := core.KernelAt(1e9, (1.5+8*rng.Float64())*p.BalanceTime())
		idleW := 1.5 * p.Pi0 * rng.Float64()
		thr, ok := Crossover(p, curve, k, idleW)
		if !ok {
			t.Fatalf("trial %d: crossover not exact on a compute-bound kernel", trial)
		}
		if math.IsInf(thr, 1) {
			t.Fatalf("trial %d: infinite crossover on a compute-bound kernel", trial)
		}
		deadline := p.AtOperatingPoint(curve[0]).Time(k)
		raceWins := func(pi0 float64) bool {
			pp := p
			pp.Pi0 = pi0
			raceE, err := PolicyEnergy(pp, machine.BasePoint(), k, idleW, deadline)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for _, op := range curve {
				if op.IsBase() {
					continue
				}
				paceE, err := PolicyEnergy(pp, op, k, idleW, deadline)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if raceE > paceE*(1+1e-12) {
					return false
				}
			}
			return true
		}
		if thr > 0 {
			if !raceWins(thr * 1.01) {
				t.Fatalf("trial %d: π0 above crossover %g but race loses", trial, thr)
			}
			if raceWins(thr * 0.99) {
				t.Fatalf("trial %d: π0 below crossover %g but race wins", trial, thr)
			}
		} else if !raceWins(0) {
			t.Fatalf("trial %d: zero crossover but race loses at π0=0", trial)
		}
		// The machine's own π0 must classify consistently too (skip
		// knife-edge draws).
		if math.Abs(p.Pi0-thr) > 1e-6*(thr+1) {
			if got, want := raceWins(p.Pi0), p.Pi0 >= thr; got != want {
				t.Fatalf("trial %d: race wins %v at π0=%g, crossover %g", trial, got, p.Pi0, thr)
			}
		}
	}
}

func TestCrossoverMemoryBoundIsInfinite(t *testing.T) {
	curve := machine.DefaultCurve()
	m, _ := machine.Find("gtx580")
	p := core.FromMachine(m, machine.Double)
	// Memory-bound even at the slowest point: I ≤ s_min·Bτ.
	k := core.KernelAt(1e9, 0.5*curve[0].FreqScale*p.BalanceTime())
	thr, ok := Crossover(p, curve, k, 0)
	if !ok {
		t.Fatal("memory-bound crossover should still be expressible")
	}
	if !math.IsInf(thr, 1) {
		t.Fatalf("memory-bound crossover = %g, want +Inf (pacing is free speed)", thr)
	}
}

func TestPolicyEnergyDeadline(t *testing.T) {
	m, _ := machine.Find("gtx580")
	p := core.FromMachine(m, machine.Double)
	k := core.KernelAt(1e9, 4*p.BalanceTime())
	slow := m.OperatingPoints[0]
	tooTight := p.AtOperatingPoint(slow).Time(k) * 0.5
	if _, err := PolicyEnergy(p, slow, k, 0, tooTight); err == nil {
		t.Fatal("PolicyEnergy accepted an unmeetable deadline")
	}
	// Race at exactly its own runtime: no idle tail.
	raceT := p.Time(k)
	e, err := PolicyEnergy(p, machine.BasePoint(), k, 1e6, raceT)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e, p.Energy(k); math.Abs(got/want-1) > 1e-12 {
		t.Fatalf("zero idle tail energy %g, want %g", got, want)
	}
}

// TestDispatchScalarColumnarAgree pins that the scalar Dispatch scan
// and the columnar dispatch table pick the same platform at every grid
// intensity.
func TestDispatchScalarColumnarAgree(t *testing.T) {
	grid := core.LogGrid(1.0/16, 64, 41)
	table, err := dispatchTable(grid, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	plats, err := DefaultPlatforms()
	if err != nil {
		t.Fatal(err)
	}
	for j, intensity := range grid {
		k := core.KernelAt(1e9, intensity)
		want := plats[Dispatch(plats, k)].Label
		if got := table.Choices[j].Platform; got != want {
			t.Fatalf("I=%g: columnar chose %s, scalar chose %s", intensity, got, want)
		}
	}
}

func TestDispatchPrefersDownclockAtLowIntensityFullClockAtHigh(t *testing.T) {
	plats, err := DefaultPlatforms()
	if err != nil {
		t.Fatal(err)
	}
	low := plats[Dispatch(plats, core.KernelAt(1e9, 0.125))]
	high := plats[Dispatch(plats, core.KernelAt(1e9, 32))]
	if low.Point == "1.00x" {
		t.Fatalf("memory-bound work dispatched to full clock (%s)", low.Label)
	}
	if high.Label != "gtx580@1.00x" {
		t.Fatalf("compute-bound work dispatched to %s, want gtx580@1.00x", high.Label)
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Machines: []string{"nope"}}); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := Run(ctx, Config{Machines: []string{"fermi"}}); err == nil {
		t.Fatal("curveless machine accepted")
	}
	if _, err := Run(ctx, Config{Points: 1}); err == nil {
		t.Fatal("degenerate grid accepted")
	}
	if _, err := Run(ctx, Config{LoIntensity: 4, HiIntensity: 2}); err == nil {
		t.Fatal("inverted intensity range accepted")
	}
}

func TestStudyShape(t *testing.T) {
	st, err := Run(context.Background(), Config{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	nm := len(machine.DVFSCatalogKeys())
	if len(st.OptFreq) != 2*nm {
		t.Fatalf("%d optfreq curves, want %d", len(st.OptFreq), 2*nm)
	}
	if len(st.RaceIdle) != 2*nm {
		t.Fatalf("%d raceidle cases, want %d", len(st.RaceIdle), 2*nm)
	}
	for i := range st.RaceIdle {
		r := &st.RaceIdle[i]
		if !r.CrossoverOk {
			t.Fatalf("%s/%s: crossover not exact", r.Machine, r.Scenario)
		}
		if got, want := r.RaceWins, r.Pi0W >= r.CrossoverW; got != want {
			t.Fatalf("%s/%s: race wins %v but π0=%g vs crossover %g", r.Machine, r.Scenario, got, r.Pi0W, r.CrossoverW)
		}
		if r.MeasuredRelErr > 0.02 {
			t.Fatalf("%s/%s: powermon deviates %.2f%% from the closed form", r.Machine, r.Scenario, 100*r.MeasuredRelErr)
		}
	}
	for i := range st.OptFreq {
		if !st.OptFreq[i].Monotone {
			t.Fatalf("%s/%s: optimal frequency not monotone", st.OptFreq[i].Machine, st.OptFreq[i].Precision)
		}
	}
	if len(st.Dispatch.Choices) != len(st.Intensities) {
		t.Fatalf("dispatch table has %d choices, want %d", len(st.Dispatch.Choices), len(st.Intensities))
	}
	// Charts render for a populated study.
	for _, ch := range []interface{ RenderASCII() (string, error) }{
		OptFreqChart(&st.OptFreq[0]), RaceIdleChart(st), DispatchChart(st),
	} {
		if _, err := ch.RenderASCII(); err != nil {
			t.Fatal(err)
		}
	}
}
