// Package dvfs studies the frequency-scaling dimension the machine
// catalog's OperatingPoint curves add to the energy roofline, in three
// scenarios:
//
//   - Optimal frequency: for every (machine, precision) with a DVFS
//     curve, sweep each operating point through the batch model
//     evaluator and record the energy-minimal point per operational
//     intensity. Under the synthesized voltage-frequency law the
//     optimal clock is monotone non-decreasing in intensity: memory-
//     bound work tolerates a slow, low-voltage clock; compute-bound
//     work pays π0 for longer and races.
//   - Race-to-idle vs pace-to-fill: for a fixed work budget and
//     deadline, either finish at full clock and idle, or stretch the
//     work across the deadline at a slower point. The closed-form
//     crossover (Crossover) gives the π0 above which racing wins; a
//     simulated powermon measurement of the race power profile
//     validates the closed form.
//   - Heterogeneous dispatch: an eq. 10 greenup/speedup incumbent scan
//     (the cluster router's rules) picks a platform-and-frequency per
//     kernel from a CPU/GPU/multi-SM candidate set.
//
// A study is deterministic: all simulated noise derives from
// (Config.Seed, machine index), cells evaluate in a fixed order, and
// the JSON form is byte-identical at any worker count (the golden test
// pins this).
package dvfs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// raceStream tags the powermon noise streams derived per machine.
const raceStream uint64 = 0x52414345 // "RACE"

// Config controls one DVFS study. Zero fields take defaults.
type Config struct {
	// Machines are the DVFS catalog keys to study (default: the whole
	// DVFS catalog, sorted). Every machine must carry an operating-point
	// curve.
	Machines []string
	// Work is the per-kernel flop count of the optimal-frequency and
	// dispatch sweeps (default 1e9).
	Work float64
	// RaceWork is the work budget of the race-to-idle scenario, sized so
	// the simulated powermon trace has enough samples (default 100e9;
	// 10e9 when Fast).
	RaceWork float64
	// LoIntensity and HiIntensity bound the intensity grid in flop/byte
	// (defaults 1/16 and 64).
	LoIntensity, HiIntensity float64
	// Points is the intensity grid size (default 25; 13 when Fast).
	Points int
	// Seed roots the powermon measurement noise (default 11).
	Seed int64
	// Fast shrinks the grid and the race work budget for test runs.
	Fast bool
	// Workers bounds how many machines are studied concurrently; < 1
	// means one per CPU. The output is byte-identical at any value.
	Workers int
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if len(c.Machines) == 0 {
		c.Machines = machine.DVFSCatalogKeys()
	}
	if c.Work == 0 {
		c.Work = 1e9
	}
	if c.RaceWork == 0 {
		if c.Fast {
			c.RaceWork = 10e9
		} else {
			c.RaceWork = 100e9
		}
	}
	if c.LoIntensity == 0 {
		c.LoIntensity = 1.0 / 16
	}
	if c.HiIntensity == 0 {
		c.HiIntensity = 64
	}
	if c.Points == 0 {
		if c.Fast {
			c.Points = 13
		} else {
			c.Points = 25
		}
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	return c
}

// Study is the full report over every scenario.
type Study struct {
	// Seed echoes the run's root seed.
	Seed int64 `json:"seed"`
	// Work is the per-kernel flop count of the sweeps.
	Work float64 `json:"work"`
	// RaceWork is the race-to-idle work budget.
	RaceWork float64 `json:"race_work"`
	// Intensities is the sweep grid in flop/byte.
	Intensities []float64 `json:"intensities"`
	// OptFreq holds the optimal-frequency curves, machine-major in
	// config order, double precision before single.
	OptFreq []OptFreqCurve `json:"opt_freq"`
	// RaceIdle holds the race-vs-pace cases, machine-major in config
	// order, deep-idle before shallow-idle (double precision,
	// compute-bound kernel).
	RaceIdle []RaceIdleCase `json:"race_idle"`
	// Dispatch is the heterogeneous dispatch table over the fixed
	// default platform set (independent of Machines).
	Dispatch DispatchTable `json:"dispatch"`
}

// cellResult is one machine's share of the study.
type cellResult struct {
	double, single OptFreqCurve
	races          []RaceIdleCase
}

// Run evaluates every scenario cfg selects. The result is a pure
// function of cfg minus Workers.
func Run(ctx context.Context, cfg Config) (*Study, error) {
	cfg = cfg.withDefaults()
	if cfg.Points < 2 {
		return nil, fmt.Errorf("dvfs: points must be >= 2, got %d", cfg.Points)
	}
	if !(cfg.LoIntensity > 0 && cfg.HiIntensity > cfg.LoIntensity) {
		return nil, fmt.Errorf("dvfs: bad intensity range [%g, %g]", cfg.LoIntensity, cfg.HiIntensity)
	}
	if !(cfg.Work > 0) || !(cfg.RaceWork > 0) {
		return nil, fmt.Errorf("dvfs: work budgets must be positive")
	}
	for _, key := range cfg.Machines {
		m, ok := machine.Find(key)
		if !ok {
			return nil, fmt.Errorf("dvfs: unknown machine %q", key)
		}
		if len(m.OperatingPoints) == 0 {
			return nil, fmt.Errorf("dvfs: machine %q has no operating-point curve", key)
		}
	}
	grid := core.LogGrid(cfg.LoIntensity, cfg.HiIntensity, cfg.Points)
	results, err := parallel.Map(ctx, len(cfg.Machines), cfg.Workers, func(ctx context.Context, i int) (cellResult, error) {
		key := cfg.Machines[i]
		m, _ := machine.Find(key)
		var res cellResult
		res.double = optFreqCurve(m, key, machine.Double, cfg.Work, grid)
		res.single = optFreqCurve(m, key, machine.Single, cfg.Work, grid)
		races, err := raceIdleCases(m, key, cfg, stats.DeriveSeed(cfg.Seed, raceStream, uint64(i)))
		if err != nil {
			return cellResult{}, fmt.Errorf("dvfs: %s: %v", key, err)
		}
		res.races = races
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	st := &Study{
		Seed:        cfg.Seed,
		Work:        cfg.Work,
		RaceWork:    cfg.RaceWork,
		Intensities: grid,
	}
	for _, r := range results {
		st.OptFreq = append(st.OptFreq, r.double, r.single)
		st.RaceIdle = append(st.RaceIdle, r.races...)
	}
	disp, err := dispatchTable(grid, cfg.Work)
	if err != nil {
		return nil, err
	}
	st.Dispatch = disp
	return st, nil
}

// ToJSON renders the study as deterministic, indented JSON — the
// artifact the golden test pins and cmd/dvfs -json writes.
func (s *Study) ToJSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Render formats the study as fixed-width text tables.
func (s *Study) Render() string {
	var sb strings.Builder
	sb.WriteString("optimal frequency per intensity (energy-minimal operating point):\n")
	fmt.Fprintf(&sb, "%-12s %-6s %12s %10s %12s %10s %9s\n",
		"machine", "prec", "I lo", "s*(lo)", "I hi", "s*(hi)", "monotone")
	for i := range s.OptFreq {
		c := &s.OptFreq[i]
		lo, hi := c.Points[0], c.Points[len(c.Points)-1]
		fmt.Fprintf(&sb, "%-12s %-6s %12.4f %10s %12.4f %10s %9v\n",
			c.Machine, c.Precision, lo.Intensity, lo.Point, hi.Intensity, hi.Point, c.Monotone)
	}
	sb.WriteString("\nrace-to-idle vs pace-to-fill (double precision, compute-bound):\n")
	fmt.Fprintf(&sb, "%-12s %-13s %8s %12s %10s %12s %12s %10s %10s\n",
		"machine", "idle state", "pi0 W", "crossover W", "race wins", "race J", "best pace J", "pace pt", "meas err")
	for i := range s.RaceIdle {
		r := &s.RaceIdle[i]
		fmt.Fprintf(&sb, "%-12s %-13s %8.1f %12.1f %10v %12.1f %12.1f %10s %9.2f%%\n",
			r.Machine, r.Scenario, r.Pi0W, r.CrossoverW, r.RaceWins, r.RaceEnergyJ, r.BestPaceEnergyJ,
			r.BestPacePoint, 100*r.MeasuredRelErr)
	}
	sb.WriteString("\nheterogeneous dispatch (eq. 10 incumbent scan, baseline " + s.Dispatch.Baseline + "):\n")
	fmt.Fprintf(&sb, "%-12s %-18s %10s %10s %-20s\n", "I", "platform", "greenup", "speedup", "class")
	for i := range s.Dispatch.Choices {
		c := &s.Dispatch.Choices[i]
		fmt.Fprintf(&sb, "%-12.4f %-18s %10.2f %10.2f %-20s\n",
			c.Intensity, c.Platform, c.Greenup, c.Speedup, c.Class)
	}
	return sb.String()
}

// MarkdownTable renders the dispatch choices as a GitHub-flavoured
// markdown table (embedded in EXPERIMENTS.md).
func (s *Study) MarkdownTable() string {
	var sb strings.Builder
	sb.WriteString("| intensity | platform | greenup | speedup | class |\n")
	sb.WriteString("|---|---|---|---|---|\n")
	for i := range s.Dispatch.Choices {
		c := &s.Dispatch.Choices[i]
		fmt.Fprintf(&sb, "| %.4f | %s | %.2f | %.2f | %s |\n",
			c.Intensity, c.Platform, c.Greenup, c.Speedup, c.Class)
	}
	return sb.String()
}
