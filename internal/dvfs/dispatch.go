package dvfs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/model"
)

// Candidate is one platform-and-frequency a kernel can be dispatched
// to.
type Candidate struct {
	// Machine is the catalog key.
	Machine string
	// Point names the pinned operating point.
	Point string
	// Label is "machine@point", the report identifier.
	Label string
	// P are the pinned model parameters.
	P core.Params
	// EM evaluates the candidate through the EnergyModel interface (the
	// columnar dispatch table uses its EvalInto).
	EM model.EnergyModel
}

// DefaultPlatforms returns the study's fixed candidate set, baseline
// first: the CPU at full clock, then progressively beefier downclocked
// and full-clock GPU variants. Scan order is the tiebreak, so the list
// order is part of the study's contract.
func DefaultPlatforms() ([]Candidate, error) {
	specs := []struct{ mkey, point string }{
		{"i7-950", "1.00x"}, // baseline
		{"i7-950", "0.70x"},
		{"gtx580-4sm", "0.55x"},
		{"gtx580-4sm", "1.00x"},
		{"gtx580", "0.70x"},
		{"gtx580", "1.00x"},
	}
	out := make([]Candidate, 0, len(specs))
	for _, s := range specs {
		m, ok := machine.Find(s.mkey)
		if !ok {
			return nil, fmt.Errorf("dvfs: unknown machine %q", s.mkey)
		}
		op, ok := m.Point(s.point)
		if !ok {
			return nil, fmt.Errorf("dvfs: machine %q has no operating point %q", s.mkey, s.point)
		}
		p := core.FromMachineAt(m, machine.Double, op)
		out = append(out, Candidate{
			Machine: s.mkey,
			Point:   s.point,
			Label:   s.mkey + "@" + s.point,
			P:       p,
			EM:      model.NewAnalytic(p),
		})
	}
	return out, nil
}

// adopt is the cluster router's eq. 10 incumbent rule: the candidate
// with capped time t and energy e replaces the incumbent (bestT, bestE)
// when it is faster and greener, greener without more than doubling the
// time, or faster while staying within 5% of the incumbent's energy.
func adopt(bestT, bestE, t, e float64) bool {
	greenup := bestE / e
	speedup := bestT / t
	switch core.ClassifyRatios(speedup, greenup) {
	case core.Both:
		return true
	case core.GreenupOnly:
		return t <= 2*bestT
	case core.SpeedupOnly:
		return greenup >= 0.95
	default:
		return false
	}
}

// Dispatch picks the platform-and-frequency for kernel k: an incumbent
// scan in platform order (plats[0] is the baseline) under the router's
// eq. 10 rules, on capped time and energy. It returns the winning
// index.
func Dispatch(plats []Candidate, k core.Kernel) int {
	best := 0
	bestT := plats[0].P.CappedTime(k)
	bestE := plats[0].P.CappedEnergy(k)
	for i := 1; i < len(plats); i++ {
		t := plats[i].P.CappedTime(k)
		e := plats[i].P.CappedEnergy(k)
		if adopt(bestT, bestE, t, e) {
			best, bestT, bestE = i, t, e
		}
	}
	return best
}

// Choice is the dispatch outcome at one intensity.
type Choice struct {
	// Intensity is the grid intensity in flop/byte.
	Intensity float64 `json:"intensity"`
	// Platform is the winning candidate's label.
	Platform string `json:"platform"`
	// Greenup is baseline energy over the winner's.
	Greenup float64 `json:"greenup"`
	// Speedup is baseline time over the winner's.
	Speedup float64 `json:"speedup"`
	// Class is the eq. 10 classification of the win vs the baseline.
	Class string `json:"class"`
	// TimeS is the winner's capped time.
	TimeS float64 `json:"time_s"`
	// EnergyJ is the winner's capped energy.
	EnergyJ float64 `json:"energy_j"`
}

// DispatchTable is the heterogeneous dispatch scenario's report.
type DispatchTable struct {
	// Baseline is plats[0]'s label.
	Baseline string `json:"baseline"`
	// Platforms lists every candidate label, scan order.
	Platforms []string `json:"platforms"`
	// Choices are the per-intensity outcomes, grid order.
	Choices []Choice `json:"choices"`
}

// dispatchTable evaluates every candidate over the intensity grid with
// the columnar EvalInto path and replays the incumbent scan per column.
// The scalar Dispatch and this columnar scan agree exactly (the
// differential test pins it).
func dispatchTable(grid []float64, work float64) (DispatchTable, error) {
	plats, err := DefaultPlatforms()
	if err != nil {
		return DispatchTable{}, err
	}
	n := len(grid)
	w := make([]float64, n)
	for j := range w {
		w[j] = work
	}
	q := make([]float64, n)
	core.QAtInto(q, w, grid)
	batches := make([]core.Batch, len(plats))
	for i := range plats {
		plats[i].EM.EvalInto(&batches[i], w, q)
	}
	out := DispatchTable{Baseline: plats[0].Label}
	for i := range plats {
		out.Platforms = append(out.Platforms, plats[i].Label)
	}
	for j := 0; j < n; j++ {
		best := 0
		bestT := batches[0].CappedTime[j]
		bestE := batches[0].CappedEnergy[j]
		for i := 1; i < len(plats); i++ {
			t := batches[i].CappedTime[j]
			e := batches[i].CappedEnergy[j]
			if adopt(bestT, bestE, t, e) {
				best, bestT, bestE = i, t, e
			}
		}
		greenup := batches[0].CappedEnergy[j] / bestE
		speedup := batches[0].CappedTime[j] / bestT
		out.Choices = append(out.Choices, Choice{
			Intensity: grid[j],
			Platform:  plats[best].Label,
			Greenup:   greenup,
			Speedup:   speedup,
			Class:     core.ClassifyRatios(speedup, greenup).String(),
			TimeS:     bestT,
			EnergyJ:   bestE,
		})
	}
	return out, nil
}
