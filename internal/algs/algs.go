// Package algs characterises canonical algorithms the way §II-A of the
// paper does: by their work W(n), their slow-memory traffic Q(n; Z)
// as a function of fast-memory capacity Z, and hence their intensity
// I = W/Q. The package encodes the two §II-A exemplars — n×n matrix
// multiply, whose intensity cannot exceed O(√Z) (Hong & Kung's red-blue
// pebble bound), and array reduction, whose intensity is O(1)
// independent of Z — plus the other kernels the examples and capacity-
// planning experiment use.
//
// All traffic models are the standard I/O-complexity forms for a
// two-level memory with capacity Z words; constants follow the common
// textbook analyses and are documented per algorithm. Word granularity
// is abstracted: W is in flops, Q in words; ToKernel converts to bytes
// for a chosen precision.
package algs

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/machine"
)

// Algorithm models one algorithm's work and traffic.
type Algorithm interface {
	// Name identifies the algorithm.
	Name() string
	// Work returns W(n) in flops.
	Work(n float64) float64
	// Traffic returns Q(n, z) in words, for fast-memory capacity z words.
	Traffic(n, z float64) float64
}

// Intensity returns I = W/Q in flops per word.
func Intensity(a Algorithm, n, z float64) float64 {
	q := a.Traffic(n, z)
	if q <= 0 {
		return math.Inf(1)
	}
	return a.Work(n) / q
}

// ToKernel converts an algorithm instance to the model's (W, Q-bytes)
// kernel at the given precision.
func ToKernel(a Algorithm, n, z float64, prec machine.Precision) core.Kernel {
	return core.Kernel{
		W: a.Work(n),
		Q: a.Traffic(n, z) * float64(prec.WordSize()),
	}
}

// MatMul is blocked n×n dense matrix multiplication. W = 2n³.
// With optimal √(Z/3)-blocking, Q = Θ(n³/√Z): each block pair is read
// once, giving Q ≈ 2√3·n³/√Z + 2n² (the compulsory term). Intensity is
// Θ(√Z) — the Hong–Kung bound, so doubling Z buys only a √2 intensity
// improvement (§II-A).
type MatMul struct{}

// Name implements Algorithm.
func (MatMul) Name() string { return "matmul" }

// Work implements Algorithm.
func (MatMul) Work(n float64) float64 { return 2 * n * n * n }

// Traffic implements Algorithm.
func (MatMul) Traffic(n, z float64) float64 {
	if z <= 3 {
		// Degenerate fast memory: every operand access misses.
		return 4 * n * n * n
	}
	b := math.Sqrt(z / 3) // block edge so three b×b blocks fit
	if b > n {
		b = n
	}
	return 2*n*n*n/b + 2*n*n
}

// Reduction sums an n-element array. W = n−1 flops, Q = n words, and Z
// plays no role: intensity is O(1) regardless of cache size (§II-A).
type Reduction struct{}

// Name implements Algorithm.
func (Reduction) Name() string { return "reduction" }

// Work implements Algorithm.
func (Reduction) Work(n float64) float64 {
	if n < 1 {
		return 0
	}
	return n - 1
}

// Traffic implements Algorithm.
func (Reduction) Traffic(n, _ float64) float64 { return n }

// Stencil is a 3-D 7-point stencil sweep over an n³ grid, one time
// step: 8 flops per point; with ideal plane-caching Q = 2n³ words
// (read + write each point once) when three planes (3n²) fit in Z,
// degrading to 8n³ when they do not.
type Stencil struct{}

// Name implements Algorithm.
func (Stencil) Name() string { return "stencil7" }

// Work implements Algorithm.
func (Stencil) Work(n float64) float64 { return 8 * n * n * n }

// Traffic implements Algorithm.
func (Stencil) Traffic(n, z float64) float64 {
	if z >= 3*n*n {
		return 2 * n * n * n
	}
	return 8 * n * n * n
}

// FFT is an n-point complex FFT: W = 5n·log₂n flops. The Hong–Kung
// lower bound gives Q = Θ(n·log n / log Z); the cache-oblivious
// algorithm attains it: Q ≈ 4n·log₂n/log₂Z + 2n.
type FFT struct{}

// Name implements Algorithm.
func (FFT) Name() string { return "fft" }

// Work implements Algorithm.
func (FFT) Work(n float64) float64 {
	if n < 2 {
		return 0
	}
	return 5 * n * math.Log2(n)
}

// Traffic implements Algorithm.
func (FFT) Traffic(n, z float64) float64 {
	if n < 2 {
		return 2 * n
	}
	lz := math.Log2(math.Max(z, 4))
	return 4*n*math.Log2(n)/lz + 2*n
}

// SpMV is sparse matrix-vector multiply with nnz ≈ k·n non-zeros
// (default k = 8): W = 2·k·n flops, Q ≈ (k·n)·(1 index + 1 value) +
// vector traffic; intensity is O(1), slightly helped by Z caching the
// source vector.
type SpMV struct {
	// NonzerosPerRow is k (default 8 when zero).
	NonzerosPerRow float64
}

// Name implements Algorithm.
func (s SpMV) Name() string { return "spmv" }

func (s SpMV) k() float64 {
	if s.NonzerosPerRow <= 0 {
		return 8
	}
	return s.NonzerosPerRow
}

// Work implements Algorithm.
func (s SpMV) Work(n float64) float64 { return 2 * s.k() * n }

// Traffic implements Algorithm.
func (s SpMV) Traffic(n, z float64) float64 {
	matrix := 2 * s.k() * n // values + column indices
	vector := 2 * n         // y read+write
	// Source vector x: cached when it fits, else re-fetched per nonzero
	// with probability ~ (1 − z/n).
	var x float64
	if z >= n {
		x = n
	} else {
		x = n + (s.k()-1)*n*(1-z/n)
	}
	return matrix + vector + x
}

// FMMU is the paper's §V-C U-list phase with q points per leaf:
// W = 11·27·q per point-pair structure, i.e. W(n) = 11·n·27·q flops and
// Q(n) = 4·n words of particle data (compulsory), making I = O(q).
type FMMU struct {
	// PointsPerLeaf is q (default 256 when zero).
	PointsPerLeaf float64
}

// Name implements Algorithm.
func (f FMMU) Name() string { return "fmm-u" }

func (f FMMU) q() float64 {
	if f.PointsPerLeaf <= 0 {
		return 256
	}
	return f.PointsPerLeaf
}

// Work implements Algorithm.
func (f FMMU) Work(n float64) float64 { return 11 * 27 * f.q() * n }

// Traffic implements Algorithm.
func (f FMMU) Traffic(n, _ float64) float64 { return 4 * n }

// All returns the built-in algorithm models.
func All() []Algorithm {
	return []Algorithm{MatMul{}, Reduction{}, Stencil{}, FFT{}, SpMV{}, FMMU{}}
}

// ByName looks up a built-in algorithm.
func ByName(name string) (Algorithm, error) {
	for _, a := range All() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("algs: unknown algorithm %q", name)
}

// IntensityGrowth reports how an algorithm's intensity responds to
// doubling the fast memory: the ratio I(n, 2z)/I(n, z). For matmul this
// tends to √2 (the §II-A claim); for a reduction it is exactly 1.
func IntensityGrowth(a Algorithm, n, z float64) (float64, error) {
	if n <= 0 || z <= 0 {
		return 0, errors.New("algs: n and z must be positive")
	}
	i1 := Intensity(a, n, z)
	i2 := Intensity(a, n, 2*z)
	if math.IsInf(i1, 1) || i1 == 0 {
		return 0, errors.New("algs: intensity degenerate at this size")
	}
	return i2 / i1, nil
}

// Recommend evaluates an algorithm instance on a machine at a precision
// and reports the model's verdict: intensity, boundness in time and
// energy, predicted time, energy, and power per unit of work.
type Verdict struct {
	// Algorithm names the evaluated algorithm.
	Algorithm string
	// Intensity is W/Q in flops per byte.
	Intensity float64
	// TimeBound classifies the time bottleneck.
	TimeBound core.BoundState
	// EnergyBound classifies the energy bottleneck.
	EnergyBound core.BoundState
	// Time is the model's eq. (3) cost in seconds.
	Time float64
	// Energy is the eq. (4) cost in Joules.
	Energy float64
	// Power is the eq. (7) average power in Watts.
	Power float64
}

// Evaluate produces the model verdict for algorithm a at size n on
// machine m (fast memory Z and word size taken from m and prec).
func Evaluate(a Algorithm, n float64, m *machine.Machine, prec machine.Precision) (Verdict, error) {
	if n <= 0 {
		return Verdict{}, errors.New("algs: n must be positive")
	}
	zWords := float64(m.FastMemory) / float64(prec.WordSize())
	k := ToKernel(a, n, zWords, prec)
	p := core.FromMachine(m, prec)
	return Verdict{
		Algorithm:   a.Name(),
		Intensity:   k.Intensity(),
		TimeBound:   p.TimeBound(k),
		EnergyBound: p.EnergyBound(k),
		Time:        p.Time(k),
		Energy:      p.Energy(k),
		Power:       p.AveragePower(k),
	}, nil
}
