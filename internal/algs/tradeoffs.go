package algs

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// §VII motivates the greenup analysis with "an interesting class of
// algorithms ... exhibiting a work-communication trade-off". This file
// catalogues three standard members of that class, each parameterised
// by its natural knob, mapped into the paper's (f, m) coordinates so
// eq. (10) and the model's exact classification apply directly.

// NamedTradeoff is one algorithmic transformation with a tunable knob.
type NamedTradeoff struct {
	// Name identifies the transformation.
	Name string
	// Knob describes the parameter's meaning.
	Knob string
	// Transform maps the knob value to the paper's (f, m) pair.
	Transform func(knob float64) (core.Tradeoff, error)
}

// TimeTiling is temporal blocking of an iterative stencil: fusing t
// time steps divides slow-memory traffic by ≈t while the overlapping
// halos force a fraction α of redundant recomputation per fused step.
// (α ≈ tile-surface/volume; 0.04 is a typical 3-D figure.)
func TimeTiling(alpha float64) NamedTradeoff {
	return NamedTradeoff{
		Name: "stencil time-tiling",
		Knob: "fused time steps t",
		Transform: func(t float64) (core.Tradeoff, error) {
			if t < 1 {
				return core.Tradeoff{}, errors.New("algs: fused steps must be >= 1")
			}
			return core.Tradeoff{F: 1 + alpha*(t-1), M: t}, nil
		},
	}
}

// Replication25D is communication-avoiding (2.5D) matrix multiply:
// c-fold data replication divides traffic by √c at no extra flops.
func Replication25D() NamedTradeoff {
	return NamedTradeoff{
		Name: "2.5D matmul replication",
		Knob: "replication factor c",
		Transform: func(c float64) (core.Tradeoff, error) {
			if c < 1 {
				return core.Tradeoff{}, errors.New("algs: replication must be >= 1")
			}
			return core.Tradeoff{F: 1, M: sqrt(c)}, nil
		},
	}
}

// Recomputation trades stored intermediates for recomputed ones
// (checkpointing style): storing every k-th intermediate divides the
// traffic by k but recomputes each dropped value once, roughly
// doubling the work of the dropped fraction.
func Recomputation() NamedTradeoff {
	return NamedTradeoff{
		Name: "recompute-over-store",
		Knob: "checkpoint stride k",
		Transform: func(k float64) (core.Tradeoff, error) {
			if k < 1 {
				return core.Tradeoff{}, errors.New("algs: stride must be >= 1")
			}
			return core.Tradeoff{F: 2 - 1/k, M: k}, nil
		},
	}
}

func sqrt(x float64) float64 {
	// Newton, to avoid importing math just for this.
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// TradeoffCatalog returns the built-in transformations.
func TradeoffCatalog() []NamedTradeoff {
	return []NamedTradeoff{TimeTiling(0.04), Replication25D(), Recomputation()}
}

// SweepOutcome records one knob setting's verdict.
type SweepOutcome struct {
	// Knob is the transformation parameter value.
	Knob float64
	// F and M are the resulting (f, m) coordinates.
	F, M float64
	// Speedup is the exact ΔT.
	Speedup float64
	// Greenup is the exact ΔE.
	Greenup float64
	// Outcome is the four-way classification.
	Outcome core.TradeoffOutcome
}

// SweepTradeoff classifies a transformation across knob values for a
// baseline kernel on machine parameters p.
func SweepTradeoff(p core.Params, base core.Kernel, tr NamedTradeoff, knobs []float64) ([]SweepOutcome, error) {
	if len(knobs) == 0 {
		return nil, errors.New("algs: no knob values")
	}
	out := make([]SweepOutcome, 0, len(knobs))
	for _, k := range knobs {
		t, err := tr.Transform(k)
		if err != nil {
			return nil, fmt.Errorf("%s at %v: %w", tr.Name, k, err)
		}
		out = append(out, SweepOutcome{
			Knob:    k,
			F:       t.F,
			M:       t.M,
			Speedup: p.Speedup(base, t),
			Greenup: p.Greenup(base, t),
			Outcome: p.Classify(base, t),
		})
	}
	return out, nil
}

// BestKnob returns the knob value minimising energy (maximum greenup).
func BestKnob(p core.Params, base core.Kernel, tr NamedTradeoff, knobs []float64) (float64, error) {
	sweep, err := SweepTradeoff(p, base, tr, knobs)
	if err != nil {
		return 0, err
	}
	best := sweep[0]
	for _, s := range sweep[1:] {
		if s.Greenup > best.Greenup {
			best = s
		}
	}
	return best.Knob, nil
}
