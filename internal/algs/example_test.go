package algs_test

import (
	"fmt"

	"repro/internal/algs"
	"repro/internal/machine"
)

// §II-A in two lines: matmul's intensity responds to fast-memory
// capacity, a reduction's does not.
func ExampleIntensityGrowth() {
	mm, _ := algs.IntensityGrowth(algs.MatMul{}, 1e5, 1<<16)
	red, _ := algs.IntensityGrowth(algs.Reduction{}, 1e7, 1<<16)
	fmt.Printf("matmul:    ×%.3f per Z doubling (√2 ≈ 1.414)\n", mm)
	fmt.Printf("reduction: ×%.3f per Z doubling\n", red)
	// Output:
	// matmul:    ×1.413 per Z doubling (√2 ≈ 1.414)
	// reduction: ×1.000 per Z doubling
}

// Evaluate an algorithm against a platform: the model's verdict on
// where the bottleneck lies.
func ExampleEvaluate() {
	v, err := algs.Evaluate(algs.FMMU{}, 1e6, machine.GTX580(), machine.Single)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %v in time, %v in energy\n", v.Algorithm, v.TimeBound, v.EnergyBound)
	// Output:
	// fmm-u: compute-bound in time, compute-bound in energy
}
