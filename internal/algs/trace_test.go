package algs

import (
	"strings"
	"testing"
)

func TestTraceReductionExact(t *testing.T) {
	// Streaming n doubles: the model (n words) matches the simulator
	// exactly — every line is fetched once, no reuse, no write-backs.
	r, err := TraceReduction(1<<18, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio() < 0.999 || r.Ratio() > 1.001 {
		t.Errorf("reduction ratio = %v, want 1.0: %v", r.Ratio(), r)
	}
}

func TestTraceReductionIndependentOfZ(t *testing.T) {
	small, err := TraceReduction(1<<16, 1<<9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := TraceReduction(1<<16, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if small.SimulatedBytes != big.SimulatedBytes {
		t.Errorf("reduction traffic changed with Z: %v vs %v — §II-A says it must not",
			small.SimulatedBytes, big.SimulatedBytes)
	}
}

func TestTraceMatMulTracksModel(t *testing.T) {
	// Non-power-of-two dimension avoids set-conflict pathologies, so the
	// simulated traffic stays within a small factor of the ideal-cache
	// analytic Q = 2n³/b + 2n².
	r, err := TraceMatMul(200, 3*50*50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio() < 0.8 || r.Ratio() > 2.2 {
		t.Errorf("matmul ratio out of band: %v", r)
	}
}

func TestTraceMatMulBlockedBeatsUnblockedFootprint(t *testing.T) {
	// The whole point of blocking: simulated traffic is far below the
	// unblocked 2n³ upper bound.
	n := 200
	r, err := TraceMatMul(n, 3*50*50)
	if err != nil {
		t.Fatal(err)
	}
	naive := 2 * float64(n) * float64(n) * float64(n) * wordSize
	if r.SimulatedBytes > naive/4 {
		t.Errorf("blocked traffic %v not far below naive %v", r.SimulatedBytes, naive)
	}
}

func TestTraceMatMulPowerOfTwoConflictPathology(t *testing.T) {
	// A documented divergence between the ideal-cache model and a real
	// set-associative cache: with a power-of-two leading dimension, the
	// rows of a block alias into few sets and conflict misses blow the
	// traffic up by an order of magnitude. The analytic model cannot see
	// this — which is precisely why it is a bound, not a prediction.
	bad, err := TraceMatMul(256, 3*64*64)
	if err != nil {
		t.Fatal(err)
	}
	good, err := TraceMatMul(250, 3*64*64)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Ratio() < 5 {
		t.Errorf("expected severe conflict misses at n=256: %v", bad)
	}
	if good.Ratio() > 3 {
		t.Errorf("n=250 should avoid the pathology: %v", good)
	}
}

func TestTraceStencilBothRegimes(t *testing.T) {
	// Planes fit: the model's 2n³ compulsory traffic is tracked closely.
	fit, err := TraceStencil(48, 4*48*48)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Ratio() < 0.8 || fit.Ratio() > 2.0 {
		t.Errorf("stencil (planes fit) ratio out of band: %v", fit)
	}
	// Planes do not fit: the model's degraded 8n³ form is a pessimistic
	// upper bound; the simulator lands below it but above the ideal 2n³.
	tight, err := TraceStencil(48, 48*48)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Ratio() > 1.05 {
		t.Errorf("degraded stencil model should over-predict: %v", tight)
	}
	ideal := 2.0 * 48 * 48 * 48 * wordSize
	if tight.SimulatedBytes < ideal {
		t.Errorf("thrashing stencil cannot beat compulsory traffic: %v < %v", tight.SimulatedBytes, ideal)
	}
	// And more cache means less simulated traffic.
	if fit.SimulatedBytes >= tight.SimulatedBytes {
		t.Error("larger Z should reduce stencil traffic")
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := TraceReduction(0, 1024); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := TraceReduction(10, 1); err == nil {
		t.Error("tiny Z accepted")
	}
	if _, err := TraceMatMul(2, 1024); err == nil {
		t.Error("tiny n accepted")
	}
	if _, err := TraceMatMul(100, 8); err == nil {
		t.Error("tiny Z accepted")
	}
	if _, err := TraceStencil(2, 1024); err == nil {
		t.Error("tiny n accepted")
	}
	if _, err := TraceStencil(10, 8); err == nil {
		t.Error("tiny Z accepted")
	}
}

func TestTraceResultString(t *testing.T) {
	r := TraceResult{Algorithm: "x", N: 10, ZWords: 64, ModelBytes: 100, SimulatedBytes: 150}
	s := r.String()
	for _, want := range []string{"x", "n=10", "×1.50"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}
