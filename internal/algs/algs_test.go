package algs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/stats"
)

func TestMatMulIntensityScalesAsSqrtZ(t *testing.T) {
	// §II-A: doubling Z improves matmul intensity by no more than √2,
	// and blocked matmul attains Θ(√Z), so the ratio approaches √2 for
	// n ≫ block size.
	n := 1e5
	for _, z := range []float64{1 << 12, 1 << 16, 1 << 20} {
		g, err := IntensityGrowth(MatMul{}, n, z)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g-math.Sqrt2) > 0.02 {
			t.Errorf("z=%g: intensity growth = %v, want ≈√2", z, g)
		}
		if g > math.Sqrt2+1e-9 {
			t.Errorf("z=%g: growth %v exceeds the Hong–Kung bound √2", z, g)
		}
	}
	// Absolute scaling: I ≈ √(Z/3)/2 ... check I = Θ(√Z) within 2×.
	i := Intensity(MatMul{}, n, 1<<20)
	sqrtZ := math.Sqrt(1 << 20)
	if i < sqrtZ/8 || i > sqrtZ {
		t.Errorf("matmul intensity %v not Θ(√Z) (√Z = %v)", i, sqrtZ)
	}
}

func TestReductionIntensityIndependentOfZ(t *testing.T) {
	// §II-A: increasing Z has no effect on a reduction's intensity.
	n := 1e7
	g, err := IntensityGrowth(Reduction{}, n, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Errorf("reduction intensity growth = %v, want exactly 1", g)
	}
	if i := Intensity(Reduction{}, n, 1<<20); i > 1 {
		t.Errorf("reduction intensity = %v, should be ≤ 1 flop/word", i)
	}
}

func TestStencilPlaneCachingThreshold(t *testing.T) {
	n := 512.0
	small := (Stencil{}).Traffic(n, 2*n*n) // planes don't fit
	large := (Stencil{}).Traffic(n, 4*n*n) // planes fit
	if small <= large {
		t.Error("insufficient Z must increase stencil traffic")
	}
	if large != 2*n*n*n {
		t.Errorf("cached stencil traffic = %v", large)
	}
}

func TestFFTTrafficMatchesHongKungForm(t *testing.T) {
	n := math.Pow(2, 20)
	for _, z := range []float64{1 << 10, 1 << 14, 1 << 18} {
		q := FFT{}.Traffic(n, z)
		expect := 4*n*20/math.Log2(z) + 2*n
		if math.Abs(q-expect) > 1e-6*expect {
			t.Errorf("z=%g: Q = %v, want %v", z, q, expect)
		}
	}
	// Bigger Z means less traffic.
	if (FFT{}).Traffic(n, 1<<18) >= (FFT{}).Traffic(n, 1<<10) {
		t.Error("FFT traffic must decrease with Z")
	}
	// Degenerate sizes.
	if (FFT{}).Work(1) != 0 {
		t.Error("FFT work at n=1 should be 0")
	}
}

func TestSpMVBoundedIntensity(t *testing.T) {
	s := SpMV{}
	n := 1e6
	// Intensity is O(1): bounded regardless of Z.
	for _, z := range []float64{1e3, 1e6, 1e9} {
		i := Intensity(s, n, z)
		if i < 0.2 || i > 2 {
			t.Errorf("z=%g: SpMV intensity = %v flops/word, want O(1)", z, i)
		}
	}
	// Caching the source vector helps but cannot beat the matrix term.
	if s.Traffic(n, 2e6) >= s.Traffic(n, 1e3) {
		t.Error("larger Z should reduce SpMV traffic")
	}
	if (SpMV{NonzerosPerRow: 16}).Work(n) != 2*16*n {
		t.Error("custom nnz/row not honoured")
	}
}

func TestFMMUIntensityIsOrderQ(t *testing.T) {
	f := FMMU{PointsPerLeaf: 256}
	i := Intensity(f, 1e6, 1<<20)
	// I = 11·27·q/4 words ≈ 19000 flops/word: strongly compute-bound,
	// growing linearly in q.
	i2 := Intensity(FMMU{PointsPerLeaf: 512}, 1e6, 1<<20)
	if math.Abs(i2/i-2) > 1e-9 {
		t.Errorf("FMM-U intensity should scale linearly with q: %v vs %v", i, i2)
	}
	if (FMMU{}).Work(10) != 11*27*256*10 {
		t.Error("default q = 256 not applied")
	}
}

func TestByNameAndAll(t *testing.T) {
	if len(All()) != 6 {
		t.Errorf("algorithm count = %d", len(All()))
	}
	for _, a := range All() {
		got, err := ByName(a.Name())
		if err != nil {
			t.Errorf("ByName(%q): %v", a.Name(), err)
		}
		if got.Name() != a.Name() {
			t.Errorf("ByName round trip broken for %q", a.Name())
		}
	}
	if _, err := ByName("bogosort"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestIntensityGrowthErrors(t *testing.T) {
	if _, err := IntensityGrowth(MatMul{}, -1, 10); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := IntensityGrowth(MatMul{}, 10, 0); err == nil {
		t.Error("zero z accepted")
	}
}

func TestToKernelPrecisionScaling(t *testing.T) {
	ks := ToKernel(Reduction{}, 1e6, 1e4, machine.Single)
	kd := ToKernel(Reduction{}, 1e6, 1e4, machine.Double)
	if kd.Q != 2*ks.Q {
		t.Error("double precision should double the byte traffic")
	}
	if ks.W != kd.W {
		t.Error("work must not depend on precision")
	}
}

func TestEvaluateVerdicts(t *testing.T) {
	m := machine.GTX580()
	// FMM-U: compute-bound in both time and energy (§V-C).
	v, err := Evaluate(FMMU{}, 1e6, m, machine.Single)
	if err != nil {
		t.Fatal(err)
	}
	if v.TimeBound.String() != "compute-bound" || v.EnergyBound.String() != "compute-bound" {
		t.Errorf("FMM-U verdict: %+v", v)
	}
	// Reduction: memory-bound in both.
	v, err = Evaluate(Reduction{}, 1e8, m, machine.Single)
	if err != nil {
		t.Fatal(err)
	}
	if v.TimeBound.String() != "memory-bound" || v.EnergyBound.String() != "memory-bound" {
		t.Errorf("reduction verdict: %+v", v)
	}
	if v.Time <= 0 || v.Energy <= 0 || v.Power <= 0 {
		t.Error("verdict quantities must be positive")
	}
	if _, err := Evaluate(Reduction{}, 0, m, machine.Single); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestPropWorkTrafficMonotoneInN(t *testing.T) {
	f := func(rn, rz float64, pick uint8) bool {
		n := 100 + math.Abs(math.Mod(rn, 1e6))
		z := 64 + math.Abs(math.Mod(rz, 1e7))
		a := All()[int(pick)%len(All())]
		// Work and traffic grow with problem size.
		return a.Work(2*n) >= a.Work(n) && a.Traffic(2*n, z) >= a.Traffic(n, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropTrafficNonIncreasingInZ(t *testing.T) {
	f := func(rn, rz float64, pick uint8) bool {
		n := 100 + math.Abs(math.Mod(rn, 1e6))
		z := 64 + math.Abs(math.Mod(rz, 1e7))
		a := All()[int(pick)%len(All())]
		return a.Traffic(n, 2*z) <= a.Traffic(n, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntensityInfinityOnZeroTraffic(t *testing.T) {
	// A degenerate custom algorithm with no traffic.
	z := zeroTraffic{}
	if !math.IsInf(Intensity(z, 10, 10), 1) {
		t.Error("zero traffic should give infinite intensity")
	}
}

type zeroTraffic struct{}

func (zeroTraffic) Name() string                 { return "zero" }
func (zeroTraffic) Work(n float64) float64       { return n }
func (zeroTraffic) Traffic(_, _ float64) float64 { return 0 }

// Cross-check a verdict against an independent derivation.
func TestEvaluateAgreesWithManualModel(t *testing.T) {
	m := machine.CoreI7950()
	a := Stencil{}
	n := 256.0
	zWords := float64(m.FastMemory) / 8
	v, err := Evaluate(a, n, m, machine.Double)
	if err != nil {
		t.Fatal(err)
	}
	wantI := a.Work(n) / (a.Traffic(n, zWords) * 8)
	if stats.RelErr(v.Intensity, wantI) > 1e-12 {
		t.Errorf("intensity %v vs manual %v", v.Intensity, wantI)
	}
}
