package algs

import (
	"math"
	"testing"
)

// The scalar reference replays below are the pre-segment word-at-a-time
// loops, preserved verbatim. The segment-based trace functions must
// produce bit-identical simulated traffic on the same hierarchy.

func refTraceReductionBytes(t *testing.T, n, zWords int) float64 {
	t.Helper()
	h, err := traceCache(zWords)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		h.Read(uint64(i)*wordSize, wordSize)
	}
	return float64(h.DRAMBytes())
}

func refTraceMatMulBytes(t *testing.T, n, zWords int) float64 {
	t.Helper()
	b := int(math.Sqrt(float64(zWords) / 3))
	if b > n {
		b = n
	}
	if b < 1 {
		b = 1
	}
	h, err := traceCache(zWords)
	if err != nil {
		t.Fatal(err)
	}
	const (
		baseA = 0
		baseB = 1 << 34
		baseC = 2 << 34
	)
	idx := func(base uint64, row, col int) uint64 {
		return base + (uint64(row)*uint64(n)+uint64(col))*wordSize
	}
	nb := (n + b - 1) / b
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			for bk := 0; bk < nb; bk++ {
				i1 := min(n, (bi+1)*b)
				j1 := min(n, (bj+1)*b)
				k1 := min(n, (bk+1)*b)
				for i := bi * b; i < i1; i++ {
					for k := bk * b; k < k1; k++ {
						h.Read(idx(baseA, i, k), wordSize)
						for j := bj * b; j < j1; j++ {
							h.Read(idx(baseB, k, j), wordSize)
						}
					}
				}
				for i := bi * b; i < i1; i++ {
					for j := bj * b; j < j1; j++ {
						h.Read(idx(baseC, i, j), wordSize)
						h.Write(idx(baseC, i, j), wordSize)
					}
				}
			}
		}
	}
	return float64(h.DRAMBytes())
}

func refTraceStencilBytes(t *testing.T, n, zWords int) float64 {
	t.Helper()
	h, err := traceCache(zWords)
	if err != nil {
		t.Fatal(err)
	}
	const (
		baseIn  = 0
		baseOut = 1 << 34
	)
	idx := func(base uint64, x, y, z int) uint64 {
		return base + ((uint64(z)*uint64(n)+uint64(y))*uint64(n)+uint64(x))*wordSize
	}
	for z := 1; z < n-1; z++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				h.Read(idx(baseIn, x, y, z), wordSize)
				h.Read(idx(baseIn, x-1, y, z), wordSize)
				h.Read(idx(baseIn, x+1, y, z), wordSize)
				h.Read(idx(baseIn, x, y-1, z), wordSize)
				h.Read(idx(baseIn, x, y+1, z), wordSize)
				h.Read(idx(baseIn, x, y, z-1), wordSize)
				h.Read(idx(baseIn, x, y, z+1), wordSize)
				h.Write(idx(baseOut, x, y, z), wordSize)
			}
		}
	}
	return float64(h.DRAMBytes())
}

// TestTraceMatchesWordReplay pins the segment-based kernel replays to
// the scalar loops across sizes that exercise resident, capacity-bound,
// and ragged-block regimes.
func TestTraceMatchesWordReplay(t *testing.T) {
	for _, n := range []int{1, 63, 1000, 20000} {
		for _, z := range []int{64, 1024, 16384} {
			r, err := TraceReduction(n, z)
			if err != nil {
				t.Fatalf("reduction n=%d z=%d: %v", n, z, err)
			}
			if want := refTraceReductionBytes(t, n, z); r.SimulatedBytes != want {
				t.Errorf("reduction n=%d z=%d: simulated %v, scalar %v", n, z, r.SimulatedBytes, want)
			}
		}
	}
	for _, n := range []int{4, 17, 48, 96} {
		for _, z := range []int{192, 1024, 8192} {
			r, err := TraceMatMul(n, z)
			if err != nil {
				t.Fatalf("matmul n=%d z=%d: %v", n, z, err)
			}
			if want := refTraceMatMulBytes(t, n, z); r.SimulatedBytes != want {
				t.Errorf("matmul n=%d z=%d: simulated %v, scalar %v", n, z, r.SimulatedBytes, want)
			}
		}
	}
	for _, n := range []int{3, 9, 24, 40} {
		for _, z := range []int{64, 1024, 16384} {
			r, err := TraceStencil(n, z)
			if err != nil {
				t.Fatalf("stencil n=%d z=%d: %v", n, z, err)
			}
			if want := refTraceStencilBytes(t, n, z); r.SimulatedBytes != want {
				t.Errorf("stencil n=%d z=%d: simulated %v, scalar %v", n, z, r.SimulatedBytes, want)
			}
		}
	}
}
