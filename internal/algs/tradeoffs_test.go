package algs

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

func fermiNoPi0() core.Params {
	p := core.FromMachine(machine.FermiTableII(), machine.Double)
	p.Pi0 = 0
	return p
}

func TestTradeoffCatalogTransforms(t *testing.T) {
	// Time tiling: t steps → m = t, f = 1 + α(t−1).
	tt := TimeTiling(0.05)
	tr, err := tt.Transform(10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.M != 10 || math.Abs(tr.F-1.45) > 1e-12 {
		t.Errorf("time tiling = %+v", tr)
	}
	// 2.5D: c = 4 → m = 2, f = 1.
	r25, err := Replication25D().Transform(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r25.M-2) > 1e-9 || r25.F != 1 {
		t.Errorf("2.5D = %+v", r25)
	}
	// Recomputation: k = 4 → m = 4, f = 1.75.
	rc, err := Recomputation().Transform(4)
	if err != nil {
		t.Fatal(err)
	}
	if rc.M != 4 || math.Abs(rc.F-1.75) > 1e-12 {
		t.Errorf("recompute = %+v", rc)
	}
	// Knob validation.
	for _, tr := range TradeoffCatalog() {
		if _, err := tr.Transform(0.5); err == nil {
			t.Errorf("%s: knob below 1 accepted", tr.Name)
		}
	}
	if len(TradeoffCatalog()) != 3 {
		t.Errorf("catalog size = %d", len(TradeoffCatalog()))
	}
}

func TestReplicationIsAlwaysBeneficialMemoryBound(t *testing.T) {
	// 2.5D replication adds no flops: on a memory-bound baseline it is
	// both a speedup and a greenup at any c > 1.
	p := fermiNoPi0()
	base := core.KernelAt(1e9, 1)
	sweep, err := SweepTradeoff(p, base, Replication25D(), []float64{2, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sweep {
		if s.Outcome != core.Both {
			t.Errorf("c=%v: outcome %v, want both (ΔT=%v ΔE=%v)", s.Knob, s.Outcome, s.Speedup, s.Greenup)
		}
	}
	// Greenup grows monotonically with c while memory-bound.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Greenup <= sweep[i-1].Greenup {
			t.Errorf("greenup not increasing at c=%v", sweep[i].Knob)
		}
	}
}

func TestTimeTilingHasInteriorOptimum(t *testing.T) {
	// With α > 0, deeper tiling eventually costs more flops than the
	// traffic saving is worth: the greenup-optimal t is interior.
	p := fermiNoPi0()
	base := core.KernelAt(1e9, 0.5) // deeply memory-bound stencil-like
	knobs := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	best, err := BestKnob(p, base, TimeTiling(0.04), knobs)
	if err != nil {
		t.Fatal(err)
	}
	if best <= 1 || best >= 512 {
		t.Errorf("optimal fused steps = %v, want interior", best)
	}
	// Around the optimum, greenup decreases both ways.
	sweep, err := SweepTradeoff(p, base, TimeTiling(0.04), knobs)
	if err != nil {
		t.Fatal(err)
	}
	bi := 0
	for i, s := range sweep {
		if s.Knob == best {
			bi = i
		}
	}
	if bi == 0 || bi == len(sweep)-1 {
		t.Fatalf("optimum at the sweep edge: %v", best)
	}
	if sweep[bi-1].Greenup > sweep[bi].Greenup || sweep[bi+1].Greenup > sweep[bi].Greenup {
		t.Error("BestKnob did not find the maximum")
	}
}

func TestRecomputationNeedsCheapFlops(t *testing.T) {
	// Recompute-over-store roughly doubles work for large k; eq. (10)
	// then demands Bε/I > ~1. On a compute-bound baseline it's a loss;
	// deeply memory-bound it wins.
	p := fermiNoPi0()
	cb := core.KernelAt(1e9, 64) // compute-bound
	s, err := SweepTradeoff(p, cb, Recomputation(), []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Outcome != core.Neither {
		t.Errorf("compute-bound recompute should lose: %v", s[0].Outcome)
	}
	mb := core.KernelAt(1e9, 0.5)
	s, err = SweepTradeoff(p, mb, Recomputation(), []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Greenup <= 1 {
		t.Errorf("memory-bound recompute should be green: ΔE=%v", s[0].Greenup)
	}
}

func TestSweepErrors(t *testing.T) {
	p := fermiNoPi0()
	base := core.KernelAt(1e9, 1)
	if _, err := SweepTradeoff(p, base, Replication25D(), nil); err == nil {
		t.Error("empty knob list accepted")
	}
	if _, err := SweepTradeoff(p, base, Replication25D(), []float64{0.1}); err == nil {
		t.Error("invalid knob accepted")
	}
	if _, err := BestKnob(p, base, Replication25D(), nil); err == nil {
		t.Error("empty BestKnob accepted")
	}
}

func TestSqrtHelper(t *testing.T) {
	for _, x := range []float64{0.25, 1, 2, 100, 1e6} {
		if math.Abs(sqrt(x)-math.Sqrt(x)) > 1e-9*math.Sqrt(x) {
			t.Errorf("sqrt(%v) = %v", x, sqrt(x))
		}
	}
	if sqrt(0) != 0 || sqrt(-1) != 0 {
		t.Error("sqrt edge cases")
	}
}
