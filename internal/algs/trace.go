package algs

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/machine"
)

// This file closes the loop between the analytic Q(n; Z) models and an
// actual memory system: it generates the real access streams of three
// §II-A-style kernels — a streaming reduction, a blocked matrix
// multiply, and a 3-D stencil sweep — replays them through the cache
// simulator, and lets tests confirm that the analytic traffic formulas
// track the simulated DRAM traffic.

// TraceResult compares an analytic traffic model against simulated DRAM
// traffic for one kernel instance.
type TraceResult struct {
	// Algorithm names the traced kernel.
	Algorithm string
	// N is the instance size (elements or matrix dimension).
	N int
	// ZWords is the simulated cache capacity in words.
	ZWords float64
	// ModelBytes is the analytic Q(n, Z) in bytes.
	ModelBytes float64
	// SimulatedBytes is the cache simulator's DRAM traffic in bytes.
	SimulatedBytes float64
}

// Ratio returns simulated over modelled traffic.
func (r TraceResult) Ratio() float64 { return r.SimulatedBytes / r.ModelBytes }

// wordSize is the traced kernels' element size (double precision).
const wordSize = 8

// traceCache builds a hierarchy of one level with the given capacity in
// words, 64-byte lines, 8-way associativity.
func traceCache(zWords int) (*cache.Hierarchy, error) {
	size := int64(zWords * wordSize)
	const line = 64
	// Round capacity to a legal geometry.
	lines := size / line
	if lines < 8 {
		lines = 8
	}
	lines = lines / 8 * 8
	return cache.New([]machine.CacheLevel{{
		Name: "L", Size: lines * line, LineSize: line, Assoc: 8,
	}})
}

// TraceReduction replays a streaming sum of n doubles and compares the
// DRAM traffic against Reduction's model (n words).
func TraceReduction(n, zWords int) (TraceResult, error) {
	if n < 1 || zWords < 64 {
		return TraceResult{}, errors.New("algs: n must be >= 1 and zWords >= 64")
	}
	h, err := traceCache(zWords)
	if err != nil {
		return TraceResult{}, err
	}
	// The stream is one bulk segment: n sequential word reads.
	h.AccessSegment(cache.Segment{Base: 0, Stride: wordSize, Count: n, Size: wordSize})
	model := Reduction{}.Traffic(float64(n), float64(zWords)) * wordSize
	return TraceResult{
		Algorithm:      "reduction",
		N:              n,
		ZWords:         float64(zWords),
		ModelBytes:     model,
		SimulatedBytes: float64(h.DRAMBytes()),
	}, nil
}

// TraceMatMul replays a b-blocked n×n matrix multiply's access stream
// (block size chosen from Z as the analytic model assumes) and compares
// DRAM traffic against MatMul's Q(n, Z).
//
// The replay walks the standard blocked loop nest: for each block pair,
// the C block is register-resident, the A and B blocks are read element
// by element in the k-loop. The stream is generated at element
// granularity so the cache simulator sees genuine spatial and temporal
// locality rather than summary counts.
func TraceMatMul(n, zWords int) (TraceResult, error) {
	if n < 4 || zWords < 192 {
		return TraceResult{}, errors.New("algs: n must be >= 4 and zWords >= 192")
	}
	b := int(math.Sqrt(float64(zWords) / 3))
	if b > n {
		b = n
	}
	if b < 1 {
		b = 1
	}
	h, err := traceCache(zWords)
	if err != nil {
		return TraceResult{}, err
	}
	const (
		baseA = 0
		baseB = 1 << 34
		baseC = 2 << 34
	)
	idx := func(base uint64, row, col int) uint64 {
		return base + (uint64(row)*uint64(n)+uint64(col))*wordSize
	}
	nb := (n + b - 1) / b
	// Segment scratch reused across the loop nest. An element-interleaved
	// group of a Count-1 segment followed by a Count-m segment replays as
	// the first segment's single access and then the second's m accesses
	// in order — exactly the scalar A-element-then-B-row sequence; the
	// read/write pair over a C row interleaves per element the same way.
	var grp [2]cache.Segment
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			for bk := 0; bk < nb; bk++ {
				i1 := min(n, (bi+1)*b)
				j1 := min(n, (bj+1)*b)
				k1 := min(n, (bk+1)*b)
				jn := j1 - bj*b
				for i := bi * b; i < i1; i++ {
					for k := bk * b; k < k1; k++ {
						grp[0] = cache.Segment{Base: idx(baseA, i, k), Stride: wordSize, Count: 1, Size: wordSize}
						grp[1] = cache.Segment{Base: idx(baseB, k, bj*b), Stride: wordSize, Count: jn, Size: wordSize}
						h.ReplaySegments(grp[:], 1)
					}
				}
				// C block touched once per (bi, bj, bk): read+write.
				for i := bi * b; i < i1; i++ {
					row := idx(baseC, i, bj*b)
					grp[0] = cache.Segment{Base: row, Stride: wordSize, Count: jn, Size: wordSize}
					grp[1] = cache.Segment{Base: row, Stride: wordSize, Count: jn, Size: wordSize, Write: true}
					h.ReplaySegments(grp[:], 1)
				}
			}
		}
	}
	model := MatMul{}.Traffic(float64(n), float64(zWords)) * wordSize
	return TraceResult{
		Algorithm:      "matmul",
		N:              n,
		ZWords:         float64(zWords),
		ModelBytes:     model,
		SimulatedBytes: float64(h.DRAMBytes()),
	}, nil
}

// TraceStencil replays one 7-point stencil sweep over an n³ grid (read
// the six neighbours and the centre, write the result to a second grid)
// and compares against Stencil's model.
func TraceStencil(n, zWords int) (TraceResult, error) {
	if n < 3 || zWords < 64 {
		return TraceResult{}, errors.New("algs: n must be >= 3 and zWords >= 64")
	}
	h, err := traceCache(zWords)
	if err != nil {
		return TraceResult{}, err
	}
	const (
		baseIn  = 0
		baseOut = 1 << 34
	)
	idx := func(base uint64, x, y, z int) uint64 {
		return base + ((uint64(z)*uint64(n)+uint64(y))*uint64(n)+uint64(x))*wordSize
	}
	// Per inner row, the seven reads and the write become eight
	// word-strided segments interleaved over x, reproducing the scalar
	// per-point order: centre, x∓1, y∓1, z∓1, write.
	var grp [8]cache.Segment
	for z := 1; z < n-1; z++ {
		for y := 1; y < n-1; y++ {
			xs := n - 2
			for gi, base := range [...]uint64{
				idx(baseIn, 1, y, z),
				idx(baseIn, 0, y, z),
				idx(baseIn, 2, y, z),
				idx(baseIn, 1, y-1, z),
				idx(baseIn, 1, y+1, z),
				idx(baseIn, 1, y, z-1),
				idx(baseIn, 1, y, z+1),
			} {
				grp[gi] = cache.Segment{Base: base, Stride: wordSize, Count: xs, Size: wordSize}
			}
			grp[7] = cache.Segment{Base: idx(baseOut, 1, y, z), Stride: wordSize, Count: xs, Size: wordSize, Write: true}
			h.ReplaySegments(grp[:], 1)
		}
	}
	model := Stencil{}.Traffic(float64(n), float64(zWords)) * wordSize
	return TraceResult{
		Algorithm:      "stencil7",
		N:              n,
		ZWords:         float64(zWords),
		ModelBytes:     model,
		SimulatedBytes: float64(h.DRAMBytes()),
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String renders the comparison.
func (r TraceResult) String() string {
	return fmt.Sprintf("%s n=%d Z=%g words: model %.3g B, simulated %.3g B (×%.2f)",
		r.Algorithm, r.N, r.ZWords, r.ModelBytes, r.SimulatedBytes, r.Ratio())
}
