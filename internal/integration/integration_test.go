// Package integration holds cross-package end-to-end scenarios: the
// complete loops a user of this repository would run, wired together
// exactly as the commands wire them, with assertions at each seam.
package integration

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fmm"
	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/powermon"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/validate"
)

// The headline loop: run a measurement campaign against the simulated
// GTX 580, take the *fitted* machine it produces, and use that fitted
// model to predict fresh measurements made on the ground-truth
// simulator. This is what a user does with real hardware: fit once,
// predict forever.
func TestFittedModelPredictsFreshMeasurements(t *testing.T) {
	cfg := campaign.Default()
	cfg.Machines = []string{"gtx580"}
	cfg.Reps = 25
	cfg.Points = 9
	cfg.VolumeBytes = 1 << 27
	cfg.Seed = 1234
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fitted := res.Machines[0].Fitted

	// Fresh measurements with a different seed.
	truth := machine.GTX580()
	eng, err := sim.New(truth, sim.DefaultConfig(987))
	if err != nil {
		t.Fatal(err)
	}
	p := core.FromMachine(fitted, machine.Double)
	for _, i := range []float64{0.5, 2, 8} {
		k := core.KernelAt(1e9, i)
		runs, err := eng.RunRepeated(sim.KernelSpec{
			W: k.W, Q: k.Q, Precision: machine.Double, Tuning: eng.OptimalTuning(),
		}, 20)
		if err != nil {
			t.Fatal(err)
		}
		_, meanE, _, err := sim.Aggregate(runs)
		if err != nil {
			t.Fatal(err)
		}
		// Predict with the fitted coefficients at the *measured* time
		// (the eq. 2 usage pattern).
		mt, _, _, _ := sim.Aggregate(runs)
		pred := p.TwoLevelEnergyAt(k, float64(mt))
		if re := stats.RelErr(pred, float64(meanE)); re > 0.08 {
			t.Errorf("I=%v: fitted model predicts %.4g J, measured %.4g J (%.1f%% off)",
				i, pred, float64(meanE), re*100)
		}
	}
}

// The measurement stack agrees with itself: engine observables, the
// sampled power monitor, and the analytic model line up on one run.
func TestMeasurementStackConsistency(t *testing.T) {
	m := machine.CoreI7950()
	eng, err := sim.New(m, sim.Config{Seed: 5, Ideal: true})
	if err != nil {
		t.Fatal(err)
	}
	p := core.FromMachine(m, machine.Single)
	k := core.KernelAt(5e10, 2)
	run, err := eng.Run(sim.KernelSpec{W: k.W, Q: k.Q, Precision: machine.Single})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := powermon.New(powermon.CPUChannels(), powermon.Config{Seed: 6, RateHz: 1024})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := mon.Measure(run, run.Duration)
	if err != nil {
		t.Fatal(err)
	}
	// Three independent energy numbers: model, engine, monitor.
	modelE := p.Energy(k)
	if re := stats.RelErr(float64(run.Energy), modelE); re > 1e-9 {
		t.Errorf("engine vs model: %v", re)
	}
	if re := stats.RelErr(float64(tr.Energy()), modelE); re > 0.02 {
		t.Errorf("monitor vs model: %v", re)
	}
}

// The FMM study's counter pipeline is consistent with the standalone
// kernel: the traced DRAM footprint covers the particle data the actual
// interaction kernel reads.
func TestFMMTrafficCoversKernelFootprint(t *testing.T) {
	pts := fmm.UniformPoints(1500, 3)
	tree, err := fmm.Build(pts, 96, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := tree.BuildULists()
	pairs, err := tree.InteractF32(u)
	if err != nil {
		t.Fatal(err)
	}
	if pairs == 0 {
		t.Fatal("no interactions")
	}
	res, err := fmm.RunStudy(fmm.StudyConfig{
		Seed: 3, N: 1500, LeafSize: 96,
		Variants: []fmm.Variant{{Layout: fmm.SoA, Staging: fmm.CacheOnly, TargetTile: 1, Unroll: 1, VectorWidth: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// W from the study equals 11 flops per structural pair of ITS OWN
	// instance; cross-check the magnitude against the hand-built one.
	if res.W < float64(pairs)*11/2 || res.W > float64(pairs)*11*2 {
		t.Errorf("study W %.3g not within 2× of kernel pairs × 11 = %.3g", res.W, float64(pairs)*11)
	}
	// Counter-derived DRAM reads cover the 16-byte records of all
	// points at least once.
	footprint := 1500.0 * 16
	dram := res.Results[0].Traffic.DRAMReadBytes
	if dram < footprint {
		t.Errorf("DRAM reads %.3g below compulsory footprint %.3g", dram, footprint)
	}
}

// The validation lattice holds for the fitted machine too: a model
// built purely from fitted coefficients still lower-bounds time and
// upper-bounds power on fresh ground-truth measurements.
func TestValidationHoldsForCampaignOutput(t *testing.T) {
	s, err := validate.Run(validate.Config{
		Seed:     777,
		Machines: []string{"gtx580", "i7-950"},
		Reps:     4,
		Slack:    0.04,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.TimeBoundViolations != 0 || s.PowerBoundViolations != 0 {
		t.Errorf("bound violations: time %d, power %d", s.TimeBoundViolations, s.PowerBoundViolations)
	}
}

// Auto-tuned sweeps and the §IV-B peaks agree: the tuner's best
// configuration reproduces the documented achieved rates end to end.
func TestTunerPeaksRoundTrip(t *testing.T) {
	m := machine.GTX580()
	eng, err := sim.New(m, sim.DefaultConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	tuning, quality, err := microbench.AutoTune(eng, machine.Double)
	if err != nil {
		t.Fatal(err)
	}
	if quality < 0.99 {
		t.Fatalf("tuner quality %v", quality)
	}
	gf, gb, err := microbench.Peaks(eng, machine.Double, tuning)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(gf, 196) > 0.05 || stats.RelErr(gb, 170) > 0.05 {
		t.Errorf("tuned peaks %v GFLOP/s, %v GB/s; want ≈196, ≈170", gf, gb)
	}
}
