package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every reading, making span
// timings — and everything derived from them — deterministic.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Duration
	step time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += c.step
	return c.now
}

func newFake(step time.Duration) *fakeClock { return &fakeClock{step: step} }

func TestNilTracerIsDisabledAndSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.Now() != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer leaks state")
	}
	tr.Reset()

	ctx := WithTracer(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Error("nil tracer attached to context")
	}
	ctx2, sp := Start(ctx, "phase")
	if ctx2 != ctx {
		t.Error("disabled Start should return the context unchanged")
	}
	if sp != nil {
		t.Error("disabled Start should return a nil span")
	}
	sp.Tag("k", "v")
	sp.End() // must not panic
}

func TestSpanRecordingAndNesting(t *testing.T) {
	tr := New(Config{Clock: newFake(time.Millisecond)})
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "outer")
	root.Tag("machine", "gtx580")
	_, child := Start(ctx, "inner")
	child.Tag("rep", 3)
	child.End()
	root.End()

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	// Ring order is completion order: inner first.
	inner, outer := events[0], events[1]
	if inner.Name != "inner" || outer.Name != "outer" {
		t.Fatalf("event order %q, %q", inner.Name, outer.Name)
	}
	if inner.Track != outer.Track {
		t.Errorf("child track %d != parent track %d", inner.Track, outer.Track)
	}
	if len(outer.Tags) != 1 || outer.Tags[0].Key != "machine" || outer.Tags[0].Val != "gtx580" {
		t.Errorf("outer tags wrong: %+v", outer.Tags)
	}
	if inner.Dur <= 0 || outer.Dur <= inner.Dur {
		t.Errorf("durations not nested: outer %v, inner %v", outer.Dur, inner.Dur)
	}
}

func TestRootSpansGetDistinctTracks(t *testing.T) {
	tr := New(Config{Clock: newFake(time.Millisecond)})
	ctx := WithTracer(context.Background(), tr)
	_, a := Start(ctx, "a")
	_, b := Start(ctx, "b")
	a.End()
	b.End()
	events := tr.Events()
	if events[0].Track == events[1].Track {
		t.Errorf("independent roots share track %d", events[0].Track)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := New(Config{Clock: newFake(time.Millisecond)})
	_, sp := tr.StartRoot(context.Background(), "once")
	sp.End()
	sp.End()
	if got := tr.Len(); got != 1 {
		t.Errorf("double End recorded %d events, want 1", got)
	}
}

func TestRingBufferWrapsAndCounts(t *testing.T) {
	tr := New(Config{Capacity: 4, Clock: newFake(time.Millisecond)})
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, string(rune('a'+i)))
		sp.End()
	}
	if got := tr.Len(); got != 4 {
		t.Errorf("ring holds %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("dropped %d, want 6", got)
	}
	events := tr.Events()
	// Oldest-first: the surviving events are g, h, i, j.
	want := []string{"g", "h", "i", "j"}
	for i, ev := range events {
		if ev.Name != want[i] {
			t.Errorf("event %d = %q, want %q", i, ev.Name, want[i])
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestObserverSeesEverySpan(t *testing.T) {
	var mu sync.Mutex
	got := map[string]time.Duration{}
	tr := New(Config{
		Clock: newFake(time.Millisecond),
		Observer: func(name string, d time.Duration) {
			mu.Lock()
			got[name] += d
			mu.Unlock()
		},
	})
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 3; i++ {
		_, sp := Start(ctx, "phase")
		sp.End()
	}
	if got["phase"] != 3*time.Millisecond {
		t.Errorf("observer total %v, want 3ms", got["phase"])
	}
}

func TestConcurrentSpansAreAllRecorded(t *testing.T) {
	tr := New(Config{Capacity: 1 << 12})
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	const n = 64
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, sp := Start(ctx, "work")
				sp.Tag("i", i)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != n*10 {
		t.Errorf("recorded %d spans, want %d", got, n*10)
	}
}

// TestRecordInjectsVirtualSpans pins the simulator injection path: a
// pre-built event lands in the ring exactly as constructed (virtual
// start/duration/track), feeds the Observer, respects the ring bound,
// and is a no-op on a disabled tracer.
func TestRecordInjectsVirtualSpans(t *testing.T) {
	var observed []time.Duration
	tr := New(Config{Capacity: 4, Observer: func(name string, d time.Duration) {
		if name == "sim.serve" {
			observed = append(observed, d)
		}
	}})
	ev := Event{
		Name:  "sim.serve",
		Track: 7,
		Start: 1500 * time.Millisecond,
		Dur:   20 * time.Millisecond,
		Tags:  []Tag{{Key: "replica", Val: 7}},
	}
	tr.Record(ev)
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("ring has %d events, want 1", len(events))
	}
	got := events[0]
	if got.Name != ev.Name || got.Track != 7 || got.Start != ev.Start || got.Dur != ev.Dur {
		t.Errorf("recorded event mangled: %+v", got)
	}
	if len(observed) != 1 || observed[0] != 20*time.Millisecond {
		t.Errorf("observer saw %v, want one 20ms duration", observed)
	}
	// Ring bound: recording past capacity overwrites oldest and counts.
	for i := 0; i < 6; i++ {
		tr.Record(Event{Name: "sim.serve", Start: time.Duration(i) * time.Second})
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want capacity 4", tr.Len())
	}
	if tr.Dropped() == 0 {
		t.Error("overwrites not counted")
	}
	// Disabled tracer: no-op.
	var nilTracer *Tracer
	nilTracer.Record(ev)
}
