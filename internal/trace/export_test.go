package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestChromeExportGolden pins the exporter's exact output for a
// deterministic clock: valid trace_event JSON with microsecond
// complete events, tags as args, and track inheritance as tid.
func TestChromeExportGolden(t *testing.T) {
	tr := New(Config{Clock: newFake(time.Millisecond)})
	ctx := WithTracer(context.Background(), tr)
	ctx, outer := Start(ctx, "campaign") // start at 1ms
	_, rep := Start(ctx, "sweep.rep")    // start at 2ms
	rep.Tag("rep", 0).Tag("precision", "double")
	rep.End()   // end at 3ms
	outer.End() // end at 4ms

	data, err := tr.MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	var got chromeTrace
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if got.DisplayTimeUnit != "ms" || got.Dropped != 0 {
		t.Errorf("envelope wrong: %+v", got)
	}
	if len(got.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(got.TraceEvents))
	}
	rep2, out2 := got.TraceEvents[0], got.TraceEvents[1]
	if rep2.Name != "sweep.rep" || rep2.Ph != "X" || rep2.Ts != 2000 || rep2.Dur != 1000 {
		t.Errorf("rep event wrong: %+v", rep2)
	}
	if out2.Name != "campaign" || out2.Ts != 1000 || out2.Dur != 3000 {
		t.Errorf("outer event wrong: %+v", out2)
	}
	if rep2.Tid != out2.Tid {
		t.Errorf("child tid %d != parent tid %d", rep2.Tid, out2.Tid)
	}
	if rep2.Args["rep"] != float64(0) || rep2.Args["precision"] != "double" {
		t.Errorf("args wrong: %+v", rep2.Args)
	}
}

func TestWriteChromeEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	var tr *Tracer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var got chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	if len(got.TraceEvents) != 0 {
		t.Errorf("empty tracer exported %d events", len(got.TraceEvents))
	}
}

func TestAggregates(t *testing.T) {
	tr := New(Config{Clock: newFake(time.Millisecond)})
	ctx := WithTracer(context.Background(), tr)
	// Three "rep" spans of 1ms each, one "fit" span of 1ms.
	for i := 0; i < 3; i++ {
		_, sp := Start(ctx, "rep")
		sp.End()
	}
	_, sp := Start(ctx, "fit")
	sp.End()

	aggs := tr.Aggregates()
	if len(aggs) != 2 {
		t.Fatalf("got %d aggregates, want 2", len(aggs))
	}
	// Sorted by descending total: rep (3ms) before fit (1ms).
	if aggs[0].Name != "rep" || aggs[0].Count != 3 || aggs[0].Total != 3*time.Millisecond {
		t.Errorf("rep aggregate wrong: %+v", aggs[0])
	}
	if aggs[0].Mean() != time.Millisecond || aggs[0].Min != time.Millisecond || aggs[0].Max != time.Millisecond {
		t.Errorf("rep stats wrong: %+v", aggs[0])
	}
	if aggs[1].Name != "fit" || aggs[1].Count != 1 {
		t.Errorf("fit aggregate wrong: %+v", aggs[1])
	}
	if s := aggs[0].String(); s == "" {
		t.Error("String rendered empty")
	}
}
