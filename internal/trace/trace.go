// Package trace is the execution-tracing layer behind the `-trace`
// flags and the server's /debug/trace endpoint: a low-overhead span
// tracer that attributes wall-clock time to the phases of a campaign —
// per-machine pipelines, per-precision sweeps, individual repetitions,
// worker-pool queueing — the way Hofmann et al. attribute measured time
// to phases when validating analytic energy models.
//
// Design constraints, in order:
//
//   - Determinism safety. Tracing must never touch the measurement
//     pipeline's random streams or outputs: spans record only names,
//     tags, and clock readings, so a traced campaign is byte-identical
//     to an untraced one (pinned by the e2e tests). The clock itself is
//     an interface so tests can inject a deterministic one and pin the
//     exporter's output exactly.
//   - Disabled means free. A nil *Tracer is a valid, disabled tracer:
//     every method is nil-safe and returns immediately, and Start
//     performs a single context lookup before bailing out. The
//     instrumented hot paths therefore cost one pointer check per span
//     site when tracing is off (pinned by the overhead benchmark).
//   - Bounded memory. Completed spans land in a fixed-capacity ring
//     buffer; overflow overwrites the oldest events and is counted, so
//     a long-lived server can leave tracing on without growing.
//
// Spans propagate through context.Context: WithTracer attaches a
// tracer, Start opens a span (inheriting the parent span's track, so
// one goroutine's nested phases share a lane in the exported trace),
// and End records it. Export produces Chrome trace_event JSON that
// chrome://tracing and Perfetto open directly; Aggregates reduces the
// ring to per-phase statistics for quick diagnosis and for the
// /metrics latency histograms (via the Observer hook).
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies monotonic timestamps as offsets from an arbitrary
// epoch. The default clock reads the wall clock's monotonic component;
// tests inject a fake to make span timings — and therefore exporter
// output — fully deterministic.
type Clock interface {
	// Now returns the time elapsed since the clock's epoch.
	Now() time.Duration
}

// wallClock is the production clock: monotonic time since creation.
type wallClock struct{ epoch time.Time }

// Now implements Clock via the runtime's monotonic reading.
func (c wallClock) Now() time.Duration { return time.Since(c.epoch) }

// Tag is one span annotation. Values are kept as `any` so counts and
// durations export as JSON numbers rather than quoted strings.
type Tag struct {
	// Key names the annotation (e.g. "machine", "queue_wait_us").
	Key string
	// Val is the annotation value; strings, ints, and floats all
	// marshal naturally into trace_event args.
	Val any
}

// Event is one completed span as stored in the ring buffer.
type Event struct {
	// Name is the span name (the phase label, e.g. "campaign.sweep").
	Name string
	// Track is the lane the span renders on: root spans allocate a
	// fresh track, children inherit their parent's, so each concurrent
	// chain of work — in practice, each worker goroutine's task — gets
	// its own row in the trace viewer.
	Track uint64
	// Start is the span's start offset from the tracer's epoch.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
	// Tags are the span's annotations, in the order they were set.
	Tags []Tag
}

// Span is an in-progress phase. Obtain one from Start; finish it with
// End. A nil *Span (what Start returns when tracing is disabled) is
// valid: all methods are no-ops.
type Span struct {
	tracer *Tracer
	name   string
	track  uint64
	start  time.Duration
	tags   []Tag
	ended  atomic.Bool
}

// Config parameterises a Tracer. The zero value gets defaults.
type Config struct {
	// Capacity bounds the ring buffer in completed spans; <= 0 means
	// DefaultCapacity. Overflow overwrites the oldest events (counted
	// by Dropped), never grows memory.
	Capacity int
	// Clock overrides the monotonic wall clock (tests inject a
	// deterministic one).
	Clock Clock
	// Observer, when non-nil, is invoked synchronously with every
	// completed span's name and duration — the bridge that feeds
	// per-phase latency histograms in a metrics registry without this
	// package depending on it. It may be called concurrently.
	Observer func(name string, d time.Duration)
}

// DefaultCapacity is the ring size used when Config.Capacity is unset:
// enough for a default campaign's per-rep spans with headroom.
const DefaultCapacity = 1 << 16

// Tracer records spans into a bounded ring. A nil *Tracer is a valid
// disabled tracer; a non-nil Tracer is safe for concurrent use.
type Tracer struct {
	clock    Clock
	observer func(string, time.Duration)

	nextTrack atomic.Uint64

	mu      sync.Mutex
	ring    []Event
	next    int    // ring index of the next write
	filled  bool   // ring has wrapped at least once
	dropped uint64 // events overwritten after wrapping
}

// New returns an enabled tracer.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Clock == nil {
		cfg.Clock = wallClock{epoch: time.Now()}
	}
	return &Tracer{
		clock:    cfg.Clock,
		observer: cfg.Observer,
		ring:     make([]Event, cfg.Capacity),
	}
}

// Enabled reports whether spans are being recorded. It is the nil
// check, spelled for call sites.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the tracer's clock reading (0 on a disabled tracer) —
// used by call sites that measure sub-span intervals like queue wait.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock.Now()
}

// ctxKey keys context values; separate types for tracer and span.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying t. Attaching a nil tracer
// returns ctx unchanged, so call sites need no special casing.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the context's tracer, or nil (a valid disabled
// tracer) when none is attached or ctx itself is nil.
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// Start opens a span named name under the context's tracer and returns
// a context carrying the new span (for child spans to inherit its
// track) plus the span itself. When the context carries no tracer both
// returns are what cost nothing: the original context and a nil span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	s := t.start(name, parentTrack(ctx, t))
	return context.WithValue(ctx, spanKey, s), s
}

// StartRoot opens a span directly on t, outside any context chain —
// the form server handlers use before a request context exists. The
// returned context carries both the tracer and the span.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := t.start(name, t.nextTrack.Add(1))
	ctx = context.WithValue(WithTracer(ctx, t), spanKey, s)
	return ctx, s
}

// parentTrack resolves the track a new span should render on: the
// enclosing span's lane, or a fresh one for a root span.
func parentTrack(ctx context.Context, t *Tracer) uint64 {
	if p, _ := ctx.Value(spanKey).(*Span); p != nil {
		return p.track
	}
	return t.nextTrack.Add(1)
}

// start allocates and stamps a span.
func (t *Tracer) start(name string, track uint64) *Span {
	return &Span{tracer: t, name: name, track: track, start: t.clock.Now()}
}

// Tag annotates the span; it returns the span so sites can chain tags
// at creation. Nil-safe. Not synchronised: tag a span only from the
// goroutine that started it, before End.
func (s *Span) Tag(key string, val any) *Span {
	if s == nil {
		return nil
	}
	s.tags = append(s.tags, Tag{Key: key, Val: val})
	return s
}

// End completes the span and commits it to the ring buffer. Nil-safe
// and idempotent: second and later calls are no-ops, so `defer
// sp.End()` composes with early explicit ends.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	t := s.tracer
	end := t.clock.Now()
	t.Record(Event{Name: s.name, Track: s.track, Start: s.start, Dur: end - s.start, Tags: s.tags})
}

// Record commits a pre-built completed event directly to the ring —
// the injection path for discrete-event simulators (internal/cluster)
// that stamp spans with *virtual* timestamps instead of readings from
// the tracer's clock, yet want the same ring-buffer bounds, Observer
// hook, and Chrome exporter as live spans. The caller owns Start, Dur,
// and Track (simulators typically map Track to a replica lane).
// Nil-safe: recording on a disabled tracer is a no-op.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	if t.observer != nil {
		t.observer(ev.Name, ev.Dur)
	}
	t.mu.Lock()
	if t.filled {
		t.dropped++
	}
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
}

// Events returns the recorded spans, oldest first. On a disabled
// tracer it returns nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filled {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Len returns the number of recorded spans currently in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled {
		return len(t.ring)
	}
	return t.next
}

// Dropped returns how many spans the ring has overwritten since the
// tracer was created.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all recorded spans (the ring keeps its capacity).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.next = 0
	t.filled = false
	t.dropped = 0
	t.mu.Unlock()
}
