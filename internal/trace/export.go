package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// This file turns the ring buffer into consumable artifacts: Chrome
// trace_event JSON (the format chrome://tracing and Perfetto open
// directly) and per-phase aggregates for quick terminal diagnosis and
// the /metrics latency histograms.

// chromeEvent is one trace_event record. Complete events (ph "X")
// carry both a timestamp and a duration in microseconds.
type chromeEvent struct {
	// Name is the span name.
	Name string `json:"name"`
	// Cat is the event category; all spans export as "span".
	Cat string `json:"cat"`
	// Ph is the event phase; "X" marks a complete (begin+end) event.
	Ph string `json:"ph"`
	// Ts is the start timestamp in microseconds from the trace epoch.
	Ts float64 `json:"ts"`
	// Dur is the duration in microseconds.
	Dur float64 `json:"dur"`
	// Pid is the process lane; the exporter uses a single process.
	Pid int `json:"pid"`
	// Tid is the thread lane — the span's track.
	Tid uint64 `json:"tid"`
	// Args carries the span's tags.
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event envelope.
type chromeTrace struct {
	// TraceEvents is the event list.
	TraceEvents []chromeEvent `json:"traceEvents"`
	// DisplayTimeUnit selects the viewer's default unit.
	DisplayTimeUnit string `json:"displayTimeUnit"`
	// Dropped reports ring-buffer overwrites (0 means the trace is
	// complete). Extra top-level keys are legal in the format.
	Dropped uint64 `json:"dropped,omitempty"`
}

// MarshalChrome renders the recorded spans as Chrome trace_event JSON.
// On a disabled tracer it returns an empty, still-valid trace.
func (t *Tracer) MarshalChrome() ([]byte, error) {
	events := t.Events()
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
		Dropped:         t.Dropped(),
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(ev.Start) / float64(time.Microsecond),
			Dur:  float64(ev.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  ev.Track,
		}
		if len(ev.Tags) > 0 {
			ce.Args = make(map[string]any, len(ev.Tags))
			for _, tag := range ev.Tags {
				ce.Args[tag.Key] = tag.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	return json.MarshalIndent(out, "", " ")
}

// WriteChrome writes the trace_event JSON to w.
func (t *Tracer) WriteChrome(w io.Writer) error {
	data, err := t.MarshalChrome()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Aggregate is one phase's reduced statistics over the ring buffer.
type Aggregate struct {
	// Name is the span name the statistics cover.
	Name string
	// Count is the number of recorded spans with this name.
	Count int
	// Total is the summed duration.
	Total time.Duration
	// Min and Max bound the observed durations.
	Min time.Duration
	// Max is the largest observed duration.
	Max time.Duration
}

// Mean returns Total/Count (0 for an empty aggregate).
func (a Aggregate) Mean() time.Duration {
	if a.Count == 0 {
		return 0
	}
	return a.Total / time.Duration(a.Count)
}

// String renders the aggregate as one diagnostic line.
func (a Aggregate) String() string {
	return fmt.Sprintf("%-24s n=%-6d total=%-12v mean=%-10v min=%-10v max=%v",
		a.Name, a.Count, a.Total, a.Mean(), a.Min, a.Max)
}

// Aggregates reduces the ring to one Aggregate per span name, sorted
// by descending total duration — the "where did the time go" summary.
func (t *Tracer) Aggregates() []Aggregate {
	byName := map[string]*Aggregate{}
	for _, ev := range t.Events() {
		a, ok := byName[ev.Name]
		if !ok {
			a = &Aggregate{Name: ev.Name, Min: ev.Dur, Max: ev.Dur}
			byName[ev.Name] = a
		}
		a.Count++
		a.Total += ev.Dur
		if ev.Dur < a.Min {
			a.Min = ev.Dur
		}
		if ev.Dur > a.Max {
			a.Max = ev.Dur
		}
	}
	out := make([]Aggregate, 0, len(byName))
	for _, a := range byName {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}
