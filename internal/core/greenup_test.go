package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func pi0FreeFermi() Params {
	p := FromMachine(machine.FermiTableII(), machine.Double)
	p.Pi0 = 0
	return p
}

func TestTradeoffApply(t *testing.T) {
	k := Kernel{W: 100, Q: 50}
	tr := Tradeoff{F: 2, M: 5}
	got := tr.Apply(k)
	if got.W != 200 || got.Q != 10 {
		t.Errorf("Apply = %+v", got)
	}
}

func TestTradeoffValidate(t *testing.T) {
	if (Tradeoff{F: 1.5, M: 2}).Validate() != nil {
		t.Error("valid trade-off rejected")
	}
	if (Tradeoff{F: 0, M: 2}).Validate() == nil {
		t.Error("f=0 accepted")
	}
	if (Tradeoff{F: 2, M: -1}).Validate() == nil {
		t.Error("m<0 accepted")
	}
}

func TestEq10BoundaryExact(t *testing.T) {
	// At the eq. (10) boundary f* = 1 + (m-1)/m · Bε/I (π0 = 0), the
	// energies are equal: ΔE = 1 exactly.
	p := pi0FreeFermi()
	for _, i := range []float64{0.5, 2, 8, 64} {
		for _, m := range []float64{1.5, 2, 10, 1000} {
			k := KernelAt(1e9, i)
			fstar := p.GreenupConditionRHS(i, m)
			tr := Tradeoff{F: fstar, M: m}
			g := p.Greenup(k, tr)
			if math.Abs(g-1) > 1e-9 {
				t.Errorf("I=%v m=%v: greenup at boundary = %v, want 1", i, m, g)
			}
			// Just inside the bound: greenup.
			tr.F = fstar * 0.99
			if p.Greenup(k, tr) <= 1 {
				t.Errorf("I=%v m=%v: expected greenup just inside bound", i, m)
			}
			// Just outside: no greenup.
			tr.F = fstar * 1.01
			if p.Greenup(k, tr) >= 1 {
				t.Errorf("I=%v m=%v: expected no greenup just outside bound", i, m)
			}
		}
	}
}

func TestMaxExtraWorkLimits(t *testing.T) {
	p := pi0FreeFermi()
	i := 2.0
	// m → ∞ limit: f < 1 + Bε/I.
	limit := p.MaxExtraWork(i)
	if math.Abs(limit-(1+p.BalanceEnergy()/i)) > 1e-12 {
		t.Errorf("MaxExtraWork = %v", limit)
	}
	// The eq. (10) RHS approaches the limit monotonically in m.
	prev := 0.0
	for _, m := range []float64{1.1, 2, 8, 64, 1e6} {
		rhs := p.GreenupConditionRHS(i, m)
		if rhs <= prev {
			t.Errorf("RHS not increasing in m at m=%v", m)
		}
		if rhs >= limit {
			t.Errorf("RHS %v exceeds the m→∞ limit %v", rhs, limit)
		}
		prev = rhs
	}
	// Compute-bound baseline limit: f < 1 + Bε/Bτ.
	cb := p.MaxExtraWorkComputeBound()
	if math.Abs(cb-(1+p.BalanceGap())) > 1e-12 {
		t.Errorf("compute-bound limit = %v", cb)
	}
	// For any I ≥ Bτ, MaxExtraWork(I) ≤ the compute-bound limit.
	for _, i := range []float64{p.BalanceTime(), 2 * p.BalanceTime(), 100} {
		if p.MaxExtraWork(i) > cb+1e-12 {
			t.Errorf("I=%v: limit %v above compute-bound limit %v", i, p.MaxExtraWork(i), cb)
		}
	}
}

func TestSpeedupComputation(t *testing.T) {
	p := pi0FreeFermi()
	// Baseline memory-bound at I = 1; halving traffic (m=2, f=1) doubles
	// speed while it stays memory-bound.
	k := KernelAt(1e9, 1)
	tr := Tradeoff{F: 1, M: 2}
	s := p.Speedup(k, tr)
	if math.Abs(s-2) > 1e-9 {
		t.Errorf("memory-bound speedup = %v, want 2", s)
	}
	// Once compute-bound, more traffic reduction gains nothing.
	k2 := KernelAt(1e9, 100)
	s2 := p.Speedup(k2, Tradeoff{F: 1, M: 10})
	if math.Abs(s2-1) > 1e-9 {
		t.Errorf("compute-bound speedup = %v, want 1", s2)
	}
	// Extra work with no traffic reduction slows down compute-bound code.
	s3 := p.Speedup(k2, Tradeoff{F: 2, M: 1})
	if math.Abs(s3-0.5) > 1e-9 {
		t.Errorf("f=2 speedup = %v, want 0.5", s3)
	}
}

func TestClassifyQuadrants(t *testing.T) {
	p := pi0FreeFermi()
	k := KernelAt(1e9, 1) // memory-bound in time and energy

	cases := []struct {
		name string
		tr   Tradeoff
		want TradeoffOutcome
	}{
		// Halve traffic for tiny extra work: both faster and greener.
		{"both", Tradeoff{F: 1.01, M: 2}, Both},
		// Massive extra work for modest traffic saving: neither.
		{"neither", Tradeoff{F: 50, M: 2}, Neither},
		// Moderate extra work, big traffic cut: the flops dominate time
		// once compute-bound, but energy still wins -> greenup only.
		{"greenup only", Tradeoff{F: 4.4, M: 1000}, GreenupOnly},
	}
	for _, c := range cases {
		if got := p.Classify(k, c.tr); got != c.want {
			t.Errorf("%s: Classify = %v, want %v (ΔT=%v ΔE=%v)", c.name, got, c.want,
				p.Speedup(k, c.tr), p.Greenup(k, c.tr))
		}
	}
}

func TestClassifySpeedupOnlyNeedsAdverseEnergy(t *testing.T) {
	// Construct a machine where mops are cheap in energy but slow, so a
	// trade-off that cuts traffic massively while adding work is faster
	// but less green: Bε << Bτ.
	p := Params{
		TauFlop: 1e-12,
		TauMem:  100e-12, // Bτ = 100
		EpsFlop: 100e-12,
		EpsMem:  10e-12, // Bε = 0.1
	}
	k := KernelAt(1e9, 1) // memory-bound in time, compute-bound in energy
	tr := Tradeoff{F: 3, M: 50}
	if got := p.Classify(k, tr); got != SpeedupOnly {
		t.Errorf("Classify = %v, want speedup only (ΔT=%v ΔE=%v)", got,
			p.Speedup(k, tr), p.Greenup(k, tr))
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[TradeoffOutcome]string{
		Neither:     "neither",
		SpeedupOnly: "speedup only",
		GreenupOnly: "greenup only",
		Both:        "speedup and greenup",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
}

func TestLogGrid(t *testing.T) {
	g := LogGrid(0.25, 16, 7)
	if len(g) != 7 {
		t.Fatalf("len = %d", len(g))
	}
	if math.Abs(g[0]-0.25) > 1e-12 || math.Abs(g[6]-16) > 1e-12 {
		t.Errorf("endpoints = %v, %v", g[0], g[6])
	}
	// Even log spacing: consecutive ratios constant (2 here: 6 octaves/6 steps).
	for i := 1; i < len(g); i++ {
		if math.Abs(g[i]/g[i-1]-2) > 1e-9 {
			t.Errorf("ratio at %d = %v", i, g[i]/g[i-1])
		}
	}
	// Degenerate inputs.
	if LogGrid(1, 2, 1) != nil || LogGrid(0, 2, 5) != nil || LogGrid(4, 2, 5) != nil {
		t.Error("degenerate grids should be nil")
	}
}

func TestGreenupWithConstantPower(t *testing.T) {
	// With π0 > 0, a pure traffic cut on memory-bound code also cuts
	// run time, so the greenup beats the π0 = 0 prediction.
	p := FromMachine(machine.GTX580(), machine.Double)
	k := KernelAt(1e9, 0.5) // memory-bound
	tr := Tradeoff{F: 1, M: 2}
	gFull := p.Greenup(k, tr)
	p0 := p
	p0.Pi0 = 0
	gNoPi := p0.Greenup(k, tr)
	if gFull <= gNoPi {
		t.Errorf("π0 should amplify greenup for memory-bound traffic cuts: %v vs %v", gFull, gNoPi)
	}
}

func TestSpeedupConditionClosedForm(t *testing.T) {
	p := pi0FreeFermi()
	// Memory-bound baseline staying memory-bound: halving traffic with
	// no extra work doubles speed, so the f-threshold at m=2 is 2 for
	// deeply memory-bound baselines (time scales with Q while the new
	// code stays memory-bound past the crossover the bisection finds).
	for _, c := range []struct{ i, m float64 }{
		{0.25, 2}, {1, 4}, {3.6, 8}, {16, 2}, {64, 1024},
	} {
		rhs := p.SpeedupConditionRHS(c.i, c.m)
		k := KernelAt(1e9, c.i)
		// Exactly at the boundary the speedup is 1.
		s := p.Speedup(k, Tradeoff{F: rhs, M: c.m})
		if math.Abs(s-1) > 1e-6 {
			t.Errorf("I=%v m=%v: speedup at boundary f=%v is %v", c.i, c.m, rhs, s)
		}
		// Inside: faster; outside: slower.
		if p.Speedup(k, Tradeoff{F: rhs * 0.98, M: c.m}) <= 1 {
			t.Errorf("I=%v m=%v: no speedup just inside boundary", c.i, c.m)
		}
		if p.Speedup(k, Tradeoff{F: rhs * 1.02, M: c.m}) >= 1 {
			t.Errorf("I=%v m=%v: speedup just outside boundary", c.i, c.m)
		}
	}
}

func TestSpeedupPredictedMatchesExact(t *testing.T) {
	p := pi0FreeFermi()
	f := func(ri, rf, rm float64) bool {
		i := math.Exp2(math.Mod(ri, 12) - 6)
		tr := Tradeoff{
			F: 1 + math.Abs(math.Mod(rf, 8)),
			M: 1 + math.Abs(math.Mod(rm, 64)),
		}
		k := KernelAt(1e9, i)
		exact := p.Speedup(k, tr) > 1
		pred := p.SpeedupPredicted(i, tr)
		// Skip razor-edge cases.
		if math.Abs(tr.F-p.SpeedupConditionRHS(i, tr.M)) < 1e-6 {
			return true
		}
		return exact == pred
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The §VII joint question: both conditions together classify the plane
// identically to Classify (π0 = 0).
func TestJointConditionsMatchClassify(t *testing.T) {
	p := pi0FreeFermi()
	for _, i := range []float64{0.5, 2, 3.6, 8, 64} {
		k := KernelAt(1e9, i)
		for _, f := range []float64{1.1, 2, 5, 12} {
			for _, m := range []float64{1.5, 4, 32, 1024} {
				tr := Tradeoff{F: f, M: m}
				// Skip boundary-adjacent cells.
				if math.Abs(f-p.GreenupConditionRHS(i, m)) < 1e-6 ||
					math.Abs(f-p.SpeedupConditionRHS(i, m)) < 1e-6 {
					continue
				}
				speed := p.SpeedupPredicted(i, tr)
				green := p.GreenupPredicted(i, tr)
				var want TradeoffOutcome
				switch {
				case speed && green:
					want = Both
				case speed:
					want = SpeedupOnly
				case green:
					want = GreenupOnly
				default:
					want = Neither
				}
				if got := p.Classify(k, tr); got != want {
					t.Errorf("I=%v f=%v m=%v: closed-form %v vs exact %v", i, f, m, want, got)
				}
			}
		}
	}
}
