package core

import (
	"errors"
	"fmt"
)

// LevelTraffic records the byte traffic observed at one level of the
// memory hierarchy together with that level's per-byte energy cost —
// the §V-C refinement's inputs (the paper reads these from hardware
// counters; the reproduction reads them from the cache simulator).
type LevelTraffic struct {
	// Name labels the level (e.g. "L1", "L2").
	Name string
	// Bytes is the traffic through the level.
	Bytes float64
	// EpsPerByte is the level's energy per byte in Joules.
	EpsPerByte float64
}

// MultiLevelEnergy extends eq. (2) with per-level cache traffic
// (§V-C):
//
//	E = W·ε_flop + Σ_level Q_level·ε_level + Q_dram·ε_mem + π0·T.
//
// T is supplied by the caller because a measured execution time, not
// the model's idealized time, is what the paper plugs in when
// estimating the energy of real FMM variants.
func (p Params) MultiLevelEnergy(k Kernel, levels []LevelTraffic, t float64) (float64, error) {
	if t < 0 {
		return 0, errors.New("core: negative time")
	}
	e := k.W*p.EpsFlop + k.Q*p.EpsMem + p.Pi0*t
	for i, l := range levels {
		if l.Bytes < 0 || l.EpsPerByte < 0 {
			return 0, fmt.Errorf("core: level %d (%s) has negative traffic or energy", i, l.Name)
		}
		e += l.Bytes * l.EpsPerByte
	}
	return e, nil
}

// TwoLevelEnergyAt evaluates the basic eq. (2) with an externally
// measured time: E = W·ε_flop + Q·ε_mem + π0·T. This is the estimator
// the paper first applies to the FMM variants — the one that
// under-predicts by ~33% until the cache term is added.
func (p Params) TwoLevelEnergyAt(k Kernel, t float64) float64 {
	return k.W*p.EpsFlop + k.Q*p.EpsMem + p.Pi0*t
}

// FitLevelEnergy recovers a lumped cache energy-per-byte coefficient the
// way §V-C does: given a measured total energy, the two-level estimate,
// and the total cache traffic the two-level model ignored, it returns
//
//	ε_cache = (E_measured − E_twoLevel) / cacheBytes.
func FitLevelEnergy(measured, twoLevelEstimate, cacheBytes float64) (float64, error) {
	if cacheBytes <= 0 {
		return 0, errors.New("core: cache traffic must be positive to fit a per-byte cost")
	}
	return (measured - twoLevelEstimate) / cacheBytes, nil
}
