package core

import (
	"errors"
	"math"
)

// Concurrency refinement: the basic model uses throughput values for
// τ_mem, which (footnote 2 of the paper) is only valid when the
// algorithm exposes enough memory-level parallelism to cover latency;
// the paper defers the refined work-depth treatment to its prior work
// and lists latency suppression as a limitation (§VII). This file adds
// that refinement in its standard Little's-law form:
//
// With memory latency L seconds and c concurrent outstanding requests
// of g bytes each, the achievable bandwidth is min(peak, c·g/L), so the
// effective time per byte is
//
//	τ_mem(c) = max(τ_mem, L/(c·g)).
//
// Plugging τ_mem(c) into eqs. (3)–(7) gives concurrency-aware time,
// energy, and an effective time-balance B_τ(c) = τ_mem(c)/τ_flop that
// grows as concurrency shrinks: latency-bound codes need even more
// intensity to stay compute-bound.

// Concurrency describes the memory subsystem's latency and the
// request granularity.
type Concurrency struct {
	// Latency is the memory access latency in seconds (L).
	Latency float64
	// Granularity is the bytes delivered per outstanding request (g),
	// e.g. a cache line.
	Granularity float64
}

// Validate reports whether the description is usable.
func (c Concurrency) Validate() error {
	if c.Latency <= 0 || c.Granularity <= 0 {
		return errors.New("core: latency and granularity must be positive")
	}
	return nil
}

// EffectiveTauMem returns τ_mem(c) for inflight outstanding requests.
func (p Params) EffectiveTauMem(cc Concurrency, inflight float64) float64 {
	if inflight <= 0 {
		return math.Inf(1)
	}
	return math.Max(p.TauMem, cc.Latency/(inflight*cc.Granularity))
}

// WithConcurrency returns a copy of the parameters whose τ_mem is the
// concurrency-limited effective value; every roofline/arch-line/power
// method of the copy is then concurrency-aware.
func (p Params) WithConcurrency(cc Concurrency, inflight float64) (Params, error) {
	if err := cc.Validate(); err != nil {
		return Params{}, err
	}
	if inflight <= 0 {
		return Params{}, errors.New("core: inflight requests must be positive")
	}
	q := p
	q.TauMem = p.EffectiveTauMem(cc, inflight)
	return q, nil
}

// RequiredConcurrency returns the smallest number of outstanding
// requests that sustains peak bandwidth: c ≥ L/(τ_mem·g) — Little's
// law. Below this the memory side is latency-bound.
func (p Params) RequiredConcurrency(cc Concurrency) float64 {
	return cc.Latency / (p.TauMem * cc.Granularity)
}
