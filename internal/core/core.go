// Package core implements the paper's analytic model: the time roofline
// (eq. 3), the energy "arch line" (eqs. 4–6), the power line (eqs. 7–8),
// the greenup condition for work–communication trade-offs (eq. 10), the
// multi-level-memory energy refinement of §V-C, and the power-cap
// extension discussed in §V-B.
//
// Everything here is a pure function of a small parameter set; all
// quantities are float64 in base SI units (seconds, Joules, Watts,
// flops, bytes). The simulated measurement pipeline lives elsewhere
// (internal/sim, internal/powermon); this package is the model those
// measurements are compared against.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/machine"
)

// Params instantiates the model for one machine and precision: the four
// per-operation costs, the constant power, and (optionally) a power cap.
// It corresponds to one column of the paper's Table I machine parameters.
type Params struct {
	// TauFlop is τ_flop, seconds per arithmetic operation (throughput).
	TauFlop float64
	// TauMem is τ_mem, seconds per byte of slow-memory traffic.
	TauMem float64
	// EpsFlop is ε_flop, Joules per arithmetic operation.
	EpsFlop float64
	// EpsMem is ε_mem, Joules per byte of slow-memory traffic.
	EpsMem float64
	// Pi0 is π0, the constant power in Watts.
	Pi0 float64
	// PowerCap, if positive, is the maximum sustainable average power;
	// the basic model ignores it, the Capped* methods enforce it.
	PowerCap float64
}

// FromMachine instantiates model parameters for machine m at precision p,
// using peak (throughput) values for the time costs exactly as the paper
// instantiates eq. (3) from Table III.
func FromMachine(m *machine.Machine, p machine.Precision) Params {
	pp := m.Params(p)
	return Params{
		TauFlop:  1 / pp.PeakFlops,
		TauMem:   1 / m.Bandwidth,
		EpsFlop:  float64(pp.EnergyPerFlop),
		EpsMem:   float64(m.EnergyPerByte),
		Pi0:      float64(m.ConstantPower),
		PowerCap: float64(m.PowerCap),
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.TauFlop <= 0 || p.TauMem <= 0 {
		return errors.New("core: time costs must be positive")
	}
	if p.EpsFlop <= 0 || p.EpsMem <= 0 {
		return errors.New("core: energy costs must be positive")
	}
	if p.Pi0 < 0 {
		return errors.New("core: constant power must be non-negative")
	}
	if p.PowerCap < 0 {
		return errors.New("core: power cap must be non-negative")
	}
	if p.PowerCap > 0 && p.PowerCap <= p.Pi0 {
		return fmt.Errorf("core: power cap %g W not above constant power %g W", p.PowerCap, p.Pi0)
	}
	return nil
}

// Kernel is the paper's abstract algorithm characterization: W useful
// arithmetic operations and Q bytes of slow-memory traffic.
type Kernel struct {
	W float64 // flops
	Q float64 // bytes
}

// Intensity returns I = W/Q in flops per byte. A kernel with Q == 0 has
// infinite intensity.
func (k Kernel) Intensity() float64 {
	if k.Q == 0 {
		return math.Inf(1)
	}
	return k.W / k.Q
}

// KernelAt builds a kernel with the given work W and intensity I.
func KernelAt(w, intensity float64) Kernel {
	return Kernel{W: w, Q: w / intensity}
}

// Derived machine quantities ------------------------------------------------

// BalanceTime returns B_τ = τ_mem/τ_flop in flops per byte.
func (p Params) BalanceTime() float64 { return p.TauMem / p.TauFlop }

// BalanceEnergy returns B_ε = ε_mem/ε_flop in flops per byte.
func (p Params) BalanceEnergy() float64 { return p.EpsMem / p.EpsFlop }

// BalanceGap returns the ratio B_ε/B_τ, the paper's measure of how much
// harder energy-efficiency is than time-efficiency (§II-D).
func (p Params) BalanceGap() float64 { return p.BalanceEnergy() / p.BalanceTime() }

// Eps0 returns ε0 = π0·τ_flop, the constant energy burned in the time of
// one flop.
func (p Params) Eps0() float64 { return p.Pi0 * p.TauFlop }

// EpsFlopHat returns ε̂_flop = ε_flop + ε0, the true energy to execute
// one flop under constant power.
func (p Params) EpsFlopHat() float64 { return p.EpsFlop + p.Eps0() }

// EtaFlop returns η_flop = ε_flop/ε̂_flop, the constant-flop energy
// efficiency; 1 when π0 = 0.
func (p Params) EtaFlop() float64 { return p.EpsFlop / p.EpsFlopHat() }

// PiFlop returns π_flop = ε_flop/τ_flop, the power of flop execution
// excluding constant power.
func (p Params) PiFlop() float64 { return p.EpsFlop / p.TauFlop }

// EffectiveBalanceEnergy returns B̂ε(I), eq. (6):
//
//	B̂ε(I) = η_flop·B_ε + (1−η_flop)·max(0, B_τ−I).
func (p Params) EffectiveBalanceEnergy(intensity float64) float64 {
	eta := p.EtaFlop()
	return eta*p.BalanceEnergy() + (1-eta)*math.Max(0, p.BalanceTime()-intensity)
}

// Costs ----------------------------------------------------------------------

// TimeFlops returns T_flops = W·τ_flop.
func (p Params) TimeFlops(k Kernel) float64 { return k.W * p.TauFlop }

// TimeMem returns T_mem = Q·τ_mem.
func (p Params) TimeMem(k Kernel) float64 { return k.Q * p.TauMem }

// Time returns the total time under perfect overlap, eq. (1)/(3):
// T = max(W·τ_flop, Q·τ_mem).
func (p Params) Time(k Kernel) float64 {
	return math.Max(p.TimeFlops(k), p.TimeMem(k))
}

// TimeNoOverlap returns the total time if computation and communication
// cannot overlap: T = W·τ_flop + Q·τ_mem. The gap between Time and
// TimeNoOverlap is the structural reason the energy curve is an arch
// while the time curve is a roof (ablation; §II-B).
func (p Params) TimeNoOverlap(k Kernel) float64 {
	return p.TimeFlops(k) + p.TimeMem(k)
}

// EnergyFlops returns E_flops = W·ε_flop.
func (p Params) EnergyFlops(k Kernel) float64 { return k.W * p.EpsFlop }

// EnergyMem returns E_mem = Q·ε_mem.
func (p Params) EnergyMem(k Kernel) float64 { return k.Q * p.EpsMem }

// EnergyConstant returns E_0(T) = π0·T for the overlapped execution time.
func (p Params) EnergyConstant(k Kernel) float64 { return p.Pi0 * p.Time(k) }

// Energy returns the total energy, eq. (2)/(4):
// E = W·ε_flop + Q·ε_mem + π0·T.
func (p Params) Energy(k Kernel) float64 {
	return p.EnergyFlops(k) + p.EnergyMem(k) + p.EnergyConstant(k)
}

// EnergyEq5 returns the total energy through the refactored eq. (5):
// E = W·ε̂_flop·(1 + B̂ε(I)/I). It is algebraically identical to Energy
// for Q > 0; the identity is enforced by property tests.
func (p Params) EnergyEq5(k Kernel) float64 {
	i := k.Intensity()
	if math.IsInf(i, 1) {
		return k.W * p.EpsFlopHat()
	}
	return k.W * p.EpsFlopHat() * (1 + p.EffectiveBalanceEnergy(i)/i)
}

// AveragePower returns P = E/T for the kernel.
func (p Params) AveragePower(k Kernel) float64 {
	return p.Energy(k) / p.Time(k)
}

// PowerLine returns the average power as a function of intensity alone,
// eq. (7):
//
//	P(I) = (π_flop/η_flop)·[min(I,B_τ)/B_τ + B̂ε(I)/max(I,B_τ)].
func (p Params) PowerLine(intensity float64) float64 {
	bt := p.BalanceTime()
	return p.PiFlop() / p.EtaFlop() *
		(math.Min(intensity, bt)/bt + p.EffectiveBalanceEnergy(intensity)/math.Max(intensity, bt))
}

// MaxPower returns the model's maximum average power, attained at
// I = B_τ; for π0 = 0 this is the eq. (8) bound π_flop·(1 + B_ε/B_τ).
func (p Params) MaxPower() float64 { return p.PowerLine(p.BalanceTime()) }

// Normalized performance curves ----------------------------------------------

// PeakFlopsRate returns the best possible speed, 1/τ_flop, in FLOP/s.
func (p Params) PeakFlopsRate() float64 { return 1 / p.TauFlop }

// PeakEfficiency returns the best possible energy efficiency,
// 1/ε̂_flop, in FLOP/J — the paper's "Peak GFLOP/J" annotations in
// Fig. 4 divide this by 1e9.
func (p Params) PeakEfficiency() float64 { return 1 / p.EpsFlopHat() }

// RooflineTime returns normalized speed W·τ_flop/T = min(1, I/B_τ) at
// the given intensity — the red roofline of Fig. 2a.
func (p Params) RooflineTime(intensity float64) float64 {
	return math.Min(1, intensity/p.BalanceTime())
}

// ArchlineEnergy returns normalized energy efficiency
// W·ε̂_flop/E = 1/(1 + B̂ε(I)/I) at the given intensity — the smooth
// blue arch line of Fig. 2a.
func (p Params) ArchlineEnergy(intensity float64) float64 {
	if intensity <= 0 {
		return 0
	}
	if math.IsInf(intensity, 1) {
		return 1
	}
	return 1 / (1 + p.EffectiveBalanceEnergy(intensity)/intensity)
}

// HalfEfficiencyIntensity returns the intensity at which the arch line
// crosses y = 1/2, i.e. where B̂ε(I) = I. With π0 = 0 this is exactly
// B_ε (§II-C: the energy-balance point is where efficiency is half of
// its best possible value); with π0 > 0 it is the "B̂ε" balance point
// the paper marks on Fig. 4 (e.g. 0.79 for the GTX 580 double case).
func (p Params) HalfEfficiencyIntensity() float64 {
	eta := p.EtaFlop()
	be := p.BalanceEnergy()
	bt := p.BalanceTime()
	// Branch I >= B_τ: B̂ε(I) = η·B_ε, so I = η·B_ε if that is >= B_τ.
	if eta*be >= bt {
		return eta * be
	}
	// Branch I < B_τ: η·B_ε + (1−η)(B_τ−I) = I
	//   ⇒ I = (η·B_ε + (1−η)·B_τ) / (2−η).
	return (eta*be + (1-eta)*bt) / (2 - eta)
}

// RaceToHaltEffective reports the paper's race-to-halt condition
// (§II-D, §V-B): when the effective energy-balance point lies below the
// time-balance point, any kernel that is compute-bound in time is
// already within a factor of two of optimal energy efficiency, so
// running flat-out and halting is a sound energy strategy.
func (p Params) RaceToHaltEffective() bool {
	return p.HalfEfficiencyIntensity() < p.BalanceTime()
}

// BoundState classifies a kernel against a balance point.
type BoundState int

const (
	// MemoryBound means intensity below the balance point.
	MemoryBound BoundState = iota
	// ComputeBound means intensity at or above the balance point.
	ComputeBound
)

// String implements fmt.Stringer.
func (b BoundState) String() string {
	if b == ComputeBound {
		return "compute-bound"
	}
	return "memory-bound"
}

// TimeBound classifies the kernel with respect to time (I vs B_τ).
func (p Params) TimeBound(k Kernel) BoundState {
	if k.Intensity() >= p.BalanceTime() {
		return ComputeBound
	}
	return MemoryBound
}

// EnergyBound classifies the kernel with respect to energy
// (I vs the half-efficiency intensity).
func (p Params) EnergyBound(k Kernel) BoundState {
	if k.Intensity() >= p.HalfEfficiencyIntensity() {
		return ComputeBound
	}
	return MemoryBound
}

// Power-cap extension (§V-B) ---------------------------------------------------

// CappedTime returns the execution time once the power cap is enforced.
// If the uncapped average power stays at or below the cap (or no cap is
// set), this equals Time. Otherwise the machine must throttle: dynamic
// energy is unchanged, constant power keeps burning, and time stretches
// until average power equals the cap:
//
//	T' = (W·ε_flop + Q·ε_mem) / (cap − π0).
func (p Params) CappedTime(k Kernel) float64 {
	t := p.Time(k)
	if p.PowerCap <= 0 {
		return t
	}
	if p.Energy(k)/t <= p.PowerCap {
		return t
	}
	return (p.EnergyFlops(k) + p.EnergyMem(k)) / (p.PowerCap - p.Pi0)
}

// CappedEnergy returns the total energy with the power cap enforced.
func (p Params) CappedEnergy(k Kernel) float64 {
	return p.EnergyFlops(k) + p.EnergyMem(k) + p.Pi0*p.CappedTime(k)
}

// CappedPower returns the average power with the cap enforced; never
// exceeds the cap when one is set.
func (p Params) CappedPower(k Kernel) float64 {
	return p.CappedEnergy(k) / p.CappedTime(k)
}

// CappedPowerLine is the power line with the cap folded in:
// min(P(I), cap) when a cap is set — the curve the measured Fig. 5b
// data actually follows on the GTX 580.
func (p Params) CappedPowerLine(intensity float64) float64 {
	pl := p.PowerLine(intensity)
	if p.PowerCap > 0 && pl > p.PowerCap {
		return p.PowerCap
	}
	return pl
}
