package core

import (
	"errors"
	"math"

	"repro/internal/machine"
)

// DVFS extension: the paper frames race-to-halt (§II-D, §V-B) and the
// DVFS literature (§VI) as strategies the balance gap arbitrates. This
// file makes that quantitative under the standard voltage-frequency
// coupling: scaling the compute clock by s ∈ (0, 1] stretches the time
// per flop by 1/s and scales the dynamic energy per flop by s²
// (E ∝ V² with V ∝ f), while memory throughput, memory energy, and
// constant power are unaffected:
//
//	T(s) = max(W·τflop/s, Q·τmem)
//	E(s) = W·εflop·s² + Q·εmem + π0·T(s)
//
// Minimising E(s) in the compute-bound regime yields the closed form
//
//	s* = (ε0 / (2·εflop))^(1/3),   ε0 = π0·τflop,
//
// so race-to-halt (s* ≥ 1) is exactly the condition ε0 ≥ 2·εflop: the
// constant energy burned per flop-time must dominate twice the flop's
// dynamic energy. With π0 = 0 the optimum is always the slowest
// available clock — the analytic counterpart of the reversal the paper
// predicts when architects drive constant power to zero.

// AtOperatingPoint folds a machine.OperatingPoint's scale factors into
// the parameters: τ and ε multiply by their scales, π0 by Pi0Scale, and
// the power cap — an electrical limit of the board — is unchanged. The
// TimeAtFreq/EnergyAtFreq closed forms above are the special case
// TauFlopScale = 1/s, EpsFlopScale = s², everything else 1; operating
// points generalise them to measured or synthesized V(s) laws.
func (p Params) AtOperatingPoint(op machine.OperatingPoint) Params {
	return Params{
		TauFlop:  p.TauFlop * op.TauFlopScale,
		TauMem:   p.TauMem * op.TauMemScale,
		EpsFlop:  p.EpsFlop * op.EpsFlopScale,
		EpsMem:   p.EpsMem * op.EpsMemScale,
		Pi0:      p.Pi0 * op.Pi0Scale,
		PowerCap: p.PowerCap,
	}
}

// FromMachineAt instantiates model parameters for machine m at
// precision prec, pinned to operating point op.
func FromMachineAt(m *machine.Machine, prec machine.Precision, op machine.OperatingPoint) Params {
	return FromMachine(m, prec).AtOperatingPoint(op)
}

// TimeAtFreq returns T(s) for clock scale s ∈ (0, 1].
func (p Params) TimeAtFreq(k Kernel, s float64) float64 {
	return math.Max(k.W*p.TauFlop/s, k.Q*p.TauMem)
}

// EnergyAtFreq returns E(s) for clock scale s ∈ (0, 1].
func (p Params) EnergyAtFreq(k Kernel, s float64) float64 {
	return k.W*p.EpsFlop*s*s + k.Q*p.EpsMem + p.Pi0*p.TimeAtFreq(k, s)
}

// PowerAtFreq returns the average power E(s)/T(s).
func (p Params) PowerAtFreq(k Kernel, s float64) float64 {
	return p.EnergyAtFreq(k, s) / p.TimeAtFreq(k, s)
}

// CriticalFreqScale returns s* = (ε0/(2·εflop))^(1/3), the unclamped
// stationary point of E(s) in the compute-bound regime.
func (p Params) CriticalFreqScale() float64 {
	return math.Cbrt(p.Eps0() / (2 * p.EpsFlop))
}

// OptimalFreqScale minimises E(s) over s ∈ [sMin, 1] and returns the
// minimiser and its energy. E(s) is piecewise smooth with one interior
// stationary point per piece, so the minimum is attained at one of:
// the bounds, the compute-bound stationary point s*, or the regime
// boundary s = I/Bτ (where the kernel switches between compute- and
// memory-bound under scaling).
func (p Params) OptimalFreqScale(k Kernel, sMin float64) (s, energy float64, err error) {
	if sMin <= 0 || sMin > 1 {
		return 0, 0, errors.New("core: sMin must be in (0, 1]")
	}
	if k.W <= 0 {
		return 0, 0, errors.New("core: kernel must have positive work")
	}
	candidates := []float64{sMin, 1}
	if star := p.CriticalFreqScale(); star > sMin && star < 1 {
		candidates = append(candidates, star)
	}
	// Regime boundary: W·τflop/s = Q·τmem ⇒ s = I/Bτ (for finite I).
	if k.Q > 0 {
		if edge := k.Intensity() / p.BalanceTime(); edge > sMin && edge < 1 {
			candidates = append(candidates, edge)
		}
	}
	best := math.Inf(1)
	bestS := sMin
	for _, c := range candidates {
		if e := p.EnergyAtFreq(k, c); e < best {
			best, bestS = e, c
		}
	}
	return bestS, best, nil
}

// RaceToHaltOptimalDVFS reports whether running at full clock minimises
// energy for this kernel under the DVFS model (given the slowest
// available scale sMin).
func (p Params) RaceToHaltOptimalDVFS(k Kernel, sMin float64) (bool, error) {
	s, _, err := p.OptimalFreqScale(k, sMin)
	if err != nil {
		return false, err
	}
	return s == 1, nil
}
