package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

// randParams maps three raw float64s onto a valid Params in a realistic
// range: pico-scale energies and times, constant power in [0, 400) W.
func randParams(a, b, c float64) Params {
	u := func(x float64) float64 { // (0,1]
		v := math.Abs(math.Mod(x, 1))
		if v == 0 || math.IsNaN(v) {
			v = 0.5
		}
		return v
	}
	return Params{
		TauFlop: 1e-12 * (0.1 + 10*u(a)),
		TauMem:  1e-12 * (0.1 + 10*u(b)),
		EpsFlop: 1e-12 * (1 + 500*u(c)),
		EpsMem:  1e-12 * (1 + 900*u(a*b+1)),
		Pi0:     400 * u(b*c+2),
	}
}

func randIntensity(x float64) float64 {
	v := math.Abs(math.Mod(x, 20)) - 10 // [-10, 10)
	return math.Exp2(v)                 // intensity in [2^-10, 2^10)
}

func TestPropEq5IdentityHoldsEverywhere(t *testing.T) {
	f := func(a, b, c, ri float64) bool {
		p := randParams(a, b, c)
		k := KernelAt(1e9, randIntensity(ri))
		e4 := p.Energy(k)
		e5 := p.EnergyEq5(k)
		return math.Abs(e4-e5) <= 1e-9*e4
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropArchlineMonotoneAndBounded(t *testing.T) {
	f := func(a, b, c, r1, r2 float64) bool {
		p := randParams(a, b, c)
		i1, i2 := randIntensity(r1), randIntensity(r2)
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		e1, e2 := p.ArchlineEnergy(i1), p.ArchlineEnergy(i2)
		if e1 < 0 || e2 > 1 {
			return false
		}
		// Non-decreasing in intensity: less traffic can never cost more
		// energy per flop.
		return e2 >= e1-1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropRooflineDominatesNothingButSaturates(t *testing.T) {
	f := func(a, b, c, ri float64) bool {
		p := randParams(a, b, c)
		i := randIntensity(ri)
		rt := p.RooflineTime(i)
		return rt > 0 && rt <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropTimeOverlapBounds(t *testing.T) {
	// max(a,b) <= a+b <= 2*max(a,b): overlap saves at most 2x.
	f := func(a, b, c, ri float64) bool {
		p := randParams(a, b, c)
		k := KernelAt(1e6, randIntensity(ri))
		lo, hi := p.Time(k), p.TimeNoOverlap(k)
		return lo <= hi && hi <= 2*lo+1e-18
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropEffectiveBalanceInterpolates(t *testing.T) {
	// B̂ε(I) is a convex combination of Bε and (Bε-ish + Bτ-I) terms; it
	// must lie between min/max of Bε and Bε + (Bτ−I) clamped forms, and
	// equal η·Bε once compute-bound.
	f := func(a, b, c, ri float64) bool {
		p := randParams(a, b, c)
		i := randIntensity(ri)
		bhat := p.EffectiveBalanceEnergy(i)
		eta := p.EtaFlop()
		be := p.BalanceEnergy()
		bt := p.BalanceTime()
		if i >= bt {
			return math.Abs(bhat-eta*be) <= 1e-12*math.Abs(eta*be)
		}
		lo := eta * be
		hi := eta*be + (1-eta)*bt
		return bhat >= lo-1e-12 && bhat <= hi+1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropHalfEfficiencySolvesFixedPoint(t *testing.T) {
	// At I* = HalfEfficiencyIntensity, B̂ε(I*) == I*, hence arch = 1/2.
	f := func(a, b, c float64) bool {
		p := randParams(a, b, c)
		istar := p.HalfEfficiencyIntensity()
		if istar <= 0 {
			return false
		}
		return math.Abs(p.ArchlineEnergy(istar)-0.5) < 1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropPowerLinePeaksAtBalance(t *testing.T) {
	f := func(a, b, c, ri float64) bool {
		p := randParams(a, b, c)
		i := randIntensity(ri)
		return p.PowerLine(i) <= p.MaxPower()+1e-9*p.MaxPower()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropPowerLineLimits(t *testing.T) {
	// I → ∞ limit is πflop + π0; everything is ≥ that baseline since
	// any traffic only adds power.
	f := func(a, b, c, ri float64) bool {
		p := randParams(a, b, c)
		i := randIntensity(ri)
		floor := p.PiFlop() + p.Pi0
		return p.PowerLine(i) >= floor-1e-9*floor
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropEnergyEfficiencyImpliesTimeEfficiency(t *testing.T) {
	// §II-D corollary: when Bε(effective) ≥ Bτ, I > B̂ε ⇒ I > Bτ.
	// Equivalently: compute-bound in energy implies compute-bound in
	// time whenever the balance gap is adverse (B̂ε(y=1/2) ≥ Bτ).
	f := func(a, b, c, ri float64) bool {
		p := randParams(a, b, c)
		if p.HalfEfficiencyIntensity() < p.BalanceTime() {
			return true // gap not adverse; claim does not apply
		}
		i := randIntensity(ri)
		k := KernelAt(1e6, i)
		if p.EnergyBound(k) == ComputeBound {
			return p.TimeBound(k) == ComputeBound
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropCappedPowerRespectsCap(t *testing.T) {
	f := func(a, b, c, ri, rcap float64) bool {
		p := randParams(a, b, c)
		// A cap somewhere above π0.
		p.PowerCap = p.Pi0 + 1 + math.Abs(math.Mod(rcap, 300))
		k := KernelAt(1e9, randIntensity(ri))
		return p.CappedPower(k) <= p.PowerCap*(1+1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropCappedTimeNeverFaster(t *testing.T) {
	f := func(a, b, c, ri, rcap float64) bool {
		p := randParams(a, b, c)
		p.PowerCap = p.Pi0 + 1 + math.Abs(math.Mod(rcap, 300))
		k := KernelAt(1e9, randIntensity(ri))
		return p.CappedTime(k) >= p.Time(k)-1e-18
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropGreenupMatchesEq10WhenPi0Zero(t *testing.T) {
	// With π0 = 0 the exact greenup ΔE > 1 iff eq. (10) holds
	// (strictness at the boundary aside).
	f := func(a, b, c, ri, rf, rm float64) bool {
		p := randParams(a, b, c)
		p.Pi0 = 0
		i := randIntensity(ri)
		k := KernelAt(1e9, i)
		tr := Tradeoff{
			F: 1 + math.Abs(math.Mod(rf, 4)),
			M: 1 + math.Abs(math.Mod(rm, 9)),
		}
		exact := p.Greenup(k, tr) > 1
		predicted := p.GreenupPredicted(i, tr)
		// Avoid flakiness exactly on the boundary.
		if math.Abs(tr.F-p.GreenupConditionRHS(i, tr.M)) < 1e-9 {
			return true
		}
		return exact == predicted
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropEnergyDecomposition(t *testing.T) {
	// E = Eflops + Emem + E0 exactly, and all parts non-negative.
	f := func(a, b, c, ri float64) bool {
		p := randParams(a, b, c)
		k := KernelAt(1e9, randIntensity(ri))
		parts := p.EnergyFlops(k) + p.EnergyMem(k) + p.EnergyConstant(k)
		if p.EnergyFlops(k) < 0 || p.EnergyMem(k) < 0 || p.EnergyConstant(k) < 0 {
			return false
		}
		return math.Abs(parts-p.Energy(k)) <= 1e-12*parts
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropNormalizedMeasurementsBelowModelCurves(t *testing.T) {
	// Any "measured" execution that is slower than the model's T and
	// burns more than the model's E lands on or below both curves —
	// rooflines are upper bounds.
	f := func(a, b, c, ri, slow float64) bool {
		p := randParams(a, b, c)
		i := randIntensity(ri)
		k := KernelAt(1e9, i)
		slowdown := 1 + math.Abs(math.Mod(slow, 3))
		tMeas := p.Time(k) * slowdown
		eMeas := p.Energy(k) + p.Pi0*(tMeas-p.Time(k)) // extra constant energy while slow
		perfT := p.TimeFlops(k) / tMeas
		perfE := k.W * p.EpsFlopHat() / eMeas
		return perfT <= p.RooflineTime(i)+1e-12 && perfE <= p.ArchlineEnergy(i)+1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 300}
}

// Sanity: randParams always yields valid parameter sets, so the
// property tests exercise the intended domain.
func TestRandParamsValid(t *testing.T) {
	f := func(a, b, c float64) bool {
		return randParams(a, b, c).Validate() == nil
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestFromMachineRoundTrip(t *testing.T) {
	m := machine.GTX580()
	p := FromMachine(m, machine.Single)
	if p.PowerCap != float64(m.PowerCap) || p.Pi0 != 122 {
		t.Errorf("FromMachine powers: %+v", p)
	}
	if math.Abs(p.BalanceTime()-m.BalanceTime(machine.Single)) > 1e-12 {
		t.Error("balance mismatch with machine-level computation")
	}
	if math.Abs(p.BalanceEnergy()-m.BalanceEnergy(machine.Single)) > 1e-12 {
		t.Error("energy balance mismatch with machine-level computation")
	}
}

func TestPropArchlineContinuousAtBalance(t *testing.T) {
	// The arch line is smooth: approaching Bτ from both sides gives the
	// same value (the effective-balance term vanishes continuously).
	f := func(a, b, c float64) bool {
		p := randParams(a, b, c)
		bt := p.BalanceTime()
		lo := p.ArchlineEnergy(bt * (1 - 1e-9))
		hi := p.ArchlineEnergy(bt * (1 + 1e-9))
		return math.Abs(lo-hi) < 1e-6
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropPowerLineContinuousAtBalance(t *testing.T) {
	// Unlike the roofline's derivative, the power line's *value* is
	// continuous at Bτ even though the regime switches.
	f := func(a, b, c float64) bool {
		p := randParams(a, b, c)
		bt := p.BalanceTime()
		lo := p.PowerLine(bt * (1 - 1e-9))
		hi := p.PowerLine(bt * (1 + 1e-9))
		return math.Abs(lo-hi) < 1e-6*lo
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropHatBalanceReducesToPlainWhenPi0Zero(t *testing.T) {
	// η = 1 collapses eq. (6) to B̂ε(I) = Bε everywhere.
	f := func(a, b, c, ri float64) bool {
		p := randParams(a, b, c)
		p.Pi0 = 0
		i := randIntensity(ri)
		return math.Abs(p.EffectiveBalanceEnergy(i)-p.BalanceEnergy()) < 1e-12*p.BalanceEnergy()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
