package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestDVFSMatchesSimulator(t *testing.T) {
	// The analytic E(s)/T(s) must agree with the execution simulator's
	// ideal mode at every frequency scale.
	m := machine.GTX580()
	m.PowerCap = 0 // isolate DVFS from throttling
	p := FromMachine(m, machine.Double)
	eng, err := sim.New(m, sim.Config{Seed: 1, Ideal: true})
	if err != nil {
		t.Fatal(err)
	}
	k := KernelAt(1e10, 8)
	for _, s := range []float64{0.3, 0.5, 0.75, 1} {
		r, err := eng.Run(sim.KernelSpec{W: k.W, Q: k.Q, Precision: machine.Double, FreqScale: s})
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelErr(float64(r.Duration), p.TimeAtFreq(k, s)) > 1e-12 {
			t.Errorf("s=%v: T sim %v vs model %v", s, r.Duration, p.TimeAtFreq(k, s))
		}
		if stats.RelErr(float64(r.Energy), p.EnergyAtFreq(k, s)) > 1e-12 {
			t.Errorf("s=%v: E sim %v vs model %v", s, r.Energy, p.EnergyAtFreq(k, s))
		}
	}
}

func TestDVFSFullClockRecoversBaseModel(t *testing.T) {
	p := FromMachine(machine.CoreI7950(), machine.Single)
	k := KernelAt(1e9, 2)
	if p.TimeAtFreq(k, 1) != p.Time(k) {
		t.Error("T(1) != T")
	}
	if math.Abs(p.EnergyAtFreq(k, 1)-p.Energy(k)) > 1e-12*p.Energy(k) {
		t.Error("E(1) != E")
	}
	if stats.RelErr(p.PowerAtFreq(k, 1), p.AveragePower(k)) > 1e-12 {
		t.Error("P(1) != P")
	}
}

func TestCriticalFreqScaleCondition(t *testing.T) {
	// Race-to-halt is DVFS-optimal exactly when ε0 ≥ 2·εflop.
	p := FromMachine(machine.GTX580(), machine.Double)
	// GTX 580 double: ε0 = 122/197.63e9 ≈ 617 pJ, εflop = 212 pJ:
	// ε0 > 2εflop, so s* > 1.
	if p.CriticalFreqScale() <= 1 {
		t.Errorf("s* = %v, want > 1 for the GTX 580 double case", p.CriticalFreqScale())
	}
	k := KernelAt(1e10, 1e6) // strongly compute-bound
	rth, err := p.RaceToHaltOptimalDVFS(k, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !rth {
		t.Error("race-to-halt should be DVFS-optimal at π0 = 122 W")
	}
	// π0 = 0: the slowest clock wins.
	p0 := p
	p0.Pi0 = 0
	if p0.CriticalFreqScale() != 0 {
		t.Errorf("s* with π0=0 = %v, want 0", p0.CriticalFreqScale())
	}
	s, _, err := p0.OptimalFreqScale(k, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0.25 {
		t.Errorf("π0=0 optimum = %v, want sMin", s)
	}
}

func TestOptimalFreqScaleInterior(t *testing.T) {
	// Construct a machine whose optimum is interior: ε0 < 2εflop but
	// ε0 > 2εflop·sMin³.
	p := Params{
		TauFlop: 1e-12,
		TauMem:  1e-12,
		EpsFlop: 100e-12,
		EpsMem:  100e-12,
		Pi0:     50, // ε0 = 50 pJ < 200 pJ = 2εflop → s* = (0.25)^(1/3) ≈ 0.63
	}
	k := KernelAt(1e9, 1e9) // compute-bound at any s
	s, e, err := p.OptimalFreqScale(k, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Cbrt(0.25)
	if math.Abs(s-want) > 1e-12 {
		t.Errorf("optimum = %v, want %v", s, want)
	}
	// It really is a minimum: neighbours cost more.
	for _, ds := range []float64{-0.05, 0.05} {
		if p.EnergyAtFreq(k, s+ds) <= e {
			t.Errorf("s=%v not a local minimum", s)
		}
	}
}

func TestOptimalFreqScaleErrors(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Single)
	k := KernelAt(1e9, 1)
	if _, _, err := p.OptimalFreqScale(k, 0); err == nil {
		t.Error("sMin=0 accepted")
	}
	if _, _, err := p.OptimalFreqScale(k, 1.5); err == nil {
		t.Error("sMin>1 accepted")
	}
	if _, _, err := p.OptimalFreqScale(Kernel{W: 0, Q: 1}, 0.5); err == nil {
		t.Error("zero-work kernel accepted")
	}
}

func TestMemoryBoundKernelIgnoresModestDownclock(t *testing.T) {
	// A memory-bound kernel's time is set by Q·τmem; downclocking the
	// compute side within the memory-bound regime costs no time and
	// saves flop energy, so the optimum is below 1.
	p := FromMachine(machine.GTX580(), machine.Single)
	k := KernelAt(1e9, 0.5) // far below Bτ ≈ 8.2
	s, _, err := p.OptimalFreqScale(k, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1 {
		t.Errorf("memory-bound optimum = %v, want < 1", s)
	}
	if p.TimeAtFreq(k, s) != p.Time(k) {
		t.Error("downclocking within the memory-bound regime must not cost time")
	}
}

func TestPropOptimalBeatsGridSearch(t *testing.T) {
	// The closed-form candidate set always matches a dense grid search.
	f := func(a, b, c, ri, rmin float64) bool {
		p := randParams(a, b, c)
		k := KernelAt(1e9, randIntensity(ri))
		sMin := 0.05 + 0.9*math.Abs(math.Mod(rmin, 1))
		s, e, err := p.OptimalFreqScale(k, sMin)
		if err != nil {
			return false
		}
		if s < sMin || s > 1 {
			return false
		}
		for g := 0; g <= 200; g++ {
			sg := sMin + (1-sMin)*float64(g)/200
			if p.EnergyAtFreq(k, sg) < e*(1-1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropEnergyAtFreqDecomposition(t *testing.T) {
	// E(s) parts: flop term scales as s², memory term constant,
	// constant term equals π0·T(s).
	f := func(a, b, c, ri, rs float64) bool {
		p := randParams(a, b, c)
		k := KernelAt(1e9, randIntensity(ri))
		s := 0.1 + 0.9*math.Abs(math.Mod(rs, 1))
		e := p.EnergyAtFreq(k, s)
		parts := k.W*p.EpsFlop*s*s + k.Q*p.EpsMem + p.Pi0*p.TimeAtFreq(k, s)
		return math.Abs(e-parts) <= 1e-12*parts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
