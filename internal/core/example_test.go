package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
)

// The basic workflow: instantiate the model for a platform, then ask
// for the time, energy, and power of an abstract kernel.
func ExampleFromMachine() {
	p := core.FromMachine(machine.FermiTableII(), machine.Double)
	fmt.Printf("Bτ = %.2f flop/byte\n", p.BalanceTime())
	fmt.Printf("Bε = %.2f flop/byte\n", p.BalanceEnergy())
	// Output:
	// Bτ = 3.58 flop/byte
	// Bε = 14.40 flop/byte
}

// Eq. (3): time under perfect overlap for a memory-bound kernel.
func ExampleParams_Time() {
	p := core.FromMachine(machine.FermiTableII(), machine.Double)
	k := core.KernelAt(1e9, 1) // 1 Gflop at 1 flop/byte: memory-bound
	fmt.Printf("T = %.4f s\n", p.Time(k))
	fmt.Printf("bound: %v\n", p.TimeBound(k))
	// Output:
	// T = 0.0069 s
	// bound: memory-bound
}

// The arch line (eq. 5 normalized): half efficiency exactly at Bε when
// π0 = 0.
func ExampleParams_ArchlineEnergy() {
	p := core.FromMachine(machine.FermiTableII(), machine.Double)
	fmt.Printf("efficiency at Bε: %.2f\n", p.ArchlineEnergy(p.BalanceEnergy()))
	fmt.Printf("efficiency at 8×Bε: %.2f\n", p.ArchlineEnergy(8*p.BalanceEnergy()))
	// Output:
	// efficiency at Bε: 0.50
	// efficiency at 8×Bε: 0.89
}

// Eq. (10): how much extra work a traffic-halving redesign may spend
// and still save energy.
func ExampleParams_GreenupConditionRHS() {
	p := core.FromMachine(machine.FermiTableII(), machine.Double)
	p.Pi0 = 0
	fstar := p.GreenupConditionRHS(2, 4) // baseline I = 2, m = 4
	fmt.Printf("greenup requires f < %.1f\n", fstar)
	// Output:
	// greenup requires f < 6.4
}

// The race-to-halt question, per §V-B: on the measured GTX 580 the
// effective energy balance sits below the time balance, so racing wins;
// drive π0 to zero and the verdict flips.
func ExampleParams_RaceToHaltEffective() {
	p := core.FromMachine(machine.GTX580(), machine.Double)
	fmt.Println("today:", p.RaceToHaltEffective())
	p.Pi0 = 0
	fmt.Println("π0=0:", p.RaceToHaltEffective())
	// Output:
	// today: true
	// π0=0: false
}

// DVFS: the closed-form optimal clock for compute-bound work is
// s* = (ε0/2εflop)^(1/3), clamped to the available range.
func ExampleParams_OptimalFreqScale() {
	p := core.FromMachine(machine.GTX580(), machine.Double)
	k := core.KernelAt(1e10, 1e6)
	s, _, err := p.OptimalFreqScale(k, 0.2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal clock scale: %.1f\n", s)
	// Output:
	// optimal clock scale: 1.0
}
