package core

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func fermi() Params {
	return FromMachine(machine.FermiTableII(), machine.Double)
}

func TestTableIIDerived(t *testing.T) {
	p := fermi()
	// Table II: τflop ≈ 1.9 ps, τmem ≈ 6.9 ps, Bτ ≈ 3.6, Bε = 14.4.
	approx(t, "τflop (ps)", p.TauFlop*1e12, 1.94, 0.01)
	approx(t, "τmem (ps)", p.TauMem*1e12, 6.94, 0.01)
	approx(t, "Bτ", p.BalanceTime(), 3.576, 0.01)
	approx(t, "Bε", p.BalanceEnergy(), 14.4, 1e-9)
	approx(t, "balance gap", p.BalanceGap(), 14.4/3.576, 0.01)
	// π0 = 0 ⇒ η = 1, ε̂ = ε.
	approx(t, "η", p.EtaFlop(), 1, 1e-15)
	approx(t, "ε̂ (pJ)", p.EpsFlopHat()*1e12, 25, 1e-9)
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTimeModel(t *testing.T) {
	p := fermi()
	// Memory-bound kernel: I = 1 < Bτ.
	k := KernelAt(1e9, 1)
	approx(t, "T memory-bound", p.Time(k), k.Q*p.TauMem, 1e-15)
	if p.TimeBound(k) != MemoryBound {
		t.Error("I=1 should be memory-bound in time")
	}
	// Compute-bound: I = 100 > Bτ.
	k = KernelAt(1e9, 100)
	approx(t, "T compute-bound", p.Time(k), k.W*p.TauFlop, 1e-15)
	if p.TimeBound(k) != ComputeBound {
		t.Error("I=100 should be compute-bound in time")
	}
	// Eq. (3) closed form: T = W·τflop·max(1, Bτ/I).
	for _, i := range []float64{0.25, 1, 3.576, 10, 512} {
		k := KernelAt(1e9, i)
		want := k.W * p.TauFlop * math.Max(1, p.BalanceTime()/i)
		approx(t, "eq3", p.Time(k), want, want*1e-12)
	}
	// No-overlap ablation is always at least the overlapped time and at
	// most twice it.
	k = KernelAt(1e9, p.BalanceTime())
	if p.TimeNoOverlap(k) < p.Time(k) || p.TimeNoOverlap(k) > 2*p.Time(k) {
		t.Errorf("no-overlap time out of range: %v vs %v", p.TimeNoOverlap(k), p.Time(k))
	}
}

func TestEnergyModel(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Double)
	k := KernelAt(1e9, 2)
	// Eq. (4) components.
	wantFlops := k.W * p.EpsFlop
	wantMem := k.Q * p.EpsMem
	wantConst := p.Pi0 * p.Time(k)
	approx(t, "Eflops", p.EnergyFlops(k), wantFlops, wantFlops*1e-12)
	approx(t, "Emem", p.EnergyMem(k), wantMem, wantMem*1e-12)
	approx(t, "E0", p.EnergyConstant(k), wantConst, wantConst*1e-12)
	total := wantFlops + wantMem + wantConst
	approx(t, "E", p.Energy(k), total, total*1e-12)
}

func TestEq5EqualsEq4(t *testing.T) {
	for _, m := range []*machine.Machine{machine.GTX580(), machine.CoreI7950(), machine.FermiTableII()} {
		for _, prec := range []machine.Precision{machine.Single, machine.Double} {
			p := FromMachine(m, prec)
			for _, i := range []float64{1.0 / 16, 0.5, 1, p.BalanceTime(), 4, 64, 1024} {
				k := KernelAt(1e9, i)
				e4 := p.Energy(k)
				e5 := p.EnergyEq5(k)
				if math.Abs(e4-e5) > 1e-9*e4 {
					t.Errorf("%s/%v I=%v: eq4 %v != eq5 %v", m.Name, prec, i, e4, e5)
				}
			}
		}
	}
}

func TestZeroQKernel(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Double)
	k := Kernel{W: 1e9, Q: 0}
	if !math.IsInf(k.Intensity(), 1) {
		t.Error("Q=0 should have infinite intensity")
	}
	// Energy degenerates to W·ε̂flop via both formulations.
	approx(t, "E(Q=0) eq4", p.Energy(k), k.W*p.EpsFlopHat(), 1e-6*k.W*p.EpsFlopHat())
	approx(t, "E(Q=0) eq5", p.EnergyEq5(k), k.W*p.EpsFlopHat(), 1e-6*k.W*p.EpsFlopHat())
}

// The balance points and peak efficiencies annotated in Fig. 4.
func TestFig4BalanceAnnotations(t *testing.T) {
	cases := []struct {
		name                       string
		m                          *machine.Machine
		prec                       machine.Precision
		bt, beConst0, beHalf, peak float64 // Bτ, Bε(π0=0), B̂ε at y=1/2, peak GFLOP/J
	}{
		{"GTX580 double", machine.GTX580(), machine.Double, 1.0, 2.4, 0.79, 1.2},
		{"i7-950 double", machine.CoreI7950(), machine.Double, 2.1, 1.2, 1.1, 0.34},
		{"GTX580 single", machine.GTX580(), machine.Single, 8.2, 5.1, 4.5, 5.7},
		{"i7-950 single", machine.CoreI7950(), machine.Single, 4.2, 2.1, 2.1, 0.66},
	}
	for _, c := range cases {
		p := FromMachine(c.m, c.prec)
		approx(t, c.name+" Bτ", p.BalanceTime(), c.bt, 0.05*c.bt+0.05)
		approx(t, c.name+" Bε(π0=0)", p.BalanceEnergy(), c.beConst0, 0.05*c.beConst0)
		approx(t, c.name+" B̂ε(y=1/2)", p.HalfEfficiencyIntensity(), c.beHalf, 0.05*c.beHalf)
		approx(t, c.name+" peak GFLOP/J", p.PeakEfficiency()/1e9, c.peak, 0.05*c.peak)
	}
}

// Fig. 4 peak speeds: 200 / 53 GFLOP/s double, 1600 / 110 single.
func TestFig4PeakSpeeds(t *testing.T) {
	gd := FromMachine(machine.GTX580(), machine.Double)
	approx(t, "GPU DP peak GFLOP/s", gd.PeakFlopsRate()/1e9, 197.63, 1e-6)
	cd := FromMachine(machine.CoreI7950(), machine.Double)
	approx(t, "CPU DP peak GFLOP/s", cd.PeakFlopsRate()/1e9, 53.28, 1e-6)
	gs := FromMachine(machine.GTX580(), machine.Single)
	approx(t, "GPU SP peak GFLOP/s", gs.PeakFlopsRate()/1e9, 1581.06, 1e-6)
	cs := FromMachine(machine.CoreI7950(), machine.Single)
	approx(t, "CPU SP peak GFLOP/s", cs.PeakFlopsRate()/1e9, 106.56, 1e-6)
}

func TestRooflineShape(t *testing.T) {
	p := fermi()
	bt := p.BalanceTime()
	// Exactly 1 at and above the balance point.
	if p.RooflineTime(bt) != 1 || p.RooflineTime(1000) != 1 {
		t.Error("roofline must saturate at 1")
	}
	// Linear below: half performance at half the balance point.
	approx(t, "roofline linear region", p.RooflineTime(bt/2), 0.5, 1e-12)
	// The roofline has a sharp inflection; the arch line is smooth and
	// strictly below 1 at Bτ when Bε > 0.
	if p.ArchlineEnergy(bt) >= 1 {
		t.Error("arch line must be < 1 at finite intensity")
	}
}

func TestArchlineHalfAtBalanceEnergyWhenPi0Zero(t *testing.T) {
	p := fermi() // π0 = 0
	// §II-C: with π0 = 0 the energy-balance point is where efficiency is
	// exactly half the best possible.
	approx(t, "arch(Bε)", p.ArchlineEnergy(p.BalanceEnergy()), 0.5, 1e-12)
	approx(t, "half-efficiency intensity", p.HalfEfficiencyIntensity(), p.BalanceEnergy(), 1e-12)
	// Edge values.
	if p.ArchlineEnergy(0) != 0 {
		t.Error("arch(0) should be 0")
	}
	if p.ArchlineEnergy(math.Inf(1)) != 1 {
		t.Error("arch(inf) should be 1")
	}
}

func TestPowerLineFig2b(t *testing.T) {
	p := fermi()
	bt := p.BalanceTime()
	pf := p.PiFlop()
	// Fig. 2b annotations (π0 = 0): memory-bound limit P/πflop → 1+Bε/Bτ...
	// actually at I→0 the powerline tends to πflop·Bε/Bτ = 4.0; at I→∞ it
	// tends to πflop (y = 1); the maximum, at I = Bτ, is πflop·(1+Bε/Bτ) = 5.0.
	gap := p.BalanceGap()
	approx(t, "P(I→∞)/πflop", p.PowerLine(1e9)/pf, 1, 1e-6)
	approx(t, "P(I→0)/πflop", p.PowerLine(1e-9)/pf, gap, 1e-6)
	approx(t, "P(Bτ)/πflop", p.PowerLine(bt)/pf, 1+gap, 1e-12)
	approx(t, "max power", p.MaxPower(), pf*(1+gap), 1e-12)
	approx(t, "gap value", gap, 4.0262, 0.01)
	// Power is maximised at I = Bτ.
	for _, i := range []float64{bt / 8, bt / 2, bt * 2, bt * 64} {
		if p.PowerLine(i) > p.MaxPower()+1e-12 {
			t.Errorf("power at I=%v exceeds the I=Bτ maximum", i)
		}
	}
}

func TestPowerLineMatchesEnergyOverTime(t *testing.T) {
	// Eq. (7) was derived as eq. (5)/eq. (3); check the identity.
	for _, m := range []*machine.Machine{machine.GTX580(), machine.CoreI7950()} {
		for _, prec := range []machine.Precision{machine.Single, machine.Double} {
			p := FromMachine(m, prec)
			for _, i := range []float64{0.25, 1, p.BalanceTime(), 16, 256} {
				k := KernelAt(1e9, i)
				direct := p.Energy(k) / p.Time(k)
				line := p.PowerLine(i)
				if math.Abs(direct-line) > 1e-9*direct {
					t.Errorf("%s/%v I=%v: P direct %v != powerline %v", m.Name, prec, i, direct, line)
				}
			}
		}
	}
}

// Fig. 5b: the model demands 387 W on the GTX 580 in single precision
// near Bτ, above the 244 W rating and above the hard throttle limit.
func TestGTX580SinglePowerExceedsCap(t *testing.T) {
	m := machine.GTX580()
	p := FromMachine(m, machine.Single)
	maxP := p.MaxPower()
	approx(t, "GTX580 SP max model power", maxP, 387, 25)
	if maxP <= float64(m.RatedPower) {
		t.Fatalf("model max power %v should exceed the 244 W rating", maxP)
	}
	if maxP <= p.PowerCap {
		t.Fatalf("model max power %v should exceed the hard cap %v", maxP, p.PowerCap)
	}
	// Capped execution never exceeds the cap and stretches time.
	k := KernelAt(1e12, p.BalanceTime())
	if got := p.CappedPower(k); got > p.PowerCap+1e-9 {
		t.Errorf("capped power %v exceeds cap", got)
	}
	if p.CappedTime(k) <= p.Time(k) {
		t.Error("throttled execution must be slower")
	}
	if p.CappedEnergy(k) <= p.Energy(k) {
		t.Error("throttling burns extra constant energy")
	}
}

func TestCapInactiveWhenBelow(t *testing.T) {
	// Very compute-bound double-precision work keeps power below 244 W.
	p := FromMachine(machine.GTX580(), machine.Double)
	k := KernelAt(1e12, 1e6)
	if p.CappedTime(k) != p.Time(k) {
		t.Error("cap should be inactive for low-power work")
	}
	approx(t, "capped == uncapped energy", p.CappedEnergy(k), p.Energy(k), 1e-6*p.Energy(k))
	// Uncapped machine: cap never applies.
	p2 := FromMachine(machine.CoreI7950(), machine.Single)
	k2 := KernelAt(1e12, p2.BalanceTime())
	if p2.CappedTime(k2) != p2.Time(k2) {
		t.Error("uncapped machine must not throttle")
	}
}

func TestRaceToHalt(t *testing.T) {
	// §V-B: on all four measured platform/precision cases, the y=1/2
	// energy-balance point lies below Bτ, so race-to-halt works.
	for _, c := range []struct {
		m    *machine.Machine
		prec machine.Precision
	}{
		{machine.GTX580(), machine.Single},
		{machine.GTX580(), machine.Double},
		{machine.CoreI7950(), machine.Single},
		{machine.CoreI7950(), machine.Double},
	} {
		p := FromMachine(c.m, c.prec)
		if !p.RaceToHaltEffective() {
			t.Errorf("%s/%v: race-to-halt should be effective", c.m.Name, c.prec)
		}
	}
	// With π0 → 0 the GPU double case reverses (Bε = 2.4 > Bτ = 1.0).
	p := FromMachine(machine.GTX580(), machine.Double)
	p.Pi0 = 0
	if p.RaceToHaltEffective() {
		t.Error("GTX580 double with π0=0 should NOT favour race-to-halt")
	}
	// But the CPU does not reverse even at π0 = 0 (Bε = 1.2 < Bτ = 2.1).
	pc := FromMachine(machine.CoreI7950(), machine.Double)
	pc.Pi0 = 0
	if !pc.RaceToHaltEffective() {
		t.Error("i7-950 double with π0=0 should still favour race-to-halt")
	}
}

func TestBoundClassification(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Double)
	// §II-D: an algorithm with Bτ < I < Bε(π0=0) is compute-bound in
	// time and memory-bound in energy. Use the π0=0 variant.
	p.Pi0 = 0
	i := (p.BalanceTime() + p.BalanceEnergy()) / 2
	k := KernelAt(1e9, i)
	if p.TimeBound(k) != ComputeBound {
		t.Error("should be compute-bound in time")
	}
	if p.EnergyBound(k) != MemoryBound {
		t.Error("should be memory-bound in energy")
	}
	if MemoryBound.String() != "memory-bound" || ComputeBound.String() != "compute-bound" {
		t.Error("bound state strings")
	}
}

func TestValidateRejections(t *testing.T) {
	base := fermi()
	bad := []func(*Params){
		func(p *Params) { p.TauFlop = 0 },
		func(p *Params) { p.TauMem = -1 },
		func(p *Params) { p.EpsFlop = 0 },
		func(p *Params) { p.EpsMem = -2 },
		func(p *Params) { p.Pi0 = -1 },
		func(p *Params) { p.PowerCap = -1 },
		func(p *Params) { p.Pi0 = 100; p.PowerCap = 50 },
	}
	for i, mod := range bad {
		p := base
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestKernelAt(t *testing.T) {
	k := KernelAt(100, 4)
	if k.W != 100 || k.Q != 25 {
		t.Errorf("KernelAt = %+v", k)
	}
	approx(t, "intensity round trip", k.Intensity(), 4, 1e-15)
}

func TestCappedPowerLine(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Single)
	bt := p.BalanceTime()
	// Near the balance point the uncapped line exceeds the cap; the
	// capped line clips there and coincides elsewhere.
	if p.CappedPowerLine(bt) != p.PowerCap {
		t.Errorf("capped line at Bτ = %v, want the cap %v", p.CappedPowerLine(bt), p.PowerCap)
	}
	if p.CappedPowerLine(1e6) != p.PowerLine(1e6) {
		t.Error("capped line should match uncapped away from the peak")
	}
	// No cap: identical everywhere.
	q := FromMachine(machine.CoreI7950(), machine.Single)
	for _, i := range []float64{0.5, q.BalanceTime(), 64} {
		if q.CappedPowerLine(i) != q.PowerLine(i) {
			t.Error("uncapped machine lines must coincide")
		}
	}
}
