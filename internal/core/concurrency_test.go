package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

// gtx580MemSystem is a plausible Fermi-era memory description: ~600 ns
// effective DRAM latency at 128-byte transactions.
func gtx580MemSystem() Concurrency {
	return Concurrency{Latency: 600e-9, Granularity: 128}
}

func TestConcurrencyValidate(t *testing.T) {
	if (Concurrency{Latency: 1e-7, Granularity: 64}).Validate() != nil {
		t.Error("valid concurrency rejected")
	}
	if (Concurrency{Latency: 0, Granularity: 64}).Validate() == nil {
		t.Error("zero latency accepted")
	}
	if (Concurrency{Latency: 1e-7, Granularity: 0}).Validate() == nil {
		t.Error("zero granularity accepted")
	}
}

func TestEffectiveTauMemLimits(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Single)
	cc := gtx580MemSystem()
	// Plenty of concurrency: throughput value.
	if got := p.EffectiveTauMem(cc, 1e6); got != p.TauMem {
		t.Errorf("saturated τmem = %v, want %v", got, p.TauMem)
	}
	// One outstanding request: pure latency, far slower.
	one := p.EffectiveTauMem(cc, 1)
	if one <= p.TauMem {
		t.Error("single request cannot reach peak bandwidth")
	}
	if math.Abs(one-cc.Latency/cc.Granularity) > 1e-18 {
		t.Errorf("latency-bound τmem = %v", one)
	}
	// Zero concurrency: infinite.
	if !math.IsInf(p.EffectiveTauMem(cc, 0), 1) {
		t.Error("zero inflight should be infinitely slow")
	}
}

func TestRequiredConcurrencyLittlesLaw(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Single)
	cc := gtx580MemSystem()
	// 192.4 GB/s × 600 ns / 128 B ≈ 902 outstanding lines.
	need := p.RequiredConcurrency(cc)
	want := 192.4e9 * 600e-9 / 128
	if math.Abs(need-want) > 1e-6*want {
		t.Errorf("required concurrency = %v, want %v", need, want)
	}
	// At exactly the required concurrency the effective τmem is peak.
	if got := p.EffectiveTauMem(cc, need); math.Abs(got-p.TauMem) > 1e-18 {
		t.Errorf("τmem at required concurrency = %v", got)
	}
	// Just below, it is slower.
	if p.EffectiveTauMem(cc, need*0.9) <= p.TauMem {
		t.Error("sub-required concurrency should be latency-bound")
	}
}

func TestWithConcurrencyShiftsBalance(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Single)
	cc := gtx580MemSystem()
	need := p.RequiredConcurrency(cc)
	// Half the required concurrency doubles τmem, doubling Bτ: codes
	// need twice the intensity to stay compute-bound.
	q, err := p.WithConcurrency(cc, need/2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.BalanceTime()-2*p.BalanceTime()) > 1e-9*p.BalanceTime() {
		t.Errorf("Bτ at half concurrency = %v, want %v", q.BalanceTime(), 2*p.BalanceTime())
	}
	// A kernel compute-bound at full concurrency can become memory-
	// bound when starved.
	k := KernelAt(1e9, 1.5*p.BalanceTime())
	if p.TimeBound(k) != ComputeBound {
		t.Fatal("setup: kernel should be compute-bound at full concurrency")
	}
	if q.TimeBound(k) != MemoryBound {
		t.Error("kernel should become memory-bound when latency-bound")
	}
	// Energy per mop is unchanged — starvation wastes time (and thus
	// constant energy), not transfer energy.
	if q.EpsMem != p.EpsMem {
		t.Error("concurrency must not change energy coefficients")
	}
	if q.Energy(k) <= p.Energy(k) {
		t.Error("latency-bound execution must burn more constant energy")
	}
}

func TestWithConcurrencyErrors(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Single)
	if _, err := p.WithConcurrency(Concurrency{}, 10); err == nil {
		t.Error("invalid concurrency accepted")
	}
	if _, err := p.WithConcurrency(gtx580MemSystem(), 0); err == nil {
		t.Error("zero inflight accepted")
	}
}

func TestPropConcurrencyMonotone(t *testing.T) {
	// More concurrency never slows anything down; τmem(c) is
	// non-increasing and floors at the throughput value.
	p := FromMachine(machine.CoreI7950(), machine.Double)
	cc := Concurrency{Latency: 80e-9, Granularity: 64}
	f := func(rc float64) bool {
		c := 1 + math.Abs(math.Mod(rc, 1000))
		t1 := p.EffectiveTauMem(cc, c)
		t2 := p.EffectiveTauMem(cc, 2*c)
		return t2 <= t1 && t2 >= p.TauMem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrencyAwareArchline(t *testing.T) {
	// The arch line moves with the balance point: starved memory makes
	// the machine look more memory-hungry in time, which feeds B̂ε
	// through the (1−η)·max(0, Bτ−I) term.
	p := FromMachine(machine.GTX580(), machine.Double)
	cc := gtx580MemSystem()
	q, err := p.WithConcurrency(cc, p.RequiredConcurrency(cc)/4)
	if err != nil {
		t.Fatal(err)
	}
	i := p.BalanceTime() // memory-bound for q, balanced for p
	if q.ArchlineEnergy(i) >= p.ArchlineEnergy(i) {
		t.Error("latency starvation should reduce energy efficiency at fixed I")
	}
}
