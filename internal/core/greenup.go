package core

import (
	"errors"
	"math"
)

// Tradeoff describes a work–communication trade-off (§VII): relative to
// a baseline kernel (W, Q), the new algorithm performs f·W flops and
// Q/m bytes of traffic, with f > 1 and m > 1.
type Tradeoff struct {
	F float64 // extra-work factor, > 1 for a true trade-off
	M float64 // communication-reduction factor, > 1
}

// Validate reports whether the trade-off factors are usable (positive).
// The paper's definition requires f > 1 and m > 1 for a "true"
// trade-off; factors in (0, 1] are still meaningful (pure improvements)
// and accepted.
func (t Tradeoff) Validate() error {
	if t.F <= 0 || t.M <= 0 {
		return errors.New("core: trade-off factors must be positive")
	}
	return nil
}

// Apply returns the transformed kernel (f·W, Q/m).
func (t Tradeoff) Apply(k Kernel) Kernel {
	return Kernel{W: t.F * k.W, Q: k.Q / t.M}
}

// Greenup returns ΔE = E_{1,1}/E_{f,m}, the energy-efficiency
// improvement of the transformed algorithm over the baseline, computed
// exactly from the full energy model (π0 included).
func (p Params) Greenup(base Kernel, t Tradeoff) float64 {
	return p.Energy(base) / p.Energy(t.Apply(base))
}

// Speedup returns ΔT = T_{1,1}/T_{f,m} under the overlap time model.
func (p Params) Speedup(base Kernel, t Tradeoff) float64 {
	return p.Time(base) / p.Time(t.Apply(base))
}

// GreenupConditionRHS returns the eq. (10) bound for the π0 = 0 model:
// a greenup requires f < 1 + (m−1)/m · B_ε/I, with I the baseline
// intensity.
func (p Params) GreenupConditionRHS(baseIntensity float64, m float64) float64 {
	return 1 + (m-1)/m*p.BalanceEnergy()/baseIntensity
}

// GreenupPredicted reports whether eq. (10) predicts ΔE > 1 for the
// trade-off at the given baseline intensity (π0 = 0 model).
func (p Params) GreenupPredicted(baseIntensity float64, t Tradeoff) bool {
	return t.F < p.GreenupConditionRHS(baseIntensity, t.M)
}

// SpeedupConditionRHS returns the closed-form bound on f for the
// trade-off (f·W, Q/m) to be a *speedup* under the overlap time model —
// the companion analysis the paper defers to its technical report. With
// baseline intensity I and new intensity f·m·I, the exact condition
// ΔT > 1 reduces to f < rhs where:
//
//   - baseline memory-bound, new memory-bound (Bτ ≥ f·m·I): any f works
//     while regimes hold — the bound is m·(threshold handled below);
//   - generally: ΔT = max(1, Bτ/I) / (f·max(1, Bτ/(f·m·I))), giving
//     rhs = m                  if I < Bτ and f·m·I ≤ Bτ  (both memory-bound)
//     rhs = m·I/Bτ · ...       boundary folded by the max terms.
//
// The implementation evaluates the exact piecewise form rather than
// enumerating regimes: rhs is the unique f at which ΔT = 1.
func (p Params) SpeedupConditionRHS(baseIntensity float64, m float64) float64 {
	bt := p.BalanceTime()
	// ΔT(f) = max(1, Bτ/I) / (f·max(1, Bτ/(f·m·I))) is strictly
	// decreasing in f (in both branches of the inner max), so bisect.
	deltaT := func(f float64) float64 {
		num := math.Max(1, bt/baseIntensity)
		den := f * math.Max(1, bt/(f*m*baseIntensity))
		return num / den
	}
	lo, hi := 1e-9, 1e9
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if deltaT(mid) > 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// SpeedupPredicted reports whether the closed-form condition predicts
// ΔT > 1 for the trade-off at the given baseline intensity.
func (p Params) SpeedupPredicted(baseIntensity float64, t Tradeoff) bool {
	return t.F < p.SpeedupConditionRHS(baseIntensity, t.M)
}

// MaxExtraWork returns the hard upper limit on f as m → ∞:
// f < 1 + B_ε/I (§VII). If the baseline is compute-bound in time
// (I ≥ B_τ), the tightest such bound over compute-bound baselines is
// 1 + B_ε/B_τ, returned by MaxExtraWorkComputeBound.
func (p Params) MaxExtraWork(baseIntensity float64) float64 {
	return 1 + p.BalanceEnergy()/baseIntensity
}

// MaxExtraWorkComputeBound returns 1 + B_ε/B_τ, the eq. (10) limit on
// extra work for any baseline already compute-bound in time.
func (p Params) MaxExtraWorkComputeBound() float64 {
	return 1 + p.BalanceEnergy()/p.BalanceTime()
}

// TradeoffOutcome is the four-way classification of a trade-off.
type TradeoffOutcome int

const (
	// Neither: the transformed algorithm is slower and less efficient.
	Neither TradeoffOutcome = iota
	// SpeedupOnly: faster but not greener.
	SpeedupOnly
	// GreenupOnly: greener but not faster.
	GreenupOnly
	// Both: faster and greener.
	Both
)

// String implements fmt.Stringer.
func (o TradeoffOutcome) String() string {
	switch o {
	case SpeedupOnly:
		return "speedup only"
	case GreenupOnly:
		return "greenup only"
	case Both:
		return "speedup and greenup"
	default:
		return "neither"
	}
}

// ClassifyRatios maps a (speedup, greenup) ratio pair onto the eq. (10)
// vocabulary: ratios above one mean the transformed algorithm is faster
// / greener than the baseline. It is the shared classifier behind
// Classify, the batch ClassifyInto kernels, and the cluster router's
// energy-aware policy.
func ClassifyRatios(speedup, greenup float64) TradeoffOutcome {
	speed := speedup > 1
	green := greenup > 1
	switch {
	case speed && green:
		return Both
	case speed:
		return SpeedupOnly
	case green:
		return GreenupOnly
	default:
		return Neither
	}
}

// Classify evaluates the trade-off exactly (full model, π0 included)
// and reports which of speedup/greenup it achieves.
func (p Params) Classify(base Kernel, t Tradeoff) TradeoffOutcome {
	return ClassifyRatios(p.Speedup(base, t), p.Greenup(base, t))
}

// LogGrid returns n intensities spaced evenly in log2 between lo and hi
// inclusive. It is the x-axis used by every roofline/arch-line figure.
func LogGrid(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		return nil
	}
	out := make([]float64, n)
	l0 := math.Log2(lo)
	l1 := math.Log2(hi)
	for i := range out {
		out[i] = math.Exp2(l0 + (l1-l0)*float64(i)/float64(n-1))
	}
	return out
}
