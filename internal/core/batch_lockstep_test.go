package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// lockstepParams returns the parameter sets the differential tests run
// over: the full machine catalog at both precisions, plus synthetic
// sets exercising π0 = 0, an active power cap, and extreme magnitudes.
func lockstepParams(t testing.TB) map[string]Params {
	t.Helper()
	out := make(map[string]Params)
	for key, m := range machine.Catalog() {
		for _, prec := range []machine.Precision{machine.Single, machine.Double} {
			out[fmt.Sprintf("%s/%v", key, prec)] = FromMachine(m, prec)
		}
	}
	out["synthetic/pi0-zero"] = Params{TauFlop: 2e-12, TauMem: 8e-11, EpsFlop: 5e-10, EpsMem: 2e-9, Pi0: 0}
	out["synthetic/capped"] = Params{TauFlop: 1e-12, TauMem: 3e-11, EpsFlop: 1e-10, EpsMem: 1.5e-9, Pi0: 40, PowerCap: 120}
	out["synthetic/tight-cap"] = Params{TauFlop: 1e-12, TauMem: 3e-11, EpsFlop: 1e-10, EpsMem: 1.5e-9, Pi0: 40, PowerCap: 40.0001}
	out["synthetic/extreme"] = Params{TauFlop: 1e-300, TauMem: 1e300, EpsFlop: 1e-300, EpsMem: 1e300, Pi0: 1e-30}
	return out
}

// lockstepGrid returns the randomized 10k-point (W, Q) grid the batch
// kernels are compared against the scalar path on, opened by a block of
// deterministic edge rows: NaN, ±Inf, zeros (including zero work and
// zero traffic), negatives, denormals, and magnitude extremes.
func lockstepGrid(n int) (w, q []float64) {
	nan, inf := math.NaN(), math.Inf(1)
	edges := [][2]float64{
		{nan, 1e6}, {1e9, nan}, {nan, nan},
		{inf, 1e6}, {1e9, inf}, {inf, inf},
		{-inf, 1e6}, {1e9, -inf},
		{0, 0}, {0, 1e9}, {1e9, 0}, {math.Copysign(0, -1), 1e9},
		{-1e9, 1e5}, {1e9, -1e5},
		{5e-324, 1e9}, {1e9, 5e-324},
		{1e308, 1e308}, {1e-308, 1e308}, {1e308, 1e-308},
		{1, 1},
	}
	rng := rand.New(rand.NewSource(0x600DF00D))
	w = make([]float64, 0, n+len(edges))
	q = make([]float64, 0, n+len(edges))
	for _, e := range edges {
		w = append(w, e[0])
		q = append(q, e[1])
	}
	for i := 0; i < n; i++ {
		// Log-uniform magnitudes over ~60 decades, occasionally negated.
		wi := math.Pow(10, -30+60*rng.Float64())
		qi := math.Pow(10, -30+60*rng.Float64())
		if rng.Intn(16) == 0 {
			wi = -wi
		}
		if rng.Intn(16) == 0 {
			qi = 0
		}
		w = append(w, wi)
		q = append(q, qi)
	}
	return w, q
}

// bitEq fails unless got and want are the same float64 bit pattern
// (signed zeros must match too). The one sanctioned exception is NaN
// payloads: when several operands of one operation are NaN, IEEE 754
// and the Go spec leave unspecified which payload propagates, and
// operand scheduling may legally differ between inlined contexts — so
// any NaN matches any NaN, but a NaN never matches a non-NaN.
func bitEq(t *testing.T, label string, i int, got, want float64) {
	t.Helper()
	if math.IsNaN(got) && math.IsNaN(want) {
		return
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("%s[%d]: batch %v (%#x) != scalar %v (%#x)",
			label, i, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestBatchEvalLockstep pins every EvalInto column to the scalar
// methods, bit for bit, over the full catalog × randomized grid.
func TestBatchEvalLockstep(t *testing.T) {
	w, q := lockstepGrid(10000)
	for name, p := range lockstepParams(t) {
		t.Run(name, func(t *testing.T) {
			var b Batch
			p.EvalInto(&b, w, q)
			if b.Len() != len(w) {
				t.Fatalf("Len() = %d, want %d", b.Len(), len(w))
			}
			for i := range w {
				k := Kernel{W: w[i], Q: q[i]}
				bitEq(t, "Time", i, b.Time[i], p.Time(k))
				bitEq(t, "Energy", i, b.Energy[i], p.Energy(k))
				bitEq(t, "Power", i, b.Power[i], p.AveragePower(k))
				bitEq(t, "CappedTime", i, b.CappedTime[i], p.CappedTime(k))
				bitEq(t, "CappedEnergy", i, b.CappedEnergy[i], p.CappedEnergy(k))
				bitEq(t, "CappedPower", i, b.CappedPower[i], p.CappedPower(k))
			}
		})
	}
}

// TestBatchColumnKernelsLockstep pins the unfused per-column kernels —
// the composable TimeInto/EnergyInto/... layer — to the scalar methods.
func TestBatchColumnKernelsLockstep(t *testing.T) {
	w, q := lockstepGrid(4000)
	n := len(w)
	for name, p := range lockstepParams(t) {
		t.Run(name, func(t *testing.T) {
			tc := make([]float64, n)
			ec := make([]float64, n)
			pc := make([]float64, n)
			ctc := make([]float64, n)
			cec := make([]float64, n)
			ic := make([]float64, n)
			p.TimeInto(tc, w, q)
			p.EnergyInto(ec, w, q, tc)
			p.AveragePowerInto(pc, ec, tc)
			p.CappedTimeInto(ctc, w, q, tc, ec)
			p.CappedEnergyInto(cec, w, q, ctc)
			IntensityInto(ic, w, q)
			tb := make([]BoundState, n)
			eb := make([]BoundState, n)
			p.TimeBoundInto(tb, w, q)
			p.EnergyBoundInto(eb, w, q)
			for i := range w {
				k := Kernel{W: w[i], Q: q[i]}
				bitEq(t, "TimeInto", i, tc[i], p.Time(k))
				bitEq(t, "EnergyInto", i, ec[i], p.Energy(k))
				bitEq(t, "AveragePowerInto", i, pc[i], p.AveragePower(k))
				bitEq(t, "CappedTimeInto", i, ctc[i], p.CappedTime(k))
				bitEq(t, "CappedEnergyInto", i, cec[i], p.CappedEnergy(k))
				bitEq(t, "IntensityInto", i, ic[i], k.Intensity())
				if tb[i] != p.TimeBound(k) {
					t.Errorf("TimeBoundInto[%d]: %v != %v", i, tb[i], p.TimeBound(k))
				}
				if eb[i] != p.EnergyBound(k) {
					t.Errorf("EnergyBoundInto[%d]: %v != %v", i, eb[i], p.EnergyBound(k))
				}
			}
		})
	}
}

// TestBatchCurvesLockstep pins the intensity-column curve kernels to
// the scalar curve methods over a grid that includes the edge
// intensities (0, negatives, ±Inf, NaN).
func TestBatchCurvesLockstep(t *testing.T) {
	grid := append([]float64{0, -1, -1e300, math.Inf(1), math.Inf(-1), math.NaN(), 5e-324, 1e308},
		LogGrid(1e-6, 1e9, 4001)...)
	n := len(grid)
	for name, p := range lockstepParams(t) {
		t.Run(name, func(t *testing.T) {
			roof := make([]float64, n)
			arch := make([]float64, n)
			pl := make([]float64, n)
			cpl := make([]float64, n)
			qa := make([]float64, n)
			w := make([]float64, n)
			for i := range w {
				w[i] = 1e9
			}
			p.RooflineTimeInto(roof, grid)
			p.ArchlineEnergyInto(arch, grid)
			p.PowerLineInto(pl, grid)
			p.CappedPowerLineInto(cpl, grid)
			QAtInto(qa, w, grid)
			for i, x := range grid {
				bitEq(t, "RooflineTimeInto", i, roof[i], p.RooflineTime(x))
				bitEq(t, "ArchlineEnergyInto", i, arch[i], p.ArchlineEnergy(x))
				bitEq(t, "PowerLineInto", i, pl[i], p.PowerLine(x))
				bitEq(t, "CappedPowerLineInto", i, cpl[i], p.CappedPowerLine(x))
				bitEq(t, "QAtInto", i, qa[i], KernelAt(w[i], x).Q)
			}
		})
	}
}

// TestBatchClassifyLockstep pins ClassifyInto and ClassifyRatiosInto to
// the scalar Classify/ClassifyRatios over randomized baselines and a
// spread of trade-off factors (including pure improvements and the
// degenerate f = m = 1).
func TestBatchClassifyLockstep(t *testing.T) {
	w, q := lockstepGrid(4000)
	n := len(w)
	tradeoffs := []Tradeoff{
		{F: 1, M: 1},
		{F: 1.3, M: 2},
		{F: 2, M: 8},
		{F: 0.5, M: 0.25},
		{F: 8, M: 1.01},
		{F: 1.0000001, M: 1.0000001},
	}
	for name, p := range lockstepParams(t) {
		t.Run(name, func(t *testing.T) {
			dst := make([]TradeoffOutcome, n)
			for _, tr := range tradeoffs {
				p.ClassifyInto(dst, w, q, tr)
				for i := range w {
					k := Kernel{W: w[i], Q: q[i]}
					if want := p.Classify(k, tr); dst[i] != want {
						t.Errorf("ClassifyInto[%d] f=%g m=%g: %v != %v", i, tr.F, tr.M, dst[i], want)
					}
				}
			}
			// Ratio-level classification against the scalar helper.
			rng := rand.New(rand.NewSource(7))
			sp := make([]float64, 256)
			gr := make([]float64, 256)
			for i := range sp {
				sp[i] = math.Pow(10, -2+4*rng.Float64())
				gr[i] = math.Pow(10, -2+4*rng.Float64())
			}
			sp[0], gr[0] = math.NaN(), 2
			sp[1], gr[1] = 2, math.NaN()
			sp[2], gr[2] = 1, 1
			out := make([]TradeoffOutcome, len(sp))
			ClassifyRatiosInto(out, sp, gr)
			for i := range sp {
				if want := ClassifyRatios(sp[i], gr[i]); out[i] != want {
					t.Errorf("ClassifyRatiosInto[%d]: %v != %v", i, out[i], want)
				}
			}
		})
	}
}

// TestBatchReserveReuses pins the zero-steady-state-allocation
// contract: a second EvalInto on the same Batch (same size) must not
// allocate, and Reserve must reuse capacity for any smaller size.
func TestBatchReserveReuses(t *testing.T) {
	w, q := lockstepGrid(1000)
	p := lockstepParams(t)["gtx580/single"]
	var b Batch
	p.EvalInto(&b, w, q)
	allocs := testing.AllocsPerRun(10, func() {
		p.EvalInto(&b, w, q)
	})
	if allocs != 0 {
		t.Fatalf("steady-state EvalInto allocates %.1f times per call, want 0", allocs)
	}
	small := b.Time[:10]
	b.Reserve(10)
	if &b.Time[0] != &small[0] {
		t.Fatal("Reserve(10) did not reuse the existing column backing array")
	}
}

// TestBatchLengthMismatchPanics pins the pre-sized-columns contract:
// mismatched column lengths must panic rather than silently truncate.
func TestBatchLengthMismatchPanics(t *testing.T) {
	p := Params{TauFlop: 1, TauMem: 1, EpsFlop: 1, EpsMem: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("TimeInto with mismatched columns did not panic")
		}
	}()
	p.TimeInto(make([]float64, 3), make([]float64, 2), make([]float64, 3))
}
