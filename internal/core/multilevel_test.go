package core

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func TestMultiLevelEnergyReducesToTwoLevel(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Single)
	k := KernelAt(1e9, 2)
	tm := p.Time(k)
	e2 := p.TwoLevelEnergyAt(k, tm)
	eml, err := p.MultiLevelEnergy(k, nil, tm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2-eml) > 1e-12*e2 {
		t.Errorf("no-levels multilevel %v != two-level %v", eml, e2)
	}
	// And TwoLevelEnergyAt at the model time equals Energy.
	if math.Abs(e2-p.Energy(k)) > 1e-12*e2 {
		t.Errorf("TwoLevelEnergyAt(model T) %v != Energy %v", e2, p.Energy(k))
	}
}

func TestMultiLevelEnergyAddsCacheTerms(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Single)
	k := KernelAt(1e9, 2)
	tm := p.Time(k)
	levels := []LevelTraffic{
		{Name: "L1", Bytes: 1e8, EpsPerByte: 187e-12},
		{Name: "L2", Bytes: 5e7, EpsPerByte: 187e-12},
	}
	eml, err := p.MultiLevelEnergy(k, levels, tm)
	if err != nil {
		t.Fatal(err)
	}
	want := p.TwoLevelEnergyAt(k, tm) + 1e8*187e-12 + 5e7*187e-12
	if math.Abs(eml-want) > 1e-12*want {
		t.Errorf("multilevel = %v, want %v", eml, want)
	}
}

func TestMultiLevelEnergyErrors(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Single)
	k := KernelAt(1e9, 2)
	if _, err := p.MultiLevelEnergy(k, nil, -1); err == nil {
		t.Error("negative time should fail")
	}
	bad := []LevelTraffic{{Name: "L1", Bytes: -5, EpsPerByte: 1}}
	if _, err := p.MultiLevelEnergy(k, bad, 1); err == nil {
		t.Error("negative traffic should fail")
	}
	bad[0] = LevelTraffic{Name: "L1", Bytes: 5, EpsPerByte: -1}
	if _, err := p.MultiLevelEnergy(k, bad, 1); err == nil {
		t.Error("negative per-byte energy should fail")
	}
}

func TestFitLevelEnergyRecoversPlantedCoefficient(t *testing.T) {
	// Plant a cache cost, generate "measured" energy, recover it — the
	// §V-C procedure in miniature.
	p := FromMachine(machine.GTX580(), machine.Single)
	k := KernelAt(1e9, 2)
	tm := p.Time(k)
	const planted = 187e-12
	cacheBytes := 3e8
	measured := p.TwoLevelEnergyAt(k, tm) + planted*cacheBytes
	got, err := FitLevelEnergy(measured, p.TwoLevelEnergyAt(k, tm), cacheBytes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-planted) > 1e-15 {
		t.Errorf("fitted ε_cache = %v, want %v", got, planted)
	}
	if _, err := FitLevelEnergy(1, 1, 0); err == nil {
		t.Error("zero traffic should fail")
	}
}

func TestTwoLevelUnderestimatesWithCacheTraffic(t *testing.T) {
	// The §V-C observation in model form: when a workload moves bytes
	// through caches the two-level estimate is strictly below the
	// multi-level energy.
	p := FromMachine(machine.GTX580(), machine.Single)
	k := KernelAt(1e9, 4)
	tm := p.Time(k)
	levels := []LevelTraffic{{Name: "L1+L2", Bytes: 4e8, EpsPerByte: 187e-12}}
	eml, err := p.MultiLevelEnergy(k, levels, tm)
	if err != nil {
		t.Fatal(err)
	}
	if p.TwoLevelEnergyAt(k, tm) >= eml {
		t.Error("two-level estimate should under-predict when caches are busy")
	}
}
