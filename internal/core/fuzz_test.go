package core

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzBatchEval decodes arbitrary parameter sets and (W, Q) vectors
// from the fuzz input, evaluates them through the fused EvalInto batch
// path, and requires every output column to equal the scalar reference
// loop bit for bit. The fuzzer owns the raw float64 bit patterns, so
// NaN payloads, infinities, signed zeros, denormals, and pathological
// parameter combinations are explored without anyone having to imagine
// them first — the adversarial complement of the lockstep tests.
//
// Input layout: the first 48 bytes are six little-endian float64 words
// (τ_flop, τ_mem, ε_flop, ε_mem, π0, cap); each following 16-byte
// record is one (W, Q) point. Trailing partial records are ignored.
func FuzzBatchEval(f *testing.F) {
	le := binary.LittleEndian
	mk := func(params [6]float64, pts ...float64) []byte {
		buf := make([]byte, 0, 48+8*len(pts))
		for _, v := range params {
			buf = le.AppendUint64(buf, math.Float64bits(v))
		}
		for _, v := range pts {
			buf = le.AppendUint64(buf, math.Float64bits(v))
		}
		return buf
	}
	// Canonical shapes: a realistic machine, a power-capped machine with
	// a point each side of the cap, π0 = 0, NaN/Inf work, zero-traffic
	// and zero-work points, and denormal magnitudes.
	f.Add(mk([6]float64{1e-12, 3e-11, 1e-10, 2e-9, 40, 0}, 1e9, 1e8, 1e6, 1e9))
	f.Add(mk([6]float64{1e-12, 3e-11, 1e-10, 2e-9, 40, 120}, 1e9, 1e5, 1e4, 1e9))
	f.Add(mk([6]float64{2e-12, 8e-11, 5e-10, 2e-9, 0, 0}, 1e9, 1e9))
	f.Add(mk([6]float64{1e-12, 3e-11, 1e-10, 2e-9, 40, 120}, math.NaN(), 1e6, 1e9, math.Inf(1)))
	f.Add(mk([6]float64{1e-12, 3e-11, 1e-10, 2e-9, 40, 120}, 1e9, 0, 0, 0))
	f.Add(mk([6]float64{5e-324, 1e308, 5e-324, 1e308, 1e-30, 0}, 1e300, 1e-300))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 48 {
			return
		}
		var p Params
		p.TauFlop = math.Float64frombits(le.Uint64(data[0:]))
		p.TauMem = math.Float64frombits(le.Uint64(data[8:]))
		p.EpsFlop = math.Float64frombits(le.Uint64(data[16:]))
		p.EpsMem = math.Float64frombits(le.Uint64(data[24:]))
		p.Pi0 = math.Float64frombits(le.Uint64(data[32:]))
		p.PowerCap = math.Float64frombits(le.Uint64(data[40:]))
		rest := data[48:]
		n := len(rest) / 16
		if n > 4096 {
			n = 4096
		}
		w := make([]float64, n)
		q := make([]float64, n)
		for i := 0; i < n; i++ {
			w[i] = math.Float64frombits(le.Uint64(rest[16*i:]))
			q[i] = math.Float64frombits(le.Uint64(rest[16*i+8:]))
		}

		var b Batch
		p.EvalInto(&b, w, q)
		ic := make([]float64, n)
		IntensityInto(ic, w, q)
		tb := make([]BoundState, n)
		eb := make([]BoundState, n)
		p.TimeBoundInto(tb, w, q)
		p.EnergyBoundInto(eb, w, q)
		for i := 0; i < n; i++ {
			k := Kernel{W: w[i], Q: q[i]}
			checkBits(t, "Time", i, b.Time[i], p.Time(k))
			checkBits(t, "Energy", i, b.Energy[i], p.Energy(k))
			checkBits(t, "Power", i, b.Power[i], p.AveragePower(k))
			checkBits(t, "CappedTime", i, b.CappedTime[i], p.CappedTime(k))
			checkBits(t, "CappedEnergy", i, b.CappedEnergy[i], p.CappedEnergy(k))
			checkBits(t, "CappedPower", i, b.CappedPower[i], p.CappedPower(k))
			checkBits(t, "Intensity", i, ic[i], k.Intensity())
			if tb[i] != p.TimeBound(k) {
				t.Errorf("TimeBound[%d]: batch %v != scalar %v", i, tb[i], p.TimeBound(k))
			}
			if eb[i] != p.EnergyBound(k) {
				t.Errorf("EnergyBound[%d]: batch %v != scalar %v", i, eb[i], p.EnergyBound(k))
			}
		}
	})
}

// checkBits fails unless got and want share a bit pattern (Errorf, not
// Fatalf, so a single fuzz case reports every diverging column). NaN
// payloads are exempt for the reason documented on bitEq: with several
// NaN operands, which payload propagates is unspecified, and a corpus
// entry (6969cb7c0fe03abc) proves the two paths can legally differ
// there — they must still agree exactly on NaN-ness itself.
func checkBits(t *testing.T, label string, i int, got, want float64) {
	t.Helper()
	if math.IsNaN(got) && math.IsNaN(want) {
		return
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("%s[%d]: batch %v (%#x) != scalar %v (%#x)",
			label, i, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}
