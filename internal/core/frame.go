package core

import "errors"

// Frame analysis: the race-to-halt literature the paper cites ([15])
// poses the real scheduling question — a job must finish within a frame
// of F seconds, and the machine idles (at idle power) for whatever is
// left. Two strategies compete:
//
//   - Race: run flat-out, then idle. E = E(k) + P_idle·(F − T(k)).
//   - Pace (DVFS): stretch the job to fill the frame at the slowest
//     sufficient clock. E = E(s_F) with T(s_F) = F.
//
// The balance between π0 (burned while running), the idle power
// (burned while parked), and the s² dynamic-energy saving decides the
// winner; the paper's "race-to-halt works today" claim corresponds to
// idle power being low relative to the constant power of an active
// machine.

// FrameStrategy identifies a frame-execution policy.
type FrameStrategy int

const (
	// Race runs at full clock and idles out the frame.
	Race FrameStrategy = iota
	// Pace stretches the job across the frame via DVFS.
	Pace
)

// String implements fmt.Stringer.
func (s FrameStrategy) String() string {
	if s == Pace {
		return "pace"
	}
	return "race-to-halt"
}

// FrameEnergyRace returns the energy of racing through kernel k and
// idling (at idlePower Watts) for the rest of an F-second frame.
// F must cover the kernel's full-speed execution time.
func (p Params) FrameEnergyRace(k Kernel, frame, idlePower float64) (float64, error) {
	t := p.Time(k)
	if frame < t {
		return 0, errors.New("core: frame shorter than the kernel's full-speed time")
	}
	if idlePower < 0 {
		return 0, errors.New("core: negative idle power")
	}
	return p.Energy(k) + idlePower*(frame-t), nil
}

// FrameEnergyPace returns the energy of stretching kernel k across the
// whole frame at the slowest sufficient clock. The required scale is
// s_F = W·τflop / frame when the compute side is the stretchable part;
// a frame longer than the memory-bound time but shorter than what the
// slowest clock produces is filled with idle after the paced run.
func (p Params) FrameEnergyPace(k Kernel, frame, idlePower, sMin float64) (float64, error) {
	if frame < p.Time(k) {
		return 0, errors.New("core: frame shorter than the kernel's full-speed time")
	}
	if idlePower < 0 {
		return 0, errors.New("core: negative idle power")
	}
	if sMin <= 0 || sMin > 1 {
		return 0, errors.New("core: sMin must be in (0, 1]")
	}
	// Slowest clock that still meets the frame: T(s) = max(Wτf/s, Qτm) ≤ F.
	s := k.W * p.TauFlop / frame
	if s < sMin {
		s = sMin
	}
	if s > 1 {
		s = 1
	}
	t := p.TimeAtFreq(k, s)
	// s = W·τflop/frame makes t equal the frame up to rounding; treat
	// sub-ppb overshoot as an exact fill.
	if t > frame*(1+1e-9) {
		// Cannot happen for frame >= Time(k) — slowing compute never
		// hurts the memory side — but guard against misuse.
		return 0, errors.New("core: paced execution misses the frame")
	}
	if t > frame {
		t = frame
	}
	return p.EnergyAtFreq(k, s) + idlePower*(frame-t), nil
}

// BestFrameStrategy compares racing and pacing for kernel k in an
// F-second frame and returns the winner with both energies.
func (p Params) BestFrameStrategy(k Kernel, frame, idlePower, sMin float64) (FrameStrategy, float64, float64, error) {
	race, err := p.FrameEnergyRace(k, frame, idlePower)
	if err != nil {
		return Race, 0, 0, err
	}
	pace, err := p.FrameEnergyPace(k, frame, idlePower, sMin)
	if err != nil {
		return Race, 0, 0, err
	}
	if race <= pace {
		return Race, race, pace, nil
	}
	return Pace, race, pace, nil
}
