package core

import "math"

// This file is the columnar (batch) evaluation path of the model. Every
// kernel below computes exactly the same float64 expression, in the same
// association order, as the scalar method it mirrors, so batch results
// are bit-identical to a scalar loop — a property pinned by the lockstep
// tests and the FuzzBatchEval differential fuzz target. The loops take
// flat []float64 columns and caller-provided output buffers: steady-state
// use performs zero allocations, and the bodies are straight-line
// data-parallel code the compiler can keep in registers.

// Batch holds the output columns of a fused EvalInto call. Reusing one
// Batch across calls reuses the column storage (see Reserve), so a sweep
// that evaluates millions of points allocates only on the first call.
type Batch struct {
	// Time is the eq. (3) roofline time per point.
	Time []float64
	// Energy is the eq. (4) total energy per point.
	Energy []float64
	// Power is Energy/Time per point.
	Power []float64
	// CappedTime is the §V-B power-capped execution time per point.
	CappedTime []float64
	// CappedEnergy is the total energy with the cap enforced.
	CappedEnergy []float64
	// CappedPower is CappedEnergy/CappedTime per point.
	CappedPower []float64
}

// grow returns s resized to length n, reusing its backing array when the
// capacity allows and allocating a fresh one only when it does not.
func grow(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// Reserve sizes every column to n points, reusing existing capacity.
// Contents are unspecified afterwards; callers overwrite every element.
func (b *Batch) Reserve(n int) {
	b.Time = grow(b.Time, n)
	b.Energy = grow(b.Energy, n)
	b.Power = grow(b.Power, n)
	b.CappedTime = grow(b.CappedTime, n)
	b.CappedEnergy = grow(b.CappedEnergy, n)
	b.CappedPower = grow(b.CappedPower, n)
}

// Len returns the number of points the batch currently holds.
func (b *Batch) Len() int { return len(b.Time) }

// checkCols panics unless every column length equals n. Batch kernels
// require pre-sized outputs so the inner loops carry no append logic.
func checkCols(n int, lens ...int) {
	for _, l := range lens {
		if l != n {
			panic("core: batch column length mismatch")
		}
	}
}

// EvalInto evaluates the full model over the (W, Q) columns in one fused
// pass, filling every column of b (sized via Reserve). Each output is
// bit-identical to the corresponding scalar method applied per point.
func (p Params) EvalInto(b *Batch, w, q []float64) {
	n := len(w)
	checkCols(n, len(q))
	b.Reserve(n)
	tf, tm, ef, em, pi0 := p.TauFlop, p.TauMem, p.EpsFlop, p.EpsMem, p.Pi0
	pcap := p.PowerCap
	capMinusPi0 := pcap - pi0
	tc, ec, pc := b.Time[:n], b.Energy[:n], b.Power[:n]
	ctc, cec, cpc := b.CappedTime[:n], b.CappedEnergy[:n], b.CappedPower[:n]
	w, q = w[:n], q[:n]
	for i := 0; i < n; i++ {
		wi, qi := w[i], q[i]
		t := math.Max(wi*tf, qi*tm)
		dyn := wi*ef + qi*em
		e := dyn + pi0*t
		tc[i] = t
		ec[i] = e
		pc[i] = e / t
		ct := t
		// Mirrors CappedTime's guards exactly: !(cap <= 0), not cap > 0,
		// so a NaN cap throttles in both paths (NaN fails either
		// comparison, and the scalar guard is the <= one).
		if !(pcap <= 0) && !(e/t <= pcap) {
			ct = dyn / capMinusPi0
		}
		ce := dyn + pi0*ct
		ctc[i] = ct
		cec[i] = ce
		cpc[i] = ce / ct
	}
}

// TimeInto fills dst[i] = Time({w[i], q[i]}), eq. (3).
func (p Params) TimeInto(dst, w, q []float64) {
	n := len(dst)
	checkCols(n, len(w), len(q))
	tf, tm := p.TauFlop, p.TauMem
	w, q = w[:n], q[:n]
	for i := range dst {
		dst[i] = math.Max(w[i]*tf, q[i]*tm)
	}
}

// EnergyInto fills dst[i] = Energy({w[i], q[i]}), eq. (4), given the
// precomputed time column t (as filled by TimeInto).
func (p Params) EnergyInto(dst, w, q, t []float64) {
	n := len(dst)
	checkCols(n, len(w), len(q), len(t))
	ef, em, pi0 := p.EpsFlop, p.EpsMem, p.Pi0
	w, q, t = w[:n], q[:n], t[:n]
	for i := range dst {
		dst[i] = w[i]*ef + q[i]*em + pi0*t[i]
	}
}

// AveragePowerInto fills dst[i] = e[i]/t[i], the per-point average power.
func (p Params) AveragePowerInto(dst, e, t []float64) {
	n := len(dst)
	checkCols(n, len(e), len(t))
	e, t = e[:n], t[:n]
	for i := range dst {
		dst[i] = e[i] / t[i]
	}
}

// CappedTimeInto fills dst with the §V-B power-capped time per point,
// given precomputed time and energy columns.
func (p Params) CappedTimeInto(dst, w, q, t, e []float64) {
	n := len(dst)
	checkCols(n, len(w), len(q), len(t), len(e))
	if p.PowerCap <= 0 {
		copy(dst, t[:n])
		return
	}
	ef, em := p.EpsFlop, p.EpsMem
	pcap := p.PowerCap
	capMinusPi0 := pcap - p.Pi0
	w, q, t, e = w[:n], q[:n], t[:n], e[:n]
	for i := range dst {
		if e[i]/t[i] <= pcap {
			dst[i] = t[i]
		} else {
			dst[i] = (w[i]*ef + q[i]*em) / capMinusPi0
		}
	}
}

// CappedEnergyInto fills dst with the capped total energy per point,
// given the capped-time column ct (as filled by CappedTimeInto).
func (p Params) CappedEnergyInto(dst, w, q, ct []float64) {
	n := len(dst)
	checkCols(n, len(w), len(q), len(ct))
	ef, em, pi0 := p.EpsFlop, p.EpsMem, p.Pi0
	w, q, ct = w[:n], q[:n], ct[:n]
	for i := range dst {
		dst[i] = w[i]*ef + q[i]*em + pi0*ct[i]
	}
}

// IntensityInto fills dst[i] = Intensity({w[i], q[i]}): W/Q, with +Inf
// at Q == 0 exactly as Kernel.Intensity defines it.
func IntensityInto(dst, w, q []float64) {
	n := len(dst)
	checkCols(n, len(w), len(q))
	inf := math.Inf(1)
	w, q = w[:n], q[:n]
	for i := range dst {
		if q[i] == 0 {
			dst[i] = inf
		} else {
			dst[i] = w[i] / q[i]
		}
	}
}

// QAtInto fills dst[i] = w[i]/intensity[i], the traffic column of
// KernelAt applied per point.
func QAtInto(dst, w, intensity []float64) {
	n := len(dst)
	checkCols(n, len(w), len(intensity))
	w, intensity = w[:n], intensity[:n]
	for i := range dst {
		dst[i] = w[i] / intensity[i]
	}
}

// RooflineTimeInto fills dst[i] = RooflineTime(intensity[i]), the
// normalized Fig. 2a roofline over an intensity column.
func (p Params) RooflineTimeInto(dst, intensity []float64) {
	n := len(dst)
	checkCols(n, len(intensity))
	bt := p.BalanceTime()
	intensity = intensity[:n]
	for i := range dst {
		dst[i] = math.Min(1, intensity[i]/bt)
	}
}

// ArchlineEnergyInto fills dst[i] = ArchlineEnergy(intensity[i]), the
// normalized Fig. 2a arch line over an intensity column.
func (p Params) ArchlineEnergyInto(dst, intensity []float64) {
	n := len(dst)
	checkCols(n, len(intensity))
	eta, be, bt := p.EtaFlop(), p.BalanceEnergy(), p.BalanceTime()
	intensity = intensity[:n]
	for i := range dst {
		x := intensity[i]
		switch {
		case x <= 0:
			dst[i] = 0
		case math.IsInf(x, 1):
			dst[i] = 1
		default:
			ebe := eta*be + (1-eta)*math.Max(0, bt-x)
			dst[i] = 1 / (1 + ebe/x)
		}
	}
}

// PowerLineInto fills dst[i] = PowerLine(intensity[i]), eq. (7), over an
// intensity column.
func (p Params) PowerLineInto(dst, intensity []float64) {
	n := len(dst)
	checkCols(n, len(intensity))
	eta, be, bt := p.EtaFlop(), p.BalanceEnergy(), p.BalanceTime()
	pf := p.PiFlop() / p.EtaFlop()
	intensity = intensity[:n]
	for i := range dst {
		x := intensity[i]
		ebe := eta*be + (1-eta)*math.Max(0, bt-x)
		dst[i] = pf * (math.Min(x, bt)/bt + ebe/math.Max(x, bt))
	}
}

// CappedPowerLineInto fills dst[i] = CappedPowerLine(intensity[i]): the
// eq. (7) power line clipped at the cap when one is set.
func (p Params) CappedPowerLineInto(dst, intensity []float64) {
	p.PowerLineInto(dst, intensity)
	if p.PowerCap <= 0 {
		return
	}
	pcap := p.PowerCap
	for i := range dst {
		if dst[i] > pcap {
			dst[i] = pcap
		}
	}
}

// TimeBoundInto fills dst[i] = TimeBound({w[i], q[i]}): compute-bound
// where the point's intensity reaches B_τ.
func (p Params) TimeBoundInto(dst []BoundState, w, q []float64) {
	n := len(dst)
	checkCols(n, len(w), len(q))
	p.boundInto(dst, w[:n], q[:n], p.BalanceTime())
}

// EnergyBoundInto fills dst[i] = EnergyBound({w[i], q[i]}): compute-bound
// where the point's intensity reaches the half-efficiency intensity.
func (p Params) EnergyBoundInto(dst []BoundState, w, q []float64) {
	n := len(dst)
	checkCols(n, len(w), len(q))
	p.boundInto(dst, w[:n], q[:n], p.HalfEfficiencyIntensity())
}

// boundInto classifies each point's intensity against one threshold,
// reproducing Kernel.Intensity's Q == 0 → +Inf convention inline.
func (p Params) boundInto(dst []BoundState, w, q []float64, threshold float64) {
	inf := math.Inf(1)
	for i := range dst {
		x := inf
		if q[i] != 0 {
			x = w[i] / q[i]
		}
		if x >= threshold {
			dst[i] = ComputeBound
		} else {
			dst[i] = MemoryBound
		}
	}
}

// ClassifyRatiosInto fills dst[i] = ClassifyRatios(speedup[i], greenup[i]).
func ClassifyRatiosInto(dst []TradeoffOutcome, speedup, greenup []float64) {
	n := len(dst)
	checkCols(n, len(speedup), len(greenup))
	speedup, greenup = speedup[:n], greenup[:n]
	for i := range dst {
		dst[i] = ClassifyRatios(speedup[i], greenup[i])
	}
}

// ClassifyInto fills dst[i] = Classify({w[i], q[i]}, t): the eq. (10)
// four-way trade-off outcome of applying t to each baseline point.
func (p Params) ClassifyInto(dst []TradeoffOutcome, w, q []float64, t Tradeoff) {
	n := len(dst)
	checkCols(n, len(w), len(q))
	tf, tm, ef, em, pi0 := p.TauFlop, p.TauMem, p.EpsFlop, p.EpsMem, p.Pi0
	f, m := t.F, t.M
	w, q = w[:n], q[:n]
	for i := range dst {
		wi, qi := w[i], q[i]
		tb := math.Max(wi*tf, qi*tm)
		eb := wi*ef + qi*em + pi0*tb
		wa, qa := f*wi, qi/m
		ta := math.Max(wa*tf, qa*tm)
		ea := wa*ef + qa*em + pi0*ta
		dst[i] = ClassifyRatios(tb/ta, eb/ea)
	}
}
