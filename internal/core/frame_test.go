package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestFrameStrategyStrings(t *testing.T) {
	if Race.String() != "race-to-halt" || Pace.String() != "pace" {
		t.Error("strategy strings")
	}
}

func TestFrameEnergyRaceAccounting(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Double)
	k := KernelAt(1e10, 100)
	tRun := p.Time(k)
	frame := 2 * tRun
	const idle = 39.6 // the paper's measured GTX 580 idle power
	e, err := p.FrameEnergyRace(k, frame, idle)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Energy(k) + idle*(frame-tRun)
	if math.Abs(e-want) > 1e-9*want {
		t.Errorf("race frame energy = %v, want %v", e, want)
	}
	// Errors.
	if _, err := p.FrameEnergyRace(k, tRun/2, idle); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := p.FrameEnergyRace(k, frame, -1); err == nil {
		t.Error("negative idle accepted")
	}
}

func TestFrameEnergyPaceFillsFrame(t *testing.T) {
	p := FromMachine(machine.GTX580(), machine.Double)
	p.Pi0 = 0 // make pacing clearly attractive
	k := KernelAt(1e10, 1e6)
	tRun := p.Time(k)
	frame := 2 * tRun
	e, err := p.FrameEnergyPace(k, frame, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Pacing at s = 1/2 quarters the dynamic flop energy.
	want := p.EnergyAtFreq(k, 0.5)
	if math.Abs(e-want) > 1e-9*want {
		t.Errorf("pace energy = %v, want %v", e, want)
	}
	// sMin floors the stretch: a very long frame with sMin = 0.5 runs
	// at 0.5 and idles the remainder.
	frame = 10 * tRun
	e, err = p.FrameEnergyPace(k, frame, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want = p.EnergyAtFreq(k, 0.5) + 5*(frame-p.TimeAtFreq(k, 0.5))
	if math.Abs(e-want) > 1e-9*want {
		t.Errorf("floored pace energy = %v, want %v", e, want)
	}
	// Error paths.
	if _, err := p.FrameEnergyPace(k, tRun/2, 0, 0.5); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := p.FrameEnergyPace(k, frame, -1, 0.5); err == nil {
		t.Error("negative idle accepted")
	}
	if _, err := p.FrameEnergyPace(k, frame, 0, 0); err == nil {
		t.Error("sMin=0 accepted")
	}
}

func TestBestFrameStrategyRegimes(t *testing.T) {
	// Today's GTX 580: active constant power 122 W, idle 39.6 W —
	// racing into the low-power idle state wins.
	p := FromMachine(machine.GTX580(), machine.Double)
	k := KernelAt(1e10, 1e6)
	frame := 2 * p.Time(k)
	strat, race, pace, err := p.BestFrameStrategy(k, frame, 39.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if strat != Race {
		t.Errorf("GTX 580 frame: %v (race %v, pace %v)", strat, race, pace)
	}
	// A machine with π0 = 0 and idle power equal to nothing saved by
	// halting (idle = π0-like draw even when "halted"): pacing wins by
	// cutting dynamic energy.
	p0 := p
	p0.Pi0 = 0
	strat, race, pace, err = p0.BestFrameStrategy(k, frame, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if strat != Pace {
		t.Errorf("π0=0 frame: %v (race %v, pace %v)", strat, race, pace)
	}
	if pace >= race {
		t.Error("pace should beat race when constant and idle power vanish")
	}
	// Propagates errors.
	if _, _, _, err := p.BestFrameStrategy(k, 0, 0, 0.5); err == nil {
		t.Error("impossible frame accepted")
	}
}

func TestPropFrameEnergiesBounded(t *testing.T) {
	// Both strategies cost at least the kernel's dynamic minimum and
	// the best strategy is by construction the cheaper one.
	f := func(a, b, c, ri, rf float64) bool {
		p := randParams(a, b, c)
		k := KernelAt(1e9, randIntensity(ri))
		frame := p.Time(k) * (1 + math.Abs(math.Mod(rf, 4)))
		idle := p.Pi0 * 0.3
		strat, race, pace, err := p.BestFrameStrategy(k, frame, idle, 0.1)
		if err != nil {
			return false
		}
		floor := k.Q * p.EpsMem // irreducible transfer energy
		if race < floor || pace < floor {
			return false
		}
		if strat == Race {
			return race <= pace
		}
		return pace < race
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFrameIdlePowerTipsTheScale(t *testing.T) {
	// Same machine, same kernel, same frame: cheap idle favours racing,
	// expensive idle favours pacing (there is nowhere good to hide).
	p := FromMachine(machine.GTX580(), machine.Double)
	p.Pi0 = 30 // modest active constant power so pacing can compete
	k := KernelAt(1e10, 1e6)
	frame := 3 * p.Time(k)
	cheap, _, _, err := p.BestFrameStrategy(k, frame, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	expensive, _, _, err := p.BestFrameStrategy(k, frame, 120, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if cheap == expensive {
		t.Skipf("idle power did not flip the verdict (cheap=%v, expensive=%v)", cheap, expensive)
	}
	if cheap != Pace && expensive != Pace {
		t.Error("expected pacing to win somewhere in the sweep")
	}
}
