package model_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/model"
)

// lockstepTrials is the property-test budget per (machine, precision)
// pair: 300 random kernels, each checked scalar-vs-interface and
// batch-vs-scalar.
const lockstepTrials = 300

// bitEq fails unless got and want are the same float64 bit pattern.
func bitEq(t *testing.T, label string, i int, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s[%d]: got %v (%#x), want %v (%#x)",
			label, i, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// trialKernels returns n deterministic pseudo-random kernels spanning
// the physically meaningful range: log-uniform work over ~12 decades,
// intensities from far memory-bound to far compute-bound.
func trialKernels(n int, seed int64) (w, q []float64) {
	rng := rand.New(rand.NewSource(seed))
	w = make([]float64, n)
	q = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = math.Pow(10, 3+12*rng.Float64())
		intensity := math.Pow(2, -6+14*rng.Float64())
		q[i] = w[i] / intensity
	}
	return w, q
}

// TestAnalyticInterfaceLockstep pins the refactor's core guarantee: the
// Analytic model reached through the EnergyModel interface is
// bit-identical to calling internal/core directly — every scalar
// method, and the batch EvalInto against both the direct core batch and
// the element-wise scalar methods — across the whole catalog at both
// precisions.
func TestAnalyticInterfaceLockstep(t *testing.T) {
	for key, m := range machine.Catalog() {
		for _, prec := range []machine.Precision{machine.Double, machine.Single} {
			t.Run(fmt.Sprintf("%s/%v", key, prec), func(t *testing.T) {
				p := core.FromMachine(m, prec)
				em, err := model.For(model.AnalyticName, key, prec)
				if err != nil {
					t.Fatal(err)
				}
				if em.Name() != model.AnalyticName {
					t.Fatalf("Name() = %q", em.Name())
				}
				w, q := trialKernels(lockstepTrials, 0x10C2_57E9)
				for i := range w {
					k := core.Kernel{W: w[i], Q: q[i]}
					bitEq(t, "Time", i, em.Time(k), p.Time(k))
					bitEq(t, "Energy", i, em.Energy(k), p.Energy(k))
					bitEq(t, "Power", i, em.Power(k), p.AveragePower(k))
					bitEq(t, "CappedTime", i, em.CappedTime(k), p.CappedTime(k))
					bitEq(t, "CappedEnergy", i, em.CappedEnergy(k), p.CappedEnergy(k))
					bitEq(t, "CappedPower", i, em.CappedPower(k), p.CappedPower(k))
				}
				var ib, db core.Batch
				em.EvalInto(&ib, w, q)
				p.EvalInto(&db, w, q)
				for i := range w {
					bitEq(t, "batch Time", i, ib.Time[i], db.Time[i])
					bitEq(t, "batch Energy", i, ib.Energy[i], db.Energy[i])
					bitEq(t, "batch Power", i, ib.Power[i], db.Power[i])
					bitEq(t, "batch CappedTime", i, ib.CappedTime[i], db.CappedTime[i])
					bitEq(t, "batch CappedEnergy", i, ib.CappedEnergy[i], db.CappedEnergy[i])
					bitEq(t, "batch CappedPower", i, ib.CappedPower[i], db.CappedPower[i])
					// Batch ≡ scalar through the interface, too.
					k := core.Kernel{W: w[i], Q: q[i]}
					bitEq(t, "batch vs scalar Time", i, ib.Time[i], em.Time(k))
					bitEq(t, "batch vs scalar Energy", i, ib.Energy[i], em.Energy(k))
				}
			})
		}
	}
}

// TestBlackboxBatchScalarLockstep extends PR 7's lockstep contract to
// the fitted model: Blackbox.EvalInto columns are bit-identical to its
// scalar methods element-wise, and the capped columns equal the plain
// ones (throttling is endogenous to the fit).
func TestBlackboxBatchScalarLockstep(t *testing.T) {
	bb := fitSmall(t, "gtx580")
	w, q := trialKernels(lockstepTrials, 0xB1AC_B0C5)
	var b core.Batch
	bb.EvalInto(&b, w, q)
	for i := range w {
		k := core.Kernel{W: w[i], Q: q[i]}
		bitEq(t, "Time", i, b.Time[i], bb.Time(k))
		bitEq(t, "Energy", i, b.Energy[i], bb.Energy(k))
		bitEq(t, "Power", i, b.Power[i], bb.Power(k))
		bitEq(t, "CappedTime", i, b.CappedTime[i], b.Time[i])
		bitEq(t, "CappedEnergy", i, b.CappedEnergy[i], b.Energy[i])
		bitEq(t, "CappedPower", i, b.CappedPower[i], b.Power[i])
	}
}

// fitSmall fits one small, fast blackbox campaign for tests.
func fitSmall(t *testing.T, machineKey string) *model.Blackbox {
	t.Helper()
	bb, err := model.Fit(model.FitConfig{
		Machine: machineKey,
		Points:  5,
		Reps:    3,
		Volumes: []float64{16 << 20, 64 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	return bb
}

// TestFitDeterministic pins the fit identity: the same config yields
// bit-identical coefficients on every run and at any worker count.
func TestFitDeterministic(t *testing.T) {
	base := fitSmall(t, "i7-950")
	again := fitSmall(t, "i7-950")
	if *base != *again {
		t.Fatalf("refit differs:\n%+v\n%+v", base, again)
	}
	for _, workers := range []int{1, 4} {
		cfg := model.FitConfig{
			Machine: "i7-950",
			Points:  5,
			Reps:    3,
			Volumes: []float64{16 << 20, 64 << 20},
			Workers: workers,
		}
		bb, err := model.Fit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *bb != *base {
			t.Fatalf("fit at workers=%d differs:\n%+v\n%+v", workers, bb, base)
		}
	}
	if base.Obs != 2*5*3 {
		t.Errorf("Obs = %d, want %d", base.Obs, 2*5*3)
	}
	if base.TimeR2 <= 0.5 || base.EnergyR2 <= 0.5 {
		t.Errorf("implausible fit quality: TimeR2=%v EnergyR2=%v", base.TimeR2, base.EnergyR2)
	}
}

// TestForResolution covers the registry: empty and explicit names,
// memoized blackbox fits, and the error paths.
func TestForResolution(t *testing.T) {
	def, err := model.For("", "gtx580", machine.Double)
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != model.DefaultName() {
		t.Errorf("empty name resolved to %q, want the default %q", def.Name(), model.DefaultName())
	}
	bb1, err := model.For(model.BlackboxName, "gtx580", machine.Double)
	if err != nil {
		t.Fatal(err)
	}
	bb2, err := model.For(model.BlackboxName, "gtx580", machine.Double)
	if err != nil {
		t.Fatal(err)
	}
	if bb1 != bb2 {
		t.Error("repeated blackbox lookups did not share one memoized fit")
	}
	if _, err := model.For("psychic", "gtx580", machine.Double); err == nil {
		t.Error("unknown model name resolved")
	}
	if _, err := model.For("", "vaporware", machine.Double); err == nil {
		t.Error("unknown machine resolved")
	}
}

// TestRegistry pins the name surface the server lists.
func TestRegistry(t *testing.T) {
	names := model.Names()
	if len(names) < 2 {
		t.Fatalf("Names() = %v", names)
	}
	for i, name := range names {
		if i > 0 && names[i-1] >= name {
			t.Errorf("Names() not sorted: %v", names)
		}
		if !model.Known(name) {
			t.Errorf("registered name %q not Known", name)
		}
		if model.Describe(name) == "" {
			t.Errorf("registered name %q has no description", name)
		}
	}
	if !model.Known("") {
		t.Error("empty selector must be known (the default)")
	}
	if model.Known("psychic") {
		t.Error("unregistered name is Known")
	}
	if model.Describe("psychic") != "" {
		t.Error("unregistered name has a description")
	}
}

// TestParseFitConfig covers the strict wire parser: defaults, rejection
// of unknown fields, trailing data, and each Validate failure.
func TestParseFitConfig(t *testing.T) {
	good, err := model.ParseFitConfig([]byte(`{"machine": "gtx580"}`))
	if err != nil {
		t.Fatal(err)
	}
	if good.Precision != "double" || good.Points != 9 || good.Reps != 8 ||
		good.LoIntensity != 0.25 || good.HiIntensity != 64 ||
		len(good.Volumes) != 2 || good.Seed != 101 {
		t.Errorf("defaults not applied: %+v", good)
	}

	bad := []struct {
		name, body, wantErr string
	}{
		{"not json", `nope`, "parse"},
		{"unknown field", `{"machine": "gtx580", "turbo": true}`, "unknown field"},
		{"trailing data", `{"machine": "gtx580"} {}`, "trailing data"},
		{"no machine", `{}`, "needs a machine"},
		{"bad precision", `{"machine": "gtx580", "precision": "half"}`, "unknown precision"},
		{"negative lo", `{"machine": "gtx580", "lo_intensity": -1}`, "lo_intensity"},
		{"hi below lo", `{"machine": "gtx580", "lo_intensity": 8, "hi_intensity": 2}`, "hi_intensity"},
		{"one point", `{"machine": "gtx580", "points": 1}`, "points"},
		{"points cap", `{"machine": "gtx580", "points": 5000}`, "points"},
		{"reps cap", `{"machine": "gtx580", "reps": 5000}`, "reps"},
		{"single volume", `{"machine": "gtx580", "volumes": [1048576]}`, "volumes"},
		{"equal volumes", `{"machine": "gtx580", "volumes": [1048576, 1048576]}`, "distinct"},
		{"huge volume", `{"machine": "gtx580", "volumes": [1, 2e12]}`, "volume"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := model.ParseFitConfig([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted %s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// FuzzModelConfig fuzzes the strict JSON entry point: any input either
// parses to a config Validate accepts, or errors — never panics, and
// an accepted config survives a defaults round-trip.
func FuzzModelConfig(f *testing.F) {
	f.Add([]byte(`{"machine": "gtx580"}`))
	f.Add([]byte(`{"machine": "i7-950", "precision": "single", "points": 5, "reps": 3}`))
	f.Add([]byte(`{"machine": "fermi", "volumes": [1048576, 4194304], "seed": 99}`))
	f.Add([]byte(`{"machine": "", "hi_intensity": 1e308}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"machine": "gtx580"} trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := model.ParseFitConfig(data)
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("parsed config fails its own Validate: %v", err)
		}
		if cfg.Machine == "" || cfg.Points < 2 || cfg.Reps < 1 || len(cfg.Volumes) < 2 {
			t.Fatalf("accepted config missing defaults: %+v", cfg)
		}
	})
}
