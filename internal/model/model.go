// Package model makes the energy model pluggable. The paper's closed
// forms (eqs. 3, 4 and the §V-B capped variants in internal/core) become
// one implementation — Analytic — of an EnergyModel interface, and a
// fitted regression over simulated measurements — Blackbox — becomes a
// second, following the critique of Hofmann et al. (arXiv:1803.01618)
// that closed-form models break down in machine-specific ways that only
// a measured alternative can expose.
//
// The interface carries the same determinism contract as internal/core:
// every method is a pure function of the model's coefficients and the
// kernel, and EvalInto fills batch columns bit-identical to the scalar
// methods (PR 7's lockstep contract). Analytic delegates 1:1 to
// core.Params, so consumers that switch to the interface with the
// default model produce byte-identical output — the goldens across
// campaign, fleet and server pin this.
//
// The subpackage scorecard quantifies where each model is accurate;
// docs/MODELS.md documents the contract, the fit methodology and the
// selection rule.
package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
)

// EnergyModel predicts the execution time, energy and power of a kernel
// (W flops, Q bytes) on one (machine, precision) pair. Implementations
// are immutable after construction and safe for concurrent use; all
// methods are deterministic, and EvalInto must produce columns
// bit-identical to calling the scalar methods element-wise.
type EnergyModel interface {
	// Name returns the registry name ("analytic", "blackbox", ...).
	Name() string
	// Time predicts wall-clock seconds, ignoring any power cap.
	Time(k core.Kernel) float64
	// Energy predicts joules, ignoring any power cap.
	Energy(k core.Kernel) float64
	// Power predicts average watts (Energy/Time).
	Power(k core.Kernel) float64
	// CappedTime predicts wall-clock seconds under the machine's
	// power cap (§V-B throttling).
	CappedTime(k core.Kernel) float64
	// CappedEnergy predicts joules under the power cap.
	CappedEnergy(k core.Kernel) float64
	// CappedPower predicts average watts under the power cap.
	CappedPower(k core.Kernel) float64
	// EvalInto fills all six columns of b for the kernels (w[i], q[i]),
	// bit-identical to the scalar methods point by point.
	EvalInto(b *core.Batch, w, q []float64)
}

// Registered model names. The empty string is accepted everywhere a
// name is and resolves to the default.
const (
	// AnalyticName is the closed-form roofline model (the default).
	AnalyticName = "analytic"
	// BlackboxName is the regression fitted on simulated measurements.
	BlackboxName = "blackbox"
)

// DefaultName returns the name the empty string resolves to.
func DefaultName() string { return AnalyticName }

// Names returns every registered model name, sorted.
func Names() []string {
	names := []string{AnalyticName, BlackboxName}
	sort.Strings(names)
	return names
}

// Known reports whether name resolves to a registered model. The empty
// string is known: it means the default.
func Known(name string) bool {
	switch name {
	case "", AnalyticName, BlackboxName:
		return true
	}
	return false
}

// Describe returns a one-line description of a registered model name.
func Describe(name string) string {
	switch name {
	case AnalyticName:
		return "closed-form roofline (eqs. 3-4, §V-B cap); the default, byte-identical to internal/core"
	case BlackboxName:
		return "least-squares regression fitted on simulated measurements (generalised eq. 9)"
	}
	return ""
}

// Analytic is the paper's closed-form model: a zero-cost adapter that
// delegates every method 1:1 to core.Params, so going through the
// interface is bit-identical to calling internal/core directly (pinned
// by TestAnalyticInterfaceLockstep).
type Analytic struct {
	// P holds the machine constants the closed forms evaluate.
	P core.Params
}

// NewAnalytic wraps machine constants as an EnergyModel.
func NewAnalytic(p core.Params) Analytic { return Analytic{P: p} }

// Name returns "analytic".
func (a Analytic) Name() string { return AnalyticName }

// Time delegates to core.Params.Time (eq. 3).
func (a Analytic) Time(k core.Kernel) float64 { return a.P.Time(k) }

// Energy delegates to core.Params.Energy (eq. 4).
func (a Analytic) Energy(k core.Kernel) float64 { return a.P.Energy(k) }

// Power delegates to core.Params.AveragePower.
func (a Analytic) Power(k core.Kernel) float64 { return a.P.AveragePower(k) }

// CappedTime delegates to core.Params.CappedTime (§V-B).
func (a Analytic) CappedTime(k core.Kernel) float64 { return a.P.CappedTime(k) }

// CappedEnergy delegates to core.Params.CappedEnergy (§V-B).
func (a Analytic) CappedEnergy(k core.Kernel) float64 { return a.P.CappedEnergy(k) }

// CappedPower delegates to core.Params.CappedPower (§V-B).
func (a Analytic) CappedPower(k core.Kernel) float64 { return a.P.CappedPower(k) }

// EvalInto delegates to core.Params.EvalInto, the fused batch kernel
// already pinned bit-identical to the scalar closed forms.
func (a Analytic) EvalInto(b *core.Batch, w, q []float64) { a.P.EvalInto(b, w, q) }

// fitCache memoizes blackbox fits per (machine, precision): a fit is a
// deterministic function of the default fit configuration, so every
// caller of For shares one instance. Guarded by fitMu; a fit runs with
// the lock held (it is a ~150-run simulated sweep, cheap enough that
// serialising concurrent first requests is fine).
var (
	fitMu    sync.Mutex
	fitCache = map[string]*Blackbox{}
)

// For resolves a model name for one catalog machine and precision. The
// empty name resolves to the default (analytic). Blackbox models are
// fitted on first use with DefaultFitConfig and memoized, so repeated
// lookups — e.g. per server request — reuse one fit.
func For(name, machineKey string, prec machine.Precision) (EnergyModel, error) {
	m, ok := machine.Catalog()[machineKey]
	if !ok {
		return nil, fmt.Errorf("model: unknown machine %q", machineKey)
	}
	switch name {
	case "", AnalyticName:
		return NewAnalytic(core.FromMachine(m, prec)), nil
	case BlackboxName:
		key := machineKey + "/" + prec.String()
		fitMu.Lock()
		defer fitMu.Unlock()
		if bb, ok := fitCache[key]; ok {
			return bb, nil
		}
		bb, err := Fit(DefaultFitConfig(machineKey, prec))
		if err != nil {
			return nil, err
		}
		fitCache[key] = bb
		return bb, nil
	}
	return nil, fmt.Errorf("model: unknown model %q (registered: %s)", name, strings.Join(Names(), ", "))
}
