package model

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/stats"
)

// blackboxStream namespaces the per-volume engine seeds a fit derives
// from FitConfig.Seed (see stats.DeriveSeed).
const blackboxStream uint64 = 0x42424f58 // "BBOX"

// Blackbox is an EnergyModel fitted by least squares on simulated
// measurements, generalising the paper's eq. 9 regression from energy
// only to time and energy:
//
//	T̂(W, Q) = TauW·W + TauQ·Q + T0
//	Ê(W, Q) = EpsW·W + EpsQ·Q + P0·T̂(W, Q)
//
// Both fits run in per-flop space (rows are divided by W, exactly as
// eq. 9 divides by W) so every observation carries equal weight
// regardless of kernel size. The energy fit uses measured times as the
// T/W regressor — the paper's protocol — while prediction substitutes
// the fitted T̂, making the model self-contained.
//
// Unlike the analytic model the blackbox has no separate capped
// branch: its training data is whatever the simulated machine actually
// did, throttling included, so CappedTime/CappedEnergy/CappedPower
// return the plain predictions. This is a documented semantic
// difference (docs/MODELS.md): the blackbox predicts observed
// behaviour, the analytic model predicts the closed forms.
type Blackbox struct {
	// MachineKey names the fitted catalog machine.
	MachineKey string
	// Precision is the fitted precision.
	Precision machine.Precision
	// TauW, TauQ and T0 are the time coefficients (s/flop, s/byte, s).
	TauW, TauQ, T0 float64
	// EpsW, EpsQ and P0 are the energy coefficients (J/flop, J/byte, W).
	EpsW, EpsQ, P0 float64
	// TimeR2 and EnergyR2 are the fits' coefficients of determination.
	TimeR2, EnergyR2 float64
	// Obs is the number of per-repetition observations each fit used.
	Obs int
}

// Name returns "blackbox".
func (bb *Blackbox) Name() string { return BlackboxName }

// Time predicts wall-clock seconds from the fitted time plane.
func (bb *Blackbox) Time(k core.Kernel) float64 {
	return bb.TauW*k.W + bb.TauQ*k.Q + bb.T0
}

// Energy predicts joules from the fitted energy plane, substituting
// the fitted time for eq. 9's measured T/W regressor.
func (bb *Blackbox) Energy(k core.Kernel) float64 {
	t := bb.TauW*k.W + bb.TauQ*k.Q + bb.T0
	return bb.EpsW*k.W + bb.EpsQ*k.Q + bb.P0*t
}

// Power predicts average watts as Energy/Time.
func (bb *Blackbox) Power(k core.Kernel) float64 {
	t := bb.TauW*k.W + bb.TauQ*k.Q + bb.T0
	e := bb.EpsW*k.W + bb.EpsQ*k.Q + bb.P0*t
	return e / t
}

// CappedTime returns Time: throttling is endogenous to the fit.
func (bb *Blackbox) CappedTime(k core.Kernel) float64 { return bb.Time(k) }

// CappedEnergy returns Energy: throttling is endogenous to the fit.
func (bb *Blackbox) CappedEnergy(k core.Kernel) float64 { return bb.Energy(k) }

// CappedPower returns Power: throttling is endogenous to the fit.
func (bb *Blackbox) CappedPower(k core.Kernel) float64 { return bb.Power(k) }

// EvalInto fills all six batch columns with the same expressions the
// scalar methods evaluate, in the same association order, so the
// columns are bit-identical to element-wise scalar calls.
func (bb *Blackbox) EvalInto(b *core.Batch, w, q []float64) {
	n := len(w)
	if len(q) != n {
		panic(fmt.Sprintf("model: EvalInto column length mismatch: len(w)=%d len(q)=%d", n, len(q)))
	}
	b.Reserve(n)
	for i := 0; i < n; i++ {
		t := bb.TauW*w[i] + bb.TauQ*q[i] + bb.T0
		e := bb.EpsW*w[i] + bb.EpsQ*q[i] + bb.P0*t
		p := e / t
		b.Time[i] = t
		b.Energy[i] = e
		b.Power[i] = p
		b.CappedTime[i] = t
		b.CappedEnergy[i] = e
		b.CappedPower[i] = p
	}
}

// Fit runs the sweeps cfg describes and regresses the two planes. The
// returned model is a deterministic function of cfg: per-repetition
// noise comes from streams derived off (cfg.Seed, volume index), so the
// same config always yields bit-identical coefficients, at any Workers.
func Fit(cfg FitConfig) (*Blackbox, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, ok := machine.Catalog()[cfg.Machine]
	if !ok {
		return nil, fmt.Errorf("model: unknown machine %q", cfg.Machine)
	}
	prec, err := parsePrecision(cfg.Precision)
	if err != nil {
		return nil, err
	}
	grid := core.LogGrid(cfg.LoIntensity, cfg.HiIntensity, cfg.Points)
	var points []microbench.Point
	for vi, vol := range cfg.Volumes {
		// One engine per volume, on its own derived seed, so the noise
		// draws of different volumes are independent streams.
		eng, err := sim.New(m, sim.DefaultConfig(stats.DeriveSeed(cfg.Seed, blackboxStream, uint64(vi))))
		if err != nil {
			return nil, fmt.Errorf("model: fit engine for %q: %w", cfg.Machine, err)
		}
		pts, err := microbench.Sweep(nil, eng, prec, microbench.SweepConfig{
			Intensities: grid,
			VolumeBytes: vol,
			Reps:        cfg.Reps,
			Tuning:      eng.OptimalTuning(),
			KeepReps:    true,
			Workers:     cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("model: fit sweep for %q volume %g: %w", cfg.Machine, vol, err)
		}
		points = append(points, pts...)
	}

	// Time plane, per flop: T/W = TauW + TauQ·(Q/W) + T0·(1/W). Two or
	// more volumes keep Q/W and 1/W from being collinear (within one
	// volume Q is held constant, so they would be).
	xt := make([][]float64, 0, len(points))
	yt := make([]float64, 0, len(points))
	// Energy plane, per flop: E/W = EpsW + EpsQ·(Q/W) + P0·(T/W), the
	// paper's eq. 9 with measured T as regressor (Δεd drops out: a fit
	// is per precision).
	xe := make([][]float64, 0, len(points))
	ye := make([]float64, 0, len(points))
	for _, pt := range points {
		xt = append(xt, []float64{1, pt.Q / pt.W, 1 / pt.W})
		yt = append(yt, float64(pt.Time)/pt.W)
		xe = append(xe, []float64{1, pt.Q / pt.W, float64(pt.Time) / pt.W})
		ye = append(ye, float64(pt.Energy)/pt.W)
	}
	tfit, err := regress.Fit(xt, yt)
	if err != nil {
		return nil, fmt.Errorf("model: time fit for %q: %w", cfg.Machine, err)
	}
	efit, err := regress.Fit(xe, ye)
	if err != nil {
		return nil, fmt.Errorf("model: energy fit for %q: %w", cfg.Machine, err)
	}
	return &Blackbox{
		MachineKey: cfg.Machine,
		Precision:  prec,
		TauW:       tfit.Coef[0],
		TauQ:       tfit.Coef[1],
		T0:         tfit.Coef[2],
		EpsW:       efit.Coef[0],
		EpsQ:       efit.Coef[1],
		P0:         efit.Coef[2],
		TimeR2:     tfit.R2,
		EnergyR2:   efit.R2,
		Obs:        len(points),
	}, nil
}
