package scorecard_test

import (
	"context"
	"fmt"

	"repro/internal/model/scorecard"
)

// ExampleScorecard runs a small scorecard for one machine and reads
// off the auto-selection: per (machine, precision) pair the model with
// the lower median energy error against held-out simulated
// measurements wins (ties go to analytic). The run is deterministic —
// same config, same bytes, at any worker count.
func ExampleScorecard() {
	sc, err := scorecard.Run(context.Background(), scorecard.Config{
		Machines:   []string{"gtx580"},
		FitPoints:  5,
		FitReps:    3,
		EvalPoints: 9,
		EvalReps:   2,
	})
	if err != nil {
		panic(err)
	}
	for i := range sc.Cards {
		c := &sc.Cards[i]
		e := c.Quantity("energy")
		fmt.Printf("%s/%s: analytic %.1f%% vs blackbox %.1f%% median energy error -> %s\n",
			c.Machine, c.Precision, 100*e.Analytic.Median, 100*e.Blackbox.Median, c.Selected)
	}
	// Output:
	// gtx580/double: analytic 2.7% vs blackbox 14.7% median energy error -> analytic
	// gtx580/single: analytic 6.1% vs blackbox 1.1% median energy error -> blackbox
}
