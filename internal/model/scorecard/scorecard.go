// Package scorecard quantifies where each registered EnergyModel is
// accurate. For every (machine, precision) pair it fits the blackbox
// model on one simulated measurement campaign, then scores both the
// analytic and the blackbox model against a second, held-out campaign
// on a wider intensity grid: per-quantity relative-error tables, full
// error CDFs, and the contiguous intensity regions where a model's
// error exceeds a breakdown threshold (the per-machine self-critique
// of arXiv:1505.06539, applied to our own models). An accuracy-based
// selector picks the model with the lower median energy error per
// pair — the auto-selection rule documented in docs/MODELS.md.
//
// A scorecard is deterministic: all simulator noise comes from streams
// derived off (Config.Seed, cell index), cells are scored in a fixed
// order, and the JSON form is byte-identical at any worker count (the
// golden test pins this).
package scorecard

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Derivation stream tags keeping the fit campaign and the held-out
// scoring campaign on disjoint noise streams.
const (
	fitStream  uint64 = 0x53464954 // "SFIT"
	evalStream uint64 = 0x5345564c // "SEVL"
)

// Quantity names, in report order.
var quantityNames = []string{"time", "energy", "power"}

// Config controls one scorecard run. Zero fields take defaults.
type Config struct {
	// Machines are the catalog keys to score (default: whole catalog,
	// sorted).
	Machines []string
	// FitPoints and FitReps size the blackbox training campaign
	// (defaults 9 and 8; see model.FitConfig).
	FitPoints, FitReps int
	// EvalLoIntensity and EvalHiIntensity bound the held-out scoring
	// grid in flop/byte (defaults 0.125 and 128 — wider than the
	// training grid, so the scorecard also probes extrapolation).
	EvalLoIntensity, EvalHiIntensity float64
	// EvalPoints is the held-out grid size (default 17).
	EvalPoints int
	// EvalReps is the measurement repetitions per held-out point
	// (default 5).
	EvalReps int
	// EvalWork is the per-point flop count (default 1e9).
	EvalWork float64
	// Threshold is the relative error above which a grid point counts
	// toward a breakdown region (default 0.05).
	Threshold float64
	// Seed roots every derived noise stream (default 7).
	Seed int64
	// Workers bounds how many (machine, precision) cells are scored
	// concurrently; < 1 means one per CPU. The output is byte-identical
	// at any value.
	Workers int
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if len(c.Machines) == 0 {
		cat := machine.Catalog()
		for key := range cat {
			c.Machines = append(c.Machines, key)
		}
		sort.Strings(c.Machines)
	}
	if c.FitPoints == 0 {
		c.FitPoints = 9
	}
	if c.FitReps == 0 {
		c.FitReps = 8
	}
	if c.EvalLoIntensity == 0 {
		c.EvalLoIntensity = 0.125
	}
	if c.EvalHiIntensity == 0 {
		c.EvalHiIntensity = 128
	}
	if c.EvalPoints == 0 {
		c.EvalPoints = 17
	}
	if c.EvalReps == 0 {
		c.EvalReps = 5
	}
	if c.EvalWork == 0 {
		c.EvalWork = 1e9
	}
	if c.Threshold == 0 {
		c.Threshold = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// ErrorStats summarises one model's relative errors for one quantity
// on one (machine, precision) pair.
type ErrorStats struct {
	// Median is the median per-point relative error.
	Median float64 `json:"median"`
	// P90 is the 90th-percentile relative error.
	P90 float64 `json:"p90"`
	// Max is the worst relative error.
	Max float64 `json:"max"`
	// CDF is every per-point relative error, sorted ascending: point
	// i is the empirical quantile at (i+1)/len(CDF).
	CDF []float64 `json:"cdf"`
}

// Quantity is one predicted quantity's head-to-head comparison.
type Quantity struct {
	// Name is "time", "energy" or "power".
	Name string `json:"name"`
	// Analytic summarises the closed-form model's errors.
	Analytic ErrorStats `json:"analytic"`
	// Blackbox summarises the fitted model's errors.
	Blackbox ErrorStats `json:"blackbox"`
	// Winner names the model with the lower median error (ties go to
	// the analytic model).
	Winner string `json:"winner"`
}

// Region is a contiguous intensity range where one model's relative
// error exceeds the breakdown threshold.
type Region struct {
	// Model names whose predictions break down here.
	Model string `json:"model"`
	// Quantity is the predicted quantity that breaks down.
	Quantity string `json:"quantity"`
	// LoIntensity is the region's lowest breaching grid intensity
	// (inclusive, flop/byte).
	LoIntensity float64 `json:"lo_intensity"`
	// HiIntensity is the highest breaching grid intensity (inclusive).
	HiIntensity float64 `json:"hi_intensity"`
	// WorstRelErr is the region's maximum relative error.
	WorstRelErr float64 `json:"worst_rel_err"`
}

// Card is one (machine, precision) pair's scorecard.
type Card struct {
	// Machine is the scored catalog key.
	Machine string `json:"machine"`
	// Precision is the scored precision name.
	Precision string `json:"precision"`
	// FitObs is the number of observations the blackbox fit used.
	FitObs int `json:"fit_obs"`
	// TimeR2 is the blackbox time fit's coefficient of determination.
	TimeR2 float64 `json:"time_r2"`
	// EnergyR2 is the blackbox energy fit's R².
	EnergyR2 float64 `json:"energy_r2"`
	// Quantities hold the per-quantity comparisons (time, energy,
	// power — fixed order).
	Quantities []Quantity `json:"quantities"`
	// Breakdown lists where either model exceeds the threshold.
	Breakdown []Region `json:"breakdown,omitempty"`
	// Selected is the auto-selected model for this pair: the lower
	// median energy error (ties go to analytic).
	Selected string `json:"selected"`
}

// Quantity returns the named quantity comparison, or a zero value.
func (c *Card) Quantity(name string) Quantity {
	for _, q := range c.Quantities {
		if q.Name == name {
			return q
		}
	}
	return Quantity{}
}

// Scorecard is the full report over every scored pair.
type Scorecard struct {
	// Seed echoes the run's root seed.
	Seed int64 `json:"seed"`
	// Threshold echoes the breakdown threshold.
	Threshold float64 `json:"threshold"`
	// EvalWork is the per-point flop count of the held-out grid.
	EvalWork float64 `json:"eval_work"`
	// EvalReps is the measurement repetitions per held-out point.
	EvalReps int `json:"eval_reps"`
	// Intensities is the held-out grid in flop/byte.
	Intensities []float64 `json:"intensities"`
	// Cards are the per-(machine, precision) results, machine-major in
	// config order, double precision before single within a machine.
	Cards []Card `json:"cards"`
}

// cell identifies one unit of scoring work.
type cell struct {
	machineKey string
	prec       machine.Precision
}

// Run scores every (machine, precision) pair cfg selects. The result
// is a pure function of cfg minus Workers.
func Run(ctx context.Context, cfg Config) (*Scorecard, error) {
	cfg = cfg.withDefaults()
	if cfg.EvalPoints < 2 {
		return nil, fmt.Errorf("scorecard: eval_points must be >= 2, got %d", cfg.EvalPoints)
	}
	if !(cfg.EvalLoIntensity > 0 && cfg.EvalHiIntensity > cfg.EvalLoIntensity) {
		return nil, fmt.Errorf("scorecard: bad eval intensity range [%g, %g]", cfg.EvalLoIntensity, cfg.EvalHiIntensity)
	}
	cat := machine.Catalog()
	var cells []cell
	for _, key := range cfg.Machines {
		if _, ok := cat[key]; !ok {
			return nil, fmt.Errorf("scorecard: unknown machine %q", key)
		}
		cells = append(cells, cell{key, machine.Double}, cell{key, machine.Single})
	}
	grid := core.LogGrid(cfg.EvalLoIntensity, cfg.EvalHiIntensity, cfg.EvalPoints)
	cards, err := parallel.Map(ctx, len(cells), cfg.Workers, func(ctx context.Context, i int) (Card, error) {
		return scoreCell(cfg, cells[i], uint64(i), grid)
	})
	if err != nil {
		return nil, err
	}
	return &Scorecard{
		Seed:        cfg.Seed,
		Threshold:   cfg.Threshold,
		EvalWork:    cfg.EvalWork,
		EvalReps:    cfg.EvalReps,
		Intensities: grid,
		Cards:       cards,
	}, nil
}

// scoreCell fits, measures and scores one (machine, precision) pair.
// All noise derives from (cfg.Seed, idx), so the card is independent
// of scheduling.
func scoreCell(cfg Config, cl cell, idx uint64, grid []float64) (Card, error) {
	bb, err := model.Fit(model.FitConfig{
		Machine:   cl.machineKey,
		Precision: cl.prec.String(),
		Points:    cfg.FitPoints,
		Reps:      cfg.FitReps,
		Seed:      stats.DeriveSeed(cfg.Seed, fitStream, idx),
		Workers:   1,
	})
	if err != nil {
		return Card{}, err
	}
	m := machine.Catalog()[cl.machineKey]
	p := core.FromMachine(m, cl.prec)
	an := model.NewAnalytic(p)

	// Held-out measurements: EvalReps runs per grid point on a fresh
	// engine seeded off the eval stream, aggregated like the
	// validation harness does.
	eng, err := sim.New(m, sim.DefaultConfig(stats.DeriveSeed(cfg.Seed, evalStream, idx)))
	if err != nil {
		return Card{}, err
	}
	n := len(grid)
	w := make([]float64, n)
	q := make([]float64, n)
	for j := range w {
		w[j] = cfg.EvalWork
	}
	core.QAtInto(q, w, grid)
	measT := make([]float64, n)
	measE := make([]float64, n)
	measP := make([]float64, n)
	specs := make([]sim.KernelSpec, cfg.EvalReps)
	runs := make([]sim.Run, cfg.EvalReps)
	for j := 0; j < n; j++ {
		spec := sim.KernelSpec{W: w[j], Q: q[j], Precision: cl.prec, Tuning: eng.OptimalTuning()}
		for r := range specs {
			specs[r] = spec
		}
		if err := eng.RunBatch(nil, specs, runs); err != nil {
			return Card{}, err
		}
		var sumT, sumE float64
		for r := range runs {
			sumT += float64(runs[r].Duration)
			sumE += float64(runs[r].Energy)
		}
		reps := float64(cfg.EvalReps)
		measT[j] = sumT / reps
		measE[j] = sumE / reps
		measP[j] = sumE / sumT
	}

	// Predictions via the batch interface: the capped columns, because
	// the measured runs include any throttling the machine enforces.
	var ab, bbb core.Batch
	an.EvalInto(&ab, w, q)
	bb.EvalInto(&bbb, w, q)
	predict := func(b *core.Batch, quantity string) []float64 {
		switch quantity {
		case "time":
			return b.CappedTime
		case "energy":
			return b.CappedEnergy
		default:
			return b.CappedPower
		}
	}
	measure := func(quantity string) []float64 {
		switch quantity {
		case "time":
			return measT
		case "energy":
			return measE
		default:
			return measP
		}
	}

	card := Card{
		Machine:   cl.machineKey,
		Precision: cl.prec.String(),
		FitObs:    bb.Obs,
		TimeR2:    bb.TimeR2,
		EnergyR2:  bb.EnergyR2,
	}
	for _, name := range quantityNames {
		meas := measure(name)
		anErr := relErrs(predict(&ab, name), meas)
		bbErr := relErrs(predict(&bbb, name), meas)
		qt := Quantity{
			Name:     name,
			Analytic: summarise(anErr),
			Blackbox: summarise(bbErr),
			Winner:   model.AnalyticName,
		}
		if qt.Blackbox.Median < qt.Analytic.Median {
			qt.Winner = model.BlackboxName
		}
		card.Quantities = append(card.Quantities, qt)
		card.Breakdown = append(card.Breakdown, regions(model.AnalyticName, name, grid, anErr, cfg.Threshold)...)
		card.Breakdown = append(card.Breakdown, regions(model.BlackboxName, name, grid, bbErr, cfg.Threshold)...)
	}
	card.Selected = card.Quantity("energy").Winner
	return card, nil
}

// relErrs returns the per-point relative errors |pred/meas - 1|.
func relErrs(pred, meas []float64) []float64 {
	out := make([]float64, len(pred))
	for i := range pred {
		out[i] = stats.RelErr(pred[i], meas[i])
	}
	return out
}

// summarise computes the percentile summary and sorted CDF of errs.
func summarise(errs []float64) ErrorStats {
	cdf := append([]float64(nil), errs...)
	sort.Float64s(cdf)
	med, _ := stats.Percentile(cdf, 50)
	p90, _ := stats.Percentile(cdf, 90)
	return ErrorStats{Median: med, P90: p90, Max: cdf[len(cdf)-1], CDF: cdf}
}

// regions finds the contiguous grid runs where errs exceeds threshold.
func regions(modelName, quantity string, grid, errs []float64, threshold float64) []Region {
	var out []Region
	for i := 0; i < len(grid); {
		if errs[i] <= threshold {
			i++
			continue
		}
		j := i
		worst := errs[i]
		for j+1 < len(grid) && errs[j+1] > threshold {
			j++
			worst = math.Max(worst, errs[j])
		}
		out = append(out, Region{
			Model:       modelName,
			Quantity:    quantity,
			LoIntensity: grid[i],
			HiIntensity: grid[j],
			WorstRelErr: worst,
		})
		i = j + 1
	}
	return out
}

// ToJSON renders the scorecard as deterministic, indented JSON — the
// artifact CI uploads and the golden test pins.
func (s *Scorecard) ToJSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Render formats the per-pair summary as a fixed-width text table:
// median/max relative error per quantity for both models, the
// per-quantity winner and the auto-selected model.
func (s *Scorecard) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-6s %-7s %22s %22s %-9s\n",
		"machine", "prec", "qty", "analytic med/max", "blackbox med/max", "winner")
	for i := range s.Cards {
		c := &s.Cards[i]
		for _, q := range c.Quantities {
			fmt.Fprintf(&sb, "%-10s %-6s %-7s %10.2f%% %9.2f%% %10.2f%% %9.2f%% %-9s\n",
				c.Machine, c.Precision, q.Name,
				100*q.Analytic.Median, 100*q.Analytic.Max,
				100*q.Blackbox.Median, 100*q.Blackbox.Max,
				q.Winner)
		}
		fmt.Fprintf(&sb, "%-10s %-6s selected=%s (breakdown regions: %d)\n",
			c.Machine, c.Precision, c.Selected, len(c.Breakdown))
	}
	return sb.String()
}

// MarkdownTable renders the summary as a GitHub-flavoured markdown
// table (the per-machine table EXPERIMENTS.md embeds).
func (s *Scorecard) MarkdownTable() string {
	var sb strings.Builder
	sb.WriteString("| machine | precision | quantity | analytic med | analytic max | blackbox med | blackbox max | winner |\n")
	sb.WriteString("|---|---|---|---|---|---|---|---|\n")
	for i := range s.Cards {
		c := &s.Cards[i]
		for _, q := range c.Quantities {
			fmt.Fprintf(&sb, "| %s | %s | %s | %.2f%% | %.2f%% | %.2f%% | %.2f%% | %s |\n",
				c.Machine, c.Precision, q.Name,
				100*q.Analytic.Median, 100*q.Analytic.Max,
				100*q.Blackbox.Median, 100*q.Blackbox.Max,
				q.Winner)
		}
	}
	return sb.String()
}

// CDFChart builds the error-CDF figure for one card and quantity: the
// sorted relative errors of both models against cumulative fraction.
func CDFChart(c *Card, quantity string) *chart.Chart {
	q := c.Quantity(quantity)
	frac := func(n int) []float64 {
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = float64(i+1) / float64(n)
		}
		return ys
	}
	return &chart.Chart{
		Title:  fmt.Sprintf("%s error CDF — %s (%s)", quantity, c.Machine, c.Precision),
		XLabel: "relative error",
		YLabel: "fraction of points",
		Series: []chart.Series{
			{Name: model.AnalyticName, X: q.Analytic.CDF, Y: frac(len(q.Analytic.CDF)), Line: true, Marker: 'a'},
			{Name: model.BlackboxName, X: q.Blackbox.CDF, Y: frac(len(q.Blackbox.CDF)), Line: true, Marker: 'b'},
		},
	}
}
