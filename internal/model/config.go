package model

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/machine"
)

// FitConfig describes one blackbox fit: which (machine, precision)
// pair to fit and the simulated measurement campaign to fit it on.
// Zero fields take defaults (see DefaultFitConfig); the zero Machine
// is invalid. The JSON form is the wire/CLI surface, parsed strictly
// by ParseFitConfig.
type FitConfig struct {
	// Machine is the catalog key to fit ("gtx580", ...).
	Machine string `json:"machine"`
	// Precision is "single" or "double" (default "double").
	Precision string `json:"precision,omitempty"`
	// LoIntensity bounds the training intensity grid from below in
	// flop/byte (default 0.25).
	LoIntensity float64 `json:"lo_intensity,omitempty"`
	// HiIntensity bounds the grid from above (default 64).
	HiIntensity float64 `json:"hi_intensity,omitempty"`
	// Points is the number of log-spaced grid intensities (default 9).
	Points int `json:"points,omitempty"`
	// Reps is the repetitions per (volume, intensity) cell; every
	// repetition is one regression observation (default 8).
	Reps int `json:"reps,omitempty"`
	// Volumes are the per-run DRAM traffic sizes in bytes (default
	// 64 MiB and 256 MiB). At least two distinct volumes are required:
	// within one volume Q is constant, which makes the time plane's
	// Q/W and 1/W regressors collinear.
	Volumes []float64 `json:"volumes,omitempty"`
	// Seed roots the derived noise streams (default 101). The same
	// (config, seed) always fits bit-identical coefficients.
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds sweep concurrency (not part of the fit identity:
	// results are byte-identical at any worker count, so it is not on
	// the wire). < 1 means one worker per CPU.
	Workers int `json:"-"`
}

// Fit-campaign defaults: a 2-volume, 9-point, 8-rep sweep (144
// observations per plane) is enough for R² > 0.99 on every catalog
// machine while staying fast enough to fit lazily per server request.
const (
	defaultLoIntensity = 0.25
	defaultHiIntensity = 64
	defaultFitPoints   = 9
	defaultFitReps     = 8
	defaultFitSeed     = 101
)

// defaultVolumes returns the default training volumes (64 and 256 MiB).
func defaultVolumes() []float64 { return []float64{64 << 20, 256 << 20} }

// DefaultFitConfig returns the fit configuration For uses when it fits
// a blackbox model lazily for one catalog machine and precision.
func DefaultFitConfig(machineKey string, prec machine.Precision) FitConfig {
	return FitConfig{Machine: machineKey, Precision: prec.String()}.withDefaults()
}

// withDefaults fills zero fields with the documented defaults.
func (c FitConfig) withDefaults() FitConfig {
	if c.Precision == "" {
		c.Precision = machine.Double.String()
	}
	if c.LoIntensity == 0 {
		c.LoIntensity = defaultLoIntensity
	}
	if c.HiIntensity == 0 {
		c.HiIntensity = defaultHiIntensity
	}
	if c.Points == 0 {
		c.Points = defaultFitPoints
	}
	if c.Reps == 0 {
		c.Reps = defaultFitReps
	}
	if len(c.Volumes) == 0 {
		c.Volumes = defaultVolumes()
	}
	if c.Seed == 0 {
		c.Seed = defaultFitSeed
	}
	return c
}

// Fit-config bounds: syntactic sanity for the wire surface. The caps
// keep a hostile config from requesting an unbounded simulation
// campaign; Fit checks the machine against the catalog separately.
const (
	maxFitPoints  = 1 << 12
	maxFitReps    = 1 << 12
	maxFitVolumes = 16
	maxFitVolume  = 1 << 40 // 1 TiB of simulated traffic per run
)

// Validate reports whether the config describes a runnable fit. It is
// syntactic: the machine key's existence is checked by Fit, which has
// the catalog.
func (c FitConfig) Validate() error {
	if c.Machine == "" {
		return fmt.Errorf("model: fit config needs a machine")
	}
	if _, err := parsePrecision(c.Precision); err != nil {
		return err
	}
	if !(c.LoIntensity > 0) || math.IsInf(c.LoIntensity, 0) {
		return fmt.Errorf("model: lo_intensity must be positive and finite, got %g", c.LoIntensity)
	}
	if !(c.HiIntensity > c.LoIntensity) || math.IsInf(c.HiIntensity, 0) {
		return fmt.Errorf("model: hi_intensity must exceed lo_intensity %g, got %g", c.LoIntensity, c.HiIntensity)
	}
	if c.Points < 2 || c.Points > maxFitPoints {
		return fmt.Errorf("model: points must be in [2, %d], got %d", maxFitPoints, c.Points)
	}
	if c.Reps < 1 || c.Reps > maxFitReps {
		return fmt.Errorf("model: reps must be in [1, %d], got %d", maxFitReps, c.Reps)
	}
	if len(c.Volumes) < 2 || len(c.Volumes) > maxFitVolumes {
		return fmt.Errorf("model: volumes must list 2..%d sizes, got %d", maxFitVolumes, len(c.Volumes))
	}
	distinct := false
	for i, v := range c.Volumes {
		if !(v >= 1) || v > maxFitVolume {
			return fmt.Errorf("model: volume %d must be in [1, %d] bytes, got %g", i, int64(maxFitVolume), v)
		}
		if v != c.Volumes[0] {
			distinct = true
		}
	}
	if !distinct {
		return fmt.Errorf("model: volumes must include at least two distinct sizes (equal volumes leave the time intercept unidentified)")
	}
	return nil
}

// ParseFitConfig parses the JSON form strictly — unknown fields are
// rejected — fills defaults, and validates. It is the fuzzed entry
// point (FuzzModelConfig): any byte slice either round-trips to a
// config that Validate accepts, or errors.
func ParseFitConfig(data []byte) (FitConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c FitConfig
	if err := dec.Decode(&c); err != nil {
		return FitConfig{}, fmt.Errorf("model: parse fit config: %w", err)
	}
	if dec.More() {
		return FitConfig{}, fmt.Errorf("model: parse fit config: trailing data after JSON object")
	}
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return FitConfig{}, err
	}
	return c, nil
}

// parsePrecision maps the wire names to machine.Precision; the empty
// string means double, matching the rest of the repo's surfaces.
func parsePrecision(name string) (machine.Precision, error) {
	switch name {
	case "", "double":
		return machine.Double, nil
	case "single":
		return machine.Single, nil
	}
	return machine.Double, fmt.Errorf("model: unknown precision %q (want \"single\" or \"double\")", name)
}
