package model_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model/scorecard"
)

// update regenerates the golden scorecard artifact:
//
//	go test ./internal/model/ -run TestScorecardGolden -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenPath is the pinned full-catalog scorecard (CI-smoke sizes).
const goldenPath = "testdata/scorecard_golden.json"

// goldenConfig is the seed-locked configuration behind the committed
// golden. Changing any field — or the fit campaign, the simulator's
// noise streams, the regression, or the JSON encoding — invalidates the
// golden; regenerate with -update and review the diff.
func goldenConfig() scorecard.Config {
	return scorecard.Config{
		FitPoints:  5,
		FitReps:    3,
		EvalPoints: 9,
		EvalReps:   2,
	}
}

// TestScorecardGolden is the scorecard's determinism anchor: the
// full-catalog artifact must be byte-identical at every worker count
// AND across commits. Any change to the blackbox fit, the held-out
// measurement campaign, the error summaries, or the encoding shows up
// as a golden diff that has to be reviewed and re-pinned deliberately.
func TestScorecardGolden(t *testing.T) {
	var artifacts [][]byte
	for _, workers := range []int{1, 4, 16} {
		cfg := goldenConfig()
		cfg.Workers = workers
		sc, err := scorecard.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := sc.ToJSON()
		if err != nil {
			t.Fatalf("workers=%d: ToJSON: %v", workers, err)
		}
		artifacts = append(artifacts, data)
	}
	for i, data := range artifacts[1:] {
		if !bytes.Equal(artifacts[0], data) {
			t.Fatalf("artifact at workers=%d differs from workers=1", []int{4, 16}[i])
		}
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, artifacts[0], 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(artifacts[0]))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(want, artifacts[0]) {
		t.Fatalf("scorecard drifted from %s\nrun `go test ./internal/model/ -run TestScorecardGolden -update` after reviewing the change\ngot %d bytes, want %d", goldenPath, len(artifacts[0]), len(want))
	}
}
