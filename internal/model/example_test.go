package model_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/model"
)

// ExampleEnergyModel evaluates both registered models on one catalog
// machine. The analytic numbers are the paper's closed forms (eqs. 3-4
// via internal/core); the blackbox numbers come from a regression
// fitted on simulated measurements, so the two disagree exactly where
// the closed forms stop describing the machine (see docs/MODELS.md).
func ExampleEnergyModel() {
	for _, intensity := range []float64{0.25, 4} {
		k := core.KernelAt(1e9, intensity) // 1 Gflop
		for _, name := range model.Names() {
			em, err := model.For(name, "gtx580", machine.Double)
			if err != nil {
				panic(err)
			}
			fmt.Printf("I=%-5g %-9s time %.4f s  energy %.2f J  power %.1f W\n",
				intensity, em.Name(), em.Time(k), em.Energy(k), em.Power(k))
		}
	}
	// Output:
	// I=0.25  analytic  time 0.0208 s  energy 4.80 J  power 230.9 W
	// I=0.25  blackbox  time 0.0219 s  energy 4.91 J  power 224.1 W
	// I=4     analytic  time 0.0051 s  energy 0.96 J  power 189.2 W
	// I=4     blackbox  time 0.0051 s  energy 0.96 J  power 189.5 W
}
