// Operational telemetry for the long-lived services built on the model
// (cmd/rooflined): counters, gauges, and latency summaries collected in
// a registry that renders a plain-text exposition page. This
// complements the package's paper-facing figures of merit — the same
// package that ranks kernels by EDP also reports how the service
// evaluating them is behaving.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (in-flight requests, cache bytes),
// safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (use a negative delta to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// latencyBuckets is the number of log₂ histogram buckets; bucket i
// counts observations in [2ⁱ µs, 2ⁱ⁺¹ µs), spanning 1 µs to ~17 min.
const latencyBuckets = 30

// Latency is an online summary of observed durations: count, sum, max,
// and a log₂ histogram for quantile estimates. Safe for concurrent use.
type Latency struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	max     time.Duration
	buckets [latencyBuckets]uint64
}

// Observe records one duration.
func (l *Latency) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := 0
	if us := d.Microseconds(); us > 0 {
		b = int(math.Log2(float64(us)))
		if b >= latencyBuckets {
			b = latencyBuckets - 1
		}
	}
	l.mu.Lock()
	l.count++
	l.sum += d
	if d > l.max {
		l.max = d
	}
	l.buckets[b]++
	l.mu.Unlock()
}

// LatencySnapshot is a point-in-time read of a Latency.
type LatencySnapshot struct {
	// Count is the number of observations.
	Count uint64
	// Mean is the arithmetic mean duration (0 when Count is 0).
	Mean time.Duration
	// Max is the largest observation.
	Max time.Duration
	// P50 and P99 are histogram-estimated quantiles (upper bucket
	// edges, so they over-report by at most 2×).
	P50 time.Duration
	// P99 is the 99th-percentile estimate.
	P99 time.Duration
}

// Snapshot returns a consistent summary of the observations so far.
func (l *Latency) Snapshot() LatencySnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LatencySnapshot{Count: l.count, Max: l.max}
	if l.count == 0 {
		return s
	}
	s.Mean = l.sum / time.Duration(l.count)
	s.P50 = l.quantileLocked(0.50)
	s.P99 = l.quantileLocked(0.99)
	return s
}

// quantileLocked returns the upper edge of the bucket containing the
// q-quantile. Callers hold l.mu.
func (l *Latency) quantileLocked(q float64) time.Duration {
	rank := uint64(q * float64(l.count))
	var seen uint64
	for i, n := range l.buckets {
		seen += n
		if seen > rank {
			return time.Duration(1<<uint(i+1)) * time.Microsecond
		}
	}
	return l.max
}

// Registry is a named collection of counters, gauges, and latency
// summaries with a stable plain-text rendering, the backing store for a
// service's GET /metrics page. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	latencies map[string]*Latency
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		latencies: map[string]*Latency{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Latency returns the named latency summary, creating it on first use.
func (r *Registry) Latency(name string) *Latency {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.latencies[name]
	if !ok {
		l = &Latency{}
		r.latencies[name] = l
	}
	return l
}

// Render returns the exposition page: one "name value" line per metric,
// sorted by name so the output is diff-stable. Latencies expand into
// _count, _mean_seconds, _p50_seconds, _p99_seconds, and _max_seconds
// lines.
func (r *Registry) Render() string {
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+5*len(r.latencies))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, g.Value()))
	}
	snaps := make(map[string]LatencySnapshot, len(r.latencies))
	for name, l := range r.latencies {
		snaps[name] = l.Snapshot()
	}
	r.mu.Unlock()
	for name, s := range snaps {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, s.Count),
			fmt.Sprintf("%s_mean_seconds %.6f", name, s.Mean.Seconds()),
			fmt.Sprintf("%s_p50_seconds %.6f", name, s.P50.Seconds()),
			fmt.Sprintf("%s_p99_seconds %.6f", name, s.P99.Seconds()),
			fmt.Sprintf("%s_max_seconds %.6f", name, s.Max.Seconds()),
		)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
