// Operational telemetry for the long-lived services built on the model
// (cmd/rooflined): counters, gauges, and latency summaries collected in
// a registry that renders a plain-text exposition page. This
// complements the package's paper-facing figures of merit — the same
// package that ranks kernels by EDP also reports how the service
// evaluating them is behaving.
//
// Every observation path is lock-free: counters and gauges are single
// atomic words, latency summaries stripe their histogram over padded
// per-shard cells (sharded by a per-P hint, so concurrent observers
// land on different cache lines), and registry lookups read a sync.Map
// that only writes on first use of a name. A server can therefore
// account for every request without ever taking a lock on the hot
// path; only Render and Snapshot — the scrape-time readers — aggregate
// across shards.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (in-flight requests, cache bytes),
// safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (use a negative delta to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// latencyBuckets is the number of log₂ histogram buckets; bucket i
// counts observations in [2ⁱ µs, 2ⁱ⁺¹ µs), spanning 1 µs to ~17 min.
const latencyBuckets = 30

// latencyShards is the number of independent histogram cells one
// Latency stripes its observations over (power of two). Observers are
// spread across cells by a pooled per-P hint, so two cores recording
// latencies concurrently almost never contend on the same cache lines.
const latencyShards = 8

// latencyCell is one shard of a Latency: a full independent summary
// updated only with atomic operations. The trailing pad keeps adjacent
// cells on distinct cache lines so shards do not false-share.
type latencyCell struct {
	count   atomic.Uint64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [latencyBuckets]atomic.Uint64
	_       [64]byte // pad: no false sharing with the next cell
}

// observerHint hands out stable shard indices through a sync.Pool:
// Pool.Get serves from a per-P local cache, so one P keeps drawing the
// same hint (and therefore the same cell) without any shared-memory
// coordination, while distinct Ps spread round-robin across cells.
var observerHint = sync.Pool{New: func() any {
	h := new(uint32)
	*h = observerSeq.Add(1)
	return h
}}

// observerSeq seeds fresh observer hints round-robin.
var observerSeq atomic.Uint32

// Latency is an online summary of observed durations: count, sum, max,
// and a log₂ histogram for quantile estimates. Safe for concurrent
// use; Observe is lock-free (atomic updates on a per-P histogram
// shard). The zero value is ready to use.
type Latency struct {
	cells [latencyShards]latencyCell
}

// Observe records one duration.
func (l *Latency) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := 0
	if us := d.Microseconds(); us > 0 {
		b = int(math.Log2(float64(us)))
		if b >= latencyBuckets {
			b = latencyBuckets - 1
		}
	}
	h := observerHint.Get().(*uint32)
	c := &l.cells[*h&(latencyShards-1)]
	observerHint.Put(h)
	c.count.Add(1)
	c.sumNs.Add(int64(d))
	c.buckets[b].Add(1)
	for {
		cur := c.maxNs.Load()
		if int64(d) <= cur || c.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// LatencySnapshot is a point-in-time read of a Latency.
type LatencySnapshot struct {
	// Count is the number of observations.
	Count uint64
	// Mean is the arithmetic mean duration (0 when Count is 0).
	Mean time.Duration
	// Max is the largest observation.
	Max time.Duration
	// P50 and P99 are histogram-estimated quantiles (upper bucket
	// edges, so they over-report by at most 2×).
	P50 time.Duration
	// P99 is the 99th-percentile estimate.
	P99 time.Duration
}

// Snapshot returns a summary of the observations so far, aggregated
// across the histogram shards. Concurrent observers may land between
// the per-shard reads, so a snapshot taken under load is consistent to
// within the observations in flight; quiescent reads are exact.
func (l *Latency) Snapshot() LatencySnapshot {
	var count uint64
	var sum, max int64
	var buckets [latencyBuckets]uint64
	for i := range l.cells {
		c := &l.cells[i]
		count += c.count.Load()
		sum += c.sumNs.Load()
		if m := c.maxNs.Load(); m > max {
			max = m
		}
		for b := range c.buckets {
			buckets[b] += c.buckets[b].Load()
		}
	}
	s := LatencySnapshot{Count: count, Max: time.Duration(max)}
	if count == 0 {
		return s
	}
	s.Mean = time.Duration(sum) / time.Duration(count)
	s.P50 = quantile(&buckets, count, time.Duration(max), 0.50)
	s.P99 = quantile(&buckets, count, time.Duration(max), 0.99)
	return s
}

// quantile returns the upper edge of the bucket containing the
// q-quantile of the aggregated histogram.
func quantile(buckets *[latencyBuckets]uint64, count uint64, max time.Duration, q float64) time.Duration {
	rank := uint64(q * float64(count))
	var seen uint64
	for i, n := range buckets {
		seen += n
		if seen > rank {
			return time.Duration(1<<uint(i+1)) * time.Microsecond
		}
	}
	return max
}

// Registry is a named collection of counters, gauges, and latency
// summaries with a stable plain-text rendering, the backing store for a
// service's GET /metrics page. Lookups after a name's first use are
// lock-free sync.Map reads, so callers can resolve metrics by name on
// hot paths (though hoisting the pointer once is cheaper still). The
// zero value is not usable; call NewRegistry.
type Registry struct {
	counters  sync.Map // string -> *Counter
	gauges    sync.Map // string -> *Gauge
	latencies sync.Map // string -> *Latency
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.counters.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges.Load(name); ok {
		return g.(*Gauge)
	}
	g, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return g.(*Gauge)
}

// Latency returns the named latency summary, creating it on first use.
func (r *Registry) Latency(name string) *Latency {
	if l, ok := r.latencies.Load(name); ok {
		return l.(*Latency)
	}
	l, _ := r.latencies.LoadOrStore(name, &Latency{})
	return l.(*Latency)
}

// Render returns the exposition page: one "name value" line per metric,
// sorted by name so the output is diff-stable. Latencies expand into
// _count, _mean_seconds, _p50_seconds, _p99_seconds, and _max_seconds
// lines.
func (r *Registry) Render() string {
	var lines []string
	r.counters.Range(func(k, v any) bool {
		lines = append(lines, fmt.Sprintf("%s %d", k.(string), v.(*Counter).Value()))
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		lines = append(lines, fmt.Sprintf("%s %d", k.(string), v.(*Gauge).Value()))
		return true
	})
	r.latencies.Range(func(k, v any) bool {
		name, s := k.(string), v.(*Latency).Snapshot()
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, s.Count),
			fmt.Sprintf("%s_mean_seconds %.6f", name, s.Mean.Seconds()),
			fmt.Sprintf("%s_p50_seconds %.6f", name, s.P50.Seconds()),
			fmt.Sprintf("%s_p99_seconds %.6f", name, s.P99.Seconds()),
			fmt.Sprintf("%s_max_seconds %.6f", name, s.Max.Seconds()),
		)
		return true
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
