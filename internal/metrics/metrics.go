// Package metrics implements the composite time–energy figures of
// merit the paper surveys in §VI (Metrics): the energy–delay product
// family EDⁿP (Gonzalez & Horowitz; Bekas & Curioni's generalisation),
// flops per Joule (the Green500's FLOP/s per Watt), and a normalized
// machine-relative "green index"-style score. These let the model's
// outputs be ranked the way the energy-efficiency community ranks
// systems, and expose when optimizing a composite metric disagrees
// with optimizing time or energy alone.
package metrics

import (
	"errors"
	"math"

	"repro/internal/core"
)

// EDP returns the energy–delay product E·T in Joule-seconds.
func EDP(energy, time float64) float64 { return energy * time }

// EDnP returns the generalised energy–delay product E·Tⁿ; n = 0 is
// energy alone, n = 1 the classic EDP, n = 2 the delay-squared variant
// that weights performance more heavily.
func EDnP(energy, time float64, n int) (float64, error) {
	if n < 0 {
		return 0, errors.New("metrics: delay exponent must be non-negative")
	}
	return energy * math.Pow(time, float64(n)), nil
}

// FlopsPerJoule returns W/E — identical to sustained FLOP/s per Watt,
// the Green500 ranking metric.
func FlopsPerJoule(w, energy float64) float64 { return w / energy }

// Score evaluates all the figures of merit for kernel k on machine
// parameters p.
type Score struct {
	// Time and Energy are the model's eq. (3) and eq. (4) costs.
	Time, Energy float64
	// EDP and ED2P are E·T and E·T².
	EDP, ED2P float64
	// FlopsPerJoule is W/E.
	FlopsPerJoule float64
	// FlopsPerSecond is W/T.
	FlopsPerSecond float64
	// GreenIndex is the fraction of the machine's best possible
	// energy efficiency this kernel attains: (W/E)·ε̂flop ∈ (0, 1].
	GreenIndex float64
	// SpeedIndex is the analogous fraction of peak speed: (W/T)·τflop.
	SpeedIndex float64
}

// Evaluate computes the Score of kernel k under parameters p.
func Evaluate(p core.Params, k core.Kernel) (Score, error) {
	if k.W <= 0 {
		return Score{}, errors.New("metrics: kernel must have positive work")
	}
	t := p.Time(k)
	e := p.Energy(k)
	return Score{
		Time:           t,
		Energy:         e,
		EDP:            EDP(e, t),
		ED2P:           e * t * t,
		FlopsPerJoule:  k.W / e,
		FlopsPerSecond: k.W / t,
		GreenIndex:     (k.W / e) * p.EpsFlopHat(),
		SpeedIndex:     (k.W / t) * p.TauFlop,
	}, nil
}

// ScoreColumns holds the columnar figures of merit EvaluateBatch fills:
// column c, row i is the same number Evaluate would report for point i.
// Reusing one ScoreColumns value across calls reuses the storage.
type ScoreColumns struct {
	// Time and Energy are the eq. (3) and eq. (4) cost columns.
	Time, Energy []float64
	// EDP and ED2P are E·T and E·T² per point.
	EDP, ED2P []float64
	// FlopsPerJoule is W/E per point.
	FlopsPerJoule []float64
	// FlopsPerSecond is W/T per point.
	FlopsPerSecond []float64
	// GreenIndex is (W/E)·ε̂flop per point.
	GreenIndex []float64
	// SpeedIndex is (W/T)·τflop per point.
	SpeedIndex []float64
}

// grow returns s resized to length n, reusing capacity when possible.
func grow(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// Reserve sizes every column to n points, reusing existing capacity.
func (s *ScoreColumns) Reserve(n int) {
	s.Time = grow(s.Time, n)
	s.Energy = grow(s.Energy, n)
	s.EDP = grow(s.EDP, n)
	s.ED2P = grow(s.ED2P, n)
	s.FlopsPerJoule = grow(s.FlopsPerJoule, n)
	s.FlopsPerSecond = grow(s.FlopsPerSecond, n)
	s.GreenIndex = grow(s.GreenIndex, n)
	s.SpeedIndex = grow(s.SpeedIndex, n)
}

// EvaluateBatch computes every figure of merit over the (W, Q) columns
// in one pass, writing into out (sized via Reserve). Each column is
// bit-identical to a loop of Evaluate calls; like Evaluate, it rejects
// any point with non-positive work.
func EvaluateBatch(p core.Params, out *ScoreColumns, w, q []float64) error {
	if len(q) != len(w) {
		return errors.New("metrics: W and Q columns must have equal length")
	}
	for _, wi := range w {
		if wi <= 0 {
			return errors.New("metrics: kernel must have positive work")
		}
	}
	n := len(w)
	out.Reserve(n)
	tf, tm, ef, em, pi0 := p.TauFlop, p.TauMem, p.EpsFlop, p.EpsMem, p.Pi0
	efHat := p.EpsFlopHat()
	tc, ec := out.Time[:n], out.Energy[:n]
	edp, ed2p := out.EDP[:n], out.ED2P[:n]
	fpj, fps := out.FlopsPerJoule[:n], out.FlopsPerSecond[:n]
	gi, si := out.GreenIndex[:n], out.SpeedIndex[:n]
	w, q = w[:n], q[:n]
	for i := 0; i < n; i++ {
		wi, qi := w[i], q[i]
		t := math.Max(wi*tf, qi*tm)
		e := wi*ef + qi*em + pi0*t
		tc[i] = t
		ec[i] = e
		edp[i] = e * t
		ed2p[i] = e * t * t
		fpj[i] = wi / e
		fps[i] = wi / t
		gi[i] = (wi / e) * efHat
		si[i] = (wi / t) * tf
	}
	return nil
}

// BestIntensityFor returns the intensity in [lo, hi] that optimises the
// given EDⁿP exponent for a fixed-work kernel (lower EDⁿP is better),
// found on a dense log grid. For n = 0 (energy) the optimum is always
// hi — more intensity never hurts energy; for larger n the optimum
// still saturates at hi under this model, but the *gain* flattens past
// the relevant balance point, which Flatness reports.
func BestIntensityFor(p core.Params, w float64, n int, lo, hi float64) (float64, error) {
	if n < 0 {
		return 0, errors.New("metrics: delay exponent must be non-negative")
	}
	grid := core.LogGrid(lo, hi, 257)
	if grid == nil {
		return 0, errors.New("metrics: bad intensity range")
	}
	best, bestV := grid[0], math.Inf(1)
	for _, i := range grid {
		k := core.KernelAt(w, i)
		v, err := EDnP(p.Energy(k), p.Time(k), n)
		if err != nil {
			return 0, err
		}
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best, nil
}

// Flatness returns the ratio metric(I)/metric(2I) for the EDⁿP family:
// values near 1 mean more intensity no longer buys improvement (the
// kernel has passed the relevant balance point).
func Flatness(p core.Params, w, intensity float64, n int) (float64, error) {
	if intensity <= 0 {
		return 0, errors.New("metrics: intensity must be positive")
	}
	k1 := core.KernelAt(w, intensity)
	k2 := core.KernelAt(w, 2*intensity)
	v1, err := EDnP(p.Energy(k1), p.Time(k1), n)
	if err != nil {
		return 0, err
	}
	v2, err := EDnP(p.Energy(k2), p.Time(k2), n)
	if err != nil {
		return 0, err
	}
	return v2 / v1, nil
}
