package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machine"
)

func params() core.Params {
	return core.FromMachine(machine.GTX580(), machine.Double)
}

func TestEDPFamily(t *testing.T) {
	if EDP(2, 3) != 6 {
		t.Error("EDP")
	}
	v, err := EDnP(2, 3, 2)
	if err != nil || v != 18 {
		t.Errorf("ED2P = %v, %v", v, err)
	}
	v, err = EDnP(2, 3, 0)
	if err != nil || v != 2 {
		t.Errorf("ED0P = %v, %v", v, err)
	}
	if _, err := EDnP(1, 1, -1); err == nil {
		t.Error("negative exponent accepted")
	}
}

func TestEvaluateConsistency(t *testing.T) {
	p := params()
	k := core.KernelAt(1e9, 4)
	s, err := Evaluate(p, k)
	if err != nil {
		t.Fatal(err)
	}
	if s.Time != p.Time(k) || s.Energy != p.Energy(k) {
		t.Error("score disagrees with model")
	}
	if math.Abs(s.EDP-s.Energy*s.Time) > 1e-12*s.EDP {
		t.Error("EDP inconsistent")
	}
	if math.Abs(s.ED2P-s.Energy*s.Time*s.Time) > 1e-12*s.ED2P {
		t.Error("ED2P inconsistent")
	}
	if math.Abs(s.FlopsPerJoule-FlopsPerJoule(k.W, s.Energy)) > 1e-9 {
		t.Error("FlopsPerJoule inconsistent")
	}
	// Indices are fractions of the machine's bests.
	const ulp = 1e-12 // saturated indices may round just above 1
	if s.GreenIndex <= 0 || s.GreenIndex > 1+ulp {
		t.Errorf("GreenIndex = %v", s.GreenIndex)
	}
	if s.SpeedIndex <= 0 || s.SpeedIndex > 1+ulp {
		t.Errorf("SpeedIndex = %v", s.SpeedIndex)
	}
	// The indices are exactly the roofline/arch-line heights.
	if math.Abs(s.SpeedIndex-p.RooflineTime(4)) > 1e-12 {
		t.Errorf("SpeedIndex %v != roofline %v", s.SpeedIndex, p.RooflineTime(4))
	}
	if math.Abs(s.GreenIndex-p.ArchlineEnergy(4)) > 1e-12 {
		t.Errorf("GreenIndex %v != arch line %v", s.GreenIndex, p.ArchlineEnergy(4))
	}
	if _, err := Evaluate(p, core.Kernel{W: 0, Q: 1}); err == nil {
		t.Error("zero-work kernel accepted")
	}
}

func TestBestIntensitySaturates(t *testing.T) {
	p := params()
	for _, n := range []int{0, 1, 2} {
		best, err := BestIntensityFor(p, 1e9, n, 0.25, 64)
		if err != nil {
			t.Fatal(err)
		}
		// Under this model more intensity never hurts any EDⁿP, so the
		// optimum is the top of the range.
		if math.Abs(best-64) > 1e-6*64 {
			t.Errorf("n=%d: best intensity = %v, want 64", n, best)
		}
	}
	if _, err := BestIntensityFor(p, 1e9, -1, 0.25, 64); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := BestIntensityFor(p, 1e9, 1, 4, 2); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestFlatnessDetectsBalancePoints(t *testing.T) {
	p := params()
	// Deep in the memory-bound regime, doubling intensity halves both
	// time and energy (roughly): EDP flatness ≈ 1/4.
	f, err := Flatness(p, 1e9, p.BalanceTime()/16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f > 0.5 {
		t.Errorf("memory-bound EDP flatness = %v, want deep improvement", f)
	}
	// Far past both balance points, doubling intensity buys almost
	// nothing.
	f, err = Flatness(p, 1e9, 64*p.BalanceTime(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.95 || f > 1 {
		t.Errorf("compute-bound EDP flatness = %v, want ≈1", f)
	}
	if _, err := Flatness(p, 1e9, -1, 1); err == nil {
		t.Error("negative intensity accepted")
	}
	if _, err := Flatness(p, 1e9, 1, -1); err == nil {
		t.Error("negative exponent accepted")
	}
}

func TestPropMetricsMonotoneInIntensity(t *testing.T) {
	// For fixed work, all EDⁿP metrics are non-increasing in intensity:
	// shedding traffic can't hurt.
	p := params()
	f := func(ri float64, n uint8) bool {
		i := math.Exp2(math.Mod(ri, 8))
		nn := int(n % 3)
		v1, err1 := EDnP(p.Energy(core.KernelAt(1e9, i)), p.Time(core.KernelAt(1e9, i)), nn)
		v2, err2 := EDnP(p.Energy(core.KernelAt(1e9, 2*i)), p.Time(core.KernelAt(1e9, 2*i)), nn)
		return err1 == nil && err2 == nil && v2 <= v1*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMetricsDisagreeAcrossMachines(t *testing.T) {
	// A kernel can rank differently under speed and energy efficiency
	// across machines — the reason composite metrics exist. The GPU is
	// faster AND greener here; the indices (machine-relative) can still
	// disagree with the absolute metrics.
	gpu := core.FromMachine(machine.GTX580(), machine.Single)
	cpu := core.FromMachine(machine.CoreI7950(), machine.Single)
	k := core.KernelAt(1e9, 4)
	sg, err := Evaluate(gpu, k)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Evaluate(cpu, k)
	if err != nil {
		t.Fatal(err)
	}
	if sg.FlopsPerSecond <= sc.FlopsPerSecond {
		t.Error("GPU should be faster at I=4")
	}
	if sg.FlopsPerJoule <= sc.FlopsPerJoule {
		t.Error("GPU should be greener at I=4")
	}
	// But relative to its own peak, the CPU is closer to its roofline
	// at I=4 (its Bτ is 4.16 vs the GPU's 8.22).
	if sc.SpeedIndex <= sg.SpeedIndex {
		t.Error("CPU should be nearer its own roofline at I=4")
	}
}
