package metrics_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
)

// Score a kernel under the §VI figures of merit. The indices are the
// roofline and arch-line heights: fractions of the machine's bests.
func ExampleEvaluate() {
	p := core.FromMachine(machine.GTX580(), machine.Double)
	s, err := metrics.Evaluate(p, core.KernelAt(1e9, 4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("speed index: %.2f of peak\n", s.SpeedIndex)
	fmt.Printf("green index: %.2f of peak efficiency\n", s.GreenIndex)
	// Output:
	// speed index: 1.00 of peak
	// green index: 0.87 of peak efficiency
}
