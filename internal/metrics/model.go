package metrics

import (
	"errors"

	"repro/internal/core"
	"repro/internal/model"
)

// EvaluateModel computes the Score of kernel k with costs predicted by
// em. The machine-relative normalizers (GreenIndex's ε̂flop, SpeedIndex's
// τflop) always come from p — they are properties of the machine, not
// of whichever model predicts the kernel's cost. With an Analytic model
// over the same p this is bit-identical to Evaluate (pinned by test).
func EvaluateModel(em model.EnergyModel, p core.Params, k core.Kernel) (Score, error) {
	if k.W <= 0 {
		return Score{}, errors.New("metrics: kernel must have positive work")
	}
	t := em.Time(k)
	e := em.Energy(k)
	return Score{
		Time:           t,
		Energy:         e,
		EDP:            EDP(e, t),
		ED2P:           e * t * t,
		FlopsPerJoule:  k.W / e,
		FlopsPerSecond: k.W / t,
		GreenIndex:     (k.W / e) * p.EpsFlopHat(),
		SpeedIndex:     (k.W / t) * p.TauFlop,
	}, nil
}

// EvaluateBatchModel is EvaluateBatch through an EnergyModel: em fills
// b's cost columns (all six, so callers can also read the power and
// capped columns afterwards), and the figures of merit derive from
// them. With an Analytic model over the same p every column is
// bit-identical to EvaluateBatch — the fused loop there computes the
// same expressions in the same association order as core's EvalInto.
// A nil b uses a local scratch batch.
func EvaluateBatchModel(em model.EnergyModel, p core.Params, out *ScoreColumns, b *core.Batch, w, q []float64) error {
	if len(q) != len(w) {
		return errors.New("metrics: W and Q columns must have equal length")
	}
	for _, wi := range w {
		if wi <= 0 {
			return errors.New("metrics: kernel must have positive work")
		}
	}
	if b == nil {
		b = &core.Batch{}
	}
	n := len(w)
	em.EvalInto(b, w, q)
	out.Reserve(n)
	tf := p.TauFlop
	efHat := p.EpsFlopHat()
	tc, ec := out.Time[:n], out.Energy[:n]
	edp, ed2p := out.EDP[:n], out.ED2P[:n]
	fpj, fps := out.FlopsPerJoule[:n], out.FlopsPerSecond[:n]
	gi, si := out.GreenIndex[:n], out.SpeedIndex[:n]
	bt, be := b.Time[:n], b.Energy[:n]
	w = w[:n]
	for i := 0; i < n; i++ {
		wi := w[i]
		t := bt[i]
		e := be[i]
		tc[i] = t
		ec[i] = e
		edp[i] = e * t
		ed2p[i] = e * t * t
		fpj[i] = wi / e
		fps[i] = wi / t
		gi[i] = (wi / e) * efHat
		si[i] = (wi / t) * tf
	}
	return nil
}
