package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/model"
)

// modelTrialColumns returns deterministic pseudo-random (W, Q) columns
// spanning memory-bound through compute-bound kernels.
func modelTrialColumns(n int, seed int64) (w, q []float64) {
	rng := rand.New(rand.NewSource(seed))
	w = make([]float64, n)
	q = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = math.Pow(10, 3+10*rng.Float64())
		q[i] = w[i] / math.Pow(2, -6+14*rng.Float64())
	}
	return w, q
}

// TestEvaluateModelAnalyticLockstep pins the consumer-refactor
// guarantee at the metrics layer: Evaluate/EvaluateBatch and their
// EnergyModel counterparts with the default Analytic model agree
// bit-for-bit, scalar and columnar, across the catalog.
func TestEvaluateModelAnalyticLockstep(t *testing.T) {
	w, q := modelTrialColumns(256, 0x5C07E5)
	for key, m := range machine.Catalog() {
		for _, prec := range []machine.Precision{machine.Double, machine.Single} {
			p := core.FromMachine(m, prec)
			em := model.NewAnalytic(p)

			for i := range w {
				k := core.Kernel{W: w[i], Q: q[i]}
				direct, err := Evaluate(p, k)
				if err != nil {
					t.Fatal(err)
				}
				viaModel, err := EvaluateModel(em, p, k)
				if err != nil {
					t.Fatal(err)
				}
				if direct != viaModel {
					t.Fatalf("%s/%v kernel %d: EvaluateModel(analytic) != Evaluate:\n%+v\n%+v",
						key, prec, i, viaModel, direct)
				}
			}

			var direct, viaModel ScoreColumns
			if err := EvaluateBatch(p, &direct, w, q); err != nil {
				t.Fatal(err)
			}
			if err := EvaluateBatchModel(em, p, &viaModel, nil, w, q); err != nil {
				t.Fatal(err)
			}
			cols := map[string][2][]float64{
				"Time":           {direct.Time, viaModel.Time},
				"Energy":         {direct.Energy, viaModel.Energy},
				"EDP":            {direct.EDP, viaModel.EDP},
				"ED2P":           {direct.ED2P, viaModel.ED2P},
				"FlopsPerJoule":  {direct.FlopsPerJoule, viaModel.FlopsPerJoule},
				"FlopsPerSecond": {direct.FlopsPerSecond, viaModel.FlopsPerSecond},
				"GreenIndex":     {direct.GreenIndex, viaModel.GreenIndex},
				"SpeedIndex":     {direct.SpeedIndex, viaModel.SpeedIndex},
			}
			for name, pair := range cols {
				for i := range w {
					if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
						t.Fatalf("%s/%v %s[%d]: batch-model %v != batch %v",
							key, prec, name, i, pair[1][i], pair[0][i])
					}
				}
			}
		}
	}
}

// TestEvaluateModelErrors mirrors the scalar/batch error contract.
func TestEvaluateModelErrors(t *testing.T) {
	p := core.FromMachine(machine.GTX580(), machine.Double)
	em := model.NewAnalytic(p)
	if _, err := EvaluateModel(em, p, core.Kernel{W: 0, Q: 1}); err == nil {
		t.Error("zero work accepted")
	}
	var sc ScoreColumns
	if err := EvaluateBatchModel(em, p, &sc, nil, []float64{1e9}, []float64{1e8, 1}); err == nil {
		t.Error("ragged columns accepted")
	}
	if err := EvaluateBatchModel(em, p, &sc, nil, []float64{-1}, []float64{1}); err == nil {
		t.Error("negative work accepted")
	}
}

// TestEvaluateBatchModelFillsBatch verifies the caller-visible batch:
// all six cost columns arrive filled, so consumers (the server's
// evalbatch) can read power and capped columns after one call.
func TestEvaluateBatchModelFillsBatch(t *testing.T) {
	p := core.FromMachine(machine.GTX580(), machine.Double)
	em := model.NewAnalytic(p)
	w, q := modelTrialColumns(16, 1)
	var sc ScoreColumns
	var b core.Batch
	if err := EvaluateBatchModel(em, p, &sc, &b, w, q); err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(w) {
		t.Fatalf("batch holds %d points, want %d", b.Len(), len(w))
	}
	for i := range w {
		k := core.Kernel{W: w[i], Q: q[i]}
		if math.Float64bits(b.Power[i]) != math.Float64bits(p.AveragePower(k)) {
			t.Fatalf("Power[%d] = %v, want %v", i, b.Power[i], p.AveragePower(k))
		}
		if math.Float64bits(b.CappedTime[i]) != math.Float64bits(p.CappedTime(k)) {
			t.Fatalf("CappedTime[%d] = %v, want %v", i, b.CappedTime[i], p.CappedTime(k))
		}
	}
}
