package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("requests_total") != c {
		t.Error("Counter not idempotent per name")
	}
	g := r.Gauge("inflight")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
}

func TestLatencySnapshot(t *testing.T) {
	var l Latency
	for _, d := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 100 * time.Millisecond,
	} {
		l.Observe(d)
	}
	s := l.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if s.Mean != 23*time.Millisecond {
		t.Errorf("mean = %v, want 23ms", s.Mean)
	}
	// The log₂ histogram reports the upper bucket edge, so the median
	// estimate must bracket the true 4 ms within one bucket (2×).
	if s.P50 < 4*time.Millisecond || s.P50 > 8*time.Millisecond {
		t.Errorf("p50 = %v, want within [4ms, 8ms]", s.P50)
	}
	if s.P99 < 100*time.Millisecond {
		t.Errorf("p99 = %v, want >= max bucket edge of the 100ms sample", s.P99)
	}
	// Negative and sub-microsecond observations land in bucket 0.
	var tiny Latency
	tiny.Observe(-time.Second)
	tiny.Observe(200 * time.Nanosecond)
	if got := tiny.Snapshot(); got.Count != 2 || got.Max != 200*time.Nanosecond {
		t.Errorf("tiny snapshot = %+v", got)
	}
}

func TestRegistryRenderSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Inc()
	r.Gauge("cache_bytes").Set(1024)
	r.Latency("latency_eval").Observe(3 * time.Millisecond)
	out := r.Render()
	for _, want := range []string{
		"a_total 1", "b_total 2", "cache_bytes 1024",
		"latency_eval_count 1", "latency_eval_p99_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if ai, bi := strings.Index(out, "a_total"), strings.Index(out, "b_total"); ai > bi {
		t.Error("render not sorted")
	}
	if out != r.Render() {
		t.Error("render not stable across calls")
	}
}

// TestRegistryConcurrentUse exercises get-or-create and observation
// under the race detector.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("hits_total").Inc()
				r.Gauge("level").Add(1)
				r.Latency("lat").Observe(time.Duration(i) * time.Microsecond)
				_ = r.Render()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != 1600 {
		t.Errorf("hits = %d, want 1600", got)
	}
	if got := r.Latency("lat").Snapshot().Count; got != 1600 {
		t.Errorf("observations = %d, want 1600", got)
	}
}
