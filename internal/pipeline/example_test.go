package pipeline_test

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/pipeline"
)

// A Horner chain with a single element in flight is latency-bound at
// exactly 2 flops per FMA-latency cycles; a full window reaches the
// issue roofline.
func ExampleSimulate() {
	prog, err := microbench.GeneratePolynomial(64, 1024, machine.Single)
	if err != nil {
		panic(err)
	}
	starved := pipeline.NehalemLike()
	starved.Window = 1
	r1, err := pipeline.Simulate(prog, starved)
	if err != nil {
		panic(err)
	}
	full := pipeline.NehalemLike()
	r2, err := pipeline.Simulate(prog, full)
	if err != nil {
		panic(err)
	}
	fmt.Printf("window 1:  %s-bound\n", r1.Bound)
	fmt.Printf("window 64: %s-bound\n", r2.Bound)
	// Output:
	// window 1:  latency-bound
	// window 64: issue-bound
}
