package pipeline

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/stats"
)

func poly(t *testing.T, degree, n int) microbench.Program {
	t.Helper()
	p, err := microbench.GeneratePolynomial(degree, n, machine.Single)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	good := NehalemLike()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mods := []func(*Config){
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.FMALatency = 0 },
		func(c *Config) { c.LoadLatency = 0 },
		func(c *Config) { c.MaxOutstanding = 0 },
		func(c *Config) { c.BytesPerCycle = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.Window = -1 },
	}
	for i, mod := range mods {
		c := NehalemLike()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mod %d accepted", i)
		}
	}
	if _, err := Simulate(microbench.Program{}, good); err == nil {
		t.Error("empty program accepted")
	}
	bad := NehalemLike()
	bad.IssueWidth = 0
	if _, err := Simulate(poly(t, 4, 16), bad); err == nil {
		t.Error("invalid config accepted by Simulate")
	}
}

func TestIssueBoundReachesPeak(t *testing.T) {
	// A deep Horner body with a full window of independent elements
	// saturates issue: achieved rate ≈ 2·width·clock.
	cfg := NehalemLike()
	r, err := Simulate(poly(t, 64, 4096), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound != IssueBound {
		t.Fatalf("bound = %s, want issue (%v)", r.Bound, r)
	}
	// The body is 1 load per 64 FMAs, so ~98% of slots are flops.
	if frac := r.FlopRate / cfg.PeakFlopRate(); frac < 0.95 || frac > 1.0 {
		t.Errorf("achieved %.3f of the issue roofline", frac)
	}
	if r.IssueUtilization < 0.95 {
		t.Errorf("issue utilization = %v", r.IssueUtilization)
	}
}

func TestLatencyBoundMatchesChainArithmetic(t *testing.T) {
	// One element in flight: the Horner chain serialises completely and
	// the rate is exactly 2 flops per FMALatency cycles.
	cfg := NehalemLike()
	cfg.Window = 1
	r, err := Simulate(poly(t, 64, 512), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound != LatencyBound {
		t.Fatalf("bound = %s, want latency (%v)", r.Bound, r)
	}
	want := 2.0 / float64(cfg.FMALatency) * cfg.ClockHz
	if stats.RelErr(r.FlopRate, want) > 0.05 {
		t.Errorf("latency-bound rate %v, want ≈%v", r.FlopRate, want)
	}
}

func TestWindowSweepRecoversRoofline(t *testing.T) {
	// Growing the window (thread pool) walks the rate from the latency
	// floor to the issue roofline — the "sufficient concurrency"
	// assumption of the paper's footnote 2 made visible.
	cfg := NehalemLike()
	prev := 0.0
	for _, w := range []int{1, 2, 4, 8, 16} {
		cfg.Window = w
		r, err := Simulate(poly(t, 32, 2048), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.FlopRate < prev*0.98 {
			t.Errorf("window %d: rate %v regressed from %v", w, r.FlopRate, prev)
		}
		prev = r.FlopRate
	}
	if prev < NehalemLike().PeakFlopRate()*0.8 {
		t.Errorf("window 16 should be near the roofline, got %v", prev)
	}
}

func TestBandwidthBound(t *testing.T) {
	// 8 loads per FMA saturates the bus; the achieved bandwidth is the
	// bus width times the fraction a narrow scalar load can use
	// (4-byte loads on an 8-byte bus: one transfer per cycle).
	cfg := NehalemLike()
	m, err := microbench.GenerateFMAMix(1, 8, 4096, machine.Single)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound != BandwidthBound {
		t.Fatalf("bound = %s, want bandwidth (%v)", r.Bound, r)
	}
	if r.BusUtilization < 0.95 {
		t.Errorf("bus utilization = %v", r.BusUtilization)
	}
	// One 4-byte transfer per cycle.
	want := 4 * cfg.ClockHz
	if stats.RelErr(r.Bandwidth, want) > 0.05 {
		t.Errorf("bandwidth %v, want ≈%v", r.Bandwidth, want)
	}
	// Double-precision words use the full 8-byte bus.
	md, err := microbench.GenerateFMAMix(1, 8, 4096, machine.Double)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Simulate(md, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(rd.Bandwidth, cfg.PeakBandwidth()) > 0.05 {
		t.Errorf("DP bandwidth %v, want ≈bus peak %v", rd.Bandwidth, cfg.PeakBandwidth())
	}
}

func TestMLPBoundMatchesLittlesLaw(t *testing.T) {
	// One outstanding load on a wide bus: each load takes
	// busCycles + LoadLatency round trip, so bandwidth = word/roundtrip.
	cfg := NehalemLike()
	cfg.MaxOutstanding = 1
	cfg.BytesPerCycle = 64
	m, err := microbench.GenerateFMAMix(1, 8, 2048, machine.Single)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound != MLPBound {
		t.Fatalf("bound = %s, want mlp (%v)", r.Bound, r)
	}
	roundtrip := 1.0 + float64(cfg.LoadLatency) // 1 bus cycle + latency
	want := 4.0 / roundtrip * cfg.ClockHz
	if stats.RelErr(r.Bandwidth, want) > 0.05 {
		t.Errorf("MLP-bound bandwidth %v, want ≈%v (Little's law)", r.Bandwidth, want)
	}
}

func TestStoresConsumeBus(t *testing.T) {
	// An explicit store stream occupies the bus like loads do.
	prog := microbench.Program{
		Body:      []microbench.Op{microbench.OpLoad, microbench.OpFMA, microbench.OpStore},
		Elements:  2048,
		Precision: machine.Double,
	}
	r, err := Simulate(prog, NehalemLike())
	if err != nil {
		t.Fatal(err)
	}
	// Two 8-byte transfers per 1 FMA: memory dominates.
	if r.Bound != BandwidthBound {
		t.Errorf("store-heavy body should be bandwidth-bound: %v", r)
	}
}

func TestExtrapolationConsistency(t *testing.T) {
	// A program larger than the simulation cap extrapolates at the
	// steady-state rate: doubling Elements ≈ doubles cycles.
	cfg := NehalemLike()
	a, err := Simulate(poly(t, 16, 100000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(poly(t, 16, 200000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(b.Cycles/a.Cycles, 2) > 0.02 {
		t.Errorf("cycle extrapolation not linear: %v vs %v", a.Cycles, b.Cycles)
	}
}

func TestAchievedFractionsPlausible(t *testing.T) {
	// The cycle model grounds the achieved fractions machine
	// descriptions carry: high for compute (deep ILP window), and a
	// word-width-limited fraction for single-precision bandwidth.
	ff, bf, err := AchievedFractions(NehalemLike(), machine.Single)
	if err != nil {
		t.Fatal(err)
	}
	if ff < 0.9 || ff > 1 {
		t.Errorf("compute fraction = %v", ff)
	}
	if bf < 0.4 || bf > 0.6 {
		t.Errorf("SP bandwidth fraction = %v (4-byte loads on an 8-byte bus)", bf)
	}
	ffd, bfd, err := AchievedFractions(NehalemLike(), machine.Double)
	if err != nil {
		t.Fatal(err)
	}
	if bfd < 0.9 {
		t.Errorf("DP bandwidth fraction = %v", bfd)
	}
	if ffd <= 0 {
		t.Error("DP compute fraction must be positive")
	}
}

func TestFermiLikeHasDeeperWindowNeeds(t *testing.T) {
	// Long GPU pipelines need many threads: at window 1 the GPU config
	// is far more latency-starved than the CPU config.
	p := poly(t, 32, 1024)
	gpu := FermiLike()
	gpu.Window = 1
	cpu := NehalemLike()
	cpu.Window = 1
	rg, err := Simulate(p, gpu)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Simulate(p, cpu)
	if err != nil {
		t.Fatal(err)
	}
	fracG := rg.FlopRate / gpu.PeakFlopRate()
	fracC := rc.FlopRate / cpu.PeakFlopRate()
	if fracG >= fracC {
		t.Errorf("GPU at window 1 should be more starved: %v vs %v", fracG, fracC)
	}
	// With its full window the GPU recovers.
	full := FermiLike()
	rfull, err := Simulate(p, full)
	if err != nil {
		t.Fatal(err)
	}
	if rfull.FlopRate/full.PeakFlopRate() < 0.8 {
		t.Errorf("GPU with full window = %v of peak", rfull.FlopRate/full.PeakFlopRate())
	}
}

func TestResultString(t *testing.T) {
	r, err := Simulate(poly(t, 8, 256), NehalemLike())
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, want := range []string{"cycles", "GFLOP/s", "GB/s", "bound"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := poly(t, 16, 512)
	a, err := Simulate(p, NehalemLike())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, NehalemLike())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.FlopRate != b.FlopRate {
		t.Error("simulation must be deterministic")
	}
}

func TestRooflineCrossoverInPipelineModel(t *testing.T) {
	// Sweep intensity through the generated kernels: low intensity is
	// bandwidth-bound, high is issue-bound, with the crossover near the
	// configuration's own balance point
	// Bτ(cfg) = PeakFlopRate/PeakBandwidth (flops per byte).
	cfg := NehalemLike()
	bt := cfg.PeakFlopRate() / cfg.PeakBandwidth() // ≈ 0.75 flop/byte... scaled by word use
	var lastBound Bound
	crossed := false
	for _, fmas := range []int{1, 2, 4, 8, 16, 64} {
		m, err := microbench.GenerateFMAMix(fmas, 4, 2048, machine.Double)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Simulate(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if lastBound == BandwidthBound && r.Bound == IssueBound {
			crossed = true
		}
		lastBound = r.Bound
	}
	if !crossed && lastBound != IssueBound {
		t.Errorf("no bandwidth→issue crossover observed (Bτ(cfg) = %v)", bt)
	}
}
