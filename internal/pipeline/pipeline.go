// Package pipeline is a cycle-level timing model for the generated
// microbenchmark kernels: an in-order-issue, out-of-order-completion
// scoreboard over the instruction stream, with an issue-width limit, a
// floating-point latency, a bounded number of outstanding loads
// (memory-level parallelism), and a memory bus of finite bytes per
// cycle.
//
// It explains, from first principles, the achieved-fraction-of-peak
// structure the paper's §IV-B measurements exhibit and the higher-level
// simulator (internal/sim) parameterises: a Horner-chain body with too
// little independent work is latency-bound; enough independent elements
// in flight make it issue-bound (the compute roofline); load-heavy
// bodies saturate the bus (the bandwidth roofline) or the MLP limit
// (the concurrency refinement of internal/core).
package pipeline

import (
	"errors"
	"fmt"

	"repro/internal/machine"
	"repro/internal/microbench"
)

// Config describes the core and memory system.
type Config struct {
	// IssueWidth is the number of instructions issued per cycle.
	IssueWidth int
	// FMALatency is the floating-point dependency latency in cycles.
	FMALatency int
	// LoadLatency is the load-use latency in cycles (cache-hit class).
	LoadLatency int
	// MaxOutstanding bounds in-flight loads (MLP).
	MaxOutstanding int
	// BytesPerCycle is the memory bus width toward the core.
	BytesPerCycle float64
	// ClockHz converts cycles to seconds.
	ClockHz float64
	// Window is the number of independent elements simulated
	// concurrently (the thread/SIMD pool). Default 64.
	Window int
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.IssueWidth < 1 {
		return errors.New("pipeline: issue width must be >= 1")
	}
	if c.FMALatency < 1 || c.LoadLatency < 1 {
		return errors.New("pipeline: latencies must be >= 1")
	}
	if c.MaxOutstanding < 1 {
		return errors.New("pipeline: need at least one outstanding load")
	}
	if c.BytesPerCycle <= 0 {
		return errors.New("pipeline: bus width must be positive")
	}
	if c.ClockHz <= 0 {
		return errors.New("pipeline: clock must be positive")
	}
	if c.Window < 0 {
		return errors.New("pipeline: negative window")
	}
	return nil
}

// NehalemLike returns a plausible configuration for one Core i7-950
// class core: 3-wide issue, 5-cycle FP latency, 10 outstanding misses,
// ~8 bytes/cycle toward one core at 3.07 GHz.
func NehalemLike() Config {
	return Config{
		IssueWidth:     3,
		FMALatency:     5,
		LoadLatency:    4,
		MaxOutstanding: 10,
		BytesPerCycle:  8,
		ClockHz:        3.07e9,
		Window:         64,
	}
}

// FermiLike returns a plausible configuration for one Fermi-class SM:
// dual-issue, long pipeline, deep MLP, wide bus share, 1.54 GHz shader
// clock, large thread window.
func FermiLike() Config {
	return Config{
		IssueWidth:     2,
		FMALatency:     18,
		LoadLatency:    24,
		MaxOutstanding: 48,
		BytesPerCycle:  12,
		ClockHz:        1.544e9,
		Window:         256,
	}
}

// Bound labels the simulated bottleneck.
type Bound string

const (
	// IssueBound: the issue width is saturated — the compute roofline.
	IssueBound Bound = "issue"
	// LatencyBound: dependency chains stall issue.
	LatencyBound Bound = "latency"
	// BandwidthBound: the memory bus is saturated.
	BandwidthBound Bound = "bandwidth"
	// MLPBound: the outstanding-load limit stalls issue.
	MLPBound Bound = "mlp"
)

// Result is the simulation outcome.
type Result struct {
	// Cycles is the total simulated cycle count for the whole program.
	Cycles float64
	// Time is Cycles/ClockHz.
	Time float64
	// Flops and Bytes are the program's totals.
	Flops, Bytes float64
	// FlopRate and Bandwidth are achieved rates (FLOP/s, B/s).
	FlopRate, Bandwidth float64
	// IssueUtilization is issued-slots / (cycles × width).
	IssueUtilization float64
	// BusUtilization is bus-busy-cycles / cycles.
	BusUtilization float64
	// Bound is the diagnosed bottleneck.
	Bound Bound
	// stallLatency / stallMLP count issue opportunities lost to each.
	stallLatency, stallMLP float64
}

// elemState tracks one in-flight element's progress.
type elemState struct {
	elem     int   // element index
	next     int   // next op index in the body
	fmaReady int64 // cycle the last FMA result is ready
	ldReady  int64 // cycle the most recent load's value is ready
	done     bool
}

// Simulate runs the program through the scoreboard. The body executes
// in order per element; elements are independent and fill the window.
func Simulate(prog microbench.Program, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window == 0 {
		cfg.Window = 64
	}
	if len(prog.Body) == 0 || prog.Elements < 1 {
		return nil, errors.New("pipeline: empty program")
	}
	// Simulate up to maxSim elements exactly, then extrapolate at the
	// steady-state rate — the tail of a long kernel is periodic.
	const maxSim = 2048
	simElems := prog.Elements
	if simElems > maxSim {
		simElems = maxSim
	}
	wordBytes := float64(prog.Precision.WordSize())
	busCycles := int64(wordBytes/cfg.BytesPerCycle + 0.999999)
	if busCycles < 1 {
		busCycles = 1
	}

	res := &Result{}
	var (
		now        int64
		busFree    int64
		inflight   int
		issuedOps  float64
		busBusy    float64
		nextElem   int
		active     []*elemState
		completedE int
	)
	// loadDone holds completion times of in-flight loads so slots free.
	var loadDone []int64

	refill := func() {
		for len(active) < cfg.Window && nextElem < simElems {
			active = append(active, &elemState{elem: nextElem, fmaReady: -1, ldReady: -1})
			nextElem++
		}
	}
	refill()

	for completedE < simElems {
		// Free load slots whose data has arrived.
		kept := loadDone[:0]
		for _, t := range loadDone {
			if t > now {
				kept = append(kept, t)
			} else {
				inflight--
			}
		}
		loadDone = kept

		budget := cfg.IssueWidth
		progress := false
		stalledLatency := false
		stalledMLP := false
		for _, st := range active {
			if budget == 0 {
				break
			}
			if st.done {
				continue
			}
			op := prog.Body[st.next]
			switch op {
			case microbench.OpLoad:
				if inflight >= cfg.MaxOutstanding {
					stalledMLP = true
					continue
				}
				// The bus serialises transfers.
				start := now
				if busFree > start {
					start = busFree
				}
				// Issue occupies a slot this cycle; data arrives after
				// bus transfer + load latency.
				busFree = start + busCycles
				busBusy += float64(busCycles)
				doneAt := busFree + int64(cfg.LoadLatency)
				st.ldReady = doneAt
				inflight++
				loadDone = append(loadDone, doneAt)
			case microbench.OpFMA:
				// Depends on the element's previous FMA and its most
				// recent load.
				if st.fmaReady > now || st.ldReady > now {
					stalledLatency = true
					continue
				}
				st.fmaReady = now + int64(cfg.FMALatency)
			case microbench.OpStore:
				if st.fmaReady > now {
					stalledLatency = true
					continue
				}
				start := now
				if busFree > start {
					start = busFree
				}
				busFree = start + busCycles
				busBusy += float64(busCycles)
			}
			st.next++
			issuedOps++
			budget--
			progress = true
			if st.next == len(prog.Body) {
				st.done = true
				completedE++
			}
		}
		if budget > 0 {
			if stalledLatency {
				res.stallLatency += float64(budget)
			}
			if stalledMLP {
				res.stallMLP += float64(budget)
			}
		}
		// Compact finished elements and refill the window.
		if progress {
			keptA := active[:0]
			for _, st := range active {
				if !st.done {
					keptA = append(keptA, st)
				}
			}
			active = keptA
			refill()
		}
		now++
	}

	// Drain: the last results land after the final issue.
	drain := int64(cfg.FMALatency)
	if l := int64(cfg.LoadLatency) + busCycles; l > drain {
		drain = l
	}
	simCycles := float64(now) + float64(drain)

	// Extrapolate to the full element count at the simulated rate.
	scale := float64(prog.Elements) / float64(simElems)
	res.Cycles = simCycles * scale
	res.Time = res.Cycles / cfg.ClockHz
	res.Flops, res.Bytes = prog.Counts()
	res.FlopRate = res.Flops / res.Time
	res.Bandwidth = res.Bytes / res.Time
	res.IssueUtilization = issuedOps / (float64(now) * float64(cfg.IssueWidth))
	res.BusUtilization = busBusy / float64(now)
	res.Bound = diagnose(res)
	return res, nil
}

func diagnose(r *Result) Bound {
	switch {
	case r.BusUtilization > 0.85:
		return BandwidthBound
	case r.IssueUtilization > 0.85:
		return IssueBound
	case r.stallMLP > r.stallLatency:
		return MLPBound
	default:
		return LatencyBound
	}
}

// PeakFlopRate returns the configuration's compute roofline in FLOP/s:
// every issue slot an FMA (2 flops).
func (c Config) PeakFlopRate() float64 {
	return 2 * float64(c.IssueWidth) * c.ClockHz
}

// PeakBandwidth returns the configuration's bandwidth roofline in B/s.
func (c Config) PeakBandwidth() float64 {
	return c.BytesPerCycle * c.ClockHz
}

// AchievedFractions runs a strongly compute-bound and a strongly
// memory-bound kernel at the given precision and reports the fractions
// of the configuration's own rooflines they reach — the quantity
// machine.PrecisionParams carries as Achieved*Frac.
func AchievedFractions(cfg Config, prec machine.Precision) (flopFrac, bwFrac float64, err error) {
	compute, err := microbench.GeneratePolynomial(64, 1<<14, prec)
	if err != nil {
		return 0, 0, err
	}
	rc, err := Simulate(compute, cfg)
	if err != nil {
		return 0, 0, err
	}
	memory, err := microbench.GenerateFMAMix(1, 8, 1<<14, prec)
	if err != nil {
		return 0, 0, err
	}
	rm, err := Simulate(memory, cfg)
	if err != nil {
		return 0, 0, err
	}
	return rc.FlopRate / cfg.PeakFlopRate(), rm.Bandwidth / cfg.PeakBandwidth(), nil
}

// String renders the result compactly.
func (r *Result) String() string {
	return fmt.Sprintf("%.0f cycles, %.3g GFLOP/s, %.3g GB/s, issue %.0f%%, bus %.0f%%, %s-bound",
		r.Cycles, r.FlopRate/1e9, r.Bandwidth/1e9,
		r.IssueUtilization*100, r.BusUtilization*100, r.Bound)
}
