package campaign

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden artifact: go test ./internal/campaign -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenConfig is the seed-locked configuration behind the committed
// golden artifact. Changing any field (or the derivation scheme in
// stats.DeriveSeed) invalidates the golden; regenerate with -update and
// review the diff.
func goldenConfig() Config {
	c := Default()
	c.Machines = []string{"gtx580", "i7-950"}
	c.Points = 5
	c.Reps = 4
	c.VolumeBytes = 1 << 26
	c.Seed = 1234
	return c
}

// marshalResult renders a Result the way the golden stores it.
func marshalResult(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := res.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenDeterminismAcrossWorkerCounts is the acceptance test for
// the parallel campaign engine: the marshalled Result must be
// byte-identical at workers 1, 2 and 8, and must match the committed
// seed-locked golden file.
func TestGoldenDeterminismAcrossWorkerCounts(t *testing.T) {
	cfg := goldenConfig()
	outputs := map[int][]byte{}
	for _, workers := range []int{1, 2, 8} {
		res, err := RunParallel(nil, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		outputs[workers] = marshalResult(t, res)
	}
	for _, workers := range []int{2, 8} {
		if !bytes.Equal(outputs[workers], outputs[1]) {
			t.Errorf("workers=%d result differs from sequential run", workers)
		}
	}

	golden := filepath.Join("testdata", "campaign_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, outputs[1], 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(outputs[1]))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(outputs[1], want) {
		t.Errorf("campaign output no longer matches %s; if the change is intentional, regenerate with -update and review the diff", golden)
	}
}

// TestPowerMonPathWorkerInvariance covers the monitored measurement
// path, whose per-task monitor forks must be just as order-independent
// as the bare simulation.
func TestPowerMonPathWorkerInvariance(t *testing.T) {
	cfg := goldenConfig()
	cfg.Machines = []string{"i7-950"}
	cfg.UsePowerMon = true
	cfg.VolumeBytes = 1 << 28 // long enough runs for the sampler
	var want []byte
	for _, workers := range []int{1, 4} {
		res, err := RunParallel(nil, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := marshalResult(t, res)
		if workers == 1 {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Errorf("workers=%d powermon-path result differs from sequential run", workers)
		}
	}
}
