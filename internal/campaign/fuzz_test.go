package campaign

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// FuzzParseConfig drives adversarial JSON through the config parser.
// The properties pinned here: ParseConfig never panics; any config it
// accepts passes Validate, survives a JSON round-trip unchanged, and
// carries grid sizes small enough that Run cannot be tricked into
// allocating unbounded memory.
func FuzzParseConfig(f *testing.F) {
	// Seed corpus: the default config, plus representative malformed,
	// boundary and adversarial documents.
	if def, err := json.Marshal(Default()); err == nil {
		f.Add(def)
	}
	for _, seed := range []string{
		``,
		`{}`,
		`not json`,
		`null`,
		`[1,2,3]`,
		`{"machines":["gtx580"],"lo_intensity":0.25,"hi_intensity":64,"points":11,"reps":50,"volume_bytes":268435456,"seed":42}`,
		`{"machines":[],"lo_intensity":1,"hi_intensity":2,"points":4,"reps":1,"volume_bytes":1}`,
		`{"machines":["nope"],"lo_intensity":1,"hi_intensity":2,"points":4,"reps":1,"volume_bytes":1}`,
		`{"machines":["gtx580"],"lo_intensity":-1,"hi_intensity":2,"points":4,"reps":1,"volume_bytes":1}`,
		`{"machines":["gtx580"],"lo_intensity":64,"hi_intensity":0.25,"points":4,"reps":1,"volume_bytes":1}`,
		`{"machines":["gtx580"],"lo_intensity":1,"hi_intensity":2,"points":-3,"reps":1,"volume_bytes":1}`,
		`{"machines":["gtx580"],"lo_intensity":1,"hi_intensity":2,"points":99999999,"reps":1,"volume_bytes":1}`,
		`{"machines":["gtx580"],"lo_intensity":1,"hi_intensity":2,"points":4,"reps":99999999,"volume_bytes":1}`,
		`{"machines":["gtx580"],"lo_intensity":1e999,"hi_intensity":2,"points":4,"reps":1,"volume_bytes":1}`,
		`{"machines":["gtx580"],"lo_intensity":1,"hi_intensity":2,"points":4,"reps":1,"volume_bytes":-1}`,
		`{"machines":["gtx580"],"seed":-9223372036854775808,"lo_intensity":1,"hi_intensity":2,"points":4,"reps":1,"volume_bytes":1}`,
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return // rejected input; the only requirement is no panic
		}
		// Accepted configs must satisfy every validation invariant...
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseConfig accepted a config Validate rejects: %v\n%s", err, data)
		}
		if math.IsNaN(cfg.LoIntensity) || math.IsInf(cfg.HiIntensity, 0) ||
			cfg.Points > 1<<16 || cfg.Reps > 1<<20 {
			t.Fatalf("adversarial numeric field survived validation: %+v", cfg)
		}
		// ...and round-trip through JSON without drift.
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("accepted config does not marshal: %v", err)
		}
		again, err := ParseConfig(out)
		if err != nil {
			t.Fatalf("round-tripped config rejected: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(cfg, again) {
			t.Fatalf("config drifted across a JSON round-trip:\n%+v\n%+v", cfg, again)
		}
	})
}
