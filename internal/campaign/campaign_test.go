package campaign

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

func fastConfig() Config {
	c := Default()
	c.Reps = 20
	c.Points = 9
	c.VolumeBytes = 1 << 26
	return c
}

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mods := []struct {
		name string
		mod  func(*Config)
	}{
		{"no machines", func(c *Config) { c.Machines = nil }},
		{"unknown machine", func(c *Config) { c.Machines = []string{"cray1"} }},
		{"bad range", func(c *Config) { c.HiIntensity = c.LoIntensity }},
		{"zero lo", func(c *Config) { c.LoIntensity = 0 }},
		{"few points", func(c *Config) { c.Points = 3 }},
		{"zero reps", func(c *Config) { c.Reps = 0 }},
		{"zero volume", func(c *Config) { c.VolumeBytes = 0 }},
	}
	for _, m := range mods {
		c := Default()
		m.mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestParseConfig(t *testing.T) {
	good := `{"machines":["gtx580"],"lo_intensity":0.5,"hi_intensity":8,
		"points":5,"reps":2,"volume_bytes":1048576,"seed":1}`
	c, err := ParseConfig([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if c.Machines[0] != "gtx580" || c.Points != 5 {
		t.Errorf("parsed config = %+v", c)
	}
	if _, err := ParseConfig([]byte("{bad")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ParseConfig([]byte(`{"machines":["nope"]}`)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunRecoversGroundTruth(t *testing.T) {
	cfg := fastConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Machines) != 2 {
		t.Fatalf("machines = %d", len(res.Machines))
	}
	for _, mr := range res.Machines {
		if mr.WorstRelErr > 0.10 {
			t.Errorf("%s: worst coefficient error %.1f%%", mr.Name, mr.WorstRelErr*100)
		}
		if mr.TuningQuality < 0.99 {
			t.Errorf("%s: tuning quality %v", mr.Name, mr.TuningQuality)
		}
		if mr.Coefficients.R2 < 0.99 {
			t.Errorf("%s: R² = %v", mr.Name, mr.Coefficients.R2)
		}
		if mr.Fitted == nil {
			t.Fatalf("%s: no fitted machine", mr.Name)
		}
		if err := mr.Fitted.Validate(); err != nil {
			t.Errorf("%s: fitted machine invalid: %v", mr.Name, err)
		}
		// The fitted machine's model must agree with the ground-truth
		// machine's model on the headline balance quantities.
		truth := core.FromMachine(machine.Catalog()[mr.Key], machine.Double)
		fitted := core.FromMachine(mr.Fitted, machine.Double)
		if got, want := fitted.HalfEfficiencyIntensity(), truth.HalfEfficiencyIntensity(); got/want > 1.1 || want/got > 1.1 {
			t.Errorf("%s: fitted B̂ε(y=½) = %v vs truth %v", mr.Name, got, want)
		}
		if fitted.RaceToHaltEffective() != truth.RaceToHaltEffective() {
			t.Errorf("%s: fitted model flips the race-to-halt verdict", mr.Name)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	c := Default()
	c.Machines = []string{"nope"}
	if _, err := Run(c); err == nil {
		t.Error("bad config accepted")
	}
}

func TestRunWithPowerMon(t *testing.T) {
	cfg := fastConfig()
	cfg.Machines = []string{"i7-950"}
	cfg.UsePowerMon = true
	cfg.VolumeBytes = 1 << 28 // long enough runs for the sampler
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Machines[0].WorstRelErr > 0.15 {
		t.Errorf("powermon-path fit error %.1f%%", res.Machines[0].WorstRelErr*100)
	}
}

func TestRenderMentionsEverything(t *testing.T) {
	cfg := fastConfig()
	cfg.Machines = []string{"gtx580"}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{
		"NVIDIA GTX 580", "εmem", "π0", "R²", "race-to-halt", "tuning quality",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := fastConfig()
	cfg.Machines = []string{"gtx580"}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Machines[0].Coefficients != b.Machines[0].Coefficients {
		t.Error("campaign must be deterministic per seed")
	}
}
