// Package campaign orchestrates the paper's complete measurement
// workflow as a reusable pipeline: for each platform, auto-tune the
// microbenchmark, sweep intensity in both precisions, measure time and
// energy (optionally through the sampled power monitor), fit the
// eq. (9) energy coefficients, and emit a fitted machine description —
// the artifact a performance tuner would feed back into the model to
// draw Fig. 4-style curves for their own system.
package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/microbench"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/powermon"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config describes a measurement campaign. The zero value is not
// usable; Default returns a sensible one. Configs round-trip through
// JSON for use by cmd/campaign.
type Config struct {
	// Machines are catalog keys (e.g. "gtx580"); each is swept
	// independently.
	Machines []string `json:"machines"`
	// LoIntensity is the sweep grid's lowest flop/byte value.
	LoIntensity float64 `json:"lo_intensity"`
	// HiIntensity is the grid's highest value (the double-precision
	// sweep is capped at 16, as in the paper).
	HiIntensity float64 `json:"hi_intensity"`
	// Points is the number of grid points per precision.
	Points int `json:"points"`
	// Reps is runs per intensity point.
	Reps int `json:"reps"`
	// VolumeBytes is the DRAM traffic per run.
	VolumeBytes float64 `json:"volume_bytes"`
	// UsePowerMon routes energy measurement through the sampled
	// multi-channel monitor at 1024 Hz.
	UsePowerMon bool `json:"use_powermon"`
	// Seed drives all noise.
	Seed int64 `json:"seed"`
	// Model, when set, names an EnergyModel ("analytic" or "blackbox")
	// to check against the campaign's own measured sweep points; the
	// per-machine residuals land in MachineResult.ModelCheck. Empty
	// skips the check and keeps the campaign artifact byte-identical
	// to the pre-interface output.
	Model string `json:"model,omitempty"`
}

// Default returns the standard campaign over both measured platforms.
func Default() Config {
	return Config{
		Machines:    []string{"gtx580", "i7-950"},
		LoIntensity: 0.25,
		HiIntensity: 64,
		Points:      11,
		Reps:        50,
		VolumeBytes: 1 << 28,
		Seed:        42,
	}
}

// Validate reports configuration problems. It guards every numeric
// field against the adversarial inputs the fuzz harness feeds through
// ParseConfig — NaN/Inf bounds, inverted ranges, and grid sizes large
// enough to exhaust memory all fail here, before any allocation.
func (c Config) Validate() error {
	if len(c.Machines) == 0 {
		return errors.New("campaign: no machines")
	}
	catalog := machine.Catalog()
	for _, key := range c.Machines {
		if _, ok := catalog[key]; !ok {
			return fmt.Errorf("campaign: unknown machine %q", key)
		}
	}
	for _, v := range []float64{c.LoIntensity, c.HiIntensity, c.VolumeBytes} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("campaign: non-finite numeric field")
		}
	}
	if c.LoIntensity <= 0 || c.HiIntensity <= c.LoIntensity {
		return errors.New("campaign: bad intensity range")
	}
	if c.Points < 4 {
		return errors.New("campaign: need at least 4 intensity points")
	}
	if c.Points > 1<<16 {
		return fmt.Errorf("campaign: %d intensity points exceed the %d limit", c.Points, 1<<16)
	}
	if c.Reps < 1 {
		return errors.New("campaign: reps must be >= 1")
	}
	if c.Reps > 1<<20 {
		return fmt.Errorf("campaign: %d reps exceed the %d limit", c.Reps, 1<<20)
	}
	if c.VolumeBytes <= 0 {
		return errors.New("campaign: volume must be positive")
	}
	if !model.Known(c.Model) {
		return fmt.Errorf("campaign: unknown model %q (registered: %s)", c.Model, strings.Join(model.Names(), ", "))
	}
	return nil
}

// ParseConfig reads a JSON campaign configuration.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("campaign: %v", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// MachineResult is the outcome of one platform's campaign.
type MachineResult struct {
	// Key and Name identify the platform.
	Key, Name string
	// Tuning is the auto-tuned launch configuration.
	Tuning sim.Tuning
	// TuningQuality is the tuning's fraction of the best achievable.
	TuningQuality float64
	// Coefficients is the eq. (9) fit.
	Coefficients microbench.Coefficients
	// GroundTruth holds the platform's planted values for comparison:
	// [εs, εd, εmem (J)], π0 (W).
	TruthEpsS, TruthEpsD, TruthEpsMem, TruthPi0 float64
	// WorstRelErr is the largest relative error of the four fitted
	// coefficients against ground truth.
	WorstRelErr float64
	// Fitted is a machine description built from the fit — the
	// campaign's primary artifact.
	Fitted *machine.Machine
	// Points is the number of observations behind the fit.
	Points int
	// ModelCheck holds the residuals of the configured EnergyModel
	// against this machine's measured sweep points; nil unless
	// Config.Model is set (so default campaign artifacts are
	// byte-identical to the pre-interface output).
	ModelCheck *ModelCheck `json:",omitempty"`
}

// ModelCheck summarises how one EnergyModel's predictions compare to
// the campaign's own measured sweep observations (capped predictions
// against throttle-inclusive measurements).
type ModelCheck struct {
	// Model names the checked EnergyModel.
	Model string
	// MedianRelErrTime and MaxRelErrTime summarise the per-observation
	// time relative errors |predicted/measured − 1|.
	MedianRelErrTime, MaxRelErrTime float64
	// MedianRelErrEnergy and MaxRelErrEnergy summarise the energy
	// relative errors the same way.
	MedianRelErrEnergy, MaxRelErrEnergy float64
	// Points is the number of observations checked.
	Points int
}

// Result is a complete campaign outcome.
type Result struct {
	// Config is the executed configuration.
	Config Config
	// Machines holds one result per swept platform.
	Machines []MachineResult
}

// ToJSON serialises the complete campaign outcome. For a fixed Config
// the bytes are identical at every worker count, which is what the
// golden determinism tests pin.
func (r *Result) ToJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Run executes the campaign with the default worker count (one worker
// per CPU). Because every task draws noise from a stream derived from
// its identity rather than from execution order, the result is
// byte-identical to RunParallel at any other worker count.
func Run(cfg Config) (*Result, error) {
	return RunParallel(context.Background(), cfg, 0)
}

// RunParallel executes the campaign on a bounded worker pool: machines
// sweep concurrently, and within each machine the (intensity, rep) grid
// of both precisions fans out across the same worker budget. workers
// follows parallel.Workers semantics (< 1 means GOMAXPROCS; 1
// reproduces the sequential run exactly). The context cancels the
// campaign between kernel executions.
//
// Determinism guarantee: for a fixed Config, the marshalled Result is
// byte-identical at every worker count. Per-machine engines are seeded
// from Config.Seed and the machine index, and every repetition derives
// its own noise stream from (engine seed, precision, grid index, rep) —
// see stats.DeriveSeed — so neither scheduling nor worker count can
// reach the artifact.
//
// When ctx carries a trace.Tracer (see internal/trace), the run records
// an execution trace: a "campaign" root span, one "campaign.machine"
// span per platform, "campaign.autotune" / "microbench.sweep" /
// "campaign.fit" phase spans, and per-repetition "sweep.rep" spans with
// "sim.run" children. Tracing observes only the clock; it cannot reach
// the noise streams, so traced output stays byte-identical to untraced
// output (pinned end to end by TestCampaignBinaryTrace).
func RunParallel(ctx context.Context, cfg Config, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx, span := trace.Start(ctx, "campaign")
	span.Tag("machines", len(cfg.Machines)).
		Tag("points", cfg.Points).
		Tag("reps", cfg.Reps).
		Tag("seed", cfg.Seed)
	defer span.End()
	workers = parallel.Workers(workers)
	mrs, err := parallel.Map(ctx, len(cfg.Machines), workers,
		func(ctx context.Context, mi int) (MachineResult, error) {
			return runMachine(ctx, cfg, mi, workers)
		})
	if err != nil {
		return nil, err
	}
	return &Result{Config: cfg, Machines: mrs}, nil
}

// runMachine executes one platform's tune→sweep→fit pipeline. The
// auto-tune phase runs on the engine's own sequential stream (its probe
// count is data-dependent, so it stays serial); the sweeps fan out.
func runMachine(ctx context.Context, cfg Config, mi int, workers int) (MachineResult, error) {
	key := cfg.Machines[mi]
	ctx, span := trace.Start(ctx, "campaign.machine")
	span.Tag("machine", key)
	defer span.End()
	m := machine.Catalog()[key]
	eng, err := sim.New(m, sim.DefaultConfig(cfg.Seed+int64(mi)*1001))
	if err != nil {
		return MachineResult{}, err
	}
	_, tuneSpan := trace.Start(ctx, "campaign.autotune")
	tuning, quality, err := microbench.AutoTune(eng, machine.Single)
	tuneSpan.End()
	if err != nil {
		return MachineResult{}, err
	}
	var mon *powermon.Monitor
	if cfg.UsePowerMon {
		chans := powermon.GPUChannels()
		if strings.Contains(strings.ToLower(m.Name), "intel") {
			chans = powermon.CPUChannels()
		}
		mon, err = powermon.New(chans, powermon.Config{Seed: cfg.Seed + 7 + int64(mi)*1001, RateHz: 1024})
		if err != nil {
			return MachineResult{}, err
		}
	}
	var pts []microbench.Point
	for _, prec := range []machine.Precision{machine.Single, machine.Double} {
		if err := ctx.Err(); err != nil {
			return MachineResult{}, err
		}
		hi := cfg.HiIntensity
		if prec == machine.Double {
			// Match the paper: the double sweep tops out earlier.
			if hi > 16 {
				hi = 16
			}
		}
		p, err := microbench.Sweep(ctx, eng, prec, microbench.SweepConfig{
			Intensities: core.LogGrid(cfg.LoIntensity, hi, cfg.Points),
			VolumeBytes: cfg.VolumeBytes,
			Reps:        cfg.Reps,
			Tuning:      tuning,
			Monitor:     mon,
			KeepReps:    true,
			Workers:     workers,
		})
		if err != nil {
			return MachineResult{}, err
		}
		pts = append(pts, p...)
	}
	_, fitSpan := trace.Start(ctx, "campaign.fit")
	fitSpan.Tag("observations", len(pts))
	coef, _, err := microbench.FitEq9(pts)
	fitSpan.End()
	if err != nil {
		return MachineResult{}, err
	}
	mr := MachineResult{
		Key:           key,
		Name:          m.Name,
		Tuning:        tuning,
		TuningQuality: quality,
		Coefficients:  *coef,
		TruthEpsS:     float64(m.SP.EnergyPerFlop),
		TruthEpsD:     float64(m.DP.EnergyPerFlop),
		TruthEpsMem:   float64(m.EnergyPerByte),
		TruthPi0:      float64(m.ConstantPower),
		Points:        len(pts),
	}
	for _, pair := range [][2]float64{
		{coef.EpsSingle, mr.TruthEpsS},
		{coef.EpsDouble, mr.TruthEpsD},
		{coef.EpsMem, mr.TruthEpsMem},
		{coef.Pi0, mr.TruthPi0},
	} {
		if re := stats.RelErr(pair[0], pair[1]); re > mr.WorstRelErr {
			mr.WorstRelErr = re
		}
	}
	mr.Fitted = fittedMachine(m, coef)
	if cfg.Model != "" {
		mc, err := checkModel(cfg.Model, key, pts)
		if err != nil {
			return MachineResult{}, err
		}
		mr.ModelCheck = mc
	}
	return mr, nil
}

// checkModel scores the named EnergyModel's capped predictions against
// the campaign's measured sweep observations. Each precision resolves
// its own model instance (a blackbox fit is per precision); the
// summary pools both precisions' residuals.
func checkModel(name, machineKey string, pts []microbench.Point) (*ModelCheck, error) {
	models := map[machine.Precision]model.EnergyModel{}
	for _, prec := range []machine.Precision{machine.Single, machine.Double} {
		em, err := model.For(name, machineKey, prec)
		if err != nil {
			return nil, err
		}
		models[prec] = em
	}
	timeErr := make([]float64, 0, len(pts))
	energyErr := make([]float64, 0, len(pts))
	for _, pt := range pts {
		em := models[pt.Precision]
		k := core.Kernel{W: pt.W, Q: pt.Q}
		timeErr = append(timeErr, stats.RelErr(em.CappedTime(k), float64(pt.Time)))
		energyErr = append(energyErr, stats.RelErr(em.CappedEnergy(k), float64(pt.Energy)))
	}
	medT, err := stats.Median(timeErr)
	if err != nil {
		return nil, err
	}
	medE, err := stats.Median(energyErr)
	if err != nil {
		return nil, err
	}
	mc := &ModelCheck{Model: name, MedianRelErrTime: medT, MedianRelErrEnergy: medE, Points: len(pts)}
	for i := range timeErr {
		mc.MaxRelErrTime = math.Max(mc.MaxRelErrTime, timeErr[i])
		mc.MaxRelErrEnergy = math.Max(mc.MaxRelErrEnergy, energyErr[i])
	}
	return mc, nil
}

// fittedMachine builds a machine description whose energy parameters
// come from the fit (time parameters keep the vendor peaks, exactly as
// the paper instantiates eq. 3 from specs and eq. 5 from the fit).
func fittedMachine(base *machine.Machine, coef *microbench.Coefficients) *machine.Machine {
	f := base.Clone()
	f.Name = base.Name + " (fitted)"
	f.SP.EnergyPerFlop = units.Joules(coef.EpsSingle)
	f.DP.EnergyPerFlop = units.Joules(coef.EpsDouble)
	f.EnergyPerByte = units.Joules(coef.EpsMem)
	f.ConstantPower = units.Watts(coef.Pi0)
	return f
}

// Render formats the campaign outcome for terminal output.
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaign: %d machine(s), %d points per precision, %d reps, seed %d\n",
		len(r.Machines), r.Config.Points, r.Config.Reps, r.Config.Seed)
	for _, mr := range r.Machines {
		fmt.Fprintf(&sb, "\n%s (tuning quality %.3f, %d observations):\n", mr.Name, mr.TuningQuality, mr.Points)
		fmt.Fprintf(&sb, "  %-6s %18s %18s %10s\n", "coeff", "fitted", "truth", "rel err")
		rows := []struct {
			name          string
			fitted, truth float64
			scale         float64
			unit          string
		}{
			{"εs", mr.Coefficients.EpsSingle, mr.TruthEpsS, 1e12, "pJ/flop"},
			{"εd", mr.Coefficients.EpsDouble, mr.TruthEpsD, 1e12, "pJ/flop"},
			{"εmem", mr.Coefficients.EpsMem, mr.TruthEpsMem, 1e12, "pJ/B"},
			{"π0", mr.Coefficients.Pi0, mr.TruthPi0, 1, "W"},
		}
		for _, row := range rows {
			fmt.Fprintf(&sb, "  %-6s %18s %18s %9.2f%%\n",
				row.name,
				fmt.Sprintf("%.1f %s", row.fitted*row.scale, row.unit),
				fmt.Sprintf("%.1f %s", row.truth*row.scale, row.unit),
				stats.RelErr(row.fitted, row.truth)*100)
		}
		fmt.Fprintf(&sb, "  R² = %.6f, max p-value = %.3g\n", mr.Coefficients.R2, mr.Coefficients.MaxPValue)
		// Derived model quantities from the *fit* — what a user gets
		// without knowing the ground truth.
		p := core.FromMachine(mr.Fitted, machine.Double)
		fmt.Fprintf(&sb, "  fitted model (double): Bτ = %.2f, B̂ε(y=½) = %.2f flop/byte, race-to-halt = %v\n",
			p.BalanceTime(), p.HalfEfficiencyIntensity(), p.RaceToHaltEffective())
	}
	return sb.String()
}
