// Package cluster is a deterministic discrete-event simulator of a
// fleet of rooflined replicas behind a routing tier. Each simulated
// replica prices its requests with the paper's energy roofline
// (internal/core) and serves them through the production server's
// content-addressed result cache and request-coalescing bookkeeping
// (internal/server), so fleet-level cache hit rates, coalesce ratios,
// and energy totals come from the real serving code paths — only the
// clock is virtual.
//
// Determinism is the load-bearing property: a (Scenario, policy) cell
// runs single-threaded with all randomness derived via
// stats.DeriveSeed, and parallelism exists only across cells
// (parallel.Map preserves result order), so a fleet report is
// byte-identical at any worker count. The golden tests pin exactly
// that.
package cluster

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ReplicaSpec describes one simulated replica.
type ReplicaSpec struct {
	// Machine names a catalog machine ("fermi", "gtx580", "i7-950",
	// "future") whose roofline parameters price this replica's kernels.
	Machine string `json:"machine"`
	// Precision selects the operand width ("single" or "double";
	// empty means double).
	Precision string `json:"precision,omitempty"`
	// CacheEntries bounds the replica's result cache in entries.
	CacheEntries int `json:"cache_entries"`
	// CacheBytes bounds the replica's result cache in body bytes.
	CacheBytes int64 `json:"cache_bytes"`
	// CacheTTLSeconds expires cached entries after this much simulated
	// time (0 disables expiry).
	CacheTTLSeconds float64 `json:"cache_ttl_seconds,omitempty"`
	// Model names the EnergyModel the energy-aware router prices this
	// replica's misses with ("analytic" or "blackbox"; empty means
	// analytic, which routes byte-identically to the pre-interface
	// simulator). Service times and served-energy accounting always
	// use the analytic closed forms — the replica's simulated hardware
	// is the roofline; Model only changes the router's beliefs.
	Model string `json:"model,omitempty"`
	// OperatingPoint pins the replica to one named point of its
	// machine's DVFS curve (the machine must come from the DVFS
	// catalog). Service times, served energy, idle power, and the
	// router's pricing all use the pinned parameters. Empty means full
	// clock. Requires the analytic model: a blackbox fitted at base
	// clock has no beliefs about other operating points.
	OperatingPoint string `json:"operating_point,omitempty"`
}

// Options parameterise RunScenario.
type Options struct {
	// Workers bounds the policy-level parallelism (each policy cell is
	// itself single-threaded); <1 means GOMAXPROCS.
	Workers int
	// Tracer, when non-nil, receives per-replica "replica.serve" spans
	// stamped with virtual timestamps (Track = policy*trackStride +
	// replica + 1). Tracing never affects the report.
	Tracer *trace.Tracer
	// Trace overrides the scenario's generated workload with a replayed
	// request stream (e.g. one loaded via workload.ParseTrace).
	Trace *workload.Trace
	// routeObserver, when set, is invoked with every routing decision
	// before the request is applied to the chosen replica — the hook
	// the property tests use to audit policies in situ.
	routeObserver func(now float64, req workload.Request, replica int, f *Fleet)
}

// hitBody is the synthetic response body cached per distinct key; its
// length is what the cache's byte bound meters.
var hitBody = make([]byte, 256)

// simEpoch anchors the virtual clock: simulated second s maps to
// simEpoch + s, giving the production cache's TTL arithmetic real
// time.Time values to work on.
var simEpoch = time.Unix(0, 0).UTC()

// replica is one simulated server: roofline pricing, the production
// result cache on a virtual clock, production coalescing bookkeeping,
// and a FIFO service queue.
type replica struct {
	id      int
	spec    ReplicaSpec
	params  core.Params
	model   model.EnergyModel // prices router estimates; analytic unless spec.Model overrides
	cache   *server.ResultCache
	flights *server.FlightTable[*simFlight]

	clock float64 // current simulation time, read by the cache's now()

	queue     []job // FIFO; head is queue[qhead]
	qhead     int
	busy      bool
	busyTill  float64
	queuedSvc float64 // summed service estimates of jobs behind the head

	requests  int
	coalesced int
	engine    int
	busyTime  float64
	kernelJ   float64
	maxQueue  int
}

// simFlight is the in-flight state for one coalesced key: the requests
// that joined after the leader, waiting for its completion.
type simFlight struct {
	waiters []pending
}

// pending is one request waiting inside the simulator, with the arrival
// instant latency is measured from.
type pending struct {
	req     workload.Request
	arrival float64
}

// job is one queued engine execution.
type job struct {
	p   pending
	key uint64
	svc float64 // service time, priced once at enqueue
}

// newReplica builds replica i of the fleet.
func newReplica(i int, spec ReplicaSpec) (*replica, error) {
	m, ok := machine.Find(spec.Machine)
	if !ok {
		return nil, fmt.Errorf("cluster: replica %d names unknown machine %q", i, spec.Machine)
	}
	var prec machine.Precision
	switch spec.Precision {
	case "", "double":
		prec = machine.Double
	case "single":
		prec = machine.Single
	default:
		return nil, fmt.Errorf("cluster: replica %d has unknown precision %q", i, spec.Precision)
	}
	params := core.FromMachine(m, prec)
	var em model.EnergyModel
	switch {
	case spec.OperatingPoint != "":
		op, found := m.Point(spec.OperatingPoint)
		if !found {
			return nil, fmt.Errorf("cluster: replica %d: machine %q has no operating point %q", i, spec.Machine, spec.OperatingPoint)
		}
		if spec.Model != "" && spec.Model != model.AnalyticName {
			return nil, fmt.Errorf("cluster: replica %d: model %q cannot price operating point %q; a model fitted at base clock has no beliefs about other points", i, spec.Model, spec.OperatingPoint)
		}
		params = params.AtOperatingPoint(op)
		em = model.NewAnalytic(params)
	case spec.Model == "" || spec.Model == model.AnalyticName:
		// Built directly from the resolved machine so DVFS-catalog-only
		// machines (the multi-SM family) work; identical parameters to
		// model.For for base catalog keys.
		em = model.NewAnalytic(params)
	default:
		var err error
		em, err = model.For(spec.Model, spec.Machine, prec)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
	}
	r := &replica{id: i, spec: spec, params: params, model: em}
	r.cache = server.NewResultCache(
		spec.CacheEntries,
		spec.CacheBytes,
		time.Duration(spec.CacheTTLSeconds*float64(time.Second)),
		func() time.Time { return simEpoch.Add(time.Duration(r.clock * float64(time.Second))) },
	)
	r.flights = server.NewFlightTable[*simFlight]()
	return r, nil
}

// key returns the production cache/coalescing key this replica computes
// for req — the same hash the live server's POST /v1/eval handler uses.
func (r *replica) key(req workload.Request) uint64 {
	prec := r.spec.Precision
	if prec == "" {
		prec = "double"
	}
	return server.EvalKey(r.spec.Machine, prec, req.Work, req.Intensity)
}

// queueLen counts requests in service or queued (coalesced waiters
// excluded: they consume no service slot).
func (r *replica) queueLen() int {
	n := len(r.queue) - r.qhead
	if r.busy {
		n++
	}
	return n
}

// pendingWork estimates the seconds of service ahead of a new arrival:
// the remainder of the in-service job plus the priced queue behind it.
func (r *replica) pendingWork(now float64) float64 {
	w := r.queuedSvc
	if r.busy && r.busyTill > now {
		w += r.busyTill - now
	}
	return w
}

// Fleet is the set of replicas one policy run routes over, exposed to
// Policy implementations for read-only probing.
type Fleet struct {
	reps       []*replica
	hitLatency float64
	// estT and estE are scratch columns the energy-aware policy gathers
	// per-replica (time, energy) estimates into before classifying them
	// with the batch eq. 10 vocabulary; reused across Route calls so
	// routing allocates nothing in steady state.
	estT, estE []float64
}

// NumReplicas returns the fleet size.
func (f *Fleet) NumReplicas() int { return len(f.reps) }

// QueueLen returns replica i's current queue occupancy (in service +
// waiting, coalesced waiters excluded).
func (f *Fleet) QueueLen(i int) int { return f.reps[i].queueLen() }

// PendingWork returns the estimated seconds of service already
// committed to replica i as of now.
func (f *Fleet) PendingWork(now float64, i int) float64 { return f.reps[i].pendingWork(now) }

// WouldHit reports whether replica i's cache currently holds req's
// result (a recency-neutral probe; see server.ResultCache.Peek).
func (f *Fleet) WouldHit(i int, req workload.Request) bool {
	return f.reps[i].cache.Peek(f.reps[i].key(req))
}

// Event kinds inside the simulation heap.
const (
	evCompletion = iota // a replica finishes an engine run
	evArrival           // a closed-loop client issues its next request
)

// simEvent is one heap entry. seq breaks time ties deterministically in
// insertion order; completions sort before arrivals at equal times so a
// freed replica is visible to the router at the same instant.
type simEvent struct {
	time    float64
	kind    int
	seq     uint64
	replica int     // evCompletion
	p       pending // evArrival
}

// eventHeap is a min-heap over (time, kind, seq).
type eventHeap []simEvent

// Len implements heap.Interface.
func (h eventHeap) Len() int { return len(h) }

// Less implements heap.Interface.
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}

// Swap implements heap.Interface.
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *eventHeap) Push(x any) { *h = append(*h, x.(simEvent)) }

// Pop implements heap.Interface.
func (h *eventHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// maxSpansPerPolicy bounds the virtual spans one policy cell records,
// so tracing a million-request scenario cannot swamp the ring buffer.
const maxSpansPerPolicy = 2000

// sim is one (scenario, policy) cell's mutable state.
type sim struct {
	fleet   *Fleet
	policy  Policy
	closed  bool
	trace   []workload.Request
	nextCli []int // per-client cursor into trace (closed loop)

	events eventHeap
	seq    uint64

	now       float64
	makespan  float64
	latencies []float64
	observer  func(now float64, req workload.Request, replica int, f *Fleet)

	tracer   *trace.Tracer
	track0   uint64
	recorded int
}

// push schedules an event.
func (s *sim) push(ev simEvent) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

// runPolicy drives the whole request stream through a fresh fleet under
// one policy and returns that cell's report. Single-threaded by
// construction: every data structure here is confined to this call.
func runPolicy(sc *Scenario, tr *workload.Trace, policy Policy, opts Options, policyIdx int) (PolicyReport, error) {
	reps := make([]*replica, len(sc.Replicas))
	for i, spec := range sc.Replicas {
		r, err := newReplica(i, spec)
		if err != nil {
			return PolicyReport{}, err
		}
		reps[i] = r
	}
	s := &sim{
		fleet:    &Fleet{reps: reps, hitLatency: sc.HitLatency},
		policy:   policy,
		closed:   tr.Closed,
		trace:    tr.Requests,
		observer: opts.routeObserver,
		tracer:   opts.Tracer,
		track0:   uint64(policyIdx)*trackStride + 1,
	}
	s.latencies = make([]float64, 0, len(tr.Requests))

	if s.closed {
		// Seed each client's first request; requests i < Clients belong
		// to client i exactly once under the i%C assignment.
		s.nextCli = make([]int, tr.Clients)
		for c := 0; c < tr.Clients; c++ {
			req := tr.Requests[c]
			s.push(simEvent{time: req.Time, kind: evArrival, p: pending{req: req, arrival: req.Time}})
			s.nextCli[c] = c + tr.Clients
		}
		for s.events.Len() > 0 {
			s.step(heap.Pop(&s.events).(simEvent))
		}
	} else {
		// Open loop: merge the pre-sorted arrival stream with the heap.
		next := 0
		for next < len(s.trace) || s.events.Len() > 0 {
			if s.events.Len() > 0 && (next >= len(s.trace) || s.events[0].time <= s.trace[next].Time) {
				s.step(heap.Pop(&s.events).(simEvent))
				continue
			}
			req := s.trace[next]
			next++
			s.arrive(pending{req: req, arrival: req.Time})
		}
	}
	return s.report(policy.Name())
}

// trackStride spaces the trace lanes of consecutive policies so their
// replica tracks never collide.
const trackStride = 256

// step dispatches one heap event.
func (s *sim) step(ev simEvent) {
	s.now = ev.time
	switch ev.kind {
	case evCompletion:
		s.complete(ev.replica)
	case evArrival:
		s.arrive(ev.p)
	}
}

// arrive routes one request and applies the cache / coalesce / enqueue
// cascade at its destination.
func (s *sim) arrive(p pending) {
	if p.arrival > s.now {
		s.now = p.arrival
	}
	idx := s.policy.Route(s.now, p.req, s.fleet)
	if s.observer != nil {
		s.observer(s.now, p.req, idx, s.fleet)
	}
	rep := s.fleet.reps[idx]
	rep.clock = s.now
	rep.requests++
	key := rep.key(p.req)
	if _, ok := rep.cache.Get(key); ok {
		s.finish(p, s.now+s.fleet.hitLatency)
		return
	}
	if f, joined := rep.flights.Begin(key, &simFlight{}); joined {
		rep.coalesced++
		f.waiters = append(f.waiters, p)
		return
	}
	k := core.KernelAt(p.req.Work, p.req.Intensity)
	j := job{p: p, key: key, svc: rep.params.CappedTime(k)}
	rep.queue = append(rep.queue, j)
	if rep.busy {
		rep.queuedSvc += j.svc
	} else {
		s.startService(rep)
	}
	if l := rep.queueLen(); l > rep.maxQueue {
		rep.maxQueue = l
	}
}

// startService begins the head-of-queue job on an idle replica.
func (s *sim) startService(rep *replica) {
	j := rep.queue[rep.qhead]
	rep.busy = true
	rep.busyTill = s.now + j.svc
	s.push(simEvent{time: rep.busyTill, kind: evCompletion, replica: rep.id})
	s.record(rep, s.now, j.svc)
}

// record emits one virtual "replica.serve" span, bounded per policy.
func (s *sim) record(rep *replica, start, dur float64) {
	if s.tracer == nil || s.recorded >= maxSpansPerPolicy {
		return
	}
	s.recorded++
	s.tracer.Record(trace.Event{
		Name:  "replica.serve",
		Track: s.track0 + uint64(rep.id),
		Start: time.Duration(start * float64(time.Second)),
		Dur:   time.Duration(dur * float64(time.Second)),
		Tags: []trace.Tag{
			{Key: "policy", Val: s.policy.Name()},
			{Key: "replica", Val: rep.id},
			{Key: "machine", Val: rep.spec.Machine},
		},
	})
}

// complete finishes the in-service job on replica id: account the
// engine run, populate the cache, release the coalesced waiters, and
// pull the next job.
func (s *sim) complete(id int) {
	rep := s.fleet.reps[id]
	rep.clock = s.now
	j := rep.queue[rep.qhead]
	rep.qhead++
	if rep.qhead == len(rep.queue) {
		rep.queue = rep.queue[:0]
		rep.qhead = 0
	}
	rep.engine++
	rep.busyTime += j.svc
	rep.kernelJ += rep.params.CappedEnergy(core.KernelAt(j.p.req.Work, j.p.req.Intensity))
	rep.cache.Put(j.key, hitBody)
	s.finish(j.p, s.now)
	if f, ok := rep.flights.Lookup(j.key); ok {
		for _, w := range f.waiters {
			s.finish(w, s.now)
		}
		rep.flights.Finish(j.key)
	}
	rep.busy = false
	if rep.qhead < len(rep.queue) {
		nxt := rep.queue[rep.qhead]
		rep.queuedSvc -= nxt.svc
		if rep.queuedSvc < 0 {
			rep.queuedSvc = 0
		}
		s.startService(rep)
	}
}

// finish completes one request at time done: record its latency and,
// in a closed-loop run, wake its client for the next request.
func (s *sim) finish(p pending, done float64) {
	s.latencies = append(s.latencies, done-p.arrival)
	if done > s.makespan {
		s.makespan = done
	}
	if !s.closed {
		return
	}
	c := p.req.Client
	i := s.nextCli[c]
	if i >= len(s.trace) {
		return
	}
	s.nextCli[c] = i + len(s.nextCli)
	req := s.trace[i]
	at := done + req.Time // Time is the think delay for closed traces
	s.push(simEvent{time: at, kind: evArrival, p: pending{req: req, arrival: at}})
}

// RunScenario generates (or replays) the scenario's workload and drives
// it through a fresh fleet under every listed policy. Policy cells run
// in parallel up to opts.Workers; each cell is single-threaded and owns
// its fleet, so the report bytes are independent of the worker count.
func RunScenario(ctx context.Context, sc Scenario, opts Options) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	tr := opts.Trace
	if tr == nil {
		var err error
		tr, err = workload.Generate(sc.Workload)
		if err != nil {
			return nil, err
		}
	}
	policies := sc.Policies
	if len(policies) == 0 {
		policies = PolicyNames()
	}
	cells, err := parallel.Map(ctx, len(policies), opts.Workers, func(_ context.Context, i int) (PolicyReport, error) {
		p, err := NewPolicy(policies[i], len(sc.Replicas), stats.DeriveSeed(sc.Workload.Seed, labelPolicy, stats.HashLabel(policies[i])))
		if err != nil {
			return PolicyReport{}, err
		}
		return runPolicy(&sc, tr, p, opts, i)
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Scenario:    sc.Name,
		Description: sc.Desc,
		Replicas:    len(sc.Replicas),
		Requests:    len(tr.Requests),
		Workload:    tr.Spec.Kind,
		Policies:    cells,
	}, nil
}

// labelPolicy derives per-policy seeds from the workload seed.
const labelPolicy = 0x504f4c43 // "POLC"
