package cluster

import (
	"context"
	"testing"

	"repro/internal/model"
)

// dvfsScenario returns the catalog's hetero_dvfs scenario shrunk to a
// test-sized request count.
func dvfsScenario(t *testing.T, requests int) Scenario {
	t.Helper()
	sc, ok := Scenarios()["hetero_dvfs"]
	if !ok {
		t.Fatal("catalog lost the hetero_dvfs scenario")
	}
	sc.Workload.Requests = requests
	return sc
}

// TestHeteroDVFSBeatsPinnedMax pins the scenario's reason to exist: with
// the energy-aware router, the DVFS fleet (downclocked GPUs, half-off
// multi-SM part) finishes the same workload on less total energy than
// the identical fleet pinned to base clock.
func TestHeteroDVFSBeatsPinnedMax(t *testing.T) {
	sc := dvfsScenario(t, 20000)
	sc.Policies = []string{EnergyAware}
	pinned := PinMaxFrequency(sc)
	for i, spec := range pinned.Replicas {
		if spec.OperatingPoint != "" {
			t.Fatalf("PinMaxFrequency left replica %d pinned to %q", i, spec.OperatingPoint)
		}
	}
	dvfsRep, err := RunScenario(context.Background(), sc, Options{Workers: 2})
	if err != nil {
		t.Fatalf("dvfs run: %v", err)
	}
	maxRep, err := RunScenario(context.Background(), pinned, Options{Workers: 2})
	if err != nil {
		t.Fatalf("pinned-max run: %v", err)
	}
	dvfsJ := dvfsRep.Policies[0].EnergyJoules
	maxJ := maxRep.Policies[0].EnergyJoules
	if dvfsRep.Policies[0].Requests != sc.Workload.Requests ||
		maxRep.Policies[0].Requests != sc.Workload.Requests {
		t.Fatal("a run dropped requests; energy comparison is meaningless")
	}
	if !(dvfsJ < maxJ) {
		t.Fatalf("DVFS fleet used %.0f J, pinned-max fleet %.0f J; pinning should save energy", dvfsJ, maxJ)
	}
}

// TestReplicaReportCarriesOperatingPoint checks the per-replica report
// echoes the pinned point so fleet artifacts are self-describing.
func TestReplicaReportCarriesOperatingPoint(t *testing.T) {
	sc := dvfsScenario(t, 4000)
	sc.Policies = []string{RoundRobin}
	rep, err := RunScenario(context.Background(), sc, Options{Workers: 1})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	for i, rr := range rep.Policies[0].Replicas {
		if got, want := rr.OperatingPoint, sc.Replicas[i].OperatingPoint; got != want {
			t.Fatalf("replica %d reports point %q, spec says %q", i, got, want)
		}
	}
}

// TestOperatingPointSpecValidation covers the pinned-point spec errors:
// points must exist on the machine's curve, and pinning requires the
// analytic model (a blackbox fit knows nothing about scaled params).
func TestOperatingPointSpecValidation(t *testing.T) {
	sc := dvfsScenario(t, 100)
	sc.Replicas[2].OperatingPoint = "9.99x"
	if _, err := RunScenario(context.Background(), sc, Options{}); err == nil {
		t.Fatal("RunScenario accepted an unknown operating point")
	}
	sc = dvfsScenario(t, 100)
	sc.Replicas[4].Model = model.BlackboxName
	if _, err := RunScenario(context.Background(), sc, Options{}); err == nil {
		t.Fatal("RunScenario accepted a blackbox model with a pinned point")
	}
	// A point on an i7-950: the DVFS catalog entry carries a curve even
	// though the base catalog entry is curveless.
	sc = dvfsScenario(t, 100)
	sc.Replicas[0].OperatingPoint = "0.70x"
	if err := sc.Validate(); err != nil {
		t.Fatalf("i7-950@0.70x should validate via the DVFS catalog: %v", err)
	}
}

// TestDVFSOnlyMachineRunsAtBaseClock checks multi-SM catalog machines —
// which exist only in the DVFS catalog — work as plain replicas too.
func TestDVFSOnlyMachineRunsAtBaseClock(t *testing.T) {
	sc := smokeScenario(t, 2000)
	sc.Replicas[0].Machine = "gtx580-4sm"
	sc.Policies = []string{RoundRobin}
	rep, err := RunScenario(context.Background(), sc, Options{Workers: 1})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if rep.Policies[0].Replicas[0].Requests == 0 {
		t.Fatal("round robin routed nothing to the multi-SM replica")
	}
}
