package cluster

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// smokeScenario returns the catalog's smoke scenario, optionally shrunk
// further for the cheapest tests.
func smokeScenario(t *testing.T, requests int) Scenario {
	t.Helper()
	sc, ok := Scenarios()["smoke"]
	if !ok {
		t.Fatal("catalog lost the smoke scenario")
	}
	if requests > 0 {
		sc.Workload.Requests = requests
	}
	return sc
}

// TestSmokeScenarioAccounting drives the smoke scenario and checks the
// conservation laws every cell must satisfy: all requests complete, and
// each one is accounted exactly once as a cache hit, a coalesced join,
// or an engine run.
func TestSmokeScenarioAccounting(t *testing.T) {
	sc := smokeScenario(t, 0)
	rep, err := RunScenario(context.Background(), sc, Options{Workers: 2})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if len(rep.Policies) != len(PolicyNames()) {
		t.Fatalf("got %d policy cells, want %d", len(rep.Policies), len(PolicyNames()))
	}
	for _, pr := range rep.Policies {
		if pr.Requests != sc.Workload.Requests {
			t.Fatalf("%s: completed %d of %d requests", pr.Policy, pr.Requests, sc.Workload.Requests)
		}
		if pr.SimSeconds <= 0 || pr.ThroughputRPS <= 0 {
			t.Fatalf("%s: degenerate timing: %+v", pr.Policy, pr)
		}
		if pr.P50ms > pr.P99ms || pr.P99ms > pr.P999ms {
			t.Fatalf("%s: percentiles out of order: %+v", pr.Policy, pr)
		}
		if pr.EnergyJoules <= 0 {
			t.Fatalf("%s: no energy accounted", pr.Policy)
		}
		var routed, hits, coalesced, engine int
		for _, rr := range pr.Replicas {
			routed += rr.Requests
			hits += int(rr.Hits)
			coalesced += rr.Coalesced
			engine += rr.EngineRuns
		}
		if routed != sc.Workload.Requests {
			t.Fatalf("%s: routed %d requests, want %d", pr.Policy, routed, sc.Workload.Requests)
		}
		if hits+coalesced+engine != sc.Workload.Requests {
			t.Fatalf("%s: hits %d + coalesced %d + engine %d != %d",
				pr.Policy, hits, coalesced, engine, sc.Workload.Requests)
		}
		if hits == 0 {
			t.Fatalf("%s: Zipf traffic produced zero cache hits", pr.Policy)
		}
	}
}

// TestWorkerCountInvariance pins the tentpole determinism contract at
// the API level: the marshalled report is byte-identical whether policy
// cells run serially or across many workers.
func TestWorkerCountInvariance(t *testing.T) {
	sc := smokeScenario(t, 5000)
	var first []byte
	for _, workers := range []int{1, 4, 16} {
		rep, err := RunScenario(context.Background(), sc, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := rep.Marshal()
		if err != nil {
			t.Fatalf("workers=%d: Marshal: %v", workers, err)
		}
		if first == nil {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatalf("workers=%d report differs from workers=1", workers)
		}
	}
}

// TestReplayMatchesGenerated pins replay: running a scenario on an
// explicitly replayed trace produces the same report as letting the
// scenario generate the identical workload itself.
func TestReplayMatchesGenerated(t *testing.T) {
	sc := smokeScenario(t, 4000)
	tr, err := workload.Generate(sc.Workload)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	data, err := tr.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	replayed, err := workload.ParseTrace(data)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	a, err := RunScenario(context.Background(), sc, Options{Workers: 1})
	if err != nil {
		t.Fatalf("generated run: %v", err)
	}
	b, err := RunScenario(context.Background(), sc, Options{Workers: 1, Trace: replayed})
	if err != nil {
		t.Fatalf("replayed run: %v", err)
	}
	ab, _ := a.Marshal()
	bb, _ := b.Marshal()
	if !bytes.Equal(ab, bb) {
		t.Fatal("replayed trace produced a different report")
	}
}

// TestClosedLoopScenario checks the closed-loop plumbing end to end:
// every generated request completes even though arrivals are chained
// through completions.
func TestClosedLoopScenario(t *testing.T) {
	sc := smokeScenario(t, 3000)
	sc.Workload.Kind = workload.Closed
	sc.Workload.Clients = 32
	sc.Workload.ThinkSeconds = 0.05
	sc.Policies = []string{RoundRobin, LeastLoaded}
	rep, err := RunScenario(context.Background(), sc, Options{Workers: 2})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	for _, pr := range rep.Policies {
		if pr.Requests != sc.Workload.Requests {
			t.Fatalf("%s: completed %d of %d closed-loop requests", pr.Policy, pr.Requests, sc.Workload.Requests)
		}
	}
}

// TestSingleKeyCoalescingAndHits drives many copies of one content key
// at one replica: exactly one engine run happens, the arrivals during
// that run coalesce onto it, and everything after is a cache hit.
func TestSingleKeyCoalescingAndHits(t *testing.T) {
	sc := smokeScenario(t, 500)
	sc.Replicas = sc.Replicas[:1]
	sc.Workload.Keys = 1
	sc.Workload.Rate = 1000
	sc.Policies = []string{RoundRobin}
	rep, err := RunScenario(context.Background(), sc, Options{Workers: 1})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	rr := rep.Policies[0].Replicas[0]
	if rr.EngineRuns != 1 {
		t.Fatalf("one key, one replica: %d engine runs, want 1", rr.EngineRuns)
	}
	if int(rr.Hits)+rr.Coalesced != sc.Workload.Requests-1 {
		t.Fatalf("hits %d + coalesced %d should cover the other %d requests",
			rr.Hits, rr.Coalesced, sc.Workload.Requests-1)
	}
	if rr.Coalesced == 0 {
		t.Fatal("1000 rps against a ~20ms kernel should coalesce some arrivals")
	}
}

// TestEnergyAwareSpreadsUnderLoad checks the energy-aware policy is not
// a degenerate route-to-zero: with identical replicas the eq. 10 rules
// make a busy incumbent lose on speedup, so load spreads.
func TestEnergyAwareSpreadsUnderLoad(t *testing.T) {
	sc := smokeScenario(t, 4000)
	sc.Workload.Keys = 100000 // effectively no cache hits: pure load test
	sc.Workload.Rate = 400    // ~2x one i7-950's capacity
	sc.Policies = []string{EnergyAware}
	rep, err := RunScenario(context.Background(), sc, Options{Workers: 1})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	for _, rr := range rep.Policies[0].Replicas {
		if rr.Requests == 0 {
			t.Fatalf("energy-aware starved replica %d: %+v", rr.ID, rep.Policies[0].Replicas)
		}
	}
}

// TestTracerReceivesVirtualSpans checks the -trace plumbing: running
// with a tracer records bounded, virtually-timestamped replica.serve
// spans and does not perturb the report.
func TestTracerReceivesVirtualSpans(t *testing.T) {
	sc := smokeScenario(t, 3000)
	base, err := RunScenario(context.Background(), sc, Options{Workers: 1})
	if err != nil {
		t.Fatalf("untraced run: %v", err)
	}
	tr := trace.New(trace.Config{Capacity: 1 << 14})
	traced, err := RunScenario(context.Background(), sc, Options{Workers: 1, Tracer: tr})
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	bb, _ := base.Marshal()
	tb, _ := traced.Marshal()
	if !bytes.Equal(bb, tb) {
		t.Fatal("tracing changed the report bytes")
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no spans recorded")
	}
	if len(evs) > len(PolicyNames())*maxSpansPerPolicy {
		t.Fatalf("recorded %d spans, cap is %d per policy", len(evs), maxSpansPerPolicy)
	}
	for _, ev := range evs {
		if ev.Name != "replica.serve" {
			t.Fatalf("unexpected span %q", ev.Name)
		}
		if ev.Dur <= 0 || ev.Track == 0 {
			t.Fatalf("span missing virtual timing: %+v", ev)
		}
	}
}

// TestScenarioCatalogValidates ensures every cataloged scenario is
// runnable and the 1M entries meet the fleet-scale floor.
func TestScenarioCatalogValidates(t *testing.T) {
	for name, sc := range Scenarios() {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if name == "smoke" {
			continue
		}
		if sc.Workload.Requests < 1<<20 {
			t.Errorf("%s: %d requests, fleet scenarios drive >= 1M", name, sc.Workload.Requests)
		}
		if len(sc.Replicas) < 8 {
			t.Errorf("%s: %d replicas, fleet scenarios use >= 8", name, len(sc.Replicas))
		}
	}
}

// TestRunScenarioRejectsInvalid checks scenario validation surfaces
// through RunScenario.
func TestRunScenarioRejectsInvalid(t *testing.T) {
	sc := smokeScenario(t, 100)
	sc.Replicas[0].Machine = "abacus"
	if _, err := RunScenario(context.Background(), sc, Options{}); err == nil {
		t.Fatal("RunScenario accepted an unknown machine")
	}
	sc = smokeScenario(t, 100)
	sc.Policies = []string{"teleport"}
	if _, err := RunScenario(context.Background(), sc, Options{}); err == nil {
		t.Fatal("RunScenario accepted an unknown policy")
	}
	sc = smokeScenario(t, 100)
	sc.HitLatency = 0
	if _, err := RunScenario(context.Background(), sc, Options{}); err == nil {
		t.Fatal("RunScenario accepted a zero hit latency")
	}
}
