package cluster

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// Scenario is one named fleet experiment: a replica set, a workload
// spec, the policies to compare, and the hit-path latency.
type Scenario struct {
	// Name identifies the scenario (`fleetsim -scenario <name>`).
	Name string `json:"name"`
	// Desc states what the scenario stresses.
	Desc string `json:"description"`
	// Replicas is the fleet, in index order.
	Replicas []ReplicaSpec `json:"replicas"`
	// Workload is the traffic spec driven through the fleet.
	Workload workload.Spec `json:"workload"`
	// Policies lists the routing policies to compare, in report order;
	// empty means PolicyNames().
	Policies []string `json:"policies,omitempty"`
	// HitLatency is the simulated seconds a cache hit takes end to end.
	HitLatency float64 `json:"hit_latency_seconds"`
}

// Validate reports whether the scenario is runnable: at least one
// replica on a known machine, a valid workload, known policies, and a
// positive hit latency.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("cluster: scenario needs a name")
	}
	if len(sc.Replicas) == 0 {
		return fmt.Errorf("cluster: scenario %q has no replicas", sc.Name)
	}
	for i, spec := range sc.Replicas {
		if _, err := newReplica(i, spec); err != nil {
			return err
		}
	}
	if err := sc.Workload.Validate(); err != nil {
		return fmt.Errorf("cluster: scenario %q workload: %v", sc.Name, err)
	}
	for _, name := range sc.Policies {
		if _, err := NewPolicy(name, len(sc.Replicas), 0); err != nil {
			return err
		}
	}
	if !(sc.HitLatency > 0) {
		return fmt.Errorf("cluster: scenario %q needs a positive hit latency", sc.Name)
	}
	return nil
}

// i7Replicas builds n identical i7-950 replicas with a cache sized to
// entries.
func i7Replicas(n, entries int) []ReplicaSpec {
	reps := make([]ReplicaSpec, n)
	for i := range reps {
		reps[i] = ReplicaSpec{
			Machine:      "i7-950",
			Precision:    "double",
			CacheEntries: entries,
			CacheBytes:   64 << 20,
		}
	}
	return reps
}

// defaultHitLatency is the simulated cost of serving from cache: 500µs,
// small against the ~20ms an i7-950 needs for a 1-gigaflop kernel.
const defaultHitLatency = 500e-6

// Scenarios returns the scenario catalog keyed by name. The *_1m
// entries drive one million requests through at least eight replicas —
// the fleet-scale runs behind BENCH_cluster.json — while smoke is the
// small variant tests and CI exercise.
func Scenarios() map[string]Scenario {
	base := workload.Spec{
		Kind:        workload.Poisson,
		Rate:        300,
		Requests:    1 << 20,
		Keys:        50000,
		ZipfS:       1.1,
		WorkFlops:   1e9,
		LoIntensity: 0.5,
		HiIntensity: 8,
		Seed:        2026,
	}

	smokeWL := base
	smokeWL.Requests = 20000
	smokeWL.Rate = 200
	smokeWL.Keys = 2000

	burstWL := base
	burstWL.Kind = workload.MMPP
	burstWL.Rate = 150
	burstWL.BurstRate = 900
	burstWL.CalmDwell = 20
	burstWL.BurstDwell = 4

	closedWL := base
	closedWL.Kind = workload.Closed
	closedWL.Clients = 512
	closedWL.ThinkSeconds = 1.0

	heteroWL := base
	heteroWL.Rate = 500

	hetero := append(i7Replicas(4, 4096), make([]ReplicaSpec, 4)...)
	for i := 4; i < 8; i++ {
		hetero[i] = ReplicaSpec{
			Machine:      "gtx580",
			Precision:    "double",
			CacheEntries: 4096,
			CacheBytes:   64 << 20,
		}
	}

	// heteroDVFS mixes base-clock replicas with pinned operating points
	// from the DVFS catalog: downclocked full GPUs trade peak flops for a
	// lower π0 draw, and a half-off multi-SM part covers memory-bound work
	// at the lowest power floor in the fleet.
	heteroDVFS := append(i7Replicas(2, 4096), make([]ReplicaSpec, 6)...)
	for i, pin := range []struct{ machine, point string }{
		{"gtx580", ""}, {"gtx580", ""},
		{"gtx580", "0.70x"}, {"gtx580", "0.70x"},
		{"gtx580-4sm", "0.55x"}, {"gtx580-4sm", "0.55x"},
	} {
		heteroDVFS[2+i] = ReplicaSpec{
			Machine:        pin.machine,
			OperatingPoint: pin.point,
			Precision:      "double",
			CacheEntries:   4096,
			CacheBytes:     64 << 20,
		}
	}

	return map[string]Scenario{
		"smoke": {
			Name:       "smoke",
			Desc:       "4 i7-950 replicas, 20k Poisson requests: the fast CI/test variant",
			Replicas:   i7Replicas(4, 1024),
			Workload:   smokeWL,
			HitLatency: defaultHitLatency,
		},
		"cluster_1m": {
			Name:       "cluster_1m",
			Desc:       "8 i7-950 replicas, 1M Poisson requests over a 50k-key Zipf universe",
			Replicas:   i7Replicas(8, 4096),
			Workload:   base,
			HitLatency: defaultHitLatency,
		},
		"burst_1m": {
			Name:       "burst_1m",
			Desc:       "8 i7-950 replicas, 1M MMPP requests bursting 150 to 900 rps",
			Replicas:   i7Replicas(8, 4096),
			Workload:   burstWL,
			HitLatency: defaultHitLatency,
		},
		"closed_1m": {
			Name:       "closed_1m",
			Desc:       "8 i7-950 replicas, 1M requests from 512 closed-loop clients",
			Replicas:   i7Replicas(8, 4096),
			Workload:   closedWL,
			HitLatency: defaultHitLatency,
		},
		"hetero_1m": {
			Name:       "hetero_1m",
			Desc:       "4 i7-950 + 4 gtx580 replicas, 1M Poisson requests: the energy-aware policy's home turf",
			Replicas:   hetero,
			Workload:   heteroWL,
			HitLatency: defaultHitLatency,
		},
		"hetero_dvfs": {
			Name:       "hetero_dvfs",
			Desc:       "2 i7-950 + 2 gtx580 + 2 gtx580@0.70x + 2 gtx580-4sm@0.55x, 1M Poisson requests: DVFS-pinned replicas priced per operating point",
			Replicas:   heteroDVFS,
			Workload:   heteroWL,
			HitLatency: defaultHitLatency,
		},
	}
}

// PinMaxFrequency returns a copy of sc with every replica's operating
// point cleared, i.e. the same fleet forced to run flat out at base
// clock. Comparing a DVFS scenario against its pinned-max variant
// isolates what frequency pinning buys (or costs) at fixed topology,
// workload, and routing policy.
func PinMaxFrequency(sc Scenario) Scenario {
	out := sc
	out.Replicas = append([]ReplicaSpec(nil), sc.Replicas...)
	for i := range out.Replicas {
		out.Replicas[i].OperatingPoint = ""
	}
	return out
}

// ScenarioNames returns the catalog's keys sorted.
func ScenarioNames() []string {
	m := Scenarios()
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
