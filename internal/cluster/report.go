package cluster

import (
	"encoding/json"
	"math"
	"sort"
)

// Report is one scenario's full result: one PolicyReport per routing
// policy, in the scenario's policy order. Marshal renders it as
// deterministic JSON — the bytes the golden tests pin across worker
// counts.
type Report struct {
	// Scenario is the scenario name.
	Scenario string `json:"scenario"`
	// Description restates the scenario's intent.
	Description string `json:"description"`
	// Replicas is the fleet size.
	Replicas int `json:"replicas"`
	// Requests is the driven request count.
	Requests int `json:"requests"`
	// Workload names the arrival-process kind.
	Workload string `json:"workload"`
	// Policies holds one entry per routing policy.
	Policies []PolicyReport `json:"policies"`
}

// Marshal renders the report as deterministic indented JSON with a
// trailing newline.
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseReport decodes a report produced by Marshal.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// PolicyReport is one (scenario, policy) cell's aggregate metrics.
type PolicyReport struct {
	// Policy is the routing policy name.
	Policy string `json:"policy"`
	// Requests is the completed request count.
	Requests int `json:"requests"`
	// SimSeconds is the simulated makespan (last completion time).
	SimSeconds float64 `json:"sim_seconds"`
	// ThroughputRPS is Requests / SimSeconds.
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanMs is the mean request latency in milliseconds.
	MeanMs float64 `json:"mean_ms"`
	// P50ms, P99ms, and P999ms are latency percentiles in milliseconds.
	P50ms float64 `json:"p50_ms"`
	// P99ms is the 99th-percentile latency.
	P99ms float64 `json:"p99_ms"`
	// P999ms is the 99.9th-percentile latency.
	P999ms float64 `json:"p999_ms"`
	// CacheHitRate is the fleet-aggregate result-cache hit rate.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CoalesceRatio is the fraction of requests absorbed by joining an
	// in-flight execution instead of queueing their own.
	CoalesceRatio float64 `json:"coalesce_ratio"`
	// EnergyJoules is the fleet's total simulated energy: every engine
	// run's capped roofline energy (eq. 6/9, idle power included for
	// busy time) plus idle power for each replica's non-busy time.
	EnergyJoules float64 `json:"energy_joules"`
	// EnergyPerRequest is EnergyJoules / Requests.
	EnergyPerRequest float64 `json:"energy_per_request_joules"`
	// Replicas holds the per-replica breakdown, in replica-index order.
	Replicas []ReplicaReport `json:"replicas"`
}

// ReplicaReport is one replica's share of a policy cell.
type ReplicaReport struct {
	// ID is the replica index.
	ID int `json:"id"`
	// Machine is the replica's catalog machine key.
	Machine string `json:"machine"`
	// OperatingPoint is the pinned DVFS point name, empty at base clock.
	OperatingPoint string `json:"operating_point,omitempty"`
	// Requests is how many requests the policy routed here.
	Requests int `json:"requests"`
	// Hits and Misses are the replica result cache's lifetime counters.
	Hits uint64 `json:"hits"`
	// Misses counts cache lookups that found nothing.
	Misses uint64 `json:"misses"`
	// Coalesced counts requests that joined an in-flight execution.
	Coalesced int `json:"coalesced"`
	// EngineRuns counts actual simulated kernel executions.
	EngineRuns int `json:"engine_runs"`
	// HitRate is Hits / (Hits + Misses), 0 when the replica saw nothing.
	HitRate float64 `json:"hit_rate"`
	// BusyFrac is the fraction of the makespan spent serving.
	BusyFrac float64 `json:"busy_frac"`
	// EnergyJoules is the replica's kernel energy plus idle energy.
	EnergyJoules float64 `json:"energy_joules"`
	// MaxQueue is the deepest queue observed (in service + waiting).
	MaxQueue int `json:"max_queue"`
}

// percentile returns the q-quantile (0..1) of sorted by nearest rank.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// round6 trims a float to 6 decimal places so report JSON stays tidy
// and byte-stable under re-marshalling.
func round6(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}

// report reduces one finished simulation to its PolicyReport.
func (s *sim) report(policyName string) (PolicyReport, error) {
	n := len(s.latencies)
	sorted := append([]float64(nil), s.latencies...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, l := range sorted {
		sum += l
	}
	mean := 0.0
	if n > 0 {
		mean = sum / float64(n)
	}

	pr := PolicyReport{
		Policy:     policyName,
		Requests:   n,
		SimSeconds: round6(s.makespan),
		MeanMs:     round6(mean * 1e3),
		P50ms:      round6(percentile(sorted, 0.50) * 1e3),
		P99ms:      round6(percentile(sorted, 0.99) * 1e3),
		P999ms:     round6(percentile(sorted, 0.999) * 1e3),
	}
	if s.makespan > 0 {
		pr.ThroughputRPS = round6(float64(n) / s.makespan)
	}

	var hits, misses uint64
	var coalesced int
	var totalJ float64
	for _, rep := range s.fleet.reps {
		cs := rep.cache.Snapshot()
		hits += cs.Hits
		misses += cs.Misses
		coalesced += rep.coalesced
		idle := s.makespan - rep.busyTime
		if idle < 0 {
			idle = 0
		}
		repJ := rep.kernelJ + rep.params.Pi0*idle
		totalJ += repJ
		rr := ReplicaReport{
			ID:             rep.id,
			Machine:        rep.spec.Machine,
			OperatingPoint: rep.spec.OperatingPoint,
			Requests:       rep.requests,
			Hits:           cs.Hits,
			Misses:         cs.Misses,
			Coalesced:      rep.coalesced,
			EngineRuns:     rep.engine,
			EnergyJoules:   round6(repJ),
			MaxQueue:       rep.maxQueue,
		}
		if cs.Hits+cs.Misses > 0 {
			rr.HitRate = round6(float64(cs.Hits) / float64(cs.Hits+cs.Misses))
		}
		if s.makespan > 0 {
			rr.BusyFrac = round6(rep.busyTime / s.makespan)
		}
		pr.Replicas = append(pr.Replicas, rr)
	}
	if hits+misses > 0 {
		pr.CacheHitRate = round6(float64(hits) / float64(hits+misses))
	}
	if n > 0 {
		pr.CoalesceRatio = round6(float64(coalesced) / float64(n))
		pr.EnergyPerRequest = round6(totalJ / float64(n))
	}
	pr.EnergyJoules = round6(totalJ)
	return pr, nil
}
