package cluster

import (
	"sort"

	"repro/internal/stats"
)

// vnodesPerReplica is the ring's virtual-node fan-out. 64 points per
// replica keeps the per-replica load share within a few percent of
// uniform while the ring stays small enough that a lookup is a cheap
// binary search.
const vnodesPerReplica = 64

// Ring is a consistent-hash ring over replica indices: each replica
// owns vnodesPerReplica pseudo-random points on the 64-bit circle, and
// a key routes to the owner of the first point at or after the key's
// hash. The property that matters — pinned by the routing property
// tests — is minimal disruption: removing one replica from an N-replica
// ring remaps only the keys that replica owned, about 1/N of the total,
// while every other key keeps its owner.
type Ring struct {
	points []ringPoint
}

// ringPoint is one virtual node: a position on the circle and the
// replica that owns it.
type ringPoint struct {
	pos     uint64
	replica int
}

// NewRing builds a ring over replicas 0..n-1. The point positions are
// derived deterministically from seed, so equal (n, seed) pairs build
// identical rings. Ties on the circle (astronomically unlikely with
// 64-bit points) break toward the lower replica index to keep the
// ordering total.
func NewRing(n int, seed int64) *Ring {
	r := &Ring{points: make([]ringPoint, 0, n*vnodesPerReplica)}
	for rep := 0; rep < n; rep++ {
		for v := 0; v < vnodesPerReplica; v++ {
			pos := stats.DeriveState(seed, labelRing, uint64(rep), uint64(v))
			r.points = append(r.points, ringPoint{pos: pos, replica: rep})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// labelRing derives the ring's point stream from the policy seed.
const labelRing = 0x52494e47 // "RING"

// Lookup returns the replica owning key. The key is mixed once more
// through SplitMix64 so sequential or low-entropy keys still spread
// over the circle.
func (r *Ring) Lookup(key uint64) int {
	h := stats.SplitMix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point on the circle
	}
	return r.points[i].replica
}

// Without returns a new ring with every point owned by replica removed
// — the "replica left the fleet" transition the minimal-disruption
// property test exercises. Indices of the surviving replicas are
// unchanged.
func (r *Ring) Without(replica int) *Ring {
	out := &Ring{points: make([]ringPoint, 0, len(r.points))}
	for _, p := range r.points {
		if p.replica != replica {
			out.points = append(out.points, p)
		}
	}
	return out
}
