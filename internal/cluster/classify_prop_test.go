package cluster

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestEnergyAwareBatchClassifierProperty audits every routing decision
// the energy-aware policy makes across 300 randomized trials against
// two independent re-derivations:
//
//  1. a scalar reference scan with the eq. 10 classification written
//     out inline (the pre-batch router, re-implemented here so the
//     production path and the reference share no classifier code), and
//  2. the same scan driven by core.ClassifyRatiosInto over the
//     collected (speedup, greenup) ratio columns — the batched
//     classifier the production router is built on.
//
// All three must pick the same replica for every request, and the
// batched outcome column must equal the inline scalar outcomes
// element-wise. This pins the cluster router against any drift in the
// batch classifier (and vice versa).
func TestEnergyAwareBatchClassifierProperty(t *testing.T) {
	for trial := 0; trial < propTrials; trial++ {
		sc := propScenario(trial, []string{EnergyAware})
		decisions := 0
		var ts, es, sp, gr []float64
		var inlineOuts, batchOuts []core.TradeoffOutcome
		opts := Options{
			Workers: 1,
			routeObserver: func(now float64, req workload.Request, chosen int, f *Fleet) {
				decisions++
				n := f.NumReplicas()
				if cap(ts) < n {
					ts, es = make([]float64, n), make([]float64, n)
				}
				ts, es = ts[:n], es[:n]
				for i := 0; i < n; i++ {
					ts[i], es[i] = f.estimate(now, i, f.reps[i].model, req)
				}

				// Scalar reference scan, classifier inlined.
				best := 0
				bestT, bestE := ts[0], es[0]
				sp, gr = sp[:0], gr[:0]
				inlineOuts = inlineOuts[:0]
				for i := 1; i < n; i++ {
					speedup, greenup := bestT/ts[i], bestE/es[i]
					sp = append(sp, speedup)
					gr = append(gr, greenup)
					var out core.TradeoffOutcome
					switch {
					case speedup > 1 && greenup > 1:
						out = core.Both
					case speedup > 1:
						out = core.SpeedupOnly
					case greenup > 1:
						out = core.GreenupOnly
					default:
						out = core.Neither
					}
					inlineOuts = append(inlineOuts, out)
					switch out {
					case core.Both:
						best, bestT, bestE = i, ts[i], es[i]
					case core.GreenupOnly:
						if ts[i] <= 2*bestT {
							best, bestT, bestE = i, ts[i], es[i]
						}
					case core.SpeedupOnly:
						if greenup >= 0.95 {
							best, bestT, bestE = i, ts[i], es[i]
						}
					}
				}
				if best != chosen {
					t.Fatalf("trial %d decision %d: policy chose %d, scalar reference chose %d",
						trial, decisions, chosen, best)
				}

				// Batched classification of the same ratio columns must
				// reproduce the inline outcomes and the same final choice.
				if cap(batchOuts) < len(sp) {
					batchOuts = make([]core.TradeoffOutcome, len(sp))
				}
				batchOuts = batchOuts[:len(sp)]
				core.ClassifyRatiosInto(batchOuts, sp, gr)
				for j := range batchOuts {
					if batchOuts[j] != inlineOuts[j] {
						t.Fatalf("trial %d decision %d challenger %d: batch outcome %v != inline %v (speedup=%g greenup=%g)",
							trial, decisions, j+1, batchOuts[j], inlineOuts[j], sp[j], gr[j])
					}
				}
				bBest := 0
				bT, bE := ts[0], es[0]
				for i := 1; i < n; i++ {
					speedup, greenup := bT/ts[i], bE/es[i]
					switch core.ClassifyRatios(speedup, greenup) {
					case core.Both:
						bBest, bT, bE = i, ts[i], es[i]
					case core.GreenupOnly:
						if ts[i] <= 2*bT {
							bBest, bT, bE = i, ts[i], es[i]
						}
					case core.SpeedupOnly:
						if greenup >= 0.95 {
							bBest, bT, bE = i, ts[i], es[i]
						}
					}
				}
				if bBest != chosen {
					t.Fatalf("trial %d decision %d: policy chose %d, batched-classifier scan chose %d",
						trial, decisions, chosen, bBest)
				}
			},
		}
		if _, err := RunScenario(context.Background(), sc, opts); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if decisions != sc.Workload.Requests {
			t.Fatalf("trial %d: observed %d decisions for %d requests", trial, decisions, sc.Workload.Requests)
		}
	}
}
