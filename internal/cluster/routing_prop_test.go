package cluster

import (
	"context"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// propTrials is the randomized-trial count for each routing property.
// Trials are seeded deterministically from the trial index, so a
// failure reproduces exactly.
const propTrials = 300

// TestRingMinimalDisruptionProperty pins the consistent-hash ring's
// reason for existing, exactly: removing one replica remaps only the
// keys that replica owned (about K/N of them) and every other key
// keeps its owner. 300 randomized (fleet size, seed) trials.
func TestRingMinimalDisruptionProperty(t *testing.T) {
	const keysPerTrial = 1000
	for trial := 0; trial < propTrials; trial++ {
		r := stats.DeriveRand(int64(trial), stats.HashLabel("ring-prop"))
		n := 2 + r.Intn(15) // 2..16 replicas
		seed := int64(stats.DeriveState(int64(trial), 1))
		ring := NewRing(n, seed)
		removed := r.Intn(n)
		shrunk := ring.Without(removed)

		remapped := 0
		for k := 0; k < keysPerTrial; k++ {
			key := stats.DeriveState(int64(trial), 2, uint64(k))
			before := ring.Lookup(key)
			after := shrunk.Lookup(key)
			if before == removed {
				remapped++
				if after == removed {
					t.Fatalf("trial %d: key still maps to removed replica %d", trial, removed)
				}
				continue
			}
			if after != before {
				t.Fatalf("trial %d (n=%d, removed=%d): key %#x moved %d -> %d without its owner leaving",
					trial, n, removed, key, before, after)
			}
		}
		// The exact property above is the strong form; also sanity-check
		// the load share: the removed replica owned roughly K/N keys.
		// 4x leaves room for vnode variance at small K.
		if bound := 4 * keysPerTrial / n; remapped > bound {
			t.Fatalf("trial %d: removing 1 of %d replicas remapped %d/%d keys (bound %d)",
				trial, n, remapped, keysPerTrial, bound)
		}
	}
}

// propScenario builds a small randomized scenario for the policy
// properties: 2–6 i7-950 replicas under short Zipf Poisson traffic.
func propScenario(trial int, policies []string) Scenario {
	r := stats.DeriveRand(int64(trial), stats.HashLabel("policy-prop"))
	n := 2 + r.Intn(5)
	return Scenario{
		Name:     "prop",
		Desc:     "randomized property trial",
		Replicas: i7Replicas(n, 512),
		Workload: workload.Spec{
			Kind:        workload.Poisson,
			Rate:        50 + 400*r.Float64(),
			Requests:    1200,
			Keys:        50 + r.Intn(400),
			ZipfS:       0.8 + 0.6*r.Float64(),
			WorkFlops:   1e9,
			LoIntensity: 0.5,
			HiIntensity: 8,
			Seed:        int64(stats.DeriveState(int64(trial), 3)),
		},
		Policies:   policies,
		HitLatency: defaultHitLatency,
	}
}

// TestCacheAffinityBeatsRoundRobinProperty checks the economic claim
// behind the affinity policy on 300 randomized Zipf workloads: pinning
// a key's traffic to one replica's cache never yields a worse aggregate
// hit rate than spraying it round-robin across the fleet.
func TestCacheAffinityBeatsRoundRobinProperty(t *testing.T) {
	for trial := 0; trial < propTrials; trial++ {
		sc := propScenario(trial, []string{CacheAffinity, RoundRobin})
		rep, err := RunScenario(context.Background(), sc, Options{Workers: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		affinity, rr := rep.Policies[0], rep.Policies[1]
		if affinity.CacheHitRate+1e-9 < rr.CacheHitRate {
			t.Fatalf("trial %d (replicas=%d, keys=%d, zipf=%.2f): affinity hit rate %.4f < round-robin %.4f",
				trial, len(sc.Replicas), sc.Workload.Keys, sc.Workload.ZipfS,
				affinity.CacheHitRate, rr.CacheHitRate)
		}
	}
}

// TestLeastLoadedArgminProperty audits every routing decision the
// least-loaded policy makes across 300 randomized trials: the chosen
// replica always has the fleet-minimum queue occupancy at decision
// time (ties to the lowest index), which is exactly the "never exceeds
// the max-queue bound" guarantee — no replica's queue can grow while a
// shorter queue exists anywhere in the fleet.
func TestLeastLoadedArgminProperty(t *testing.T) {
	for trial := 0; trial < propTrials; trial++ {
		sc := propScenario(trial, []string{LeastLoaded})
		decisions := 0
		opts := Options{
			Workers: 1,
			routeObserver: func(now float64, req workload.Request, chosen int, f *Fleet) {
				decisions++
				min, argmin := f.QueueLen(0), 0
				for i := 1; i < f.NumReplicas(); i++ {
					if l := f.QueueLen(i); l < min {
						min, argmin = l, i
					}
				}
				if chosen != argmin {
					t.Fatalf("trial %d decision %d: chose replica %d (queue %d), argmin is %d (queue %d)",
						trial, decisions, chosen, f.QueueLen(chosen), argmin, min)
				}
			},
		}
		if _, err := RunScenario(context.Background(), sc, opts); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if decisions != sc.Workload.Requests {
			t.Fatalf("trial %d: observed %d decisions for %d requests", trial, decisions, sc.Workload.Requests)
		}
	}
}
