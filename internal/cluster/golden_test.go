package cluster

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden fleet report:
//
//	go test ./internal/cluster/ -run TestFleetReportGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenPath is the pinned fleet report for the smoke scenario.
const goldenPath = "testdata/fleet_golden.json"

// TestFleetReportGolden is the determinism harness's anchor: the smoke
// scenario's full report must be byte-identical at every worker count
// AND across commits — any change to the workload generators, the
// event loop, the policies, the cache, the roofline pricing, or the
// report encoding shows up as a golden diff that has to be reviewed
// and re-pinned deliberately.
func TestFleetReportGolden(t *testing.T) {
	sc, ok := Scenarios()["smoke"]
	if !ok {
		t.Fatal("catalog lost the smoke scenario")
	}
	var reports [][]byte
	for _, workers := range []int{1, 4, 16} {
		rep, err := RunScenario(context.Background(), sc, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := rep.Marshal()
		if err != nil {
			t.Fatalf("workers=%d: Marshal: %v", workers, err)
		}
		reports = append(reports, data)
	}
	for i, data := range reports[1:] {
		if !bytes.Equal(reports[0], data) {
			t.Fatalf("report at workers=%d differs from workers=1", []int{4, 16}[i])
		}
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, reports[0], 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(reports[0]))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(want, reports[0]) {
		t.Fatalf("fleet report drifted from %s\nrun `go test ./internal/cluster/ -run TestFleetReportGolden -update` after reviewing the change\ngot %d bytes, want %d", goldenPath, len(reports[0]), len(want))
	}
}
