package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// Routing policy names accepted by NewPolicy and Scenario.Policies.
const (
	// RoundRobin cycles through replicas in index order.
	RoundRobin = "round_robin"
	// LeastLoaded sends each request to the replica with the shortest
	// queue (ties to the lowest index).
	LeastLoaded = "least_loaded"
	// CacheAffinity routes by consistent hash of the request's content
	// key, so a key's traffic concentrates on one replica's cache.
	CacheAffinity = "cache_affinity"
	// EnergyAware scores candidate replicas with the roofline energy
	// model and applies the paper's eq. 10 trade-off vocabulary to pick
	// a destination (see energyAware.Route).
	EnergyAware = "energy_aware"
)

// PolicyNames lists every routing policy in canonical report order.
func PolicyNames() []string {
	return []string{RoundRobin, LeastLoaded, CacheAffinity, EnergyAware}
}

// Policy routes one request to a replica index. Route is called from
// the single-threaded event loop at the request's arrival instant; the
// fleet argument exposes read-only probes (queue lengths, pending work,
// cache occupancy) and implementations must not mutate fleet state.
type Policy interface {
	// Name returns the policy's canonical name.
	Name() string
	// Route picks the destination replica for req at simulation time now.
	Route(now float64, req workload.Request, f *Fleet) int
}

// NewPolicy builds the named policy for a fleet of n replicas. The seed
// parameterises any derived structure (the cache-affinity ring); equal
// (name, n, seed) triples build identical policies.
func NewPolicy(name string, n int, seed int64) (Policy, error) {
	switch name {
	case RoundRobin:
		return &roundRobin{n: n}, nil
	case LeastLoaded:
		return leastLoaded{}, nil
	case CacheAffinity:
		return &cacheAffinity{ring: NewRing(n, seed)}, nil
	case EnergyAware:
		return energyAware{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q (have %v)", name, PolicyNames())
	}
}

// roundRobin cycles a counter over the replica indices.
type roundRobin struct {
	n    int
	next int
}

// Name implements Policy.
func (p *roundRobin) Name() string { return RoundRobin }

// Route implements Policy.
func (p *roundRobin) Route(_ float64, _ workload.Request, _ *Fleet) int {
	r := p.next
	p.next = (p.next + 1) % p.n
	return r
}

// leastLoaded picks the replica with the fewest requests in service or
// queued, breaking ties toward the lowest index.
type leastLoaded struct{}

// Name implements Policy.
func (leastLoaded) Name() string { return LeastLoaded }

// Route implements Policy.
func (leastLoaded) Route(_ float64, _ workload.Request, f *Fleet) int {
	best, bestLen := 0, f.reps[0].queueLen()
	for i := 1; i < len(f.reps); i++ {
		if l := f.reps[i].queueLen(); l < bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

// cacheAffinity routes by consistent hash of the content key.
type cacheAffinity struct {
	ring *Ring
}

// Name implements Policy.
func (p *cacheAffinity) Name() string { return CacheAffinity }

// Route implements Policy.
func (p *cacheAffinity) Route(_ float64, req workload.Request, _ *Fleet) int {
	return p.ring.Lookup(req.Key)
}

// energyAware scores every replica with the roofline model and keeps a
// running incumbent, applying the paper's eq. 10 classification to each
// challenger.
type energyAware struct{}

// Name implements Policy.
func (energyAware) Name() string { return EnergyAware }

// estimate predicts (completion latency, marginal energy) for sending
// req to replica i now, pricing a miss with the EnergyModel em: a
// predicted cache hit costs the hit latency and its idle-power energy;
// a miss waits out the replica's pending work and then runs the
// kernel, costing em's capped time and energy predictions (eq. 6/9
// under the default analytic model).
func (f *Fleet) estimate(now float64, i int, em model.EnergyModel, req workload.Request) (t, e float64) {
	rep := f.reps[i]
	if rep.cache.Peek(rep.key(req)) {
		return f.hitLatency, rep.params.Pi0 * f.hitLatency
	}
	k := core.KernelAt(req.Work, req.Intensity)
	return rep.pendingWork(now) + em.CappedTime(k), em.CappedEnergy(k)
}

// estimateInto gathers the per-replica (time, energy) estimates for req
// into the fleet's scratch columns, growing them only on the first call
// for a given fleet size. Each replica is priced by its own EnergyModel
// (ReplicaSpec.Model; analytic by default, which makes the gathered
// columns — and therefore every routing decision — byte-identical to
// the pre-interface router).
func (f *Fleet) estimateInto(now float64, req workload.Request) (t, e []float64) {
	n := len(f.reps)
	if cap(f.estT) < n {
		f.estT = make([]float64, n)
		f.estE = make([]float64, n)
	}
	t, e = f.estT[:n], f.estE[:n]
	for i := 0; i < n; i++ {
		t[i], e[i] = f.estimate(now, i, f.reps[i].model, req)
	}
	return t, e
}

// routeFromEstimates runs the incumbent scan over gathered (time,
// energy) columns. Replica 0 opens as the incumbent; each challenger's
// speedup and greenup ratios against the incumbent are classified with
// core.ClassifyRatios per eq. 10. A challenger that achieves Both always
// wins; GreenupOnly wins if it costs at most 2x the incumbent's latency
// (spend time to save energy, boundedly); SpeedupOnly wins if it gives
// back at most 5% of the energy. Neither never wins. The scan order is
// fixed, so the decision is deterministic.
func routeFromEstimates(t, e []float64) int {
	best := 0
	bestT, bestE := t[0], e[0]
	for i := 1; i < len(t); i++ {
		ti, ei := t[i], e[i]
		speedup, greenup := bestT/ti, bestE/ei
		switch core.ClassifyRatios(speedup, greenup) {
		case core.Both:
			best, bestT, bestE = i, ti, ei
		case core.GreenupOnly:
			if ti <= 2*bestT {
				best, bestT, bestE = i, ti, ei
			}
		case core.SpeedupOnly:
			if greenup >= 0.95 {
				best, bestT, bestE = i, ti, ei
			}
		}
	}
	return best
}

// Route implements Policy: it gathers every replica's estimate into the
// fleet's scratch columns and applies the eq. 10 incumbent scan (see
// routeFromEstimates).
func (energyAware) Route(now float64, req workload.Request, f *Fleet) int {
	t, e := f.estimateInto(now, req)
	return routeFromEstimates(t, e)
}
