package fmm

import (
	"testing"
)

func TestParallelMatchesSerial(t *testing.T) {
	tr, u := buildSmall(t, 1500, 64, 21)
	serialPairs, err := tr.InteractF32(u)
	if err != nil {
		t.Fatal(err)
	}
	serial := append([]float64(nil), tr.Pts.Phi...)
	for _, workers := range []int{1, 2, 4, 0} {
		parPairs, err := tr.InteractF32Parallel(u, workers)
		if err != nil {
			t.Fatal(err)
		}
		if parPairs != serialPairs {
			t.Errorf("workers=%d: pairs %d != serial %d", workers, parPairs, serialPairs)
		}
		for i := range serial {
			// Identical arithmetic per leaf, so results are bit-equal.
			if tr.Pts.Phi[i] != serial[i] {
				t.Fatalf("workers=%d: φ[%d] = %v != serial %v", workers, i, tr.Pts.Phi[i], serial[i])
			}
		}
	}
}

func TestParallelErrors(t *testing.T) {
	tr, _ := buildSmall(t, 100, 16, 1)
	if _, err := tr.InteractF32Parallel(ULists{}, 2); err == nil {
		t.Error("mismatched U-lists accepted")
	}
}

func TestParallelRace(t *testing.T) {
	// Run under -race in CI: concurrent leaf tasks must not conflict.
	tr, u := buildSmall(t, 2000, 32, 5)
	if _, err := tr.InteractF32Parallel(u, 8); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInteractF32Serial(b *testing.B) {
	p := UniformPoints(4000, 1)
	tr, err := Build(p, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	u := tr.BuildULists()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.InteractF32(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInteractF32Parallel(b *testing.B) {
	p := UniformPoints(4000, 1)
	tr, err := Build(p, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	u := tr.BuildULists()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.InteractF32Parallel(u, 0); err != nil {
			b.Fatal(err)
		}
	}
}
