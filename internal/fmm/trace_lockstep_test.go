package fmm

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/machine"
)

// simulateTrafficWords is the pre-segment word-at-a-time replay,
// preserved verbatim as the reference semantics for SimulateTraffic.
// Every counter the segment-based implementation produces must be
// bit-identical to this loop.
func simulateTrafficWords(t *Tree, u ULists, v Variant, h *cache.Hierarchy) (Traffic, error) {
	h.Reset()
	var tr Traffic

	group := v.TargetTile * BroadcastWidth
	readRecord := func(idx int) {
		if v.Layout == AoS {
			h.Read(baseAoS+uint64(idx)*recordBytes, recordBytes)
			return
		}
		h.Read(baseX+uint64(idx)*wordBytes, wordBytes)
		h.Read(baseY+uint64(idx)*wordBytes, wordBytes)
		h.Read(baseZ+uint64(idx)*wordBytes, wordBytes)
		h.Read(baseD+uint64(idx)*wordBytes, wordBytes)
	}

	for bi, li := range t.Leaves {
		b := &t.Nodes[li]
		qb := b.NumPoints()
		if qb == 0 {
			continue
		}
		for i := b.Start; i < b.End; i++ {
			readRecord(i)
		}
		sweeps := (qb + group - 1) / group
		for _, si := range u[bi] {
			s := &t.Nodes[si]
			qs := s.NumPoints()
			if qs == 0 {
				continue
			}
			blockBytes := float64(qs * recordBytes)
			switch v.Staging {
			case CacheOnly:
				for sweep := 0; sweep < sweeps; sweep++ {
					for j := s.Start; j < s.End; j++ {
						readRecord(j)
					}
				}
			case SharedMem:
				for j := s.Start; j < s.End; j++ {
					readRecord(j)
				}
				tr.SharedBytes += float64(sweeps) * blockBytes
			case TextureMem:
				for j := s.Start; j < s.End; j++ {
					readRecord(j)
				}
				tr.TextureBytes += float64(sweeps) * blockBytes
			}
			if v.TargetTile == 1 {
				for i := b.Start; i < b.End; i++ {
					h.Read(basePhi+uint64(i)*wordBytes, wordBytes)
					h.Write(basePhi+uint64(i)*wordBytes, wordBytes)
				}
			}
		}
		for i := b.Start; i < b.End; i++ {
			h.Write(basePhi+uint64(i)*wordBytes, wordBytes)
		}
	}

	tr.DRAMReadBytes = float64(h.DRAMReadBytes())
	tr.DRAMWriteBytes = float64(h.DRAMWriteBytes())
	for _, ls := range h.Stats() {
		tr.Levels = append(tr.Levels, core.LevelTraffic{
			Name:  ls.Name,
			Bytes: float64(ls.BytesServed),
		})
	}
	return tr, nil
}

// lockstepHierarchies builds the geometries the equivalence is checked
// on: the study's GTX 580 hierarchy plus a deliberately tiny two-level
// one where source blocks overflow L1 and lanes conflict, keeping the
// segment fallback paths honest.
func lockstepHierarchies(t *testing.T) map[string]func() *cache.Hierarchy {
	t.Helper()
	return map[string]func() *cache.Hierarchy{
		"gtx580": func() *cache.Hierarchy {
			h, err := cache.FromMachine(machine.GTX580())
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
		"tiny": func() *cache.Hierarchy {
			h, err := cache.New([]machine.CacheLevel{
				{Name: "L1", Size: 4 << 10, LineSize: 64, Assoc: 2},
				{Name: "L2", Size: 32 << 10, LineSize: 64, Assoc: 4},
			})
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
	}
}

// TestSimulateTrafficMatchesWordReplay replays every generated variant
// (all layouts × stagings × tiles × unrolls × widths) through the
// segment-based SimulateTraffic and the preserved word-at-a-time
// reference, on two hierarchies, and requires identical Traffic —
// DRAM bytes, per-level served bytes in order, staging bytes.
func TestSimulateTrafficMatchesWordReplay(t *testing.T) {
	p := UniformPoints(768, 6)
	tree, err := Build(p, 96, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := tree.BuildULists()
	for name, mk := range lockstepHierarchies(t) {
		hSeg, hWord := mk(), mk()
		for _, v := range GenerateVariants() {
			got, err := tree.SimulateTraffic(u, v, hSeg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, v.Name(), err)
			}
			want, err := simulateTrafficWords(tree, u, v, hWord)
			if err != nil {
				t.Fatalf("%s/%s: reference: %v", name, v.Name(), err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: traffic diverged\n got  %+v\n want %+v", name, v.Name(), got, want)
			}
		}
	}
}

// TestSimulateTrafficMatchesWordReplayClustered repeats the lockstep
// check on a clustered distribution, whose ragged leaf populations
// produce uneven segment counts and single-point leaves.
func TestSimulateTrafficMatchesWordReplayClustered(t *testing.T) {
	p := ClusteredPoints(1024, 3, 17)
	tree, err := Build(p, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	u := tree.BuildULists()
	for name, mk := range lockstepHierarchies(t) {
		hSeg, hWord := mk(), mk()
		for _, v := range []Variant{
			{Layout: SoA, Staging: CacheOnly, TargetTile: 1, Unroll: 1, VectorWidth: 1},
			{Layout: SoA, Staging: CacheOnly, TargetTile: 16, Unroll: 4, VectorWidth: 2},
			{Layout: AoS, Staging: CacheOnly, TargetTile: 4, Unroll: 2, VectorWidth: 1},
			{Layout: SoA, Staging: SharedMem, TargetTile: 8, Unroll: 1, VectorWidth: 4},
			{Layout: AoS, Staging: TextureMem, TargetTile: 1, Unroll: 8, VectorWidth: 1},
		} {
			got, err := tree.SimulateTraffic(u, v, hSeg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, v.Name(), err)
			}
			want, err := simulateTrafficWords(tree, u, v, hWord)
			if err != nil {
				t.Fatalf("%s/%s: reference: %v", name, v.Name(), err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: traffic diverged\n got  %+v\n want %+v", name, v.Name(), got, want)
			}
		}
	}
}

// TestSimulateTrafficAllocs pins the PR 4 allocation regression fix:
// Traffic.Levels is preallocated, so a SimulateTraffic call allocates
// a small constant independent of sweep and access counts.
func TestSimulateTrafficAllocs(t *testing.T) {
	p := UniformPoints(512, 6)
	tree, err := Build(p, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := tree.BuildULists()
	h, err := cache.FromMachine(machine.GTX580())
	if err != nil {
		t.Fatal(err)
	}
	v := Variant{Layout: SoA, Staging: CacheOnly, TargetTile: 4, Unroll: 2, VectorWidth: 2}
	if _, err := tree.SimulateTraffic(u, v, h); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := tree.SimulateTraffic(u, v, h); err != nil {
			t.Fatal(err)
		}
	})
	// The preallocated Traffic.Levels slice is the only per-call
	// allocation — nothing proportional to leaves, sweeps, or accesses.
	if n > 2 {
		t.Errorf("SimulateTraffic allocates %v times per call, want <= 2", n)
	}
}
