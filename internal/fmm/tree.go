package fmm

import (
	"errors"
	"fmt"
)

// Node is one octree box. Points of a node occupy the contiguous index
// range [Start, End) of the tree's (reordered) point arrays.
type Node struct {
	// MinX/MinY/MinZ and Size define the box [Min, Min+Size)³.
	MinX, MinY, MinZ float64
	// Size is the box edge length.
	Size float64
	// Start and End delimit the node's points.
	Start, End int
	// Children holds node indices, -1 where absent; all -1 for a leaf.
	Children [8]int
	// Leaf marks a leaf node.
	Leaf bool
	// Depth is 0 at the root.
	Depth int
}

// NumPoints returns the number of points in the node.
func (n *Node) NumPoints() int { return n.End - n.Start }

// touches reports whether two boxes are adjacent or overlapping
// (sharing at least a corner).
func (n *Node) touches(o *Node) bool {
	const eps = 1e-12
	return n.MinX <= o.MinX+o.Size+eps && o.MinX <= n.MinX+n.Size+eps &&
		n.MinY <= o.MinY+o.Size+eps && o.MinY <= n.MinY+n.Size+eps &&
		n.MinZ <= o.MinZ+o.Size+eps && o.MinZ <= n.MinZ+n.Size+eps
}

// Tree is an adaptive octree over a point set. Building the tree
// reorders the point arrays so every node's points are contiguous.
type Tree struct {
	// Pts are the (reordered) points.
	Pts *Points
	// Nodes is the node pool; Nodes[0] is the root.
	Nodes []Node
	// Leaves lists leaf node indices in build order.
	Leaves []int
	// MaxLeafPoints is the split threshold q used to build the tree.
	MaxLeafPoints int
}

// Build constructs the octree, splitting any box with more than
// maxLeafPts points until maxDepth.
func Build(p *Points, maxLeafPts, maxDepth int) (*Tree, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Len() == 0 {
		return nil, errors.New("fmm: no points")
	}
	if maxLeafPts < 1 {
		return nil, errors.New("fmm: maxLeafPts must be >= 1")
	}
	if maxDepth < 0 || maxDepth > 21 {
		return nil, fmt.Errorf("fmm: maxDepth %d outside [0, 21]", maxDepth)
	}
	t := &Tree{Pts: p, MaxLeafPoints: maxLeafPts}
	t.Nodes = append(t.Nodes, Node{Size: 1, Start: 0, End: p.Len()})
	for i := range t.Nodes[0].Children {
		t.Nodes[0].Children[i] = -1
	}
	t.split(0, maxLeafPts, maxDepth)
	return t, nil
}

// split recursively subdivides node idx.
func (t *Tree) split(idx, maxLeafPts, maxDepth int) {
	n := &t.Nodes[idx]
	if n.NumPoints() <= maxLeafPts || n.Depth >= maxDepth {
		n.Leaf = true
		t.Leaves = append(t.Leaves, idx)
		return
	}
	half := n.Size / 2
	cx, cy, cz := n.MinX+half, n.MinY+half, n.MinZ+half

	// Bucket the node's points by octant, then write them back in
	// octant order so each child's range is contiguous.
	p := t.Pts
	type rec struct{ x, y, z, d, phi float64 }
	var buckets [8][]rec
	octant := func(i int) int {
		o := 0
		if p.X[i] >= cx {
			o |= 1
		}
		if p.Y[i] >= cy {
			o |= 2
		}
		if p.Z[i] >= cz {
			o |= 4
		}
		return o
	}
	for i := n.Start; i < n.End; i++ {
		o := octant(i)
		buckets[o] = append(buckets[o], rec{p.X[i], p.Y[i], p.Z[i], p.D[i], p.Phi[i]})
	}
	w := n.Start
	var childStart [8]int
	var childEnd [8]int
	for o := 0; o < 8; o++ {
		childStart[o] = w
		for _, r := range buckets[o] {
			p.X[w], p.Y[w], p.Z[w], p.D[w], p.Phi[w] = r.x, r.y, r.z, r.d, r.phi
			w++
		}
		childEnd[o] = w
	}

	// Record geometry before appending children: appends may grow the
	// node slice and invalidate n.
	geo := *n
	nodeIdx := idx
	for o := 0; o < 8; o++ {
		if childStart[o] == childEnd[o] {
			continue
		}
		child := Node{
			MinX:  geo.MinX + float64(o&1)*half,
			MinY:  geo.MinY + float64((o>>1)&1)*half,
			MinZ:  geo.MinZ + float64((o>>2)&1)*half,
			Size:  half,
			Start: childStart[o],
			End:   childEnd[o],
			Depth: geo.Depth + 1,
		}
		for i := range child.Children {
			child.Children[i] = -1
		}
		ci := len(t.Nodes)
		t.Nodes = append(t.Nodes, child)
		t.Nodes[nodeIdx].Children[o] = ci
		t.split(ci, maxLeafPts, maxDepth)
	}
}

// Validate checks structural invariants: contiguous, disjoint point
// ranges covering all points; children inside parents; leaves within
// the split threshold unless depth-capped.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return errors.New("fmm: empty tree")
	}
	root := &t.Nodes[0]
	if root.Start != 0 || root.End != t.Pts.Len() {
		return errors.New("fmm: root does not cover all points")
	}
	covered := 0
	for _, li := range t.Leaves {
		l := &t.Nodes[li]
		if !l.Leaf {
			return fmt.Errorf("fmm: node %d in leaf list is not a leaf", li)
		}
		covered += l.NumPoints()
		for i := l.Start; i < l.End; i++ {
			if t.Pts.X[i] < l.MinX || t.Pts.X[i] >= l.MinX+l.Size+1e-12 ||
				t.Pts.Y[i] < l.MinY || t.Pts.Y[i] >= l.MinY+l.Size+1e-12 ||
				t.Pts.Z[i] < l.MinZ || t.Pts.Z[i] >= l.MinZ+l.Size+1e-12 {
				return fmt.Errorf("fmm: point %d escapes leaf %d", i, li)
			}
		}
	}
	if covered != t.Pts.Len() {
		return fmt.Errorf("fmm: leaves cover %d of %d points", covered, t.Pts.Len())
	}
	return nil
}

// ULists holds, per leaf (indexed as in Tree.Leaves), the node indices
// of its U-list: every leaf whose box touches it, including itself.
type ULists [][]int

// BuildULists computes the U-list of every leaf by walking the tree and
// pruning subtrees whose boxes do not touch the target leaf.
func (t *Tree) BuildULists() ULists {
	u := make(ULists, len(t.Leaves))
	for i, li := range t.Leaves {
		leaf := &t.Nodes[li]
		var out []int
		var walk func(ni int)
		walk = func(ni int) {
			nd := &t.Nodes[ni]
			if !leaf.touches(nd) {
				return
			}
			if nd.Leaf {
				out = append(out, ni)
				return
			}
			for _, c := range nd.Children {
				if c >= 0 {
					walk(c)
				}
			}
		}
		walk(0)
		u[i] = out
	}
	return u
}

// Pairs returns the total number of (target, source) point pairs the
// U-list phase visits, including self pairs that the kernel skips.
func (t *Tree) Pairs(u ULists) int64 {
	var pairs int64
	for i, li := range t.Leaves {
		nb := int64(0)
		for _, si := range u[i] {
			nb += int64(t.Nodes[si].NumPoints())
		}
		pairs += int64(t.Nodes[li].NumPoints()) * nb
	}
	return pairs
}
