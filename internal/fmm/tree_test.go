package fmm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointsGenerators(t *testing.T) {
	for name, p := range map[string]*Points{
		"uniform":   UniformPoints(500, 1),
		"clustered": ClusteredPoints(500, 4, 1),
	} {
		if p.Len() != 500 {
			t.Errorf("%s: len = %d", name, p.Len())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		for i := 0; i < p.Len(); i++ {
			if p.D[i] <= 0 {
				t.Errorf("%s: non-positive density at %d", name, i)
				break
			}
		}
	}
	// Determinism.
	a := UniformPoints(50, 7)
	b := UniformPoints(50, 7)
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("point generation must be deterministic per seed")
		}
	}
}

func TestPointsValidate(t *testing.T) {
	p := NewPoints(2)
	p.X[1] = 1.5
	if err := p.Validate(); err == nil {
		t.Error("out-of-cube point accepted")
	}
	p = NewPoints(2)
	p.Y = p.Y[:1]
	if err := p.Validate(); err == nil {
		t.Error("ragged arrays accepted")
	}
}

func TestPointsSwap(t *testing.T) {
	p := NewPoints(2)
	p.X[0], p.X[1] = 0.1, 0.2
	p.D[0], p.D[1] = 1, 2
	p.Swap(0, 1)
	if p.X[0] != 0.2 || p.D[0] != 2 || p.X[1] != 0.1 {
		t.Error("swap incomplete")
	}
}

func TestBuildErrors(t *testing.T) {
	p := UniformPoints(10, 1)
	if _, err := Build(p, 0, 8); err == nil {
		t.Error("maxLeafPts 0 accepted")
	}
	if _, err := Build(p, 4, -1); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := Build(p, 4, 22); err == nil {
		t.Error("huge depth accepted")
	}
	if _, err := Build(NewPoints(0), 4, 8); err == nil {
		t.Error("empty points accepted")
	}
	bad := NewPoints(1)
	bad.X[0] = 2
	if _, err := Build(bad, 4, 8); err == nil {
		t.Error("invalid points accepted")
	}
}

func TestTreeInvariants(t *testing.T) {
	for _, n := range []int{1, 7, 64, 500, 2000} {
		p := UniformPoints(n, int64(n))
		tr, err := Build(p, 32, 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		// Every leaf within the split threshold (depth cap not hit at
		// these sizes).
		for _, li := range tr.Leaves {
			if got := tr.Nodes[li].NumPoints(); got > 32 {
				t.Errorf("n=%d: leaf with %d > 32 points", n, got)
			}
		}
	}
}

func TestTreeDepthCap(t *testing.T) {
	// Duplicate-heavy input cannot be split below the threshold; the
	// depth cap must stop recursion.
	p := NewPoints(100)
	for i := range p.X {
		p.X[i], p.Y[i], p.Z[i], p.D[i] = 0.5, 0.5, 0.5, 1
	}
	tr, err := Build(p, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, li := range tr.Leaves {
		if tr.Nodes[li].Depth > 3 {
			t.Error("depth cap violated")
		}
	}
}

func TestClusteredTreeIsAdaptive(t *testing.T) {
	p := ClusteredPoints(3000, 2, 5)
	tr, err := Build(p, 64, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	minD, maxD := 99, 0
	for _, li := range tr.Leaves {
		d := tr.Nodes[li].Depth
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD-minD < 1 {
		t.Errorf("clustered tree should have varying leaf depth (min %d, max %d)", minD, maxD)
	}
}

func TestPropTreePartition(t *testing.T) {
	f := func(seed int64, nRaw uint16, qRaw uint8) bool {
		n := int(nRaw%1000) + 1
		q := int(qRaw%60) + 4
		p := UniformPoints(n, seed)
		tr, err := Build(p, q, 12)
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestULists(t *testing.T) {
	p := UniformPoints(1000, 3)
	tr, err := Build(p, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	u := tr.BuildULists()
	if len(u) != len(tr.Leaves) {
		t.Fatalf("U-lists = %d, leaves = %d", len(u), len(tr.Leaves))
	}
	leafSet := map[int]bool{}
	for _, li := range tr.Leaves {
		leafSet[li] = true
	}
	for bi, list := range u {
		if len(list) == 0 {
			t.Fatalf("leaf %d has empty U-list", bi)
		}
		self := false
		for _, si := range list {
			if !leafSet[si] {
				t.Fatalf("U-list of %d contains non-leaf node %d", bi, si)
			}
			if si == tr.Leaves[bi] {
				self = true
			}
			// Symmetry of the geometric predicate.
			if !tr.Nodes[tr.Leaves[bi]].touches(&tr.Nodes[si]) {
				t.Fatalf("U-list of %d contains non-touching node %d", bi, si)
			}
		}
		if !self {
			t.Errorf("leaf %d missing from its own U-list", bi)
		}
	}
	// Completeness: every touching leaf pair is in the list.
	for bi, lbi := range tr.Leaves {
		inList := map[int]bool{}
		for _, si := range u[bi] {
			inList[si] = true
		}
		for _, lj := range tr.Leaves {
			if tr.Nodes[lbi].touches(&tr.Nodes[lj]) && !inList[lj] {
				t.Fatalf("leaf %d: touching leaf %d missing from U-list", bi, lj)
			}
		}
	}
}

func TestUListSymmetry(t *testing.T) {
	// If S is in U(B), then B is in U(S): touching is symmetric.
	p := UniformPoints(800, 9)
	tr, err := Build(p, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	u := tr.BuildULists()
	leafOrder := map[int]int{}
	for bi, li := range tr.Leaves {
		leafOrder[li] = bi
	}
	for bi, list := range u {
		for _, si := range list {
			sj := leafOrder[si]
			found := false
			for _, back := range u[sj] {
				if back == tr.Leaves[bi] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("U-list not symmetric between leaves %d and %d", bi, sj)
			}
		}
	}
}

func TestPairsCount(t *testing.T) {
	// Small enough for one leaf: pairs = n².
	p := UniformPoints(16, 2)
	tr, err := Build(p, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := tr.BuildULists()
	if got := tr.Pairs(u); got != 256 {
		t.Errorf("single-leaf pairs = %d, want 256", got)
	}
}

func TestTouchesPredicate(t *testing.T) {
	a := Node{MinX: 0, MinY: 0, MinZ: 0, Size: 0.25}
	cases := []struct {
		b    Node
		want bool
	}{
		{Node{MinX: 0.25, MinY: 0, MinZ: 0, Size: 0.25}, true},       // face
		{Node{MinX: 0.25, MinY: 0.25, MinZ: 0.25, Size: 0.25}, true}, // corner
		{Node{MinX: 0.5, MinY: 0, MinZ: 0, Size: 0.25}, false},       // gap
		{Node{MinX: 0, MinY: 0, MinZ: 0, Size: 0.25}, true},          // self
		{Node{MinX: 0.125, MinY: 0.125, MinZ: 0, Size: 0.125}, true}, // overlap
		{Node{MinX: 0.25, MinY: 0.5, MinZ: 0, Size: 0.25}, false},    // diagonal gap
	}
	for i, c := range cases {
		if got := a.touches(&c.b); got != c.want {
			t.Errorf("case %d: touches = %v, want %v", i, got, c.want)
		}
	}
}

func TestInteriorLeafHas27Neighbours(t *testing.T) {
	// A complete uniform grid: an interior leaf touches exactly 27
	// leaves (itself + 26 neighbours).
	p := NewPoints(512)
	i := 0
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				p.X[i] = (float64(x) + 0.5) / 8
				p.Y[i] = (float64(y) + 0.5) / 8
				p.Z[i] = (float64(z) + 0.5) / 8
				p.D[i] = 1
				i++
			}
		}
	}
	tr, err := Build(p, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := tr.BuildULists()
	if len(tr.Leaves) != 512 {
		t.Fatalf("expected 512 leaves, got %d", len(tr.Leaves))
	}
	// Find an interior leaf (box not on the boundary).
	counts := map[int]int{}
	for bi, li := range tr.Leaves {
		n := &tr.Nodes[li]
		interior := n.MinX > 0.01 && n.MinX+n.Size < 0.99 &&
			n.MinY > 0.01 && n.MinY+n.Size < 0.99 &&
			n.MinZ > 0.01 && n.MinZ+n.Size < 0.99
		if interior {
			counts[len(u[bi])]++
		}
	}
	if len(counts) != 1 {
		t.Fatalf("interior U-list sizes vary: %v", counts)
	}
	for size := range counts {
		if size != 27 {
			t.Errorf("interior U-list size = %d, want 27", size)
		}
	}
	if math.Abs(float64(tr.Pairs(u))-float64(512*27)) > 1e-9 {
		// Not exactly n*27 because boundary leaves have fewer
		// neighbours; just sanity-check the magnitude.
		if tr.Pairs(u) >= 512*27 || tr.Pairs(u) <= 512*8 {
			t.Errorf("pairs = %d out of plausible range", tr.Pairs(u))
		}
	}
}
