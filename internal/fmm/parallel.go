package fmm

import (
	"errors"
	"runtime"
	"sync"
)

// InteractF32Parallel runs the float32 U-list kernel with a pool of
// worker goroutines, one task per target leaf. Target leaves own
// disjoint ranges of Phi, so workers write without synchronisation —
// the same decomposition the paper's GPU kernel uses (one thread block
// per target leaf). workers ≤ 0 selects GOMAXPROCS. Returns the number
// of evaluated pairs.
func (t *Tree) InteractF32Parallel(u ULists, workers int) (int64, error) {
	if len(u) != len(t.Leaves) {
		return 0, errors.New("fmm: U-list count does not match leaves")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := t.Pts
	for i := range p.Phi {
		p.Phi[i] = 0
	}

	tasks := make(chan int)
	pairCounts := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var pairs int64
			for bi := range tasks {
				pairs += t.interactLeafF32(u, bi)
			}
			pairCounts[w] = pairs
		}(w)
	}
	for bi := range t.Leaves {
		tasks <- bi
	}
	close(tasks)
	wg.Wait()

	var total int64
	for _, c := range pairCounts {
		total += c
	}
	return total, nil
}

// interactLeafF32 evaluates one target leaf's interactions; it touches
// only that leaf's Phi range.
func (t *Tree) interactLeafF32(u ULists, bi int) int64 {
	p := t.Pts
	b := &t.Nodes[t.Leaves[bi]]
	var pairs int64
	for ti := b.Start; ti < b.End; ti++ {
		tx, ty, tz := float32(p.X[ti]), float32(p.Y[ti]), float32(p.Z[ti])
		var phi float32
		for _, si := range u[bi] {
			s := &t.Nodes[si]
			for sj := s.Start; sj < s.End; sj++ {
				dx := tx - float32(p.X[sj])
				dy := ty - float32(p.Y[sj])
				dz := tz - float32(p.Z[sj])
				r := dx*dx + dy*dy + dz*dz
				if r == 0 {
					continue
				}
				phi += float32(p.D[sj]) * rsqrtf(r)
				pairs++
			}
		}
		p.Phi[ti] += float64(phi)
	}
	return pairs
}
