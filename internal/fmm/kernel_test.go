package fmm

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func buildSmall(t *testing.T, n int, q int, seed int64) (*Tree, ULists) {
	t.Helper()
	p := UniformPoints(n, seed)
	tr, err := Build(p, q, 8)
	if err != nil {
		t.Fatal(err)
	}
	return tr, tr.BuildULists()
}

func TestInteractMatchesDirect(t *testing.T) {
	tr, u := buildSmall(t, 300, 16, 4)
	pairs, err := tr.Interact(u)
	if err != nil {
		t.Fatal(err)
	}
	if pairs <= 0 {
		t.Fatal("no pairs evaluated")
	}
	phi := append([]float64(nil), tr.Pts.Phi...)
	want, err := tr.DirectNearField(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := range phi {
		if stats.RelErr(phi[i], want[i]) > 1e-12 {
			t.Fatalf("φ[%d] = %v, direct %v", i, phi[i], want[i])
		}
	}
}

func TestInteractF32MatchesF64(t *testing.T) {
	// The paper verifies its GPU kernel against an equivalent CPU
	// kernel; the float32 rsqrt version must agree with the float64
	// reference to single precision.
	tr, u := buildSmall(t, 300, 16, 8)
	if _, err := tr.Interact(u); err != nil {
		t.Fatal(err)
	}
	ref := append([]float64(nil), tr.Pts.Phi...)
	pairs32, err := tr.InteractF32(u)
	if err != nil {
		t.Fatal(err)
	}
	pairs64, _ := tr.Interact(u)
	if pairs32 != pairs64 {
		t.Errorf("pair counts differ: %d vs %d", pairs32, pairs64)
	}
	worst := 0.0
	// Re-run f32 (Interact overwrote Phi).
	if _, err := tr.InteractF32(u); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] == 0 {
			continue
		}
		e := stats.RelErr(tr.Pts.Phi[i], ref[i])
		if e > worst {
			worst = e
		}
	}
	// rsqrtf with two Newton steps is good to ~1e-6 per term; sums of
	// ~hundreds of terms stay well under 1e-4.
	if worst > 1e-4 {
		t.Errorf("float32 kernel worst relative error %v", worst)
	}
}

func TestInteractSelfPairSkipped(t *testing.T) {
	// Two coincident points: the self-pair and the coincident pair both
	// have r = 0 and are skipped without NaN/Inf.
	p := NewPoints(2)
	p.X[0], p.Y[0], p.Z[0], p.D[0] = 0.5, 0.5, 0.5, 1
	p.X[1], p.Y[1], p.Z[1], p.D[1] = 0.5, 0.5, 0.5, 2
	tr, err := Build(p, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := tr.BuildULists()
	pairs, err := tr.Interact(u)
	if err != nil {
		t.Fatal(err)
	}
	if pairs != 0 {
		t.Errorf("coincident pairs evaluated: %d", pairs)
	}
	for i, v := range tr.Pts.Phi {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("φ[%d] = %v", i, v)
		}
	}
}

func TestInteractErrors(t *testing.T) {
	tr, _ := buildSmall(t, 50, 8, 1)
	if _, err := tr.Interact(ULists{}); err == nil {
		t.Error("mismatched U-lists accepted")
	}
	if _, err := tr.InteractF32(ULists{}); err == nil {
		t.Error("mismatched U-lists accepted (f32)")
	}
	if _, err := tr.DirectNearField(ULists{}); err == nil {
		t.Error("mismatched U-lists accepted (direct)")
	}
}

func TestRsqrtfAccuracy(t *testing.T) {
	for _, x := range []float32{1e-6, 0.01, 0.5, 1, 2, 100, 1e6} {
		got := float64(rsqrtf(x))
		want := 1 / math.Sqrt(float64(x))
		// The bit-trick seed with two Newton steps converges to ~5e-6
		// relative error, the accuracy class of the GPU instruction.
		if stats.RelErr(got, want) > 1e-5 {
			t.Errorf("rsqrtf(%v) = %v, want %v", x, got, want)
		}
	}
	if rsqrtf(0) != 0 || rsqrtf(-1) != 0 {
		t.Error("rsqrtf of non-positive should be 0")
	}
}

func TestWorkCount(t *testing.T) {
	if Work(100) != 1100 {
		t.Errorf("Work(100) = %v, want 1100 (11 flops per pair)", Work(100))
	}
	if FlopsPerPair != 11 {
		t.Errorf("Algorithm 1 counts 11 flops per pair")
	}
}

func TestPhaseIsComputeBound(t *testing.T) {
	// §V-C: with q in the hundreds, FMM-U has intensity O(q) and is
	// compute-bound. Check W/Q_dram on a study-sized instance.
	res, err := RunStudy(StudyConfig{
		Seed:     5,
		N:        2048,
		LeafSize: 128,
		Variants: []Variant{{Layout: SoA, Staging: CacheOnly, TargetTile: 1, Unroll: 1, VectorWidth: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	i := res.Results[0].IntensityOf()
	if i < 10 {
		t.Errorf("FMM-U intensity = %v flop/byte; should be strongly compute-bound", i)
	}
}

func BenchmarkInteractF32(b *testing.B) {
	p := UniformPoints(2000, 1)
	tr, err := Build(p, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	u := tr.BuildULists()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.InteractF32(u); err != nil {
			b.Fatal(err)
		}
	}
}
