package fmm

import (
	"errors"
	"math"
)

// FlopsPerPair is the paper's Algorithm-1 count: three subtractions,
// three multiplies and two adds for r, one reciprocal square root
// (counted as one flop), one multiply and one add for the update —
// 11 scalar flops per (target, source) pair.
const FlopsPerPair = 11

// Interact runs the U-list phase in float64 (the reference CPU kernel):
// for every target leaf B, every target t ∈ B, every source node
// S ∈ U(B) and every source s ∈ S, accumulate φ_t += d_s / |t−s|.
// Self-pairs (r = 0) are skipped. Phi is overwritten. Returns the
// number of interacting pairs actually evaluated (excluding skipped
// self-pairs).
func (t *Tree) Interact(u ULists) (int64, error) {
	if len(u) != len(t.Leaves) {
		return 0, errors.New("fmm: U-list count does not match leaves")
	}
	p := t.Pts
	for i := range p.Phi {
		p.Phi[i] = 0
	}
	var pairs int64
	for bi, li := range t.Leaves {
		b := &t.Nodes[li]
		for ti := b.Start; ti < b.End; ti++ {
			tx, ty, tz := p.X[ti], p.Y[ti], p.Z[ti]
			phi := 0.0
			for _, si := range u[bi] {
				s := &t.Nodes[si]
				for sj := s.Start; sj < s.End; sj++ {
					dx := tx - p.X[sj]
					dy := ty - p.Y[sj]
					dz := tz - p.Z[sj]
					r := dx*dx + dy*dy + dz*dz
					if r == 0 {
						continue
					}
					phi += p.D[sj] / math.Sqrt(r)
					pairs++
				}
			}
			p.Phi[ti] += phi
		}
	}
	return pairs, nil
}

// InteractF32 runs the same phase in float32 arithmetic with a
// reciprocal-square-root formulation (w = rsqrt(r); φ += d·w) — the
// GPU-style kernel of Algorithm 1. Results land in Phi (widened back
// to float64). Returns evaluated pairs.
func (t *Tree) InteractF32(u ULists) (int64, error) {
	if len(u) != len(t.Leaves) {
		return 0, errors.New("fmm: U-list count does not match leaves")
	}
	p := t.Pts
	for i := range p.Phi {
		p.Phi[i] = 0
	}
	var pairs int64
	for bi, li := range t.Leaves {
		b := &t.Nodes[li]
		for ti := b.Start; ti < b.End; ti++ {
			tx, ty, tz := float32(p.X[ti]), float32(p.Y[ti]), float32(p.Z[ti])
			var phi float32
			for _, si := range u[bi] {
				s := &t.Nodes[si]
				for sj := s.Start; sj < s.End; sj++ {
					dx := tx - float32(p.X[sj])
					dy := ty - float32(p.Y[sj])
					dz := tz - float32(p.Z[sj])
					r := dx*dx + dy*dy + dz*dz
					if r == 0 {
						continue
					}
					w := rsqrtf(r)
					phi += float32(p.D[sj]) * w
					pairs++
				}
			}
			p.Phi[ti] += float64(phi)
		}
	}
	return pairs, nil
}

// rsqrtf approximates the hardware reciprocal square root: the
// fast inverse-square-root bit trick refined by two Newton iterations,
// matching the accuracy class of the GPU rsqrtf instruction.
func rsqrtf(x float32) float32 {
	if x <= 0 {
		return 0
	}
	i := math.Float32bits(x)
	i = 0x5f3759df - i>>1
	y := math.Float32frombits(i)
	y = y * (1.5 - 0.5*x*y*y)
	y = y * (1.5 - 0.5*x*y*y)
	return y
}

// DirectNearField computes the reference potential by brute force over
// exactly the pairs the U-list visits (all pairs whose leaves touch),
// without going through the leaf-loop structure — an independent check
// of both the kernel and the U-list construction.
func (t *Tree) DirectNearField(u ULists) ([]float64, error) {
	if len(u) != len(t.Leaves) {
		return nil, errors.New("fmm: U-list count does not match leaves")
	}
	p := t.Pts
	// Leaf id per point.
	leafOf := make([]int, p.Len())
	for bi, li := range t.Leaves {
		b := &t.Nodes[li]
		for i := b.Start; i < b.End; i++ {
			leafOf[i] = bi
		}
	}
	// Adjacency set keyed by leaf pair.
	adj := make(map[[2]int]bool)
	for bi := range u {
		for _, si := range u[bi] {
			// Map node index back to leaf order.
			for bj, lj := range t.Leaves {
				if lj == si {
					adj[[2]int{bi, bj}] = true
				}
			}
		}
	}
	out := make([]float64, p.Len())
	for ti := 0; ti < p.Len(); ti++ {
		for sj := 0; sj < p.Len(); sj++ {
			if !adj[[2]int{leafOf[ti], leafOf[sj]}] {
				continue
			}
			dx := p.X[ti] - p.X[sj]
			dy := p.Y[ti] - p.Y[sj]
			dz := p.Z[ti] - p.Z[sj]
			r := dx*dx + dy*dy + dz*dz
			if r == 0 {
				continue
			}
			out[ti] += p.D[sj] / math.Sqrt(r)
		}
	}
	return out, nil
}

// Work returns W for the phase: 11 flops per visited pair. The paper
// derives flop counts "from the input data", i.e. from the pair count
// including the structure of the loops, so skipped self-pairs are not
// charged.
func Work(pairs int64) float64 { return float64(pairs) * FlopsPerPair }
