package fmm

import (
	"fmt"
	"hash/fnv"
)

// Layout selects the particle data layout of a code variant.
type Layout int

const (
	// SoA is structure-of-arrays (x[], y[], z[], d[]).
	SoA Layout = iota
	// AoS is array-of-structures (interleaved 16-byte records).
	AoS
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	if l == AoS {
		return "AoS"
	}
	return "SoA"
}

// Staging selects where a variant stages source data for reuse.
type Staging int

const (
	// CacheOnly relies on L1/L2 for all reuse — the class the paper's
	// fitted 187 pJ/B cache cost applies to ("about 160 such kernels").
	CacheOnly Staging = iota
	// SharedMem stages source blocks in scratchpad memory.
	SharedMem
	// TextureMem reads sources through the texture path.
	TextureMem
)

// String implements fmt.Stringer.
func (s Staging) String() string {
	switch s {
	case SharedMem:
		return "shared"
	case TextureMem:
		return "texture"
	default:
		return "cache"
	}
}

// Variant is one FMM U-list code variant — the reproduction's analogue
// of the paper's ~390 generated implementations, parameterised by the
// optimisation techniques the paper's generator varied.
type Variant struct {
	// ID is a stable index in the population.
	ID int
	// Layout is the particle data layout.
	Layout Layout
	// Staging is the data-reuse mechanism.
	Staging Staging
	// TargetTile is the number of targets register-blocked per source
	// sweep (1 = no register blocking, the reference setting).
	TargetTile int
	// Unroll is the inner-loop unroll depth (performance only).
	Unroll int
	// VectorWidth is the SIMD width (performance only).
	VectorWidth int
}

// IsCacheOnly reports whether the variant relies only on L1/L2 for
// reuse.
func (v Variant) IsCacheOnly() bool { return v.Staging == CacheOnly }

// IsReference reports whether the variant is the paper's reference
// implementation: cache-only, no register blocking, scalar.
func (v Variant) IsReference() bool {
	return v.Staging == CacheOnly && v.Layout == SoA && v.TargetTile == 1 && v.Unroll == 1 && v.VectorWidth == 1
}

// Name renders a short human-readable variant label.
func (v Variant) Name() string {
	return fmt.Sprintf("v%03d-%s-%s-t%d-u%d-w%d", v.ID, v.Layout, v.Staging, v.TargetTile, v.Unroll, v.VectorWidth)
}

// Efficiency returns the variant's achieved fraction of peak compute
// throughput, a deterministic function of its optimisation parameters:
// register blocking and unrolling help (saturating), AoS costs a
// little, scratchpad staging helps, and a small per-variant hash jitter
// stands in for the unmodelled effects that spread real measurements.
func (v Variant) Efficiency() float64 {
	eff := 0.30
	// Register blocking up to +0.30, saturating at tile 16.
	t := v.TargetTile
	if t > 16 {
		t = 16
	}
	eff += 0.30 * float64(t) / 16
	// Unrolling up to +0.12, saturating at 8.
	u := v.Unroll
	if u > 8 {
		u = 8
	}
	eff += 0.12 * float64(u) / 8
	// Vector width up to +0.08.
	w := v.VectorWidth
	if w > 4 {
		w = 4
	}
	eff += 0.08 * float64(w) / 4
	if v.Staging == SharedMem {
		eff += 0.08
	}
	if v.Staging == TextureMem {
		eff += 0.04
	}
	if v.Layout == AoS {
		eff -= 0.05
	}
	// Deterministic ±3% jitter from the variant identity.
	h := fnv.New32a()
	fmt.Fprintf(h, "%s", v.Name())
	jitter := (float64(h.Sum32()%1000)/1000 - 0.5) * 0.06
	eff += jitter
	if eff < 0.10 {
		eff = 0.10
	}
	if eff > 0.95 {
		eff = 0.95
	}
	return eff
}

// GenerateVariants produces the study population: a full cross of
// layouts × tiles × unrolls × widths for the cache-only class (168
// variants), plus shared- and texture-staged classes with two widths
// each (112 + 112), totalling 392 — matching the paper's "approximately
// 390 different code implementations" of which "about 160" are
// L1/L2-only.
func GenerateVariants() []Variant {
	tiles := []int{1, 2, 4, 8, 16, 32, 64}
	unrolls := []int{1, 2, 4, 8}
	var out []Variant
	add := func(v Variant) {
		v.ID = len(out)
		out = append(out, v)
	}
	for _, layout := range []Layout{SoA, AoS} {
		for _, tile := range tiles {
			for _, unroll := range unrolls {
				for _, w := range []int{1, 2, 4} {
					add(Variant{Layout: layout, Staging: CacheOnly, TargetTile: tile, Unroll: unroll, VectorWidth: w})
				}
			}
		}
	}
	for _, staging := range []Staging{SharedMem, TextureMem} {
		for _, layout := range []Layout{SoA, AoS} {
			for _, tile := range tiles {
				for _, unroll := range unrolls {
					for _, w := range []int{1, 4} {
						add(Variant{Layout: layout, Staging: staging, TargetTile: tile, Unroll: unroll, VectorWidth: w})
					}
				}
			}
		}
	}
	return out
}
