package fmm

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/stats"
)

func TestGenerateVariantsPopulation(t *testing.T) {
	vs := GenerateVariants()
	// The paper: "approximately 390 different code implementations", of
	// which "about 160" use only L1/L2.
	if len(vs) != 392 {
		t.Errorf("population = %d, want 392", len(vs))
	}
	cacheOnly := 0
	refs := 0
	seen := map[string]bool{}
	for i, v := range vs {
		if v.ID != i {
			t.Errorf("variant %d has ID %d", i, v.ID)
		}
		if v.IsCacheOnly() {
			cacheOnly++
		}
		if v.IsReference() {
			refs++
		}
		if seen[v.Name()] {
			t.Errorf("duplicate variant %s", v.Name())
		}
		seen[v.Name()] = true
		if e := v.Efficiency(); e < 0.1 || e > 0.95 {
			t.Errorf("%s: efficiency %v out of range", v.Name(), e)
		}
	}
	if cacheOnly != 168 {
		t.Errorf("cache-only class = %d, want 168", cacheOnly)
	}
	if refs != 1 {
		t.Errorf("reference variants = %d, want exactly 1", refs)
	}
}

func TestEfficiencyRespondsToParameters(t *testing.T) {
	base := Variant{Layout: SoA, Staging: CacheOnly, TargetTile: 1, Unroll: 1, VectorWidth: 1}
	blocked := base
	blocked.TargetTile = 16
	if blocked.Efficiency() <= base.Efficiency() {
		t.Error("register blocking should raise efficiency")
	}
	aos := base
	aos.Layout = AoS
	// Jitter is ±3%; the AoS penalty is 5%, so compare with headroom.
	if aos.Efficiency() >= base.Efficiency()+0.06 {
		t.Error("AoS should not beat SoA decisively")
	}
}

func TestVariantStrings(t *testing.T) {
	v := Variant{ID: 3, Layout: AoS, Staging: SharedMem, TargetTile: 4, Unroll: 2, VectorWidth: 1}
	name := v.Name()
	for _, want := range []string{"v003", "AoS", "shared", "t4", "u2", "w1"} {
		if !strings.Contains(name, want) {
			t.Errorf("name %q missing %q", name, want)
		}
	}
	if SoA.String() != "SoA" || AoS.String() != "AoS" {
		t.Error("layout strings")
	}
	if CacheOnly.String() != "cache" || SharedMem.String() != "shared" || TextureMem.String() != "texture" {
		t.Error("staging strings")
	}
}

func TestSimulateTrafficShapes(t *testing.T) {
	p := UniformPoints(1024, 6)
	tr, err := Build(p, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := tr.BuildULists()
	h, err := cache.FromMachine(machine.GTX580())
	if err != nil {
		t.Fatal(err)
	}
	ref := Variant{Layout: SoA, Staging: CacheOnly, TargetTile: 1, Unroll: 1, VectorWidth: 1}
	t0, err := tr.SimulateTraffic(u, ref, h)
	if err != nil {
		t.Fatal(err)
	}
	if t0.CacheBytes() <= 0 || t0.DRAMReadBytes <= 0 {
		t.Fatalf("reference traffic empty: %+v", t0)
	}
	if t0.SharedBytes != 0 || t0.TextureBytes != 0 {
		t.Error("cache-only variant must not use staging paths")
	}

	// Register blocking cuts cache traffic.
	blocked := ref
	blocked.TargetTile = 16
	t1, err := tr.SimulateTraffic(u, blocked, h)
	if err != nil {
		t.Fatal(err)
	}
	if t1.CacheBytes() >= t0.CacheBytes() {
		t.Errorf("tile 16 cache bytes %v should be below tile 1's %v", t1.CacheBytes(), t0.CacheBytes())
	}

	// Shared staging moves traffic off the caches onto the scratchpad.
	sh := ref
	sh.Staging = SharedMem
	t2, err := tr.SimulateTraffic(u, sh, h)
	if err != nil {
		t.Fatal(err)
	}
	if t2.SharedBytes <= 0 {
		t.Error("shared variant has no scratchpad traffic")
	}
	if t2.CacheBytes() >= t0.CacheBytes() {
		t.Error("shared staging should reduce cache traffic")
	}

	tex := ref
	tex.Staging = TextureMem
	t3, err := tr.SimulateTraffic(u, tex, h)
	if err != nil {
		t.Fatal(err)
	}
	if t3.TextureBytes <= 0 {
		t.Error("texture variant has no texture traffic")
	}

	// DRAM traffic is bounded below by the compulsory footprint.
	footprint := float64(1024 * recordBytes)
	if t0.DRAMReadBytes < footprint/2 {
		t.Errorf("DRAM reads %v below half the dataset footprint %v", t0.DRAMReadBytes, footprint)
	}

	// Bad variant parameters are rejected.
	bad := ref
	bad.TargetTile = 0
	if _, err := tr.SimulateTraffic(u, bad, h); err == nil {
		t.Error("tile 0 accepted")
	}
	if _, err := tr.SimulateTraffic(ULists{}, ref, h); err == nil {
		t.Error("mismatched U-lists accepted")
	}
}

func TestAoSReducesLineFetches(t *testing.T) {
	// AoS packs a particle's 16 bytes into one line; SoA scatters them
	// over four arrays. On a cold cache AoS needs fewer DRAM line
	// fetches for the same records.
	p := UniformPoints(2048, 11)
	tr, err := Build(p, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := tr.BuildULists()
	h, err := cache.FromMachine(machine.GTX580())
	if err != nil {
		t.Fatal(err)
	}
	soa := Variant{Layout: SoA, Staging: CacheOnly, TargetTile: 8, Unroll: 1, VectorWidth: 1}
	aos := soa
	aos.Layout = AoS
	ts, err := tr.SimulateTraffic(u, soa, h)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := tr.SimulateTraffic(u, aos, h)
	if err != nil {
		t.Fatal(err)
	}
	// Both layouts touch the same logical data; totals should be the
	// same order of magnitude.
	if ta.DRAMReadBytes > ts.DRAMReadBytes*2 || ts.DRAMReadBytes > ta.DRAMReadBytes*8 {
		t.Errorf("layout DRAM traffic implausible: SoA %v vs AoS %v", ts.DRAMReadBytes, ta.DRAMReadBytes)
	}
}

// The §V-C headline reproduction on a reduced variant subset (the full
// population runs in the benchmark and the experiments binary).
func TestStudyReproducesSectionVC(t *testing.T) {
	if testing.Short() {
		t.Skip("study is expensive")
	}
	// A spread of cache-only variants plus some staged ones.
	var subset []Variant
	for _, v := range GenerateVariants() {
		if v.Unroll == 1 && v.VectorWidth == 1 {
			subset = append(subset, v)
		}
	}
	res, err := RunStudy(StudyConfig{Seed: 42, N: 2048, LeafSize: 192, Variants: subset})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheOnlyCount == 0 {
		t.Fatal("no cache-only variants in study")
	}
	// The fitted cache cost recovers the planted 187 pJ/B.
	if stats.RelErr(res.FittedCachePJ, res.TrueCachePJ) > 0.10 {
		t.Errorf("fitted cache energy %v pJ/B, planted %v", res.FittedCachePJ, res.TrueCachePJ)
	}
	// eq. (2) substantially underestimates (paper: 33% on average).
	if res.MeanUnderestimate < 0.15 || res.MeanUnderestimate > 0.65 {
		t.Errorf("mean underestimate = %v, want a substantial fraction", res.MeanUnderestimate)
	}
	// Refined estimates are accurate (paper: 4.1% median error).
	if res.MedianRefinedErr > 0.06 {
		t.Errorf("median refined error = %v, want small", res.MedianRefinedErr)
	}
	// Every cache-only variant individually: eq2 underestimates, and
	// refinement improves the estimate for the strongly-underestimated.
	for _, r := range res.Results {
		if !r.Variant.IsCacheOnly() {
			continue
		}
		if r.Eq2RelError() > 0 {
			t.Errorf("%s: eq2 overestimates (%v)", r.Variant.Name(), r.Eq2RelError())
		}
		if -r.Eq2RelError() > 0.2 && r.RefinedRelError() > -r.Eq2RelError() {
			t.Errorf("%s: refinement did not improve (%v → %v)",
				r.Variant.Name(), -r.Eq2RelError(), r.RefinedRelError())
		}
	}
}

func TestStudyErrors(t *testing.T) {
	if _, err := RunStudy(StudyConfig{Machine: machine.FermiTableII()}); err == nil {
		t.Error("machine without caches accepted")
	}
	noRef := []Variant{{Layout: AoS, Staging: CacheOnly, TargetTile: 2, Unroll: 1, VectorWidth: 1}}
	if _, err := RunStudy(StudyConfig{Variants: noRef, N: 64, LeafSize: 16}); err == nil {
		t.Error("population without reference accepted")
	}
	if _, err := RunStudy(StudyConfig{Variants: []Variant{}, N: 64}); err != nil {
		// nil Variants defaults; empty slice must error — verify it does.
		t.Log("empty population correctly rejected:", err)
	} else {
		t.Error("empty variant slice accepted")
	}
}

func TestStudyDeterminism(t *testing.T) {
	subset := []Variant{
		{Layout: SoA, Staging: CacheOnly, TargetTile: 1, Unroll: 1, VectorWidth: 1},
		{Layout: SoA, Staging: CacheOnly, TargetTile: 8, Unroll: 1, VectorWidth: 1},
	}
	a, err := RunStudy(StudyConfig{Seed: 7, N: 512, LeafSize: 64, Variants: subset})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStudy(StudyConfig{Seed: 7, N: 512, LeafSize: 64, Variants: subset})
	if err != nil {
		t.Fatal(err)
	}
	if a.FittedCachePJ != b.FittedCachePJ || a.MedianRefinedErr != b.MedianRefinedErr {
		t.Error("study must be deterministic per seed")
	}
}

func TestSortByEq2Error(t *testing.T) {
	rs := []VariantResult{
		{MeasuredEnergy: 100, Eq2Estimate: 90},
		{MeasuredEnergy: 100, Eq2Estimate: 50},
		{MeasuredEnergy: 100, Eq2Estimate: 99},
	}
	SortByEq2Error(rs)
	if rs[0].Eq2Estimate != 50 || rs[2].Eq2Estimate != 99 {
		t.Errorf("sort order wrong: %+v", rs)
	}
}

func BenchmarkStudyFullPopulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunStudy(StudyConfig{Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBestVariantSelection(t *testing.T) {
	var vars []Variant
	for _, v := range GenerateVariants() {
		if v.VectorWidth == 1 && v.Unroll <= 2 {
			vars = append(vars, v)
		}
	}
	res, err := RunStudy(StudyConfig{Seed: 13, N: 1024, LeafSize: 128, Variants: vars})
	if err != nil {
		t.Fatal(err)
	}
	fastest, greenest, bestEDP, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	// The winners really are optimal over the population.
	for _, v := range res.Results {
		if v.Time < fastest.Time {
			t.Errorf("fastest is not fastest: %s beats %s", v.Variant.Name(), fastest.Variant.Name())
		}
		if v.MeasuredEnergy < greenest.MeasuredEnergy {
			t.Errorf("greenest is not greenest")
		}
		if v.MeasuredEnergy*v.Time < bestEDP.MeasuredEnergy*bestEDP.Time {
			t.Errorf("bestEDP is not best")
		}
	}
	// The FMM-U phase is compute-bound, so speed and energy rankings
	// largely agree: the fastest variant should be register-blocked.
	if fastest.Variant.TargetTile < 8 {
		t.Errorf("fastest variant %s has little register blocking", fastest.Variant.Name())
	}
	// Empty study errors.
	empty := &StudyResult{}
	if _, _, _, err := empty.Best(); err == nil {
		t.Error("empty Best accepted")
	}
}

func TestStudyOnClusteredPoints(t *testing.T) {
	// The adaptive-tree path: clustered points give variable leaf
	// populations, which the traffic replay and the study must handle.
	pts := ClusteredPoints(2048, 3, 17)
	tr, err := Build(pts, 128, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Depth must actually vary (otherwise this test is vacuous).
	minD, maxD := 99, 0
	for _, li := range tr.Leaves {
		d := tr.Nodes[li].Depth
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD == minD {
		t.Skip("clustering did not produce adaptive depth at this seed")
	}
	u := tr.BuildULists()
	h, err := cache.FromMachine(machine.GTX580())
	if err != nil {
		t.Fatal(err)
	}
	ref := Variant{Layout: SoA, Staging: CacheOnly, TargetTile: 1, Unroll: 1, VectorWidth: 1}
	tf, err := tr.SimulateTraffic(u, ref, h)
	if err != nil {
		t.Fatal(err)
	}
	if tf.DRAMReadBytes <= 0 || tf.CacheBytes() <= 0 {
		t.Errorf("clustered traffic empty: %+v", tf)
	}
	// The kernel itself runs clean on the adaptive tree.
	pairs, err := tr.InteractF32Parallel(u, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pairs <= 0 {
		t.Error("no interactions on clustered tree")
	}
}
