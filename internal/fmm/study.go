package fmm

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// StudyConfig parameterises the §V-C energy-estimation study.
type StudyConfig struct {
	// Machine is the platform (defaults to the GTX 580, as in the paper).
	Machine *machine.Machine
	// N is the number of particles (default 4096).
	N int
	// LeafSize is q, the tree split threshold (default 256; the paper
	// notes q is "typically on the order of hundreds or thousands").
	LeafSize int
	// MaxDepth caps the octree depth (default 8).
	MaxDepth int
	// Seed drives point generation and measurement noise.
	Seed int64
	// Variants is the population to study (default GenerateVariants()).
	Variants []Variant
	// NoiseSD is the relative energy-measurement noise (default 0.015).
	NoiseSD float64
	// SharedEnergyPerByte is the ground-truth scratchpad staging cost
	// in Joules per byte (default 30 pJ).
	SharedEnergyPerByte float64
	// TextureEnergyPerByte is the texture-path cost (default 90 pJ).
	TextureEnergyPerByte float64
}

func (c *StudyConfig) defaults() {
	if c.Machine == nil {
		c.Machine = machine.GTX580()
	}
	if c.N == 0 {
		c.N = 4096
	}
	if c.LeafSize == 0 {
		c.LeafSize = 256
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 8
	}
	if c.Variants == nil {
		c.Variants = GenerateVariants()
	}
	if c.NoiseSD == 0 {
		c.NoiseSD = 0.015
	}
	if c.SharedEnergyPerByte == 0 {
		c.SharedEnergyPerByte = 30e-12
	}
	if c.TextureEnergyPerByte == 0 {
		c.TextureEnergyPerByte = 90e-12
	}
}

// VariantResult is the study's record for one variant.
type VariantResult struct {
	// Variant identifies the implementation.
	Variant Variant
	// W is the flop count (shared by all variants).
	W float64
	// Traffic is the counter-level byte accounting.
	Traffic Traffic
	// Time is the simulated execution time in seconds.
	Time float64
	// MeasuredEnergy is the noisy ground-truth energy in Joules.
	MeasuredEnergy float64
	// Eq2Estimate is the basic two-level model estimate (eq. 2 with
	// measured time and counter-derived Q).
	Eq2Estimate float64
	// RefinedEstimate adds the fitted cache term (only meaningful for
	// cache-only variants, as in the paper).
	RefinedEstimate float64
}

// Eq2RelError is the signed relative error of the eq. 2 estimate:
// negative means underestimation.
func (r VariantResult) Eq2RelError() float64 {
	return (r.Eq2Estimate - r.MeasuredEnergy) / r.MeasuredEnergy
}

// RefinedRelError is the absolute relative error of the refined
// estimate.
func (r VariantResult) RefinedRelError() float64 {
	return stats.RelErr(r.RefinedEstimate, r.MeasuredEnergy)
}

// StudyResult aggregates the study.
type StudyResult struct {
	// MachineName records the platform.
	MachineName string
	// Pairs is the U-list pair count of the instance.
	Pairs int64
	// W is the phase's flop count.
	W float64
	// Results holds one record per variant.
	Results []VariantResult
	// FittedCachePJ is the recovered cache energy per byte in pJ —
	// the paper's 187 pJ/B.
	FittedCachePJ float64
	// TrueCachePJ is the planted ground truth, for comparison.
	TrueCachePJ float64
	// MeanUnderestimate is the mean of -Eq2RelError over cache-only
	// variants — the paper's "lower by 33% on average".
	MeanUnderestimate float64
	// MedianRefinedErr is the median RefinedRelError over cache-only
	// variants excluding the reference — the paper's 4.1%.
	MedianRefinedErr float64
	// CacheOnlyCount is the size of the L1/L2-only class.
	CacheOnlyCount int
}

// RunStudy reproduces §V-C: build one FMM instance, replay every
// variant's memory behaviour through the cache simulator, "measure"
// each variant's energy on the simulated platform, estimate it with the
// basic two-level model (eq. 2), fit the lumped cache energy from the
// reference implementation, and re-estimate the L1/L2-only class.
func RunStudy(cfg StudyConfig) (*StudyResult, error) {
	return RunStudyCtx(context.Background(), cfg)
}

// RunStudyCtx is RunStudy with span tracing: when ctx carries a
// trace.Tracer the study records an "fmm.study" span enclosing an
// "fmm.tree" span (octree build + U-list construction), one
// "fmm.cache_replay" span covering the per-variant traffic simulation
// through the cache hierarchy, and an "fmm.fit" span for the lumped
// cache-energy fit and refined estimates. Tracing reads only the
// clock, so results are identical with or without it.
func RunStudyCtx(ctx context.Context, cfg StudyConfig) (*StudyResult, error) {
	cfg.defaults()
	ctx, study := trace.Start(ctx, "fmm.study")
	study.Tag("n", cfg.N).Tag("variants", len(cfg.Variants))
	defer study.End()
	if len(cfg.Machine.Caches) == 0 {
		return nil, fmt.Errorf("fmm: machine %s has no cache hierarchy", cfg.Machine.Name)
	}
	if len(cfg.Variants) == 0 {
		return nil, errors.New("fmm: no variants")
	}

	pts := UniformPoints(cfg.N, cfg.Seed)
	_, treeSpan := trace.Start(ctx, "fmm.tree")
	tree, err := Build(pts, cfg.LeafSize, cfg.MaxDepth)
	if err != nil {
		treeSpan.End()
		return nil, err
	}
	u := tree.BuildULists()
	pairs := tree.Pairs(u)
	w := Work(pairs)
	treeSpan.Tag("pairs", pairs).End()

	h, err := cache.FromMachine(cfg.Machine)
	if err != nil {
		return nil, err
	}
	params := core.FromMachine(cfg.Machine, machine.Single)
	peak := cfg.Machine.SP.PeakFlops
	rng := stats.NewRand(cfg.Seed + 1)

	// Ground-truth per-level cache energies from the machine description.
	levelEnergy := map[string]float64{}
	for _, cl := range cfg.Machine.Caches {
		levelEnergy[cl.Name] = float64(cl.EnergyPerByte)
	}

	res := &StudyResult{
		MachineName: cfg.Machine.Name,
		Pairs:       pairs,
		W:           w,
		TrueCachePJ: float64(cfg.Machine.Caches[0].EnergyPerByte) * 1e12,
	}

	_, replay := trace.Start(ctx, "fmm.cache_replay")
	refIdx := -1
	for _, v := range cfg.Variants {
		tr, err := tree.SimulateTraffic(u, v, h)
		if err != nil {
			return nil, err
		}
		// Attach ground-truth level costs for the energy computation.
		for i := range tr.Levels {
			tr.Levels[i].EpsPerByte = levelEnergy[tr.Levels[i].Name]
		}
		t := w / (peak * v.Efficiency())

		// Ground truth: flops + DRAM + per-level cache + staging +
		// constant power, with measurement noise.
		k := core.Kernel{W: w, Q: tr.DRAMReadBytes + tr.DRAMWriteBytes}
		trueE, err := params.MultiLevelEnergy(k, tr.Levels, t)
		if err != nil {
			return nil, err
		}
		trueE += tr.SharedBytes*cfg.SharedEnergyPerByte + tr.TextureBytes*cfg.TextureEnergyPerByte
		measured := trueE * rng.RelNoise(cfg.NoiseSD)

		// The estimator only sees counters: the paper derives Q from L2
		// read misses, so eq. 2 uses DRAM read traffic.
		eq2 := params.TwoLevelEnergyAt(core.Kernel{W: w, Q: tr.DRAMReadBytes}, t)

		vr := VariantResult{
			Variant:        v,
			W:              w,
			Traffic:        tr,
			Time:           t,
			MeasuredEnergy: measured,
			Eq2Estimate:    eq2,
		}
		if v.IsReference() {
			refIdx = len(res.Results)
		}
		res.Results = append(res.Results, vr)
	}
	replay.End()
	if refIdx < 0 {
		return nil, errors.New("fmm: variant population lacks the reference implementation (SoA, cache-only, tile 1, unroll 1, width 1)")
	}

	// Fit the lumped cache cost from the reference variant (§V-C).
	_, fitSpan := trace.Start(ctx, "fmm.fit")
	defer fitSpan.End()
	ref := &res.Results[refIdx]
	fit, err := core.FitLevelEnergy(ref.MeasuredEnergy, ref.Eq2Estimate, ref.Traffic.CacheBytes())
	if err != nil {
		return nil, err
	}
	res.FittedCachePJ = fit * 1e12

	// Refined estimates and error statistics over the cache-only class.
	var under, refined []float64
	for i := range res.Results {
		r := &res.Results[i]
		r.RefinedEstimate = r.Eq2Estimate + fit*r.Traffic.CacheBytes()
		if !r.Variant.IsCacheOnly() {
			continue
		}
		res.CacheOnlyCount++
		under = append(under, -r.Eq2RelError())
		if i != refIdx {
			refined = append(refined, r.RefinedRelError())
		}
	}
	res.MeanUnderestimate, _ = stats.Mean(under)
	res.MedianRefinedErr, _ = stats.Median(refined)
	return res, nil
}

// IntensityOf returns the phase's operational intensity W/Q for a
// variant, with Q its DRAM read traffic — confirming the paper's
// observation that FMM-U is "typically compute-bound".
func (r VariantResult) IntensityOf() float64 {
	if r.Traffic.DRAMReadBytes == 0 {
		return 0
	}
	return r.W / r.Traffic.DRAMReadBytes
}

// TimeOf returns the variant's simulated time as a typed quantity.
func (r VariantResult) TimeOf() units.Seconds { return units.Seconds(r.Time) }

// SortByEq2Error orders results by most-severe underestimation first
// (diagnostic helper for reports).
func SortByEq2Error(rs []VariantResult) {
	sort.Slice(rs, func(i, j int) bool {
		return rs[i].Eq2RelError() < rs[j].Eq2RelError()
	})
}

// Best picks the study's winning variants under three objectives —
// fastest (min time), greenest (min measured energy), and best
// energy–delay product — the selection step a tuner would run over the
// paper's ~390-variant population.
func (r *StudyResult) Best() (fastest, greenest, bestEDP VariantResult, err error) {
	if len(r.Results) == 0 {
		return VariantResult{}, VariantResult{}, VariantResult{}, errors.New("fmm: empty study")
	}
	fastest, greenest, bestEDP = r.Results[0], r.Results[0], r.Results[0]
	for _, v := range r.Results[1:] {
		if v.Time < fastest.Time {
			fastest = v
		}
		if v.MeasuredEnergy < greenest.MeasuredEnergy {
			greenest = v
		}
		if v.MeasuredEnergy*v.Time < bestEDP.MeasuredEnergy*bestEDP.Time {
			bestEDP = v
		}
	}
	return fastest, greenest, bestEDP, nil
}
