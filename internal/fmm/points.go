// Package fmm implements the fast multipole method's U-list (near
// field, particle-to-particle) phase, the paper's §V-C case study. It
// provides the spatial octree, U-list construction, the Algorithm-1
// interaction kernel (11 flops per point pair, reciprocal square root
// counted as one flop), a generator for a population of code variants
// with diverse memory behaviour, and the energy-estimation study that
// reproduces the paper's 33%-underestimate → fit 187 pJ/B cache term →
// ~4% median error pipeline.
package fmm

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// Points is a structure-of-arrays particle set: coordinates in the unit
// cube, a source density D per point, and an output potential Phi.
type Points struct {
	// X, Y and Z are the coordinates.
	X, Y, Z []float64
	// D is the source density of each point.
	D []float64
	// Phi receives the computed potential of each point.
	Phi []float64
}

// NewPoints allocates an empty set of n points.
func NewPoints(n int) *Points {
	return &Points{
		X:   make([]float64, n),
		Y:   make([]float64, n),
		Z:   make([]float64, n),
		D:   make([]float64, n),
		Phi: make([]float64, n),
	}
}

// Len returns the number of points.
func (p *Points) Len() int { return len(p.X) }

// Validate checks the SoA invariants and that points lie in [0,1)³.
func (p *Points) Validate() error {
	n := len(p.X)
	if len(p.Y) != n || len(p.Z) != n || len(p.D) != n || len(p.Phi) != n {
		return errors.New("fmm: ragged point arrays")
	}
	for i := 0; i < n; i++ {
		if p.X[i] < 0 || p.X[i] >= 1 || p.Y[i] < 0 || p.Y[i] >= 1 || p.Z[i] < 0 || p.Z[i] >= 1 {
			return fmt.Errorf("fmm: point %d outside the unit cube", i)
		}
	}
	return nil
}

// Swap exchanges points i and j (used by the tree build's reordering).
func (p *Points) Swap(i, j int) {
	p.X[i], p.X[j] = p.X[j], p.X[i]
	p.Y[i], p.Y[j] = p.Y[j], p.Y[i]
	p.Z[i], p.Z[j] = p.Z[j], p.Z[i]
	p.D[i], p.D[j] = p.D[j], p.D[i]
	p.Phi[i], p.Phi[j] = p.Phi[j], p.Phi[i]
}

// UniformPoints returns n points uniformly distributed in the unit cube
// with unit-mean densities, deterministically from seed.
func UniformPoints(n int, seed int64) *Points {
	r := stats.NewRand(seed)
	p := NewPoints(n)
	for i := 0; i < n; i++ {
		p.X[i] = r.Float64()
		p.Y[i] = r.Float64()
		p.Z[i] = r.Float64()
		p.D[i] = 0.5 + r.Float64()
	}
	return p
}

// ClusteredPoints returns n points drawn around k Gaussian clusters —
// the non-uniform distribution that gives FMM trees adaptive depth.
func ClusteredPoints(n, k int, seed int64) *Points {
	if k < 1 {
		k = 1
	}
	r := stats.NewRand(seed)
	centers := make([][3]float64, k)
	for i := range centers {
		centers[i] = [3]float64{0.2 + 0.6*r.Float64(), 0.2 + 0.6*r.Float64(), 0.2 + 0.6*r.Float64()}
	}
	p := NewPoints(n)
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v >= 1 {
			return math1m
		}
		return v
	}
	for i := 0; i < n; i++ {
		c := centers[r.Intn(k)]
		p.X[i] = clamp(c[0] + 0.08*r.NormFloat64())
		p.Y[i] = clamp(c[1] + 0.08*r.NormFloat64())
		p.Z[i] = clamp(c[2] + 0.08*r.NormFloat64())
		p.D[i] = 0.5 + r.Float64()
	}
	return p
}

// math1m is the largest float64 strictly below 1, keeping clamped
// coordinates inside the half-open unit cube.
const math1m = 1 - 1e-12
