package fmm_test

import (
	"fmt"

	"repro/internal/fmm"
)

// Build the octree, compute the near-field potentials with the
// Algorithm-1 kernel, and confirm the structural invariants.
func ExampleBuild() {
	pts := fmm.UniformPoints(1000, 42)
	tree, err := fmm.Build(pts, 64, 10)
	if err != nil {
		panic(err)
	}
	u := tree.BuildULists()
	pairs, err := tree.InteractF32(u)
	if err != nil {
		panic(err)
	}
	fmt.Printf("leaves: %d\n", len(tree.Leaves))
	fmt.Printf("interactions: %d (11 flops each)\n", pairs)
	fmt.Printf("tree valid: %v\n", tree.Validate() == nil)
	// Output:
	// leaves: 64
	// interactions: 232928 (11 flops each)
	// tree valid: true
}
