package fmm

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
)

// BroadcastWidth is the SIMT broadcast factor: this many targets are
// processed in lock-step and share a single load of each source
// element, so source traffic per (B, S) sweep is one pass over S per
// BroadcastWidth·TargetTile targets.
const BroadcastWidth = 4

// wordBytes is the single-precision word size of the GPU kernel.
const wordBytes = 4

// recordBytes is one particle record (x, y, z, d) in bytes.
const recordBytes = 4 * wordBytes

// Array base addresses for the SoA layout; 1 GiB apart so arrays never
// alias in the cache index.
const (
	baseX   = 0
	baseY   = 1 << 30
	baseZ   = 2 << 30
	baseD   = 3 << 30
	basePhi = 4 << 30
	baseAoS = 5 << 30
)

// Traffic is the byte accounting of one simulated variant execution —
// the reproduction's stand-in for the profiler counters of §V-C.
type Traffic struct {
	// DRAMReadBytes is demand traffic from DRAM (the paper's "L2 read
	// misses" counter times the line size).
	DRAMReadBytes float64
	// DRAMWriteBytes is write-back traffic to DRAM.
	DRAMWriteBytes float64
	// Levels holds per-cache-level served bytes with their ground-truth
	// energy costs attached.
	Levels []core.LevelTraffic
	// SharedBytes is traffic served by scratchpad staging.
	SharedBytes float64
	// TextureBytes is traffic served through the texture path.
	TextureBytes float64
}

// CacheBytes is the total L1/L2-served traffic.
func (tr Traffic) CacheBytes() float64 {
	s := 0.0
	for _, l := range tr.Levels {
		s += l.Bytes
	}
	return s
}

// SimulateTraffic replays the memory behaviour of variant v over the
// U-list phase through the given cache hierarchy (which is reset
// first) and returns the byte accounting.
//
// The access model per target leaf B: target coordinates are loaded
// once (registers hold them afterwards); for every source node
// S ∈ U(B), the source records are swept once per
// ceil(|B| / (TargetTile·BroadcastWidth)) target groups; a cache-only
// variant replays every sweep through the cache hierarchy, while
// shared/texture staging loads each block once through the hierarchy
// and serves the remaining sweeps from the staging path. Without
// register blocking the per-target potential is re-read and re-written
// around every (B, S) sweep; register-blocked variants keep it live.
//
// Segment decomposition: instead of issuing one cache access per
// 4-byte word, the replay hands the hierarchy bulk descriptors
// (cache.Segment) that reproduce the word-at-a-time access sequence
// exactly. One contiguous run of particle records [first, first+count)
// becomes one 16-byte-strided segment for the AoS layout, or four
// element-interleaved word segments (x, y, z, d at bases 1 GiB apart)
// for SoA — cache.Hierarchy.ReplaySegments interleaves segments per
// element index, matching the original x[j], y[j], z[j], d[j] read
// order. The cache-only sweep loop collapses into a single
// ReplaySegments(recordSegs, sweeps) call, letting the hierarchy's
// resident-sweep fast path account repeated sweeps in closed form; the
// φ spill is a two-segment read/write interleave and the final
// write-out a single write segment. The counters this produces are
// bit-identical to the scalar replay (pinned by
// TestSimulateTrafficMatchesWordReplay).
func (t *Tree) SimulateTraffic(u ULists, v Variant, h *cache.Hierarchy) (Traffic, error) {
	if len(u) != len(t.Leaves) {
		return Traffic{}, errors.New("fmm: U-list count does not match leaves")
	}
	if v.TargetTile < 1 || v.Unroll < 1 || v.VectorWidth < 1 {
		return Traffic{}, fmt.Errorf("fmm: variant %s has non-positive parameters", v.Name())
	}
	h.Reset()
	var tr Traffic

	group := v.TargetTile * BroadcastWidth
	// recordSegs describes the particle records [first, first+count) as
	// replay segments (see the segment-decomposition note above).
	var segBuf [4]cache.Segment
	recordSegs := func(first, count int) []cache.Segment {
		if v.Layout == AoS {
			segBuf[0] = cache.Segment{Base: baseAoS + uint64(first)*recordBytes, Stride: recordBytes, Count: count, Size: recordBytes}
			return segBuf[:1]
		}
		for k, base := range [...]uint64{baseX, baseY, baseZ, baseD} {
			segBuf[k] = cache.Segment{Base: base + uint64(first)*wordBytes, Stride: wordBytes, Count: count, Size: wordBytes}
		}
		return segBuf[:4]
	}
	var phiBuf [2]cache.Segment

	for bi, li := range t.Leaves {
		b := &t.Nodes[li]
		qb := b.NumPoints()
		if qb == 0 {
			continue
		}
		// Target coordinates: loaded once per leaf.
		h.ReplaySegments(recordSegs(b.Start, qb), 1)
		sweeps := (qb + group - 1) / group
		for _, si := range u[bi] {
			s := &t.Nodes[si]
			qs := s.NumPoints()
			if qs == 0 {
				continue
			}
			blockBytes := float64(qs * recordBytes)
			switch v.Staging {
			case CacheOnly:
				h.ReplaySegments(recordSegs(s.Start, qs), sweeps)
			case SharedMem:
				// Stage once through the caches, then serve all sweeps
				// from scratchpad.
				h.ReplaySegments(recordSegs(s.Start, qs), 1)
				tr.SharedBytes += float64(sweeps) * blockBytes
			case TextureMem:
				// The texture path has its own small cache; model it as
				// one staging pass through the hierarchy plus
				// texture-served sweeps.
				h.ReplaySegments(recordSegs(s.Start, qs), 1)
				tr.TextureBytes += float64(sweeps) * blockBytes
			}
			// Without register blocking the accumulator spills: φ is
			// re-read and re-written around every (B, S) sweep.
			if v.TargetTile == 1 {
				phiBase := basePhi + uint64(b.Start)*wordBytes
				phiBuf[0] = cache.Segment{Base: phiBase, Stride: wordBytes, Count: qb, Size: wordBytes}
				phiBuf[1] = cache.Segment{Base: phiBase, Stride: wordBytes, Count: qb, Size: wordBytes, Write: true}
				h.ReplaySegments(phiBuf[:], 1)
			}
		}
		// Final potential write-out.
		h.AccessSegment(cache.Segment{Base: basePhi + uint64(b.Start)*wordBytes, Stride: wordBytes, Count: qb, Size: wordBytes, Write: true})
	}

	tr.DRAMReadBytes = float64(h.DRAMReadBytes())
	tr.DRAMWriteBytes = float64(h.DRAMWriteBytes())
	tr.Levels = make([]core.LevelTraffic, h.NumLevels())
	for i := range tr.Levels {
		ls := h.Level(i)
		tr.Levels[i] = core.LevelTraffic{
			Name:  ls.Name,
			Bytes: float64(ls.BytesServed),
		}
	}
	return tr, nil
}
