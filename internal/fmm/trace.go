package fmm

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
)

// BroadcastWidth is the SIMT broadcast factor: this many targets are
// processed in lock-step and share a single load of each source
// element, so source traffic per (B, S) sweep is one pass over S per
// BroadcastWidth·TargetTile targets.
const BroadcastWidth = 4

// wordBytes is the single-precision word size of the GPU kernel.
const wordBytes = 4

// recordBytes is one particle record (x, y, z, d) in bytes.
const recordBytes = 4 * wordBytes

// Array base addresses for the SoA layout; 1 GiB apart so arrays never
// alias in the cache index.
const (
	baseX   = 0
	baseY   = 1 << 30
	baseZ   = 2 << 30
	baseD   = 3 << 30
	basePhi = 4 << 30
	baseAoS = 5 << 30
)

// Traffic is the byte accounting of one simulated variant execution —
// the reproduction's stand-in for the profiler counters of §V-C.
type Traffic struct {
	// DRAMReadBytes is demand traffic from DRAM (the paper's "L2 read
	// misses" counter times the line size).
	DRAMReadBytes float64
	// DRAMWriteBytes is write-back traffic to DRAM.
	DRAMWriteBytes float64
	// Levels holds per-cache-level served bytes with their ground-truth
	// energy costs attached.
	Levels []core.LevelTraffic
	// SharedBytes is traffic served by scratchpad staging.
	SharedBytes float64
	// TextureBytes is traffic served through the texture path.
	TextureBytes float64
}

// CacheBytes is the total L1/L2-served traffic.
func (tr Traffic) CacheBytes() float64 {
	s := 0.0
	for _, l := range tr.Levels {
		s += l.Bytes
	}
	return s
}

// SimulateTraffic replays the memory behaviour of variant v over the
// U-list phase through the given cache hierarchy (which is reset
// first) and returns the byte accounting.
//
// The access model per target leaf B: target coordinates are loaded
// once (registers hold them afterwards); for every source node
// S ∈ U(B), the source records are swept once per
// ceil(|B| / (TargetTile·BroadcastWidth)) target groups; a cache-only
// variant replays every sweep through the cache hierarchy, while
// shared/texture staging loads each block once through the hierarchy
// and serves the remaining sweeps from the staging path. Without
// register blocking the per-target potential is re-read and re-written
// around every (B, S) sweep; register-blocked variants keep it live.
func (t *Tree) SimulateTraffic(u ULists, v Variant, h *cache.Hierarchy) (Traffic, error) {
	if len(u) != len(t.Leaves) {
		return Traffic{}, errors.New("fmm: U-list count does not match leaves")
	}
	if v.TargetTile < 1 || v.Unroll < 1 || v.VectorWidth < 1 {
		return Traffic{}, fmt.Errorf("fmm: variant %s has non-positive parameters", v.Name())
	}
	h.Reset()
	var tr Traffic

	group := v.TargetTile * BroadcastWidth
	readRecord := func(idx int) {
		if v.Layout == AoS {
			h.Read(baseAoS+uint64(idx)*recordBytes, recordBytes)
			return
		}
		h.Read(baseX+uint64(idx)*wordBytes, wordBytes)
		h.Read(baseY+uint64(idx)*wordBytes, wordBytes)
		h.Read(baseZ+uint64(idx)*wordBytes, wordBytes)
		h.Read(baseD+uint64(idx)*wordBytes, wordBytes)
	}

	for bi, li := range t.Leaves {
		b := &t.Nodes[li]
		qb := b.NumPoints()
		if qb == 0 {
			continue
		}
		// Target coordinates: loaded once per leaf.
		for i := b.Start; i < b.End; i++ {
			readRecord(i)
		}
		sweeps := (qb + group - 1) / group
		for _, si := range u[bi] {
			s := &t.Nodes[si]
			qs := s.NumPoints()
			if qs == 0 {
				continue
			}
			blockBytes := float64(qs * recordBytes)
			switch v.Staging {
			case CacheOnly:
				for sweep := 0; sweep < sweeps; sweep++ {
					for j := s.Start; j < s.End; j++ {
						readRecord(j)
					}
				}
			case SharedMem:
				// Stage once through the caches, then serve all sweeps
				// from scratchpad.
				for j := s.Start; j < s.End; j++ {
					readRecord(j)
				}
				tr.SharedBytes += float64(sweeps) * blockBytes
			case TextureMem:
				// The texture path has its own small cache; model it as
				// one staging pass through the hierarchy plus
				// texture-served sweeps.
				for j := s.Start; j < s.End; j++ {
					readRecord(j)
				}
				tr.TextureBytes += float64(sweeps) * blockBytes
			}
			// Without register blocking the accumulator spills: φ is
			// re-read and re-written around every (B, S) sweep.
			if v.TargetTile == 1 {
				for i := b.Start; i < b.End; i++ {
					h.Read(basePhi+uint64(i)*wordBytes, wordBytes)
					h.Write(basePhi+uint64(i)*wordBytes, wordBytes)
				}
			}
		}
		// Final potential write-out.
		for i := b.Start; i < b.End; i++ {
			h.Write(basePhi+uint64(i)*wordBytes, wordBytes)
		}
	}

	tr.DRAMReadBytes = float64(h.DRAMReadBytes())
	tr.DRAMWriteBytes = float64(h.DRAMWriteBytes())
	for _, ls := range h.Stats() {
		tr.Levels = append(tr.Levels, core.LevelTraffic{
			Name:  ls.Name,
			Bytes: float64(ls.BytesServed),
		})
	}
	return tr, nil
}
