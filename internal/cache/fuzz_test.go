package cache

import (
	"encoding/binary"
	"testing"

	"repro/internal/machine"
)

// FuzzSegmentReplay decodes arbitrary segment groups, hierarchy
// geometries, and policy bits from the fuzz input, replays them through
// ReplaySegments on the optimized hierarchy and through the documented
// scalar loop on the pre-optimization reference model, and requires
// every counter to match exactly. This is the adversarial complement to
// the scenario-based lockstep tests: the fuzzer owns the segment
// descriptors, so straddles, wraps, overlaps, conflicts, and degenerate
// shapes are explored without anyone having to imagine them first.
//
// Input layout: byte 0 packs the geometry (bits 0-1), prefetch (bit 2)
// and write-through (bit 3); byte 1 picks the sweep count (1..5); each
// following 21-byte record is one segment (base u64, stride u64, count
// u16, size i16, flags). Counts and sizes are clamped to keep one case
// under a few hundred thousand line accesses.
func FuzzSegmentReplay(f *testing.F) {
	// Canonical shapes: word stream, repeated resident sweeps, an
	// unaligned AoS straddle, a same-set conflict pair, and a
	// wraparound probe near the top of the address space.
	f.Add([]byte{0, 2,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0, 100, 4, 0, 0})
	f.Add([]byte{1, 4,
		0, 0, 64, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 1, 0, 4, 0, 0})
	f.Add([]byte{2, 1,
		8, 0, 0, 0, 0, 0, 0, 0, 0, 16, 0, 0, 0, 0, 0, 0, 200, 0, 16, 0, 1})
	f.Add([]byte{3, 3,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 64, 0, 4, 0, 0,
		0, 0, 0, 64, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 64, 0, 4, 0, 1})
	f.Add([]byte{4, 2,
		255, 255, 255, 255, 255, 255, 255, 255, 32, 0, 0, 0, 0, 0, 0, 0, 16, 0, 8, 0, 0})

	geoms := [][]machine.CacheLevel{
		twoLevels(),
		nonPow2Levels(),
		{{Name: "L1", Size: 16 << 10, LineSize: 64, Assoc: 4}},
		{{Name: "L1", Size: 8 << 10, LineSize: 64, Assoc: 2},
			{Name: "L2", Size: 64 << 10, LineSize: 64, Assoc: 4}},
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		mode := data[0]
		sweeps := 1 + int(data[1])%5
		levels := geoms[int(mode&3)]
		var segs []Segment
		for rest := data[2:]; len(rest) >= 21 && len(segs) < 6; rest = rest[21:] {
			size := int(int16(binary.LittleEndian.Uint16(rest[18:20])))
			if size > 256 {
				size = size % 257
			}
			segs = append(segs, Segment{
				Base:   binary.LittleEndian.Uint64(rest[0:8]),
				Stride: binary.LittleEndian.Uint64(rest[8:16]),
				Count:  int(binary.LittleEndian.Uint16(rest[16:18])) % 2048,
				Size:   size,
				Write:  rest[20]&1 != 0,
			})
		}

		opt, err := New(levels)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefHierarchy(levels)
		opt.EnablePrefetch(mode&4 != 0)
		ref.prefetch = mode&4 != 0
		opt.SetWriteThrough(mode&8 != 0)
		ref.writeThrough = mode&8 != 0

		opt.ReplaySegments(segs, sweeps)
		refReplaySegments(ref, segs, sweeps)
		// The single-segment entry point, on the state the group left.
		if len(segs) > 0 {
			opt.AccessSegment(segs[0])
			refReplaySegments(ref, segs[:1], 1)
		}

		got, want := opt.Stats(), ref.Stats()
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("level %d stats diverged:\n got  %+v\n want %+v\n segs %+v sweeps %d mode %#x",
					i, got[i], want[i], segs, sweeps, mode)
			}
		}
		if g, w := opt.DRAMReadBytes(), ref.dramReadLines*ref.lineSize; g != w {
			t.Errorf("DRAMReadBytes = %d, want %d (segs %+v sweeps %d mode %#x)", g, w, segs, sweeps, mode)
		}
		if g, w := opt.DRAMWriteBytes(), ref.dramWriteLines*ref.lineSize; g != w {
			t.Errorf("DRAMWriteBytes = %d, want %d (segs %+v sweeps %d mode %#x)", g, w, segs, sweeps, mode)
		}
		if g, w := opt.PrefetchIssued(), ref.prefetchIssued; g != w {
			t.Errorf("PrefetchIssued = %d, want %d (segs %+v sweeps %d mode %#x)", g, w, segs, sweeps, mode)
		}
	})
}
