// Package cache implements a multi-level set-associative cache
// simulator with LRU replacement and write-back/write-allocate
// semantics. It stands in for the hardware performance counters the
// paper reads (§V-C): per-level byte traffic ("bytes read from the L1
// and L2 caches") and DRAM traffic ("bytes read from the DRAM using
// hardware counters (L2 read misses)").
package cache

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/machine"
)

// LevelStats are the per-level counters.
type LevelStats struct {
	// Name is the level label ("L1", ...).
	Name string
	// Accesses is the number of line requests that reached this level.
	Accesses uint64
	// Hits and Misses partition Accesses.
	Hits uint64
	// Misses counts lookups that did not find the line.
	Misses uint64
	// DemandMisses are misses from program reads/writes, excluding
	// misses triggered by inner-level writebacks (which overwrite the
	// whole line and fetch nothing). At the outer level these are the
	// paper's "L2 read misses" counter.
	DemandMisses uint64
	// ReadHits and WriteHits split Hits by request type.
	ReadHits uint64
	// WriteHits counts hits from store requests.
	WriteHits uint64
	// BytesServed is Hits times the line size: the traffic this level
	// supplied to the level above (the paper's "bytes read from" it).
	BytesServed uint64
	// Writebacks counts dirty lines evicted from this level.
	Writebacks uint64
}

// HitRate returns Hits/Accesses, or 0 for an untouched level.
func (s LevelStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

type level struct {
	cfg   machine.CacheLevel
	sets  uint64
	ways  int
	data  []line // sets × ways, row-major
	stats LevelStats
	// setMask replaces the per-access modulo when sets is a power of
	// two (pow2Sets), the common geometry.
	setMask  uint64
	pow2Sets bool
	// mru holds each set's most-recently-touched way, probed before the
	// way scan — replay workloads hit the same way run after run.
	mru []uint32
}

func newLevel(cfg machine.CacheLevel) *level {
	lines := uint64(cfg.Size) / uint64(cfg.LineSize)
	sets := lines / uint64(cfg.Assoc)
	l := &level{
		cfg:  cfg,
		sets: sets,
		ways: cfg.Assoc,
		data: make([]line, lines),
		mru:  make([]uint32, sets),
	}
	if sets&(sets-1) == 0 {
		l.pow2Sets = true
		l.setMask = sets - 1
	}
	l.stats.Name = cfg.Name
	return l
}

// setIndex maps a line address to its set, by mask when the set count
// is a power of two and by modulo otherwise — identical results, the
// mask just skips the hardware divide on the dominant geometry.
func (l *level) setIndex(lineAddr uint64) uint64 {
	if l.pow2Sets {
		return lineAddr & l.setMask
	}
	return lineAddr % l.sets
}

// access looks up lineAddr (already shifted to line granularity).
// On a miss the line is installed (write-allocate); the return values
// report whether it hit and whether a dirty victim was evicted.
func (l *level) access(lineAddr uint64, write, demand bool, tick uint64) (hit bool, evicted bool, victim uint64) {
	set := l.setIndex(lineAddr)
	base := int(set) * l.ways
	ways := l.data[base : base+l.ways]
	l.stats.Accesses++
	// Probe the set's most-recently-used way before scanning: streaming
	// and strided replays hit the same way repeatedly. A tag can live in
	// at most one way, so hitting here is exactly the scan's outcome.
	if m := int(l.mru[set]); m < len(ways) && ways[m].valid && ways[m].tag == lineAddr {
		l.hitWay(&ways[m], write, tick)
		return true, false, 0
	}
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			l.hitWay(&ways[i], write, tick)
			l.mru[set] = uint32(i)
			return true, false, 0
		}
	}
	l.stats.Misses++
	if demand {
		l.stats.DemandMisses++
	}
	// Choose victim: first invalid way, else LRU.
	vi := -1
	for i := range ways {
		if !ways[i].valid {
			vi = i
			break
		}
	}
	if vi < 0 {
		vi = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].used < ways[vi].used {
				vi = i
			}
		}
		if ways[vi].dirty {
			evicted = true
			victim = ways[vi].tag
			l.stats.Writebacks++
		}
	}
	ways[vi] = line{tag: lineAddr, valid: true, dirty: write, used: tick}
	l.mru[set] = uint32(vi)
	return false, evicted, victim
}

// hitWay applies the counter and state updates of a hit on way w.
func (l *level) hitWay(w *line, write bool, tick uint64) {
	l.stats.Hits++
	l.stats.BytesServed += uint64(l.cfg.LineSize)
	if write {
		l.stats.WriteHits++
		w.dirty = true
	} else {
		l.stats.ReadHits++
	}
	w.used = tick
}

// Hierarchy is a stack of cache levels over DRAM.
type Hierarchy struct {
	levels   []*level
	lineSize uint64
	tick     uint64

	// lineShift is log2(lineSize) when the line size is a power of two,
	// else -1; Access then splits requests by shift instead of divide.
	lineShift int

	// memo is a small direct-mapped table of innermost-level ways
	// recently resolved by a full walk. Sub-line streaming replay (an
	// SoA record read is several 4-byte accesses to each of a few
	// parallel lines) short-circuits the whole level walk on a memo
	// hit, applying exactly the counter updates of an L1 hit. Entries
	// are hints, validated by tag on every use: a way holds full line
	// addresses as tags, so tag == lineAddr proves the line is resident
	// in that very way and a stale entry simply misses. Only Reset —
	// which replaces the backing arrays the hints point into — must
	// clear the table.
	memo [memoSlots]*line

	dramReadLines  uint64
	dramWriteLines uint64

	// prefetch enables a next-line prefetcher at the outer level: a
	// demand read miss also fetches the following line (counted as
	// prefetch traffic, installed without touching hit/miss counters).
	prefetch       bool
	prefetchIssued uint64

	// writeThrough switches stores to write-through/no-write-allocate:
	// every store is forwarded to DRAM, hits update the caches in
	// place, and write misses install nothing.
	writeThrough bool

	// Bulk-replay scratch (see segment.go), kept on the hierarchy so
	// AccessSegment/ReplaySegments allocate nothing in steady state.
	// All of it is transient within one call; none survives into the
	// observable simulation state.
	segScratch []Segment
	segLA      []uint64
	segWays    []segWay
	segRec     sweepRecord
}

// SetWriteThrough selects the store policy: write-through with
// no-write-allocate (true) or the default write-back with
// write-allocate (false). Switching policies mid-run is allowed; dirty
// lines from the write-back phase still write back on eviction.
func (h *Hierarchy) SetWriteThrough(on bool) { h.writeThrough = on }

// New builds a hierarchy from innermost (L1) to outermost. All levels
// must share one line size (the reproduction's platforms do), and each
// level must be at least as large as the previous one.
func New(levels []machine.CacheLevel) (*Hierarchy, error) {
	if len(levels) == 0 {
		return nil, errors.New("cache: need at least one level")
	}
	h := &Hierarchy{lineSize: uint64(levels[0].LineSize), lineShift: -1}
	if h.lineSize&(h.lineSize-1) == 0 {
		h.lineShift = bits.TrailingZeros64(h.lineSize)
	}
	for i, cfg := range levels {
		if cfg.Size <= 0 || cfg.LineSize <= 0 || cfg.Assoc <= 0 {
			return nil, fmt.Errorf("cache: level %d (%s) has non-positive geometry", i, cfg.Name)
		}
		if uint64(cfg.LineSize) != h.lineSize {
			return nil, fmt.Errorf("cache: level %d (%s) line size %d differs from %d", i, cfg.Name, cfg.LineSize, h.lineSize)
		}
		lines := cfg.Size / int64(cfg.LineSize)
		if lines%int64(cfg.Assoc) != 0 {
			return nil, fmt.Errorf("cache: level %d (%s) lines %d not divisible by associativity %d", i, cfg.Name, lines, cfg.Assoc)
		}
		if i > 0 && cfg.Size < levels[i-1].Size {
			return nil, fmt.Errorf("cache: level %d (%s) smaller than inner level", i, cfg.Name)
		}
		h.levels = append(h.levels, newLevel(cfg))
	}
	return h, nil
}

// FromMachine builds the hierarchy of machine m. The machine must have
// at least one cache level configured.
func FromMachine(m *machine.Machine) (*Hierarchy, error) {
	if len(m.Caches) == 0 {
		return nil, fmt.Errorf("cache: machine %s has no cache levels", m.Name)
	}
	return New(m.Caches)
}

// LineSize returns the uniform cache line size in bytes.
func (h *Hierarchy) LineSize() int { return int(h.lineSize) }

// Read simulates a read of size bytes at addr.
func (h *Hierarchy) Read(addr uint64, size int) { h.Access(addr, size, false) }

// Write simulates a write of size bytes at addr.
func (h *Hierarchy) Write(addr uint64, size int) { h.Access(addr, size, true) }

// Access simulates a read or write of size bytes at addr, splitting the
// request into line-granularity lookups.
func (h *Hierarchy) Access(addr uint64, size int, write bool) {
	if size <= 0 {
		return
	}
	var first, last uint64
	if h.lineShift >= 0 {
		first = addr >> h.lineShift
		last = (addr + uint64(size) - 1) >> h.lineShift
	} else {
		first = addr / h.lineSize
		last = (addr + uint64(size) - 1) / h.lineSize
	}
	for la := first; la <= last; la++ {
		h.tick++
		h.accessLine(la, write)
	}
}

// memoSlots sizes the streaming memo: big enough that the handful of
// parallel streams a structure-of-arrays replay interleaves usually
// land in distinct slots, small enough to stay resident in L1.
const memoSlots = 16

// memoSlot hashes a line address to its memo slot (SplitMix64's
// multiplicative constant; the top bits decorrelate the stride-sharing
// base addresses of parallel arrays).
func memoSlot(lineAddr uint64) int {
	return int((lineAddr * 0x9e3779b97f4a7c15) >> 60)
}

func (h *Hierarchy) accessLine(lineAddr uint64, write bool) {
	if write && h.writeThrough {
		h.writeThroughLine(lineAddr)
		return
	}
	// Streaming fast path: a recent walk resolved this line at the
	// innermost level. The tag check proves residence in that exact way
	// (tags are full line addresses), so this is an L1 hit — apply the
	// identical counter updates without the level walk.
	slot := memoSlot(lineAddr)
	if w := h.memo[slot]; w != nil && w.valid && w.tag == lineAddr {
		l := h.levels[0]
		l.stats.Accesses++
		l.hitWay(w, write, h.tick)
		return
	}
	for i, l := range h.levels {
		hit, evicted, victim := l.access(lineAddr, write, true, h.tick)
		if evicted {
			h.writeback(i+1, victim)
		}
		if hit {
			h.memoize(slot, lineAddr)
			return
		}
	}
	// Missed everywhere: line comes from DRAM (and was installed at
	// every level on the way down, innermost included).
	h.memoize(slot, lineAddr)
	h.dramReadLines++
	if h.prefetch && !write {
		h.prefetchLine(lineAddr + 1)
	}
}

// memoize records which innermost-level way holds lineAddr. Called
// right after a level walk resolved the line, when the innermost level
// is guaranteed to hold it (a hit found it there, a deeper hit or full
// miss write-allocated it there) and its mru entry points at that way.
func (h *Hierarchy) memoize(slot int, lineAddr uint64) {
	l := h.levels[0]
	set := l.setIndex(lineAddr)
	h.memo[slot] = &l.data[int(set)*l.ways+int(l.mru[set])]
}

// EnablePrefetch turns the outer-level next-line prefetcher on or off.
func (h *Hierarchy) EnablePrefetch(on bool) { h.prefetch = on }

// PrefetchIssued reports how many prefetch fetches went to DRAM.
func (h *Hierarchy) PrefetchIssued() uint64 { return h.prefetchIssued }

// prefetchLine installs lineAddr in the outer level if absent, charging
// the DRAM fetch to the prefetcher rather than to demand traffic
// statistics (but it is still DRAM traffic).
func (h *Hierarchy) prefetchLine(lineAddr uint64) {
	outer := h.levels[len(h.levels)-1]
	// Probe without disturbing statistics: a silent lookup. (With a
	// single level this install can evict a memoized way; the memo's
	// per-use tag validation turns that into a plain memo miss.)
	set := outer.setIndex(lineAddr)
	base := int(set) * outer.ways
	ways := outer.data[base : base+outer.ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			return // already resident
		}
	}
	// Install manually: a prefetch is not an access, so it must not
	// perturb the hit/miss counters.
	vi := -1
	for i := range ways {
		if !ways[i].valid {
			vi = i
			break
		}
	}
	if vi < 0 {
		vi = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].used < ways[vi].used {
				vi = i
			}
		}
		if ways[vi].dirty {
			h.dramWriteLines++
			outer.stats.Writebacks++
		}
	}
	// Install with an older timestamp than demand lines so useless
	// prefetches are evicted first.
	ts := uint64(0)
	if h.tick > 0 {
		ts = h.tick - 1
	}
	ways[vi] = line{tag: lineAddr, valid: true, used: ts}
	h.prefetchIssued++
	h.dramReadLines++
}

// writeThroughLine handles one store under write-through/no-write-
// allocate: update every level that holds the line (counted as a write
// hit there; lines stay clean), count a demand miss at levels that do
// not, and forward the store to DRAM unconditionally.
func (h *Hierarchy) writeThroughLine(lineAddr uint64) {
	for _, l := range h.levels {
		set := l.setIndex(lineAddr)
		base := int(set) * l.ways
		ways := l.data[base : base+l.ways]
		l.stats.Accesses++
		hit := false
		for i := range ways {
			if ways[i].valid && ways[i].tag == lineAddr {
				l.stats.Hits++
				l.stats.WriteHits++
				l.stats.BytesServed += uint64(l.cfg.LineSize)
				ways[i].used = h.tick
				hit = true
				break
			}
		}
		if !hit {
			// A no-allocate write miss fetches nothing, so it is not a
			// demand (read) miss.
			l.stats.Misses++
		}
	}
	h.dramWriteLines++
}

// writeback pushes a dirty victim from level idx-1 into level idx (or
// DRAM if past the last level).
func (h *Hierarchy) writeback(idx int, lineAddr uint64) {
	if idx >= len(h.levels) {
		h.dramWriteLines++
		return
	}
	hit, evicted, victim := h.levels[idx].access(lineAddr, true, false, h.tick)
	if evicted {
		h.writeback(idx+1, victim)
	}
	if !hit {
		// Write-allocate at this level; the line's old contents came
		// from below conceptually, but a full writeback line overwrites
		// it, so no DRAM read is charged.
		_ = hit
	}
}

// NumLevels returns the number of cache levels in the hierarchy.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// Level returns a copy of one level's counters (0 = innermost),
// letting callers read per-level statistics without the slice
// allocation of Stats.
func (h *Hierarchy) Level(i int) LevelStats { return h.levels[i].stats }

// Stats returns a copy of the per-level counters, innermost first.
func (h *Hierarchy) Stats() []LevelStats {
	out := make([]LevelStats, len(h.levels))
	for i, l := range h.levels {
		out[i] = l.stats
	}
	return out
}

// DRAMReadBytes is the traffic fetched from DRAM (outer-level read
// misses times the line size) — the paper's Q estimator.
func (h *Hierarchy) DRAMReadBytes() uint64 { return h.dramReadLines * h.lineSize }

// DRAMWriteBytes is the write-back traffic to DRAM.
func (h *Hierarchy) DRAMWriteBytes() uint64 { return h.dramWriteLines * h.lineSize }

// DRAMBytes is total DRAM traffic in both directions.
func (h *Hierarchy) DRAMBytes() uint64 { return h.DRAMReadBytes() + h.DRAMWriteBytes() }

// CacheBytes is the total traffic served by all cache levels — the
// quantity the paper multiplies by its fitted 187 pJ/B cache cost.
func (h *Hierarchy) CacheBytes() uint64 {
	var sum uint64
	for _, l := range h.levels {
		sum += l.stats.BytesServed
	}
	return sum
}

// Reset clears all cache contents and counters.
func (h *Hierarchy) Reset() {
	for _, l := range h.levels {
		clear(l.data)
		clear(l.mru)
		l.stats = LevelStats{Name: l.cfg.Name}
	}
	h.tick = 0
	h.dramReadLines = 0
	h.dramWriteLines = 0
	h.prefetchIssued = 0
	h.memo = [memoSlots]*line{}
}
