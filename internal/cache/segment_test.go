package cache

import (
	"testing"

	"repro/internal/machine"
)

// Segment replay must be invisible in every counter: these tests drive
// AccessSegment/ReplaySegments on the optimized hierarchy and the
// documented scalar equivalence loop on the pre-optimization reference
// model from fastpath_test.go, comparing all statistics exactly after
// every replay. The scenarios cover both fast paths (line chunking,
// closed-form resident sweeps) and every fallback edge: straddling
// elements, conflict evictions that defeat the residency proof,
// blocks larger than the innermost level, write-through stores,
// prefetching, zero strides, and address-space wraparound.

// refReplaySegments is the scalar definition of ReplaySegments, driven
// through the reference model.
func refReplaySegments(h *refHierarchy, segs []Segment, sweeps int) {
	maxCount := 0
	for _, s := range segs {
		if s.Count > maxCount {
			maxCount = s.Count
		}
	}
	for sweep := 0; sweep < sweeps; sweep++ {
		for i := 0; i < maxCount; i++ {
			for _, s := range segs {
				if i < s.Count {
					h.Access(s.Base+uint64(i)*s.Stride, s.Size, s.Write)
				}
			}
		}
	}
}

// replay drives one segment group through both models and checks.
func (p *pair) replay(phase string, segs []Segment, sweeps int) {
	p.t.Helper()
	p.opt.ReplaySegments(segs, sweeps)
	refReplaySegments(p.ref, segs, sweeps)
	p.check(phase)
}

// interleave4 builds the FMM SoA shape: four parallel word arrays read
// in lock step, bases far enough apart to share cache sets.
func interleave4(base uint64, count int, write3 bool) []Segment {
	const gib = 1 << 30
	return []Segment{
		{Base: base, Stride: 4, Count: count, Size: 4},
		{Base: base + gib, Stride: 4, Count: count, Size: 4},
		{Base: base + 2*gib, Stride: 4, Count: count, Size: 4},
		{Base: base + 3*gib, Stride: 4, Count: count, Size: 4, Write: write3},
	}
}

func driveSegments(p *pair) {
	// Word streaming: the canonical 16-words-per-line chunk shape.
	p.replay("stream", []Segment{{Base: 0, Stride: 4, Count: 6000, Size: 4}}, 1)

	// Repeated sweeps over a block that fits in L1: the closed-form
	// resident-sweep path.
	p.replay("resident-sweeps", []Segment{{Base: 1 << 22, Stride: 4, Count: 512, Size: 4}}, 7)

	// SoA interleave with a write lane, swept repeatedly.
	p.replay("soa-sweeps", interleave4(1<<23, 300, true), 5)

	// AoS records: 16-byte elements, line-aligned base.
	p.replay("aos", []Segment{{Base: 5 << 30, Stride: 16, Count: 2000, Size: 16}}, 3)

	// Unaligned AoS: every fourth element straddles a 64-byte line (and
	// every element straddles the reference's 96-byte lines differently),
	// forcing scalar rounds between chunks.
	p.replay("straddle", []Segment{{Base: (5 << 30) + 8, Stride: 16, Count: 1500, Size: 16}}, 2)

	// Stride wider than a line: every run has length 1 (pure walk).
	p.replay("wide-stride", []Segment{{Base: 1 << 24, Stride: 200, Count: 3000, Size: 8, Write: true}}, 2)

	// Stride that does not divide the line size: runs of uneven length.
	p.replay("odd-stride", []Segment{{Base: 1 << 25, Stride: 12, Count: 4000, Size: 4}}, 2)

	// Zero stride: one element hammered Count times.
	p.replay("zero-stride", []Segment{{Base: 1 << 26, Stride: 0, Count: 500, Size: 4}}, 2)

	// Overlapping elements: stride smaller than size.
	p.replay("overlap", []Segment{{Base: 1 << 27, Stride: 4, Count: 2000, Size: 16}}, 2)

	// A block much larger than the innermost level: the residency proof
	// must fail and the remaining sweeps replay chunked.
	p.replay("capacity-fallback", []Segment{{Base: 0, Stride: 64, Count: 8192, Size: 8}}, 3)

	// More interleaved same-set lines than the innermost level has ways:
	// round-0 installs evict round-0 neighbours, defeating the chunk
	// residency check (conflict fallback).
	var conflict []Segment
	for w := 0; w < 12; w++ {
		conflict = append(conflict, Segment{Base: uint64(w) << 30, Stride: 4, Count: 256, Size: 4, Write: w%5 == 4})
	}
	p.replay("conflict-fallback", conflict, 3)

	// Unequal counts: the active set shrinks mid-replay.
	p.replay("ragged", []Segment{
		{Base: 0, Stride: 4, Count: 1000, Size: 4},
		{Base: 1 << 28, Stride: 4, Count: 300, Size: 4, Write: true},
		{Base: 1 << 29, Stride: 8, Count: 650, Size: 8},
	}, 3)

	// Degenerate descriptors: zero/negative counts and sizes are no-ops.
	p.replay("degenerate", []Segment{
		{Base: 4096, Stride: 4, Count: 0, Size: 4},
		{Base: 4096, Stride: 4, Count: 16, Size: 0},
		{Base: 4096, Stride: 4, Count: -3, Size: -8},
		{Base: 8192, Stride: 4, Count: 64, Size: 4},
	}, 4)

	// Address-space wraparound: elements whose byte range wraps are
	// no-ops in the scalar walk and must stay no-ops here.
	p.replay("wrap", []Segment{{Base: ^uint64(0) - 100, Stride: 32, Count: 16, Size: 8}}, 2)

	// Write-through stores: the whole group must take the exact scalar
	// path.
	p.writeThrough(true)
	p.replay("write-through", []Segment{
		{Base: 0, Stride: 4, Count: 1000, Size: 4, Write: true},
		{Base: 1 << 22, Stride: 4, Count: 1000, Size: 4},
	}, 3)
	// Write-through reads alone still use the fast paths.
	p.replay("write-through-reads", []Segment{{Base: 1 << 23, Stride: 4, Count: 800, Size: 4}}, 3)
	p.writeThrough(false)

	// Prefetching: round-0 misses issue next-line fetches; with a
	// single level these can evict chunk neighbours (verification
	// catches it), with two levels they only touch the outer level.
	p.prefetch(true)
	p.replay("prefetch", interleave4(1<<24, 2048, false), 2)
	p.prefetch(false)

	// Reset between replays: scratch state must not leak.
	p.reset()
	p.replay("post-reset", []Segment{{Base: 0, Stride: 4, Count: 1024, Size: 4}}, 4)

	// Interactions with plain word traffic before and after bulk replay.
	for i := uint64(0); i < 2000; i++ {
		p.access(i*28, 8, i%7 == 3)
	}
	p.check("mixed-scalar")
	p.replay("mixed-bulk", interleave4(0, 1200, true), 3)
}

func TestReplaySegmentsMatchesReference(t *testing.T) {
	driveSegments(newPair(t, twoLevels()))
}

func TestReplaySegmentsMatchesReferenceNonPow2(t *testing.T) {
	driveSegments(newPair(t, nonPow2Levels()))
}

func TestReplaySegmentsMatchesReferenceSingleLevel(t *testing.T) {
	driveSegments(newPair(t, []machine.CacheLevel{
		{Name: "L1", Size: 16 << 10, LineSize: 64, Assoc: 4},
	}))
}

// TestReplaySegmentsMatchesReferenceTinyAssoc uses a direct-mapped-ish
// geometry where interleaved lanes constantly conflict, keeping the
// fallback paths hot.
func TestReplaySegmentsMatchesReferenceTinyAssoc(t *testing.T) {
	driveSegments(newPair(t, []machine.CacheLevel{
		{Name: "L1", Size: 8 << 10, LineSize: 64, Assoc: 2},
		{Name: "L2", Size: 64 << 10, LineSize: 64, Assoc: 4},
	}))
}

// TestAccessSegmentMatchesLoop pins the AccessSegment == scalar-loop
// equivalence directly on the optimized hierarchy (two instances), so
// the single-segment entry point is covered without the reference
// model in the loop.
func TestAccessSegmentMatchesLoop(t *testing.T) {
	a, err := New(twoLevels())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(twoLevels())
	if err != nil {
		t.Fatal(err)
	}
	segs := []Segment{
		{Base: 64, Stride: 4, Count: 3000, Size: 4},
		{Base: 1 << 21, Stride: 16, Count: 700, Size: 16, Write: true},
		{Base: (1 << 22) + 4, Stride: 24, Count: 900, Size: 12},
	}
	for _, s := range segs {
		a.AccessSegment(s)
		for i := 0; i < s.Count; i++ {
			b.Access(s.Base+uint64(i)*s.Stride, s.Size, s.Write)
		}
	}
	ga, gb := a.Stats(), b.Stats()
	for i := range gb {
		if ga[i] != gb[i] {
			t.Errorf("level %d stats diverged:\n got  %+v\n want %+v", i, ga[i], gb[i])
		}
	}
	if a.DRAMReadBytes() != b.DRAMReadBytes() || a.DRAMWriteBytes() != b.DRAMWriteBytes() {
		t.Errorf("DRAM traffic diverged: got %d/%d, want %d/%d",
			a.DRAMReadBytes(), a.DRAMWriteBytes(), b.DRAMReadBytes(), b.DRAMWriteBytes())
	}
}

// TestReplaySegmentsSteadyStateAllocs pins the zero-allocation contract
// of the bulk replay: after the first call warms the scratch buffers,
// replays allocate nothing.
func TestReplaySegmentsSteadyStateAllocs(t *testing.T) {
	h, err := New(twoLevels())
	if err != nil {
		t.Fatal(err)
	}
	segs := interleave4(0, 512, true)
	h.ReplaySegments(segs, 4) // warm scratch
	n := testing.AllocsPerRun(20, func() {
		h.ReplaySegments(segs, 4)
	})
	if n > 0 {
		t.Errorf("ReplaySegments allocates %v times per call in steady state, want 0", n)
	}
}
