package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/stats"
)

// tiny returns a 2-level hierarchy small enough to force evictions:
// L1 = 4 lines of 64 B (2 sets × 2 ways), L2 = 16 lines (4 sets × 4 ways).
func tiny(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := New([]machine.CacheLevel{
		{Name: "L1", Size: 256, LineSize: 64, Assoc: 2},
		{Name: "L2", Size: 1024, LineSize: 64, Assoc: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty hierarchy accepted")
	}
	bad := []machine.CacheLevel{{Name: "L1", Size: 0, LineSize: 64, Assoc: 2}}
	if _, err := New(bad); err == nil {
		t.Error("zero size accepted")
	}
	mixed := []machine.CacheLevel{
		{Name: "L1", Size: 256, LineSize: 64, Assoc: 2},
		{Name: "L2", Size: 1024, LineSize: 128, Assoc: 4},
	}
	if _, err := New(mixed); err == nil {
		t.Error("mixed line sizes accepted")
	}
	shrink := []machine.CacheLevel{
		{Name: "L1", Size: 1024, LineSize: 64, Assoc: 4},
		{Name: "L2", Size: 256, LineSize: 64, Assoc: 2},
	}
	if _, err := New(shrink); err == nil {
		t.Error("shrinking hierarchy accepted")
	}
	odd := []machine.CacheLevel{{Name: "L1", Size: 192, LineSize: 64, Assoc: 2}}
	if _, err := New(odd); err == nil {
		t.Error("lines not divisible by assoc accepted")
	}
}

func TestFromMachine(t *testing.T) {
	h, err := FromMachine(machine.GTX580())
	if err != nil {
		t.Fatal(err)
	}
	if h.LineSize() != 128 {
		t.Errorf("GTX580 line size = %d", h.LineSize())
	}
	st := h.Stats()
	if len(st) != 2 || st[0].Name != "L1" || st[1].Name != "L2" {
		t.Errorf("stats = %+v", st)
	}
	noCache := machine.FermiTableII()
	if _, err := FromMachine(noCache); err == nil {
		t.Error("machine without caches accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := tiny(t)
	h.Read(0, 8)
	st := h.Stats()
	if st[0].Misses != 1 || st[0].Hits != 0 {
		t.Fatalf("cold access: L1 = %+v", st[0])
	}
	if st[1].Misses != 1 {
		t.Fatalf("cold access should miss L2 too: %+v", st[1])
	}
	if h.DRAMReadBytes() != 64 {
		t.Errorf("DRAM read bytes = %d, want one line", h.DRAMReadBytes())
	}
	h.Read(8, 8) // same line
	st = h.Stats()
	if st[0].Hits != 1 {
		t.Errorf("second access should hit L1: %+v", st[0])
	}
	if st[0].BytesServed != 64 {
		t.Errorf("L1 bytes served = %d", st[0].BytesServed)
	}
	if h.DRAMReadBytes() != 64 {
		t.Error("hit should not touch DRAM")
	}
}

func TestAccessSpanningLines(t *testing.T) {
	h := tiny(t)
	// 100 bytes starting at 60 spans lines 0 and 1 and 2? 60..159 →
	// lines 0 (0–63), 1 (64–127), 2 (128–191): three line accesses.
	h.Read(60, 100)
	st := h.Stats()
	if st[0].Accesses != 3 {
		t.Errorf("spanning read accesses = %d, want 3", st[0].Accesses)
	}
}

func TestLRUEviction(t *testing.T) {
	h := tiny(t)
	// L1 set 0 holds even lines (2 sets): lines 0, 2, 4 map to set 0.
	h.Read(0*64, 1)
	h.Read(2*64, 1)
	h.Read(4*64, 1) // evicts line 0 (LRU)
	h.Read(0*64, 1) // must miss L1 again, but hit L2
	st := h.Stats()
	if st[0].Misses != 4 {
		t.Errorf("L1 misses = %d, want 4", st[0].Misses)
	}
	if st[1].Hits != 1 {
		t.Errorf("L2 hits = %d, want 1 (the re-fetched line)", st[1].Hits)
	}
	// Recency update: touch line 2, then line 6; line 4 (not 2) evicts.
	h.Reset()
	h.Read(0*64, 1)
	h.Read(2*64, 1)
	h.Read(0*64, 1) // refresh 0
	h.Read(4*64, 1) // evicts 2
	h.Read(0*64, 1) // still resident
	st = h.Stats()
	if st[0].Hits != 2 {
		t.Errorf("hits after recency refresh = %d, want 2", st[0].Hits)
	}
}

func TestWriteBackToDRAM(t *testing.T) {
	// One-level hierarchy: dirty evictions land in DRAM.
	h, err := New([]machine.CacheLevel{{Name: "L1", Size: 128, LineSize: 64, Assoc: 2}})
	if err != nil {
		t.Fatal(err)
	}
	h.Write(0, 8)  // dirty line 0
	h.Write(64, 8) // dirty line 1 (same set: 1 set × 2 ways)
	h.Read(128, 8) // evicts dirty line 0 → DRAM write
	if h.DRAMWriteBytes() != 64 {
		t.Errorf("DRAM write bytes = %d, want 64", h.DRAMWriteBytes())
	}
	if h.DRAMReadBytes() != 3*64 {
		t.Errorf("DRAM read bytes = %d, want 192", h.DRAMReadBytes())
	}
	if h.DRAMBytes() != 4*64 {
		t.Errorf("total DRAM bytes = %d", h.DRAMBytes())
	}
}

func TestWritebackCaughtByOuterLevel(t *testing.T) {
	h := tiny(t)
	// Dirty a line, force it out of L1; the writeback should land in L2,
	// not DRAM.
	h.Write(0*64, 1)
	h.Read(2*64, 1)
	h.Read(4*64, 1) // evicts dirty line 0 into L2
	if h.DRAMWriteBytes() != 0 {
		t.Errorf("writeback leaked to DRAM: %d bytes", h.DRAMWriteBytes())
	}
	st := h.Stats()
	if st[0].Writebacks != 1 {
		t.Errorf("L1 writebacks = %d, want 1", st[0].Writebacks)
	}
	// The line is still dirty in L2; flushing it out of L2 eventually
	// hits DRAM. Touch enough distinct lines mapping to its L2 set.
	// L2: 4 sets, so lines 0, 4, 8, ... map to set 0.
	for i := uint64(1); i <= 4; i++ {
		h.Read(i*4*64, 1)
	}
	if h.DRAMWriteBytes() == 0 {
		t.Error("dirty line never reached DRAM after L2 pressure")
	}
}

func TestConservationLaws(t *testing.T) {
	// Hits + Misses == Accesses at every level; L2 accesses ==
	// L1 misses + L1 writebacks.
	h := tiny(t)
	r := stats.NewRand(42)
	for i := 0; i < 5000; i++ {
		addr := uint64(r.Intn(1 << 14))
		if r.Intn(3) == 0 {
			h.Write(addr, 1+r.Intn(16))
		} else {
			h.Read(addr, 1+r.Intn(16))
		}
	}
	st := h.Stats()
	for _, s := range st {
		if s.Hits+s.Misses != s.Accesses {
			t.Errorf("%s: hits %d + misses %d != accesses %d", s.Name, s.Hits, s.Misses, s.Accesses)
		}
		if s.ReadHits+s.WriteHits != s.Hits {
			t.Errorf("%s: read+write hits != hits", s.Name)
		}
		if s.BytesServed != s.Hits*64 {
			t.Errorf("%s: bytes served %d != hits × line", s.Name, s.BytesServed)
		}
	}
	if st[1].Accesses != st[0].Misses+st[0].Writebacks {
		t.Errorf("L2 accesses %d != L1 misses %d + L1 writebacks %d",
			st[1].Accesses, st[0].Misses, st[0].Writebacks)
	}
	if h.DRAMReadBytes()%64 != 0 || h.DRAMWriteBytes()%64 != 0 {
		t.Error("DRAM traffic not line-aligned")
	}
}

func TestPropConservation(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		h, err := New([]machine.CacheLevel{
			{Name: "L1", Size: 512, LineSize: 64, Assoc: 2},
			{Name: "L2", Size: 2048, LineSize: 64, Assoc: 4},
		})
		if err != nil {
			return false
		}
		r := stats.NewRand(seed)
		for i := 0; i < int(n%2000)+10; i++ {
			addr := uint64(r.Intn(1 << 13))
			h.Access(addr, 1+r.Intn(64), r.Intn(2) == 0)
		}
		st := h.Stats()
		for _, s := range st {
			if s.Hits+s.Misses != s.Accesses {
				return false
			}
		}
		// Every L2 *demand* miss is one DRAM line read; writeback-
		// allocate misses overwrite whole lines and fetch nothing.
		return h.DRAMReadBytes() == st[1].DemandMisses*64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStreamingHasNoReuse(t *testing.T) {
	// A pure streaming read of distinct lines never hits: DRAM traffic
	// equals the touched footprint.
	h := tiny(t)
	const lines = 1000
	for i := 0; i < lines; i++ {
		h.Read(uint64(i)*64, 64)
	}
	st := h.Stats()
	if st[0].Hits != 0 || st[1].Hits != 0 {
		t.Errorf("streaming should never hit: %+v", st)
	}
	if h.DRAMReadBytes() != lines*64 {
		t.Errorf("DRAM bytes = %d, want %d", h.DRAMReadBytes(), lines*64)
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// A working set that fits in L1 hits 100% after the first sweep.
	h := tiny(t) // L1 = 4 lines
	sweep := func() {
		for i := 0; i < 4; i++ {
			h.Read(uint64(i)*64, 64)
		}
	}
	sweep() // cold
	before := h.Stats()[0]
	sweep() // warm
	after := h.Stats()[0]
	if after.Hits-before.Hits != 4 {
		t.Errorf("warm sweep hits = %d, want 4", after.Hits-before.Hits)
	}
	if h.DRAMReadBytes() != 4*64 {
		t.Errorf("DRAM traffic grew on warm sweep: %d", h.DRAMReadBytes())
	}
}

func TestCacheBytesAggregates(t *testing.T) {
	h := tiny(t)
	h.Read(0, 64) // cold
	h.Read(0, 64) // L1 hit
	h.Read(0, 64) // L1 hit
	if got := h.CacheBytes(); got != 128 {
		t.Errorf("CacheBytes = %d, want 128", got)
	}
}

func TestReset(t *testing.T) {
	h := tiny(t)
	h.Read(0, 512)
	h.Reset()
	st := h.Stats()
	if st[0].Accesses != 0 || st[1].Accesses != 0 || h.DRAMBytes() != 0 {
		t.Error("Reset did not clear counters")
	}
	h.Read(0, 8)
	if h.Stats()[0].Misses != 1 {
		t.Error("Reset did not clear contents")
	}
}

func TestZeroSizeAccessIgnored(t *testing.T) {
	h := tiny(t)
	h.Read(0, 0)
	h.Access(0, -5, true)
	if h.Stats()[0].Accesses != 0 {
		t.Error("zero/negative size should be ignored")
	}
}

func TestHitRate(t *testing.T) {
	var s LevelStats
	if s.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
	s.Accesses, s.Hits = 10, 4
	if s.HitRate() != 0.4 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h, err := FromMachine(machine.CoreI7950())
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(addrs[i%len(addrs)], 8)
	}
}

func TestPrefetcherHelpsStreaming(t *testing.T) {
	// A streaming read with the next-line prefetcher: after the first
	// miss of each pair, the following line is already resident, so
	// demand misses roughly halve... with a strictly sequential stream
	// every demand miss prefetches the next line, which then hits, so
	// the outer level's demand misses drop to ~half the lines.
	mk := func(pf bool) (*Hierarchy, uint64) {
		h, err := New([]machine.CacheLevel{
			{Name: "L1", Size: 512, LineSize: 64, Assoc: 2},
			{Name: "L2", Size: 4096, LineSize: 64, Assoc: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		h.EnablePrefetch(pf)
		const lines = 2000
		for i := 0; i < lines; i++ {
			h.Read(uint64(i)*64, 64)
		}
		return h, h.Stats()[1].DemandMisses
	}
	_, missesOff := mk(false)
	hOn, missesOn := mk(true)
	if missesOn >= missesOff/2+64 {
		t.Errorf("prefetcher barely helped: %d vs %d demand misses", missesOn, missesOff)
	}
	if hOn.PrefetchIssued() == 0 {
		t.Error("no prefetches issued")
	}
	// Total DRAM traffic is not reduced (every line still fetched once,
	// modulo the one-past-the-end line).
	if hOn.DRAMReadBytes() < 2000*64 {
		t.Errorf("prefetching cannot skip compulsory traffic: %d", hOn.DRAMReadBytes())
	}
}

func TestPrefetcherNeutralOnRandomAccess(t *testing.T) {
	// Random far-apart accesses: prefetched lines are useless and the
	// prefetcher inflates DRAM traffic without cutting misses much.
	mk := func(pf bool) (*Hierarchy, uint64, uint64) {
		h, err := New([]machine.CacheLevel{
			{Name: "L1", Size: 512, LineSize: 64, Assoc: 2},
			{Name: "L2", Size: 4096, LineSize: 64, Assoc: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		h.EnablePrefetch(pf)
		r := stats.NewRand(9)
		for i := 0; i < 4000; i++ {
			// Stride of at least 4 lines so next-line never helps.
			h.Read(uint64(r.Intn(1<<20))*256, 8)
		}
		return h, h.Stats()[1].DemandMisses, h.DRAMReadBytes()
	}
	_, missOff, trafficOff := mk(false)
	_, missOn, trafficOn := mk(true)
	if float64(missOn) < float64(missOff)*0.95 {
		t.Errorf("random misses should not improve: %d vs %d", missOn, missOff)
	}
	if trafficOn <= trafficOff {
		t.Error("useless prefetches must inflate DRAM traffic")
	}
}

func TestPrefetchWritesDoNotPrefetch(t *testing.T) {
	h, err := New([]machine.CacheLevel{{Name: "L1", Size: 512, LineSize: 64, Assoc: 2}})
	if err != nil {
		t.Fatal(err)
	}
	h.EnablePrefetch(true)
	for i := 0; i < 100; i++ {
		h.Write(uint64(i)*64, 64)
	}
	if h.PrefetchIssued() != 0 {
		t.Errorf("write misses should not prefetch: %d issued", h.PrefetchIssued())
	}
}

func TestPrefetchResetClears(t *testing.T) {
	h, err := New([]machine.CacheLevel{{Name: "L1", Size: 512, LineSize: 64, Assoc: 2}})
	if err != nil {
		t.Fatal(err)
	}
	h.EnablePrefetch(true)
	for i := 0; i < 64; i++ {
		h.Read(uint64(i)*64, 8)
	}
	if h.PrefetchIssued() == 0 {
		t.Fatal("setup: no prefetches")
	}
	h.Reset()
	if h.PrefetchIssued() != 0 || h.DRAMBytes() != 0 {
		t.Error("Reset did not clear prefetch state")
	}
}

func TestWriteThroughPolicy(t *testing.T) {
	mk := func(wt bool) *Hierarchy {
		h, err := New([]machine.CacheLevel{
			{Name: "L1", Size: 512, LineSize: 64, Assoc: 2},
			{Name: "L2", Size: 2048, LineSize: 64, Assoc: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		h.SetWriteThrough(wt)
		return h
	}

	// Repeated stores to one resident line: write-back absorbs them
	// (one eventual writeback at most), write-through forwards each.
	wb := mk(false)
	wt := mk(true)
	for _, h := range []*Hierarchy{wb, wt} {
		h.Read(0, 64) // make the line resident
		for i := 0; i < 10; i++ {
			h.Write(0, 64)
		}
	}
	if wb.DRAMWriteBytes() != 0 {
		t.Errorf("write-back forwarded stores early: %d bytes", wb.DRAMWriteBytes())
	}
	if wt.DRAMWriteBytes() != 10*64 {
		t.Errorf("write-through DRAM writes = %d, want 640", wt.DRAMWriteBytes())
	}
	// Write hits updated the resident line in both caches.
	if wt.Stats()[0].WriteHits != 10 {
		t.Errorf("L1 write hits = %d", wt.Stats()[0].WriteHits)
	}

	// No-write-allocate: a write miss installs nothing, so a following
	// read still misses.
	wt2 := mk(true)
	wt2.Write(4096, 64)
	if wt2.Stats()[0].Hits != 0 {
		t.Error("write miss should not hit")
	}
	wt2.Read(4096, 64)
	if wt2.Stats()[0].ReadHits != 0 {
		t.Error("no-write-allocate must not install the line")
	}
	// Write-miss traffic went straight to DRAM, no fetch.
	if wt2.DRAMReadBytes() != 64 { // only the read's fetch
		t.Errorf("DRAM reads = %d, want 64", wt2.DRAMReadBytes())
	}
	if wt2.DRAMWriteBytes() != 64 {
		t.Errorf("DRAM writes = %d, want 64", wt2.DRAMWriteBytes())
	}
}

func TestWriteThroughStreamingStore(t *testing.T) {
	// A pure store stream under write-through: DRAM write traffic equals
	// the stream, and no read traffic at all (write-back with
	// write-allocate would fetch every line first).
	wt, err := New([]machine.CacheLevel{{Name: "L1", Size: 512, LineSize: 64, Assoc: 2}})
	if err != nil {
		t.Fatal(err)
	}
	wt.SetWriteThrough(true)
	for i := 0; i < 500; i++ {
		wt.Write(uint64(i)*64, 64)
	}
	if wt.DRAMReadBytes() != 0 {
		t.Errorf("write-through stream fetched %d bytes", wt.DRAMReadBytes())
	}
	if wt.DRAMWriteBytes() != 500*64 {
		t.Errorf("write traffic = %d", wt.DRAMWriteBytes())
	}
	// Write-back comparison: write-allocate fetches each line.
	wb, err := New([]machine.CacheLevel{{Name: "L1", Size: 512, LineSize: 64, Assoc: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		wb.Write(uint64(i)*64, 64)
	}
	if wb.DRAMReadBytes() == 0 {
		t.Error("write-allocate should fetch on write miss")
	}
}
