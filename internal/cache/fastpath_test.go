package cache

import (
	"testing"

	"repro/internal/machine"
)

// The optimized Hierarchy added a streaming memo table, per-set MRU way
// hints, and shift/mask address math. None of those may change a single
// counter: this file keeps a reference model with the pre-optimization
// logic (plain divide/modulo, full way scans, no memo) and drives both
// with identical workloads, comparing every statistic exactly.

// refLevel is the pre-optimization level: modulo set indexing and a
// linear way scan on every access.
type refLevel struct {
	cfg   machine.CacheLevel
	sets  uint64
	ways  int
	data  []line
	stats LevelStats
}

func newRefLevel(cfg machine.CacheLevel) *refLevel {
	lines := uint64(cfg.Size) / uint64(cfg.LineSize)
	sets := lines / uint64(cfg.Assoc)
	l := &refLevel{cfg: cfg, sets: sets, ways: cfg.Assoc, data: make([]line, lines)}
	l.stats.Name = cfg.Name
	return l
}

func (l *refLevel) access(lineAddr uint64, write, demand bool, tick uint64) (hit bool, evicted bool, victim uint64) {
	set := lineAddr % l.sets
	base := int(set) * l.ways
	ways := l.data[base : base+l.ways]
	l.stats.Accesses++
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			l.stats.Hits++
			l.stats.BytesServed += uint64(l.cfg.LineSize)
			if write {
				l.stats.WriteHits++
				ways[i].dirty = true
			} else {
				l.stats.ReadHits++
			}
			ways[i].used = tick
			return true, false, 0
		}
	}
	l.stats.Misses++
	if demand {
		l.stats.DemandMisses++
	}
	vi := -1
	for i := range ways {
		if !ways[i].valid {
			vi = i
			break
		}
	}
	if vi < 0 {
		vi = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].used < ways[vi].used {
				vi = i
			}
		}
		if ways[vi].dirty {
			evicted = true
			victim = ways[vi].tag
			l.stats.Writebacks++
		}
	}
	ways[vi] = line{tag: lineAddr, valid: true, dirty: write, used: tick}
	return false, evicted, victim
}

// refHierarchy is the pre-optimization hierarchy: no memo, no MRU, no
// shift/mask fast paths.
type refHierarchy struct {
	levels         []*refLevel
	lineSize       uint64
	tick           uint64
	dramReadLines  uint64
	dramWriteLines uint64
	prefetch       bool
	prefetchIssued uint64
	writeThrough   bool
}

func newRefHierarchy(levels []machine.CacheLevel) *refHierarchy {
	h := &refHierarchy{lineSize: uint64(levels[0].LineSize)}
	for _, cfg := range levels {
		h.levels = append(h.levels, newRefLevel(cfg))
	}
	return h
}

func (h *refHierarchy) Access(addr uint64, size int, write bool) {
	if size <= 0 {
		return
	}
	first := addr / h.lineSize
	last := (addr + uint64(size) - 1) / h.lineSize
	for la := first; la <= last; la++ {
		h.tick++
		h.accessLine(la, write)
	}
}

func (h *refHierarchy) accessLine(lineAddr uint64, write bool) {
	if write && h.writeThrough {
		h.writeThroughLine(lineAddr)
		return
	}
	for i, l := range h.levels {
		hit, evicted, victim := l.access(lineAddr, write, true, h.tick)
		if evicted {
			h.writeback(i+1, victim)
		}
		if hit {
			return
		}
	}
	h.dramReadLines++
	if h.prefetch && !write {
		h.prefetchLine(lineAddr + 1)
	}
}

func (h *refHierarchy) prefetchLine(lineAddr uint64) {
	outer := h.levels[len(h.levels)-1]
	set := lineAddr % outer.sets
	base := int(set) * outer.ways
	ways := outer.data[base : base+outer.ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			return
		}
	}
	vi := -1
	for i := range ways {
		if !ways[i].valid {
			vi = i
			break
		}
	}
	if vi < 0 {
		vi = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].used < ways[vi].used {
				vi = i
			}
		}
		if ways[vi].dirty {
			h.dramWriteLines++
			outer.stats.Writebacks++
		}
	}
	ts := uint64(0)
	if h.tick > 0 {
		ts = h.tick - 1
	}
	ways[vi] = line{tag: lineAddr, valid: true, used: ts}
	h.prefetchIssued++
	h.dramReadLines++
}

func (h *refHierarchy) writeThroughLine(lineAddr uint64) {
	for _, l := range h.levels {
		set := lineAddr % l.sets
		base := int(set) * l.ways
		ways := l.data[base : base+l.ways]
		l.stats.Accesses++
		hit := false
		for i := range ways {
			if ways[i].valid && ways[i].tag == lineAddr {
				l.stats.Hits++
				l.stats.WriteHits++
				l.stats.BytesServed += uint64(l.cfg.LineSize)
				ways[i].used = h.tick
				hit = true
				break
			}
		}
		if !hit {
			l.stats.Misses++
		}
	}
	h.dramWriteLines++
}

func (h *refHierarchy) writeback(idx int, lineAddr uint64) {
	if idx >= len(h.levels) {
		h.dramWriteLines++
		return
	}
	hit, evicted, victim := h.levels[idx].access(lineAddr, true, false, h.tick)
	if evicted {
		h.writeback(idx + 1, victim)
	}
	_ = hit
}

func (h *refHierarchy) Reset() {
	for i, l := range h.levels {
		h.levels[i] = newRefLevel(l.cfg)
	}
	h.tick = 0
	h.dramReadLines = 0
	h.dramWriteLines = 0
	h.prefetchIssued = 0
}

func (h *refHierarchy) Stats() []LevelStats {
	out := make([]LevelStats, len(h.levels))
	for i, l := range h.levels {
		out[i] = l.stats
	}
	return out
}

// pair drives the optimized hierarchy and the reference model in
// lockstep and compares every observable counter.
type pair struct {
	t   *testing.T
	opt *Hierarchy
	ref *refHierarchy
}

func newPair(t *testing.T, levels []machine.CacheLevel) *pair {
	t.Helper()
	opt, err := New(levels)
	if err != nil {
		t.Fatal(err)
	}
	return &pair{t: t, opt: opt, ref: newRefHierarchy(levels)}
}

func (p *pair) access(addr uint64, size int, write bool) {
	p.opt.Access(addr, size, write)
	p.ref.Access(addr, size, write)
}

func (p *pair) prefetch(on bool) {
	p.opt.EnablePrefetch(on)
	p.ref.prefetch = on
}

func (p *pair) writeThrough(on bool) {
	p.opt.SetWriteThrough(on)
	p.ref.writeThrough = on
}

func (p *pair) reset() {
	p.opt.Reset()
	p.ref.Reset()
}

func (p *pair) check(phase string) {
	p.t.Helper()
	got, want := p.opt.Stats(), p.ref.Stats()
	for i := range want {
		if got[i] != want[i] {
			p.t.Errorf("%s: level %d stats diverged:\n got  %+v\n want %+v", phase, i, got[i], want[i])
		}
	}
	if g, w := p.opt.DRAMReadBytes(), p.ref.dramReadLines*p.ref.lineSize; g != w {
		p.t.Errorf("%s: DRAMReadBytes = %d, want %d", phase, g, w)
	}
	if g, w := p.opt.DRAMWriteBytes(), p.ref.dramWriteLines*p.ref.lineSize; g != w {
		p.t.Errorf("%s: DRAMWriteBytes = %d, want %d", phase, g, w)
	}
	if g, w := p.opt.PrefetchIssued(), p.ref.prefetchIssued; g != w {
		p.t.Errorf("%s: PrefetchIssued = %d, want %d", phase, g, w)
	}
}

func twoLevels() []machine.CacheLevel {
	return []machine.CacheLevel{
		{Name: "L1", Size: 32 << 10, LineSize: 64, Assoc: 8},
		{Name: "L2", Size: 256 << 10, LineSize: 64, Assoc: 8},
	}
}

// nonPow2Levels exercises the modulo/divide fallbacks: 192 sets at L1
// and a 96-byte line are not powers of two.
func nonPow2Levels() []machine.CacheLevel {
	return []machine.CacheLevel{
		{Name: "L1", Size: 96 * 192 * 4, LineSize: 96, Assoc: 4},
		{Name: "L2", Size: 96 * 512 * 8, LineSize: 96, Assoc: 8},
	}
}

// lcg is a deterministic address scrambler for the random phases.
func lcg(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

// drive runs a mixed workload through the pair, checking after every
// phase. The phases hit each fast path: sub-line streaming (memo hits),
// SoA interleave (multi-slot memo), strides (MRU hints), random traffic
// with writes (evictions, writebacks, stale memo entries), policy
// switches, prefetching, and a mid-run Reset.
func drive(p *pair) {
	// Sub-line streaming reads: repeated hits on the same line.
	for i := uint64(0); i < 6000; i++ {
		p.access(i*4, 4, false)
	}
	p.check("stream")

	// SoA interleave: four parallel arrays, read/read/read/write per
	// record, the FMM replay shape the memo table is built for.
	const mib = 1 << 20
	for r := uint64(0); r < 3000; r++ {
		p.access(0*mib+r*8, 8, false)
		p.access(1*mib+r*8, 8, false)
		p.access(2*mib+r*4, 4, false)
		p.access(3*mib+r*8, 8, true)
	}
	p.check("soa")

	// Strided reads at line granularity: MRU-hint territory, with a
	// stride wide enough to cycle sets.
	for i := uint64(0); i < 4000; i++ {
		p.access((i*192)%(1<<22), 16, false)
	}
	p.check("strided")

	// Random read/write mix over a footprint larger than L2: misses,
	// LRU evictions, dirty writebacks, and memo entries going stale.
	x := uint64(12345)
	for i := 0; i < 8000; i++ {
		x = lcg(x)
		addr := x % (4 << 20)
		p.access(addr, 8, i%3 == 0)
	}
	p.check("random")

	// Write-through phase over a mixed resident/non-resident range.
	p.writeThrough(true)
	for i := uint64(0); i < 3000; i++ {
		p.access(i*32, 8, i%2 == 0)
	}
	p.check("write-through")
	p.writeThrough(false)

	// Prefetching on: sequential read misses issue next-line fetches.
	p.prefetch(true)
	for i := uint64(0); i < 3000; i++ {
		p.access(16*mib+i*64, 8, false)
	}
	p.check("prefetch")
	p.prefetch(false)

	// Reset mid-run, then stream again: the memo table must not carry
	// pointers into the replaced arrays.
	p.reset()
	for i := uint64(0); i < 4000; i++ {
		p.access(i*4, 4, i%5 == 4)
	}
	p.check("post-reset")
}

func TestHierarchyMatchesReference(t *testing.T) {
	drive(newPair(t, twoLevels()))
}

func TestHierarchyMatchesReferenceNonPow2(t *testing.T) {
	drive(newPair(t, nonPow2Levels()))
}

func TestHierarchyMatchesReferenceSingleLevel(t *testing.T) {
	// A single level makes the outer level and the memoized innermost
	// level the same object — the prefetch-evicts-memoized-way hazard.
	drive(newPair(t, []machine.CacheLevel{
		{Name: "L1", Size: 16 << 10, LineSize: 64, Assoc: 4},
	}))
}
