package cache_test

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
)

// ExampleHierarchy_AccessSegment replays a strided read run in bulk.
// One Segment stands for Count word accesses: the hierarchy coalesces
// them into one genuine lookup per 64-byte line (16 words here) and
// applies the remaining 15 accesses per line as guaranteed hits, with
// counters identical to issuing each word through Access.
func ExampleHierarchy_AccessSegment() {
	h, err := cache.New([]machine.CacheLevel{
		{Name: "L1", Size: 16 << 10, LineSize: 64, Assoc: 4},
		{Name: "L2", Size: 256 << 10, LineSize: 64, Assoc: 8},
	})
	if err != nil {
		panic(err)
	}
	// 4096 sequential 4-byte reads: 1 KiB of new lines, 256 lines.
	h.AccessSegment(cache.Segment{Base: 0, Stride: 4, Count: 4096, Size: 4})
	l1 := h.Stats()[0]
	fmt.Printf("accesses=%d hits=%d misses=%d dram=%dB\n",
		l1.Accesses, l1.Hits, l1.Misses, h.DRAMReadBytes())
	// Output:
	// accesses=4096 hits=3840 misses=256 dram=16384B
}
