package cache

import (
	"testing"

	"repro/internal/machine"
)

// benchLevels is the two-level geometry the FMM study replays against.
func benchLevels() []machine.CacheLevel {
	return []machine.CacheLevel{
		{Name: "L1", Size: 32 << 10, LineSize: 64, Assoc: 8},
		{Name: "L2", Size: 256 << 10, LineSize: 64, Assoc: 8},
	}
}

// BenchmarkReplaySoA models the FMM trace replay: four parallel arrays
// read 4 bytes at a time, record by record — the simulator's dominant
// access pattern.
func BenchmarkReplaySoA(b *testing.B) {
	h, err := New(benchLevels())
	if err != nil {
		b.Fatal(err)
	}
	const records = 4096
	bases := []uint64{0, 1 << 20, 2 << 20, 3 << 20}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := uint64(0); r < records; r++ {
			for _, base := range bases {
				h.Read(base+r*4, 4)
			}
		}
	}
}

// BenchmarkReplayStream models a single sequential byte stream.
func BenchmarkReplayStream(b *testing.B) {
	h, err := New(benchLevels())
	if err != nil {
		b.Fatal(err)
	}
	const records = 16384
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := uint64(0); r < records; r++ {
			h.Read(r*4, 4)
		}
	}
}
